lib/icc/icc_model.mli: Codegen Deps Pluto Scop
