lib/icc/icc_model.ml: Array Codegen Dep Deps Format Linalg List Pluto Poly Scop
