(** The Data Dependence Graph and its strongly connected components.

    Vertices are statement ids; edges are the true (flow/anti/output)
    dependences. Input dependences are carried alongside for the reuse
    heuristics but do not create edges (Section 2.3 of the paper: they
    would restrict parallelism).

    Both Kosaraju's algorithm (cited by the paper, via Sharir) and
    Tarjan's are provided; tests check they agree. *)

type t = {
  n : int;  (** number of statements *)
  succ : int list array;  (** true-dependence successors, deduplicated *)
  pred : int list array;
  deps : Dep.t list;  (** every dependence, including input *)
}

val build : Scop.Program.t -> Dep.t list -> t

(** True dependences only. *)
val true_deps : t -> Dep.t list

(** Input (read-after-read) dependences only. *)
val input_deps : t -> Dep.t list

(** Is there a true-dependence edge [src -> dst]? *)
val has_edge : t -> int -> int -> bool

(** Is there an input dependence between the two statements (either
    direction)? *)
val has_input_between : t -> int -> int -> bool

(** {1 Strongly connected components}

    Both functions return an array mapping statement id to SCC id,
    with SCC ids numbered in a topological order of the condensation
    (every edge goes from a lower to a higher id). *)

val scc_kosaraju : t -> int array
val scc_tarjan : t -> int array

(** [components scc_of] groups statement ids by SCC id, in id order. *)
val components : int array -> int list array

(** Number of SCCs. *)
val scc_count : int array -> int

val pp : Format.formatter -> t -> unit

(** Graphviz dot rendering: solid edges for true dependences (colored
    by kind), dashed for input dependences; one node per statement,
    labeled with its name and clustered by SCC. *)
val to_dot : Scop.Program.t -> t -> string
