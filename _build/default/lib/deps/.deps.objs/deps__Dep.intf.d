lib/deps/dep.mli: Format Poly Scop
