lib/deps/ddg.mli: Dep Format Scop
