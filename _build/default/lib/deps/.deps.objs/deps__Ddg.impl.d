lib/deps/ddg.ml: Array Buffer Dep Format Hashtbl List Printf Scop
