lib/deps/dep.ml: Access Array Format Ilp List Poly Printf Program Scop Statement
