type t = {
  n : int;
  succ : int list array;
  pred : int list array;
  deps : Dep.t list;
}

let build (prog : Scop.Program.t) deps =
  let n = Array.length prog.stmts in
  let succ = Array.make n [] in
  let pred = Array.make n [] in
  List.iter
    (fun (d : Dep.t) ->
      if Dep.is_true d then begin
        if not (List.mem d.dst succ.(d.src)) then succ.(d.src) <- d.dst :: succ.(d.src);
        if not (List.mem d.src pred.(d.dst)) then pred.(d.dst) <- d.src :: pred.(d.dst)
      end)
    deps;
  Array.iteri (fun i l -> succ.(i) <- List.sort compare l) succ;
  Array.iteri (fun i l -> pred.(i) <- List.sort compare l) pred;
  { n; succ; pred; deps }

let true_deps g = List.filter Dep.is_true g.deps
let input_deps g = List.filter (fun (d : Dep.t) -> d.kind = Dep.Input) g.deps

let has_edge g a b = List.mem b g.succ.(a)

let has_input_between g a b =
  List.exists
    (fun (d : Dep.t) ->
      d.kind = Dep.Input && ((d.src = a && d.dst = b) || (d.src = b && d.dst = a)))
    g.deps

(* --- Kosaraju ---------------------------------------------------------- *)

let scc_kosaraju g =
  let visited = Array.make g.n false in
  let order = ref [] in
  (* first pass: record finish order on G *)
  let rec dfs1 v =
    visited.(v) <- true;
    List.iter (fun w -> if not visited.(w) then dfs1 w) g.succ.(v);
    order := v :: !order
  in
  for v = 0 to g.n - 1 do
    if not visited.(v) then dfs1 v
  done;
  (* second pass: DFS on the transpose in reverse finish order *)
  let scc = Array.make g.n (-1) in
  let rec dfs2 id v =
    scc.(v) <- id;
    List.iter (fun w -> if scc.(w) < 0 then dfs2 id w) g.pred.(v)
  in
  let next = ref 0 in
  List.iter
    (fun v ->
      if scc.(v) < 0 then begin
        dfs2 !next v;
        incr next
      end)
    !order;
  scc

(* --- Tarjan (iterative-friendly recursive version) -------------------- *)

let scc_tarjan g =
  let index = Array.make g.n (-1) in
  let lowlink = Array.make g.n 0 in
  let on_stack = Array.make g.n false in
  let stack = ref [] in
  let counter = ref 0 in
  let scc = Array.make g.n (-1) in
  let scc_next = ref 0 in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      g.succ.(v);
    if lowlink.(v) = index.(v) then begin
      let id = !scc_next in
      incr scc_next;
      let rec pop () =
        match !stack with
        | [] -> assert false
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          scc.(w) <- id;
          if w <> v then pop ()
      in
      pop ()
    end
  in
  for v = 0 to g.n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  (* Tarjan assigns ids in reverse topological order; flip them *)
  let total = !scc_next in
  Array.map (fun id -> total - 1 - id) scc

let scc_count scc = Array.fold_left (fun m id -> max m (id + 1)) 0 scc

let components scc =
  let k = scc_count scc in
  let comps = Array.make k [] in
  Array.iteri (fun v id -> comps.(id) <- v :: comps.(id)) scc;
  Array.map (List.sort compare) comps

let pp fmt g =
  Format.fprintf fmt "@[<v>DDG (%d vertices)" g.n;
  Array.iteri
    (fun v succs ->
      if succs <> [] then begin
        Format.fprintf fmt "@,S%d ->" v;
        List.iter (fun w -> Format.fprintf fmt " S%d" w) succs
      end)
    g.succ;
  Format.fprintf fmt "@]"

let to_dot (prog : Scop.Program.t) g =
  let b = Buffer.create 1024 in
  Buffer.add_string b "digraph ddg {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  let scc = scc_kosaraju g in
  Array.iter
    (fun (s : Scop.Statement.t) ->
      Buffer.add_string b
        (Printf.sprintf "  S%d [label=\"%s (d%d, scc%d)\"];\n" s.id s.name
           (Scop.Statement.depth s) scc.(s.id)))
    prog.stmts;
  (* one edge per (src, dst, kind) *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (d : Dep.t) ->
      let key = (d.src, d.dst, d.kind) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        let style, color =
          match d.kind with
          | Dep.Flow -> ("solid", "black")
          | Dep.Anti -> ("solid", "blue")
          | Dep.Output -> ("solid", "red")
          | Dep.Input -> ("dashed", "gray")
        in
        Buffer.add_string b
          (Printf.sprintf "  S%d -> S%d [style=%s, color=%s, label=\"%s\", fontsize=8];\n"
             d.src d.dst style color (Dep.kind_to_string d.kind))
      end)
    g.deps;
  Buffer.add_string b "}\n";
  Buffer.contents b
