(** The benchmark registry: Table 2 of the paper, with the scaled
    problem sizes used by the machine model. *)

type entry = {
  name : string;
  suite : string;  (** benchmark suite, as in Table 2 *)
  category : string;  (** application domain, as in Table 2 *)
  paper_size : string;  (** the problem size the paper used *)
  model_size : int;  (** our scaled N (see DESIGN.md) *)
  large : bool;  (** one of the paper's "large programs"? *)
  program : ?n:int -> unit -> Scop.Program.t;
}

(** All ten benchmarks, in the order of Table 2 (the five large
    programs first). *)
val all : entry list

(** @raise Not_found for unknown names. *)
val find : string -> entry

(** Build the program at its model size. *)
val build : entry -> Scop.Program.t
