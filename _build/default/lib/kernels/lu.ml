(* lu (Polybench): Gaussian elimination with a triangular (non-
   rectangular) iteration space.

     for k:
       for j = k+1 .. N-1:            S1: A[k][j] /= A[k][k]
       for i = k+1 .. N-1:
         for j = k+1 .. N-1:          S2: A[i][j] -= A[i][k] * A[k][j]

   S1 and S2 are mutually dependent (one SCC): every fusion model gets
   the same partitioning; the interesting comparison is against the
   icc model, which refuses to parallelize non-rectangular nests
   (Section 5.3, "Small Kernel Programs"). *)

open Scop.Build

let program ?(n = 24) () =
  let ctx = create ~name:"lu" ~params:[ ("N", n) ] in
  let n = param ctx "N" in
  let a = array ctx "A" [ n; n ] in
  loop ctx "k" ~lb:(ci 0) ~ub:(n -~ ci 1) (fun k ->
      loop ctx "j" ~lb:(k +~ ci 1) ~ub:(n -~ ci 1) (fun j ->
          assign ctx "S1" a [ k; j ] (a.%([ k; j ]) /: (a.%([ k; k ]) +: f 2.0)));
      loop ctx "i" ~lb:(k +~ ci 1) ~ub:(n -~ ci 1) (fun i ->
          loop ctx "j" ~lb:(k +~ ci 1) ~ub:(n -~ ci 1) (fun j ->
              assign ctx "S2" a [ i; j ]
                (a.%([ i; j ]) -: (a.%([ i; k ]) *: a.%([ k; j ]))))))
    ;
  finish ctx
