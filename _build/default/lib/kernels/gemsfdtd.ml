(* gemsfdtd (SPEC 2006): a UPMLupdateh-like routine - the subject of
   Figure 8. Six 3-D field-update statements (B and H for each of
   x/y/z, chained by flow dependences and sharing the E-field reads and
   the 1-D PML coefficient arrays) interleaved in program order with
   2-D boundary-plane statements. The dimensionality mix is what
   defeats both icc (adjacent nests of different dimensionality are
   never fused) and the DFS pre-fusion order of smartfuse; wisefuse
   reorders the same-dimensionality SCCs together and fuses all six 3-D
   statements into one nest (and the 2-D ones into another), minimizing
   the partition count as in Figure 8. *)

open Scop.Build

let program ?(n = 10) () =
  let ctx = create ~name:"gemsfdtd" ~params:[ ("N", n) ] in
  let n = param ctx "N" in
  let ext = n +~ ci 2 in
  let ex = array ctx "ex" [ ext; ext; ext ] in
  let ey = array ctx "ey" [ ext; ext; ext ] in
  let ez = array ctx "ez" [ ext; ext; ext ] in
  let bx = array ctx "bx" [ ext; ext; ext ] in
  let by = array ctx "by" [ ext; ext; ext ] in
  let bz = array ctx "bz" [ ext; ext; ext ] in
  let hx = array ctx "hx" [ ext; ext; ext ] in
  let hy = array ctx "hy" [ ext; ext; ext ] in
  let hz = array ctx "hz" [ ext; ext; ext ] in
  let den = array ctx "den" [ ext ] in
  let co1 = array ctx "co1" [ ext ] in
  let co2 = array ctx "co2" [ ext ] in
  let one = ci 1 in
  let lb = one and ub = n in
  let loop3 name body =
    loop ctx "i" ~lb ~ub (fun i ->
        loop ctx "j" ~lb ~ub (fun j ->
            loop ctx "k" ~lb ~ub (fun k -> body name i j k)))
  in
  (* the H updates iterate (k, i, j): same space, different loop order,
     so a traditional compiler cannot line them up with the B updates *)
  let loop3_permuted name body =
    loop ctx "k" ~lb ~ub (fun k ->
        loop ctx "i" ~lb ~ub (fun i ->
            loop ctx "j" ~lb ~ub (fun j -> body name i j k)))
  in
  let loop2 name body =
    loop ctx "i" ~lb ~ub (fun i -> loop ctx "j" ~lb ~ub (fun j -> body name i j))
  in
  (* Bx update (3-D), then Hx from Bx (3-D), then a 2-D boundary plane *)
  loop3 "S1" (fun name i j k ->
      assign ctx name bx [ i; j; k ]
        (bx.%([ i; j; k ])
        +: (den.%([ k ])
           *: (ey.%([ i; j; k +~ one ]) -: ey.%([ i; j; k ])
              -: ez.%([ i; j +~ one; k ]) +: ez.%([ i; j; k ])))));
  loop3_permuted "S2" (fun name i j k ->
      assign ctx name hx [ i; j; k ]
        ((co1.%([ i ]) *: hx.%([ i; j; k ])) +: (co2.%([ i ]) *: bx.%([ i; j; k ]))));
  loop2 "S3" (fun name i j ->
      assign ctx name bx [ i; j; ci 0 ] (bx.%([ i; j; n ])));
  (* By, Hy, boundary *)
  loop3 "S4" (fun name i j k ->
      assign ctx name by [ i; j; k ]
        (by.%([ i; j; k ])
        +: (den.%([ k ])
           *: (ez.%([ i +~ one; j; k ]) -: ez.%([ i; j; k ])
              -: ex.%([ i; j; k +~ one ]) +: ex.%([ i; j; k ])))));
  loop3_permuted "S5" (fun name i j k ->
      assign ctx name hy [ i; j; k ]
        ((co1.%([ i ]) *: hy.%([ i; j; k ])) +: (co2.%([ i ]) *: by.%([ i; j; k ]))));
  loop2 "S6" (fun name i j ->
      assign ctx name by [ i; j; ci 0 ] (by.%([ i; j; n ])));
  (* Bz, Hz, boundary *)
  loop3 "S7" (fun name i j k ->
      assign ctx name bz [ i; j; k ]
        (bz.%([ i; j; k ])
        +: (den.%([ k ])
           *: (ex.%([ i; j +~ one; k ]) -: ex.%([ i; j; k ])
              -: ey.%([ i +~ one; j; k ]) +: ey.%([ i; j; k ])))));
  loop3_permuted "S8" (fun name i j k ->
      assign ctx name hz [ i; j; k ]
        ((co1.%([ i ]) *: hz.%([ i; j; k ])) +: (co2.%([ i ]) *: bz.%([ i; j; k ]))));
  loop2 "S9" (fun name i j ->
      assign ctx name bz [ i; j; ci 0 ] (bz.%([ i; j; n ])));
  (* trailing 2-D H boundary planes *)
  loop2 "S10" (fun name i j ->
      assign ctx name hx [ i; j; ci 0 ] (hx.%([ i; j; n ])));
  loop2 "S11" (fun name i j ->
      assign ctx name hy [ i; j; ci 0 ] (hy.%([ i; j; n ])));
  loop2 "S12" (fun name i j ->
      assign ctx name hz [ i; j; ci 0 ] (hz.%([ i; j; n ])));
  finish ctx
