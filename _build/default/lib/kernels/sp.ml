(* sp (NPB Scalar Penta-diagonal): like bt, a three-pass directional
   structure, but with the penta-diagonal two-wide stencil (offsets of
   2 in the pass direction). Two statements per pass; the wider
   cross-pass offsets need larger shifts under maximal fusion, which
   makes the pipelined (smartfuse/maxfuse) variant even less
   attractive. *)

open Scop.Build

let program ?(n = 10) () =
  let ctx = create ~name:"sp" ~params:[ ("N", n) ] in
  let n = param ctx "N" in
  let ext = n +~ ci 6 in
  let v0 = array ctx "v0" [ ext; ext; ext ] in
  let v1 = array ctx "v1" [ ext; ext; ext ] in
  let v2 = array ctx "v2" [ ext; ext; ext ] in
  let v3 = array ctx "v3" [ ext; ext; ext ] in
  let work = array ctx "work" [ ext; ext; ext ] in
  let two = ci 2 in
  let pass tag (di, dj) input output =
    let name s = "S" ^ tag ^ s in
    (* Sa: penta-diagonal combination of the pass input *)
    loop ctx "i" ~lb:(ci 2) ~ub:(n +~ ci 3) (fun i ->
        loop ctx "j" ~lb:(ci 2) ~ub:(n +~ ci 3) (fun j ->
            loop ctx "k" ~lb:(ci 2) ~ub:(n +~ ci 3) (fun k ->
                assign ctx (name "a") work [ i; j; k ]
                  ((input.%([ i +~ (2 *~ di); j +~ (2 *~ dj); k +~ two ])
                   +: input.%([ i -~ (2 *~ di); j -~ (2 *~ dj); k -~ two ]))
                  *: f 0.25
                  +: ((input.%([ i +~ di; j +~ dj; k ])
                      +: input.%([ i -~ di; j -~ dj; k ]))
                     *: f 0.5)))));
    (* Sb: output update; reads work at an inner offset and the pass
       input at the same cell (bounds differ from Sa for the icc model) *)
    loop ctx "i" ~lb:(ci 3) ~ub:(n +~ ci 3) (fun i ->
        loop ctx "j" ~lb:(ci 2) ~ub:(n +~ ci 3) (fun j ->
            loop ctx "k" ~lb:(ci 2) ~ub:(n +~ ci 3) (fun k ->
                assign ctx (name "b") output [ i; j; k ]
                  (input.%([ i; j; k ])
                  +: ((work.%([ i; j; k ]) -: work.%([ i; j; k -~ two ])) *: f 0.2)))))
  in
  pass "x" (ci 1, ci 0) v0 v1;
  pass "y" (ci 0, ci 1) v1 v2;
  pass "z" (ci 1, ci 1) v2 v3;
  finish ctx
