(* gemver (Polybench; Figure 1(a) of the paper):

     for i for j: S1: A[i][j] += u1[i]*v1[j] + u2[i]*v2[j]
     for i for j: S2: x[i]    += beta * A[j][i] * y[j]
     for i:       S3: x[i]    += z[i]
     for i for j: S4: w[i]    += alpha * A[i][j] * x[j]

   Fusing S1 and S2 requires interchanging S1's loops (Figure 1(c));
   the paper's Figure 3 shows the resulting statement-wise transforms. *)

open Scop.Build

let beta_c = 1.2
let alpha_c = 1.5

let program ?(n = 40) () =
  let ctx = create ~name:"gemver" ~params:[ ("N", n) ] in
  let n = param ctx "N" in
  let a = array ctx "A" [ n; n ] in
  let u1 = array ctx "u1" [ n ] and v1 = array ctx "v1" [ n ] in
  let u2 = array ctx "u2" [ n ] and v2 = array ctx "v2" [ n ] in
  let x = array ctx "x" [ n ] and y = array ctx "y" [ n ] in
  let z = array ctx "z" [ n ] and w = array ctx "w" [ n ] in
  let lb = ci 0 and ub = n -~ ci 1 in
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S1" a [ i; j ]
            (a.%([ i; j ])
            +: (u1.%([ i ]) *: v1.%([ j ]))
            +: (u2.%([ i ]) *: v2.%([ j ])))));
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S2" x [ i ]
            (x.%([ i ]) +: (f beta_c *: a.%([ j; i ]) *: y.%([ j ])))));
  loop ctx "i" ~lb ~ub (fun i ->
      assign ctx "S3" x [ i ] (x.%([ i ]) +: z.%([ i ])));
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S4" w [ i ]
            (w.%([ i ]) +: (f alpha_c *: a.%([ i; j ]) *: x.%([ j ])))));
  finish ctx
