(* applu (SPEC OMP, CFD): an x-pass / y-pass / z-pass structure (the
   SSOR sweeps' flux computations). Each pass holds statements that
   share pass-local flux arrays — reuse through {e input} dependences,
   exactly the structure the paper credits wisefuse with exploiting
   ("wisefuse fused SCCs that belonged to the same pass (x-, y- or
   z-pass) and thus enjoyed excellent reuse through the input
   dependences", Section 5.3).

   Passes are chained by spatially-offset flow dependences, so fusing
   {e across} passes needs shifting and turns the outer loop into a
   pipelined loop (what smartfuse does); wisefuse's Algorithm 2 cuts
   between the passes instead. Within a pass, the nests have slightly
   different bounds, so the icc model cannot fuse them at all. *)

open Scop.Build

let program ?(n = 10) () =
  let ctx = create ~name:"applu" ~params:[ ("N", n) ] in
  let n = param ctx "N" in
  let ext = n +~ ci 2 in
  let u = array ctx "u" [ ext; ext; ext ] in
  let rsd = array ctx "rsd" [ ext; ext; ext ] in
  let flux_x = array ctx "flux_x" [ ext; ext; ext ] in
  let flux_y = array ctx "flux_y" [ ext; ext; ext ] in
  let flux_z = array ctx "flux_z" [ ext; ext; ext ] in
  let one = ci 1 in
  let pass name_flux flux off_i off_j prev =
    (* Sa: flux from u (stencil along the pass direction);
       Sb: rsd update reading the same flux twice-shifted (RAR with Sa's
       reads) and the previous pass's result at an offset *)
    let sa = "S" ^ name_flux ^ "a" and sb = "S" ^ name_flux ^ "b" in
    loop ctx "i" ~lb:one ~ub:n (fun i ->
        loop ctx "j" ~lb:one ~ub:n (fun j ->
            loop ctx "k" ~lb:one ~ub:n (fun k ->
                assign ctx sa flux [ i; j; k ]
                  ((u.%([ i +~ off_i; j +~ off_j; k ]) -: u.%([ i; j; k ]))
                  *: f 0.5))));
    (* different bounds: starts at 2 - non-conformable for icc; the
       flux difference is along k (innermost), so within-pass fusion
       keeps the outer loop parallel, while the previous pass's result
       is read at a diagonal (i-1, j-1, k-1) offset, so cross-pass
       fusion needs shifting and no outer loop stays
       communication-free *)
    loop ctx "i" ~lb:(ci 2) ~ub:n (fun i ->
        loop ctx "j" ~lb:one ~ub:n (fun j ->
            loop ctx "k" ~lb:one ~ub:n (fun k ->
                assign ctx sb rsd [ i; j; k ]
                  (rsd.%([ i; j; k ])
                  +: (flux.%([ i; j; k ]) -: flux.%([ i; j; k -~ one ]))
                  +: (prev.%([ i -~ one; j -~ one; k -~ one ]) *: f 0.125)))))
  in
  pass "x" flux_x one (ci 0) u;
  pass "y" flux_y (ci 0) one flux_x;
  pass "z" flux_z one one flux_y;
  finish ctx
