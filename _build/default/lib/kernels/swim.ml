(* swim (SPEC OMP; the Figure 2 excerpt of the paper, 18 statements):

   - a first 2-D nest computing unew/vnew/pnew (S1-S3) with heavy
     read reuse of cu, cv, z, h among the three statements;
   - nine 1-D "intermediate" statements fixing periodic boundaries of
     unew, vnew and some of their inputs (S4-S12) - dimensionality 1;
   - a second 2-D nest (time smoothing, S13-S18) whose u/v statements
     (S13, S16, S14, S17) depend on the boundary fixes while the
     p statements (S15, S18) do not.

   Algorithm 1 therefore orders S15 and S18 right after S1-S3
   (same dimensionality, reuse through pnew/p, precedence satisfied),
   reproducing the fused nest of Figure 5(b); the DFS order used by
   PLuTo interleaves the 1-D SCCs and loses that fusion (Figure 5(c)).

   The second nest ranges over 0..N so that u/v statements read the
   boundary cells written by S4-S12, creating the blocking
   dependences the paper describes; pnew has no boundary statement, so
   S15/S18 stay independent of the intermediates. *)

open Scop.Build

let alpha = 0.2

let program ?(n = 16) () =
  let ctx = create ~name:"swim" ~params:[ ("N", n) ] in
  let n = param ctx "N" in
  let ext = n +~ ci 2 in
  let cu = array ctx "cu" [ ext; ext ] in
  let cv = array ctx "cv" [ ext; ext ] in
  let z = array ctx "z" [ ext; ext ] in
  let h = array ctx "h" [ ext; ext ] in
  let u = array ctx "u" [ ext; ext ] in
  let v = array ctx "v" [ ext; ext ] in
  let p = array ctx "p" [ ext; ext ] in
  let uold = array ctx "uold" [ ext; ext ] in
  let vold = array ctx "vold" [ ext; ext ] in
  let pold = array ctx "pold" [ ext; ext ] in
  let unew = array ctx "unew" [ ext; ext ] in
  let vnew = array ctx "vnew" [ ext; ext ] in
  let pnew = array ctx "pnew" [ ext; ext ] in
  let one = ci 1 in
  (* first nest: 1..N x 1..N *)
  loop ctx "i" ~lb:one ~ub:n (fun i ->
      loop ctx "j" ~lb:one ~ub:n (fun j ->
          assign ctx "S1" unew [ i; j ]
            (uold.%([ i; j ])
            +: (f 0.1
               *: (z.%([ i +~ one; j +~ one ]) +: z.%([ i +~ one; j ]))
               *: (cv.%([ i +~ one; j +~ one ]) +: cv.%([ i; j +~ one ])))
            -: (f 0.2 *: (h.%([ i +~ one; j ]) -: h.%([ i; j ]))));
          assign ctx "S2" vnew [ i; j ]
            (vold.%([ i; j ])
            -: (f 0.1
               *: (z.%([ i +~ one; j +~ one ]) +: z.%([ i; j +~ one ]))
               *: (cu.%([ i +~ one; j +~ one ]) +: cu.%([ i +~ one; j ])))
            -: (f 0.2 *: (h.%([ i; j +~ one ]) -: h.%([ i; j ]))));
          assign ctx "S3" pnew [ i; j ]
            (pold.%([ i; j ])
            -: (f 0.3 *: (cu.%([ i +~ one; j ]) -: cu.%([ i; j ])))
            -: (f 0.3 *: (cv.%([ i; j +~ one ]) -: cv.%([ i; j ]))))));
  (* intermediate 1-D boundary statements: S4 - S12 *)
  loop ctx "k" ~lb:one ~ub:n (fun k ->
      assign ctx "S4" unew [ k; ci 0 ] (unew.%([ k; n ])));
  loop ctx "k" ~lb:one ~ub:n (fun k ->
      assign ctx "S5" unew [ ci 0; k ] (unew.%([ n; k ])));
  loop ctx "k" ~lb:one ~ub:n (fun k ->
      assign ctx "S6" cu [ k; ci 0 ] (cu.%([ k; n ])));
  loop ctx "k" ~lb:one ~ub:n (fun k ->
      assign ctx "S7" vnew [ k; ci 0 ] (vnew.%([ k; n ])));
  loop ctx "k" ~lb:one ~ub:n (fun k ->
      assign ctx "S8" vnew [ ci 0; k ] (vnew.%([ n; k ])));
  loop ctx "k" ~lb:one ~ub:n (fun k ->
      assign ctx "S9" cv [ k; ci 0 ] (cv.%([ k; n ])));
  loop ctx "k" ~lb:one ~ub:n (fun k ->
      assign ctx "S10" z [ k; ci 0 ] (z.%([ k; n ])));
  loop ctx "k" ~lb:one ~ub:n (fun k ->
      assign ctx "S11" h [ k; ci 0 ] (h.%([ k; n ])));
  loop ctx "k" ~lb:one ~ub:n (fun k ->
      assign ctx "S12" u [ k; ci 0 ] (u.%([ k; n ])));
  (* second nest: time smoothing over 0..N (reads the boundary cells) *)
  loop ctx "i" ~lb:(ci 0) ~ub:n (fun i ->
      loop ctx "j" ~lb:(ci 0) ~ub:n (fun j ->
          assign ctx "S13" uold [ i; j ]
            (u.%([ i; j ])
            +: (f alpha
               *: (unew.%([ i; j ]) -: (f 2.0 *: u.%([ i; j ])) +: uold.%([ i; j ]))));
          assign ctx "S14" vold [ i; j ]
            (v.%([ i; j ])
            +: (f alpha
               *: (vnew.%([ i; j ]) -: (f 2.0 *: v.%([ i; j ])) +: vold.%([ i; j ]))));
          assign ctx "S15" pold [ i; j ]
            (p.%([ i; j ])
            +: (f alpha
               *: (pnew.%([ i; j ]) -: (f 2.0 *: p.%([ i; j ])) +: pold.%([ i; j ]))));
          assign ctx "S16" u [ i; j ] (unew.%([ i; j ]));
          assign ctx "S17" v [ i; j ] (vnew.%([ i; j ]));
          assign ctx "S18" p [ i; j ] (pnew.%([ i; j ]))));
  finish ctx
