(* wupwise (SPEC OMP, lattice QCD): 60% of its time is zgemm - complex
   matrix multiplication - written as a collection of imperfect nests.
   The data-dependent control flow of the original is made affine by
   predication ([8] in the paper): the predicate array enters the
   arithmetic as a multiplicative mask, which is exactly what
   if-conversion produces.

   Structure: a 2-D initialization pair (real/imaginary accumulators)
   followed by a 3-D complex multiply-accumulate pair. wisefuse
   distributes by dimensionality into two perfect nests and
   parallelizes both; the icc model keeps the imperfect structure and,
   because the 3-D nest is an inner-loop reduction, does not
   parallelize it - reproducing the serial-vs-8-core gap the paper
   reports (20% serial, 40% on 8 cores). *)

open Scop.Build

let program ?(n = 22) () =
  let ctx = create ~name:"wupwise" ~params:[ ("N", n) ] in
  let n = param ctx "N" in
  let ar = array ctx "ar" [ n; n ] and ai = array ctx "ai" [ n; n ] in
  let br = array ctx "br" [ n; n ] and bi = array ctx "bi" [ n; n ] in
  let cr = array ctx "cr" [ n; n ] and ci_ = array ctx "ci" [ n; n ] in
  let pred = array ctx "pred" [ n ] in
  let lb = ci 0 and ub = n -~ ci 1 in
  (* imperfect nest: the init statements sit at depth 2, the multiply-
     accumulate at depth 3, all under the same (i, j) loops *)
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S1" cr [ i; j ] (pred.%([ i ]) *: f 0.0);
          assign ctx "S2" ci_ [ i; j ] (pred.%([ i ]) *: f 0.0);
          loop ctx "k" ~lb ~ub (fun k ->
              assign ctx "S3" cr [ i; j ]
                (cr.%([ i; j ])
                +: (pred.%([ i ])
                   *: ((ar.%([ i; k ]) *: br.%([ k; j ]))
                      -: (ai.%([ i; k ]) *: bi.%([ k; j ])))));
              assign ctx "S4" ci_ [ i; j ]
                (ci_.%([ i; j ])
                +: (pred.%([ i ])
                   *: ((ar.%([ i; k ]) *: bi.%([ k; j ]))
                      +: (ai.%([ i; k ]) *: br.%([ k; j ]))))))));
  finish ctx
