lib/kernels/registry.ml: Advect Applu Bt Gemsfdtd Gemver List Lu Scop Sp Swim Tce Wupwise
