lib/kernels/gemver.ml: Scop
