lib/kernels/extras.mli: Scop
