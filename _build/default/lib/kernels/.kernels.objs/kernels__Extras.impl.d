lib/kernels/extras.ml: Scop
