lib/kernels/advect.ml: Scop
