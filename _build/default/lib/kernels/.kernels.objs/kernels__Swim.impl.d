lib/kernels/swim.ml: Scop
