lib/kernels/tce.ml: Scop
