lib/kernels/applu.ml: Scop
