lib/kernels/lu.ml: Scop
