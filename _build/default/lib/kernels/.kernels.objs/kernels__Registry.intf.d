lib/kernels/registry.mli: Scop
