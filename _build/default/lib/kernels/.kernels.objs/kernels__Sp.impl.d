lib/kernels/sp.ml: Scop
