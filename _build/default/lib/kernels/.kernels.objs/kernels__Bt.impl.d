lib/kernels/bt.ml: Scop
