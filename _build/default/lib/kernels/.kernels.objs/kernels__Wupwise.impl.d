lib/kernels/wupwise.ml: Scop
