lib/kernels/gemsfdtd.ml: Scop
