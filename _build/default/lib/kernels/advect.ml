(* advect (the PLuTo weather-modeling example; Figure 4 of the paper):
   three flux statements S1-S3 followed by an update S4 whose stencil
   reads cx[i][j+1] and cy[i+1][j]. Full fusion needs S4 shifted by one
   iteration (Figure 4(c)), turning the outer loop into a
   forward-dependence (pipelined) loop; Algorithm 2 instead distributes
   only S4 (Figure 6), keeping both nests outer-parallel. *)

open Scop.Build

let program ?(n = 30) () =
  let ctx = create ~name:"advect" ~params:[ ("N", n) ] in
  let n = param ctx "N" in
  let ext = n +~ ci 2 in
  let u = array ctx "u" [ ext; ext ] in
  let v = array ctx "v" [ ext; ext ] in
  let w0 = array ctx "w0" [ ext; ext ] in
  let cx = array ctx "cx" [ ext; ext ] in
  let cy = array ctx "cy" [ ext; ext ] in
  let cz = array ctx "cz" [ ext; ext ] in
  let adv = array ctx "adv" [ ext; ext ] in
  let lb = ci 1 and ub = n in
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S1" cx [ i; j ]
            ((u.%([ i; j ]) +: u.%([ i; j +~ ci 1 ])) *: f 0.5)));
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S2" cy [ i; j ]
            ((v.%([ i; j ]) +: v.%([ i +~ ci 1; j ]) +: u.%([ i; j ])) *: f 0.25)));
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S3" cz [ i; j ]
            ((w0.%([ i; j ]) +: u.%([ i; j ])) *: f 0.5)));
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S4" adv [ i; j ]
            (cx.%([ i; j ]) -: cx.%([ i; j +~ ci 1 ])
            +: (cy.%([ i; j ]) -: cy.%([ i +~ ci 1; j ]))
            +: cz.%([ i; j ]))));
  finish ctx
