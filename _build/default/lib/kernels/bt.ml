(* bt (NPB Block-Tridiagonal, CLASS-C-like structure at model scale):
   three directional passes (x, y, z), each with three statements -
   a stencil "jacobian" (Sa), a right-hand-side update reading it at an
   inner-dimension offset (Sb), and the solution update (Sc) writing
   the pass's output array. Passes communicate through spatially-offset
   reads of the previous pass's output, so cross-pass fusion needs
   shifting and costs outer parallelism; within-pass fusion is
   outer-parallel and reuse-rich (shared reads of the pass input). *)

open Scop.Build

let program ?(n = 10) () =
  let ctx = create ~name:"bt" ~params:[ ("N", n) ] in
  let n = param ctx "N" in
  let ext = n +~ ci 4 in
  let u0 = array ctx "u0" [ ext; ext; ext ] in
  let u1 = array ctx "u1" [ ext; ext; ext ] in
  let u2 = array ctx "u2" [ ext; ext; ext ] in
  let u3 = array ctx "u3" [ ext; ext; ext ] in
  let lhs = array ctx "lhs" [ ext; ext; ext ] in
  let rhs = array ctx "rhs" [ ext; ext; ext ] in
  let one = ci 1 in
  let pass tag (di, dj) input output =
    let name s = "S" ^ tag ^ s in
    (* Sa: directional second difference of the pass input *)
    loop ctx "i" ~lb:(ci 2) ~ub:(n +~ one) (fun i ->
        loop ctx "j" ~lb:(ci 2) ~ub:(n +~ one) (fun j ->
            loop ctx "k" ~lb:(ci 2) ~ub:(n +~ one) (fun k ->
                assign ctx (name "a") lhs [ i; j; k ]
                  (input.%([ i +~ di; j +~ dj; k +~ one ])
                  +: input.%([ i -~ di; j -~ dj; k -~ one ])
                  -: (f 2.0 *: input.%([ i; j; k ]))))));
    (* Sb: rhs from lhs at a k-offset (bounds differ: icc cannot fuse) *)
    loop ctx "i" ~lb:(ci 2) ~ub:n (fun i ->
        loop ctx "j" ~lb:(ci 2) ~ub:(n +~ one) (fun j ->
            loop ctx "k" ~lb:(ci 2) ~ub:(n +~ one) (fun k ->
                assign ctx (name "b") rhs [ i; j; k ]
                  ((lhs.%([ i; j; k ]) -: lhs.%([ i; j; k -~ one ])) *: f 0.5
                  +: input.%([ i; j; k ])))));
    (* Sc: pass output *)
    loop ctx "i" ~lb:(ci 2) ~ub:n (fun i ->
        loop ctx "j" ~lb:(ci 2) ~ub:(n +~ one) (fun j ->
            loop ctx "k" ~lb:(ci 2) ~ub:(n +~ one) (fun k ->
                assign ctx (name "c") output [ i; j; k ]
                  (input.%([ i; j; k ]) +: (rhs.%([ i; j; k ]) *: f 0.1)))))
  in
  pass "x" (one, ci 0) u0 u1;
  pass "y" (ci 0, one) u1 u2;
  pass "z" (one, one) u2 u3;
  finish ctx
