(** Additional Polybench kernels (beyond Table 2), backing the paper's
    claim that wisefuse matches smartfuse's partitionings on small
    kernel programs (Section 5.3). *)

(** Time-iterated 5-point stencil with copy-back. *)
val jacobi2d : ?n:int -> ?steps:int -> unit -> Scop.Program.t

(** Two matrix-vector products, one transposed. *)
val mvt : ?n:int -> unit -> Scop.Program.t

(** Tensor contraction with copy-back under two outer loops. *)
val doitgen : ?n:int -> unit -> Scop.Program.t

(** In-place Gauss-Seidel-style sweep (tight recurrence). *)
val sweep2d : ?n:int -> unit -> Scop.Program.t

(** All extras with default sizes. *)
val all : (string * (unit -> Scop.Program.t)) list
