(* tce (Polybench / computational chemistry): four 3-D loop nests with
   heavy producer-consumer reuse, each written with its loops in a
   different order. A traditional compiler finds no conformable pattern
   to fuse (the paper, Section 5.3); the polyhedral models find common
   hyperplanes (per-statement permutations) and fuse all four. *)

open Scop.Build

let program ?(n = 14) () =
  let ctx = create ~name:"tce" ~params:[ ("N", n) ] in
  let n = param ctx "N" in
  let x = array ctx "x" [ n; n; n ] in
  let y = array ctx "y" [ n; n; n ] in
  let t1 = array ctx "t1" [ n; n; n ] in
  let t2 = array ctx "t2" [ n; n; n ] in
  let t3 = array ctx "t3" [ n; n; n ] in
  let out = array ctx "out" [ n; n; n ] in
  let lb = ci 0 and ub = n -~ ci 1 in
  (* nest 1: (a, b, c) *)
  loop ctx "a" ~lb ~ub (fun a ->
      loop ctx "b" ~lb ~ub (fun b ->
          loop ctx "c" ~lb ~ub (fun c ->
              assign ctx "S1" t1 [ a; b; c ]
                ((x.%([ a; b; c ]) +: y.%([ a; b; c ])) *: f 0.5))));
  (* nest 2: loops permuted to (b, c, a) *)
  loop ctx "b" ~lb ~ub (fun b ->
      loop ctx "c" ~lb ~ub (fun c ->
          loop ctx "a" ~lb ~ub (fun a ->
              assign ctx "S2" t2 [ a; b; c ]
                (t1.%([ a; b; c ]) +: (x.%([ a; b; c ]) *: f 0.25)))));
  (* nest 3: loops permuted to (c, a, b) *)
  loop ctx "c" ~lb ~ub (fun c ->
      loop ctx "a" ~lb ~ub (fun a ->
          loop ctx "b" ~lb ~ub (fun b ->
              assign ctx "S3" t3 [ a; b; c ]
                (t2.%([ a; b; c ]) *: t1.%([ a; b; c ])))));
  (* nest 4: loops permuted to (b, a, c) *)
  loop ctx "b" ~lb ~ub (fun b ->
      loop ctx "a" ~lb ~ub (fun a ->
          loop ctx "c" ~lb ~ub (fun c ->
              assign ctx "S4" out [ a; b; c ]
                (t3.%([ a; b; c ]) +: t2.%([ a; b; c ]) +: y.%([ a; b; c ])))));
  finish ctx
