(* Additional Polybench kernels, beyond Table 2.

   Section 5.3: "for other benchmarks from the Polybench benchmark
   suite, wisefuse achieves the same fusion partitioning as smartfuse,
   proving the effectiveness of the heuristics employed by wisefuse
   even for small kernel programs". These kernels back that claim in
   the bench harness (experiment "extras"). *)

open Scop.Build

(* jacobi-2d: a time-iterated 5-point stencil with a copy-back
   statement; the t loop is serial, the space loops parallel; fusion of
   S1 and S2 inside a timestep is the interesting decision. *)
let jacobi2d ?(n = 14) ?(steps = 6) () =
  let ctx = create ~name:"jacobi2d" ~params:[ ("N", n); ("T", steps) ] in
  let n = param ctx "N" in
  let t_ = param ctx "T" in
  let ext = n +~ ci 2 in
  let a = array ctx "A" [ ext; ext ] in
  let b = array ctx "B" [ ext; ext ] in
  let one = ci 1 in
  loop ctx "t" ~lb:(ci 0) ~ub:(t_ -~ ci 1) (fun _t ->
      loop ctx "i" ~lb:one ~ub:n (fun i ->
          loop ctx "j" ~lb:one ~ub:n (fun j ->
              assign ctx "S1" b [ i; j ]
                ((a.%([ i; j ])
                 +: a.%([ i; j -~ one ])
                 +: a.%([ i; j +~ one ])
                 +: a.%([ i +~ one; j ])
                 +: a.%([ i -~ one; j ]))
                *: f 0.2)));
      loop ctx "i" ~lb:one ~ub:n (fun i ->
          loop ctx "j" ~lb:one ~ub:n (fun j ->
              assign ctx "S2" a [ i; j ] (b.%([ i; j ])))));
  finish ctx

(* mvt: two independent matrix-vector products, one transposed -
   fusable only with per-statement loop permutation. *)
let mvt ?(n = 40) () =
  let ctx = create ~name:"mvt" ~params:[ ("N", n) ] in
  let n = param ctx "N" in
  let a = array ctx "A" [ n; n ] in
  let x1 = array ctx "x1" [ n ] and x2 = array ctx "x2" [ n ] in
  let y1 = array ctx "y1" [ n ] and y2 = array ctx "y2" [ n ] in
  let lb = ci 0 and ub = n -~ ci 1 in
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S1" x1 [ i ] (x1.%([ i ]) +: (a.%([ i; j ]) *: y1.%([ j ])))));
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S2" x2 [ i ] (x2.%([ i ]) +: (a.%([ j; i ]) *: y2.%([ j ])))));
  finish ctx

(* doitgen: a contraction followed by a copy-back, inside two outer
   loops - the copy-back statement blocks naive fusion. *)
let doitgen ?(n = 10) () =
  let ctx = create ~name:"doitgen" ~params:[ ("N", n) ] in
  let n = param ctx "N" in
  let a = array ctx "A" [ n; n; n ] in
  let c4 = array ctx "C4" [ n; n ] in
  let sum = array ctx "sum" [ n; n; n ] in
  let lb = ci 0 and ub = n -~ ci 1 in
  loop ctx "r" ~lb ~ub (fun r ->
      loop ctx "q" ~lb ~ub (fun q ->
          loop ctx "p" ~lb ~ub (fun p ->
              loop ctx "s" ~lb ~ub (fun s ->
                  assign ctx "S1" sum [ r; q; p ]
                    (sum.%([ r; q; p ]) +: (a.%([ r; q; s ]) *: c4.%([ s; p ])))))));
  loop ctx "r" ~lb ~ub (fun r ->
      loop ctx "q" ~lb ~ub (fun q ->
          loop ctx "p" ~lb ~ub (fun p ->
              assign ctx "S2" a [ r; q; p ] (sum.%([ r; q; p ])))));
  finish ctx

(* seidel-like in-place sweep: a single statement whose dependences
   force a serial outer loop; exercises the scheduler on tight
   recurrences. *)
let sweep2d ?(n = 16) () =
  let ctx = create ~name:"sweep2d" ~params:[ ("N", n) ] in
  let n = param ctx "N" in
  let ext = n +~ ci 2 in
  let a = array ctx "A" [ ext; ext ] in
  let one = ci 1 in
  loop ctx "i" ~lb:one ~ub:n (fun i ->
      loop ctx "j" ~lb:one ~ub:n (fun j ->
          assign ctx "S1" a [ i; j ]
            ((a.%([ i -~ one; j ]) +: a.%([ i; j -~ one ]) +: a.%([ i; j ]))
            *: f 0.333)));
  finish ctx

let all =
  [ ("jacobi2d", fun () -> jacobi2d ());
    ("mvt", fun () -> mvt ());
    ("doitgen", fun () -> doitgen ());
    ("sweep2d", fun () -> sweep2d ()) ]
