(** Exact integer linear programming by branch-and-bound over the
    rational simplex ({!Lp}).

    Used for: the per-level hyperplane ILP of the Pluto-style scheduler
    (bounded coefficient boxes, so termination is structural) and exact
    integer emptiness of dependence polyhedra. *)

type answer =
  | Optimal of Linalg.Q.t * int array
      (** objective value (an integer when the objective has integer
          coefficients) and an optimal integer point *)
  | Infeasible
  | Unbounded  (** the LP relaxation is unbounded in the objective *)
  | Gave_up  (** node budget exhausted without a conclusion *)

(** [minimize ?max_nodes p obj] minimizes the affine objective [obj]
    (length [dim p + 1]) over the integer points of [p]. *)
val minimize :
  ?max_nodes:int -> ?nonneg:bool -> Poly.Polyhedron.t -> Linalg.Vec.t -> answer

(** [integer_point ?max_nodes p] finds any integer point, if one
    exists. [None] means "none exists" when the search completed,
    and "unknown" when the node budget ran out (see {!feasible} for a
    sound wrapper). *)
val integer_point :
  ?max_nodes:int -> ?nonneg:bool -> Poly.Polyhedron.t -> int array option

(** [feasible p]: does [p] contain an integer point?

    Exact when the branch-and-bound concludes within budget. If the
    budget runs out, the answer falls back to rational feasibility,
    which errs on the side of reporting a dependence — conservative
    (never unsound) for the legality analyses built on top. *)
val feasible : Poly.Polyhedron.t -> bool

(** [lexmin ?max_nodes p objs] sequentially minimizes the affine
    objectives in [objs], fixing each to its optimum before the next
    (lexicographic minimization). Returns the objective values and a
    final optimal point, or [None] if infeasible / unbounded /
    inconclusive. *)
val lexmin :
  ?max_nodes:int ->
  ?nonneg:bool ->
  Poly.Polyhedron.t ->
  Linalg.Vec.t list ->
  (Linalg.Q.t list * int array) option

(** [remove_redundant p] drops every inequality that is implied by the
    remaining constraints (exact rational LP test per row; equalities
    are kept). The result describes the same set with (often far) fewer
    rows - used to shrink Fourier-Motzkin output before it enters a
    larger ILP. *)
val remove_redundant : Poly.Polyhedron.t -> Poly.Polyhedron.t
