(** Exact rational linear programming (two-phase dense simplex,
    Bland's rule, arbitrary-precision arithmetic).

    Variables are unrestricted in sign; non-negativity must appear as
    explicit constraints in the polyhedron when wanted. Termination is
    guaranteed by Bland's anti-cycling rule; exactness by {!Linalg.Q}. *)

type result =
  | Infeasible
  | Unbounded
  | Optimal of Linalg.Q.t * Linalg.Vec.t
      (** optimal objective value and one optimal point *)

(** [minimize ?nonneg p obj] minimizes the affine objective [obj]
    (length [dim p + 1], trailing constant) over polyhedron [p].
    With [nonneg:true] every variable is additionally constrained to be
    [>= 0] (and the free-variable split is skipped — cheaper; callers
    must not also add explicit [x >= 0] rows).
    @raise Invalid_argument on objective length mismatch. *)
val minimize : ?nonneg:bool -> Poly.Polyhedron.t -> Linalg.Vec.t -> result

(** [maximize p obj] likewise (implemented by negation). *)
val maximize : ?nonneg:bool -> Poly.Polyhedron.t -> Linalg.Vec.t -> result

(** [feasible_point p] returns a rational point of [p] if one exists
    (phase-1 only). *)
val feasible_point : ?nonneg:bool -> Poly.Polyhedron.t -> Linalg.Vec.t option

(** Number of LP solves since process start (diagnostics). *)
val solve_count : unit -> int

(** Number of simplex pivots since process start (diagnostics). *)
val pivot_count : unit -> int
