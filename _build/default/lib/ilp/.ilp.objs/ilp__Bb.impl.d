lib/ilp/bb.ml: Array Bigint Constr Linalg List Lp Option Poly Polyhedron Q Vec
