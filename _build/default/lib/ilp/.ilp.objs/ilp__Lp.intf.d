lib/ilp/lp.mli: Linalg Poly
