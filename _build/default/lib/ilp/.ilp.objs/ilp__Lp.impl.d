lib/ilp/lp.ml: Array Constr Linalg List Poly Polyhedron Q Vec
