lib/ilp/bb.mli: Linalg Poly
