lib/codegen/ast.mli: Format Scop
