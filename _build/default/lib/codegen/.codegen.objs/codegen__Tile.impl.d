lib/codegen/tile.ml: Array Ast Deps Linalg List Pluto Scan
