lib/codegen/tile.mli: Ast Deps Pluto Scop
