lib/codegen/scan.mli: Ast Deps Pluto Scop
