lib/codegen/ast.ml: Array Buffer Format List Printf Scop String
