lib/codegen/cprint.ml: Access Array Ast Buffer Expr Format Linalg List Poly Printf Program Scop Statement String
