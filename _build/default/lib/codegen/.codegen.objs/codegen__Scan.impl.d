lib/codegen/scan.ml: Array Ast Bigint Constr Deps Fun Hashtbl Linalg List Mat Option Pluto Poly Polyhedron Printf Q Scop
