lib/codegen/cprint.mli: Ast Scop
