(** Polyhedra scanning: turn a schedule into a loop AST (mini-CLooG).

    For every statement the {e transformed domain} — the image of its
    iteration domain under its schedule rows — is computed exactly by
    Fourier-Motzkin elimination; loop bounds at each level are the
    projections of those domains. Statements sharing a fusion
    partition share loops, with per-instance guards (domain membership,
    integer inversion, constant-row equality) making unequal domains,
    shifts, and lower-dimensional statements correct. *)

(** [generate ~prog ~sched ~deps] builds the AST for an arbitrary
    schedule. [deps] (true dependences) drive the parallelism marks on
    loops. *)
val generate :
  prog:Scop.Program.t ->
  sched:Pluto.Sched.t ->
  deps:Deps.Dep.t list ->
  Ast.node

(** AST of a scheduling result. *)
val of_result : Pluto.Scheduler.result -> Ast.node

(** The identity (2d+1, original program order) schedule. *)
val identity_schedule : Scop.Program.t -> Pluto.Sched.t

(** AST of the original program (identity schedule). *)
val original : Scop.Program.t -> deps:Deps.Dep.t list -> Ast.node
