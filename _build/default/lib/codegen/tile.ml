open Ast

(* row index (into the schedule) of each loop level *)
let loop_rows (sched : Pluto.Sched.t) =
  let rec go i = function
    | [] -> []
    | Pluto.Sched.Hyp _ :: rest -> i :: go (i + 1) rest
    | Pluto.Sched.Beta _ :: rest -> go (i + 1) rest
  in
  go 0 sched.(0)

let rec members = function
  | Exec i -> [ i.stmt_id ]
  | Seq l -> List.concat_map members l
  | Loop l -> members l.body

(* the chain of directly nested loops starting at [node] *)
let rec chain node =
  match node with
  | Loop l -> (
    match l.body with
    | Loop _ -> l :: chain l.body
    | Seq _ | Exec _ -> [ l ])
  | Seq _ | Exec _ -> []

(* structural tileability of one band loop: unit denominators and no
   reference to variables inside the band *)
let loop_tileable ~band_start (l : loop) =
  let bound_ok (b : bound) =
    b.den = 1
    &&
    let ok = ref true in
    for i = band_start to l.level - 1 do
      if b.num.(i) <> 0 then ok := false
    done;
    !ok
  in
  List.for_all (List.for_all bound_ok) l.lb_groups
  && List.for_all (List.for_all bound_ok) l.ub_groups

(* full-permutability prefix of a chain: all live dependences have
   delta >= 0 at every row of the prefix *)
let permutable_prefix ~prog ~sched ~deps ~rows_of_level chain_loops =
  match chain_loops with
  | [] -> 0
  | first :: _ ->
    let mem = members (Loop first) in
    let row0 = List.nth rows_of_level first.level in
    let live =
      List.filter
        (fun (d : Deps.Dep.t) ->
          Deps.Dep.is_true d
          && List.mem d.Deps.Dep.src mem
          && List.mem d.Deps.Dep.dst mem
          &&
          match Pluto.Satisfy.satisfaction_level prog d sched with
          | Some l -> l >= row0
          | None -> true)
        deps
    in
    let row_ok level =
      let row = List.nth rows_of_level level in
      List.for_all
        (fun d ->
          let r = Pluto.Satisfy.diff_range prog d sched ~level:row in
          match r.Pluto.Satisfy.dmin with
          | Some v -> Linalg.Q.sign v >= 0
          | None -> false)
        live
    in
    let rec go k = function
      | l :: rest
        when loop_tileable ~band_start:first.level l && row_ok l.level ->
        go (k + 1) rest
      | _ -> k
    in
    go 0 chain_loops

(* --- index shifting -------------------------------------------------------- *)

(* insert [k] zero slots at position [at] in a bound numerator *)
let shift_num ~at ~k (num : int array) =
  let w = Array.length num in
  Array.init (w + k) (fun i ->
      if i < at then num.(i) else if i < at + k then 0 else num.(i - k))

let shift_bound ~at ~k (b : bound) = { b with num = shift_num ~at ~k b.num }

let rec shift_node ~at ~k node =
  match node with
  | Seq l -> Seq (List.map (shift_node ~at ~k) l)
  | Exec inst ->
    Exec
      {
        inst with
        sel_levels =
          Array.map (fun l -> if l >= at then l + k else l) inst.sel_levels;
        const_rows =
          Array.map
            (fun (l, row) -> ((if l >= at then l + k else l), row))
            inst.const_rows;
      }
  | Loop l ->
    Loop
      {
        l with
        level = (if l.level >= at then l.level + k else l.level);
        lb_groups = List.map (List.map (shift_bound ~at ~k)) l.lb_groups;
        ub_groups = List.map (List.map (shift_bound ~at ~k)) l.ub_groups;
        body = shift_node ~at ~k l.body;
      }

(* --- building the tiled nest ------------------------------------------------ *)

let tile_band ~size band inner =
  match band with
  | [] -> inner
  | first :: _ ->
    let l0 = first.level in
    let k = List.length band in
    (* 1. shift everything (band loops included) by k at position l0 *)
    let shifted_band =
      List.map
        (fun l ->
          match shift_node ~at:l0 ~k (Loop l) with
          | Loop l' -> l'
          | _ -> assert false)
        band
    in
    let shifted_inner = shift_node ~at:l0 ~k inner in
    (* 2. point loops: clamp each shifted band loop to its tile *)
    let point_loops =
      List.mapi
        (fun i (l : loop) ->
          (* l.level = l0 + k + i; its tile variable sits at l0 + i *)
          let width = l.level + 0 in
          ignore width;
          let tile_var = l0 + i in
          let num_width =
            match l.lb_groups with
            | (b :: _) :: _ -> Array.length b.num
            | _ -> invalid_arg "Tile: loop without bounds"
          in
          let lb_clamp =
            let num = Array.make num_width 0 in
            num.(tile_var) <- size;
            { num; den = 1 }
          in
          let ub_clamp =
            let num = Array.make num_width 0 in
            num.(tile_var) <- size;
            num.(num_width - 1) <- size - 1;
            { num; den = 1 }
          in
          {
            l with
            lb_groups = List.map (fun g -> lb_clamp :: g) l.lb_groups;
            ub_groups = List.map (fun g -> ub_clamp :: g) l.ub_groups;
            par = Sequential;
          })
        shifted_band
    in
    (* 3. tile loops from the original (unshifted) band bounds *)
    let tile_loops =
      List.map
        (fun (l : loop) ->
          let to_tile_lb (b : bound) =
            (* floor(x / size) as a ceil-division lower bound *)
            let num = Array.copy b.num in
            num.(Array.length num - 1) <- num.(Array.length num - 1) - (size - 1);
            { num; den = size }
          in
          let to_tile_ub (b : bound) = { b with den = size } in
          {
            l with
            lb_groups = List.map (List.map to_tile_lb) l.lb_groups;
            ub_groups = List.map (List.map to_tile_ub) l.ub_groups;
          })
        band
    in
    (* 4. nest: tile loops, then point loops, then the inner region *)
    let rec nest loops innermost =
      match loops with
      | [] -> innermost
      | l :: rest -> Loop { l with body = nest rest innermost }
    in
    nest tile_loops (nest point_loops shifted_inner)

let tile ?(size = 4) ~prog ~sched ~deps ast =
  let rows_of_level = loop_rows sched in
  let rec walk node =
    match node with
    | Seq l -> Seq (List.map walk l)
    | Exec _ -> node
    | Loop l -> (
      let ch = chain node in
      let k = permutable_prefix ~prog ~sched ~deps ~rows_of_level ch in
      if k >= 2 then begin
        let band = List.filteri (fun i _ -> i < k) ch in
        (* the region below the band: the (k-1)-th loop's body *)
        let inner = (List.nth ch (k - 1)).body in
        tile_band ~size band inner
      end
      else Loop { l with body = walk l.body })
  in
  walk ast

let of_result ?size (res : Pluto.Scheduler.result) =
  let ast = Scan.of_result res in
  tile ?size ~prog:res.Pluto.Scheduler.prog ~sched:res.Pluto.Scheduler.sched
    ~deps:res.Pluto.Scheduler.true_deps ast
