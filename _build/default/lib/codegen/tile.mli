(** Rectangular loop tiling of permutable bands (the transformation the
    polyhedral framework composes on top of fusion; Section 2.1 of the
    paper lists tiling among the transformations captured by the
    multidimensional affine transform).

    A {e band} is a maximal chain of directly nested loops such that
    every dependence alive at the band's first row has a non-negative
    δ at {e every} row of the band — the classic full-permutability
    condition, under which rectangular tiling is always legal. Bands of
    length ≥ 2 are strip-mined: tile loops (stepping over tile origins)
    are introduced above the band and the original loops become point
    loops clamped to their tile.

    Loops with divided bounds (den ≠ 1) or with bounds referring to
    other loops {e inside} the band (non-rectangular within the band,
    e.g. lu's triangular loops after skewing) are conservatively left
    untiled. *)

(** [tile ?size ~prog ~sched ~deps ast] tiles every eligible band of
    [ast]. [size] is the tile edge (default 4 — matched to the scaled
    caches of {!Machine.Perf}). The result executes exactly the same
    statement instances in a reordered-but-legal order. *)
val tile :
  ?size:int ->
  prog:Scop.Program.t ->
  sched:Pluto.Sched.t ->
  deps:Deps.Dep.t list ->
  Ast.node ->
  Ast.node

(** [of_result ?size res] = generate + tile. *)
val of_result : ?size:int -> Pluto.Scheduler.result -> Ast.node
