(** Emission of complete, compilable C programs.

    This is the "source-to-source" output of the tool: a self-contained
    C file with array declarations, deterministic initialization, the
    generated loop nest (OpenMP pragmas on parallel loops, `ceild` /
    `floord` helpers for divided bounds), and a checksum printout so
    two emitted variants of the same program can be diffed by running
    them. *)

(** [program ~name prog ast] renders a full C translation unit. The
    statement bodies are emitted with the original iterator names bound
    via the inverse schedule (guards included), so any legal schedule -
    shifted, permuted, partially fused - emits correct C. *)
val program : name:string -> Scop.Program.t -> Ast.node -> string

(** Just the loop nest (no declarations/main), as it would appear
    inside a function body. *)
val body : Scop.Program.t -> Ast.node -> string
