let config =
  {
    Pluto.Scheduler.name = "wisefuse";
    order_sccs = Prefusion.order;
    initial_cut = Some Pluto.Scheduler.Cut_between_dims;
    fallback_cut = Pluto.Scheduler.Cut_minimal;
    outer_parallel = true;
  }

let run ?param_floor prog = Pluto.Scheduler.run ?param_floor config prog
