(** Exhaustive fusion-space enumeration — the mathematics of the
    paper's introduction, executable.

    Section 1 counts the space a fusion cost model must navigate: for
    [n] mutually independent SCCs there are [n!] orderings and, per
    ordering, [2^(n-1)] partitionings ("for any two consecutive
    statements, they can either belong to the same loop nest or not"),
    e.g. 24 for swim's S1-S3 and 90 x 32 = 2880 for S13-S18. This
    module enumerates exactly that space — topological orderings of the
    SCC condensation times cut masks — so the counts can be checked and
    small programs searched exhaustively, which is also how the paper
    frames the failure of iterative approaches [27-29] on large
    programs: the space explodes.

    All orderings are generated lazily-ish but materialized; keep this
    to programs with at most a dozen SCCs. *)

(** All topological orderings of the SCC condensation, as lists of SCC
    ids. For swim's S13-S18 subgraph this has exactly 90 elements. *)
val orderings : Deps.Ddg.t -> int array -> int list list

(** Number of fusion partitionings of one ordering of [k] SCCs:
    [2^(k-1)]. *)
val partitionings_per_ordering : int -> int

(** Size of the whole search space: [sum over orderings of 2^(k-1)]. *)
val space_size : Deps.Ddg.t -> int array -> int

(** [cut_masks k] enumerates the [2^(k-1)] group-id vectors for [k]
    SCC positions (each mask is non-decreasing, starting at 0). *)
val cut_masks : int -> int list list

type candidate = {
  order : int list;  (** SCC ids in pre-fusion order *)
  groups : int list;  (** group id per position *)
  result : Pluto.Scheduler.result;
  cycles : int;  (** machine-model cycles on 8 cores *)
}

(** [best ?config ?limit prog] schedules and simulates {e every}
    (ordering, partitioning) candidate — up to [limit] (default 512;
    the full space is tried when smaller) — and returns them sorted by
    modeled cycles, best first. Exponential: small programs only. *)
val best :
  ?config:Machine.Perf.config -> ?limit:int -> Scop.Program.t -> candidate list
