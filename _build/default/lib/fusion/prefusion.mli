(** Algorithm 1 of the paper: finding a good pre-fusion schedule.

    The pre-fusion schedule is an ordering of the SCCs of the DDG that
    later guides which SCCs end up fused (Section 4.1). The ordering
    criteria are:

    - {b Constraint}: precedence — an SCC may only be scheduled once
      all SCCs it depends on are scheduled;
    - {b Heuristic 1}: SCCs that allow data reuse (through true {e or
      input/RAR} dependences) {e and have the same dimensionality} are
      ordered consecutively;
    - {b Heuristic 2}: SCCs are considered in original program order.

    Deviation from the paper's listing: the paper's outer loop seeds a
    new cluster at the first unvisited statement in program order
    without a precedence check; for programs with textually-backward
    carried dependences that could produce a non-topological order, so
    the seed here is the first unvisited statement whose SCC is ready
    (all external predecessors visited). For the paper's benchmarks
    the two coincide. *)

(** [order prog ddg scc_of] returns the SCC ids in pre-fusion order.
    Suitable as {!Pluto.Scheduler.config.order_sccs}. *)
val order : Scop.Program.t -> Deps.Ddg.t -> int array -> int list

(** The clusters of SCCs grown by the algorithm (each cluster is the
    [fusable] set of one outer iteration), in order — useful for
    inspection and tests; the actual fusion partitions additionally
    depend on the scheduler's cuts. *)
val clusters : Scop.Program.t -> Deps.Ddg.t -> int array -> int list list
