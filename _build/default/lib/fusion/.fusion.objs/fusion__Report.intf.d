lib/fusion/report.mli: Format Pluto
