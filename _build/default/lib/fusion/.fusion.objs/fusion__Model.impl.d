lib/fusion/model.ml: Codegen Icc List Machine Pluto Scop Wisefuse
