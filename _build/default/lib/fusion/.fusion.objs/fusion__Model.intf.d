lib/fusion/model.mli: Codegen Icc Machine Pluto Scop
