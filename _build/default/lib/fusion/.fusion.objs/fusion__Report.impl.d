lib/fusion/report.ml: Array Ddg Dep Deps Format List Pluto Scop
