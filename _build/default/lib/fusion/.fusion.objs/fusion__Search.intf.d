lib/fusion/search.mli: Deps Machine Pluto Scop
