lib/fusion/search.ml: Array Codegen Ddg Dep Deps List Machine Pluto Printf Scop
