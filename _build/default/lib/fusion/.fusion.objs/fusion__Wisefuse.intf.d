lib/fusion/wisefuse.mli: Pluto Scop
