lib/fusion/prefusion.ml: Array Ddg Dep Deps List Scop
