lib/fusion/prefusion.mli: Deps Scop
