lib/fusion/wisefuse.ml: Pluto Prefusion
