(** The paper's fusion model: Algorithm 1 (pre-fusion schedule) plus
    Algorithm 2 (outer-level parallelism by minimal cuts), on top of
    the Pluto-style scheduler. *)

(** The wisefuse scheduler configuration:
    - pre-fusion order from {!Prefusion.order};
    - initial cuts between SCCs of different dimensionality (the
      framework's primary cut criterion, which Algorithm 1's ordering
      is designed to exploit);
    - minimal fallback cuts;
    - Algorithm 2 enabled: the first hyperplane level is re-solved with
      a cut between exactly the SCCs carrying a forward dependence, so
      the outermost loop stays communication-free with minimal loss of
      fusion. *)
val config : Pluto.Scheduler.config

(** [run program] = [Pluto.Scheduler.run config program]. *)
val run : ?param_floor:int -> Scop.Program.t -> Pluto.Scheduler.result
