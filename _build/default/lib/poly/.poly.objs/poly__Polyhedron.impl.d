lib/poly/polyhedron.ml: Array Constr Format Fun Hashtbl Linalg List Q Vec
