lib/poly/polyhedron.mli: Constr Format Linalg
