lib/poly/constr.ml: Array Bigint Buffer Format Linalg Printf Q Stdlib Vec
