lib/poly/constr.mli: Format Linalg
