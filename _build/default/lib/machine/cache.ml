type t = {
  line_bits : int;
  nsets : int;
  assoc : int;
  tags : int array array; (* per set: tags, -1 = invalid *)
  stamps : int array array; (* per set: LRU timestamps *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let is_pow2 x = x > 0 && x land (x - 1) = 0

let log2 x =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 x

let create ~size_bytes ~line_bytes ~assoc () =
  if not (is_pow2 size_bytes && is_pow2 line_bytes && is_pow2 assoc) then
    invalid_arg "Cache.create: sizes must be powers of two";
  let nsets = size_bytes / (line_bytes * assoc) in
  if nsets < 1 then invalid_arg "Cache.create: size < line * assoc";
  {
    line_bits = log2 line_bytes;
    nsets;
    assoc;
    tags = Array.init nsets (fun _ -> Array.make assoc (-1));
    stamps = Array.init nsets (fun _ -> Array.make assoc 0);
    clock = 0;
    hits = 0;
    misses = 0;
  }

let access c ~addr =
  let line = addr lsr c.line_bits in
  let set = line land (c.nsets - 1) in
  let tags = c.tags.(set) and stamps = c.stamps.(set) in
  c.clock <- c.clock + 1;
  let hit = ref false in
  (try
     for w = 0 to c.assoc - 1 do
       if tags.(w) = line then begin
         stamps.(w) <- c.clock;
         hit := true;
         raise Exit
       end
     done
   with Exit -> ());
  if !hit then begin
    c.hits <- c.hits + 1;
    true
  end
  else begin
    c.misses <- c.misses + 1;
    (* LRU victim: smallest stamp (empty ways have stamp 0 and tag -1) *)
    let victim = ref 0 in
    for w = 1 to c.assoc - 1 do
      if stamps.(w) < stamps.(!victim) then victim := w
    done;
    tags.(!victim) <- line;
    stamps.(!victim) <- c.clock;
    false
  end

let hits c = c.hits
let misses c = c.misses

let reset_stats c =
  c.hits <- 0;
  c.misses <- 0

let clear c =
  Array.iter (fun set -> Array.fill set 0 (Array.length set) (-1)) c.tags;
  Array.iter (fun set -> Array.fill set 0 (Array.length set) 0) c.stamps;
  c.clock <- 0;
  reset_stats c

let line_bytes c = 1 lsl c.line_bits
