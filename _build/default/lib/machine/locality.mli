(** Reuse-distance (LRU stack distance) analysis of memory traces.

    The paper's whole argument is about {e data reuse}: fusion is good
    when it shortens the distance (in distinct cache lines touched)
    between successive accesses to the same data. This module measures
    exactly that, independently of any particular cache geometry: a
    reuse distance below a cache's capacity (in lines) is a guaranteed
    hit in a fully-associative LRU cache of that size.

    Distances are computed with the classic Fenwick-tree
    last-occurrence algorithm in O(n log n). *)

type summary = {
  accesses : int;  (** trace length *)
  cold : int;  (** first-touches (infinite distance) *)
  histogram : (int * int) list;
      (** (upper bound, count) per power-of-two bucket: bucket [b]
          counts finite distances in ((b/2), b]; the first bucket is
          distance 0 (same line re-touched immediately) *)
  mean_finite : float;  (** mean over finite distances *)
  within : int -> int;
      (** [within c] = number of accesses with finite distance < [c] -
          guaranteed LRU hits in a [c]-line cache *)
}

(** [of_trace ?line_bytes trace] computes the summary for a byte-address
    trace (default line: 64 bytes). *)
val of_trace : ?line_bytes:int -> int list -> summary

(** [capture prog ast ~params] runs the AST and records its trace. *)
val capture : Scop.Program.t -> Codegen.Ast.node -> params:int array -> int list

val pp : Format.formatter -> summary -> unit
