(** Executing generated loop ASTs over real arrays.

    This is the functional half of the machine substrate: it runs a
    program (original or transformed) to completion so transformed
    programs can be checked {e semantically equivalent} to their
    sources, and it surfaces every memory access through a callback for
    the trace-driven performance model ({!Perf}). *)

type memory

(** [init_memory ?init prog ~params] allocates every array of the
    program at its concrete extent and fills it with [init name flat]
    (default: a deterministic pseudo-random pattern). Arrays get
    disjoint global element addresses for tracing. *)
val init_memory :
  ?init:(string -> int -> float) -> Scop.Program.t -> params:int array -> memory

(** Raw payload of one array (row-major). @raise Not_found. *)
val array_data : memory -> string -> float array

(** [global_addr mem name flat] is the byte address used in traces. *)
val global_addr : memory -> string -> int -> int

type access_kind = Read | Write

(** [run ?on_access ?on_stmt prog ast mem ~params] executes the AST.
    [on_access] sees every array access in order (byte addresses);
    [on_stmt] fires once per executed statement instance, with the
    statement id, before its accesses.
    @raise Invalid_argument on malformed ASTs (index out of extent). *)
val run :
  ?on_access:(access_kind -> int -> unit) ->
  ?on_stmt:(int -> unit) ->
  Scop.Program.t ->
  Codegen.Ast.node ->
  memory ->
  params:int array ->
  unit

(** [instance_runner ?on_access ?on_stmt prog mem ~params] returns a
    function executing one statement instance at a given time point —
    the building block for custom AST walks (see {!Perf}, which
    partitions parallel loops over model cores). *)
val instance_runner :
  ?on_access:(access_kind -> int -> unit) ->
  ?on_stmt:(int -> unit) ->
  Scop.Program.t ->
  memory ->
  params:int array ->
  Codegen.Ast.instance ->
  y:int array ->
  unit

(** [run_original prog mem ~params]: interpret the source program (via
    the identity schedule), same callbacks. Note the resulting AST is
    built without dependence information, so its parallelism marks are
    meaningless — use it for semantics only. *)
val run_original :
  ?on_access:(access_kind -> int -> unit) ->
  ?on_stmt:(int -> unit) ->
  Scop.Program.t ->
  memory ->
  params:int array ->
  unit

(** [equal ?eps a b]: same arrays, element-wise within [eps]
    (default 1e-9 relative-ish tolerance). *)
val equal : ?eps:float -> memory -> memory -> bool

(** Human-readable first difference, for test failure messages. *)
val first_diff : ?eps:float -> memory -> memory -> string option
