lib/machine/perf.ml: Array Cache Codegen Format Interp List Scop
