lib/machine/interp.ml: Access Array Codegen Expr Float Hashtbl List Poly Printf Program Scop
