lib/machine/cache.mli:
