lib/machine/locality.ml: Array Format Hashtbl Interp List Option
