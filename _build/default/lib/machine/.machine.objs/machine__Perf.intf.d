lib/machine/perf.mli: Codegen Format Scop
