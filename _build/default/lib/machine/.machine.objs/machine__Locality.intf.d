lib/machine/locality.mli: Codegen Format Scop
