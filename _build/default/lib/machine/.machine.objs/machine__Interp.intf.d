lib/machine/interp.mli: Codegen Scop
