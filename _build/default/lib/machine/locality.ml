(* Reuse distances via the last-occurrence Fenwick-tree algorithm:
   walk the trace; keep, for every line, the time of its previous
   access; a Fenwick tree marks the times that are currently the *last*
   access of their line. The reuse distance of an access is the number
   of marked times after the line's previous access. *)

type summary = {
  accesses : int;
  cold : int;
  histogram : (int * int) list;
  mean_finite : float;
  within : int -> int;
}

(* minimal Fenwick tree over [1..n] *)
module Fenwick = struct
  type t = { tree : int array }

  let create n = { tree = Array.make (n + 1) 0 }

  let add t i delta =
    let i = ref (i + 1) in
    while !i < Array.length t.tree do
      t.tree.(!i) <- t.tree.(!i) + delta;
      i := !i + (!i land - !i)
    done

  (* sum over [0..i] *)
  let prefix t i =
    let acc = ref 0 in
    let i = ref (i + 1) in
    while !i > 0 do
      acc := !acc + t.tree.(!i);
      i := !i - (!i land - !i)
    done;
    !acc

  let range t lo hi = if hi < lo then 0 else prefix t hi - (if lo = 0 then 0 else prefix t (lo - 1))
end

let of_trace ?(line_bytes = 64) trace =
  let lines = List.map (fun addr -> addr / line_bytes) trace in
  let n = List.length lines in
  let fw = Fenwick.create (max n 1) in
  let last = Hashtbl.create 1024 in
  let distances = ref [] in
  let cold = ref 0 in
  List.iteri
    (fun t line ->
      (match Hashtbl.find_opt last line with
      | None -> incr cold
      | Some t_prev ->
        (* marked times strictly after t_prev = distinct lines since *)
        let d = Fenwick.range fw (t_prev + 1) (t - 1) in
        distances := d :: !distances;
        Fenwick.add fw t_prev (-1));
      Hashtbl.replace last line t;
      Fenwick.add fw t 1)
    lines;
  let distances = !distances in
  let finite = List.length distances in
  let mean_finite =
    if finite = 0 then 0.0
    else float_of_int (List.fold_left ( + ) 0 distances) /. float_of_int finite
  in
  (* power-of-two buckets *)
  let buckets = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let rec bucket b = if d <= b then b else bucket (b * 2) in
      let b = if d = 0 then 0 else bucket 1 in
      Hashtbl.replace buckets b
        (1 + Option.value (Hashtbl.find_opt buckets b) ~default:0))
    distances;
  let histogram =
    List.sort compare (Hashtbl.fold (fun b c acc -> (b, c) :: acc) buckets [])
  in
  let sorted = List.sort compare distances in
  let within c =
    (* finite distances strictly below c *)
    let rec count acc = function
      | d :: rest when d < c -> count (acc + 1) rest
      | _ -> acc
    in
    count 0 sorted
  in
  { accesses = n; cold = !cold; histogram; mean_finite; within }

let capture prog ast ~params =
  let mem = Interp.init_memory prog ~params in
  let acc = ref [] in
  Interp.run ~on_access:(fun _ addr -> acc := addr :: !acc) prog ast mem ~params;
  List.rev !acc

let pp fmt s =
  Format.fprintf fmt "accesses=%d cold=%d mean=%.1f" s.accesses s.cold
    s.mean_finite;
  List.iter (fun (b, c) -> Format.fprintf fmt " <=%d:%d" b c) s.histogram
