(** Set-associative LRU cache simulator.

    Addresses are in bytes; a cache stores line tags only (trace-driven
    simulation). Used to build the private-L1/L2 + shared-L3 hierarchy
    of the modeled Sandy Bridge machine. *)

type t

(** [create ~size_bytes ~line_bytes ~assoc ()]. Sizes must be powers of
    two and consistent ([size = sets * assoc * line]).
    @raise Invalid_argument otherwise. *)
val create : size_bytes:int -> line_bytes:int -> assoc:int -> unit -> t

(** [access c ~addr] simulates one access; returns [true] on hit. On a
    miss the line is filled (LRU eviction). *)
val access : t -> addr:int -> bool

(** Hit/miss counters since creation or [reset]. *)
val hits : t -> int

val misses : t -> int
val reset_stats : t -> unit

(** Drop all contents (cold cache) and reset stats. *)
val clear : t -> unit

val line_bytes : t -> int
