open Scop

type array_info = {
  data : float array;
  extents : int array;
  base : int; (* global element offset *)
}

type memory = { tbl : (string, array_info) Hashtbl.t }

let default_init name flat =
  (* deterministic, array-dependent, bounded values *)
  let h = Hashtbl.hash (name, flat) land 0xffff in
  0.25 +. (float_of_int h /. 131072.0)

let init_memory ?(init = default_init) (prog : Program.t) ~params =
  let tbl = Hashtbl.create 16 in
  let base = ref 0 in
  List.iter
    (fun (decl : Program.array_decl) ->
      let extents = Program.array_extent decl ~params in
      let size = Array.fold_left ( * ) 1 extents in
      if size <= 0 then
        invalid_arg ("Interp: non-positive extent for " ^ decl.array_name);
      let data = Array.init size (fun i -> init decl.array_name i) in
      Hashtbl.replace tbl decl.array_name { data; extents; base = !base };
      base := !base + size)
    prog.arrays;
  { tbl }

let find mem name =
  match Hashtbl.find_opt mem.tbl name with
  | Some i -> i
  | None -> raise Not_found

let array_data mem name = (find mem name).data

let global_addr mem name flat = ((find mem name).base + flat) * 8

type access_kind = Read | Write

let flat_index info (idx : int array) =
  let nd = Array.length info.extents in
  if Array.length idx <> nd then invalid_arg "Interp: arity mismatch";
  let acc = ref 0 in
  for k = 0 to nd - 1 do
    if idx.(k) < 0 || idx.(k) >= info.extents.(k) then
      invalid_arg
        (Printf.sprintf "Interp: index %d out of [0, %d) at dim %d" idx.(k)
           info.extents.(k) k);
    acc := (!acc * info.extents.(k)) + idx.(k)
  done;
  !acc

let nop_access (_ : access_kind) (_ : int) = ()
let nop_stmt (_ : int) = ()

let instance_runner ?(on_access = nop_access) ?(on_stmt = nop_stmt)
    (prog : Program.t) mem ~params =
  fun (inst : Codegen.Ast.instance) ~y ->
    match Codegen.Ast.instance_iters inst ~y ~params with
    | None -> ()
    | Some iters ->
      let st = prog.stmts.(inst.stmt_id) in
      if Poly.Polyhedron.contains_int st.domain (Array.append iters params)
      then begin
        on_stmt inst.stmt_id;
        let read (a : Access.t) =
          let info = find mem a.array in
          let flat = flat_index info (Access.eval a ~iters ~params) in
          on_access Read ((info.base + flat) * 8);
          info.data.(flat)
        in
        let value = Expr.eval st.rhs ~read in
        let winfo = find mem st.write.array in
        let wflat = flat_index winfo (Access.eval st.write ~iters ~params) in
        on_access Write ((winfo.base + wflat) * 8);
        winfo.data.(wflat) <- value
      end

let run ?on_access ?on_stmt (prog : Program.t) ast mem ~params =
  let exec_instance = instance_runner ?on_access ?on_stmt prog mem ~params in
  (* y grows as we enter loops; levels are assigned in nesting order *)
  let y = Array.make 64 0 in
  let rec go node =
    match node with
    | Codegen.Ast.Seq nodes -> List.iter go nodes
    | Codegen.Ast.Exec inst -> exec_instance inst ~y
    | Codegen.Ast.Loop l ->
      let outer = Array.sub y 0 l.level in
      let lb, ub = Codegen.Ast.loop_range l ~outer ~params in
      for v = lb to ub do
        y.(l.level) <- v;
        go l.body
      done
  in
  go ast

let run_original ?on_access ?on_stmt prog mem ~params =
  let deps = [] in
  let ast = Codegen.Scan.original prog ~deps in
  run ?on_access ?on_stmt prog ast mem ~params

let equal_info ?(eps = 1e-9) (a : array_info) (b : array_info) =
  a.extents = b.extents
  && Array.length a.data = Array.length b.data
  &&
  let ok = ref true in
  Array.iteri
    (fun i va ->
      let vb = b.data.(i) in
      let scale = 1.0 +. Float.abs va +. Float.abs vb in
      if Float.abs (va -. vb) > eps *. scale then ok := false)
    a.data;
  !ok

let equal ?eps m1 m2 =
  Hashtbl.length m1.tbl = Hashtbl.length m2.tbl
  && Hashtbl.fold
       (fun name info acc ->
         acc
         &&
         match Hashtbl.find_opt m2.tbl name with
         | Some info2 -> equal_info ?eps info info2
         | None -> false)
       m1.tbl true

let first_diff ?(eps = 1e-9) m1 m2 =
  let result = ref None in
  Hashtbl.iter
    (fun name (info : array_info) ->
      if !result = None then begin
        match Hashtbl.find_opt m2.tbl name with
        | None -> result := Some (Printf.sprintf "array %s missing" name)
        | Some info2 ->
          Array.iteri
            (fun i va ->
              if !result = None then begin
                let vb = info2.data.(i) in
                let scale = 1.0 +. Float.abs va +. Float.abs vb in
                if Float.abs (va -. vb) > eps *. scale then
                  result :=
                    Some
                      (Printf.sprintf "%s[%d]: %.12g vs %.12g" name i va vb)
              end)
            info.data
      end)
    m1.tbl;
  !result
