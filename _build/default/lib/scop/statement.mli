(** SCoP statements.

    A statement is a single assignment nested in [d] loops. Its
    iteration domain is a polyhedron over [iterators ++ parameters];
    its textual position in the source is encoded by the [beta] vector
    (one entry per loop level plus one), as in the classic 2d+1
    schedule representation. *)

type t = {
  id : int;  (** index in program order *)
  name : string;  (** e.g. "S1" *)
  iters : string array;  (** enclosing iterators, outermost first *)
  loop_ids : int array;  (** unique ids of the enclosing loops *)
  domain : Poly.Polyhedron.t;  (** over [iters ++ params] *)
  write : Access.t;
  rhs : Expr.t;
  beta : int array;  (** length [depth + 1]: textual position per level *)
}

(** Number of enclosing loops (the paper's "dimensionality"). *)
val depth : t -> int

(** The write access followed by all read accesses. *)
val accesses : t -> Access.t list

(** Read accesses only. *)
val reads : t -> Access.t list

(** [common_loops a b] is the number of loops shared by the two
    statements (longest common prefix of [loop_ids]). *)
val common_loops : t -> t -> int

(** [textual_before a b]: does [a] appear before [b] at the first
    level where their loop nests diverge? (Irreflexive.) *)
val textual_before : t -> t -> bool

val pp : params:string array -> Format.formatter -> t -> unit
