type t = {
  id : int;
  name : string;
  iters : string array;
  loop_ids : int array;
  domain : Poly.Polyhedron.t;
  write : Access.t;
  rhs : Expr.t;
  beta : int array;
}

let depth s = Array.length s.iters
let accesses s = s.write :: Expr.loads s.rhs
let reads s = Expr.loads s.rhs

let common_loops a b =
  let n = min (Array.length a.loop_ids) (Array.length b.loop_ids) in
  let rec go i =
    if i >= n || a.loop_ids.(i) <> b.loop_ids.(i) then i else go (i + 1)
  in
  go 0

let textual_before a b =
  if a.id = b.id then false
  else begin
    let c = common_loops a b in
    (* beta has length depth+1, so index c is always valid *)
    compare a.beta.(c) b.beta.(c) < 0
  end

let pp ~params fmt s =
  Format.fprintf fmt "%s: %a = %a" s.name
    (Access.pp ~iter_names:s.iters ~param_names:params)
    s.write
    (Expr.pp ~iter_names:s.iters ~param_names:params)
    s.rhs
