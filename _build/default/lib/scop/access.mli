(** Affine array accesses.

    An access into array [array] from a statement with [d] enclosing
    loop iterators in a SCoP with [np] parameters is a matrix with one
    row per array subscript; each row has [d + np + 1] integer entries
    (iterator coefficients, parameter coefficients, constant). *)

type t = {
  array : string;
  idx : int array array;  (** one row per subscript, constant last *)
}

val make : string -> int array array -> t

(** Number of subscripts. *)
val arity : t -> int

(** Row width, i.e. [d + np + 1] for the owning statement. *)
val width : t -> int

(** [eval a ~iters ~params] computes the concrete subscripts. *)
val eval : t -> iters:int array -> params:int array -> int array

(** Structural equality. *)
val equal : t -> t -> bool

(** Do two accesses touch the same array? *)
val same_array : t -> t -> bool

val pp : ?iter_names:string array -> ?param_names:string array ->
  Format.formatter -> t -> unit
