lib/scop/build.ml: Access Array Expr List Poly Printf Program Statement
