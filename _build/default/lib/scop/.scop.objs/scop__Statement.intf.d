lib/scop/statement.mli: Access Expr Format Poly
