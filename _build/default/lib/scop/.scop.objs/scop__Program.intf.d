lib/scop/program.mli: Format Statement
