lib/scop/program.ml: Access Array Format List Poly Printf Set Statement String
