lib/scop/access.mli: Format
