lib/scop/expr.ml: Access Format List
