lib/scop/access.ml: Array Buffer Format Printf
