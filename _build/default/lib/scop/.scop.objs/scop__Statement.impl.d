lib/scop/statement.ml: Access Array Expr Format Poly
