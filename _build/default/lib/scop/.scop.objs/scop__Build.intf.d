lib/scop/build.mli: Program
