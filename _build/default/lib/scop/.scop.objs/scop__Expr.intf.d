lib/scop/expr.mli: Access Format
