type t = { array : string; idx : int array array }

let make array idx =
  let width =
    match Array.length idx with
    | 0 -> invalid_arg "Access.make: scalar accesses need one row"
    | _ -> Array.length idx.(0)
  in
  Array.iter
    (fun row ->
      if Array.length row <> width then invalid_arg "Access.make: ragged rows")
    idx;
  { array; idx }

let arity a = Array.length a.idx
let width a = Array.length a.idx.(0)

let eval a ~iters ~params =
  let d = Array.length iters and np = Array.length params in
  if d + np + 1 <> width a then invalid_arg "Access.eval: width mismatch";
  Array.map
    (fun row ->
      let acc = ref row.(d + np) in
      for i = 0 to d - 1 do
        acc := !acc + (row.(i) * iters.(i))
      done;
      for p = 0 to np - 1 do
        acc := !acc + (row.(d + p) * params.(p))
      done;
      !acc)
    a.idx

let equal a b =
  a.array = b.array
  && Array.length a.idx = Array.length b.idx
  && Array.for_all2 (fun r1 r2 -> r1 = r2) a.idx b.idx

let same_array a b = a.array = b.array

let pp_row ?iter_names ?param_names d np fmt row =
  let name_iter i =
    match iter_names with
    | Some a when i < Array.length a -> a.(i)
    | _ -> Printf.sprintf "i%d" i
  in
  let name_param p =
    match param_names with
    | Some a when p < Array.length a -> a.(p)
    | _ -> Printf.sprintf "p%d" p
  in
  let buf = Buffer.create 16 in
  let first = ref true in
  let term c name =
    if c <> 0 then begin
      if c > 0 && not !first then Buffer.add_string buf "+";
      if c = -1 then Buffer.add_string buf "-"
      else if c <> 1 then Buffer.add_string buf (string_of_int c ^ "*");
      Buffer.add_string buf name;
      first := false
    end
  in
  for i = 0 to d - 1 do
    term row.(i) (name_iter i)
  done;
  for p = 0 to np - 1 do
    term row.(d + p) (name_param p)
  done;
  let k = row.(d + np) in
  if !first then Buffer.add_string buf (string_of_int k)
  else if k > 0 then Buffer.add_string buf ("+" ^ string_of_int k)
  else if k < 0 then Buffer.add_string buf (string_of_int k);
  Format.pp_print_string fmt (Buffer.contents buf)

let pp ?iter_names ?param_names fmt a =
  let np =
    match param_names with Some p -> Array.length p | None -> 0
  in
  let d = width a - np - 1 in
  Format.fprintf fmt "%s" a.array;
  Array.iter
    (fun row ->
      Format.fprintf fmt "[%a]" (pp_row ?iter_names ?param_names d np) row)
    a.idx
