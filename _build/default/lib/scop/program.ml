type array_decl = { array_name : string; extents : int array array }

type t = {
  name : string;
  params : string array;
  default_params : int array;
  arrays : array_decl list;
  stmts : Statement.t array;
}

let nparams t = Array.length t.params

let make ~name ~params ~default_params ~arrays ~stmts =
  let np = Array.length params in
  if Array.length default_params <> np then
    invalid_arg "Program.make: default_params length";
  List.iter
    (fun d ->
      Array.iter
        (fun row ->
          if Array.length row <> np + 1 then
            invalid_arg
              (Printf.sprintf "Program.make: extent width in array %s" d.array_name))
        d.extents)
    arrays;
  let array_names = List.map (fun d -> d.array_name) arrays in
  let module SS = Set.Make (String) in
  let declared = SS.of_list array_names in
  if SS.cardinal declared <> List.length array_names then
    invalid_arg "Program.make: duplicate array declaration";
  Array.iteri
    (fun i (s : Statement.t) ->
      let fail msg = invalid_arg (Printf.sprintf "Program.make: %s in %s" msg s.name) in
      if s.id <> i then fail "statement id not positional";
      let d = Statement.depth s in
      if Array.length s.loop_ids <> d then fail "loop_ids length";
      if Array.length s.beta <> d + 1 then fail "beta length";
      if Poly.Polyhedron.dim s.domain <> d + np then fail "domain dimension";
      List.iter
        (fun (a : Access.t) ->
          if Access.width a <> d + np + 1 then fail ("access width on " ^ a.array);
          if not (SS.mem a.array declared) then fail ("undeclared array " ^ a.array))
        (Statement.accesses s))
    stmts;
  { name; params; default_params; arrays; stmts }

let array_extent decl ~params =
  let np = Array.length params in
  Array.map
    (fun row ->
      let acc = ref row.(np) in
      for p = 0 to np - 1 do
        acc := !acc + (row.(p) * params.(p))
      done;
      !acc)
    decl.extents

let find_array t name =
  List.find (fun d -> d.array_name = name) t.arrays

let max_depth t =
  Array.fold_left (fun m s -> max m (Statement.depth s)) 0 t.stmts

let pp fmt t =
  Format.fprintf fmt "@[<v>scop %s (params:" t.name;
  Array.iter (fun p -> Format.fprintf fmt " %s" p) t.params;
  Format.fprintf fmt ")";
  Array.iter
    (fun s -> Format.fprintf fmt "@,  %a" (Statement.pp ~params:t.params) s)
    t.stmts;
  Format.fprintf fmt "@]"
