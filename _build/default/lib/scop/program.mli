(** A whole SCoP: parameters, array declarations, statements in
    program order. *)

type array_decl = {
  array_name : string;
  extents : int array array;
      (** one row per dimension, each of width [nparams + 1]
          (parameter coefficients then constant) *)
}

type t = private {
  name : string;
  params : string array;
  default_params : int array;  (** concrete values used by the machine *)
  arrays : array_decl list;
  stmts : Statement.t array;
}

(** Validates internal consistency: statement ids are positional,
    domains have dimension [depth + nparams], access and extent widths
    match, beta lengths are [depth + 1].
    @raise Invalid_argument when malformed. *)
val make :
  name:string ->
  params:string array ->
  default_params:int array ->
  arrays:array_decl list ->
  stmts:Statement.t array ->
  t

val nparams : t -> int

(** [array_extent p decl ~params] concretizes the extents. *)
val array_extent : array_decl -> params:int array -> int array

(** [find_array p name]. @raise Not_found if absent. *)
val find_array : t -> string -> array_decl

(** Maximum statement depth in the program. *)
val max_depth : t -> int

val pp : Format.formatter -> t -> unit
