open Linalg

type row = Hyp of int array | Beta of int

type t = row list array

let eval_row row ~iters ~params =
  match row with
  | Beta b -> b
  | Hyp h ->
    let d = Array.length iters and np = Array.length params in
    if Array.length h <> d + np + 1 then invalid_arg "Sched.eval_row: width";
    let acc = ref h.(d + np) in
    for i = 0 to d - 1 do
      acc := !acc + (h.(i) * iters.(i))
    done;
    for p = 0 to np - 1 do
      acc := !acc + (h.(d + p) * params.(p))
    done;
    !acc

let timestamp sched id ~iters ~params =
  Array.of_list (List.map (fun r -> eval_row r ~iters ~params) sched.(id))

let row_as_hyp ~depth ~np = function
  | Hyp h ->
    if Array.length h <> depth + np + 1 then invalid_arg "Sched.row_as_hyp: width";
    h
  | Beta b ->
    let h = Array.make (depth + np + 1) 0 in
    h.(depth + np) <- b;
    h

let iter_part ~depth = function
  | Hyp h -> Array.sub h 0 depth
  | Beta _ -> Array.make depth 0

(* phi_dst(t) - phi_src(s) over [s(d1); t(d2); p(np); 1] *)
let phi_diff ~d1 ~d2 ~np src_row dst_row =
  if Array.length src_row <> d1 + np + 1 then invalid_arg "Sched.phi_diff: src width";
  if Array.length dst_row <> d2 + np + 1 then invalid_arg "Sched.phi_diff: dst width";
  let v = Vec.zero (d1 + d2 + np + 1) in
  for i = 0 to d1 - 1 do
    v.(i) <- Q.of_int (-src_row.(i))
  done;
  for j = 0 to d2 - 1 do
    v.(d1 + j) <- Q.of_int dst_row.(j)
  done;
  for p = 0 to np - 1 do
    v.(d1 + d2 + p) <- Q.of_int (dst_row.(d2 + p) - src_row.(d1 + p))
  done;
  v.(d1 + d2 + np) <- Q.of_int (dst_row.(d2 + np) - src_row.(d1 + np));
  v

let num_rows (s : t) =
  if Array.length s = 0 then invalid_arg "Sched.num_rows: no statements";
  List.length s.(0)

let is_beta_level (s : t) level =
  match List.nth s.(0) level with Beta _ -> true | Hyp _ -> false

let pp_row ~iter_names ~param_names fmt = function
  | Beta b -> Format.fprintf fmt "[%d]" b
  | Hyp h ->
    let d = Array.length iter_names and np = Array.length param_names in
    let buf = Buffer.create 16 in
    let first = ref true in
    let term c name =
      if c <> 0 then begin
        if c > 0 && not !first then Buffer.add_string buf "+";
        if c = -1 then Buffer.add_string buf "-"
        else if c <> 1 then Buffer.add_string buf (string_of_int c ^ "*");
        Buffer.add_string buf name;
        first := false
      end
    in
    for i = 0 to d - 1 do
      term h.(i) iter_names.(i)
    done;
    for p = 0 to np - 1 do
      term h.(d + p) param_names.(p)
    done;
    let k = h.(d + np) in
    if !first then Buffer.add_string buf (string_of_int k)
    else if k > 0 then Buffer.add_string buf ("+" ^ string_of_int k)
    else if k < 0 then Buffer.add_string buf (string_of_int k);
    Format.pp_print_string fmt (Buffer.contents buf)

let pp (prog : Scop.Program.t) fmt (s : t) =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun id rows ->
      let st = prog.stmts.(id) in
      Format.fprintf fmt "T_%s = (" st.Scop.Statement.name;
      List.iteri
        (fun i r ->
          if i > 0 then Format.fprintf fmt ", ";
          pp_row ~iter_names:st.Scop.Statement.iters ~param_names:prog.params fmt r)
        rows;
      Format.fprintf fmt ")@,")
    s;
  Format.fprintf fmt "@]"
