open Linalg
open Deps

type range = { dmin : Q.t option; dmax : Q.t option }

let diff_vec (prog : Scop.Program.t) (dep : Dep.t) (sched : Sched.t) ~level =
  let src = prog.stmts.(dep.src) and dst = prog.stmts.(dep.dst) in
  let d1 = Scop.Statement.depth src and d2 = Scop.Statement.depth dst in
  let np = Scop.Program.nparams prog in
  let src_row = Sched.row_as_hyp ~depth:d1 ~np (List.nth sched.(dep.src) level) in
  let dst_row = Sched.row_as_hyp ~depth:d2 ~np (List.nth sched.(dep.dst) level) in
  Sched.phi_diff ~d1 ~d2 ~np src_row dst_row

let diff_min prog dep sched ~level =
  let obj = diff_vec prog dep sched ~level in
  match Ilp.Lp.minimize dep.poly obj with
  | Ilp.Lp.Optimal (v, _) -> Some v
  | Ilp.Lp.Unbounded -> None
  | Ilp.Lp.Infeasible -> invalid_arg "Satisfy.diff_min: empty dependence"

let diff_range prog dep sched ~level =
  let obj = diff_vec prog dep sched ~level in
  let dmin =
    match Ilp.Lp.minimize dep.poly obj with
    | Ilp.Lp.Optimal (v, _) -> Some v
    | Ilp.Lp.Unbounded -> None
    | Ilp.Lp.Infeasible -> invalid_arg "Satisfy.diff_range: empty dependence"
  in
  let dmax =
    match Ilp.Lp.maximize dep.poly obj with
    | Ilp.Lp.Optimal (v, _) -> Some v
    | Ilp.Lp.Unbounded -> None
    | Ilp.Lp.Infeasible -> invalid_arg "Satisfy.diff_range: empty dependence"
  in
  { dmin; dmax }

let satisfaction_level prog dep sched =
  let n = Sched.num_rows sched in
  let rec go level =
    if level >= n then None
    else begin
      match diff_min prog dep sched ~level with
      | Some v when Q.compare v Q.one >= 0 -> Some level
      | _ -> go (level + 1)
    end
  in
  go 0

let check_legal prog deps sched =
  let n = Sched.num_rows sched in
  let check_dep (d : Dep.t) =
    if not (Dep.is_true d) then true
    else begin
      (* scan rows: all deltas >= 0 until the first >= 1 *)
      let rec go level =
        if level >= n then false (* never satisfied *)
        else begin
          match diff_min prog d sched ~level with
          | Some v when Q.compare v Q.one >= 0 -> true
          | Some v when Q.sign v >= 0 -> go (level + 1)
          | _ -> false (* negative or unbounded below: violated *)
        end
      in
      go 0
    end
  in
  let rec first_bad = function
    | [] -> Ok ()
    | d :: rest -> if check_dep d then first_bad rest else Error d
  in
  first_bad deps

type loop_class = Parallel | Forward

let row_class prog deps sched ~level ~members =
  let live (d : Dep.t) =
    Dep.is_true d
    && List.mem d.src members && List.mem d.dst members
    &&
    (* not satisfied before this level *)
    match satisfaction_level prog d sched with
    | Some l -> l >= level
    | None -> true
  in
  let carries_forward (d : Dep.t) =
    let r = diff_range prog d sched ~level in
    match r.dmax with
    | Some v -> Q.sign v > 0
    | None -> true
  in
  if List.exists (fun d -> live d && carries_forward d) deps then Forward
  else Parallel
