lib/pluto/farkas.ml: Array Bigint Constr Ilp Linalg List Poly Polyhedron Q
