lib/pluto/satisfy.ml: Array Dep Deps Ilp Linalg List Q Sched Scop
