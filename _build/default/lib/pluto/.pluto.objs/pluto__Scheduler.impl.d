lib/pluto/scheduler.ml: Array Bigint Ddg Dep Deps Farkas Fun Hashtbl Ilp Linalg List Mat Option Poly Printf Q Sched Scop Vec
