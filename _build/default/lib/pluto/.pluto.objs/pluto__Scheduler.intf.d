lib/pluto/scheduler.mli: Deps Sched Scop
