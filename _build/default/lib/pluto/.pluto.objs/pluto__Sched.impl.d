lib/pluto/sched.ml: Array Buffer Format Linalg List Q Scop Vec
