lib/pluto/farkas.mli: Poly
