lib/pluto/satisfy.mli: Deps Linalg Sched Scop
