lib/pluto/sched.mli: Format Linalg Scop
