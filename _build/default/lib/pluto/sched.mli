(** Multidimensional affine schedules (statement-wise transforms).

    A schedule assigns every statement the same number of rows; each
    row is either a loop hyperplane — integer coefficients over the
    statement's [iters ++ params ++ 1] — or a scalar dimension (a
    fusion "cut" / textual position, the paper's ϕ with all iterator
    coefficients zero). Rows are outermost first. *)

type row =
  | Hyp of int array  (** width [depth + nparams + 1], constant last *)
  | Beta of int  (** scalar dimension: partition / textual position *)

type t = row list array
(** indexed by statement id; every list has the same length and the
    same row kinds at each position. *)

(** [eval_row ~np row ~iters ~params] evaluates ϕ at a point of the
    statement's domain. A [Beta] row evaluates to its constant. *)
val eval_row : row -> iters:int array -> params:int array -> int

(** [timestamp sched stmt_id ~iters ~params] is the full
    multidimensional time vector of one statement instance. *)
val timestamp : t -> int -> iters:int array -> params:int array -> int array

(** [phi_diff ~d1 ~d2 ~np src_row dst_row] builds the affine form
    ϕ_dst(t) − ϕ_src(s) over the dependence space
    [s (d1); t (d2); params (np)] as a vector of length
    [d1 + d2 + np + 1] (constant last). Both rows must be [Hyp] (a
    [Beta] row is converted to a pure-constant form first via
    {!row_as_hyp}). *)
val phi_diff :
  d1:int -> d2:int -> np:int -> int array -> int array -> Linalg.Vec.t

(** View any row as hyperplane coefficients of a given statement
    ([Beta b] becomes the constant form [0 ... 0 b]). *)
val row_as_hyp : depth:int -> np:int -> row -> int array

(** Iterator-coefficient part of a row (length [depth]); zeros for
    [Beta]. *)
val iter_part : depth:int -> row -> int array

(** Number of rows (same for all statements).
    @raise Invalid_argument on an empty schedule. *)
val num_rows : t -> int

(** Is the row at [level] a scalar dimension? (Checks statement 0;
    kinds agree across statements by construction.) *)
val is_beta_level : t -> int -> bool

val pp_row : iter_names:string array -> param_names:string array ->
  Format.formatter -> row -> unit

val pp : Scop.Program.t -> Format.formatter -> t -> unit
