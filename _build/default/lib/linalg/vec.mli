(** Dense rational vectors. *)

type t = Q.t array

val make : int -> Q.t -> t
val zero : int -> t

(** [unit n i] is the [n]-dimensional [i]-th standard basis vector. *)
val unit : int -> int -> t

val of_ints : int array -> t
val of_int_list : int list -> t
val copy : t -> t
val dim : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Q.t -> t -> t

(** Dot product. @raise Invalid_argument on dimension mismatch. *)
val dot : t -> t -> Q.t

val is_zero : t -> bool
val equal : t -> t -> bool

(** [normalize_int v] scales a rational vector to the unique primitive
    integer vector pointing the same way (integer entries, gcd 1, same
    orientation). Returns the zero vector unchanged. *)
val normalize_int : t -> t

(** Concatenate. *)
val append : t -> t -> t

val pp : Format.formatter -> t -> unit
