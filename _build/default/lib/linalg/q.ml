(* Canonical rationals: den > 0, gcd (num, den) = 1, zero = 0/1. *)

type t = { num : Bigint.t; den : Bigint.t }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero
  else if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den =
      if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den)
      else (num, den)
    in
    let g = Bigint.gcd num den in
    if Bigint.is_one g then { num; den }
    else { num = Bigint.div num g; den = Bigint.div den g }
  end

let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints n d = make (Bigint.of_int n) (Bigint.of_int d)

let zero = of_int 0
let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let num q = q.num
let den q = q.den

let sign q = Bigint.sign q.num
let is_zero q = Bigint.is_zero q.num
let is_integer q = Bigint.is_one q.den

let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den

let compare a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den (dens > 0) *)
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let neg q = { q with num = Bigint.neg q.num }
let abs q = { q with num = Bigint.abs q.num }

let add a b =
  if Bigint.is_zero a.num then b
  else if Bigint.is_zero b.num then a
  else if Bigint.is_one a.den && Bigint.is_one b.den then
    (* integer fast path: no gcd needed *)
    { num = Bigint.add a.num b.num; den = Bigint.one }
  else
    make
      (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
      (Bigint.mul a.den b.den)

let sub a b = add a (neg b)

let mul a b =
  if Bigint.is_zero a.num || Bigint.is_zero b.num then
    { num = Bigint.zero; den = Bigint.one }
  else if Bigint.is_one a.den && Bigint.is_one b.den then
    { num = Bigint.mul a.num b.num; den = Bigint.one }
  else make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)
let div a b = make (Bigint.mul a.num b.den) (Bigint.mul a.den b.num)
let inv q = make q.den q.num

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let floor q = Bigint.fdiv q.num q.den
let ceil q = Bigint.cdiv q.num q.den

let to_bigint q =
  if is_integer q then q.num else failwith "Q.to_bigint: not an integer"

let to_float q = Bigint.to_float q.num /. Bigint.to_float q.den

let to_string q =
  if is_integer q then Bigint.to_string q.num
  else Bigint.to_string q.num ^ "/" ^ Bigint.to_string q.den

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( = ) = equal
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0

let pp fmt q = Format.pp_print_string fmt (to_string q)
