type t = Q.t array

let make n q = Array.make n q
let zero n = make n Q.zero

let unit n i =
  let v = zero n in
  v.(i) <- Q.one;
  v

let of_ints a = Array.map Q.of_int a
let of_int_list l = of_ints (Array.of_list l)
let copy = Array.copy
let dim = Array.length

let map2 f a b =
  if dim a <> dim b then invalid_arg "Vec: dimension mismatch";
  Array.init (dim a) (fun i -> f a.(i) b.(i))

let add = map2 Q.add
let sub = map2 Q.sub
let neg = Array.map Q.neg
let scale q = Array.map (Q.mul q)

let dot a b =
  if dim a <> dim b then invalid_arg "Vec.dot: dimension mismatch";
  let acc = ref Q.zero in
  for i = 0 to dim a - 1 do
    acc := Q.add !acc (Q.mul a.(i) b.(i))
  done;
  !acc

let is_zero v = Array.for_all Q.is_zero v
let equal a b = dim a = dim b && Array.for_all2 Q.equal a b

let normalize_int v =
  if is_zero v then v
  else begin
    (* multiply by the lcm of denominators, then divide by the gcd *)
    let l = Array.fold_left (fun acc q -> Bigint.lcm acc (Q.den q)) Bigint.one v in
    let ints = Array.map (fun q -> Q.to_bigint (Q.mul q (Q.of_bigint l))) v in
    let g = Array.fold_left (fun acc n -> Bigint.gcd acc n) Bigint.zero ints in
    Array.map (fun n -> Q.of_bigint (Bigint.div n g)) ints
  end

let append = Array.append

let pp fmt v =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_array ~pp_sep:(fun f () -> Format.pp_print_string f ", ") Q.pp)
    v
