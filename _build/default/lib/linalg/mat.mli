(** Dense rational matrices and exact Gaussian elimination.

    Used for: completing partial schedules to full rank, computing the
    orthogonal complement of found hyperplanes (the linear-independence
    constraint of the per-level ILP), and inverting schedule transforms
    during code generation. *)

type t = Q.t array array
(** Row-major; all rows have the same length. The empty matrix with
    [rows = 0] is allowed and carries no column information. *)

val make : int -> int -> Q.t -> t
val zero : int -> int -> t
val identity : int -> t
val of_ints : int array array -> t
val of_rows : Vec.t list -> t
val copy : t -> t

val rows : t -> int
val cols : t -> int
val row : t -> int -> Vec.t
val col : t -> int -> Vec.t
val transpose : t -> t

val add : t -> t -> t
val scale : Q.t -> t -> t

(** [mul a b]. @raise Invalid_argument on inner dimension mismatch. *)
val mul : t -> t -> t

(** [mul_vec a v] is [a * v]. *)
val mul_vec : t -> Vec.t -> Vec.t

val equal : t -> t -> bool

(** [rref m] returns the reduced row echelon form together with the
    list of pivot column indices (in row order). *)
val rref : t -> t * int list

val rank : t -> int

(** [nullspace m] returns a basis (possibly empty) of the right null
    space [{x | m x = 0}]; each vector has [cols m] entries. *)
val nullspace : t -> Vec.t list

(** [inverse m] for square [m].
    @raise Invalid_argument if not square.
    @return [None] if singular. *)
val inverse : t -> t option

(** [solve a b] returns some [x] with [a x = b], if one exists. *)
val solve : t -> Vec.t -> Vec.t option

(** [row_space_contains m v]: is [v] a linear combination of the rows
    of [m]? (The empty matrix contains only... nothing, so any non-zero
    [v] is outside it.) *)
val row_space_contains : t -> Vec.t -> bool

(** [orthogonal_complement m] returns a basis of the space orthogonal
    to the rows of [m] in ℚ{^n} where [n = cols m]; i.e. a basis of the
    null space of [m]. Rows of the result are primitive integer
    vectors. *)
val orthogonal_complement : t -> Vec.t list

val pp : Format.formatter -> t -> unit
