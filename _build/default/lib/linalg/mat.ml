type t = Q.t array array

let make r c q = Array.init r (fun _ -> Array.make c q)
let zero r c = make r c Q.zero

let identity n =
  Array.init n (fun i -> Array.init n (fun j -> if i = j then Q.one else Q.zero))

let of_ints a = Array.map Vec.of_ints a
let of_rows l = Array.of_list (List.map Vec.copy l)
let copy m = Array.map Array.copy m

let rows m = Array.length m
let cols m = if rows m = 0 then 0 else Array.length m.(0)
let row m i = Array.copy m.(i)
let col m j = Array.init (rows m) (fun i -> m.(i).(j))

let transpose m =
  let r = rows m and c = cols m in
  Array.init c (fun j -> Array.init r (fun i -> m.(i).(j)))

let add a b =
  if rows a <> rows b || cols a <> cols b then invalid_arg "Mat.add";
  Array.init (rows a) (fun i -> Vec.add a.(i) b.(i))

let scale q m = Array.map (Vec.scale q) m

let mul a b =
  if cols a <> rows b then invalid_arg "Mat.mul: dimension mismatch";
  let bt = transpose b in
  Array.init (rows a) (fun i -> Array.init (cols b) (fun j -> Vec.dot a.(i) bt.(j)))

let mul_vec a v =
  if cols a <> Vec.dim v then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init (rows a) (fun i -> Vec.dot a.(i) v)

let equal a b =
  rows a = rows b && cols a = cols b
  && Array.for_all2 Vec.equal a b

(* Reduced row echelon form by exact Gauss-Jordan elimination. *)
let rref m0 =
  let m = copy m0 in
  let r = rows m and c = cols m in
  let pivots = ref [] in
  let prow = ref 0 in
  for j = 0 to c - 1 do
    if !prow < r then begin
      (* find a pivot in column j at or below row !prow *)
      let p = ref (-1) in
      (try
         for i = !prow to r - 1 do
           if not (Q.is_zero m.(i).(j)) then begin p := i; raise Exit end
         done
       with Exit -> ());
      if !p >= 0 then begin
        let tmp = m.(!prow) in
        m.(!prow) <- m.(!p);
        m.(!p) <- tmp;
        let inv_pivot = Q.inv m.(!prow).(j) in
        m.(!prow) <- Vec.scale inv_pivot m.(!prow);
        for i = 0 to r - 1 do
          if i <> !prow && not (Q.is_zero m.(i).(j)) then
            m.(i) <- Vec.sub m.(i) (Vec.scale m.(i).(j) m.(!prow))
        done;
        pivots := j :: !pivots;
        incr prow
      end
    end
  done;
  (m, List.rev !pivots)

let rank m = List.length (snd (rref m))

let nullspace m =
  let c = cols m in
  if c = 0 then []
  else begin
    let red, pivots = rref m in
    let is_pivot = Array.make c false in
    List.iter (fun j -> is_pivot.(j) <- true) pivots;
    let pivot_row = Array.make c (-1) in
    List.iteri (fun i j -> pivot_row.(j) <- i) pivots;
    let free = List.filter (fun j -> not is_pivot.(j)) (List.init c Fun.id) in
    let basis_for f =
      let v = Vec.zero c in
      v.(f) <- Q.one;
      List.iter
        (fun j ->
          let i = pivot_row.(j) in
          v.(j) <- Q.neg red.(i).(f))
        pivots;
      v
    in
    List.map basis_for free
  end

let inverse m =
  let n = rows m in
  if n <> cols m then invalid_arg "Mat.inverse: not square";
  (* augment with identity, reduce, read off the right half *)
  let aug =
    Array.init n (fun i ->
        Array.init (2 * n) (fun j ->
            if j < n then m.(i).(j) else if j - n = i then Q.one else Q.zero))
  in
  let red, pivots = rref aug in
  let left_pivots = List.filter (fun j -> j < n) pivots in
  if List.length left_pivots < n then None
  else Some (Array.init n (fun i -> Array.init n (fun j -> red.(i).(j + n))))

let solve a b =
  let r = rows a and c = cols a in
  if Vec.dim b <> r then invalid_arg "Mat.solve: dimension mismatch";
  let aug = Array.init r (fun i -> Array.append (Array.copy a.(i)) [| b.(i) |]) in
  let red, pivots = rref aug in
  if List.mem c pivots then None (* inconsistent: pivot in the rhs column *)
  else begin
    let x = Vec.zero c in
    List.iteri
      (fun i j -> if j < c then x.(j) <- red.(i).(c))
      pivots;
    Some x
  end

let row_space_contains m v =
  if rows m = 0 then Vec.is_zero v
  else begin
    (* v in rowspace(m) iff rank(m) = rank(m with v appended) *)
    let aug = Array.append m [| Vec.copy v |] in
    rank m = rank aug
  end

let orthogonal_complement m =
  List.map Vec.normalize_int (nullspace m)

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  Array.iter (fun r -> Format.fprintf fmt "%a@," Vec.pp r) m;
  Format.fprintf fmt "@]"
