(** Exact rational numbers over {!Bigint}.

    Values are kept in canonical form: the denominator is positive and
    coprime with the numerator; zero is [0/1]. *)

type t = private { num : Bigint.t; den : Bigint.t }

val zero : t
val one : t
val minus_one : t
val two : t

(** [make num den] normalizes the fraction [num/den].
    @raise Division_by_zero if [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

(** [of_ints n d] is [make (of_int n) (of_int d)]. *)
val of_ints : int -> int -> t

val of_int : int -> t
val of_bigint : Bigint.t -> t

val num : t -> Bigint.t
val den : t -> Bigint.t

(** {1 Queries} *)

(** [sign q] is [-1], [0] or [1]. *)
val sign : t -> int

val is_zero : t -> bool
val is_integer : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero on division by zero. *)
val div : t -> t -> t

(** Multiplicative inverse. @raise Division_by_zero on zero. *)
val inv : t -> t

val min : t -> t -> t
val max : t -> t -> t

(** Greatest integer [<= q]. *)
val floor : t -> Bigint.t

(** Least integer [>= q]. *)
val ceil : t -> Bigint.t

(** [to_bigint q] when [is_integer q].
    @raise Failure otherwise. *)
val to_bigint : t -> Bigint.t

val to_float : t -> float
val to_string : t -> string

(** {1 Infix operators and printing} *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
