(* Sign + magnitude bignums in base 2^30.

   Magnitudes are little-endian int arrays with no zero digit at the top.
   All digit-level products fit in a native int: 2^30 * 2^30 = 2^60 < 2^62.
   Division uses Knuth's Algorithm D (TAOCP vol. 2, 4.3.1). *)

let base_bits = 30
let base = 1 lsl base_bits (* 2^30 *)
let digit_mask = base - 1

type t = { sign : int; mag : int array }
(* invariants: sign = 0 iff mag = [||]; otherwise sign is 1 or -1 and the
   highest digit of mag is non-zero; every digit is in [0, base). *)

let zero = { sign = 0; mag = [||] }

let mag_norm (m : int array) : int array =
  let n = ref (Array.length m) in
  while !n > 0 && m.(!n - 1) = 0 do decr n done;
  if !n = Array.length m then m else Array.sub m 0 !n

let make sign mag =
  let mag = mag_norm mag in
  if Array.length mag = 0 then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n > 0 then 1 else -1 in
    (* min_int's absolute value overflows; peel digits off using mod that
       works on negative numbers instead. *)
    let rec digits n acc =
      if n = 0 then List.rev acc
      else digits (n / base) (abs (n mod base) :: acc)
    in
    { sign; mag = Array.of_list (digits n []) }
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign x = x.sign
let is_zero x = x.sign = 0

let mag_cmp a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let compare x y =
  if x.sign <> y.sign then compare x.sign y.sign
  else if x.sign = 0 then 0
  else x.sign * mag_cmp x.mag y.mag

let equal x y = compare x y = 0
let is_one x = equal x one

let hash x =
  Array.fold_left (fun h d -> (h * 131) + d) x.sign x.mag

(* --- magnitude arithmetic ------------------------------------------- *)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      !carry
      + (if i < la then a.(i) else 0)
      + (if i < lb then b.(i) else 0)
    in
    r.(i) <- s land digit_mask;
    carry := s lsr base_bits
  done;
  mag_norm r

(* requires a >= b *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  assert (!borrow = 0);
  mag_norm r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      if ai <> 0 then begin
        for j = 0 to lb - 1 do
          let t = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- t land digit_mask;
          carry := t lsr base_bits
        done;
        (* propagate the final carry *)
        let k = ref (i + lb) in
        while !carry <> 0 do
          let t = r.(!k) + !carry in
          r.(!k) <- t land digit_mask;
          carry := t lsr base_bits;
          incr k
        done
      end
    done;
    mag_norm r
  end

(* shift a magnitude left by [bits] (< base_bits) bits *)
let mag_shl a bits =
  if bits = 0 then Array.copy a
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let t = (a.(i) lsl bits) lor !carry in
      r.(i) <- t land digit_mask;
      carry := t lsr base_bits
    done;
    r.(la) <- !carry;
    mag_norm r
  end

(* shift right by [bits] (< base_bits) bits *)
let mag_shr a bits =
  if bits = 0 then Array.copy a
  else begin
    let la = Array.length a in
    let r = Array.make la 0 in
    for i = 0 to la - 1 do
      let lo = a.(i) lsr bits in
      let hi = if i + 1 < la then (a.(i + 1) lsl (base_bits - bits)) land digit_mask else 0 in
      r.(i) <- lo lor hi
    done;
    mag_norm r
  end

(* divide magnitude by a single digit; returns (quotient, remainder digit) *)
let mag_divmod_digit a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (mag_norm q, !r)

(* Knuth Algorithm D. Requires |b| >= 2 digits and a >= b. *)
let mag_divmod_knuth a b =
  let n = Array.length b in
  (* normalize so the top digit of v is >= base/2 *)
  let shift =
    let top = b.(n - 1) in
    let s = ref 0 in
    let t = ref top in
    while !t < base / 2 do t := !t lsl 1; incr s done;
    !s
  in
  let u0 = mag_shl a shift in
  let v = mag_shl b shift in
  assert (Array.length v = n);
  (* u gets one extra (possibly zero) top digit *)
  let m = Array.length u0 - n in
  let u = Array.make (Array.length u0 + 1) 0 in
  Array.blit u0 0 u 0 (Array.length u0);
  let q = Array.make (m + 1) 0 in
  let vn1 = v.(n - 1) and vn2 = v.(n - 2) in
  for j = m downto 0 do
    (* estimate q-hat from the top two digits of the running remainder *)
    let top2 = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
    let qhat = ref (top2 / vn1) and rhat = ref (top2 mod vn1) in
    let adjust = ref true in
    while !adjust do
      if !qhat >= base || !qhat * vn2 > ((!rhat lsl base_bits) lor u.(j + n - 2))
      then begin
        decr qhat;
        rhat := !rhat + vn1;
        if !rhat >= base then adjust := false
      end
      else adjust := false
    done;
    (* multiply and subtract: u[j .. j+n] -= qhat * v *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr base_bits;
      let d = u.(i + j) - (p land digit_mask) - !borrow in
      if d < 0 then begin u.(i + j) <- d + base; borrow := 1 end
      else begin u.(i + j) <- d; borrow := 0 end
    done;
    let d = u.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* q-hat was one too large: add v back *)
      u.(j + n) <- d + base;
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let s = u.(i + j) + v.(i) + !c in
        u.(i + j) <- s land digit_mask;
        c := s lsr base_bits
      done;
      u.(j + n) <- (u.(j + n) + !c) land digit_mask
    end
    else u.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = mag_shr (mag_norm (Array.sub u 0 n)) shift in
  (mag_norm q, r)

let mag_divmod a b =
  match Array.length b with
  | 0 -> raise Division_by_zero
  | _ when mag_cmp a b < 0 -> ([||], Array.copy a)
  | 1 ->
    let q, r = mag_divmod_digit a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  | _ -> mag_divmod_knuth a b

(* --- signed operations ---------------------------------------------- *)

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then { sign = x.sign; mag = mag_add x.mag y.mag }
  else begin
    let c = mag_cmp x.mag y.mag in
    if c = 0 then zero
    else if c > 0 then make x.sign (mag_sub x.mag y.mag)
    else make y.sign (mag_sub y.mag x.mag)
  end

let sub x y = add x (neg y)
let succ x = add x one
let pred x = sub x one

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else { sign = x.sign * y.sign; mag = mag_mul x.mag y.mag }

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (zero, zero)
  else begin
    let qm, rm = mag_divmod a.mag b.mag in
    (make (a.sign * b.sign) qm, make a.sign rm)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let fdiv a b =
  let q, r = divmod a b in
  if r.sign <> 0 && r.sign <> b.sign then sub q one else q

let cdiv a b =
  let q, r = divmod a b in
  if r.sign <> 0 && r.sign = b.sign then add q one else q

let rec gcd_mag a b =
  if b.sign = 0 then a else gcd_mag b (rem a b)

let gcd a b = gcd_mag (abs a) (abs b)

let lcm a b =
  if a.sign = 0 || b.sign = 0 then zero
  else abs (div (mul a b) (gcd a b))

let mul_int x n = mul x (of_int n)

let pow x n =
  if Stdlib.(n < 0) then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b n =
    if n = 0 then acc
    else go (if n land 1 = 1 then mul acc b else acc) (mul b b) (n lsr 1)
  in
  go one x n

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* --- conversions ----------------------------------------------------- *)

let fits_int x =
  (* max_int has 62 bits; accept up to 3 digits when the top digit is small *)
  match Array.length x.mag with
  | 0 | 1 | 2 -> true
  | 3 -> x.mag.(2) < 4 (* 3 digits => < 2^62; top digit < 4 keeps it < 2^62 *)
  | _ -> false

let to_int_opt x =
  if not (fits_int x) then None
  else begin
    let v = Array.fold_right (fun d acc -> (acc lsl base_bits) lor d) x.mag 0 in
    if Stdlib.(v < 0) then None (* overflowed into the sign bit *)
    else Some (x.sign * v)
  end

let to_int x =
  match to_int_opt x with
  | Some v -> v
  | None -> failwith "Bigint.to_int: does not fit"

let to_float x =
  let m = Array.fold_right (fun d acc -> (acc *. 1073741824.0) +. float_of_int d) x.mag 0.0 in
  float_of_int x.sign *. m

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec chunks m acc =
      if Array.length m = 0 then acc
      else begin
        let q, r = mag_divmod_digit m 1000000000 in
        chunks q (r :: acc)
      end
    in
    match chunks x.mag [] with
    | [] -> "0"
    | first :: rest ->
      if Stdlib.(x.sign < 0) then Buffer.add_char buf '-';
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest;
      Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty";
  let sign, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let ten = of_int 10 in
  for i = start to n - 1 do
    let c = s.[i] in
    if Stdlib.(c < '0' || c > '9') then invalid_arg "Bigint.of_string: bad digit";
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if sign = -1 then neg !acc else !acc

(* --- operators & printing ------------------------------------------- *)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( = ) = equal
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0

let pp fmt x = Format.pp_print_string fmt (to_string x)
