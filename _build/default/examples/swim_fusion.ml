(* The paper's Figure 5, reproduced end to end on the swim excerpt:
   Algorithm 1's pre-fusion schedule vs PLuTo's DFS order, the
   resulting fusion partitions, reuse scores and modeled performance.

     dune exec examples/swim_fusion.exe *)

let pp_order (prog : Scop.Program.t) res =
  List.iter
    (fun scc ->
      let members = (Deps.Ddg.components res.Pluto.Scheduler.scc_of).(scc) in
      Format.printf " [%d:" scc;
      List.iter
        (fun id -> Format.printf " %s" prog.stmts.(id).Scop.Statement.name)
        members;
      Format.printf "]")
    res.Pluto.Scheduler.scc_order;
  Format.printf "@."

let () =
  let prog = Kernels.Swim.program ~n:16 () in
  let params = prog.Scop.Program.default_params in

  Format.printf "swim excerpt: %d statements, %d parameters@.@."
    (Array.length prog.stmts) (Scop.Program.nparams prog);

  let wf = Fusion.Wisefuse.run prog in
  let sf = Pluto.Scheduler.run Pluto.Scheduler.smartfuse prog in

  Format.printf "pre-fusion schedule, Algorithm 1 (wisefuse):@.";
  pp_order prog wf;
  Format.printf "@.pre-fusion schedule, DFS order (PLuTo / smartfuse):@.";
  pp_order prog sf;

  Format.printf "@.%a@." Fusion.Report.pp_table wf;
  Format.printf "@.%a@." Fusion.Report.pp_table sf;

  Format.printf "@.reuse co-located by fusion: wisefuse %d vs smartfuse %d@."
    (Fusion.Report.reuse_score wf)
    (Fusion.Report.reuse_score sf);
  Format.printf "partitions: wisefuse %d vs smartfuse %d@.@."
    (Fusion.Report.partition_count wf)
    (Fusion.Report.partition_count sf);

  (* modeled performance on 8 cores *)
  List.iter
    (fun (tag, res) ->
      let ast = Codegen.Scan.of_result res in
      let st = Machine.Perf.simulate prog ast ~params in
      Format.printf "%-10s %a@." tag Machine.Perf.pp_stats st)
    [ ("wisefuse", wf); ("smartfuse", sf);
      ("nofuse", Pluto.Scheduler.run Pluto.Scheduler.nofuse prog);
      ("maxfuse", Pluto.Scheduler.run Pluto.Scheduler.maxfuse prog) ];
  let icc = Icc.Icc_model.run prog in
  let st = Machine.Perf.simulate prog icc.Icc.Icc_model.ast ~params in
  Format.printf "%-10s %a@." "icc" Machine.Perf.pp_stats st
