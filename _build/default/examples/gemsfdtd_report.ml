(* The paper's Figure 8: the fusion partitioning achieved by icc,
   smartfuse and wisefuse on the gemsfdtd UPMLupdateh-like routine
   (SCC dimensionality and partition number per fusion model).

     dune exec examples/gemsfdtd_report.exe *)

let () =
  let prog = Kernels.Gemsfdtd.program ~n:10 () in

  let wf = Fusion.Wisefuse.run prog in
  let sf = Pluto.Scheduler.run Pluto.Scheduler.smartfuse prog in
  let icc = Icc.Icc_model.run prog in

  (* icc partition per statement = its nest index *)
  let icc_part = Array.make (Array.length prog.stmts) 0 in
  List.iteri
    (fun idx (nst : Icc.Icc_model.nest) ->
      List.iter (fun id -> icc_part.(id) <- idx) nst.Icc.Icc_model.stmts)
    icc.Icc.Icc_model.nests;

  (* align rows on wisefuse's pre-fusion order, like Figure 8 *)
  Format.printf "Figure 8 - partitioning per fusion model (gemsfdtd)@.";
  Format.printf "%-6s %-4s %-6s %-10s %-9s@." "SCC" "dim" "icc" "smartfuse"
    "wisefuse";
  let sf_part = sf.Pluto.Scheduler.outer_partition in
  let wf_part = wf.Pluto.Scheduler.outer_partition in
  List.iter
    (fun (r : Fusion.Report.row) ->
      let rep = List.hd r.members in
      Format.printf "%-6s %-4d %-6d %-10d %-9d (%s)@."
        (string_of_int r.scc) r.dim icc_part.(rep) sf_part.(rep) wf_part.(rep)
        prog.stmts.(rep).Scop.Statement.name)
    (Fusion.Report.partition_table wf);

  let count_distinct a =
    List.length (List.sort_uniq compare (Array.to_list a))
  in
  Format.printf "@.partitions: icc %d, smartfuse %d, wisefuse %d@."
    (List.length icc.Icc.Icc_model.nests)
    (count_distinct sf_part)
    (count_distinct wf_part)
