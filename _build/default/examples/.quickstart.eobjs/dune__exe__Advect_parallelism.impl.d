examples/advect_parallelism.ml: Codegen Format Fusion Kernels List Machine Pluto Scop
