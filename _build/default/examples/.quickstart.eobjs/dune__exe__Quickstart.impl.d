examples/quickstart.ml: Codegen Format Fusion Machine Pluto Scop
