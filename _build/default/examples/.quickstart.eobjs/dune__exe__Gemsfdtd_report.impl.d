examples/gemsfdtd_report.ml: Array Format Fusion Icc Kernels List Pluto Scop
