examples/gemsfdtd_report.mli:
