examples/advect_parallelism.mli:
