examples/swim_fusion.mli:
