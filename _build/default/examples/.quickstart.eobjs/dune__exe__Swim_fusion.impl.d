examples/swim_fusion.ml: Array Codegen Deps Format Fusion Icc Kernels List Machine Pluto Scop
