examples/quickstart.mli:
