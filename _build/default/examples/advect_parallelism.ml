(* The paper's Figures 4 and 6 on advect: maximal fusion needs loop
   shifting and turns the outer loop into a pipelined
   (forward-dependence) loop; wisefuse's Algorithm 2 distributes only
   the offending statement and keeps both nests outer-parallel. The
   performance gap grows with the core count (Section 5.3).

     dune exec examples/advect_parallelism.exe *)

let () =
  let prog = Kernels.Advect.program ~n:40 () in
  let params = prog.Scop.Program.default_params in

  let mf = Pluto.Scheduler.run Pluto.Scheduler.maxfuse prog in
  let wf = Fusion.Wisefuse.run prog in

  Format.printf "=== maxfuse (Figure 4(c): fused with shifting) ===@.";
  Format.printf "%a@." (Pluto.Sched.pp prog) mf.Pluto.Scheduler.sched;
  Format.printf "%a@." (Codegen.Ast.pp prog) (Codegen.Scan.of_result mf);

  Format.printf "@.=== wisefuse (Figure 6: Algorithm 2 distributes S4) ===@.";
  Format.printf "%a@." (Pluto.Sched.pp prog) wf.Pluto.Scheduler.sched;
  Format.printf "%a@." (Codegen.Ast.pp prog) (Codegen.Scan.of_result wf);

  (* scaling: modeled time vs core count *)
  Format.printf "@.=== modeled cycles vs cores ===@.";
  Format.printf "%8s %12s %12s %8s@." "cores" "maxfuse" "wisefuse" "ratio";
  List.iter
    (fun cores ->
      let config = Machine.Perf.with_cores cores Machine.Perf.default in
      let tm =
        Machine.Perf.simulate ~config prog (Codegen.Scan.of_result mf) ~params
      in
      let tw =
        Machine.Perf.simulate ~config prog (Codegen.Scan.of_result wf) ~params
      in
      Format.printf "%8d %12d %12d %8.2f@." cores tm.Machine.Perf.cycles
        tw.Machine.Perf.cycles
        (float_of_int tm.Machine.Perf.cycles /. float_of_int tw.Machine.Perf.cycles))
    [ 1; 2; 4; 8 ]
