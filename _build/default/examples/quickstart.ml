(* Quickstart: write a kernel in the DSL, optimize it with wisefuse,
   print the transformed code, check it computes the same thing as the
   source, and compare modeled execution times.

     dune exec examples/quickstart.exe *)

open Scop.Build

(* A tiny two-nest kernel with a producer-consumer fusion opportunity:
   the second nest re-reads the first one's output. Fusing them lets
   every A[i][j] be consumed while still in L1. *)
let my_kernel () =
  let ctx = create ~name:"quickstart" ~params:[ ("N", 64) ] in
  let n = param ctx "N" in
  let a = array ctx "A" [ n; n ] in
  let b = array ctx "B" [ n; n ] in
  let s = array ctx "s" [ n ] in
  let lb = ci 0 and ub = n -~ ci 1 in
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S1" a [ i; j ] (b.%([ i; j ]) *: f 2.0)));
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S2" s [ i ] (s.%([ i ]) +: (a.%([ i; j ]) *: b.%([ i; j ])))));
  finish ctx

let () =
  let prog = my_kernel () in
  let params = prog.Scop.Program.default_params in
  Format.printf "=== source ===@.%a@.@." Scop.Program.pp prog;

  (* run the paper's fusion algorithm *)
  let res = Fusion.Wisefuse.run prog in
  Format.printf "=== statement-wise transforms ===@.%a@."
    (Pluto.Sched.pp prog) res.Pluto.Scheduler.sched;
  Format.printf "=== fusion partitions ===@.%a@.@." Fusion.Report.pp_table res;

  (* generate and print the transformed code *)
  let ast = Codegen.Scan.of_result res in
  Format.printf "=== transformed code ===@.%a@." (Codegen.Ast.pp prog) ast;

  (* the transformed program computes exactly what the source does *)
  let reference = Machine.Interp.init_memory prog ~params in
  Machine.Interp.run_original prog reference ~params;
  let transformed = Machine.Interp.init_memory prog ~params in
  Machine.Interp.run prog ast transformed ~params;
  (match Machine.Interp.first_diff reference transformed with
  | None -> Format.printf "semantics: transformed == original@."
  | Some d -> Format.printf "semantics: BUG! %s@." d);

  (* modeled performance: original order vs wisefuse, 8 cores *)
  let deps = res.Pluto.Scheduler.all_deps in
  let original_ast = Codegen.Scan.original prog ~deps in
  let t0 = Machine.Perf.simulate prog original_ast ~params in
  let t1 = Machine.Perf.simulate prog ast ~params in
  Format.printf "original:  %a@." Machine.Perf.pp_stats t0;
  Format.printf "wisefuse:  %a@." Machine.Perf.pp_stats t1;
  Format.printf "speedup: %.2fx@."
    (float_of_int t0.Machine.Perf.cycles /. float_of_int t1.Machine.Perf.cycles)
