(* Tests for the traditional-compiler (icc) baseline model. *)

open Icc

let nest_names prog (nst : Icc_model.nest) =
  List.map
    (fun id -> prog.Scop.Program.stmts.(id).Scop.Statement.name)
    nst.Icc_model.stmts

let test_gemver_no_fusion_serial_reductions () =
  let prog = Kernels.Gemver.program ~n:12 () in
  let r = Icc_model.run prog in
  (* four nests: no fusion opportunities without interchange *)
  Alcotest.(check int) "four nests" 4 (Icc_model.nest_count r);
  let by_name =
    List.map (fun nst -> (nest_names prog nst, nst.Icc_model.parallel)) r.nests
  in
  (* the S2 and S4 nests hold inner-loop reductions: not parallelized
     (the paper: "icc fails to achieve coarse-grained parallelism in
     the loop nest enclosing statement S2") *)
  Alcotest.(check bool) "S1 nest parallel" true (List.assoc [ "S1" ] by_name);
  Alcotest.(check bool) "S2 nest serial" false (List.assoc [ "S2" ] by_name);
  Alcotest.(check bool) "S3 nest parallel" true (List.assoc [ "S3" ] by_name);
  Alcotest.(check bool) "S4 nest serial" false (List.assoc [ "S4" ] by_name)

let test_lu_serial () =
  let prog = Kernels.Lu.program ~n:10 () in
  let r = Icc_model.run prog in
  (* non-rectangular: every nest stays serial (Section 5.3) *)
  List.iter
    (fun (nst : Icc_model.nest) ->
      Alcotest.(check bool) "serial" false nst.Icc_model.parallel)
    r.nests

let test_advect_pairwise_fusion () =
  let prog = Kernels.Advect.program ~n:10 () in
  let r = Icc_model.run prog in
  (* S1, S2, S3 are adjacent conformable parallel nests: fused; S4 would
     need shifting (backward dependence): not fused *)
  Alcotest.(check int) "two nests" 2 (Icc_model.nest_count r);
  (match r.nests with
  | [ a; b ] ->
    Alcotest.(check (list string)) "first nest" [ "S1"; "S2"; "S3" ]
      (nest_names prog a);
    Alcotest.(check (list string)) "second nest" [ "S4" ] (nest_names prog b);
    Alcotest.(check bool) "both parallel" true
      (a.Icc_model.parallel && b.Icc_model.parallel)
  | _ -> Alcotest.fail "expected two nests")

let test_gemsfdtd_no_fusion () =
  let prog = Kernels.Gemsfdtd.program ~n:6 () in
  let r = Icc_model.run prog in
  (* adjacent nests differ in dimensionality or loop order, and the
     conformable 2-D boundary planes share no data: nothing fuses (the
     paper: icc "doesn't accomplish any fusion" here) *)
  Alcotest.(check int) "twelve nests" 12 (Icc_model.nest_count r)

let test_tce_no_fusion () =
  let prog = Kernels.Tce.program ~n:6 () in
  let r = Icc_model.run prog in
  (* permuted loop orders: no conformable pattern *)
  Alcotest.(check int) "four nests" 4 (Icc_model.nest_count r)

let test_swim_fusion_within_dims () =
  let prog = Kernels.Swim.program ~n:8 () in
  let r = Icc_model.run prog in
  (* boundary loops fuse only where they share data (unew with unew,
     vnew with vnew): {S4,S5} and {S7,S8}; everything else stays *)
  Alcotest.(check int) "nine nests" 9 (Icc_model.nest_count r);
  (* the result must still be a legal schedule (validated inside run,
     but double-check the published invariant) *)
  match
    Pluto.Satisfy.check_legal prog
      (List.filter Deps.Dep.is_true r.Icc_model.deps)
      r.Icc_model.sched
  with
  | Ok () -> ()
  | Error d -> Alcotest.fail (Format.asprintf "illegal: %a" Deps.Dep.pp d)

let test_wupwise_reduction_not_parallel () =
  let prog = Kernels.Wupwise.program ~n:8 () in
  let r = Icc_model.run prog in
  (* the multiply-accumulate statements form an inner reduction: the
     nest holding them stays serial *)
  let has_serial_reduction =
    List.exists
      (fun (nst : Icc_model.nest) ->
        (not nst.Icc_model.parallel)
        && List.exists
             (fun id ->
               let n = prog.Scop.Program.stmts.(id).Scop.Statement.name in
               n = "S3" || n = "S4")
             nst.Icc_model.stmts)
      r.nests
  in
  Alcotest.(check bool) "zgemm nest serial" true has_serial_reduction

let () =
  Alcotest.run "icc"
    [ ( "model",
        [ Alcotest.test_case "gemver: no fusion, serial reductions" `Quick
            test_gemver_no_fusion_serial_reductions;
          Alcotest.test_case "lu: serial (non-rectangular)" `Quick test_lu_serial;
          Alcotest.test_case "advect: pairwise fusion" `Quick
            test_advect_pairwise_fusion;
          Alcotest.test_case "gemsfdtd: no fusion" `Quick test_gemsfdtd_no_fusion;
          Alcotest.test_case "tce: no fusion" `Quick test_tce_no_fusion;
          Alcotest.test_case "swim: legal" `Quick test_swim_fusion_within_dims;
          Alcotest.test_case "wupwise: serial reduction" `Quick
            test_wupwise_reduction_not_parallel ] ) ]
