(* Tests for the SCoP IR and the kernel-building DSL. *)

open Scop
open Scop.Build

(* gemver, exactly as in Figure 1(a) of the paper:
     for i for j: S1: A[i][j] = A[i][j] + u1[i]*v1[j] + u2[i]*v2[j]
     for i for j: S2: x[i] = x[i] + beta*A[j][i]*y[j]
     for i:       S3: x[i] = x[i] + z[i]
     for i for j: S4: w[i] = w[i] + alpha*A[i][j]*x[j]     *)
let gemver () =
  let ctx = create ~name:"gemver" ~params:[ ("N", 40) ] in
  let n = param ctx "N" in
  let a = array ctx "A" [ n; n ] in
  let u1 = array ctx "u1" [ n ] and v1 = array ctx "v1" [ n ] in
  let u2 = array ctx "u2" [ n ] and v2 = array ctx "v2" [ n ] in
  let x = array ctx "x" [ n ] and y = array ctx "y" [ n ] in
  let z = array ctx "z" [ n ] and w = array ctx "w" [ n ] in
  let lb = ci 0 and ub = n -~ ci 1 in
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S1" a [ i; j ]
            (a.%([ i; j ])
            +: (u1.%([ i ]) *: v1.%([ j ]))
            +: (u2.%([ i ]) *: v2.%([ j ])))));
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S2" x [ i ]
            (x.%([ i ]) +: (f 2.0 *: a.%([ j; i ]) *: y.%([ j ])))));
  loop ctx "i" ~lb ~ub (fun i ->
      assign ctx "S3" x [ i ] (x.%([ i ]) +: z.%([ i ])));
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S4" w [ i ]
            (w.%([ i ]) +: (f 3.0 *: a.%([ i; j ]) *: x.%([ j ])))));
  finish ctx

let test_build_shape () =
  let p = gemver () in
  Alcotest.(check int) "statements" 4 (Array.length p.stmts);
  Alcotest.(check int) "params" 1 (Program.nparams p);
  Alcotest.(check (list string)) "names"
    [ "S1"; "S2"; "S3"; "S4" ]
    (Array.to_list (Array.map (fun (s : Statement.t) -> s.name) p.stmts));
  Alcotest.(check (list int)) "depths" [ 2; 2; 1; 2 ]
    (Array.to_list (Array.map Statement.depth p.stmts));
  Alcotest.(check int) "max depth" 2 (Program.max_depth p)

let test_domains () =
  let p = gemver () in
  let s1 = p.stmts.(0) in
  (* domain over (i, j, N): 0 <= i,j <= N-1; check with N = 40 *)
  Alcotest.(check bool) "inside" true
    (Poly.Polyhedron.contains_int s1.domain [| 0; 39; 40 |]);
  Alcotest.(check bool) "outside high" false
    (Poly.Polyhedron.contains_int s1.domain [| 0; 40; 40 |]);
  Alcotest.(check bool) "outside low" false
    (Poly.Polyhedron.contains_int s1.domain [| -1; 0; 40 |]);
  let s3 = p.stmts.(2) in
  Alcotest.(check int) "s3 domain dim" 2 (Poly.Polyhedron.dim s3.domain)

let test_beta_and_order () =
  let p = gemver () in
  let s1 = p.stmts.(0) and s2 = p.stmts.(1) and s3 = p.stmts.(2) in
  (* distinct outer loops: common prefix 0 *)
  Alcotest.(check int) "no common loops" 0 (Statement.common_loops s1 s2);
  Alcotest.(check int) "self common" 2 (Statement.common_loops s1 s1);
  Alcotest.(check bool) "S1 before S2" true (Statement.textual_before s1 s2);
  Alcotest.(check bool) "S2 before S3" true (Statement.textual_before s2 s3);
  Alcotest.(check bool) "not S3 before S1" false (Statement.textual_before s3 s1);
  Alcotest.(check bool) "irreflexive" false (Statement.textual_before s1 s1);
  (* beta: S1 = [0;0;0], S2 = [1;0;0], S3 = [2;0], S4 = [3;0;0] *)
  Alcotest.(check (array int)) "beta S1" [| 0; 0; 0 |] s1.beta;
  Alcotest.(check (array int)) "beta S2" [| 1; 0; 0 |] s2.beta;
  Alcotest.(check (array int)) "beta S3" [| 2; 0 |] s3.beta;
  Alcotest.(check (array int)) "beta S4" [| 3; 0; 0 |] p.stmts.(3).beta

let test_accesses () =
  let p = gemver () in
  let s2 = p.stmts.(1) in
  (* S2 writes x[i], reads x[i], A[j][i], y[j] *)
  Alcotest.(check string) "write array" "x" s2.write.array;
  Alcotest.(check int) "write arity" 1 (Access.arity s2.write);
  let reads = Statement.reads s2 in
  Alcotest.(check (list string)) "read arrays" [ "x"; "A"; "y" ]
    (List.map (fun (a : Access.t) -> a.array) reads);
  (* A[j][i]: row for j is [0;1|0|0], row for i is [1;0|0|0] over (i,j,N,1) *)
  let a_access = List.nth reads 1 in
  Alcotest.(check (array (array int))) "transposed access"
    [| [| 0; 1; 0; 0 |]; [| 1; 0; 0; 0 |] |]
    a_access.idx;
  (* evaluation *)
  Alcotest.(check (array int)) "eval" [| 7; 3 |]
    (Access.eval a_access ~iters:[| 3; 7 |] ~params:[| 40 |])

let test_expr () =
  let p = gemver () in
  let s1 = p.stmts.(0) in
  Alcotest.(check int) "op count S1" 4 (Expr.op_count s1.rhs);
  (* evaluate S1's rhs with every load returning 2.0: 2 + 2*2 + 2*2 = 10 *)
  Alcotest.(check (float 1e-9)) "eval" 10.0
    (Expr.eval s1.rhs ~read:(fun _ -> 2.0))

let test_triangular_domain () =
  (* lu-style triangular loop: for k in 0..n-1, for j in k+1..n-1 *)
  let ctx = create ~name:"tri" ~params:[ ("N", 10) ] in
  let n = param ctx "N" in
  let a = array ctx "A" [ n; n ] in
  loop ctx "k" ~lb:(ci 0) ~ub:(n -~ ci 1) (fun k ->
      loop ctx "j" ~lb:(k +~ ci 1) ~ub:(n -~ ci 1) (fun j ->
          assign ctx "S" a [ k; j ] (a.%([ k; j ]) *: f 0.5)));
  let p = finish ctx in
  let d = p.stmts.(0).domain in
  Alcotest.(check bool) "j > k in" true (Poly.Polyhedron.contains_int d [| 2; 3; 10 |]);
  Alcotest.(check bool) "j = k out" false
    (Poly.Polyhedron.contains_int d [| 3; 3; 10 |]);
  Alcotest.(check bool) "j < k out" false
    (Poly.Polyhedron.contains_int d [| 4; 3; 10 |])

let test_validation_errors () =
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Build: arity mismatch writing A")
    (fun () ->
      let ctx = create ~name:"bad" ~params:[ ("N", 4) ] in
      let n = param ctx "N" in
      let a = array ctx "A" [ n; n ] in
      loop ctx "i" ~lb:(ci 0) ~ub:n (fun i ->
          assign ctx "S" a [ i ] (f 1.0)));
  Alcotest.check_raises "iterator in extent"
    (Invalid_argument "Build.array: extent mentions an iterator")
    (fun () ->
      let ctx = create ~name:"bad2" ~params:[ ("N", 4) ] in
      let n = param ctx "N" in
      loop ctx "i" ~lb:(ci 0) ~ub:n (fun i ->
          ignore (array ctx "B" [ i ])))

let test_scoped_iterator_escape () =
  Alcotest.check_raises "escaped iterator"
    (Invalid_argument "Build: iterator used outside its loop")
    (fun () ->
      let ctx = create ~name:"bad3" ~params:[ ("N", 4) ] in
      let n = param ctx "N" in
      let a = array ctx "A" [ n ] in
      let leaked = ref (ci 0) in
      loop ctx "i" ~lb:(ci 0) ~ub:n (fun i -> leaked := i);
      loop ctx "j" ~lb:(ci 0) ~ub:n (fun _ ->
          assign ctx "S" a [ !leaked ] (f 1.0)))

let test_array_extent () =
  let ctx = create ~name:"ext" ~params:[ ("N", 10); ("M", 5) ] in
  let n = param ctx "N" and m = param ctx "M" in
  let _a = array ctx "A" [ n +~ ci 2; m ] in
  loop ctx "i" ~lb:(ci 0) ~ub:n (fun i ->
      assign ctx "S" _a [ i; ci 0 ] (f 0.0));
  let p = finish ctx in
  let decl = Program.find_array p "A" in
  Alcotest.(check (array int)) "extents" [| 12; 5 |]
    (Program.array_extent decl ~params:[| 10; 5 |])

let () =
  Alcotest.run "scop"
    [ ( "build",
        [ Alcotest.test_case "shape" `Quick test_build_shape;
          Alcotest.test_case "domains" `Quick test_domains;
          Alcotest.test_case "beta & textual order" `Quick test_beta_and_order;
          Alcotest.test_case "accesses" `Quick test_accesses;
          Alcotest.test_case "expr" `Quick test_expr;
          Alcotest.test_case "triangular domain" `Quick test_triangular_domain;
          Alcotest.test_case "validation" `Quick test_validation_errors;
          Alcotest.test_case "iterator escape" `Quick test_scoped_iterator_escape;
          Alcotest.test_case "array extent" `Quick test_array_extent ] ) ]
