(* Tests for rectangular tiling of permutable bands. *)

let count_instances prog ast =
  let params = prog.Scop.Program.default_params in
  let mem = Machine.Interp.init_memory prog ~params in
  let count = ref 0 in
  Machine.Interp.run ~on_stmt:(fun _ -> incr count) prog ast mem ~params;
  !count

let rec max_loop_depth = function
  | Codegen.Ast.Exec _ -> 0
  | Codegen.Ast.Seq l ->
    List.fold_left (fun acc n -> max acc (max_loop_depth n)) 0 l
  | Codegen.Ast.Loop l -> 1 + max_loop_depth l.Codegen.Ast.body

let test_tiled_semantics kernel prog cfg =
  let params = prog.Scop.Program.default_params in
  let res = Pluto.Scheduler.run cfg prog in
  let plain = Codegen.Scan.of_result res in
  let tiled = Codegen.Tile.of_result ~size:3 res in
  let m1 = Machine.Interp.init_memory prog ~params in
  Machine.Interp.run prog plain m1 ~params;
  let m2 = Machine.Interp.init_memory prog ~params in
  Machine.Interp.run prog tiled m2 ~params;
  (match Machine.Interp.first_diff m1 m2 with
  | None -> ()
  | Some d -> Alcotest.failf "%s tiled differs: %s" kernel d);
  Alcotest.(check int)
    (kernel ^ " same instance count")
    (count_instances prog plain)
    (count_instances prog tiled)

let test_gemver_tiled () =
  test_tiled_semantics "gemver" (Kernels.Gemver.program ~n:13 ())
    Pluto.Scheduler.smartfuse

let test_advect_tiled () =
  test_tiled_semantics "advect" (Kernels.Advect.program ~n:11 ())
    Pluto.Scheduler.maxfuse

let test_swim_tiled () =
  test_tiled_semantics "swim" (Kernels.Swim.program ~n:9 ())
    Fusion.Wisefuse.config

let test_tce_tiled () =
  test_tiled_semantics "tce" (Kernels.Tce.program ~n:6 ()) Fusion.Wisefuse.config

let test_tiling_deepens_loops () =
  (* a tiled 2-D parallel band gains two loop levels *)
  let prog = Kernels.Advect.program ~n:12 () in
  let res = Fusion.Wisefuse.run prog in
  let plain = Codegen.Scan.of_result res in
  let tiled = Codegen.Tile.of_result ~size:4 res in
  Alcotest.(check bool) "deeper" true
    (max_loop_depth tiled > max_loop_depth plain)

let test_lu_triangular_untouched_or_correct () =
  (* lu's inner loops have bounds depending on k (non-rectangular
     inside the band): the band is truncated conservatively, and
     whatever is tiled must stay correct *)
  let prog = Kernels.Lu.program ~n:11 () in
  test_tiled_semantics "lu" prog Pluto.Scheduler.smartfuse

let test_odd_sizes () =
  (* tile size that does not divide the trip count *)
  let prog = Kernels.Gemver.program ~n:10 () in
  let res = Pluto.Scheduler.run Pluto.Scheduler.smartfuse prog in
  let params = prog.Scop.Program.default_params in
  List.iter
    (fun size ->
      let tiled = Codegen.Tile.of_result ~size res in
      let m1 = Machine.Interp.init_memory prog ~params in
      Machine.Interp.run_original prog m1 ~params;
      let m2 = Machine.Interp.init_memory prog ~params in
      Machine.Interp.run prog tiled m2 ~params;
      match Machine.Interp.first_diff m1 m2 with
      | None -> ()
      | Some d -> Alcotest.failf "size %d: %s" size d)
    [ 2; 3; 4; 7; 16 ]

let test_tiling_improves_locality () =
  (* on a transposed-reuse kernel, tiling must cut cache misses *)
  let prog = Kernels.Gemver.program ~n:48 () in
  let params = prog.Scop.Program.default_params in
  let res = Pluto.Scheduler.run Pluto.Scheduler.nofuse prog in
  let plain = Codegen.Scan.of_result res in
  let tiled = Codegen.Tile.of_result ~size:8 res in
  let sp = Machine.Perf.simulate prog plain ~params in
  let st = Machine.Perf.simulate prog tiled ~params in
  Alcotest.(check bool) "not more L2 misses" true
    (st.Machine.Perf.l2_misses <= sp.Machine.Perf.l2_misses)

let () =
  Alcotest.run "tiling"
    [ ( "semantics",
        [ Alcotest.test_case "gemver" `Quick test_gemver_tiled;
          Alcotest.test_case "advect (shifted)" `Quick test_advect_tiled;
          Alcotest.test_case "swim (guards)" `Quick test_swim_tiled;
          Alcotest.test_case "tce (permuted)" `Quick test_tce_tiled;
          Alcotest.test_case "lu (triangular)" `Quick
            test_lu_triangular_untouched_or_correct;
          Alcotest.test_case "odd tile sizes" `Quick test_odd_sizes ] );
      ( "structure",
        [ Alcotest.test_case "deepens loops" `Quick test_tiling_deepens_loops;
          Alcotest.test_case "locality" `Quick test_tiling_improves_locality ] ) ]
