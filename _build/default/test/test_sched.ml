(* Unit tests for the schedule representation (Pluto.Sched) and the
   Fusion.Model dispatch layer. *)

open Pluto

let test_eval_row () =
  (* phi = 2i + 3j + 5N + 7 at i=1, j=2, N=10 -> 2+6+50+7 = 65 *)
  let row = Sched.Hyp [| 2; 3; 5; 7 |] in
  Alcotest.(check int) "hyp" 65
    (Sched.eval_row row ~iters:[| 1; 2 |] ~params:[| 10 |]);
  Alcotest.(check int) "beta" 4
    (Sched.eval_row (Sched.Beta 4) ~iters:[| 1; 2 |] ~params:[| 10 |])

let test_row_as_hyp () =
  let h = Sched.row_as_hyp ~depth:2 ~np:1 (Sched.Beta 3) in
  Alcotest.(check (array int)) "beta as hyp" [| 0; 0; 0; 3 |] h;
  let h2 = Sched.row_as_hyp ~depth:2 ~np:1 (Sched.Hyp [| 1; 0; 0; 2 |]) in
  Alcotest.(check (array int)) "hyp passthrough" [| 1; 0; 0; 2 |] h2;
  Alcotest.check_raises "width check" (Invalid_argument "Sched.row_as_hyp: width")
    (fun () -> ignore (Sched.row_as_hyp ~depth:1 ~np:1 (Sched.Hyp [| 1; 0; 0; 2 |])))

let test_iter_part () =
  Alcotest.(check (array int)) "hyp" [| 1; 2 |]
    (Sched.iter_part ~depth:2 (Sched.Hyp [| 1; 2; 0; 5 |]));
  Alcotest.(check (array int)) "beta" [| 0; 0 |]
    (Sched.iter_part ~depth:2 (Sched.Beta 7))

let test_phi_diff () =
  (* src row: i (depth 2), dst row: j + 1 (depth 1), np = 1:
     diff over [s0 s1 t0 p 1] = -s0*1 ... dst(j+1) - src(i) *)
  let src = [| 1; 0; 0; 0 |] (* i, over (i,j,N,1) *) in
  let dst = [| 1; 0; 1 |] (* k + 1, over (k,N,1) *) in
  let v = Sched.phi_diff ~d1:2 ~d2:1 ~np:1 src dst in
  let expect = Linalg.Vec.of_ints [| -1; 0; 1; 0; 1 |] in
  Alcotest.(check bool) "phi diff" true (Linalg.Vec.equal v expect)

let test_timestamp () =
  let sched =
    [| [ Sched.Beta 1; Sched.Hyp [| 1; 0; 0 |]; Sched.Beta 0 ] |]
  in
  Alcotest.(check (array int)) "timestamp" [| 1; 5; 0 |]
    (Sched.timestamp sched 0 ~iters:[| 5 |] ~params:[| 9 |])

let test_is_beta_level () =
  let sched =
    [| [ Sched.Beta 0; Sched.Hyp [| 1; 0; 0 |]; Sched.Beta 2 ] |]
  in
  Alcotest.(check bool) "level 0" true (Sched.is_beta_level sched 0);
  Alcotest.(check bool) "level 1" false (Sched.is_beta_level sched 1);
  Alcotest.(check bool) "level 2" true (Sched.is_beta_level sched 2)

(* --- Fusion.Model dispatch --------------------------------------------- *)

let test_model_roundtrip () =
  List.iter
    (fun m ->
      Alcotest.(check bool) "roundtrip" true
        (Fusion.Model.of_name (Fusion.Model.name m) = m))
    Fusion.Model.all;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Fusion.Model.of_name "megafuse"))

let test_model_pipeline () =
  let prog = Kernels.Gemver.program ~n:8 () in
  List.iter
    (fun m ->
      match Fusion.Model.verify m prog with
      | None -> ()
      | Some d ->
        Alcotest.failf "%s semantic mismatch: %s" (Fusion.Model.name m) d)
    Fusion.Model.all

let test_model_optimized_fields () =
  let prog = Kernels.Gemver.program ~n:8 () in
  let icc = Fusion.Model.optimize Fusion.Model.Icc prog in
  Alcotest.(check bool) "icc has icc result" true (icc.Fusion.Model.icc <> None);
  Alcotest.(check bool) "icc has no scheduler" true
    (icc.Fusion.Model.scheduler = None);
  let wf = Fusion.Model.optimize Fusion.Model.Wisefuse prog in
  Alcotest.(check bool) "wisefuse has scheduler" true
    (wf.Fusion.Model.scheduler <> None)

let () =
  Alcotest.run "sched"
    [ ( "rows",
        [ Alcotest.test_case "eval_row" `Quick test_eval_row;
          Alcotest.test_case "row_as_hyp" `Quick test_row_as_hyp;
          Alcotest.test_case "iter_part" `Quick test_iter_part;
          Alcotest.test_case "phi_diff" `Quick test_phi_diff;
          Alcotest.test_case "timestamp" `Quick test_timestamp;
          Alcotest.test_case "is_beta_level" `Quick test_is_beta_level ] );
      ( "model",
        [ Alcotest.test_case "name roundtrip" `Quick test_model_roundtrip;
          Alcotest.test_case "pipeline all models" `Quick test_model_pipeline;
          Alcotest.test_case "optimized fields" `Quick test_model_optimized_fields ] ) ]
