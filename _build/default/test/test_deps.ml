(* Tests for dependence analysis and the DDG / SCC machinery. *)

open Scop
open Deps
open Scop.Build

let gemver () =
  let ctx = create ~name:"gemver" ~params:[ ("N", 40) ] in
  let n = param ctx "N" in
  let a = array ctx "A" [ n; n ] in
  let u1 = array ctx "u1" [ n ] and v1 = array ctx "v1" [ n ] in
  let x = array ctx "x" [ n ] and y = array ctx "y" [ n ] in
  let z = array ctx "z" [ n ] and w = array ctx "w" [ n ] in
  let lb = ci 0 and ub = n -~ ci 1 in
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S1" a [ i; j ] (a.%([ i; j ]) +: (u1.%([ i ]) *: v1.%([ j ])))));
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S2" x [ i ] (x.%([ i ]) +: (a.%([ j; i ]) *: y.%([ j ])))));
  loop ctx "i" ~lb ~ub (fun i ->
      assign ctx "S3" x [ i ] (x.%([ i ]) +: z.%([ i ])));
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S4" w [ i ] (w.%([ i ]) +: (a.%([ i; j ]) *: x.%([ j ])))));
  finish ctx

let find_dep deps ~src ~dst ~kind ~array =
  List.filter
    (fun (d : Dep.t) ->
      d.src = src && d.dst = dst && d.kind = kind
      && d.src_access.Access.array = array)
    deps

let test_gemver_flow_deps () =
  let p = gemver () in
  let deps = Dep.analyze p in
  (* S1 writes A, S2 reads A (transposed): flow S1 -> S2 *)
  Alcotest.(check bool) "S1->S2 flow on A" true
    (find_dep deps ~src:0 ~dst:1 ~kind:Dep.Flow ~array:"A" <> []);
  (* S2 -> S3 flow on x *)
  Alcotest.(check bool) "S2->S3 flow on x" true
    (find_dep deps ~src:1 ~dst:2 ~kind:Dep.Flow ~array:"x" <> []);
  (* S3 -> S4 flow on x *)
  Alcotest.(check bool) "S3->S4 flow on x" true
    (find_dep deps ~src:2 ~dst:3 ~kind:Dep.Flow ~array:"x" <> []);
  (* S1 -> S4 flow on A *)
  Alcotest.(check bool) "S1->S4 flow on A" true
    (find_dep deps ~src:0 ~dst:3 ~kind:Dep.Flow ~array:"A" <> []);
  (* no dependence backward in program order *)
  Alcotest.(check bool) "nothing into S1" true
    (List.for_all (fun (d : Dep.t) -> not (Dep.is_true d) || d.dst <> 0 || d.src = 0) deps)

let test_gemver_self_dep () =
  let p = gemver () in
  let deps = Dep.analyze p in
  (* S2: x[i] += ... over j: flow S2 -> S2 carried by the j loop (level 1) *)
  let self = find_dep deps ~src:1 ~dst:1 ~kind:Dep.Flow ~array:"x" in
  Alcotest.(check bool) "self flow on x" true
    (List.exists (fun (d : Dep.t) -> d.level = Dep.Carried 1) self);
  (* not carried by the i loop: x[i] differs across i *)
  Alcotest.(check bool) "not carried at level 0" true
    (List.for_all (fun (d : Dep.t) -> d.level <> Dep.Carried 0) self)

let test_gemver_anti_output () =
  let p = gemver () in
  let deps = Dep.analyze p in
  (* S2 reads x[i] then S3 writes x[i]: anti S2 -> S3 *)
  Alcotest.(check bool) "anti S2->S3 on x" true
    (find_dep deps ~src:1 ~dst:2 ~kind:Dep.Anti ~array:"x" <> []);
  (* S2 writes x then S3 writes x: output S2 -> S3 *)
  Alcotest.(check bool) "output S2->S3 on x" true
    (find_dep deps ~src:1 ~dst:2 ~kind:Dep.Output ~array:"x" <> [])

let test_gemver_input_deps () =
  let p = gemver () in
  let deps = Dep.analyze p in
  (* S2 and S4 both read A: input dependence *)
  Alcotest.(check bool) "input S2->S4 on A" true
    (find_dep deps ~src:1 ~dst:3 ~kind:Dep.Input ~array:"A" <> []);
  let no_input = Dep.analyze ~with_input:false p in
  Alcotest.(check bool) "with_input:false drops them" true
    (List.for_all (fun (d : Dep.t) -> d.kind <> Dep.Input) no_input)

(* Every dependence polyhedron must contain a witness which (a) lies in
   both domains, (b) accesses the same cell, (c) respects the level
   semantics. This is the soundness check for the polyhedron builder. *)
let test_dep_witnesses () =
  let p = gemver () in
  let deps = Dep.analyze p in
  Alcotest.(check bool) "some deps" true (deps <> []);
  List.iter
    (fun (d : Dep.t) ->
      match Ilp.Bb.integer_point d.poly with
      | None ->
        Alcotest.fail
          (Format.asprintf "dependence %a has empty polyhedron" Dep.pp d)
      | Some pt ->
        let src = p.stmts.(d.src) and dst = p.stmts.(d.dst) in
        let d1 = Statement.depth src and d2 = Statement.depth dst in
        let np = Program.nparams p in
        let s_iters = Array.sub pt 0 d1 in
        let t_iters = Array.sub pt d1 d2 in
        let params = Array.sub pt (d1 + d2) np in
        Alcotest.(check bool) "src in domain" true
          (Poly.Polyhedron.contains_int src.domain (Array.append s_iters params));
        Alcotest.(check bool) "dst in domain" true
          (Poly.Polyhedron.contains_int dst.domain (Array.append t_iters params));
        Alcotest.(check (array int)) "same cell"
          (Access.eval d.src_access ~iters:s_iters ~params)
          (Access.eval d.dst_access ~iters:t_iters ~params);
        (match d.level with
        | Dep.Carried l ->
          for k = 0 to l - 1 do
            Alcotest.(check int) "equal prefix" s_iters.(k) t_iters.(k)
          done;
          Alcotest.(check bool) "strictly before at level" true
            (s_iters.(l) < t_iters.(l))
        | Dep.Independent ->
          let c = Statement.common_loops src dst in
          for k = 0 to c - 1 do
            Alcotest.(check int) "equal common iters" s_iters.(k) t_iters.(k)
          done;
          Alcotest.(check bool) "textual order" true
            (Statement.textual_before src dst)))
    deps

(* --- DDG & SCC ---------------------------------------------------------- *)

let test_ddg_gemver () =
  let p = gemver () in
  let deps = Dep.analyze p in
  let g = Ddg.build p deps in
  Alcotest.(check bool) "edge S1->S2" true (Ddg.has_edge g 0 1);
  Alcotest.(check bool) "edge S2->S3" true (Ddg.has_edge g 1 2);
  Alcotest.(check bool) "no edge S2->S1" false (Ddg.has_edge g 1 0);
  Alcotest.(check bool) "input S2~S4" true (Ddg.has_input_between g 1 3);
  (* all SCCs are singletons here *)
  let scc = Ddg.scc_kosaraju g in
  Alcotest.(check int) "scc count" 4 (Ddg.scc_count scc);
  Alcotest.(check (array int)) "topological ids" [| 0; 1; 2; 3 |] scc

(* two statements forming a dependence cycle across iterations:
   for i: S1: a[i] = b2[i];  S2: b2[i+1] = a[i]
   S1 -> S2 (flow on a, independent), S2 -> S1 (flow on b2, carried) *)
let cyclic () =
  let ctx = create ~name:"cyc" ~params:[ ("N", 20) ] in
  let n = param ctx "N" in
  let a = array ctx "a" [ n +~ ci 2 ] in
  let b2 = array ctx "b2" [ n +~ ci 2 ] in
  loop ctx "i" ~lb:(ci 1) ~ub:(n -~ ci 1) (fun i ->
      assign ctx "S1" a [ i ] (b2.%([ i ]));
      assign ctx "S2" b2 [ i +~ ci 1 ] (a.%([ i ])));
  finish ctx

let test_scc_cycle () =
  let p = cyclic () in
  let deps = Dep.analyze p in
  let g = Ddg.build p deps in
  Alcotest.(check bool) "S1->S2" true (Ddg.has_edge g 0 1);
  Alcotest.(check bool) "S2->S1" true (Ddg.has_edge g 1 0);
  let scc = Ddg.scc_kosaraju g in
  Alcotest.(check int) "one scc" 1 (Ddg.scc_count scc);
  Alcotest.(check int) "same id" scc.(0) scc.(1)

(* random digraphs: Kosaraju and Tarjan give the same partition and a
   topological numbering of the condensation *)
let arb_digraph =
  QCheck.make
    QCheck.Gen.(
      let* n = int_range 1 8 in
      let* edges = list_size (int_range 0 20) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
      return (n, edges))

let build_graph (n, edges) =
  let succ = Array.make n [] in
  let pred = Array.make n [] in
  List.iter
    (fun (a, b) ->
      if not (List.mem b succ.(a)) then succ.(a) <- b :: succ.(a);
      if not (List.mem a pred.(b)) then pred.(b) <- a :: pred.(b))
    edges;
  { Ddg.n; succ; pred; deps = [] }

let same_partition scc1 scc2 =
  let n = Array.length scc1 in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if scc1.(i) = scc1.(j) <> (scc2.(i) = scc2.(j)) then ok := false
    done
  done;
  !ok

let prop_scc_agree =
  QCheck.Test.make ~name:"kosaraju and tarjan agree" ~count:300 arb_digraph
    (fun spec ->
      let g = build_graph spec in
      same_partition (Ddg.scc_kosaraju g) (Ddg.scc_tarjan g))

let prop_scc_topological =
  QCheck.Test.make ~name:"scc ids are topologically ordered" ~count:300 arb_digraph
    (fun spec ->
      let g = build_graph spec in
      let check scc =
        let ok = ref true in
        Array.iteri
          (fun v succs ->
            List.iter (fun w -> if scc.(w) < scc.(v) then ok := false) succs)
          g.Ddg.succ;
        !ok
      in
      check (Ddg.scc_kosaraju g) && check (Ddg.scc_tarjan g))

let prop_scc_mutual_reachability =
  QCheck.Test.make ~name:"same scc iff mutually reachable" ~count:200 arb_digraph
    (fun spec ->
      let g = build_graph spec in
      let n = g.Ddg.n in
      (* Floyd-Warshall reachability *)
      let reach = Array.make_matrix n n false in
      for v = 0 to n - 1 do
        reach.(v).(v) <- true;
        List.iter (fun w -> reach.(v).(w) <- true) g.Ddg.succ.(v)
      done;
      for k = 0 to n - 1 do
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
          done
        done
      done;
      let scc = Ddg.scc_kosaraju g in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if scc.(i) = scc.(j) <> (reach.(i).(j) && reach.(j).(i)) then ok := false
        done
      done;
      !ok)

let test_components () =
  let g = build_graph (4, [ (0, 1); (1, 0); (2, 3) ]) in
  let scc = Ddg.scc_kosaraju g in
  let comps = Ddg.components scc in
  Alcotest.(check int) "three sccs" 3 (Array.length comps);
  Alcotest.(check bool) "pair component" true
    (Array.exists (fun c -> c = [ 0; 1 ]) comps)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "deps"
    [ ( "dep",
        [ Alcotest.test_case "gemver flow deps" `Quick test_gemver_flow_deps;
          Alcotest.test_case "self dep levels" `Quick test_gemver_self_dep;
          Alcotest.test_case "anti/output" `Quick test_gemver_anti_output;
          Alcotest.test_case "input deps" `Quick test_gemver_input_deps;
          Alcotest.test_case "witness soundness" `Quick test_dep_witnesses ] );
      ( "ddg",
        [ Alcotest.test_case "gemver ddg" `Quick test_ddg_gemver;
          Alcotest.test_case "cycle -> one scc" `Quick test_scc_cycle;
          Alcotest.test_case "components" `Quick test_components ] );
      ( "scc-props",
        qt [ prop_scc_agree; prop_scc_topological; prop_scc_mutual_reachability ] ) ]
