(* End-to-end C emission tests: the emitted C for a transformed
   schedule must compile (gcc) and print the same checksum as the
   emitted C for the original schedule. Exercises ceild/floord bounds,
   guards, shifts and interchanges in real C. Skipped when no C
   compiler is available. *)

let have_cc = Sys.command "command -v gcc > /dev/null 2>&1" = 0

let run_c name source =
  let dir = Filename.temp_file "wisefuse" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let c_file = Filename.concat dir (name ^ ".c") in
  let exe = Filename.concat dir name in
  let oc = open_out c_file in
  output_string oc source;
  close_out oc;
  let cmd =
    Printf.sprintf "gcc -O1 -Wno-unknown-pragmas -o %s %s -lm 2> %s.log"
      (Filename.quote exe) (Filename.quote c_file) (Filename.quote exe)
  in
  if Sys.command cmd <> 0 then begin
    let log = open_in (exe ^ ".log") in
    let err = really_input_string log (min 600 (in_channel_length log)) in
    close_in log;
    Alcotest.failf "gcc failed for %s: %s" name err
  end;
  let ic = Unix.open_process_in (Filename.quote exe) in
  let line = input_line ic in
  ignore (Unix.close_process_in ic);
  line

let check_kernel kname prog models =
  if not have_cc then ()
  else begin
    let deps = Deps.Dep.analyze prog in
    let original = Codegen.Scan.original prog ~deps in
    let ref_out =
      run_c (kname ^ "_orig") (Codegen.Cprint.program ~name:kname prog original)
    in
    List.iter
      (fun (tag, cfg) ->
        let res = Pluto.Scheduler.run_with_deps cfg prog deps in
        let ast = Codegen.Scan.of_result res in
        let out =
          run_c
            (kname ^ "_" ^ tag)
            (Codegen.Cprint.program ~name:kname prog ast)
        in
        Alcotest.(check string) (kname ^ "/" ^ tag ^ " checksum") ref_out out)
      models
  end

let models =
  [ ("wisefuse", Fusion.Wisefuse.config); ("maxfuse", Pluto.Scheduler.maxfuse) ]

let test_gemver () = check_kernel "gemver" (Kernels.Gemver.program ~n:24 ()) models
let test_advect () = check_kernel "advect" (Kernels.Advect.program ~n:16 ()) models
let test_lu () = check_kernel "lu" (Kernels.Lu.program ~n:14 ()) models
let test_swim () = check_kernel "swim" (Kernels.Swim.program ~n:10 ()) models

let test_c_structure () =
  (* even without a compiler, the emitted text must contain the
     essential scaffolding *)
  let prog = Kernels.Gemver.program ~n:8 () in
  let res = Fusion.Wisefuse.run prog in
  let src =
    Codegen.Cprint.program ~name:"gemver" prog (Codegen.Scan.of_result res)
  in
  let contains needle =
    let nh = String.length src and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub src i nn = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains needle))
    [ "#define N 8"; "static double A[8][8];"; "int main(void)";
      "#pragma omp parallel for"; "checksum" ]

let () =
  Alcotest.run "cemit"
    [ ( "c-emission",
        [ Alcotest.test_case "structure" `Quick test_c_structure;
          Alcotest.test_case "gemver" `Slow test_gemver;
          Alcotest.test_case "advect" `Slow test_advect;
          Alcotest.test_case "lu" `Slow test_lu;
          Alcotest.test_case "swim" `Slow test_swim ] ) ]
