(* Tests for the paper's contribution: Algorithm 1 (pre-fusion
   schedule), Algorithm 2 (outer parallelism), and the partition
   reports — checked against the claims of Figures 5, 6 and 8. *)

open Deps
open Fusion

let swim () = Kernels.Swim.program ~n:12 ()
let advect () = Kernels.Advect.program ~n:12 ()
let gemsfdtd () = Kernels.Gemsfdtd.program ~n:6 ()

let name_of (prog : Scop.Program.t) id = prog.stmts.(id).Scop.Statement.name
let id_of (prog : Scop.Program.t) name =
  let found = ref (-1) in
  Array.iteri
    (fun i (s : Scop.Statement.t) -> if s.name = name then found := i)
    prog.stmts;
  if !found < 0 then Alcotest.failf "no statement %s" name;
  !found

(* --- Algorithm 1 on swim (Figure 5) -------------------------------------- *)

let test_prefusion_swim_first_cluster () =
  let prog = swim () in
  let deps = Dep.analyze prog in
  let ddg = Ddg.build prog deps in
  let scc_of = Ddg.scc_kosaraju ddg in
  let clusters = Prefusion.clusters prog ddg scc_of in
  (* first cluster: S1, S2, S3 then S15 and S18 pulled in by reuse +
     same dimensionality + precedence (paper, Section 4.1, observation
     1-3) *)
  (match clusters with
  | first :: _ ->
    let members =
      List.concat_map (fun scc -> (Ddg.components scc_of).(scc)) first
      |> List.map (name_of prog)
      |> List.sort compare
    in
    Alcotest.(check (list string)) "Figure 5(b) fused nest"
      [ "S1"; "S15"; "S18"; "S2"; "S3" ]
      members
  | [] -> Alcotest.fail "no clusters")

let test_prefusion_order_is_topological () =
  List.iter
    (fun prog ->
      let deps = Dep.analyze prog in
      let ddg = Ddg.build prog deps in
      let scc_of = Ddg.scc_kosaraju ddg in
      let order = Prefusion.order prog ddg scc_of in
      let pos = Hashtbl.create 16 in
      List.iteri (fun p scc -> Hashtbl.replace pos scc p) order;
      (* every true dependence must go forward in SCC position *)
      List.iter
        (fun (d : Dep.t) ->
          if Dep.is_true d && scc_of.(d.src) <> scc_of.(d.dst) then begin
            let ps = Hashtbl.find pos scc_of.(d.src) in
            let pd = Hashtbl.find pos scc_of.(d.dst) in
            if ps >= pd then
              Alcotest.failf "precedence violated for %s"
                (Format.asprintf "%a" Dep.pp d)
          end)
        deps)
    [ swim (); advect (); Kernels.Gemver.program ~n:12 () ]

let test_prefusion_covers_all_sccs () =
  let prog = swim () in
  let deps = Dep.analyze prog in
  let ddg = Ddg.build prog deps in
  let scc_of = Ddg.scc_kosaraju ddg in
  let order = Prefusion.order prog ddg scc_of in
  Alcotest.(check int) "permutation size" (Ddg.scc_count scc_of)
    (List.length order);
  Alcotest.(check (list int)) "is a permutation"
    (List.init (Ddg.scc_count scc_of) Fun.id)
    (List.sort compare order)

(* --- wisefuse end-to-end on swim ------------------------------------------ *)

let test_wisefuse_swim_partitions () =
  let prog = swim () in
  let res = Wisefuse.run prog in
  (match Pluto.Satisfy.check_legal res.prog res.true_deps res.sched with
  | Ok () -> ()
  | Error d -> Alcotest.fail (Format.asprintf "illegal: %a" Dep.pp d));
  (* three partitions: the fused 2-D nest, the 1-D boundary block, the
     second 2-D block *)
  Alcotest.(check int) "three partitions" 3 (Report.partition_count res);
  let part_of name = res.outer_partition.(id_of prog name) in
  List.iter
    (fun s -> Alcotest.(check int) (s ^ " fused with S1") (part_of "S1") (part_of s))
    [ "S2"; "S3"; "S15"; "S18" ];
  List.iter
    (fun s -> Alcotest.(check int) (s ^ " in boundary block") (part_of "S4") (part_of s))
    [ "S5"; "S6"; "S7"; "S8"; "S9"; "S10"; "S11"; "S12" ];
  List.iter
    (fun s -> Alcotest.(check int) (s ^ " in second block") (part_of "S13") (part_of s))
    [ "S14"; "S16"; "S17" ]

let test_wisefuse_beats_smartfuse_reuse () =
  let prog = swim () in
  let wf = Wisefuse.run prog in
  let sf = Pluto.Scheduler.run Pluto.Scheduler.smartfuse prog in
  Alcotest.(check bool) "higher reuse score" true
    (Report.reuse_score wf > Report.reuse_score sf);
  Alcotest.(check bool) "fewer partitions" true
    (Report.partition_count wf < Report.partition_count sf)

(* --- Algorithm 2 on advect (Figure 6) ------------------------------------- *)

let test_wisefuse_advect_algorithm2 () =
  let prog = advect () in
  let res = Wisefuse.run prog in
  (* two partitions: {S1,S2,S3} and {S4} *)
  let parts = Pluto.Scheduler.partitions res in
  Alcotest.(check int) "two partitions" 2 (List.length parts);
  let part_of name = res.outer_partition.(id_of prog name) in
  Alcotest.(check int) "S1,S2 together" (part_of "S1") (part_of "S2");
  Alcotest.(check int) "S1,S3 together" (part_of "S1") (part_of "S3");
  Alcotest.(check bool) "S4 alone" true (part_of "S4" <> part_of "S1");
  (* both outer loops are fully parallel *)
  List.iter
    (fun members ->
      let level =
        (* first non-beta row *)
        let rec find l =
          if Pluto.Sched.is_beta_level res.sched l then find (l + 1) else l
        in
        find 0
      in
      Alcotest.(check bool) "outer parallel" true
        (Pluto.Satisfy.row_class res.prog res.true_deps res.sched ~level
           ~members
        = Pluto.Satisfy.Parallel))
    parts

let test_wisefuse_advect_vs_maxfuse () =
  let prog = advect () in
  let wf = Wisefuse.run prog in
  let mf = Pluto.Scheduler.run Pluto.Scheduler.maxfuse prog in
  (* maxfuse fuses everything (pipelined); wisefuse trades one cut for
     outer parallelism *)
  Alcotest.(check int) "maxfuse one partition" 1 (Report.partition_count mf);
  Alcotest.(check int) "wisefuse two partitions" 2 (Report.partition_count wf)

(* --- partition table (Figure 8) ------------------------------------------- *)

let test_gemsfdtd_partition_table () =
  let prog = gemsfdtd () in
  let wf = Wisefuse.run prog in
  let sf = Pluto.Scheduler.run Pluto.Scheduler.smartfuse prog in
  let table = Report.partition_table wf in
  Alcotest.(check int) "one row per SCC" 12 (List.length table);
  (* wisefuse: all 3-D SCCs share a partition, all 2-D SCCs share a
     partition - two partitions in total (the "minimizes the number of
     partitions" claim of Figure 8) *)
  Alcotest.(check int) "wisefuse partitions" 2 (Report.partition_count wf);
  let dims_by_part = Hashtbl.create 4 in
  List.iter
    (fun (r : Report.row) ->
      let cur =
        Option.value (Hashtbl.find_opt dims_by_part r.partition) ~default:[]
      in
      Hashtbl.replace dims_by_part r.partition (r.dim :: cur))
    table;
  Hashtbl.iter
    (fun _ dims ->
      Alcotest.(check bool) "uniform dimensionality per partition" true
        (List.for_all (fun d -> d = List.hd dims) dims))
    dims_by_part;
  (* smartfuse ends up with strictly more partitions *)
  Alcotest.(check bool) "smartfuse has more partitions" true
    (Report.partition_count sf > Report.partition_count wf)

let test_report_scores () =
  let prog = advect () in
  let res = Wisefuse.run prog in
  Alcotest.(check bool) "reuse score positive" true (Report.reuse_score res > 0);
  Alcotest.(check bool) "rar subset of reuse" true
    (Report.rar_reuse_score res <= Report.reuse_score res)

(* --- exhaustive search: the introduction's counting ----------------------- *)

(* three independent statements, as in swim's S1-S3 *)
let three_independent () =
  let open Scop.Build in
  let ctx = create ~name:"indep3" ~params:[ ("N", 8) ] in
  let n = param ctx "N" in
  let a = array ctx "a" [ n ] and b = array ctx "b" [ n ] and c = array ctx "c" [ n ] in
  let x = array ctx "x" [ n ] and y = array ctx "y" [ n ] and z = array ctx "z" [ n ] in
  let lb = ci 0 and ub = n -~ ci 1 in
  loop ctx "i" ~lb ~ub (fun i -> assign ctx "S1" a [ i ] (x.%([ i ]) *: f 2.0));
  loop ctx "i" ~lb ~ub (fun i -> assign ctx "S2" b [ i ] (y.%([ i ]) *: f 2.0));
  loop ctx "i" ~lb ~ub (fun i -> assign ctx "S3" c [ i ] (z.%([ i ]) *: f 2.0));
  finish ctx

(* six statements with three disjoint dependence pairs, as in swim's
   S13-S18 (S13-S16, S14-S17, S15-S18) *)
let six_with_pairs () =
  let open Scop.Build in
  let ctx = create ~name:"pairs6" ~params:[ ("N", 8) ] in
  let n = param ctx "N" in
  let a = array ctx "a" [ n ] and b = array ctx "b" [ n ] and c = array ctx "c" [ n ] in
  let p = array ctx "p" [ n ] and q = array ctx "q" [ n ] and r = array ctx "r" [ n ] in
  let lb = ci 0 and ub = n -~ ci 1 in
  loop ctx "i" ~lb ~ub (fun i -> assign ctx "S13" a [ i ] (p.%([ i ]) *: f 2.0));
  loop ctx "i" ~lb ~ub (fun i -> assign ctx "S14" b [ i ] (q.%([ i ]) *: f 2.0));
  loop ctx "i" ~lb ~ub (fun i -> assign ctx "S15" c [ i ] (r.%([ i ]) *: f 2.0));
  loop ctx "i" ~lb ~ub (fun i -> assign ctx "S16" p [ i ] (a.%([ i ]) *: f 0.5));
  loop ctx "i" ~lb ~ub (fun i -> assign ctx "S17" q [ i ] (b.%([ i ]) *: f 0.5));
  loop ctx "i" ~lb ~ub (fun i -> assign ctx "S18" r [ i ] (c.%([ i ]) *: f 0.5));
  finish ctx

let test_search_counts_three () =
  (* the paper: "a total of 24 different fusion partitionings are
     possible for only 3 statements" *)
  let prog = three_independent () in
  let deps = Dep.analyze prog in
  let ddg = Ddg.build prog deps in
  let scc_of = Ddg.scc_kosaraju ddg in
  Alcotest.(check int) "3! orderings" 6 (List.length (Search.orderings ddg scc_of));
  Alcotest.(check int) "2^2 partitionings each" 4
    (Search.partitionings_per_ordering 3);
  Alcotest.(check int) "24 total" 24 (Search.space_size ddg scc_of)

let test_search_counts_six () =
  (* the paper: "there are 90 possible orderings of statements, and for
     each ordering, there are 32 different partitionings, resulting in
     a total of 2880" *)
  let prog = six_with_pairs () in
  let deps = Dep.analyze prog in
  let ddg = Ddg.build prog deps in
  let scc_of = Ddg.scc_kosaraju ddg in
  Alcotest.(check int) "90 orderings" 90 (List.length (Search.orderings ddg scc_of));
  Alcotest.(check int) "32 partitionings each" 32
    (Search.partitionings_per_ordering 6);
  Alcotest.(check int) "2880 total" 2880 (Search.space_size ddg scc_of)

let test_search_masks () =
  let masks = Search.cut_masks 3 in
  Alcotest.(check int) "4 masks" 4 (List.length masks);
  Alcotest.(check bool) "all-fused present" true (List.mem [ 0; 0; 0 ] masks);
  Alcotest.(check bool) "all-cut present" true (List.mem [ 0; 1; 2 ] masks)

let test_search_exhaustive_contains_wisefuse () =
  (* exhaustively evaluate all 24 candidates of the independent triple;
     wisefuse's partition count must match one of the best candidates *)
  let prog = three_independent () in
  let cands = Search.best ~limit:64 prog in
  Alcotest.(check int) "24 candidates" 24 (List.length cands);
  (match cands with
  | bestc :: _ ->
    let wf = Wisefuse.run prog in
    let wf_ast = Codegen.Scan.of_result wf in
    let wf_cycles =
      (Machine.Perf.simulate prog wf_ast ~params:prog.Scop.Program.default_params)
        .Machine.Perf.cycles
    in
    (* wisefuse is within 5% of the exhaustive optimum here *)
    Alcotest.(check bool) "wisefuse near-optimal" true
      (float_of_int wf_cycles <= 1.05 *. float_of_int bestc.Search.cycles)
  | [] -> Alcotest.fail "no candidates");
  (* every candidate is semantically correct *)
  let params = prog.Scop.Program.default_params in
  let reference = Machine.Interp.init_memory prog ~params in
  Machine.Interp.run_original prog reference ~params;
  List.iter
    (fun (c : Search.candidate) ->
      let m = Machine.Interp.init_memory prog ~params in
      Machine.Interp.run prog (Codegen.Scan.of_result c.result) m ~params;
      match Machine.Interp.first_diff reference m with
      | None -> ()
      | Some d -> Alcotest.failf "candidate differs: %s" d)
    cands

let () =
  Alcotest.run "fusion"
    [ ( "algorithm1",
        [ Alcotest.test_case "swim first cluster (Fig 5)" `Quick
            test_prefusion_swim_first_cluster;
          Alcotest.test_case "topological order" `Quick
            test_prefusion_order_is_topological;
          Alcotest.test_case "covers all SCCs" `Quick
            test_prefusion_covers_all_sccs ] );
      ( "wisefuse-swim",
        [ Alcotest.test_case "partitions (Fig 5b)" `Quick
            test_wisefuse_swim_partitions;
          Alcotest.test_case "beats smartfuse on reuse" `Quick
            test_wisefuse_beats_smartfuse_reuse ] );
      ( "algorithm2",
        [ Alcotest.test_case "advect distribution (Fig 6)" `Quick
            test_wisefuse_advect_algorithm2;
          Alcotest.test_case "advect vs maxfuse (Fig 4c)" `Quick
            test_wisefuse_advect_vs_maxfuse ] );
      ( "report",
        [ Alcotest.test_case "gemsfdtd table (Fig 8)" `Quick
            test_gemsfdtd_partition_table;
          Alcotest.test_case "scores" `Quick test_report_scores ] );
      ( "search",
        [ Alcotest.test_case "24 for three independent (S1-S3)" `Quick
            test_search_counts_three;
          Alcotest.test_case "2880 for six paired (S13-S18)" `Quick
            test_search_counts_six;
          Alcotest.test_case "cut masks" `Quick test_search_masks;
          Alcotest.test_case "exhaustive vs wisefuse" `Quick
            test_search_exhaustive_contains_wisefuse ] ) ]
