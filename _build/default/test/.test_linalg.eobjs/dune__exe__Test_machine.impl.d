test/test_machine.ml: Alcotest Array Cache Codegen Float Fusion Hashtbl Kernels List Locality Machine Perf Pluto QCheck QCheck_alcotest Scop
