test/test_codegen.ml: Alcotest Array Ast Codegen Format Fusion Icc Kernels Lazy List Machine Pluto Poly Scan Scop String
