test/test_icc.ml: Alcotest Array Deps Format Icc Icc_model Kernels List Pluto Scop
