test/test_pluto.mli:
