test/test_fusion.ml: Alcotest Array Codegen Ddg Dep Deps Format Fun Fusion Hashtbl Kernels List Machine Option Pluto Prefusion Report Scop Search Wisefuse
