test/test_cemit.ml: Alcotest Codegen Deps Filename Fusion Kernels List Pluto Printf String Sys Unix
