test/test_pluto.ml: Access Alcotest Array Dep Deps Farkas Format Linalg List Pluto Poly Satisfy Sched Scheduler Scop Statement
