test/test_ilp.ml: Alcotest Array Bb Constr Gen Ilp Linalg List Lp Poly Polyhedron Q QCheck QCheck_alcotest Vec
