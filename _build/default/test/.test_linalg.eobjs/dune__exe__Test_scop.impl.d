test/test_scop.ml: Access Alcotest Array Expr List Poly Program Scop Statement
