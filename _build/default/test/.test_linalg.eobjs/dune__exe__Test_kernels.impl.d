test/test_kernels.ml: Alcotest Array Codegen Ddg Dep Deps Fusion Kernels List Machine Pluto Scop
