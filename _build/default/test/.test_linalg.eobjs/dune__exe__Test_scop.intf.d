test/test_scop.mli:
