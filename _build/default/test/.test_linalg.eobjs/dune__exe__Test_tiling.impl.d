test/test_tiling.ml: Alcotest Codegen Fusion Kernels List Machine Pluto Scop
