test/test_sched.ml: Alcotest Fusion Kernels Linalg List Pluto Sched
