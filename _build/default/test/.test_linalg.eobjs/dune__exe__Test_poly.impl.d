test/test_poly.ml: Alcotest Array Constr Linalg List Poly Polyhedron QCheck QCheck_alcotest Vec
