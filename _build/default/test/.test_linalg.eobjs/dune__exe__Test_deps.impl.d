test/test_deps.ml: Access Alcotest Array Ddg Dep Deps Format Ilp List Poly Program QCheck QCheck_alcotest Scop Statement
