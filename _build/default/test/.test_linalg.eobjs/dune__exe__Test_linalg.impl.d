test/test_linalg.ml: Alcotest Array Bigint Linalg List Mat Printf Q QCheck QCheck_alcotest Stdlib Vec
