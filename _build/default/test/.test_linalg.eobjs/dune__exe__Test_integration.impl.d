test/test_integration.ml: Alcotest Array Codegen Deps Format Fusion List Machine Pluto Printf Random Scop
