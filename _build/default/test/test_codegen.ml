(* Tests for the code generator: bounds, guards, identity schedules,
   and the master property - semantic equivalence of every transformed
   program with its source. *)

open Codegen

let gemver () = Kernels.Gemver.program ~n:14 ()
let advect () = Kernels.Advect.program ~n:10 ()

(* count statement instances executed by an AST *)
let count_instances prog ast =
  let params = prog.Scop.Program.default_params in
  let mem = Machine.Interp.init_memory prog ~params in
  let count = ref 0 in
  Machine.Interp.run ~on_stmt:(fun _ -> incr count) prog ast mem ~params;
  !count

let expected_instances (prog : Scop.Program.t) =
  let params = prog.default_params in
  Array.fold_left
    (fun acc (s : Scop.Statement.t) ->
      let d = Scop.Statement.depth s in
      let np = Array.length params in
      (* brute-force count the domain *)
      let lo = Array.make (d + np) 0 in
      let hi = Array.make (d + np) 0 in
      for i = 0 to d - 1 do
        lo.(i) <- -1;
        hi.(i) <- params.(0) + 2
      done;
      for p = 0 to np - 1 do
        lo.(d + p) <- params.(p);
        hi.(d + p) <- params.(p)
      done;
      acc + List.length (Poly.Polyhedron.integer_points ~lo ~hi s.domain))
    0 prog.stmts

let test_identity_counts () =
  let prog = gemver () in
  let ast = Scan.original prog ~deps:[] in
  Alcotest.(check int) "identity executes every instance"
    (expected_instances prog) (count_instances prog ast)

let test_transformed_counts () =
  let prog = gemver () in
  let res = Pluto.Scheduler.run Pluto.Scheduler.smartfuse prog in
  let ast = Scan.of_result res in
  Alcotest.(check int) "transforms preserve instance count"
    (expected_instances prog) (count_instances prog ast)

let test_identity_semantics () =
  (* the identity schedule reproduces the original order: executing it
     twice from the same initial memory must agree with itself and with
     a shifted-schedule run *)
  let prog = advect () in
  let params = prog.Scop.Program.default_params in
  let m1 = Machine.Interp.init_memory prog ~params in
  Machine.Interp.run_original prog m1 ~params;
  let m2 = Machine.Interp.init_memory prog ~params in
  Machine.Interp.run_original prog m2 ~params;
  Alcotest.(check bool) "deterministic" true (Machine.Interp.equal m1 m2)

(* the master integration test: every kernel x every model *)
let semantic_equivalence_cases =
  let small =
    [ ("gemver", Kernels.Gemver.program ~n:10 ());
      ("advect", Kernels.Advect.program ~n:8 ());
      ("swim", Kernels.Swim.program ~n:8 ());
      ("lu", Kernels.Lu.program ~n:10 ());
      ("tce", Kernels.Tce.program ~n:6 ());
      ("gemsfdtd", Kernels.Gemsfdtd.program ~n:5 ());
      ("applu", Kernels.Applu.program ~n:6 ());
      ("bt", Kernels.Bt.program ~n:6 ());
      ("sp", Kernels.Sp.program ~n:6 ());
      ("wupwise", Kernels.Wupwise.program ~n:8 ()) ]
  in
  let models =
    [ Pluto.Scheduler.nofuse; Pluto.Scheduler.smartfuse; Pluto.Scheduler.maxfuse;
      Fusion.Wisefuse.config ]
  in
  List.concat_map
    (fun (name, prog) ->
      let params = prog.Scop.Program.default_params in
      let reference = lazy (
        let m = Machine.Interp.init_memory prog ~params in
        Machine.Interp.run_original prog m ~params;
        m)
      in
      let polyhedral =
        List.map
          (fun cfg ->
            let tag = name ^ "/" ^ cfg.Pluto.Scheduler.name in
            Alcotest.test_case tag `Quick (fun () ->
                let res = Pluto.Scheduler.run cfg prog in
                let ast = Scan.of_result res in
                let m = Machine.Interp.init_memory prog ~params in
                Machine.Interp.run prog ast m ~params;
                match Machine.Interp.first_diff (Lazy.force reference) m with
                | None -> ()
                | Some d -> Alcotest.failf "%s differs: %s" tag d))
          models
      in
      let icc_case =
        Alcotest.test_case (name ^ "/icc") `Quick (fun () ->
            let r = Icc.Icc_model.run prog in
            let m = Machine.Interp.init_memory prog ~params in
            Machine.Interp.run prog r.Icc.Icc_model.ast m ~params;
            match Machine.Interp.first_diff (Lazy.force reference) m with
            | None -> ()
            | Some d -> Alcotest.failf "%s/icc differs: %s" name d)
      in
      polyhedral @ [ icc_case ])
    small

let test_bound_eval () =
  (* ceil/floor division in bounds *)
  let b = { Ast.num = [| 1; 0; -1 |]; den = 2 } in
  (* (y0 - 1) / 2 with one outer var and one param *)
  Alcotest.(check int) "ceil" 3 (Ast.eval_bound b ~outer:[| 7 |] ~params:[| 0 |] ~lower:true);
  Alcotest.(check int) "floor" 3 (Ast.eval_bound b ~outer:[| 7 |] ~params:[| 0 |] ~lower:false);
  Alcotest.(check int) "ceil round up" 3
    (Ast.eval_bound b ~outer:[| 6 |] ~params:[| 0 |] ~lower:true);
  Alcotest.(check int) "floor round down" 2
    (Ast.eval_bound b ~outer:[| 6 |] ~params:[| 0 |] ~lower:false);
  let bneg = { Ast.num = [| -1; 0; 0 |]; den = 2 } in
  Alcotest.(check int) "negative ceil" (-3)
    (Ast.eval_bound bneg ~outer:[| 7 |] ~params:[| 0 |] ~lower:true);
  Alcotest.(check int) "negative floor" (-4)
    (Ast.eval_bound bneg ~outer:[| 7 |] ~params:[| 0 |] ~lower:false)

let test_instance_inversion () =
  (* interchange transform: y = (j, i); recover (i, j) from y *)
  let inst =
    {
      Ast.stmt_id = 0;
      sel_levels = [| 0; 1 |];
      hinv_num = [| [| 0; 1 |]; [| 1; 0 |] |];
      det = 1;
      g = [| [| 0; 0 |]; [| 0; 0 |] |];
      const_rows = [||];
    }
  in
  (match Ast.instance_iters inst ~y:[| 5; 9 |] ~params:[| 0 |] with
  | Some x -> Alcotest.(check (array int)) "interchange" [| 9; 5 |] x
  | None -> Alcotest.fail "guard rejected");
  (* skew with determinant 2: x = (y0 + y1)/2 etc - reject odd points *)
  let skew =
    {
      Ast.stmt_id = 0;
      sel_levels = [| 0; 1 |];
      hinv_num = [| [| 1; 1 |]; [| 1; -1 |] |];
      det = 2;
      g = [| [| 0 |]; [| 0 |] |];
      const_rows = [||];
    }
  in
  (match Ast.instance_iters skew ~y:[| 3; 1 |] ~params:[||] with
  | Some x -> Alcotest.(check (array int)) "even point" [| 2; 1 |] x
  | None -> Alcotest.fail "even point rejected");
  Alcotest.(check bool) "odd point rejected" true
    (Ast.instance_iters skew ~y:[| 3; 2 |] ~params:[||] = None);
  (* constant-row guard *)
  let guarded =
    { inst with const_rows = [| (2, [| 0; 5 |]) |] }
  in
  Alcotest.(check bool) "const row holds" true
    (Ast.instance_iters guarded ~y:[| 1; 2; 5 |] ~params:[| 0 |] <> None);
  Alcotest.(check bool) "const row fails" true
    (Ast.instance_iters guarded ~y:[| 1; 2; 4 |] ~params:[| 0 |] = None)

let test_pretty_print_runs () =
  let prog = gemver () in
  let res = Pluto.Scheduler.run Pluto.Scheduler.smartfuse prog in
  let ast = Scan.of_result res in
  let s = Format.asprintf "%a" (Ast.pp prog) ast in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions a loop" true (contains s "for (");
  Alcotest.(check bool) "mentions a statement" true (contains s "S1")

let () =
  Alcotest.run "codegen"
    [ ( "structure",
        [ Alcotest.test_case "identity instance count" `Quick test_identity_counts;
          Alcotest.test_case "transformed instance count" `Quick
            test_transformed_counts;
          Alcotest.test_case "identity determinism" `Quick test_identity_semantics;
          Alcotest.test_case "bound evaluation" `Quick test_bound_eval;
          Alcotest.test_case "instance inversion" `Quick test_instance_inversion;
          Alcotest.test_case "pretty printer" `Quick test_pretty_print_runs ] );
      ("semantic-equivalence", semantic_equivalence_cases) ]
