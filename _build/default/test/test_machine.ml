(* Tests for the machine substrate: cache simulator, interpreter,
   performance model. *)

open Machine

(* --- cache ---------------------------------------------------------------- *)

let test_cache_basics () =
  let c = Cache.create ~size_bytes:1024 ~line_bytes:64 ~assoc:2 () in
  Alcotest.(check bool) "cold miss" false (Cache.access c ~addr:0);
  Alcotest.(check bool) "hit same line" true (Cache.access c ~addr:8);
  Alcotest.(check bool) "hit line edge" true (Cache.access c ~addr:63);
  Alcotest.(check bool) "miss next line" false (Cache.access c ~addr:64);
  Alcotest.(check int) "hits" 2 (Cache.hits c);
  Alcotest.(check int) "misses" 2 (Cache.misses c)

let test_cache_lru_eviction () =
  (* 2-way set: three lines mapping to the same set evict LRU *)
  let c = Cache.create ~size_bytes:1024 ~line_bytes:64 ~assoc:2 () in
  (* set count = 1024/(64*2) = 8; stride of 8*64 = 512 hits set 0 *)
  ignore (Cache.access c ~addr:0);
  ignore (Cache.access c ~addr:512);
  Alcotest.(check bool) "both resident" true (Cache.access c ~addr:0);
  ignore (Cache.access c ~addr:1024);
  (* 512 was LRU: evicted *)
  Alcotest.(check bool) "lru evicted" false (Cache.access c ~addr:512);
  Alcotest.(check bool) "mru survived... " false (Cache.access c ~addr:1024 = false)

let test_cache_validation () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Cache.create: sizes must be powers of two")
    (fun () -> ignore (Cache.create ~size_bytes:1000 ~line_bytes:64 ~assoc:2 ()))

let test_cache_clear () =
  let c = Cache.create ~size_bytes:512 ~line_bytes:64 ~assoc:2 () in
  ignore (Cache.access c ~addr:0);
  ignore (Cache.access c ~addr:0);
  Cache.clear c;
  Alcotest.(check int) "stats reset" 0 (Cache.hits c);
  Alcotest.(check bool) "contents dropped" false (Cache.access c ~addr:0)

let prop_cache_vs_reference =
  (* cross-validate against a naive associative-list LRU model *)
  QCheck.Test.make ~name:"cache matches reference LRU model" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (int_range 0 4095))
    (fun addrs ->
      let c = Cache.create ~size_bytes:512 ~line_bytes:64 ~assoc:2 () in
      let nsets = 512 / (64 * 2) in
      let sets = Array.make nsets [] in
      List.for_all
        (fun addr ->
          let line = addr / 64 in
          let set = line mod nsets in
          let resident = List.mem line sets.(set) in
          (* reference update *)
          let without = List.filter (fun l -> l <> line) sets.(set) in
          let trimmed =
            if resident then without
            else if List.length without >= 2 then
              List.filteri (fun i _ -> i < List.length without - 1) without
            else without
          in
          sets.(set) <- line :: trimmed;
          Cache.access c ~addr = resident)
        addrs)

(* --- interpreter ------------------------------------------------------------ *)

let test_interp_gemver_values () =
  (* check one concrete cell against a hand computation *)
  let prog = Kernels.Gemver.program ~n:4 () in
  let params = [| 4 |] in
  let init name flat = match name with
    | "A" -> 1.0 +. float_of_int flat
    | "u1" | "v1" | "u2" | "v2" -> 0.5
    | "x" | "y" | "z" | "w" -> 1.0
    | _ -> 0.0
  in
  let mem = Machine.Interp.init_memory ~init prog ~params in
  Machine.Interp.run_original prog mem ~params;
  (* S1: A[0][0] = 1 + 0.5*0.5 + 0.5*0.5 = 1.5 *)
  let a = Machine.Interp.array_data mem "A" in
  Alcotest.(check (float 1e-9)) "A[0][0]" 1.5 a.(0);
  (* S2: x[0] = 1 + beta * sum_j A[j][0]*y[j]; column 0 of updated A:
     A[j][0] = (1 + 4j) + 0.5 -> 1.5, 5.5, 9.5, 13.5; sum = 30
     x[0] = 1 + 1.2*30 = 37; S3: x[0] += z -> 38 *)
  let x = Machine.Interp.array_data mem "x" in
  Alcotest.(check (float 1e-6)) "x[0]" 38.0 x.(0)

let test_interp_access_count () =
  let prog = Kernels.Gemver.program ~n:5 () in
  let params = [| 5 |] in
  let mem = Machine.Interp.init_memory prog ~params in
  let reads = ref 0 and writes = ref 0 in
  Machine.Interp.run_original prog mem ~params
    ~on_access:(fun kind _ ->
      match kind with
      | Machine.Interp.Read -> incr reads
      | Machine.Interp.Write -> incr writes);
  (* instances: S1,S2,S4: 25 each, S3: 5 -> writes = 80 *)
  Alcotest.(check int) "writes" 80 !writes;
  (* reads: S1 5 loads * 25; S2 3 * 25; S3 2 * 5; S4 3 * 25 = 285 *)
  Alcotest.(check int) "reads" 285 !reads

let test_interp_addresses_disjoint () =
  let prog = Kernels.Gemver.program ~n:4 () in
  let params = [| 4 |] in
  let mem = Machine.Interp.init_memory prog ~params in
  let a0 = Machine.Interp.global_addr mem "A" 0 in
  let u0 = Machine.Interp.global_addr mem "u1" 0 in
  Alcotest.(check int) "A base" 0 a0;
  Alcotest.(check int) "u1 after A (16 cells * 8B)" 128 u0

(* --- perf model -------------------------------------------------------------- *)

let test_perf_scales_with_cores () =
  let prog = Kernels.Advect.program ~n:16 () in
  let params = prog.Scop.Program.default_params in
  let res = Fusion.Wisefuse.run prog in
  let ast = Codegen.Scan.of_result res in
  let t1 = Perf.simulate ~config:(Perf.with_cores 1 Perf.default) prog ast ~params in
  let t8 = Perf.simulate ~config:(Perf.with_cores 8 Perf.default) prog ast ~params in
  Alcotest.(check bool) "parallel speedup" true (t8.Perf.cycles < t1.Perf.cycles);
  Alcotest.(check bool) "speedup below linear+noise" true
    (t1.Perf.cycles < 16 * t8.Perf.cycles);
  Alcotest.(check int) "same work" t1.Perf.instances t8.Perf.instances

let test_perf_sequential_flag () =
  let prog = Kernels.Advect.program ~n:12 () in
  let params = prog.Scop.Program.default_params in
  let res = Fusion.Wisefuse.run prog in
  let ast = Codegen.Scan.of_result res in
  let seq =
    Perf.simulate ~config:{ Perf.default with Perf.sequential = true } prog ast ~params
  in
  let par = Perf.simulate prog ast ~params in
  Alcotest.(check bool) "sequential slower" true (seq.Perf.cycles > par.Perf.cycles);
  Alcotest.(check int) "no barriers when sequential" 0 seq.Perf.barriers

let test_perf_pipelined_pays_barriers () =
  let prog = Kernels.Advect.program ~n:12 () in
  let params = prog.Scop.Program.default_params in
  let mf = Pluto.Scheduler.run Pluto.Scheduler.maxfuse prog in
  let wf = Fusion.Wisefuse.run prog in
  let smf = Perf.simulate prog (Codegen.Scan.of_result mf) ~params in
  let swf = Perf.simulate prog (Codegen.Scan.of_result wf) ~params in
  Alcotest.(check bool) "pipelined has more barriers" true
    (smf.Perf.barriers > swf.Perf.barriers);
  Alcotest.(check bool) "wisefuse faster (Fig 7, advect)" true
    (swf.Perf.cycles < smf.Perf.cycles)

let test_perf_fusion_improves_locality () =
  (* swim: wisefuse must beat nofuse on cache misses (the reuse claim) *)
  let prog = Kernels.Swim.program ~n:16 () in
  let params = prog.Scop.Program.default_params in
  let nf = Pluto.Scheduler.run Pluto.Scheduler.nofuse prog in
  let wf = Fusion.Wisefuse.run prog in
  let snf = Perf.simulate prog (Codegen.Scan.of_result nf) ~params in
  let swf = Perf.simulate prog (Codegen.Scan.of_result wf) ~params in
  Alcotest.(check bool) "fewer L1 misses with fusion" true
    (swf.Perf.l1_misses < snf.Perf.l1_misses);
  Alcotest.(check bool) "faster with fusion" true
    (swf.Perf.cycles < snf.Perf.cycles)

let test_perf_simd_discount () =
  (* a guard-free parallel innermost loop benefits from the simd model;
     a reduction-carrying one does not *)
  let simd4 = { Perf.default with Perf.simd_width = 4 } in
  (* advect nofuse: every nest has a parallel, guard-free inner loop *)
  let prog = Kernels.Advect.program ~n:16 () in
  let params = prog.Scop.Program.default_params in
  let res = Pluto.Scheduler.run Pluto.Scheduler.nofuse prog in
  let ast = Codegen.Scan.of_result res in
  let plain = Perf.simulate prog ast ~params in
  let simd = Perf.simulate ~config:simd4 prog ast ~params in
  Alcotest.(check bool) "simd helps stencils" true
    (simd.Perf.cycles < plain.Perf.cycles);
  Alcotest.(check int) "same accesses" plain.Perf.accesses simd.Perf.accesses;
  (* gemver S2's nest: inner loop carries the reduction - no discount *)
  let prog2 = Kernels.Gemver.program ~n:12 () in
  let params2 = prog2.Scop.Program.default_params in
  let res2 = Pluto.Scheduler.run Pluto.Scheduler.nofuse prog2 in
  (* measure just the relative change: fused/reduction parts stay *)
  let ast2 = Codegen.Scan.of_result res2 in
  let p2 = Perf.simulate prog2 ast2 ~params:params2 in
  let s2 = Perf.simulate ~config:simd4 prog2 ast2 ~params:params2 in
  Alcotest.(check bool) "discount is partial (reductions keep cost)" true
    (s2.Perf.cycles < p2.Perf.cycles
    && p2.Perf.cycles - s2.Perf.cycles < p2.Perf.cycles / 2)

(* --- locality (reuse distance) ------------------------------------------ *)

let test_reuse_distance_basics () =
  (* same line over and over: all distances 0 *)
  let s = Locality.of_trace ~line_bytes:64 [ 0; 8; 16; 0 ] in
  Alcotest.(check int) "cold" 1 s.Locality.cold;
  Alcotest.(check (float 1e-9)) "mean 0" 0.0 s.Locality.mean_finite;
  (* alternating two lines: distances 1 *)
  let s2 = Locality.of_trace ~line_bytes:64 [ 0; 64; 0; 64; 0 ] in
  Alcotest.(check int) "cold 2" 2 s2.Locality.cold;
  Alcotest.(check (float 1e-9)) "mean 1" 1.0 s2.Locality.mean_finite;
  Alcotest.(check int) "within 2" 3 (s2.Locality.within 2);
  Alcotest.(check int) "within 1" 0 (s2.Locality.within 1)

let test_reuse_distance_stack () =
  (* A B C A : distance of the second A is 2 *)
  let s = Locality.of_trace ~line_bytes:64 [ 0; 64; 128; 0 ] in
  Alcotest.(check int) "cold 3" 3 s.Locality.cold;
  Alcotest.(check (float 1e-9)) "distance 2" 2.0 s.Locality.mean_finite

let prop_reuse_distance_matches_naive =
  QCheck.Test.make ~name:"fenwick matches naive stack distance" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 60) (int_range 0 9))
    (fun lines ->
      let trace = List.map (fun l -> l * 64) lines in
      let s = Locality.of_trace ~line_bytes:64 trace in
      (* naive: distinct lines between consecutive occurrences *)
      let naive = ref [] in
      List.iteri
        (fun t line ->
          (* position of the previous occurrence of this line *)
          let prev = ref (-1) in
          List.iteri (fun i l -> if l = line && i < t then prev := i) lines;
          if !prev >= 0 then begin
            (* distinct lines strictly between the two occurrences *)
            let seen = Hashtbl.create 8 in
            List.iteri
              (fun i l -> if i > !prev && i < t then Hashtbl.replace seen l ())
              lines;
            naive := Hashtbl.length seen :: !naive
          end)
        lines;
      let naive_mean =
        match !naive with
        | [] -> 0.0
        | l ->
          float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
      in
      Float.abs (naive_mean -. s.Locality.mean_finite) < 1e-9)

let test_locality_fusion_shortens_reuse () =
  (* the paper's core claim, measured directly: fusion moves reuse mass
     under the cache-capacity threshold (more accesses whose reuse
     distance fits in a 64-line / 256-line LRU cache) *)
  let prog = Kernels.Swim.program ~n:12 () in
  let params = prog.Scop.Program.default_params in
  let capture cfg =
    let res = Pluto.Scheduler.run cfg prog in
    Locality.of_trace
      (Locality.capture prog (Codegen.Scan.of_result res) ~params)
  in
  let wf = capture Fusion.Wisefuse.config in
  let nf = capture Pluto.Scheduler.nofuse in
  Alcotest.(check bool) "more reuses within 64 lines" true
    (wf.Locality.within 64 > nf.Locality.within 64);
  Alcotest.(check bool) "no fewer within 256 lines" true
    (wf.Locality.within 256 >= nf.Locality.within 256);
  Alcotest.(check int) "same cold misses" nf.Locality.cold wf.Locality.cold

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "machine"
    [ ( "cache",
        [ Alcotest.test_case "basics" `Quick test_cache_basics;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "validation" `Quick test_cache_validation;
          Alcotest.test_case "clear" `Quick test_cache_clear ] );
      ("cache-props", qt [ prop_cache_vs_reference ]);
      ( "interp",
        [ Alcotest.test_case "gemver values" `Quick test_interp_gemver_values;
          Alcotest.test_case "access counts" `Quick test_interp_access_count;
          Alcotest.test_case "address layout" `Quick test_interp_addresses_disjoint ] );
      ( "locality",
        [ Alcotest.test_case "basics" `Quick test_reuse_distance_basics;
          Alcotest.test_case "stack distance" `Quick test_reuse_distance_stack;
          Alcotest.test_case "fusion shortens reuse" `Quick
            test_locality_fusion_shortens_reuse ] );
      ("locality-props", qt [ prop_reuse_distance_matches_naive ]);
      ( "perf",
        [ Alcotest.test_case "core scaling" `Quick test_perf_scales_with_cores;
          Alcotest.test_case "sequential flag" `Quick test_perf_sequential_flag;
          Alcotest.test_case "pipelined barriers" `Quick
            test_perf_pipelined_pays_barriers;
          Alcotest.test_case "fusion locality" `Quick
            test_perf_fusion_improves_locality;
          Alcotest.test_case "simd discount" `Quick test_perf_simd_discount ] ) ]
