(* Randomized end-to-end integration tests: generate random SCoPs with
   the builder DSL, push them through every fusion model, and check
   that (a) the schedules are legal and (b) the transformed programs
   compute exactly what the source does. This is the strongest
   correctness property the system has. *)

open Scop.Build

(* A random program: a handful of 1-D/2-D statements over a few shared
   arrays, with stencil-style offsets. Everything is derived from an
   integer seed so failures are reproducible. *)
let random_program seed =
  let st = Random.State.make [| seed |] in
  let rand n = Random.State.int st n in
  let ctx = create ~name:(Printf.sprintf "rand%d" seed) ~params:[ ("N", 7) ] in
  let n = param ctx "N" in
  let ext = n +~ ci 3 in
  let arrays =
    Array.init 3 (fun i -> array ctx (Printf.sprintf "a%d" i) [ ext; ext ])
  in
  let pick () = arrays.(rand (Array.length arrays)) in
  let off () = ci (rand 3 - 1) in
  let nstmts = 2 + rand 4 in
  for s = 0 to nstmts - 1 do
    let target = pick () in
    let name = Printf.sprintf "S%d" s in
    let src1 = pick () and src2 = pick () in
    match rand 3 with
    | 0 ->
      (* 1-D boundary-style statement *)
      loop ctx "k" ~lb:(ci 1) ~ub:n (fun k ->
          assign ctx name target [ k; ci (rand 2) ] (src1.%([ k; n ]) +: f 0.5))
    | 1 ->
      (* 2-D stencil statement *)
      loop ctx "i" ~lb:(ci 1) ~ub:n (fun i ->
          loop ctx "j" ~lb:(ci 1) ~ub:n (fun j ->
              assign ctx name target [ i; j ]
                (src1.%([ i +~ off (); j +~ off () ])
                +: (src2.%([ i; j ]) *: f 0.25))))
    | _ ->
      (* 2-D accumulation *)
      loop ctx "i" ~lb:(ci 1) ~ub:n (fun i ->
          loop ctx "j" ~lb:(ci 1) ~ub:n (fun j ->
              assign ctx name target [ i; ci 1 ]
                (target.%([ i; ci 1 ]) +: src1.%([ i; j ]))))
  done;
  finish ctx

let models =
  [ ("nofuse", Pluto.Scheduler.nofuse);
    ("smartfuse", Pluto.Scheduler.smartfuse);
    ("maxfuse", Pluto.Scheduler.maxfuse);
    ("wisefuse", Fusion.Wisefuse.config) ]

let check_seed seed =
  let prog = random_program seed in
  let params = prog.Scop.Program.default_params in
  let reference = Machine.Interp.init_memory prog ~params in
  Machine.Interp.run_original prog reference ~params;
  List.iter
    (fun (tag, cfg) ->
      match Pluto.Scheduler.run cfg prog with
      | res -> (
        (match Pluto.Satisfy.check_legal res.prog res.true_deps res.sched with
        | Ok () -> ()
        | Error d ->
          Alcotest.failf "seed %d/%s: illegal schedule over %s" seed tag
            (Format.asprintf "%a" Deps.Dep.pp d));
        let ast = Codegen.Scan.of_result res in
        let m = Machine.Interp.init_memory prog ~params in
        Machine.Interp.run prog ast m ~params;
        match Machine.Interp.first_diff reference m with
        | None -> ()
        | Some d -> Alcotest.failf "seed %d/%s: %s" seed tag d)
      | exception Failure msg ->
        (* the scheduler may legitimately refuse exotic programs; it
           must do so loudly, never silently miscompile *)
        Alcotest.failf "seed %d/%s: scheduler gave up: %s" seed tag msg)
    models

let fuzz_cases =
  List.map
    (fun seed ->
      Alcotest.test_case (Printf.sprintf "seed %d" seed) `Slow (fun () ->
          check_seed seed))
    (List.init 12 (fun i -> 1000 + (37 * i)))

let () = Alcotest.run "integration" [ ("random-programs", fuzz_cases) ]
