(* wisefuse: command-line driver.

   Subcommands:
     list              - the benchmark registry (Table 2)
     show KERNEL       - print the source program
     deps KERNEL       - dependences, DDG and SCCs
     opt KERNEL        - schedule + partitions + generated code
     emit KERNEL       - emit a complete C program
     sim KERNEL        - simulate and report the machine model's stats
     analyze KERNEL    - wisecheck certification (race freedom, lints)
     trace KERNEL      - export a Chrome trace-event file
     explain KERNEL    - human-readable fusion-decision report
     serve             - the scheduling daemon (stdio / Unix socket)
     metrics           - one-shot telemetry scrape of a running daemon

   Exit codes (see Pluto.Diagnostics.exit_code):
     0 success; 2 usage error (unknown kernel/model/engine, bad flags);
     3 solver budget exhausted; 4 scheduling failed; 5 verification
     failed; 6 codegen failed; 7 error-severity wisecheck findings. *)

open Cmdliner

let kernel_arg =
  let doc = "Benchmark name (see `wisefuse list')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc)

let model_names = List.map Fusion.Model.name Fusion.Model.all

let model_arg =
  let doc =
    Printf.sprintf "Fusion model: %s." (String.concat ", " model_names)
  in
  Arg.(value & opt string "wisefuse" & info [ "m"; "model" ] ~docv:"MODEL" ~doc)

let size_arg =
  let doc = "Problem size N (default: the registry's model size)." in
  Arg.(value & opt (some int) None & info [ "n"; "size" ] ~docv:"N" ~doc)

let cores_arg =
  let doc = "Number of model cores." in
  Arg.(value & opt int 8 & info [ "c"; "cores" ] ~docv:"CORES" ~doc)

let tile_arg =
  let doc = "Tile permutable bands with this edge (polyhedral models only)." in
  Arg.(value & opt (some int) None & info [ "t"; "tile" ] ~docv:"SIZE" ~doc)

let engine_names = [ "ilp"; "lp-dfp"; "auto" ]

let engine_arg =
  let doc =
    "Scheduling engine: ilp (exact branch-and-bound lexmin), lp-dfp (LP \
     relaxation + clustering, no branching), or auto (ilp below the \
     statement-count threshold, lp-dfp at or above)."
  in
  Arg.(value & opt string "auto" & info [ "engine" ] ~docv:"ENGINE" ~doc)

let engine_of_name s =
  match Pluto.Engine.of_string s with
  | Some e -> e
  | None ->
    Printf.eprintf "unknown engine %s (expected one of %s)\n" s
      (String.concat ", " engine_names);
    exit 2

let reductions_names = [ "on"; "off" ]

let reductions_arg =
  let doc =
    "Reduction-aware legality: on (prove reduction statements with the \
     wisereduce detector and relax their covered self-dependences in the \
     scheduler; reduction loops come out as parallel reductions) or off \
     (never tag a dependence; schedules are byte-identical to the \
     pre-reduction pipeline)."
  in
  Arg.(value
       & opt string "off"
       & info [ "reductions" ] ~docv:"MODE" ~doc)

let reductions_of_name s =
  match s with
  | "on" -> true
  | "off" -> false
  | _ ->
    Printf.eprintf "unknown reductions mode %s (expected one of %s)\n" s
      (String.concat ", " reductions_names);
    exit 2

let simd_arg =
  let doc = "Model simd width (1 = off)." in
  Arg.(value & opt int 1 & info [ "simd" ] ~docv:"W" ~doc)

let stats_arg =
  let doc =
    "Print pipeline performance counters (LP solves, simplex pivots, \
     bignum promotions, per-stage wall time) after the run."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

(* set per-command from --verbose; read by the top-level diagnostic
   handler when a pipeline error escapes *)
let verbose = ref false

let verbose_arg =
  let doc = "Render full diagnostic context (phase, code, details) on errors." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

(* Counters plus an aligned stage-timer table. The self column is the
   exclusive accumulator from [Counters.stage_times]; the total
   (inclusive) column can only be recomputed from the span tree, so it
   reads "-" unless the run was traced. *)
let report_stats stats =
  if stats then begin
    Format.printf "=== pipeline counters ===@.";
    List.iter
      (fun (n, v) -> if v <> 0 then Format.printf "%-20s %d@." n v)
      (Linalg.Counters.all_counters ());
    let stages = Linalg.Counters.stage_times () in
    if stages <> [] then begin
      let spans = Obs.Trace.summary ~cat:"stage" () in
      Format.printf "=== stage timers ===@.";
      Format.printf "%-14s %12s %12s@." "stage" "self (ms)" "total (ms)";
      List.iter
        (fun (name, self) ->
          let total =
            match List.find_opt (fun (n, _, _) -> n = name) spans with
            | Some (_, _, tot) -> Printf.sprintf "%12.3f" (tot *. 1e3)
            | None -> Printf.sprintf "%12s" "-"
          in
          Format.printf "%-14s %12.3f %s@." name (self *. 1e3) total)
        stages
    end
  end

(* usage errors (unknown kernel / unknown model) exit 2, matching
   Diagnostics.exit_code for the Usage phase *)
let usage_exit = 2

let load name size =
  match Kernels.Registry.find name with
  | entry ->
    let n = Option.value size ~default:entry.Kernels.Registry.model_size in
    entry.Kernels.Registry.program ~n ()
  | exception Not_found ->
    Printf.eprintf "unknown kernel %s; available kernels:\n" name;
    List.iter
      (fun (e : Kernels.Registry.entry) ->
        Printf.eprintf "  %-10s %s\n" e.Kernels.Registry.name
          e.Kernels.Registry.category)
      Kernels.Registry.all;
    exit usage_exit

let ast_of_model ?tile ?engine ?reductions prog mname =
  match Fusion.Model.of_name mname with
  | m ->
    let opt = Fusion.Model.optimize ?engine ?reductions m prog in
    (match opt.Fusion.Model.resilience with
    | Some o when Fusion.Resilient.degraded o ->
      Format.eprintf "note: %a@." Fusion.Report.pp_resilience o
    | _ -> ());
    let ast =
      match (tile, opt.Fusion.Model.scheduler) with
      | Some size, Some res -> Codegen.Tile.of_result ~size res
      | Some _, None ->
        Printf.eprintf "note: --tile applies to polyhedral models only\n";
        opt.Fusion.Model.ast
      | None, _ -> opt.Fusion.Model.ast
    in
    (ast, opt.Fusion.Model.scheduler)
  | exception Not_found ->
    Printf.eprintf "unknown model %s (expected one of %s)\n" mname
      (String.concat ", " model_names);
    exit usage_exit

(* --- list ------------------------------------------------------------- *)

let list_cmd =
  let run stats =
    Printf.printf "%-10s %-10s %-34s %-28s %s\n" "name" "suite" "category"
      "paper size" "model N";
    List.iter
      (fun (e : Kernels.Registry.entry) ->
        Printf.printf "%-10s %-10s %-34s %-28s %d\n" e.name e.suite e.category
          e.paper_size e.model_size)
      Kernels.Registry.all;
    (* no pipeline ran: the counters are empty, and printing them must
       still work *)
    report_stats stats
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmarks (Table 2)")
    Term.(const run $ stats_arg)

(* --- show ------------------------------------------------------------- *)

let show_cmd =
  let run name size =
    let prog = load name size in
    Format.printf "%a@." Scop.Program.pp prog
  in
  Cmd.v (Cmd.info "show" ~doc:"Print the source program")
    Term.(const run $ kernel_arg $ size_arg)

(* --- deps ------------------------------------------------------------- *)

let dot_arg =
  let doc = "Emit the DDG as Graphviz dot instead of text." in
  Arg.(value & flag & info [ "dot" ] ~doc)

let deps_cmd =
  let run name size dot =
    let prog = load name size in
    let deps = Deps.Dep.analyze prog in
    let ddg = Deps.Ddg.build prog deps in
    if dot then begin
      print_string (Deps.Ddg.to_dot prog ddg);
      exit 0
    end;
    Format.printf "%a@.@." Deps.Ddg.pp ddg;
    let scc = Deps.Ddg.scc_kosaraju ddg in
    Format.printf "SCCs:";
    Array.iteri
      (fun id comp_id ->
        Format.printf " %s->%d" prog.Scop.Program.stmts.(id).Scop.Statement.name comp_id)
      scc;
    Format.printf "@.@.dependences (%d):@." (List.length deps);
    List.iter (fun d -> Format.printf "  %a@." Deps.Dep.pp d) deps
  in
  Cmd.v (Cmd.info "deps" ~doc:"Print dependences, DDG and SCCs")
    Term.(const run $ kernel_arg $ size_arg $ dot_arg)

(* --- opt -------------------------------------------------------------- *)

let opt_cmd =
  let run name size model engine reductions tile stats vflag =
    verbose := vflag;
    let prog = load name size in
    let ast, res =
      ast_of_model ?tile ~engine:(engine_of_name engine)
        ~reductions:(reductions_of_name reductions) prog model
    in
    (match res with
    | Some res ->
      Format.printf "=== schedule (%s) ===@.%a@." model
        (Pluto.Sched.pp prog) res.Pluto.Scheduler.sched;
      Format.printf "=== partitions ===@.%a@.@." Fusion.Report.pp_table res
    | None ->
      let r = Icc.Icc_model.run prog in
      Format.printf "=== icc nests ===@.";
      List.iter
        (fun (nst : Icc.Icc_model.nest) ->
          Format.printf "  nest (depth %d, %s):" nst.depth
            (if nst.parallel then "parallel" else "serial");
          List.iter
            (fun id ->
              Format.printf " %s" prog.Scop.Program.stmts.(id).Scop.Statement.name)
            nst.stmts;
          Format.printf "@.")
        r.Icc.Icc_model.nests);
    Format.printf "=== generated code ===@.%a@." (Codegen.Ast.pp prog) ast;
    report_stats stats
  in
  Cmd.v (Cmd.info "opt" ~doc:"Optimize and print the transformed code")
    Term.(const run $ kernel_arg $ size_arg $ model_arg $ engine_arg
          $ reductions_arg $ tile_arg $ stats_arg $ verbose_arg)

(* --- emit ------------------------------------------------------------- *)

let emit_cmd =
  let run name size model engine reductions vflag =
    verbose := vflag;
    let prog = load name size in
    let ast, _ =
      ast_of_model ~engine:(engine_of_name engine)
        ~reductions:(reductions_of_name reductions) prog model
    in
    print_string
      (Codegen.Cprint.program ~name:(name ^ "_" ^ model) prog ast)
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Emit a complete C program for the transformed code")
    Term.(const run $ kernel_arg $ size_arg $ model_arg $ engine_arg
          $ reductions_arg $ verbose_arg)

(* --- analyze ---------------------------------------------------------- *)

(* error-severity wisecheck findings exit with their own status,
   distinct from the pipeline phases (usage 2 .. codegen 6) *)
let analysis_exit = 7

let certify_opt (opt : Fusion.Model.optimized) =
  let prog, deps, sched =
    match (opt.Fusion.Model.scheduler, opt.Fusion.Model.icc) with
    | Some res, _ ->
      ( res.Pluto.Scheduler.prog,
        res.Pluto.Scheduler.all_deps,
        res.Pluto.Scheduler.sched )
    | None, Some r ->
      (r.Icc.Icc_model.prog, r.Icc.Icc_model.deps, r.Icc.Icc_model.sched)
    | None, None -> assert false
  in
  (prog, Analysis.Wisecheck.certify prog deps sched opt.Fusion.Model.ast)

let analyze_one ?engine ?reductions prog mname =
  certify_opt
    (Fusion.Model.optimize ?engine ?reductions (Fusion.Model.of_name mname)
       prog)

let json_arg =
  let doc = "Emit findings as JSON (one object per line of \"findings\")." in
  Arg.(value & flag & info [ "json" ] ~doc)

let all_arg =
  let doc = "Analyze every registry kernel under every fusion model." in
  Arg.(value & flag & info [ "all" ] ~doc)

let opt_kernel_arg =
  let doc = "Benchmark name (see `wisefuse list'); omit with --all." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc)

let print_report_text prog label (r : Analysis.Wisecheck.report) =
  Format.printf "=== wisecheck %s ===@." label;
  Format.printf "%a@." (Analysis.Wisecheck.pp_report prog) r

let print_report_json prog ~kernel ~model (r : Analysis.Wisecheck.report) =
  print_string
    (Obs.Json.to_string_pretty
       (Obs.Json.Obj
          [
            ("kernel", Obs.Json.Str kernel);
            ("model", Obs.Json.Str model);
            ("errors", Obs.Json.Int r.Analysis.Wisecheck.errors);
            ("warnings", Obs.Json.Int r.Analysis.Wisecheck.warnings);
            ("infos", Obs.Json.Int r.Analysis.Wisecheck.infos);
            ( "findings",
              Obs.Json.List
                (List.map (Analysis.Finding.json prog)
                   r.Analysis.Wisecheck.findings) );
          ]))

let analyze_cmd =
  let run kernel size model engine reductions all json stats vflag =
    verbose := vflag;
    let engine = engine_of_name engine in
    let reductions = reductions_of_name reductions in
    let targets =
      if all then
        List.concat_map
          (fun (e : Kernels.Registry.entry) ->
            List.map (fun m -> (e.Kernels.Registry.name, m)) model_names)
          Kernels.Registry.all
      else begin
        match kernel with
        | Some k -> [ (k, model) ]
        | None ->
          Printf.eprintf "analyze: KERNEL required (or pass --all)\n";
          exit usage_exit
      end
    in
    let any_errors = ref false in
    List.iter
      (fun (kname, mname) ->
        let prog = load kname size in
        if not (List.mem mname model_names) then begin
          Printf.eprintf "unknown model %s (expected one of %s)\n" mname
            (String.concat ", " model_names);
          exit usage_exit
        end;
        let prog, report = analyze_one ~engine ~reductions prog mname in
        if report.Analysis.Wisecheck.errors > 0 then any_errors := true;
        if json then print_report_json prog ~kernel:kname ~model:mname report
        else print_report_text prog (kname ^ " / " ^ mname) report)
      targets;
    report_stats stats;
    if !any_errors then exit analysis_exit
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Independently certify the generated code (race freedom, scan \
          soundness, DDG lints); exit 7 on error-severity findings")
    Term.(const run $ opt_kernel_arg $ size_arg $ model_arg $ engine_arg
          $ reductions_arg $ all_arg $ json_arg $ stats_arg $ verbose_arg)

(* --- trace / explain --------------------------------------------------- *)

let model_of_name mname =
  match Fusion.Model.of_name mname with
  | m -> m
  | exception Not_found ->
    Printf.eprintf "unknown model %s (expected one of %s)\n" mname
      (String.concat ", " model_names);
    exit usage_exit

let out_arg =
  let doc = "Output file (default: KERNEL.trace.json)." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)

let out_dir_arg =
  let doc = "Output directory for --all (one FILE per kernel)." in
  Arg.(value & opt string "traces" & info [ "out-dir" ] ~docv:"DIR" ~doc)

(* One traced pipeline run: model optimization + wisecheck
   certification under a fresh recording sink, counters and Farkas
   cache reset first so the trace is a function of the program alone.
   Leaves the tracer disabled but the events readable (report_stats
   reads the span totals from them). *)
let traced_run ?engine ?reductions prog mname =
  let model = model_of_name mname in
  Linalg.Counters.reset ();
  Pluto.Farkas.reset_cache ();
  let res =
    Obs.Trace.with_recording (fun () ->
        let opt = Fusion.Model.optimize ?engine ?reductions model prog in
        ignore (certify_opt opt);
        opt)
  in
  Obs.Trace.disable ();
  res

let trace_cmd =
  let run kernel size model engine reductions all out out_dir stats vflag =
    verbose := vflag;
    let engine = engine_of_name engine in
    let reductions = reductions_of_name reductions in
    let trace_one kname out =
      let prog = load kname size in
      let _, events = traced_run ~engine ~reductions prog model in
      let json =
        Obs.Export.chrome_trace
          ~process:(Printf.sprintf "wisefuse %s/%s" kname model)
          events
      in
      let oc = open_out out in
      output_string oc (Obs.Json.to_string_pretty json);
      close_out oc;
      Printf.printf "%s: wrote %s (%d events)\n" kname out (List.length events)
    in
    if all then begin
      (if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755);
      List.iter
        (fun (e : Kernels.Registry.entry) ->
          trace_one e.Kernels.Registry.name
            (Filename.concat out_dir (e.Kernels.Registry.name ^ ".json")))
        Kernels.Registry.all
    end
    else begin
      match kernel with
      | Some k -> trace_one k (Option.value out ~default:(k ^ ".trace.json"))
      | None ->
        Printf.eprintf "trace: KERNEL required (or pass --all)\n";
        exit usage_exit
    end;
    report_stats stats
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the pipeline under the span tracer and export a Chrome \
          trace-event JSON (load in chrome://tracing or ui.perfetto.dev)")
    Term.(const run $ opt_kernel_arg $ size_arg $ model_arg $ engine_arg
          $ reductions_arg $ all_arg $ out_arg $ out_dir_arg $ stats_arg
          $ verbose_arg)

let explain_cmd =
  let run kernel size model engine reductions all stats vflag =
    verbose := vflag;
    let engine = engine_of_name engine in
    let reductions = reductions_of_name reductions in
    let explain_one kname =
      let prog = load kname size in
      let m = model_of_name model in
      let ex =
        Fusion.Explain.capture ~engine ~reductions ~model:m ~kernel:kname prog
      in
      Format.printf "%a@." Fusion.Explain.pp ex;
      (* the analysis verdict is not part of the optimization trace;
         append it from a direct certification of the captured result *)
      let _, r = certify_opt ex.Fusion.Explain.outcome in
      Format.printf "wisecheck: %d error%s, %d warning%s, %d info@."
        r.Analysis.Wisecheck.errors
        (if r.Analysis.Wisecheck.errors = 1 then "" else "s")
        r.Analysis.Wisecheck.warnings
        (if r.Analysis.Wisecheck.warnings = 1 then "" else "s")
        r.Analysis.Wisecheck.infos
    in
    if all then
      List.iter
        (fun (e : Kernels.Registry.entry) ->
          explain_one e.Kernels.Registry.name;
          Format.printf "@.")
        Kernels.Registry.all
    else begin
      match kernel with
      | Some k -> explain_one k
      | None ->
        Printf.eprintf "explain: KERNEL required (or pass --all)\n";
        exit usage_exit
    end;
    report_stats stats
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain the fusion decisions: pre-fusion clustering, every cut \
          with its justifying dependence, per-level ILP effort, \
          degradation rungs and the final partitioning")
    Term.(const run $ opt_kernel_arg $ size_arg $ model_arg $ engine_arg
          $ reductions_arg $ all_arg $ stats_arg $ verbose_arg)

(* --- sim -------------------------------------------------------------- *)

let sim_cmd =
  let run name size model engine reductions cores tile simd stats vflag =
    verbose := vflag;
    let prog = load name size in
    let params = prog.Scop.Program.default_params in
    let ast, _ =
      ast_of_model ?tile ~engine:(engine_of_name engine)
        ~reductions:(reductions_of_name reductions) prog model
    in
    (* semantic check against the original *)
    let m_ref = Machine.Interp.init_memory prog ~params in
    Machine.Interp.run_original prog m_ref ~params;
    let m = Machine.Interp.init_memory prog ~params in
    Machine.Interp.run prog ast m ~params;
    (match Machine.Interp.first_diff m_ref m with
    | None -> Format.printf "semantics: OK (matches the original program)@."
    | Some d -> Format.printf "semantics: MISMATCH %s@." d);
    let config =
      { (Machine.Perf.with_cores cores Machine.Perf.default) with
        Machine.Perf.simd_width = simd }
    in
    let st = Machine.Perf.simulate ~config prog ast ~params in
    Format.printf "%s on %d cores: %a@." model cores Machine.Perf.pp_stats st;
    Format.printf "modeled time: %.3f ms@." (Machine.Perf.seconds st *. 1e3);
    report_stats stats
  in
  Cmd.v (Cmd.info "sim" ~doc:"Simulate on the machine model")
    Term.(const run $ kernel_arg $ size_arg $ model_arg $ engine_arg
          $ reductions_arg $ cores_arg $ tile_arg $ simd_arg $ stats_arg
          $ verbose_arg)

(* --- serve ------------------------------------------------------------ *)

let serve_cmd =
  let run socket stdio domains cache_cap max_pending deadline_ms
      max_deadline_ms max_line_bytes breaker_threshold breaker_ttl_s
      no_metrics trace_sample access_log vflag =
    verbose := vflag;
    let check name v floor =
      if v < floor then begin
        Printf.eprintf "serve: --%s must be >= %d\n" name floor;
        exit usage_exit
      end
    in
    check "domains" domains 1;
    check "cache-cap" cache_cap 1;
    check "max-pending" max_pending 1;
    check "max-deadline-ms" max_deadline_ms 1;
    check "max-line-bytes" max_line_bytes 1;
    check "breaker-threshold" breaker_threshold 1;
    if breaker_ttl_s <= 0.0 then begin
      Printf.eprintf "serve: --breaker-ttl-s must be positive\n";
      exit usage_exit
    end;
    if deadline_ms < 0 then begin
      Printf.eprintf "serve: --deadline-ms must be >= 0 (0 = unlimited)\n";
      exit usage_exit
    end;
    if trace_sample < 0 then begin
      Printf.eprintf "serve: --trace-sample must be >= 0 (0 = never)\n";
      exit usage_exit
    end;
    let config =
      {
        Serve.Server.domains;
        cache_capacity = cache_cap;
        max_pending;
        max_line_bytes;
        (* 0 = no default deadline (client-requested ones still apply) *)
        default_deadline_ms = (if deadline_ms = 0 then None else Some deadline_ms);
        max_deadline_ms;
        breaker_threshold;
        breaker_ttl_s;
        metrics = not no_metrics;
        trace_sample;
        access_log;
      }
    in
    let t =
      try Serve.Server.create ~config ()
      with Sys_error msg ->
        Printf.eprintf "serve: cannot open access log: %s\n" msg;
        exit usage_exit
    in
    match (socket, stdio) with
    | Some _, true ->
      Printf.eprintf "serve: --socket and --stdio are mutually exclusive\n";
      exit usage_exit
    | Some path, false -> Serve.Server.serve_socket t ~path
    | None, _ -> Serve.Server.serve_stdio t
  in
  let socket_arg =
    let doc = "Listen on a Unix domain socket at $(docv)." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let stdio_arg =
    let doc = "Serve stdin/stdout (the default when --socket is absent)." in
    Arg.(value & flag & info [ "stdio" ] ~doc)
  in
  let domains_arg =
    let doc = "Worker domains serving requests concurrently." in
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)
  in
  let cache_cap_arg =
    let doc = "Capacity of the content-addressed response cache (entries)." in
    Arg.(value & opt int 512 & info [ "cache-cap" ] ~docv:"N" ~doc)
  in
  let dflt = Serve.Server.default_config in
  let max_pending_arg =
    let doc =
      "Admission-control high-water mark: schedule requests are shed with a \
       typed \"overloaded\" error while more than $(docv) requests are \
       pending (in flight or queued)."
    in
    Arg.(value
         & opt int dflt.Serve.Server.max_pending
         & info [ "max-pending" ] ~docv:"N" ~doc)
  in
  let deadline_ms_arg =
    let doc =
      "Default per-request solve deadline in milliseconds, applied when a \
       request carries no \"deadline_ms\" field (0 = unlimited). Requests \
       that overrun degrade down the resilience ladder and answer with a \
       typed degraded envelope."
    in
    Arg.(value
         & opt int
             (match dflt.Serve.Server.default_deadline_ms with
             | Some d -> d
             | None -> 0)
         & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let max_deadline_ms_arg =
    let doc = "Cap on client-requested deadlines, in milliseconds." in
    Arg.(value
         & opt int dflt.Serve.Server.max_deadline_ms
         & info [ "max-deadline-ms" ] ~docv:"MS" ~doc)
  in
  let max_line_bytes_arg =
    let doc =
      "Maximum request-line length in bytes; longer input answers a typed \
       \"oversized\" error and is never buffered in full."
    in
    Arg.(value
         & opt int dflt.Serve.Server.max_line_bytes
         & info [ "max-line-bytes" ] ~docv:"BYTES" ~doc)
  in
  let breaker_threshold_arg =
    let doc =
      "Consecutive solve failures for one fingerprint that open its circuit \
       breaker (further requests answer a typed \"breaker\" error)."
    in
    Arg.(value
         & opt int dflt.Serve.Server.breaker_threshold
         & info [ "breaker-threshold" ] ~docv:"N" ~doc)
  in
  let breaker_ttl_arg =
    let doc = "Seconds an open circuit breaker keeps rejecting before a \
               half-open probe is allowed." in
    Arg.(value
         & opt float dflt.Serve.Server.breaker_ttl_s
         & info [ "breaker-ttl-s" ] ~docv:"S" ~doc)
  in
  let no_metrics_arg =
    let doc =
      "Disable live telemetry (the \"metrics\" op answers a placeholder; \
       instruments become no-ops — the measured zero-cost path)."
    in
    Arg.(value & flag & info [ "no-metrics" ] ~doc)
  in
  let trace_sample_arg =
    let doc =
      "Capture a span trace for every $(docv)-th request (0 = never); \
       sampled responses carry \"trace_id\" and a compact \"trace\" span \
       summary."
    in
    Arg.(value & opt int 0 & info [ "trace-sample" ] ~docv:"N" ~doc)
  in
  let access_log_arg =
    let doc =
      "Append one JSON line per answered request to $(docv) (id, \
       fingerprint, outcome, cache verdict, rung, engine, deadline/overrun, \
       latency), written by a dedicated writer domain."
    in
    Arg.(value
         & opt (some string) None
         & info [ "access-log" ] ~docv:"PATH" ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the scheduling daemon: line-delimited JSON requests over stdio \
          or a Unix socket, answered from a content-addressed cross-request \
          cache, hardened with per-request deadlines, admission control and \
          a per-fingerprint circuit breaker (see the README's Serving and \
          Hardened serving sections for the protocol)")
    Term.(const run $ socket_arg $ stdio_arg $ domains_arg $ cache_cap_arg
          $ max_pending_arg $ deadline_ms_arg $ max_deadline_ms_arg
          $ max_line_bytes_arg $ breaker_threshold_arg $ breaker_ttl_arg
          $ no_metrics_arg $ trace_sample_arg $ access_log_arg
          $ verbose_arg)

(* --- metrics (one-shot scraper) --------------------------------------- *)

(* Connect to a serving daemon's Unix socket, send one {"op":"metrics"}
   request, unwrap the Prometheus text from the JSON envelope and print
   it — the bridge between the line-delimited protocol and an actual
   scrape pipeline (curl-style usage in cron/CI). Exits 1 on connection
   or protocol failure so scrapers can alert on a dead daemon. *)
let metrics_cmd =
  let run socket op vflag =
    verbose := vflag;
    let fail fmt =
      Printf.ksprintf
        (fun msg ->
          Printf.eprintf "metrics: %s\n" msg;
          exit 1)
        fmt
    in
    let line =
      match
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () ->
            try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            Unix.connect fd (Unix.ADDR_UNIX socket);
            let ic = Unix.in_channel_of_descr fd in
            let oc = Unix.out_channel_of_descr fd in
            output_string oc
              (Printf.sprintf "{\"id\":\"metrics-cli\",\"op\":%S}\n" op);
            flush oc;
            input_line ic)
      with
      | exception Unix.Unix_error (e, _, _) ->
        fail "cannot reach %s: %s" socket (Unix.error_message e)
      | exception End_of_file -> fail "daemon closed the connection"
      | line -> line
    in
    match Obs.Json.parse line with
    | Error msg -> fail "unparseable response: %s" msg
    | Ok j -> (
      let member = Obs.Json.member in
      let str n v = Option.bind (member n v) Obs.Json.to_string_opt in
      match str "status" j with
      | Some "ok" when op = "metrics" -> (
        match Option.bind (member "metrics" j) (str "text") with
        | Some text -> print_string text
        | None -> fail "response carries no metrics text")
      | Some "ok" ->
        (* --op health: print the whole envelope for probes *)
        print_endline (Obs.Json.to_string_pretty j)
      | _ ->
        let code =
          Option.value
            (Option.bind (member "error" j) (str "code"))
            ~default:"?"
        in
        let message =
          Option.value
            (Option.bind (member "error" j) (str "message"))
            ~default:line
        in
        fail "daemon answered %s: %s" code message)
  in
  let socket_arg =
    let doc = "Unix domain socket of the serving daemon." in
    Arg.(required
         & opt (some string) None
         & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let op_arg =
    let doc = "Protocol op to send: \"metrics\" (prints the Prometheus \
               text) or \"health\" (prints the envelope)." in
    Arg.(value & opt (enum [ ("metrics", "metrics"); ("health", "health") ])
           "metrics"
         & info [ "op" ] ~docv:"OP" ~doc)
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "One-shot telemetry scrape of a running daemon over its Unix \
          socket: sends {\"op\": \"metrics\"} and prints the Prometheus \
          text exposition (exit 1 if the daemon is unreachable)")
    Term.(const run $ socket_arg $ op_arg $ verbose_arg)

let () =
  let doc = "loop fusion in the polyhedral framework (PPoPP'14 reproduction)" in
  let exits =
    Cmd.Exit.defaults
    @ [
        Cmd.Exit.info 2
          ~doc:"usage error (unknown kernel, model or engine; bad flags).";
        Cmd.Exit.info 3 ~doc:"solver budget exhausted.";
        Cmd.Exit.info 4 ~doc:"scheduling failed.";
        Cmd.Exit.info 5 ~doc:"schedule verification failed.";
        Cmd.Exit.info 6 ~doc:"code generation failed.";
        Cmd.Exit.info 7 ~doc:"error-severity wisecheck findings (analyze).";
      ]
  in
  let info = Cmd.info "wisefuse" ~version:"1.0" ~doc ~exits in
  let cmds =
    [
      list_cmd; show_cmd; deps_cmd; opt_cmd; emit_cmd; sim_cmd; analyze_cmd;
      trace_cmd; explain_cmd; serve_cmd; metrics_cmd;
    ]
  in
  (* a diagnostic escaping the pipeline exits with its phase's code
     (usage 2, budget 3, scheduling 4, verification 5, codegen 6) —
     never a bare exception, never exit 1 *)
  match Cmd.eval (Cmd.group info cmds) with
  | code -> exit code
  | exception Pluto.Diagnostics.Error d ->
    if !verbose then Format.eprintf "wisefuse: %a@." Pluto.Diagnostics.pp_verbose d
    else
      Format.eprintf "wisefuse: %a (re-run with --verbose for details)@."
        Pluto.Diagnostics.pp d;
    exit (Pluto.Diagnostics.exit_code d)
