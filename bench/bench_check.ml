(* Pure comparator behind the bench regression gate (`bench --check`).

   Kept free of I/O and of the JSON parsing so the verdict logic is
   unit-testable: given a baseline wall time and a fresh measurement,
   classify the pair. The important guard: a baseline record with a
   zero, negative or non-finite wall time (a corrupt or hand-edited
   BENCH file) must not reach the division — it yields [Bad_baseline],
   which the gate reports and skips instead of dividing by zero and
   acting on the resulting [inf]/[nan] ratio. *)

type verdict =
  | Within of float  (* ratio; at or under the threshold *)
  | Regression of float  (* ratio; above the threshold *)
  | Bad_baseline  (* baseline not a positive finite number: no ratio *)
  | Missing  (* kernel absent from the baseline record *)

let usable ms = Float.is_finite ms && ms > 0.0

let compare_wall ~threshold ~baseline_ms ~current_ms =
  match baseline_ms with
  | None -> Missing
  | Some bw when not (usable bw) -> Bad_baseline
  | Some _ when not (Float.is_finite current_ms) -> Bad_baseline
  | Some bw ->
    let ratio = current_ms /. bw in
    if ratio > threshold then Regression ratio else Within ratio

(* Only a confirmed regression fails the gate; a record we cannot form
   a ratio against is reported but advisory. *)
let is_failure = function
  | Regression _ -> true
  | Within _ | Bad_baseline | Missing -> false

let describe = function
  | Within r -> Printf.sprintf "(x%.2f)" r
  | Regression r -> Printf.sprintf "(x%.2f)  REGRESSION" r
  | Bad_baseline -> "baseline unusable (non-positive wall time); skipped"
  | Missing -> "not in baseline; skipped"

(* --- one-sided bounds (the serve gate) ----------------------------------- *)

(* The serving gate checks machine-independent ratios of one fresh run
   (hit rate against a floor, hit-path p99 against a ceiling derived
   from the same run's cold solves), so the verdicts are one-sided
   bounds rather than baseline ratios. The same non-finite guard
   applies: a NaN measurement must read as unusable, never as "within
   bounds" (note NaN comparisons are all false, so the explicit check
   is load-bearing). *)

type bound_verdict =
  | Met of float  (* the measured value; bound satisfied *)
  | Violation of float  (* the measured value; bound broken *)
  | Bad_value  (* measurement or bound not finite: no verdict *)

let check_min ~floor ~value =
  if not (Float.is_finite floor && Float.is_finite value) then Bad_value
  else if value >= floor then Met value
  else Violation value

let check_max ~ceiling ~value =
  if not (Float.is_finite ceiling && Float.is_finite value) then Bad_value
  else if value <= ceiling then Met value
  else Violation value

let bound_failure = function
  | Violation _ -> true
  | Met _ | Bad_value -> false

let describe_bound = function
  | Met v -> Printf.sprintf "%.4g  ok" v
  | Violation v -> Printf.sprintf "%.4g  VIOLATION" v
  | Bad_value -> "not a finite number; skipped"
