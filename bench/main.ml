(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 5) on the machine model, then times the
   optimization pipeline itself with Bechamel (one Test.make per
   table/figure).

     dune exec bench/main.exe                      - everything
     dune exec bench/main.exe -- fig7              - a single experiment
     dune exec bench/main.exe -- pipeline --check  - regression gate:
       fresh pipeline timings vs the last committed non-smoke record in
       BENCH_pipeline.json; exits non-zero on a >25% per-kernel
       wall-time regression
   Experiments: table1 table2 fig1 fig3 fig5 fig4_6 fig7 fig8 scaling
                ablation extras tiling locality space vector bechamel *)

let section title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n%!"

(* --- shared machinery ---------------------------------------------------- *)

module Model = Fusion.Model

open Model (* constructors Icc .. Wisefuse *)

let model_name = Model.name
let all_models = Model.all
let scheduler_config = Model.scheduler_config

(* optimize once, memoized: (kernel, model) -> ast (+ result for the
   polyhedral models) *)
let memo : (string * string, Codegen.Ast.node * Pluto.Scheduler.result option) Hashtbl.t =
  Hashtbl.create 64

let optimize prog model =
  let key = (prog.Scop.Program.name, model_name model) in
  match Hashtbl.find_opt memo key with
  | Some v -> v
  | None ->
    let opt = Model.optimize model prog in
    let v = (opt.Model.ast, opt.Model.scheduler) in
    Hashtbl.replace memo key v;
    v

let simulate ?(cores = 8) prog model =
  let ast, _ = optimize prog model in
  let config = Machine.Perf.with_cores cores Machine.Perf.default in
  Machine.Perf.simulate ~config prog ast
    ~params:prog.Scop.Program.default_params

let verify prog model =
  let params = prog.Scop.Program.default_params in
  let ast, _ = optimize prog model in
  let m_ref = Machine.Interp.init_memory prog ~params in
  Machine.Interp.run_original prog m_ref ~params;
  let m = Machine.Interp.init_memory prog ~params in
  Machine.Interp.run prog ast m ~params;
  Machine.Interp.first_diff m_ref m

(* --- Table 1 ------------------------------------------------------------- *)

let table1 () =
  section "Table 1: summary of the fusion models";
  List.iter
    (fun m ->
      Printf.printf "  %-10s %s\n" (Model.name m) (Model.description m))
    [ Icc; Wisefuse; Smartfuse; Nofuse; Maxfuse ]

(* --- Table 2 ------------------------------------------------------------- *)

let table2 () =
  section "Table 2: benchmarks (paper sizes and scaled model sizes)";
  Printf.printf "  %-10s %-10s %-34s %-30s %s\n" "name" "suite" "category"
    "paper size" "model N";
  List.iter
    (fun (e : Kernels.Registry.entry) ->
      Printf.printf "  %-10s %-10s %-34s %-30s %d\n" e.name e.suite e.category
        e.paper_size e.model_size)
    Kernels.Registry.all

(* --- Figure 1 / Figure 3: gemver ------------------------------------------ *)

let fig1 () =
  section "Figure 1: gemver - fusion of S1 and S2 requires interchange";
  let prog = Kernels.Gemver.program ~n:20 () in
  let res = Pluto.Scheduler.run (scheduler_config Wisefuse) prog in
  let part = res.Pluto.Scheduler.outer_partition in
  Printf.printf "  S1 and S2 fused: %b (partitions: S1=%d S2=%d S3=%d S4=%d)\n"
    (part.(0) = part.(1))
    part.(0) part.(1) part.(2) part.(3);
  let first_hyp id =
    let rec go = function
      | Pluto.Sched.Hyp h :: _ -> h
      | _ :: rest -> go rest
      | [] -> [||]
    in
    go res.Pluto.Scheduler.sched.(id)
  in
  let h1 = first_hyp 0 in
  Printf.printf "  S1's outer hyperplane: (%d %d) -> %s\n" h1.(0) h1.(1)
    (if h1.(0) = 0 && h1.(1) = 1 then "loops interchanged (Figure 1(c))"
     else "unexpected");
  (match verify prog Wisefuse with
  | None -> Printf.printf "  legality: transformed == original\n"
  | Some d -> Printf.printf "  BUG: %s\n" d)

let fig3 () =
  section "Figure 3: gemver - statement-wise multidimensional transforms";
  let prog = Kernels.Gemver.program ~n:20 () in
  let res = Pluto.Scheduler.run (scheduler_config Wisefuse) prog in
  Format.printf "%a@." (Pluto.Sched.pp prog) res.Pluto.Scheduler.sched;
  Printf.printf "  (paper: T_S1=(0,j,i), T_S2=(0,i,j), T_S3=(1,i,-), T_S4=(2,i,j);\n";
  Printf.printf "   the trailing scalar row is the textual position inside the nest)\n"

(* --- Figure 2 / Figure 5: swim --------------------------------------------- *)

let fig5 () =
  section "Figure 5: swim - pre-fusion schedules and fused partitions";
  let prog = Kernels.Swim.program ~n:24 () in
  let wf = Pluto.Scheduler.run (scheduler_config Wisefuse) prog in
  let sf = Pluto.Scheduler.run (scheduler_config Smartfuse) prog in
  let stmt_names (res : Pluto.Scheduler.result) =
    List.map
      (fun scc ->
        let members = (Deps.Ddg.components res.scc_of).(scc) in
        String.concat ","
          (List.map
             (fun id -> prog.Scop.Program.stmts.(id).Scop.Statement.name)
             members))
      res.scc_order
  in
  Printf.printf "  Algorithm 1 order: %s\n" (String.concat " " (stmt_names wf));
  Printf.printf "  PLuTo DFS order:   %s\n" (String.concat " " (stmt_names sf));
  Format.printf "@.%a@." Fusion.Report.pp_table wf;
  Format.printf "%a@." Fusion.Report.pp_table sf;
  Printf.printf
    "  partitions: wisefuse %d vs smartfuse %d; reuse co-located: %d vs %d\n"
    (Fusion.Report.partition_count wf)
    (Fusion.Report.partition_count sf)
    (Fusion.Report.reuse_score wf)
    (Fusion.Report.reuse_score sf)

(* --- Figure 4 / Figure 6: advect ------------------------------------------- *)

let fig4_6 () =
  section "Figures 4 & 6: advect - shifting vs Algorithm 2 distribution";
  let prog = Kernels.Advect.program ~n:16 () in
  let mf = Pluto.Scheduler.run (scheduler_config Maxfuse) prog in
  let wf = Pluto.Scheduler.run (scheduler_config Wisefuse) prog in
  Printf.printf "maxfuse (Figure 4(c), fully fused after shifting):\n";
  Format.printf "%a@." (Codegen.Ast.pp prog) (Codegen.Scan.of_result mf);
  Printf.printf "wisefuse (Figure 6, S4 distributed, both nests parallel):\n";
  Format.printf "%a@." (Codegen.Ast.pp prog) (Codegen.Scan.of_result wf);
  Printf.printf "  partitions: maxfuse %d, wisefuse %d\n"
    (Fusion.Report.partition_count mf)
    (Fusion.Report.partition_count wf)

(* --- Figure 7: normalized performance -------------------------------------- *)

let fig7 () =
  section
    "Figure 7: performance normalized to icc, 8 model cores (higher = faster)";
  Printf.printf "  %-10s" "benchmark";
  List.iter (fun m -> Printf.printf " %10s" (model_name m)) all_models;
  Printf.printf "   (model cycles: icc)\n";
  let ratios = Hashtbl.create 16 in
  List.iter
    (fun (e : Kernels.Registry.entry) ->
      let prog = Kernels.Registry.build e in
      List.iter
        (fun m ->
          match verify prog m with
          | None -> ()
          | Some d ->
            Printf.printf "  !! %s/%s semantic mismatch: %s\n" e.name
              (model_name m) d)
        all_models;
      let icc_cycles = (simulate prog Icc).Machine.Perf.cycles in
      Printf.printf "  %-10s" e.name;
      List.iter
        (fun m ->
          let c = (simulate prog m).Machine.Perf.cycles in
          let ratio = float_of_int icc_cycles /. float_of_int c in
          Hashtbl.replace ratios (e.name, m) ratio;
          Printf.printf " %10.2f" ratio)
        all_models;
      Printf.printf "   (%d)\n%!" icc_cycles)
    Kernels.Registry.all;
  Printf.printf "  %-10s" "GM";
  List.iter
    (fun m ->
      let prod, n =
        List.fold_left
          (fun (p, n) (e : Kernels.Registry.entry) ->
            (p *. Hashtbl.find ratios (e.name, m), n + 1))
          (1.0, 0) Kernels.Registry.all
      in
      Printf.printf " %10.2f" (prod ** (1.0 /. float_of_int n)))
    all_models;
  Printf.printf "\n"

(* --- Figure 8: gemsfdtd partitioning ---------------------------------------- *)

let fig8 () =
  section "Figure 8: gemsfdtd - partitioning per fusion model";
  let prog = Kernels.Gemsfdtd.program ~n:10 () in
  let wf = Pluto.Scheduler.run (scheduler_config Wisefuse) prog in
  let sf = Pluto.Scheduler.run (scheduler_config Smartfuse) prog in
  let icc = Icc.Icc_model.run prog in
  let icc_part = Array.make (Array.length prog.Scop.Program.stmts) 0 in
  List.iteri
    (fun idx (nst : Icc.Icc_model.nest) ->
      List.iter (fun id -> icc_part.(id) <- idx) nst.Icc.Icc_model.stmts)
    icc.Icc.Icc_model.nests;
  Printf.printf "  %-6s %-4s %-6s %-10s %-9s\n" "SCC" "dim" "icc" "smartfuse"
    "wisefuse";
  List.iter
    (fun (r : Fusion.Report.row) ->
      let rep = List.hd r.members in
      Printf.printf "  %-6d %-4d %-6d %-10d %-9d (%s)\n" r.scc r.dim
        icc_part.(rep)
        sf.Pluto.Scheduler.outer_partition.(rep)
        wf.Pluto.Scheduler.outer_partition.(rep)
        prog.Scop.Program.stmts.(rep).Scop.Statement.name)
    (Fusion.Report.partition_table wf);
  let distinct a = List.length (List.sort_uniq compare (Array.to_list a)) in
  Printf.printf "  partitions: icc %d, smartfuse %d, wisefuse %d\n"
    (List.length icc.Icc.Icc_model.nests)
    (distinct sf.Pluto.Scheduler.outer_partition)
    (distinct wf.Pluto.Scheduler.outer_partition)

(* --- scaling (Section 5.3's "the performance gap increases with the
   number of processors") ----------------------------------------------------- *)

let scaling () =
  section "Scaling: wisefuse vs smartfuse cycles at 1/2/4/8 cores";
  List.iter
    (fun (name, prog) ->
      Printf.printf "  %s:\n  %8s %12s %12s %8s\n" name "cores" "smartfuse"
        "wisefuse" "gap";
      List.iter
        (fun cores ->
          let sf = (simulate ~cores prog Smartfuse).Machine.Perf.cycles in
          let wf = (simulate ~cores prog Wisefuse).Machine.Perf.cycles in
          Printf.printf "  %8d %12d %12d %8.2f\n%!" cores sf wf
            (float_of_int sf /. float_of_int wf))
        [ 1; 2; 4; 8 ])
    [ ("advect", Kernels.Advect.program ~n:40 ());
      ("swim", Kernels.Swim.program ~n:40 ()) ]

(* --- ablations ---------------------------------------------------------------- *)

let ablation () =
  section "Ablations: what each ingredient of wisefuse buys";
  let no_rar_order prog (ddg : Deps.Ddg.t) scc_of =
    (* Algorithm 1 without input dependences (Section 2.3, drawback 2) *)
    let filtered = { ddg with Deps.Ddg.deps = List.filter Deps.Dep.is_true ddg.deps } in
    Fusion.Prefusion.order prog filtered scc_of
  in
  let variants =
    [ ("wisefuse", Fusion.Wisefuse.config);
      ( "no-RAR",
        { Fusion.Wisefuse.config with
          Pluto.Scheduler.name = "wisefuse-no-rar";
          order_sccs = no_rar_order } );
      ( "no-Alg2",
        { Fusion.Wisefuse.config with
          Pluto.Scheduler.name = "wisefuse-no-alg2";
          outer_parallel = false } );
      ( "lazy-cuts",
        { Fusion.Wisefuse.config with
          Pluto.Scheduler.name = "wisefuse-lazy";
          initial_cut = None;
          fallback_cut = Pluto.Scheduler.Cut_between_dims } ) ]
  in
  List.iter
    (fun (kname, prog) ->
      Printf.printf "  %s:\n" kname;
      List.iter
        (fun (tag, cfg) ->
          let res = Pluto.Scheduler.run cfg prog in
          let ast = Codegen.Scan.of_result res in
          let st =
            Machine.Perf.simulate prog ast
              ~params:prog.Scop.Program.default_params
          in
          Printf.printf
            "    %-10s partitions=%2d reuse=%3d cycles=%9d barriers=%3d\n%!" tag
            (Fusion.Report.partition_count res)
            (Fusion.Report.reuse_score res)
            st.Machine.Perf.cycles st.Machine.Perf.barriers)
        variants)
    [ ("swim", Kernels.Swim.program ~n:24 ());
      ("advect", Kernels.Advect.program ~n:24 ());
      ("gemsfdtd", Kernels.Gemsfdtd.program ~n:8 ()) ]

(* --- Polybench extras: wisefuse == smartfuse on small kernels --------------- *)

let extras () =
  section
    "Polybench extras: wisefuse matches smartfuse's partitionings (Section 5.3)";
  List.iter
    (fun (name, mk) ->
      let prog = mk () in
      let wf = Pluto.Scheduler.run (scheduler_config Wisefuse) prog in
      let sf = Pluto.Scheduler.run (scheduler_config Smartfuse) prog in
      let same =
        wf.Pluto.Scheduler.outer_partition = sf.Pluto.Scheduler.outer_partition
      in
      Printf.printf "  %-10s partitions: wisefuse %d, smartfuse %d  %s
%!" name
        (Fusion.Report.partition_count wf)
        (Fusion.Report.partition_count sf)
        (if same then "(identical)" else "(different!)"))
    Kernels.Extras.all

(* --- tiling ablation -------------------------------------------------------- *)

let tiling () =
  section "Tiling ablation: wisefuse with and without rectangular tiling";
  Printf.printf "  %-10s %12s %12s %8s %10s %10s
" "benchmark" "untiled"
    "tiled" "ratio" "l2m plain" "l2m tiled";
  List.iter
    (fun (name, prog) ->
      let res = Pluto.Scheduler.run (scheduler_config Wisefuse) prog in
      let params = prog.Scop.Program.default_params in
      let plain =
        Machine.Perf.simulate prog (Codegen.Scan.of_result res) ~params
      in
      let tiled =
        Machine.Perf.simulate prog (Codegen.Tile.of_result ~size:8 res) ~params
      in
      Printf.printf "  %-10s %12d %12d %8.2f %10d %10d
%!" name
        plain.Machine.Perf.cycles tiled.Machine.Perf.cycles
        (float_of_int plain.Machine.Perf.cycles
        /. float_of_int tiled.Machine.Perf.cycles)
        plain.Machine.Perf.l2_misses tiled.Machine.Perf.l2_misses)
    [ ("gemver", Kernels.Gemver.program ~n:64 ());
      ("advect", Kernels.Advect.program ~n:48 ());
      ("tce", Kernels.Tce.program ~n:16 ()) ]

(* --- reuse-distance profiles ------------------------------------------------- *)

let locality () =
  section "Reuse distances: how much closer fusion brings reuses (swim)";
  let prog = Kernels.Swim.program ~n:16 () in
  let params = prog.Scop.Program.default_params in
  Printf.printf "  %-10s %10s %8s %12s %12s %12s
" "model" "accesses" "cold"
    "mean dist" "<64 lines" "<256 lines";
  List.iter
    (fun m ->
      let ast, _ = optimize prog m in
      let s = Machine.Locality.of_trace (Machine.Locality.capture prog ast ~params) in
      Printf.printf "  %-10s %10d %8d %12.1f %12d %12d
%!" (model_name m)
        s.Machine.Locality.accesses s.Machine.Locality.cold
        s.Machine.Locality.mean_finite
        (s.Machine.Locality.within 64)
        (s.Machine.Locality.within 256))
    all_models

(* --- the introduction's search space, exhaustively ---------------------------- *)

let space () =
  section
    "Search space (Section 1): orderings x partitionings, and exhaustive search";
  (* the two counting examples of the introduction *)
  let mini3 =
    let open Scop.Build in
    let ctx = create ~name:"indep3" ~params:[ ("N", 16) ] in
    let n = param ctx "N" in
    let a = array ctx "a" [ n ] and b = array ctx "b" [ n ] and c = array ctx "c" [ n ] in
    let x = array ctx "x" [ n ] and y = array ctx "y" [ n ] and z = array ctx "z" [ n ] in
    let lb = ci 0 and ub = n -~ ci 1 in
    loop ctx "i" ~lb ~ub (fun i -> assign ctx "S1" a [ i ] (x.%([ i ]) *: f 2.0));
    loop ctx "i" ~lb ~ub (fun i -> assign ctx "S2" b [ i ] ((x.%([ i ]) +: y.%([ i ])) *: f 0.5));
    loop ctx "i" ~lb ~ub (fun i -> assign ctx "S3" c [ i ] (z.%([ i ]) *: f 2.0));
    finish ctx
  in
  let deps = Deps.Dep.analyze mini3 in
  let ddg = Deps.Ddg.build mini3 deps in
  let scc_of = Deps.Ddg.scc_kosaraju ddg in
  Printf.printf
    "  3 independent statements: %d orderings x %d partitionings = %d candidates
"
    (List.length (Fusion.Search.orderings ddg scc_of))
    (Fusion.Search.partitionings_per_ordering 3)
    (Fusion.Search.space_size ddg scc_of);
  Printf.printf
    "  (the paper: 24; and 90 x 32 = 2880 for swim's S13-S18 - verified in the
";
  Printf.printf
    "   test suite; for all 18 statements of the swim excerpt the space is
";
  Printf.printf
    "   astronomically large, which is why a cost model is needed at all)

";
  (* exhaustive evaluation of all 24 candidates on the machine model *)
  let cands = Fusion.Search.best ~limit:64 mini3 in
  Printf.printf "  exhaustive search over %d candidates (modeled cycles):
"
    (List.length cands);
  (match (cands, List.rev cands) with
  | bestc :: _, worst :: _ ->
    Printf.printf "    best  %8d  (order %s, groups %s)
" bestc.Fusion.Search.cycles
      (String.concat "," (List.map string_of_int bestc.Fusion.Search.order))
      (String.concat "," (List.map string_of_int bestc.Fusion.Search.groups));
    Printf.printf "    worst %8d
" worst.Fusion.Search.cycles;
    let wf = Pluto.Scheduler.run (scheduler_config Wisefuse) mini3 in
    let st =
      Machine.Perf.simulate mini3 (Codegen.Scan.of_result wf)
        ~params:mini3.Scop.Program.default_params
    in
    Printf.printf "    wisefuse (no search): %d
%!" st.Machine.Perf.cycles
  | _ -> ())

(* --- vectorization ablation --------------------------------------------------- *)

let vector () =
  section
    "Vectorization ablation (simd model on): guarded/fused loops lose simd";
  Printf.printf
    "  gemver: fusing S1 (interchanged) with S2's reduction kills the
";
  Printf.printf
    "  vectorization of S1's nest - the mechanism behind the paper's
";
  Printf.printf "  'nofuse outperforms wisefuse/smartfuse on gemver'.

";
  let config = { Machine.Perf.default with Machine.Perf.simd_width = 4 } in
  Printf.printf "  %-10s %-10s %12s %12s
" "benchmark" "model" "no-simd"
    "simd x4";
  List.iter
    (fun (kname, prog) ->
      let params = prog.Scop.Program.default_params in
      List.iter
        (fun m ->
          let ast, _ = optimize prog m in
          let plain = Machine.Perf.simulate prog ast ~params in
          let simd = Machine.Perf.simulate ~config prog ast ~params in
          Printf.printf "  %-10s %-10s %12d %12d
%!" kname (model_name m)
            plain.Machine.Perf.cycles simd.Machine.Perf.cycles)
        [ Nofuse; Wisefuse ])
    [ ("gemver", Kernels.Gemver.program ~n:48 ());
      ("advect", Kernels.Advect.program ~n:32 ()) ]

(* --- end-to-end pipeline timings + BENCH_pipeline.json ------------------------ *)

(* Smoke mode (BENCH_SMOKE=1, used by CI) runs one repetition per kernel
   and a short Bechamel quota so the job finishes in seconds. *)
let smoke =
  match Sys.getenv_opt "BENCH_SMOKE" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* The ILP-heavy kernels first: swim and gemsfdtd dominate the exact
   arithmetic time (20+ statements, hundreds of LP solves each). *)
let pipeline_kernels =
  [ ("swim", fun () -> Kernels.Swim.program ~n:24 ());
    ("gemsfdtd", fun () -> Kernels.Gemsfdtd.program ~n:10 ());
    ("advect", fun () -> Kernels.Advect.program ~n:16 ());
    ("gemver", fun () -> Kernels.Gemver.program ~n:20 ()) ]

type pipeline_row = {
  kernel : string;
  wall_ms : float; (* best-of-reps wall time of one full scheduler run *)
  counters : (string * int) list; (* counters of the best repetition *)
  stages : (string * float) list; (* stage seconds of the best repetition *)
}

let time_pipeline_kernel (name, mk) =
  let cfg = scheduler_config Wisefuse in
  let prog = mk () in
  Pluto.Farkas.reset_cache ();
  ignore (Pluto.Scheduler.run cfg prog) (* warm-up *);
  let reps = if smoke then 1 else 3 in
  let best = ref infinity in
  let best_counters = ref [] and best_stages = ref [] in
  for _ = 1 to reps do
    (* each repetition pays its own Farkas eliminations and reports its
       own counters; wall time, counters and stages all describe the
       same (fastest) run instead of mixing best-of with averages *)
    Pluto.Farkas.reset_cache ();
    Linalg.Counters.reset ();
    let t0 = Unix.gettimeofday () in
    ignore (Pluto.Scheduler.run cfg prog);
    let dt = Unix.gettimeofday () -. t0 in
    let stages = Linalg.Counters.stage_times () in
    (* stage timers are exclusive (self-time), so their sum is bounded
       by the wall time of the run that produced them; a violation
       means the accounting regressed to overlapping timers *)
    let stage_sum = List.fold_left (fun a (_, s) -> a +. s) 0.0 stages in
    if stage_sum > (dt *. 1.02) +. 1e-4 then
      failwith
        (Printf.sprintf
           "%s: stage times sum to %.2f ms > %.2f ms wall (overlapping timers?)"
           name (stage_sum *. 1e3) (dt *. 1e3));
    if dt < !best then begin
      best := dt;
      best_counters := Linalg.Counters.all_counters ();
      best_stages := stages
    end
  done;
  {
    kernel = name;
    wall_ms = !best *. 1e3;
    counters = !best_counters;
    stages = !best_stages;
  }

let bench_json_file = "BENCH_pipeline.json"

(* BENCH_TRACE=1 embeds per-stage span self/total times ("spans") into
   each kernel record, from one extra traced run per kernel that never
   touches the timed repetitions. *)
let embed_spans =
  match Sys.getenv_opt "BENCH_TRACE" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* One run record as a JSON value; [spans] maps kernel name to a spans
   object when BENCH_TRACE asked for one. *)
let pipeline_record ?(tag = "") ?(spans = []) rows =
  let open Obs.Json in
  let label =
    Option.value (Sys.getenv_opt "BENCH_LABEL") ~default:"dev" ^ tag
  in
  let total = List.fold_left (fun a r -> a +. r.wall_ms) 0.0 rows in
  let kernel_obj r =
    let fields =
      (("wall_ms", Float (round2 r.wall_ms))
       :: List.map (fun (n, v) -> (n, Int v)) r.counters)
      @ List.map (fun (n, s) -> (n ^ "_ms", Float (round2 (s *. 1e3)))) r.stages
    in
    let fields =
      match List.assoc_opt r.kernel spans with
      | Some sp -> fields @ [ ("spans", sp) ]
      | None -> fields
    in
    (r.kernel, Obj fields)
  in
  Obj
    [ ("label", Str label); ("smoke", Bool smoke);
      ("kernels", Obj (List.map kernel_obj rows));
      ("total_wall_ms", Float (round2 total)) ]

(* --- reading the record file back (for dedup and the gate) -------------- *)

let record_label r = Option.bind (Obs.Json.member "label" r) Obs.Json.to_string_opt
let record_smoke r = Option.bind (Obs.Json.member "smoke" r) Obs.Json.to_bool_opt

(* wall_ms of one kernel inside a record *)
let kernel_wall record kernel =
  let open Obs.Json in
  Option.bind (member "kernels" record) (fun ks ->
      Option.bind (member kernel ks) (fun k ->
          Option.bind (member "wall_ms" k) to_float_opt))

let read_bench_file () =
  if Sys.file_exists bench_json_file then begin
    let ic = open_in_bin bench_json_file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Obs.Json.parse s with
    | Error msg -> failwith (Printf.sprintf "%s: %s" bench_json_file msg)
    | Ok doc ->
      (match Option.bind (Obs.Json.member "runs" doc) Obs.Json.to_list_opt with
      | Some runs -> runs
      | None -> failwith (bench_json_file ^ {|: no "runs" array|}))
  end
  else []

(* Append the new run, replacing any earlier record with the same label
   (so re-runs — e.g. a restarted CI job — update their record in place
   instead of accumulating duplicates). *)
(* Analyze records share the file but time wisecheck certification, not
   the scheduler; the regression gate must never compare against one. *)
let analyze_tag = "-analyze"

let is_analyze_record r =
  match record_label r with
  | Some l ->
    let n = String.length l and m = String.length analyze_tag in
    n >= m && String.sub l (n - m) m = analyze_tag
  | None -> false

let write_pipeline_json ?tag ?spans rows =
  let run = pipeline_record ?tag ?spans rows in
  let label = Option.value (record_label run) ~default:"dev" in
  let kept =
    List.filter (fun r -> record_label r <> Some label) (read_bench_file ())
  in
  let doc =
    Obs.Json.Obj
      [ ("schema", Obs.Json.Int 1);
        ( "unit",
          Obs.Json.Str
            "wall milliseconds per wisefuse scheduler run (best of N)" );
        ("runs", Obs.Json.List (kept @ [ run ])) ]
  in
  let oc = open_out_bin bench_json_file in
  output_string oc (Obs.Json.to_string_pretty doc);
  close_out oc;
  Printf.printf "  wrote %s (label %S)\n%!" bench_json_file label

let pipeline_table rows =
  Printf.printf "  %-10s %10s %9s %9s %9s %8s %8s %9s\n" "kernel" "wall ms"
    "lp solves" "pivots" "dual piv" "warm" "fallback" "farkas h/m";
  List.iter
    (fun r ->
      let c n = try List.assoc n r.counters with Not_found -> 0 in
      Printf.printf "  %-10s %10.2f %9d %9d %9d %8d %8d %5d/%d\n%!" r.kernel
        r.wall_ms (c "lp_solves") (c "lp_pivots") (c "dual_pivots")
        (c "warm_starts") (c "warm_fallbacks") (c "farkas_cache_hits")
        (c "farkas_cache_misses"))
    rows;
  let total = List.fold_left (fun a r -> a +. r.wall_ms) 0.0 rows in
  Printf.printf "  %-10s %10.2f\n" "total" total

(* One traced (untimed) run of a kernel; its per-stage span summary as
   a {"<stage>": {"self_ms", "total_ms"}} object for the bench record. *)
let trace_spans (name, mk) =
  let cfg = scheduler_config Wisefuse in
  let prog = mk () in
  Pluto.Farkas.reset_cache ();
  Linalg.Counters.reset ();
  ignore (Obs.Trace.with_recording (fun () -> Pluto.Scheduler.run cfg prog));
  Obs.Trace.disable ();
  let span (stage, self, total) =
    ( stage,
      Obs.Json.Obj
        [ ("self_ms", Obs.Json.Float (Obs.Json.round2 (self *. 1e3)));
          ("total_ms", Obs.Json.Float (Obs.Json.round2 (total *. 1e3))) ] )
  in
  (name, Obs.Json.Obj (List.map span (Obs.Trace.summary ~cat:"stage" ())))

let pipeline () =
  section
    "Pipeline: end-to-end wisefuse scheduling time (exact-arithmetic hot path)";
  let rows = List.map time_pipeline_kernel pipeline_kernels in
  pipeline_table rows;
  let spans =
    if embed_spans then Some (List.map trace_spans pipeline_kernels) else None
  in
  write_pipeline_json ?spans rows

(* Regression gate (CI, non-blocking): time a fresh run and compare each
   kernel against the last committed non-smoke record. Exits non-zero on
   a >25% wall-time regression for any kernel. Absolute times are only
   meaningful on the machine that produced the baseline, which is why
   the CI step that runs this is advisory. *)
let check_threshold = 1.25

let pipeline_check () =
  section "Pipeline check: fresh run vs last committed BENCH record";
  let baseline =
    List.rev (read_bench_file ())
    |> List.find_opt (fun r ->
           record_smoke r = Some false && not (is_analyze_record r))
  in
  match baseline with
  | None ->
    Printf.printf "  no non-smoke baseline record in %s; nothing to check\n"
      bench_json_file
  | Some base ->
    let blabel = Option.value (record_label base) ~default:"?" in
    Printf.printf "  baseline: %S\n%!" blabel;
    let rows = List.map time_pipeline_kernel pipeline_kernels in
    pipeline_table rows;
    let failed = ref false in
    List.iter
      (fun r ->
        let baseline_ms = kernel_wall base r.kernel in
        let v =
          Bench_check.compare_wall ~threshold:check_threshold ~baseline_ms
            ~current_ms:r.wall_ms
        in
        (match (v, baseline_ms) with
        | (Bench_check.Within _ | Bench_check.Regression _), Some bw ->
          Printf.printf "  %-10s %10.2f ms vs %10.2f ms  %s\n" r.kernel
            r.wall_ms bw (Bench_check.describe v)
        | _ -> Printf.printf "  %-10s %s\n" r.kernel (Bench_check.describe v));
        if Bench_check.is_failure v then failed := true)
      rows;
    if !failed then begin
      Printf.printf "  FAIL: wall-time regression above x%.2f\n" check_threshold;
      exit 1
    end
    else Printf.printf "  OK: all kernels within x%.2f of baseline\n" check_threshold

(* --- wisecheck static-analysis overhead ---------------------------------------- *)

(* Times Analysis.Wisecheck.certify (race + scan + lint certification)
   over the final wisefuse schedule and AST of each pipeline kernel.
   Scheduling happens once, untimed, so the measured wall time is pure
   analysis cost; the row's counters therefore describe the certify run
   alone (LP solves spent on conflict systems, finding tallies). Rows
   land in BENCH_pipeline.json under the "<label>-analyze" record,
   which the regression gate skips. Feeds the "Static analysis" entry
   in EXPERIMENTS.md. Exits non-zero if any kernel fails to certify —
   a certified-clean registry is part of the pipeline contract. *)
let analyze_overhead () =
  section "Analyze: wisecheck certification time (race + scan + lints)";
  (* reduction-aware runs: the reduction kernels join the pipeline set
     and the optimizer schedules with the proofs applied, so the
     record's reductions_detected / reductions_certified counters
     describe real certifications, not zeros *)
  let kernels =
    pipeline_kernels
    @ [ ("gemmacc", fun () -> Kernels.Gemmacc.program ~n:10 ());
        ("covariance", fun () -> Kernels.Covariance.program ~n:10 ()) ]
  in
  let rows =
    List.map
      (fun (name, mk) ->
        let prog = mk () in
        Pluto.Farkas.reset_cache ();
        let o =
          Fusion.Model.optimize ~reductions:true Fusion.Model.Wisefuse prog
        in
        let r =
          match o.Fusion.Model.scheduler with
          | Some r -> r
          | None -> failwith "wisefuse model returned no scheduler result"
        in
        let certify () =
          Analysis.Wisecheck.certify r.Pluto.Scheduler.prog
            r.Pluto.Scheduler.all_deps r.Pluto.Scheduler.sched
            o.Fusion.Model.ast
        in
        ignore (certify ()) (* warm-up *);
        let reps = if smoke then 1 else 3 in
        let best = ref infinity in
        let best_counters = ref [] and best_stages = ref [] in
        let report = ref None in
        for _ = 1 to reps do
          Linalg.Counters.reset ();
          let t0 = Unix.gettimeofday () in
          let rep = certify () in
          let dt = Unix.gettimeofday () -. t0 in
          if dt < !best then begin
            best := dt;
            best_counters := Linalg.Counters.all_counters ();
            best_stages := Linalg.Counters.stage_times ();
            report := Some rep
          end
        done;
        let rep = Option.get !report in
        Printf.printf "  %-10s %8.2f ms   %d errors, %d warnings, %d info\n%!"
          name (!best *. 1e3) rep.Analysis.Wisecheck.errors
          rep.Analysis.Wisecheck.warnings rep.Analysis.Wisecheck.infos;
        if not (Analysis.Wisecheck.certified rep) then begin
          Printf.printf "  FAIL: wisecheck reported errors on %s\n" name;
          exit 1
        end;
        {
          kernel = name;
          wall_ms = !best *. 1e3;
          counters = !best_counters;
          stages = !best_stages;
        })
      kernels
  in
  let total = List.fold_left (fun a r -> a +. r.wall_ms) 0.0 rows in
  Printf.printf "  %-10s %8.2f ms\n" "total" total;
  write_pipeline_json ~tag:analyze_tag rows

(* --- budget accounting overhead ----------------------------------------------- *)

(* Times the wisefuse scheduler with no budget against a generous one
   that never trips, so the difference is pure accounting cost (one
   latch check per simplex pivot and branch-and-bound node). Feeds the
   "Robustness" entry in EXPERIMENTS.md; expected well under 2%. *)
let budget_overhead () =
  section "Budget accounting overhead (generous budget vs none)";
  let cfg = scheduler_config Wisefuse in
  List.iter
    (fun (name, mk) ->
      let prog = mk () in
      Pluto.Farkas.reset_cache ();
      ignore (Pluto.Scheduler.run cfg prog) (* warm-up *);
      let reps = if smoke then 1 else 5 in
      let time budget =
        let best = ref infinity in
        for _ = 1 to reps do
          Pluto.Farkas.reset_cache ();
          let t0 = Unix.gettimeofday () in
          ignore (Pluto.Scheduler.run ?budget cfg prog);
          let dt = Unix.gettimeofday () -. t0 in
          if dt < !best then best := dt
        done;
        !best *. 1e3
      in
      let base = time None in
      let budgeted =
        time
          (Some
             (Linalg.Budget.make ~ms:600_000 ~pivots:1_000_000_000
                ~nodes:1_000_000_000 ()))
      in
      Printf.printf
        "  %-10s %8.2f ms unbudgeted  %8.2f ms budgeted  (%+5.2f%%)\n%!" name
        base budgeted
        ((budgeted -. base) /. base *. 100.0))
    pipeline_kernels

(* --- tracing overhead ---------------------------------------------------------- *)

(* Times the wisefuse scheduler against the null sink and against a
   recording tracer. The null-sink column is the instrumented hot path
   paying only its `if Obs.Trace.on ()` guards (the ≤2% budget of the
   observability layer); the traced column adds event construction and
   buffering. Feeds the "Observability" entry in EXPERIMENTS.md. *)
let trace_overhead () =
  section "Tracing overhead (recording tracer vs null sink)";
  let cfg = scheduler_config Wisefuse in
  List.iter
    (fun (name, mk) ->
      let prog = mk () in
      Obs.Trace.disable ();
      Pluto.Farkas.reset_cache ();
      ignore (Pluto.Scheduler.run cfg prog) (* warm-up *);
      let reps = if smoke then 1 else 5 in
      let time traced =
        let best = ref infinity in
        for _ = 1 to reps do
          Pluto.Farkas.reset_cache ();
          if traced then Obs.Trace.enable ();
          let t0 = Unix.gettimeofday () in
          ignore (Pluto.Scheduler.run cfg prog);
          let dt = Unix.gettimeofday () -. t0 in
          Obs.Trace.disable ();
          if dt < !best then best := dt
        done;
        !best *. 1e3
      in
      let off = time false in
      let on = time true in
      Printf.printf
        "  %-10s %8.2f ms untraced  %8.2f ms traced  (%+5.2f%%, %d events)\n%!"
        name off on
        ((on -. off) /. off *. 100.0)
        (Obs.Trace.event_count ()))
    pipeline_kernels

(* --- serving: heavy traffic against the wiseserve daemon ---------------------- *)

(* Drives Serve.Server.handle_line in-process with thousands of
   line-delimited JSON requests under three key-popularity skews
   (uniform, zipf, hot) and records hit rate and per-class latency
   percentiles in BENCH_serve.json. The cold-solve population is the
   full registry x all five fusion models at the registry model sizes
   (smoke: the four pipeline kernels at their pipeline sizes, so the CI
   step stays fast). Every hit response is checked to report zero
   solver work — the cache serving schedules without touching the ILP
   is the entire point of the daemon. *)

let serve_bench_file = "BENCH_serve.json"

(* xorshift64*: deterministic request sequence, no dependence on the
   stdlib Random state *)
let serve_rng = ref 0x9E3779B97F4A7C15L

let serve_rand () =
  let open Int64 in
  let x = !serve_rng in
  let x = logxor x (shift_left x 13) in
  let x = logxor x (shift_right_logical x 7) in
  let x = logxor x (shift_left x 17) in
  serve_rng := x;
  to_int (shift_right_logical x 2)

let serve_rand_float () = float_of_int (serve_rand () land 0xFFFFFF) /. 16777216.0

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(int_of_float (Float.round (p *. float_of_int (n - 1))))

(* the request population: (kernel, size option) pairs crossed with the
   five models *)
let serve_population () =
  let kernels =
    if smoke then
      List.map (fun (k, _) -> (k, None)) pipeline_kernels
      |> List.map (fun (k, _) ->
             ( k,
               Some
                 (match k with
                 | "swim" -> 24
                 | "gemsfdtd" -> 10
                 | "advect" -> 16
                 | _ -> 20) ))
    else
      List.map
        (fun (e : Kernels.Registry.entry) -> (e.Kernels.Registry.name, None))
        Kernels.Registry.all
  in
  List.concat_map
    (fun (k, size) ->
      List.map (fun m -> (k, size, model_name m)) all_models)
    kernels

let serve_request_line ~id (kernel, size, model) =
  let open Obs.Json in
  let fields =
    [ ("id", Int id); ("kernel", Str kernel); ("model", Str model) ]
    @ match size with Some n -> [ ("size", Int n) ] | None -> []
  in
  to_string (Obj fields)

(* key index under each skew; [n] is the population size *)
let pick_uniform n = serve_rand () mod n

let pick_zipf weights total =
  let x = serve_rand_float () *. total in
  let rec go i acc =
    if i >= Array.length weights - 1 then i
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.0

let pick_hot n =
  (* 90% of traffic on 5 hot keys, the tail uniform over everything *)
  if serve_rand_float () < 0.9 then serve_rand () mod min 5 n
  else serve_rand () mod n

type serve_sample = { hit : bool; us : float }

let serve_field resp path =
  let rec go j = function
    | [] -> Some j
    | f :: rest -> Option.bind (Obs.Json.member f j) (fun v -> go v rest)
  in
  go resp path

let serve_run_mix t population ~skew ~count =
  let pop = Array.of_list population in
  let n = Array.length pop in
  let weights =
    Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) 1.1)
  in
  let wtotal = Array.fold_left ( +. ) 0.0 weights in
  let samples = ref [] in
  let bad_hits = ref 0 in
  for i = 1 to count do
    let idx =
      match skew with
      | `Uniform -> pick_uniform n
      | `Zipf -> pick_zipf weights wtotal
      | `Hot -> pick_hot n
    in
    let line = serve_request_line ~id:i pop.(idx) in
    let t0 = Unix.gettimeofday () in
    let resp = Serve.Server.handle_line t line in
    let us = (Unix.gettimeofday () -. t0) *. 1e6 in
    match resp with
    | None -> failwith "serve bench: daemon returned nothing for a request"
    | Some r -> (
      match Obs.Json.parse r with
      | Error msg -> failwith ("serve bench: unparseable response: " ^ msg)
      | Ok j ->
        (match
           Option.bind (serve_field j [ "status" ]) Obs.Json.to_string_opt
         with
        | Some "ok" -> ()
        | _ -> failwith ("serve bench: error response: " ^ r));
        let hit =
          Option.bind (serve_field j [ "cache" ]) Obs.Json.to_string_opt
          = Some "hit"
        in
        (* a hit must report zero solver work: the counters are the
           proof that cached schedules bypass the LP/B&B machinery *)
        if hit then begin
          let solver_work name =
            Option.value ~default:0
              (Option.bind (serve_field j [ "serve"; name ]) Obs.Json.to_int_opt)
          in
          if
            List.exists
              (fun c -> solver_work c <> 0)
              [ "lp_solves"; "lp_pivots"; "dual_pivots"; "ilp_solves"; "bb_nodes" ]
          then incr bad_hits
        end;
        samples := { hit; us } :: !samples)
  done;
  (List.rev !samples, !bad_hits)

let serve_percentiles samples =
  let a = Array.of_list (List.map (fun s -> s.us) samples) in
  Array.sort compare a;
  (percentile a 0.5, percentile a 0.99)

let serve_class_stats samples =
  let hits = List.filter (fun s -> s.hit) samples in
  let cold = List.filter (fun s -> not s.hit) samples in
  let h50, h99 = serve_percentiles hits in
  let c50, c99 = serve_percentiles cold in
  let o50, o99 = serve_percentiles samples in
  (List.length hits, List.length cold, (h50, h99), (c50, c99), (o50, o99))

type serve_stats = {
  srequests : int;
  shits : int;
  scold : int;
  hit_p50_us : float;
  hit_p99_us : float;
  cold_p50_us : float;
  cold_p99_us : float;
  all_p50_us : float;
  all_p99_us : float;
  per_skew : (string * int * int) list; (* skew, requests, hits *)
  zero_solver_hits : bool;
  (* the daemon's own telemetry, read back after the traffic: the
     scrape must reconcile exactly with the driver's ledger, and the
     histogram percentiles must tell the same hit-vs-cold story as the
     driver's sampled wall times *)
  tel_reconciled : bool;
  tel_hit_p50_us : float;
  tel_hit_p99_us : float;
  tel_cold_p50_us : float;
  tel_cold_p99_us : float;
}

let run_serve_traffic () =
  serve_rng := 0x9E3779B97F4A7C15L;
  let population = serve_population () in
  let t = Serve.Server.create () in
  let per_mix = if smoke then 50 else 800 in
  let all_samples = ref [] in
  let per_skew = ref [] in
  let bad = ref 0 in
  List.iter
    (fun (tag, skew) ->
      let samples, bad_hits = serve_run_mix t population ~skew ~count:per_mix in
      bad := !bad + bad_hits;
      let hits = List.length (List.filter (fun s -> s.hit) samples) in
      Printf.printf "  %-8s %5d requests  %5d hits  (%.1f%% hit rate)\n%!" tag
        per_mix hits
        (100.0 *. float_of_int hits /. float_of_int per_mix);
      per_skew := (tag, per_mix, hits) :: !per_skew;
      all_samples := !all_samples @ samples)
    [ ("uniform", `Uniform); ("zipf", `Zipf); ("hot", `Hot) ];
  let samples = !all_samples in
  let nhits, ncold, (h50, h99), (c50, c99), (o50, o99) =
    serve_class_stats samples
  in
  if !bad > 0 then begin
    Printf.printf
      "  FAIL: %d cache hits reported non-zero solver counters\n" !bad;
    exit 1
  end;
  (* reconcile the daemon's telemetry against the driver's own ledger:
     every answered line was a schedule response, so requests_total,
     hit (+coalesced, though this single-domain driver never
     coalesces) and cold must match exactly *)
  let tel = Serve.Server.telemetry t in
  let requests = List.length samples in
  let tel_hits =
    Serve.Telemetry.outcome_total tel "hit"
    + Serve.Telemetry.outcome_total tel "coalesced"
  in
  let tel_cold = Serve.Telemetry.outcome_total tel "cold" in
  let reconciled =
    Serve.Telemetry.requests_total tel = requests
    && tel_hits = nhits && tel_cold = ncold
  in
  if not reconciled then
    Printf.printf
      "  telemetry MISMATCH: scrape says %d requests / %d hits / %d cold, \
       ledger says %d / %d / %d\n%!"
      (Serve.Telemetry.requests_total tel)
      tel_hits tel_cold requests nhits ncold;
  let q cls p = Serve.Telemetry.duration_quantile tel cls p in
  {
    srequests = requests;
    shits = nhits;
    scold = ncold;
    hit_p50_us = h50;
    hit_p99_us = h99;
    cold_p50_us = c50;
    cold_p99_us = c99;
    all_p50_us = o50;
    all_p99_us = o99;
    per_skew = List.rev !per_skew;
    zero_solver_hits = !bad = 0;
    tel_reconciled = reconciled;
    tel_hit_p50_us = q `Hit 0.5;
    tel_hit_p99_us = q `Hit 0.99;
    tel_cold_p50_us = q `Cold 0.5;
    tel_cold_p99_us = q `Cold 0.99;
  }

let serve_record st =
  let open Obs.Json in
  let label = Option.value (Sys.getenv_opt "BENCH_LABEL") ~default:"dev" in
  let r2 v = Float (round2 v) in
  Obj
    [ ("label", Str label); ("smoke", Bool smoke);
      ("requests", Int st.srequests); ("hits", Int st.shits);
      ("misses", Int st.scold);
      ( "hit_rate",
        Float
          (Float.of_string
             (Printf.sprintf "%.4f"
                (float_of_int st.shits /. float_of_int st.srequests))) );
      ("hit_p50_us", r2 st.hit_p50_us); ("hit_p99_us", r2 st.hit_p99_us);
      ("cold_p50_us", r2 st.cold_p50_us); ("cold_p99_us", r2 st.cold_p99_us);
      ("overall_p50_us", r2 st.all_p50_us); ("overall_p99_us", r2 st.all_p99_us);
      ("speedup_p50", r2 (st.cold_p50_us /. st.hit_p50_us));
      ("zero_solver_hits", Bool st.zero_solver_hits);
      ( "telemetry",
        Obj
          [ ("reconciled", Bool st.tel_reconciled);
            ("hist_hit_p50_us", r2 st.tel_hit_p50_us);
            ("hist_hit_p99_us", r2 st.tel_hit_p99_us);
            ("hist_cold_p50_us", r2 st.tel_cold_p50_us);
            ("hist_cold_p99_us", r2 st.tel_cold_p99_us) ] );
      ( "skews",
        Obj
          (List.map
             (fun (tag, reqs, hits) ->
               ( tag,
                 Obj
                   [ ("requests", Int reqs); ("hits", Int hits);
                     ( "hit_rate",
                       Float
                         (Float.of_string
                            (Printf.sprintf "%.4f"
                               (float_of_int hits /. float_of_int reqs))) ) ] ))
             st.per_skew) ) ]

let read_serve_file () =
  if Sys.file_exists serve_bench_file then begin
    let ic = open_in_bin serve_bench_file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Obs.Json.parse s with
    | Error msg -> failwith (Printf.sprintf "%s: %s" serve_bench_file msg)
    | Ok doc ->
      (match Option.bind (Obs.Json.member "runs" doc) Obs.Json.to_list_opt with
      | Some runs -> runs
      | None -> failwith (serve_bench_file ^ {|: no "runs" array|}))
  end
  else []

let write_serve_json st =
  let run = serve_record st in
  let label = Option.value (record_label run) ~default:"dev" in
  let kept =
    List.filter (fun r -> record_label r <> Some label) (read_serve_file ())
  in
  let doc =
    Obs.Json.Obj
      [ ("schema", Obs.Json.Int 1);
        ( "unit",
          Obs.Json.Str
            "request latency microseconds against the wiseserve daemon" );
        ("runs", Obs.Json.List (kept @ [ run ])) ]
  in
  let oc = open_out_bin serve_bench_file in
  output_string oc (Obs.Json.to_string_pretty doc);
  close_out oc;
  Printf.printf "  wrote %s (label %S)\n%!" serve_bench_file label

let serve_table st =
  Printf.printf "  %-8s %8s %12s %12s\n" "class" "count" "p50 (us)" "p99 (us)";
  Printf.printf "  %-8s %8d %12.1f %12.1f\n" "hit" st.shits st.hit_p50_us
    st.hit_p99_us;
  Printf.printf "  %-8s %8d %12.1f %12.1f\n" "cold" st.scold st.cold_p50_us
    st.cold_p99_us;
  Printf.printf "  %-8s %8d %12.1f %12.1f\n" "overall" st.srequests
    st.all_p50_us st.all_p99_us;
  Printf.printf
    "  hit rate %.1f%%; cache-hit p50 is x%.0f below a cold solve's p50\n"
    (100.0 *. float_of_int st.shits /. float_of_int st.srequests)
    (st.cold_p50_us /. st.hit_p50_us);
  Printf.printf
    "  telemetry: reconciled %b; histogram p50 hit %.1f us / cold %.1f us\n%!"
    st.tel_reconciled st.tel_hit_p50_us st.tel_cold_p50_us

let serve_bench () =
  section "Serve: heavy traffic against the scheduling daemon (wiseserve)";
  let st = run_serve_traffic () in
  serve_table st;
  write_serve_json st

(* Serving gate (CI, advisory like the pipeline gate): machine-
   independent bounds over one fresh traffic run. The hit-rate floor is
   set by the workload's composition (the only cold-capable requests
   are the first touches of each distinct key), and the latency bounds
   are ratios against the same run's own cold solves — nothing here
   compares absolute times across machines. *)
let serve_check () =
  section "Serve check: hit-rate floor and hit-latency ceilings";
  (match
     List.rev (read_serve_file ())
     |> List.find_opt (fun r -> record_smoke r = Some false)
   with
  | Some r ->
    Printf.printf "  committed baseline: %S\n"
      (Option.value (record_label r) ~default:"?")
  | None ->
    Printf.printf "  (no committed non-smoke baseline in %s)\n" serve_bench_file);
  let st = run_serve_traffic () in
  serve_table st;
  let distinct = List.length (serve_population ()) in
  (* every request past the first touch of a key can hit; allow 10%
     slack for eviction effects *)
  let floor =
    0.9 *. (1.0 -. (float_of_int distinct /. float_of_int st.srequests))
  in
  let checks =
    [ ( "hit_rate",
        Bench_check.check_min ~floor
          ~value:(float_of_int st.shits /. float_of_int st.srequests) );
      ( "hit_p99 <= cold_p50",
        Bench_check.check_max ~ceiling:st.cold_p50_us ~value:st.hit_p99_us );
      ( "cold_p50/hit_p50 >= 10",
        Bench_check.check_min ~floor:10.0
          ~value:(st.cold_p50_us /. st.hit_p50_us) );
      (* the daemon's own histograms must tell the same story as the
         driver's sampled wall times: hits and colds separate, and the
         bucketed p50s agree with the sampled ones to within the
         log-linear resolution (upper-edge estimate, 12.5% buckets —
         4x is a generous machine-independent envelope) *)
      ( "hist hit_p50 <= hist cold_p50",
        Bench_check.check_max ~ceiling:st.tel_cold_p50_us
          ~value:st.tel_hit_p50_us );
      ( "hist/sampled hit_p50 <= 4",
        Bench_check.check_max ~ceiling:4.0
          ~value:(st.tel_hit_p50_us /. st.hit_p50_us) );
      ( "hist/sampled cold_p50 <= 4",
        Bench_check.check_max ~ceiling:4.0
          ~value:(st.tel_cold_p50_us /. st.cold_p50_us) ) ]
  in
  let failed = ref false in
  List.iter
    (fun (name, v) ->
      Printf.printf "  %-28s %s\n" name (Bench_check.describe_bound v);
      if Bench_check.bound_failure v then failed := true)
    checks;
  Printf.printf "  %-28s %s\n" "telemetry reconciled"
    (if st.tel_reconciled then "OK" else "FAIL");
  if not st.tel_reconciled then failed := true;
  if !failed then begin
    Printf.printf "  FAIL: serving bounds violated\n";
    exit 1
  end
  else Printf.printf "  OK: all serving bounds hold\n"

(* --- telemetry overhead: instruments on vs off over warm traffic ------------- *)

(* The zero-cost-when-disabled claim, measured: the same warm request
   stream (all cache hits after warm-up, so the solver never runs and
   the per-request instrument work is the largest relative term) is
   driven through two servers that differ only in [config.metrics].
   Both must serve byte-identical schedule payloads — telemetry
   observes responses, it never shapes them — and the per-request
   delta is reported like [trace_overhead]. *)

let telemetry_overhead () =
  section "Telemetry overhead (metrics instruments on vs off, warm hits)";
  let population = serve_population () in
  let mk metrics =
    Serve.Server.create
      ~config:{ Serve.Server.default_config with metrics }
      ()
  in
  let t_on = mk true in
  let t_off = mk false in
  (* warm both caches over the population; the cold payloads must
     already be byte-identical (key + result) between the two servers *)
  let payload t p =
    let line = serve_request_line ~id:0 p in
    match Serve.Server.handle_line t line with
    | None -> ("", "")
    | Some r -> (
      match Obs.Json.parse r with
      | Error _ -> ("", "")
      | Ok j ->
        let key =
          Option.value ~default:""
            (Option.bind (serve_field j [ "key" ]) Obs.Json.to_string_opt)
        in
        let result =
          match serve_field j [ "result" ] with
          | Some v -> Obs.Json.to_string v
          | None -> ""
        in
        (key, result))
  in
  let identical =
    List.for_all
      (fun p ->
        let k_on, r_on = payload t_on p in
        let k_off, r_off = payload t_off p in
        k_on = k_off && r_on = r_off && r_on <> "")
      population
  in
  if not identical then begin
    Printf.printf
      "  FAIL: schedules differ between metrics-on and metrics-off servers\n";
    exit 1
  end;
  let reqs =
    Array.of_list (List.mapi (fun i p -> serve_request_line ~id:i p) population)
  in
  let reps = if smoke then 3 else 20 in
  let time t =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      Array.iter (fun line -> ignore (Serve.Server.handle_line t line)) reqs;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best *. 1e6 /. float_of_int (Array.length reqs)
  in
  let off = time t_off in
  let on = time t_on in
  Printf.printf
    "  %d warm requests per rep, best of %d reps; payloads byte-identical\n"
    (Array.length reqs) reps;
  Printf.printf
    "  metrics off %8.2f us/req   metrics on %8.2f us/req   (%+5.2f%%)\n%!"
    off on
    ((on -. off) /. off *. 100.0)

(* --- soak: chaos + hostile traffic against the hardened daemon ---------------- *)

(* The survival experiment behind the "Hardened serving" claims: a
   multi-domain in-process daemon is soaked in thousands of mixed
   requests where a deliberate share of the traffic is hostile
   (malformed JSON, truncated lines, unknown ops, bad engines/models,
   oversized lines) and a share of the cold solves is sabotaged by the
   chaos hook (injected exceptions, starved budgets, slow solves). The
   daemon must never crash, answer EVERY line with a typed envelope,
   keep deadline overruns bounded, trip and recover the circuit
   breaker, and — the core wiseserve guarantee — still serve payloads
   byte-identical to an unfaulted run afterwards. Survival metrics land
   in BENCH_soak.json; `soak --check` is the gate CI blocks on. *)

let soak_json_file = "BENCH_soak.json"
let soak_deadline_ms = 250

(* per-worker xorshift64* state: each domain gets its own stream, so
   the concurrent phase stays deterministic per worker *)
let soak_rand r =
  let open Int64 in
  let x = !r in
  let x = logxor x (shift_left x 13) in
  let x = logxor x (shift_right_logical x 7) in
  let x = logxor x (shift_left x 17) in
  r := x;
  to_int (shift_right_logical x 2)

let soak_rand_float r = float_of_int (soak_rand r land 0xFFFFFF) /. 16777216.0

let soak_registry () =
  List.map (fun (e : Kernels.Registry.entry) -> e.Kernels.Registry.name)
    Kernels.Registry.all

(* cache-busting cold solves stick to the structurally cheap kernels:
   the size only changes the fingerprint (it is a loop-bound parameter,
   not a statement count), so fresh sizes mean fresh cold solves at a
   flat cost *)
let soak_cheap_kernels = [| "gemver"; "tce"; "advect" |]

let soak_oversized_line =
  lazy ("{\"id\": 6, \"pad\": \"" ^ String.make ((1 lsl 20) + 64) 'x' ^ "\"}")

let soak_hostile_line i =
  match i mod 9 with
  | 0 -> {|{"id": 1, "op": "no-such-op"}|}
  | 1 -> "this is not json"
  | 2 -> {|{"truncated":|}
  | 3 -> {|{"id": 2, "kernel": "no-such-kernel"}|}
  | 4 -> {|{"id": 3, "kernel": "gemver", "size": 8, "engine": "bogus"}|}
  | 5 -> {|{"id": 4, "kernel": "gemver", "size": 8, "model": "bogus"}|}
  | 6 -> {|{"id": 5, "kernel": 42}|}
  | 7 -> {|{"id": 6, "kernel": "gemver", "size": 8, "deadline_ms": -1}|}
  | _ -> Lazy.force soak_oversized_line

type soak_reply =
  | Sok of string (* cache state: hit | miss | uncached | "" for ops *)
  | Serr of string (* typed error code *)
  | Suntyped (* missing, unparseable or schema-less response *)

(* per-worker tally, merged after the domains join *)
type soak_tally = {
  mutable sent : int;
  mutable hostile : int;
  mutable hits : int;
  mutable cold : int;
  mutable uncache : int;
  errs : (string, int) Hashtbl.t;
  mutable untyped : int;
  mutable crashes : int;
  mutable overruns : float list; (* ms, from deadline-carrying replies *)
  mutable scrapes : int; (* in-soak "metrics" ops answered *)
  mutable scrape_last : int; (* requests_total from the last scrape *)
  mutable mono : bool; (* scrape totals never decreased *)
}

let soak_fresh_tally () =
  { sent = 0; hostile = 0; hits = 0; cold = 0; uncache = 0;
    errs = Hashtbl.create 16; untyped = 0; crashes = 0; overruns = [];
    scrapes = 0; scrape_last = 0; mono = true }

(* sum every sample of one family in a Prometheus text exposition
   (label sets are summed; histogram suffixes are distinct names) *)
let prom_total text name =
  List.fold_left
    (fun acc line ->
      if line = "" || line.[0] = '#' then acc
      else
        match String.index_opt line ' ' with
        | None -> acc
        | Some sp ->
          let head = String.sub line 0 sp in
          let base =
            match String.index_opt head '{' with
            | Some b -> String.sub head 0 b
            | None -> head
          in
          if base = name then
            acc
            + (match
                 float_of_string_opt
                   (String.sub line (sp + 1) (String.length line - sp - 1))
               with
              | Some f -> int_of_float f
              | None -> 0)
          else acc)
    0
    (String.split_on_char '\n' text)

let soak_classify resp =
  match resp with
  | None -> (Suntyped, None)
  | Some r -> (
    match Obs.Json.parse r with
    | Error _ -> (Suntyped, None)
    | Ok j ->
      let str p = Option.bind (serve_field j p) Obs.Json.to_string_opt in
      let overrun =
        Option.bind (serve_field j [ "serve"; "overrun_ms" ])
          Obs.Json.to_float_opt
      in
      (match str [ "status" ] with
      | Some "ok" ->
        (Sok (Option.value (str [ "cache" ]) ~default:""), overrun)
      | Some "error" -> (
        match str [ "error"; "code" ] with
        | Some code -> (Serr code, overrun)
        | None -> (Suntyped, overrun))
      | _ -> (Suntyped, overrun)))

let soak_send t tally line ~hostile =
  tally.sent <- tally.sent + 1;
  if hostile then tally.hostile <- tally.hostile + 1;
  let raw, reply =
    (* handle_line promises never to raise; a raise IS the crash the
       soak exists to rule out, so count it instead of dying *)
    try
      let raw = Serve.Server.handle_line t line in
      (raw, soak_classify raw)
    with _ ->
      tally.crashes <- tally.crashes + 1;
      (None, (Suntyped, None))
  in
  (match reply with
  | Sok "hit", _ -> tally.hits <- tally.hits + 1
  | Sok "miss", _ -> tally.cold <- tally.cold + 1
  | Sok "uncached", _ -> tally.uncache <- tally.uncache + 1
  | Sok _, _ -> ()
  | Serr code, _ ->
    Hashtbl.replace tally.errs code
      (1 + Option.value (Hashtbl.find_opt tally.errs code) ~default:0)
  | Suntyped, _ -> tally.untyped <- tally.untyped + 1);
  (match reply with
  | _, Some o -> tally.overruns <- o :: tally.overruns
  | _ -> ());
  raw

(* an in-soak scrape: the "metrics" protocol op, answered live while
   other domains hammer the server; the exposition's request total
   must never decrease across a worker's successive scrapes — the
   monotonicity the telemetry promises across fault recoveries *)
let soak_scrape t tally =
  match soak_send t tally {|{"id": "scrape", "op": "metrics"}|} ~hostile:false
  with
  | None -> tally.mono <- false
  | Some r ->
    tally.scrapes <- tally.scrapes + 1;
    let total =
      match Obs.Json.parse r with
      | Error _ -> -1
      | Ok j -> (
        match
          Option.bind
            (serve_field j [ "metrics"; "text" ])
            Obs.Json.to_string_opt
        with
        | None -> -1
        | Some text -> prom_total text "wisefuse_serve_requests_total")
    in
    if total < tally.scrape_last then tally.mono <- false;
    tally.scrape_last <- max total tally.scrape_last

(* one worker domain's request stream against the shared server *)
let soak_worker t ~worker ~count =
  let rng = ref (Int64.of_int ((worker + 1) * 0x9E3779B9)) in
  let tally = soak_fresh_tally () in
  let registry = Array.of_list (soak_registry ()) in
  let fresh = ref 0 in
  for i = 1 to count do
    (* a live scrape rides along every 50 requests *)
    if i mod 50 = 0 then soak_scrape t tally;
    let r = soak_rand_float rng in
    if r < 0.12 then
      ignore (soak_send t tally (soak_hostile_line (soak_rand rng)) ~hostile:true)
    else if r < 0.40 then begin
      (* cache-busting cold solve: a size nobody else requests, so the
         chaos hook sees a steady stream of fresh fingerprints *)
      incr fresh;
      let kernel =
        soak_cheap_kernels.(soak_rand rng mod Array.length soak_cheap_kernels)
      in
      let size = 1000 + (worker * 100_000) + !fresh in
      let deadline =
        if soak_rand_float rng < 0.5 then
          Printf.sprintf {|, "deadline_ms": %d|} soak_deadline_ms
        else ""
      in
      ignore
        (soak_send t tally
           (Printf.sprintf {|{"id": %d, "kernel": %S, "size": %d%s}|} i kernel
              size deadline)
           ~hostile:false)
    end
    else begin
      (* warm population traffic over the full registry *)
      let kernel = registry.(soak_rand rng mod Array.length registry) in
      let model =
        if soak_rand_float rng < 0.2 then {|, "model": "nofuse"|} else ""
      in
      let deadline =
        if soak_rand_float rng < 0.3 then
          Printf.sprintf {|, "deadline_ms": %d|} soak_deadline_ms
        else ""
      in
      ignore
        (soak_send t tally
           (Printf.sprintf {|{"id": %d, "kernel": %S, "size": 8%s%s}|} i kernel
              model deadline)
           ~hostile:false)
    end
  done;
  tally

(* (key, result-payload) for one registry kernel; the pair whose byte
   identity across servers and across the soak is the core guarantee *)
let soak_payload t kernel =
  let line = Printf.sprintf {|{"id": 0, "kernel": %S, "size": 8}|} kernel in
  match Serve.Server.handle_line t line with
  | None -> ("", "", "none")
  | Some r -> (
    match Obs.Json.parse r with
    | Error _ -> ("", "", "unparseable")
    | Ok j ->
      let str f = Option.bind (Obs.Json.member f j) Obs.Json.to_string_opt in
      let result =
        match Obs.Json.member "result" j with
        | Some v -> Obs.Json.to_string v
        | None -> ""
      in
      ( Option.value (str "key") ~default:"",
        result,
        Option.value (str "cache") ~default:"?" ))

let soak_config () =
  { Serve.Server.default_config with
    domains = 4;
    cache_capacity = 1024;
    (* low-water admission: with 4 soaking domains the gauge crosses it
       under bursts, so shedding is exercised, not just configured *)
    max_pending = 3;
    (* no server default deadline: only the requests that ask for one
       carry deadline/overrun accounting, which keeps the overrun
       population well-defined *)
    default_deadline_ms = None;
  }

type soak_stats = {
  kdomains : int;
  ksent : int;
  khostile : int;
  khits : int;
  kcold : int;
  kuncached : int;
  kerrs : (string * int) list;
  kuntyped : int;
  kcrashes : int;
  kraises : int;
  kexhausts : int;
  kslows : int;
  kshed : int;
  krecovered : int;
  ktrips : int;
  krejects : int;
  koverrun_samples : int;
  koverrun_p99_ms : float;
  kwarm_identity : bool;
  kwarm_hits : bool;
  kcold_identity : bool;
  kwall_s : float;
  kscrapes : int; (* live "metrics" ops answered during the soak *)
  kmono : bool; (* scrape totals never decreased (across recoveries) *)
  ktel_requests : int; (* final scraped requests_total *)
  kledger : bool; (* scrape totals == driver ledger, per outcome *)
}

let run_soak () =
  let t0 = Linalg.Clock.now () in
  Serve.Chaos.reset ();
  let registry = soak_registry () in
  let workers = 4 in
  let per_worker = if smoke then 100 else 600 in

  (* phase 0: unfaulted reference payloads from a pristine server *)
  let reference =
    let fresh = Serve.Server.create ~config:(soak_config ()) () in
    List.map (fun k -> (k, soak_payload fresh k)) registry
  in

  let t = Serve.Server.create ~config:(soak_config ()) () in

  (* phase 1: seed the soak server's cache with the registry, so the
     identity population is warm before any fault is armed *)
  List.iter (fun k -> ignore (soak_payload t k)) registry;

  (* phase 2: poison pill — one unique fingerprint fails [threshold]
     times in a row, which must trip the breaker; the next request for
     it must be rejected without touching the solver *)
  let threshold = (soak_config ()).Serve.Server.breaker_threshold in
  Serve.Chaos.arm_queue (List.init threshold (fun _ -> Serve.Chaos.Raise));
  let pill = {|{"id": 0, "kernel": "gemver", "size": 9973}|} in
  let pill_tally = soak_fresh_tally () in
  for _ = 1 to threshold + 1 do
    ignore (soak_send t pill_tally pill ~hostile:true)
  done;

  (* phase 3: the concurrent soak — probabilistic chaos on cold solves,
     four worker domains firing the mixed request stream *)
  let chaos_mutex = Mutex.create () in
  let chaos_rng = ref 0x2545F4914F6CDD1DL in
  (Serve.Chaos.solve_fault :=
     fun () ->
       Mutex.lock chaos_mutex;
       let r = soak_rand_float chaos_rng in
       let ms = 40 + (soak_rand chaos_rng mod 60) in
       Mutex.unlock chaos_mutex;
       if r < 0.04 then Some Serve.Chaos.Raise
       else if r < 0.08 then Some Serve.Chaos.Exhaust
       else if r < 0.12 then Some (Serve.Chaos.Slow ms)
       else None);
  let tallies =
    List.init workers (fun w ->
        Domain.spawn (fun () -> soak_worker t ~worker:w ~count:per_worker))
    |> List.map Domain.join
  in
  (* snapshot the chaos tallies before reset zeroes them, and the
     shed/recovered mirrors before the phase-4 servers (whose own
     gauges are zero) overwrite the process-wide counters *)
  let raises = !Serve.Chaos.injected_raises in
  let exhausts = !Serve.Chaos.injected_exhausts in
  let slows = !Serve.Chaos.injected_slows in
  let shed = !Linalg.Counters.serve_shed in
  let recovered = !Linalg.Counters.serve_recovered in
  Serve.Chaos.reset ();
  let tallies = pill_tally :: tallies in

  (* phase 4: identity after the storm — the soak server must still
     serve the registry byte-identically to the unfaulted reference
     (warm), and a brand-new server in the same process must reproduce
     it cold (no poisoned global state survived) *)
  let warm = List.map (fun k -> (k, soak_payload t k)) registry in
  let cold_t = Serve.Server.create ~config:(soak_config ()) () in
  let cold = List.map (fun k -> (k, soak_payload cold_t k)) registry in
  let same a b =
    List.for_all2
      (fun (k1, (key1, res1, _)) (k2, (key2, res2, _)) ->
        k1 = k2 && key1 = key2 && res1 = res2 && res1 <> "")
      a b
  in
  let warm_identity = same reference warm in
  let warm_hits = List.for_all (fun (_, (_, _, c)) -> c = "hit") warm in
  let cold_identity = same reference cold in

  (* merge the per-worker tallies *)
  let sum f = List.fold_left (fun a tl -> a + f tl) 0 tallies in
  let errs = Hashtbl.create 16 in
  List.iter
    (fun tl ->
      Hashtbl.iter
        (fun code n ->
          Hashtbl.replace errs code
            (n + Option.value (Hashtbl.find_opt errs code) ~default:0))
        tl.errs)
    tallies;
  let overruns =
    Array.of_list (List.concat_map (fun tl -> tl.overruns) tallies)
  in
  Array.sort compare overruns;

  (* telemetry ledger reconciliation: the final scrape totals must
     match the driver's own ledger EXACTLY — hostile lines, faulted
     solves, shed and breaker-rejected requests included.  The code ->
     outcome mapping below re-derives [Serve.Telemetry.classify]
     independently, so agreement is evidence, not tautology.  The
     server answered: the phase-1 seeds (all cold), every tallied line
     (pill + workers + in-soak scrapes), and the phase-4 warm reads
     (all hits, asserted separately). *)
  let tel = Serve.Server.telemetry t in
  let seeds = List.length registry in
  let tel_requests = Serve.Telemetry.requests_total tel in
  let classify_code = function
    | "overloaded" -> "shed"
    | "oversized" -> "oversized"
    | "breaker" -> "breaker"
    | "internal" -> "internal"
    | "draining" -> "draining"
    | "parse" -> "parse"
    | "usage" -> "usage"
    | c when String.contains c ':' -> "diagnostic"
    | _ -> "error"
  in
  let err_expect label =
    Hashtbl.fold
      (fun c n acc -> if classify_code c = label then acc + n else acc)
      errs 0
  in
  let ot l = Serve.Telemetry.outcome_total tel l in
  let ledger_rows =
    [ ("requests", sum (fun tl -> tl.sent) + (2 * seeds), tel_requests);
      ("hit", sum (fun tl -> tl.hits) + seeds, ot "hit" + ot "coalesced");
      ("cold", sum (fun tl -> tl.cold) + seeds, ot "cold");
      ("degraded", sum (fun tl -> tl.uncache), ot "degraded");
      ("op:metrics", sum (fun tl -> tl.scrapes),
       Serve.Telemetry.op_total tel "metrics") ]
    @ List.map
        (fun l -> (l, err_expect l, ot l))
        [ "shed"; "oversized"; "breaker"; "internal"; "draining"; "parse";
          "usage"; "diagnostic"; "error" ]
  in
  let sum_assoc l = List.fold_left (fun a (_, v) -> a + v) 0 l in
  let outcome_op_sum =
    sum_assoc (Serve.Telemetry.outcome_totals tel)
    + sum_assoc (Serve.Telemetry.op_totals tel)
  in
  let ledger = ref (tel_requests = outcome_op_sum) in
  if not !ledger then
    Printf.printf
      "  telemetry MISMATCH: requests_total %d <> outcome+op sum %d\n%!"
      tel_requests outcome_op_sum;
  List.iter
    (fun (name, expect, got) ->
      if expect <> got then begin
        ledger := false;
        Printf.printf "  telemetry MISMATCH: %s ledger %d, scrape %d\n%!" name
          expect got
      end)
    ledger_rows;
  let mono = List.for_all (fun tl -> tl.mono) tallies in

  let breaker = Serve.Server.breaker t in
  {
    kdomains = workers;
    ksent = sum (fun tl -> tl.sent);
    khostile = sum (fun tl -> tl.hostile);
    khits = sum (fun tl -> tl.hits);
    kcold = sum (fun tl -> tl.cold);
    kuncached = sum (fun tl -> tl.uncache);
    kerrs =
      Hashtbl.fold (fun c n acc -> (c, n) :: acc) errs []
      |> List.sort compare;
    kuntyped = sum (fun tl -> tl.untyped);
    kcrashes = sum (fun tl -> tl.crashes);
    kraises = raises;
    kexhausts = exhausts;
    kslows = slows;
    kshed = shed;
    krecovered = recovered;
    ktrips = Serve.Breaker.trips breaker;
    krejects = Serve.Breaker.rejects breaker;
    koverrun_samples = Array.length overruns;
    koverrun_p99_ms =
      (if Array.length overruns = 0 then nan else percentile overruns 0.99);
    kwarm_identity = warm_identity;
    kwarm_hits = warm_hits;
    kcold_identity = cold_identity;
    kwall_s = Linalg.Clock.elapsed_ms ~since:t0 /. 1e3;
    kscrapes = sum (fun tl -> tl.scrapes);
    kmono = mono;
    ktel_requests = tel_requests;
    kledger = !ledger;
  }

let soak_fault_share st =
  float_of_int (st.khostile + st.kraises + st.kexhausts + st.kslows)
  /. float_of_int st.ksent

let soak_record st =
  let open Obs.Json in
  let label = Option.value (Sys.getenv_opt "BENCH_LABEL") ~default:"dev" in
  Obj
    [ ("label", Str label); ("smoke", Bool smoke);
      ("domains", Int st.kdomains); ("requests", Int st.ksent);
      ("hostile_lines", Int st.khostile);
      ( "injected",
        Obj
          [ ("raises", Int st.kraises); ("exhausts", Int st.kexhausts);
            ("slows", Int st.kslows) ] );
      ( "fault_share",
        Float (Float.of_string (Printf.sprintf "%.4f" (soak_fault_share st)))
      );
      ("hits", Int st.khits); ("misses", Int st.kcold);
      ("uncached", Int st.kuncached);
      ("error_codes", Obj (List.map (fun (c, n) -> (c, Int n)) st.kerrs));
      ("untyped", Int st.kuntyped); ("crashes", Int st.kcrashes);
      ( "deadline",
        Obj
          [ ("deadline_ms", Int soak_deadline_ms);
            ("samples", Int st.koverrun_samples);
            ("overrun_p99_ms", Float (round2 st.koverrun_p99_ms));
            ("bound_ms", Int (2 * soak_deadline_ms)) ] );
      ( "breaker",
        Obj [ ("trips", Int st.ktrips); ("rejects", Int st.krejects) ] );
      ("shed", Int st.kshed); ("recovered", Int st.krecovered);
      ( "telemetry",
        Obj
          [ ("scrapes", Int st.kscrapes); ("monotone", Bool st.kmono);
            ("requests_total", Int st.ktel_requests);
            ("ledger_reconciled", Bool st.kledger) ] );
      ("warm_identity", Bool st.kwarm_identity);
      ("warm_all_hits", Bool st.kwarm_hits);
      ("cold_identity", Bool st.kcold_identity);
      ("wall_s", Float (round2 st.kwall_s)) ]

let read_soak_file () =
  if Sys.file_exists soak_json_file then begin
    let ic = open_in_bin soak_json_file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Obs.Json.parse s with
    | Error msg -> failwith (Printf.sprintf "%s: %s" soak_json_file msg)
    | Ok doc ->
      (match Option.bind (Obs.Json.member "runs" doc) Obs.Json.to_list_opt with
      | Some runs -> runs
      | None -> failwith (soak_json_file ^ {|: no "runs" array|}))
  end
  else []

let write_soak_json st =
  let run = soak_record st in
  let label = Option.value (record_label run) ~default:"dev" in
  let kept =
    List.filter (fun r -> record_label r <> Some label) (read_soak_file ())
  in
  let doc =
    Obs.Json.Obj
      [ ("schema", Obs.Json.Int 1);
        ( "unit",
          Obs.Json.Str
            "survival metrics of the daemon under chaos + hostile traffic" );
        ("runs", Obs.Json.List (kept @ [ run ])) ]
  in
  let oc = open_out_bin soak_json_file in
  output_string oc (Obs.Json.to_string_pretty doc);
  close_out oc;
  Printf.printf "  wrote %s (label %S)\n%!" soak_json_file label

let soak_table st =
  Printf.printf
    "  %d requests over %d domains in %.1f s: %d hits, %d misses, %d \
     uncached, %d hostile lines\n"
    st.ksent st.kdomains st.kwall_s st.khits st.kcold st.kuncached st.khostile;
  Printf.printf "  injected faults: %d raises, %d exhausts, %d slows (fault \
                 share %.1f%%)\n"
    st.kraises st.kexhausts st.kslows
    (100.0 *. soak_fault_share st);
  Printf.printf "  typed errors:";
  List.iter (fun (c, n) -> Printf.printf " %s=%d" c n) st.kerrs;
  Printf.printf "\n  untyped %d, crashes %d, shed %d, recovered %d, breaker \
                 trips %d / rejects %d\n"
    st.kuntyped st.kcrashes st.kshed st.krecovered st.ktrips st.krejects;
  Printf.printf
    "  deadline overrun p99 %.1f ms over %d samples (bound %d ms)\n"
    st.koverrun_p99_ms st.koverrun_samples (2 * soak_deadline_ms);
  Printf.printf
    "  telemetry: %d live scrapes, monotone %b, requests_total %d, ledger \
     reconciled %b\n"
    st.kscrapes st.kmono st.ktel_requests st.kledger;
  Printf.printf
    "  identity after soak: warm %b (all hits %b), fresh-server cold %b\n%!"
    st.kwarm_identity st.kwarm_hits st.kcold_identity

let soak_bench () =
  section "Soak: chaos + hostile traffic against the hardened daemon";
  let st = run_soak () in
  soak_table st;
  write_soak_json st

(* Soak gate (CI, blocking): validates the latest BENCH_soak record.
   Every bound is machine-independent — counts, shares and identity
   booleans from one run; the only time-like bound (overrun p99) is
   relative to the deadline the run itself requested. *)
let soak_check () =
  section "Soak check: survival bounds over the latest BENCH_soak record";
  match List.rev (read_soak_file ()) with
  | [] ->
    Printf.printf "  no record in %s; run `bench -- soak` first\n"
      soak_json_file;
    exit 1
  | run :: _ ->
    let open Obs.Json in
    let smoke_run = Option.value (record_smoke run) ~default:false in
    Printf.printf "  record: %S (smoke %b)\n"
      (Option.value (record_label run) ~default:"?")
      smoke_run;
    let num path =
      let rec go j = function
        | [] -> to_float_opt j |> fun f ->
          (match f with Some _ -> f | None -> Option.map float_of_int (to_int_opt j))
        | f :: rest -> Option.bind (member f j) (fun v -> go v rest)
      in
      Option.value (go run path) ~default:Float.nan
    in
    let flag path =
      match
        let rec go j = function
          | [] -> to_bool_opt j
          | f :: rest -> Option.bind (member f j) (fun v -> go v rest)
        in
        go run path
      with
      | Some b -> b
      | None -> false
    in
    let failed = ref false in
    let bound name v =
      Printf.printf "  %-36s %s\n" name (Bench_check.describe_bound v);
      if Bench_check.bound_failure v then failed := true
    in
    let must name ok =
      Printf.printf "  %-36s %s\n" name (if ok then "OK" else "FAIL");
      if not ok then failed := true
    in
    bound "crashes = 0" (Bench_check.check_max ~ceiling:0.0 ~value:(num [ "crashes" ]));
    bound "untyped responses = 0"
      (Bench_check.check_max ~ceiling:0.0 ~value:(num [ "untyped" ]));
    bound "fault share >= 0.10"
      (Bench_check.check_min ~floor:0.10 ~value:(num [ "fault_share" ]));
    bound "overrun p99 <= 2 x deadline"
      (Bench_check.check_max
         ~ceiling:(num [ "deadline"; "bound_ms" ])
         ~value:(num [ "deadline"; "overrun_p99_ms" ]));
    bound "overrun samples > 0"
      (Bench_check.check_min ~floor:1.0 ~value:(num [ "deadline"; "samples" ]));
    bound "breaker trips >= 1"
      (Bench_check.check_min ~floor:1.0 ~value:(num [ "breaker"; "trips" ]));
    bound "breaker rejects >= 1"
      (Bench_check.check_min ~floor:1.0 ~value:(num [ "breaker"; "rejects" ]));
    bound "firewall recoveries >= 1"
      (Bench_check.check_min ~floor:1.0 ~value:(num [ "recovered" ]));
    bound "live scrapes >= 1"
      (Bench_check.check_min ~floor:1.0
         ~value:(num [ "telemetry"; "scrapes" ]));
    must "scrape totals monotone" (flag [ "telemetry"; "monotone" ]);
    must "telemetry ledger reconciled" (flag [ "telemetry"; "ledger_reconciled" ]);
    must "warm identity after soak" (flag [ "warm_identity" ]);
    must "fresh-server cold identity" (flag [ "cold_identity" ]);
    if not smoke_run then begin
      bound "requests >= 2000 (full scale)"
        (Bench_check.check_min ~floor:2000.0 ~value:(num [ "requests" ]));
      bound "domains >= 2 (full scale)"
        (Bench_check.check_min ~floor:2.0 ~value:(num [ "domains" ]))
    end;
    if !failed then begin
      Printf.printf "  FAIL: soak survival bounds violated\n";
      exit 1
    end
    else Printf.printf "  OK: the daemon survived the soak within bounds\n"

(* --- engine scale sweep: ilp vs lp-dfp on generated SCoPs + BENCH_scale.json -- *)

let scale_json_file = "BENCH_scale.json"

(* Chain and blocked sweep to 200 statements. Stencil stops at 100: its
   ±1 shifts force a loop cut every few statements, both engines spend
   the sweep inside the shared cut machinery, and past 100 statements
   the sizes cost minutes each to restate a tie. *)
let scale_sizes shape =
  let full =
    match shape with
    | Kernels.Scopgen.Stencil -> [ 10; 25; 50; 100 ]
    | Kernels.Scopgen.Chain | Kernels.Scopgen.Blocked ->
      [ 10; 25; 50; 100; 150; 200 ]
  in
  if smoke then List.filter (fun s -> s <= 50) full else full

(* The counters that tell the two engines apart: bb_nodes must stay 0
   on the lp-dfp path, lp_relax_solves 0 on the ilp path, and
   dfp_fallbacks counts the levels clustering could not certify. *)
let scale_counter_names =
  [ "lp_solves"; "ilp_solves"; "bb_nodes"; "lp_relax_solves";
    "cluster_rounds"; "dfp_fallbacks" ]

type scale_cell = {
  swall_ms : float;
  scounters : (string * int) list;
  srows : int; (* schedule rows of statement 0 — sanity, both engines agree *)
}

(* One timed scheduler run on shared, pre-analyzed dependences, so the
   measurement isolates the engine (hyperplane search) from dependence
   analysis. A single repetition: the interesting walls are hundreds of
   milliseconds to seconds, where run-to-run noise is far below the
   2x gaps the sweep exists to show. *)
let time_scale_engine cfg prog deps kind =
  Pluto.Farkas.reset_cache ();
  Linalg.Counters.reset ();
  let t0 = Unix.gettimeofday () in
  let res =
    Pluto.Scheduler.run_with_deps ~engine:(Pluto.Engine.Fixed kind) cfg prog
      deps
  in
  let dt = Unix.gettimeofday () -. t0 in
  let all = Linalg.Counters.all_counters () in
  {
    swall_ms = dt *. 1e3;
    scounters = List.filter (fun (n, _) -> List.mem n scale_counter_names) all;
    srows = List.length res.Pluto.Scheduler.sched.(0);
  }

let scale_engines = [ Pluto.Engine.Ilp; Pluto.Engine.Lp_dfp ]

(* size row: {"stmts", "deps", "ilp": {...}, "lp-dfp": {...}} *)
let scale_size_row shape stmts =
  let prog = Kernels.Scopgen.generate shape ~stmts in
  let deps = Deps.Dep.analyze prog in
  let cfg = scheduler_config Wisefuse in
  let cells =
    List.map (fun k -> (k, time_scale_engine cfg prog deps k)) scale_engines
  in
  let cell k = List.assoc k cells in
  let c kind name =
    try List.assoc name (cell kind).scounters with Not_found -> 0
  in
  Printf.printf "  %-8s %5d %6d %10.2f %10.2f %8d %8d %6d %5d\n%!"
    (Kernels.Scopgen.shape_name shape)
    stmts (List.length deps) (cell Ilp).swall_ms (cell Lp_dfp).swall_ms
    (c Ilp "bb_nodes")
    (c Lp_dfp "lp_relax_solves")
    (c Lp_dfp "cluster_rounds")
    (c Lp_dfp "dfp_fallbacks");
  let open Obs.Json in
  let cell_obj cl =
    Obj
      (("wall_ms", Float (round2 cl.swall_ms))
       :: ("sched_rows", Int cl.srows)
       :: List.map (fun (n, v) -> (n, Int v)) cl.scounters)
  in
  Obj
    (("stmts", Int stmts)
     :: ("deps", Int (List.length deps))
     :: List.map
          (fun (k, cl) -> (Pluto.Engine.kind_name k, cell_obj cl))
          cells)

let scale_record () =
  Printf.printf "  %-8s %5s %6s %10s %10s %8s %8s %6s %5s\n" "shape" "stmts"
    "deps" "ilp ms" "lp-dfp ms" "bb nodes" "lp relax" "rounds" "fall";
  let shapes =
    List.map
      (fun shape ->
        ( Kernels.Scopgen.shape_name shape,
          Obs.Json.List (List.map (scale_size_row shape) (scale_sizes shape)) ))
      Kernels.Scopgen.all_shapes
  in
  let label = Option.value (Sys.getenv_opt "BENCH_LABEL") ~default:"dev" in
  Obs.Json.Obj
    [ ("label", Obs.Json.Str label); ("smoke", Obs.Json.Bool smoke);
      ("shapes", Obs.Json.Obj shapes) ]

let read_scale_file () =
  if Sys.file_exists scale_json_file then begin
    let ic = open_in_bin scale_json_file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Obs.Json.parse s with
    | Error msg -> failwith (Printf.sprintf "%s: %s" scale_json_file msg)
    | Ok doc ->
      (match Option.bind (Obs.Json.member "runs" doc) Obs.Json.to_list_opt with
      | Some runs -> runs
      | None -> failwith (scale_json_file ^ {|: no "runs" array|}))
  end
  else []

let write_scale_json run =
  let label = Option.value (record_label run) ~default:"dev" in
  let kept =
    List.filter (fun r -> record_label r <> Some label) (read_scale_file ())
  in
  let doc =
    Obs.Json.Obj
      [ ("schema", Obs.Json.Int 1);
        ( "unit",
          Obs.Json.Str
            "wall milliseconds of one scheduler run per engine on shared deps"
        );
        ("runs", Obs.Json.List (kept @ [ run ])) ]
  in
  let oc = open_out_bin scale_json_file in
  output_string oc (Obs.Json.to_string_pretty doc);
  close_out oc;
  Printf.printf "  wrote %s (label %S)\n%!" scale_json_file label

let scale () =
  section "Scale: ilp vs lp-dfp engines on generated large SCoPs";
  write_scale_json (scale_record ())

(* Scale gate (CI, advisory like the other gates): validates the latest
   record in BENCH_scale.json — both engines ran in the same process on
   the same dependences, so every bound below is a ratio or a counter
   within one run; nothing compares absolute times across machines.
   Bounds:
     - bb_nodes = 0 on every lp-dfp cell (the path never branches);
     - at each shape's largest size, lp-dfp wall <= ilp wall x 1.25
       (stencil legitimately ties — cut machinery dominates — so the
       per-shape bound carries tolerance);
     - aggregate lp-dfp wall <= aggregate ilp wall over the whole sweep
       (the headline claim: the relaxation path wins where it matters).
*)
let scale_check_threshold = 1.25

let scale_check () =
  section "Scale check: lp-dfp bounds over the latest BENCH_scale record";
  match List.rev (read_scale_file ()) with
  | [] ->
    Printf.printf "  no record in %s; run `bench -- scale` first\n"
      scale_json_file;
    exit 1
  | run :: _ ->
    Printf.printf "  record: %S (smoke %b)\n"
      (Option.value (record_label run) ~default:"?")
      (Option.value (record_smoke run) ~default:false);
    let open Obs.Json in
    let num cell name =
      Option.bind (member name cell) (fun v ->
          match to_float_opt v with
          | Some f -> Some f
          | None -> Option.map float_of_int (to_int_opt v))
    in
    let failed = ref false in
    let bound name v =
      Printf.printf "  %-40s %s\n" name (Bench_check.describe_bound v);
      if Bench_check.bound_failure v then failed := true
    in
    let ilp_total = ref 0.0 and dfp_total = ref 0.0 in
    let shapes =
      match member "shapes" run with
      | Some (Obj fields) -> fields
      | _ -> failwith (scale_json_file ^ {|: record has no "shapes" object|})
    in
    List.iter
      (fun (shape, rows) ->
        let rows = Option.value (to_list_opt rows) ~default:[] in
        List.iter
          (fun row ->
            match (member "ilp" row, member "lp-dfp" row) with
            | Some ilp, Some dfp ->
              ilp_total :=
                !ilp_total +. Option.value (num ilp "wall_ms") ~default:0.0;
              dfp_total :=
                !dfp_total +. Option.value (num dfp "wall_ms") ~default:0.0;
              let stmts =
                Option.value (num row "stmts") ~default:Float.nan
              in
              bound
                (Printf.sprintf "%s/%.0f lp-dfp bb_nodes = 0" shape stmts)
                (Bench_check.check_max ~ceiling:0.0
                   ~value:(Option.value (num dfp "bb_nodes") ~default:Float.nan))
            | _ ->
              failed := true;
              Printf.printf "  BAD %s row lacks an engine cell\n" shape)
          rows;
        (* per-shape wall bound at the largest size only: small sizes
           are millisecond noise, the asymptote is the claim *)
        match List.rev rows with
        | last :: _ -> (
          match (member "ilp" last, member "lp-dfp" last) with
          | Some ilp, Some dfp ->
            let iw = Option.value (num ilp "wall_ms") ~default:Float.nan in
            let dw = Option.value (num dfp "wall_ms") ~default:Float.nan in
            let stmts = Option.value (num last "stmts") ~default:Float.nan in
            bound
              (Printf.sprintf "%s/%.0f lp-dfp <= ilp x %.2f" shape stmts
                 scale_check_threshold)
              (Bench_check.check_max
                 ~ceiling:(iw *. scale_check_threshold)
                 ~value:dw)
          | _ -> ())
        | [] ->
          failed := true;
          Printf.printf "  BAD shape %s has no rows\n" shape)
      shapes;
    bound "aggregate lp-dfp <= aggregate ilp"
      (Bench_check.check_max ~ceiling:!ilp_total ~value:!dfp_total);
    Printf.printf "  aggregate: lp-dfp %.2f ms vs ilp %.2f ms\n" !dfp_total
      !ilp_total;
    if !failed then begin
      Printf.printf "  FAIL: scale bounds violated\n";
      exit 1
    end
    else Printf.printf "  OK: all scale bounds hold\n"

(* --- Bechamel: time the compiler itself -------------------------------------- *)

let bechamel () =
  section "Bechamel: optimization-pipeline timings (one test per experiment)";
  let open Bechamel in
  let open Toolkit in
  let mk name f = Test.make ~name (Staged.stage f) in
  let tests =
    [ mk "table2-registry" (fun () -> ignore (List.length Kernels.Registry.all));
      mk "fig1-gemver-smartfuse" (fun () ->
          ignore
            (Pluto.Scheduler.run Pluto.Scheduler.smartfuse
               (Kernels.Gemver.program ~n:10 ())));
      mk "fig3-gemver-wisefuse" (fun () ->
          ignore (Fusion.Wisefuse.run (Kernels.Gemver.program ~n:10 ())));
      mk "fig5-swim-prefusion" (fun () ->
          let prog = Kernels.Swim.program ~n:6 () in
          let deps = Deps.Dep.analyze prog in
          let ddg = Deps.Ddg.build prog deps in
          let scc = Deps.Ddg.scc_kosaraju ddg in
          ignore (Fusion.Prefusion.order prog ddg scc));
      mk "fig4_6-advect-alg2" (fun () ->
          ignore (Fusion.Wisefuse.run (Kernels.Advect.program ~n:8 ())));
      mk "fig7-simulate-gemver" (fun () ->
          let prog = Kernels.Gemver.program ~n:10 () in
          let ast = Codegen.Scan.original prog ~deps:[] in
          ignore
            (Machine.Perf.simulate prog ast
               ~params:prog.Scop.Program.default_params));
      mk "fig8-gemsfdtd-icc" (fun () ->
          ignore (Icc.Icc_model.run (Kernels.Gemsfdtd.program ~n:4 ()))) ]
  in
  let instances = [ Instance.monotonic_clock ] in
  let cfg =
    if smoke then Benchmark.cfg ~limit:25 ~quota:(Time.second 0.05) ()
    else Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) ()
  in
  List.iter
    (fun t ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ t ]) in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let res = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name r ->
          match Analyze.OLS.estimates r with
          | Some [ est ] -> Printf.printf "  %-26s %14.0f ns/run\n%!" name est
          | _ -> Printf.printf "  %-26s (no estimate)\n%!" name)
        res)
    tests;
  (* the pipeline timings ride along so `-- bechamel` (what CI runs)
     always refreshes BENCH_pipeline.json *)
  pipeline ()

(* --- driver -------------------------------------------------------------------- *)

let experiments =
  [ ("table1", table1); ("table2", table2); ("fig1", fig1); ("fig3", fig3);
    ("fig5", fig5); ("fig4_6", fig4_6); ("fig7", fig7); ("fig8", fig8);
    ("scaling", scaling); ("ablation", ablation); ("extras", extras);
    ("tiling", tiling); ("locality", locality); ("space", space);
    ("vector", vector); ("pipeline", pipeline); ("analyze", analyze_overhead);
    ("budget", budget_overhead); ("trace", trace_overhead);
    ("serve", serve_bench); ("telemetry", telemetry_overhead);
    ("scale", scale); ("soak", soak_bench);
    ("bechamel", bechamel) ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [ "pipeline"; "--check" ] | [ "--check" ] -> pipeline_check ()
  | [ "serve"; "--check" ] -> serve_check ()
  | [ "scale"; "--check" ] -> scale_check ()
  | [ "soak"; "--check" ] -> soak_check ()
  | [] -> List.iter (fun (_, f) -> f ()) experiments
  | names ->
    List.iter
      (fun n ->
        match List.assoc_opt n experiments with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %s; known: %s\n" n
            (String.concat " " (List.map fst experiments));
          exit 1)
      names
