(** Pure comparator for the bench regression gate.

    Separated from the bench driver so the verdict logic (including the
    zero/non-finite baseline guard) can be unit-tested without running
    any benchmark. *)

type verdict =
  | Within of float  (** ratio; at or under the threshold *)
  | Regression of float  (** ratio; above the threshold *)
  | Bad_baseline
      (** baseline wall time not a positive finite number — no ratio
          can be formed (guards the division) *)
  | Missing  (** kernel absent from the baseline record *)

(** [compare_wall ~threshold ~baseline_ms ~current_ms] classifies one
    kernel's fresh measurement against its baseline. *)
val compare_wall :
  threshold:float -> baseline_ms:float option -> current_ms:float -> verdict

(** Does this verdict fail the gate? Only a confirmed regression does;
    unusable or missing baselines are advisory. *)
val is_failure : verdict -> bool

val describe : verdict -> string

(** One-sided bounds for the serving gate (`bench -- serve --check`):
    hit-rate floors and latency ceilings over a single fresh run. *)
type bound_verdict =
  | Met of float  (** the measured value; bound satisfied *)
  | Violation of float  (** the measured value; bound broken *)
  | Bad_value  (** measurement or bound not finite — no verdict *)

(** [check_min ~floor ~value] — is [value >= floor]? *)
val check_min : floor:float -> value:float -> bound_verdict

(** [check_max ~ceiling ~value] — is [value <= ceiling]? *)
val check_max : ceiling:float -> value:float -> bound_verdict

(** Only a confirmed [Violation] fails the gate. *)
val bound_failure : bound_verdict -> bool

val describe_bound : bound_verdict -> string
