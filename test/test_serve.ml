(* Tests for the wiseserve daemon: structural fingerprints, the
   content-addressed LRU cache, and the server's envelope guarantees —
   above all that a warm response is byte-identical to the cold solve
   that populated it, for every kernel x model pair. *)

module Cache = Serve.Cache

let models = Fusion.Model.all
let model_names = List.map Fusion.Model.name models

let kernels =
  List.map (fun (e : Kernels.Registry.entry) -> e.Kernels.Registry.name)
    Kernels.Registry.all

(* small sizes keep 50 cold solves inside a quick test budget; every
   registry builder accepts n = 8 *)
let test_size = 8

let request_line ?(size = test_size) ?(model = "wisefuse") ~id kernel =
  Obs.Json.to_string
    (Obs.Json.Obj
       [ ("id", Obs.Json.Int id); ("kernel", Obs.Json.Str kernel);
         ("model", Obs.Json.Str model); ("size", Obs.Json.Int size) ])

let respond t line =
  match Serve.Server.handle_line t line with
  | None -> Alcotest.fail "daemon returned nothing for a request"
  | Some r -> (
    match Obs.Json.parse r with
    | Ok j -> (r, j)
    | Error m -> Alcotest.failf "unparseable response %s: %s" r m)

let field j name =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name (Obs.Json.to_string j)

let str_field j name =
  match Obs.Json.to_string_opt (field j name) with
  | Some s -> s
  | None -> Alcotest.failf "%S not a string" name

(* --- warm vs cold: byte identity over the whole registry ----------------- *)

let test_warm_cold_identical () =
  let t = Serve.Server.create () in
  let id = ref 0 in
  List.iter
    (fun kernel ->
      List.iter
        (fun model ->
          incr id;
          let line = request_line ~id:!id ~model kernel in
          let _, cold = respond t line in
          let _, warm = respond t line in
          Alcotest.(check string)
            (kernel ^ "/" ^ model ^ " cold is a miss")
            "miss" (str_field cold "cache");
          Alcotest.(check string)
            (kernel ^ "/" ^ model ^ " warm is a hit")
            "hit" (str_field warm "cache");
          Alcotest.(check string)
            (kernel ^ "/" ^ model ^ " same key")
            (str_field cold "key") (str_field warm "key");
          (* the contract: the cached "result" renders to exactly the
             bytes the cold solve produced *)
          Alcotest.(check string)
            (kernel ^ "/" ^ model ^ " byte-identical result")
            (Obs.Json.to_string (field cold "result"))
            (Obs.Json.to_string (field warm "result"));
          (* and the hit performed zero solver work *)
          let serve = field warm "serve" in
          List.iter
            (fun c ->
              match Obs.Json.to_int_opt (field serve c) with
              | Some 0 -> ()
              | v ->
                Alcotest.failf "%s/%s hit %s = %s" kernel model c
                  (match v with Some n -> string_of_int n | None -> "?"))
            [ "lp_solves"; "lp_pivots"; "dual_pivots"; "ilp_solves"; "bb_nodes" ])
        model_names)
    kernels;
  let s = Cache.stats (Serve.Server.cache t) in
  Alcotest.(check int) "one miss per pair"
    (List.length kernels * List.length models)
    s.Cache.misses;
  Alcotest.(check int) "one hit per pair"
    (List.length kernels * List.length models)
    s.Cache.hits

(* --- fingerprints --------------------------------------------------------- *)

let mini ~name ~arrays ~stmts () =
  (* a 2-statement kernel parameterized over its identifier names, for
     the alpha-invariance checks: b[i] = a[i]*2; c[i] = b[i]+1 *)
  let a_n, b_n, c_n = arrays in
  let s1_n, s2_n = stmts in
  let open Scop.Build in
  let ctx = create ~name ~params:[ ("N", 16) ] in
  let n = param ctx "N" in
  let a = array ctx a_n [ n ] in
  let b = array ctx b_n [ n ] in
  let c = array ctx c_n [ n ] in
  let lb = ci 0 and ub = n -~ ci 1 in
  loop ctx "i" ~lb ~ub (fun i -> assign ctx s1_n b [ i ] (a.%([ i ]) *: f 2.0));
  loop ctx "i" ~lb ~ub (fun i -> assign ctx s2_n c [ i ] (b.%([ i ]) +: f 1.0));
  finish ctx

let test_fingerprint_stable () =
  let wf = Fusion.Model.Wisefuse in
  let p1 = Kernels.Gemver.program ~n:16 () in
  let p2 = Kernels.Gemver.program ~n:16 () in
  Alcotest.(check string) "same content, same key"
    (Serve.Fingerprint.key ~model:wf p1)
    (Serve.Fingerprint.key ~model:wf p2);
  (* MD5 hex: 32 lowercase hex chars *)
  let k = Serve.Fingerprint.key ~model:wf p1 in
  Alcotest.(check int) "key length" 32 (String.length k);
  String.iter
    (fun ch ->
      if not ((ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f')) then
        Alcotest.failf "non-hex key char %c" ch)
    k

let test_fingerprint_sensitivity () =
  let wf = Fusion.Model.Wisefuse in
  let p16 = Kernels.Gemver.program ~n:16 () in
  let p20 = Kernels.Gemver.program ~n:20 () in
  if Serve.Fingerprint.key ~model:wf p16 = Serve.Fingerprint.key ~model:wf p20
  then Alcotest.fail "size change must change the key";
  List.iter
    (fun m ->
      if m <> Fusion.Model.Wisefuse then
        if
          Serve.Fingerprint.key ~model:m p16
          = Serve.Fingerprint.key ~model:wf p16
        then
          Alcotest.failf "model %s shares wisefuse's key" (Fusion.Model.name m))
    models;
  if
    Serve.Fingerprint.key ~model:wf ~param_floor:2 p16
    = Serve.Fingerprint.key ~model:wf ~param_floor:4 p16
  then Alcotest.fail "param floor must be part of the key";
  (* the requested engine is part of the key, pairwise *)
  let ek e = Serve.Fingerprint.key ~engine:e ~model:wf p16 in
  let engine_keys =
    [ ek (Pluto.Engine.Fixed Pluto.Engine.Ilp);
      ek (Pluto.Engine.Fixed Pluto.Engine.Lp_dfp); ek Pluto.Engine.Auto ]
  in
  Alcotest.(check int) "engine choices have distinct keys" 3
    (List.length (List.sort_uniq compare engine_keys));
  Alcotest.(check string) "auto is the default engine"
    (Serve.Fingerprint.key ~model:wf p16)
    (ek Pluto.Engine.Auto);
  (* different kernels never collide *)
  let keys =
    List.map
      (fun k ->
        Serve.Fingerprint.key ~model:wf
          ((Kernels.Registry.find k).Kernels.Registry.program ~n:8 ()))
      kernels
  in
  Alcotest.(check int) "all kernels distinct"
    (List.length kernels)
    (List.length (List.sort_uniq compare keys))

let test_fingerprint_alpha_invariant () =
  (* names don't matter: the fingerprint is structural *)
  let p1 =
    mini ~name:"mini" ~arrays:("a", "b", "c") ~stmts:("S1", "S2") ()
  in
  let p2 =
    mini ~name:"other" ~arrays:("xs", "ys", "zs") ~stmts:("T9", "T10") ()
  in
  Alcotest.(check string) "alpha-renamed programs share a fingerprint"
    (Serve.Fingerprint.program p1)
    (Serve.Fingerprint.program p2);
  (* ... but structure does: swapping which array the second statement
     reads changes the key *)
  let p3 =
    let open Scop.Build in
    let ctx = create ~name:"mini" ~params:[ ("N", 16) ] in
    let n = param ctx "N" in
    let a = array ctx "a" [ n ] in
    let b = array ctx "b" [ n ] in
    let c = array ctx "c" [ n ] in
    let lb = ci 0 and ub = n -~ ci 1 in
    loop ctx "i" ~lb ~ub (fun i -> assign ctx "S1" b [ i ] (a.%([ i ]) *: f 2.0));
    loop ctx "i" ~lb ~ub (fun i -> assign ctx "S2" c [ i ] (a.%([ i ]) +: f 1.0));
    finish ctx
  in
  if Serve.Fingerprint.program p1 = Serve.Fingerprint.program p3 then
    Alcotest.fail "changing a read target must change the fingerprint"

let test_deps_key_deterministic () =
  let prog = Kernels.Gemver.program ~n:16 () in
  let k1 = Serve.Fingerprint.deps_key (Deps.Dep.analyze prog) in
  let k2 = Serve.Fingerprint.deps_key (Deps.Dep.analyze prog) in
  Alcotest.(check string) "deps key deterministic" k1 k2;
  (* order-independence: reversing the list changes nothing *)
  let k3 =
    Serve.Fingerprint.deps_key (List.rev (Deps.Dep.analyze prog))
  in
  Alcotest.(check string) "deps key order-independent" k1 k3

(* --- the cache ------------------------------------------------------------ *)

let payload tag = Obs.Json.Obj [ ("tag", Obs.Json.Str tag) ]

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 in
  Cache.add c "k1" ~payload:(payload "1") ~deps_fp:"d" ~solve_ms:1.0;
  Cache.add c "k2" ~payload:(payload "2") ~deps_fp:"d" ~solve_ms:1.0;
  (* touch k1 so k2 is the least recently used *)
  ignore (Cache.find c "k1");
  Cache.add c "k3" ~payload:(payload "3") ~deps_fp:"d" ~solve_ms:1.0;
  let s = Cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  Alcotest.(check int) "still at capacity" 2 s.Cache.entries;
  Alcotest.(check bool) "LRU entry (k2) gone" true
    (Cache.find_quiet c "k2" = None);
  Alcotest.(check bool) "recently-used k1 kept" true
    (Cache.find_quiet c "k1" <> None);
  Alcotest.(check bool) "new k3 present" true (Cache.find_quiet c "k3" <> None);
  (* re-adding an existing key is a no-op, not an eviction *)
  Cache.add c "k3" ~payload:(payload "3'") ~deps_fp:"d" ~solve_ms:9.0;
  Alcotest.(check int) "no extra eviction" 1 (Cache.stats c).Cache.evictions;
  (match Cache.find_quiet c "k3" with
  | Some e ->
    Alcotest.(check string) "original payload kept" {|{"tag": "3"}|}
      (Obs.Json.to_string e.Cache.payload)
  | None -> Alcotest.fail "k3 vanished");
  match Cache.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must be rejected"

let test_cache_counting_and_sync () =
  let c = Cache.create ~capacity:4 in
  ignore (Cache.find c "absent");
  Cache.add c "k" ~payload:(payload "k") ~deps_fp:"d" ~solve_ms:1.0;
  ignore (Cache.find c "k");
  ignore (Cache.find_quiet c "k") (* quiet: no tally *);
  Cache.count_hit c;
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 2 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses;
  Cache.sync_counters c ~requests:3;
  Alcotest.(check int) "counter hits" 2 !Linalg.Counters.serve_cache_hits;
  Alcotest.(check int) "counter misses" 1 !Linalg.Counters.serve_cache_misses;
  Alcotest.(check int) "counter requests" 3 !Linalg.Counters.serve_requests;
  Linalg.Counters.reset ();
  Alcotest.(check int) "reset clears" 0 !Linalg.Counters.serve_cache_hits

(* --- concurrent serving under 4 domains ----------------------------------- *)

let test_concurrent_domains () =
  let config = { Serve.Server.domains = 4; cache_capacity = 512 } in
  let t = Serve.Server.create ~config () in
  let pop =
    [ ("gemver", "wisefuse"); ("gemver", "nofuse"); ("tce", "wisefuse");
      ("tce", "smartfuse") ]
  in
  let per_domain = 30 in
  let worker d () =
    List.init per_domain (fun i ->
        let kernel, model = List.nth pop ((d + i) mod List.length pop) in
        let line = request_line ~id:((d * 1000) + i) ~model kernel in
        let _, j = respond t line in
        Alcotest.(check string) "ok" "ok" (str_field j "status");
        (str_field j "key", Obs.Json.to_string (field j "result")))
  in
  let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
  let results = List.concat_map Domain.join domains in
  (* every response for a given key rendered identical bytes *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (key, result) ->
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.add tbl key result
      | Some prior ->
        if prior <> result then
          Alcotest.failf "key %s served two different payloads" key)
    results;
  Alcotest.(check int) "one entry per distinct request" (List.length pop)
    (Hashtbl.length tbl);
  let s = Cache.stats (Serve.Server.cache t) in
  Alcotest.(check int) "every request counted once" (4 * per_domain)
    (s.Cache.hits + s.Cache.misses);
  (* coalescing: concurrent first touches must not solve a key twice *)
  Alcotest.(check int) "misses = distinct keys" (List.length pop)
    s.Cache.misses

(* --- engine selection over the wire ---------------------------------------- *)

let engine_line ~id ~engine kernel =
  Obs.Json.to_string
    (Obs.Json.Obj
       [ ("id", Obs.Json.Int id); ("kernel", Obs.Json.Str kernel);
         ("size", Obs.Json.Int test_size); ("engine", Obs.Json.Str engine) ])

let test_engine_requests () =
  let t = Serve.Server.create () in
  let _, ilp = respond t (engine_line ~id:1 ~engine:"ilp" "gemver") in
  let _, dfp = respond t (engine_line ~id:2 ~engine:"lp-dfp" "gemver") in
  Alcotest.(check string) "ilp request ok" "ok" (str_field ilp "status");
  Alcotest.(check string) "lp-dfp request ok" "ok" (str_field dfp "status");
  if str_field ilp "key" = str_field dfp "key" then
    Alcotest.fail "ilp and lp-dfp must have distinct cache keys";
  let result j = field j "result" in
  Alcotest.(check string) "payload echoes the requested engine" "lp-dfp"
    (str_field (result dfp) "engine");
  (* gemver is far below the auto threshold, so a fixed lp-dfp request
     is the only way this kernel runs the dfp engine *)
  Alcotest.(check string) "lp-dfp actually ran" "lp-dfp"
    (str_field (result dfp) "engine_used");
  Alcotest.(check string) "ilp actually ran" "ilp"
    (str_field (result ilp) "engine_used");
  (* per-engine warm hits are byte-identical to their own cold solve *)
  let _, warm = respond t (engine_line ~id:3 ~engine:"lp-dfp" "gemver") in
  Alcotest.(check string) "warm lp-dfp is a hit" "hit" (str_field warm "cache");
  Alcotest.(check string) "warm lp-dfp byte-identical"
    (Obs.Json.to_string (result dfp))
    (Obs.Json.to_string (result warm));
  (* an explicit auto engine shares the default entry *)
  let _, auto0 = respond t (request_line ~id:4 "gemver") in
  let _, auto1 = respond t (engine_line ~id:5 ~engine:"auto" "gemver") in
  Alcotest.(check string) "explicit auto = default key"
    (str_field auto0 "key") (str_field auto1 "key");
  Alcotest.(check string) "explicit auto hits" "hit" (str_field auto1 "cache");
  (* icc accepts (and ignores) the engine *)
  let _, icc =
    respond t
      {|{"id": 6, "kernel": "gemver", "size": 8, "model": "icc", "engine": "lp-dfp"}|}
  in
  Alcotest.(check string) "icc + engine ok" "ok" (str_field icc "status");
  Alcotest.(check string) "icc used no per-level engine" "none"
    (str_field (result icc) "engine_used");
  (* unknown engines are usage errors *)
  let _, bad = respond t (engine_line ~id:7 ~engine:"simplex" "gemver") in
  Alcotest.(check string) "unknown engine errors" "error"
    (str_field bad "status");
  Alcotest.(check string) "usage code" "usage"
    (str_field (field bad "error") "code")

(* --- protocol corners ------------------------------------------------------ *)

let test_protocol_envelopes () =
  let t = Serve.Server.create () in
  Alcotest.(check bool) "blank line ignored" true
    (Serve.Server.handle_line t "   " = None);
  let _, j = respond t {|{"id": 1, "op": "ping"}|} in
  Alcotest.(check string) "pong ok" "ok" (str_field j "status");
  let _, j = respond t {|{"id": 2, "kernel": "no-such-kernel"}|} in
  Alcotest.(check string) "unknown kernel errors" "error" (str_field j "status");
  Alcotest.(check string) "usage code" "usage"
    (str_field (field j "error") "code");
  let _, j = respond t {|{"id": 3, "op": "frobnicate"}|} in
  Alcotest.(check string) "unknown op errors" "error" (str_field j "status");
  let _, j = respond t {|this is not json|} in
  Alcotest.(check string) "parse error envelope" "error" (str_field j "status");
  Alcotest.(check string) "parse code" "parse"
    (str_field (field j "error") "code");
  let _, j = respond t {|{"id": 4, "op": "stats"}|} in
  let stats = field j "stats" in
  Alcotest.(check bool) "stats has capacity" true
    (Obs.Json.to_int_opt (field stats "cache_capacity") = Some 512);
  Alcotest.(check bool) "not stopping yet" false (Serve.Server.stopping t);
  let _, j = respond t {|{"id": 5, "op": "shutdown"}|} in
  Alcotest.(check string) "shutdown ok" "ok" (str_field j "status");
  Alcotest.(check bool) "stopping after shutdown" true (Serve.Server.stopping t)

let () =
  Alcotest.run "serve"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "stable" `Quick test_fingerprint_stable;
          Alcotest.test_case "sensitivity" `Quick test_fingerprint_sensitivity;
          Alcotest.test_case "alpha-invariant" `Quick
            test_fingerprint_alpha_invariant;
          Alcotest.test_case "deps key" `Quick test_deps_key_deterministic;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "counting + sync" `Quick
            test_cache_counting_and_sync;
        ] );
      ( "server",
        [
          Alcotest.test_case "warm = cold bytes (all kernels x models)" `Slow
            test_warm_cold_identical;
          Alcotest.test_case "concurrent domains" `Quick
            test_concurrent_domains;
          Alcotest.test_case "engine selection" `Quick test_engine_requests;
          Alcotest.test_case "protocol envelopes" `Quick
            test_protocol_envelopes;
        ] );
    ]
