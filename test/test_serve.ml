(* Tests for the wiseserve daemon: structural fingerprints, the
   content-addressed LRU cache, and the server's envelope guarantees —
   above all that a warm response is byte-identical to the cold solve
   that populated it, for every kernel x model pair. *)

module Cache = Serve.Cache

let models = Fusion.Model.all
let model_names = List.map Fusion.Model.name models

let kernels =
  List.map (fun (e : Kernels.Registry.entry) -> e.Kernels.Registry.name)
    Kernels.Registry.all

(* small sizes keep the registry-wide cold solves inside a quick test
   budget; every registry builder accepts n = 8 *)
let test_size = 8

let request_line ?(size = test_size) ?(model = "wisefuse") ~id kernel =
  Obs.Json.to_string
    (Obs.Json.Obj
       [ ("id", Obs.Json.Int id); ("kernel", Obs.Json.Str kernel);
         ("model", Obs.Json.Str model); ("size", Obs.Json.Int size) ])

let respond t line =
  match Serve.Server.handle_line t line with
  | None -> Alcotest.fail "daemon returned nothing for a request"
  | Some r -> (
    match Obs.Json.parse r with
    | Ok j -> (r, j)
    | Error m -> Alcotest.failf "unparseable response %s: %s" r m)

let field j name =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name (Obs.Json.to_string j)

let str_field j name =
  match Obs.Json.to_string_opt (field j name) with
  | Some s -> s
  | None -> Alcotest.failf "%S not a string" name

(* --- warm vs cold: byte identity over the whole registry ----------------- *)

let test_warm_cold_identical () =
  let t = Serve.Server.create () in
  let id = ref 0 in
  List.iter
    (fun kernel ->
      List.iter
        (fun model ->
          incr id;
          let line = request_line ~id:!id ~model kernel in
          let _, cold = respond t line in
          let _, warm = respond t line in
          Alcotest.(check string)
            (kernel ^ "/" ^ model ^ " cold is a miss")
            "miss" (str_field cold "cache");
          Alcotest.(check string)
            (kernel ^ "/" ^ model ^ " warm is a hit")
            "hit" (str_field warm "cache");
          Alcotest.(check string)
            (kernel ^ "/" ^ model ^ " same key")
            (str_field cold "key") (str_field warm "key");
          (* the contract: the cached "result" renders to exactly the
             bytes the cold solve produced *)
          Alcotest.(check string)
            (kernel ^ "/" ^ model ^ " byte-identical result")
            (Obs.Json.to_string (field cold "result"))
            (Obs.Json.to_string (field warm "result"));
          (* and the hit performed zero solver work *)
          let serve = field warm "serve" in
          List.iter
            (fun c ->
              match Obs.Json.to_int_opt (field serve c) with
              | Some 0 -> ()
              | v ->
                Alcotest.failf "%s/%s hit %s = %s" kernel model c
                  (match v with Some n -> string_of_int n | None -> "?"))
            [ "lp_solves"; "lp_pivots"; "dual_pivots"; "ilp_solves"; "bb_nodes" ])
        model_names)
    kernels;
  let s = Cache.stats (Serve.Server.cache t) in
  Alcotest.(check int) "one miss per pair"
    (List.length kernels * List.length models)
    s.Cache.misses;
  Alcotest.(check int) "one hit per pair"
    (List.length kernels * List.length models)
    s.Cache.hits

(* --- fingerprints --------------------------------------------------------- *)

let mini ~name ~arrays ~stmts () =
  (* a 2-statement kernel parameterized over its identifier names, for
     the alpha-invariance checks: b[i] = a[i]*2; c[i] = b[i]+1 *)
  let a_n, b_n, c_n = arrays in
  let s1_n, s2_n = stmts in
  let open Scop.Build in
  let ctx = create ~name ~params:[ ("N", 16) ] in
  let n = param ctx "N" in
  let a = array ctx a_n [ n ] in
  let b = array ctx b_n [ n ] in
  let c = array ctx c_n [ n ] in
  let lb = ci 0 and ub = n -~ ci 1 in
  loop ctx "i" ~lb ~ub (fun i -> assign ctx s1_n b [ i ] (a.%([ i ]) *: f 2.0));
  loop ctx "i" ~lb ~ub (fun i -> assign ctx s2_n c [ i ] (b.%([ i ]) +: f 1.0));
  finish ctx

let test_fingerprint_stable () =
  let wf = Fusion.Model.Wisefuse in
  let p1 = Kernels.Gemver.program ~n:16 () in
  let p2 = Kernels.Gemver.program ~n:16 () in
  Alcotest.(check string) "same content, same key"
    (Serve.Fingerprint.key ~model:wf p1)
    (Serve.Fingerprint.key ~model:wf p2);
  (* MD5 hex: 32 lowercase hex chars *)
  let k = Serve.Fingerprint.key ~model:wf p1 in
  Alcotest.(check int) "key length" 32 (String.length k);
  String.iter
    (fun ch ->
      if not ((ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f')) then
        Alcotest.failf "non-hex key char %c" ch)
    k

let test_fingerprint_sensitivity () =
  let wf = Fusion.Model.Wisefuse in
  let p16 = Kernels.Gemver.program ~n:16 () in
  let p20 = Kernels.Gemver.program ~n:20 () in
  if Serve.Fingerprint.key ~model:wf p16 = Serve.Fingerprint.key ~model:wf p20
  then Alcotest.fail "size change must change the key";
  List.iter
    (fun m ->
      if m <> Fusion.Model.Wisefuse then
        if
          Serve.Fingerprint.key ~model:m p16
          = Serve.Fingerprint.key ~model:wf p16
        then
          Alcotest.failf "model %s shares wisefuse's key" (Fusion.Model.name m))
    models;
  if
    Serve.Fingerprint.key ~model:wf ~param_floor:2 p16
    = Serve.Fingerprint.key ~model:wf ~param_floor:4 p16
  then Alcotest.fail "param floor must be part of the key";
  (* the requested engine is part of the key, pairwise *)
  let ek e = Serve.Fingerprint.key ~engine:e ~model:wf p16 in
  let engine_keys =
    [ ek (Pluto.Engine.Fixed Pluto.Engine.Ilp);
      ek (Pluto.Engine.Fixed Pluto.Engine.Lp_dfp); ek Pluto.Engine.Auto ]
  in
  Alcotest.(check int) "engine choices have distinct keys" 3
    (List.length (List.sort_uniq compare engine_keys));
  Alcotest.(check string) "auto is the default engine"
    (Serve.Fingerprint.key ~model:wf p16)
    (ek Pluto.Engine.Auto);
  (* different kernels never collide *)
  let keys =
    List.map
      (fun k ->
        Serve.Fingerprint.key ~model:wf
          ((Kernels.Registry.find k).Kernels.Registry.program ~n:8 ()))
      kernels
  in
  Alcotest.(check int) "all kernels distinct"
    (List.length kernels)
    (List.length (List.sort_uniq compare keys))

let test_fingerprint_alpha_invariant () =
  (* names don't matter: the fingerprint is structural *)
  let p1 =
    mini ~name:"mini" ~arrays:("a", "b", "c") ~stmts:("S1", "S2") ()
  in
  let p2 =
    mini ~name:"other" ~arrays:("xs", "ys", "zs") ~stmts:("T9", "T10") ()
  in
  Alcotest.(check string) "alpha-renamed programs share a fingerprint"
    (Serve.Fingerprint.program p1)
    (Serve.Fingerprint.program p2);
  (* ... but structure does: swapping which array the second statement
     reads changes the key *)
  let p3 =
    let open Scop.Build in
    let ctx = create ~name:"mini" ~params:[ ("N", 16) ] in
    let n = param ctx "N" in
    let a = array ctx "a" [ n ] in
    let b = array ctx "b" [ n ] in
    let c = array ctx "c" [ n ] in
    let lb = ci 0 and ub = n -~ ci 1 in
    loop ctx "i" ~lb ~ub (fun i -> assign ctx "S1" b [ i ] (a.%([ i ]) *: f 2.0));
    loop ctx "i" ~lb ~ub (fun i -> assign ctx "S2" c [ i ] (a.%([ i ]) +: f 1.0));
    finish ctx
  in
  if Serve.Fingerprint.program p1 = Serve.Fingerprint.program p3 then
    Alcotest.fail "changing a read target must change the fingerprint"

let test_deps_key_deterministic () =
  let prog = Kernels.Gemver.program ~n:16 () in
  let k1 = Serve.Fingerprint.deps_key (Deps.Dep.analyze prog) in
  let k2 = Serve.Fingerprint.deps_key (Deps.Dep.analyze prog) in
  Alcotest.(check string) "deps key deterministic" k1 k2;
  (* order-independence: reversing the list changes nothing *)
  let k3 =
    Serve.Fingerprint.deps_key (List.rev (Deps.Dep.analyze prog))
  in
  Alcotest.(check string) "deps key order-independent" k1 k3

(* --- the cache ------------------------------------------------------------ *)

let payload tag = Obs.Json.Obj [ ("tag", Obs.Json.Str tag) ]

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 in
  Cache.add c "k1" ~payload:(payload "1") ~deps_fp:"d" ~solve_ms:1.0;
  Cache.add c "k2" ~payload:(payload "2") ~deps_fp:"d" ~solve_ms:1.0;
  (* touch k1 so k2 is the least recently used *)
  ignore (Cache.find c "k1");
  Cache.add c "k3" ~payload:(payload "3") ~deps_fp:"d" ~solve_ms:1.0;
  let s = Cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  Alcotest.(check int) "still at capacity" 2 s.Cache.entries;
  Alcotest.(check bool) "LRU entry (k2) gone" true
    (Cache.find_quiet c "k2" = None);
  Alcotest.(check bool) "recently-used k1 kept" true
    (Cache.find_quiet c "k1" <> None);
  Alcotest.(check bool) "new k3 present" true (Cache.find_quiet c "k3" <> None);
  (* re-adding an existing key is a no-op, not an eviction *)
  Cache.add c "k3" ~payload:(payload "3'") ~deps_fp:"d" ~solve_ms:9.0;
  Alcotest.(check int) "no extra eviction" 1 (Cache.stats c).Cache.evictions;
  (match Cache.find_quiet c "k3" with
  | Some e ->
    Alcotest.(check string) "original payload kept" {|{"tag": "3"}|}
      (Obs.Json.to_string e.Cache.payload)
  | None -> Alcotest.fail "k3 vanished");
  match Cache.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must be rejected"

let test_cache_counting_and_sync () =
  let c = Cache.create ~capacity:4 in
  ignore (Cache.find c "absent");
  Cache.add c "k" ~payload:(payload "k") ~deps_fp:"d" ~solve_ms:1.0;
  ignore (Cache.find c "k");
  ignore (Cache.find_quiet c "k") (* quiet: no tally *);
  Cache.count_hit c;
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 2 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses;
  Cache.sync_counters c ~requests:3;
  Alcotest.(check int) "counter hits" 2 !Linalg.Counters.serve_cache_hits;
  Alcotest.(check int) "counter misses" 1 !Linalg.Counters.serve_cache_misses;
  Alcotest.(check int) "counter requests" 3 !Linalg.Counters.serve_requests;
  Linalg.Counters.reset ();
  Alcotest.(check int) "reset clears" 0 !Linalg.Counters.serve_cache_hits

(* --- concurrent serving under 4 domains ----------------------------------- *)

let test_concurrent_domains () =
  let config = { Serve.Server.default_config with domains = 4 } in
  let t = Serve.Server.create ~config () in
  let pop =
    [ ("gemver", "wisefuse"); ("gemver", "nofuse"); ("tce", "wisefuse");
      ("tce", "smartfuse") ]
  in
  let per_domain = 30 in
  let worker d () =
    List.init per_domain (fun i ->
        let kernel, model = List.nth pop ((d + i) mod List.length pop) in
        let line = request_line ~id:((d * 1000) + i) ~model kernel in
        let _, j = respond t line in
        Alcotest.(check string) "ok" "ok" (str_field j "status");
        (str_field j "key", Obs.Json.to_string (field j "result")))
  in
  let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
  let results = List.concat_map Domain.join domains in
  (* every response for a given key rendered identical bytes *)
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (key, result) ->
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.add tbl key result
      | Some prior ->
        if prior <> result then
          Alcotest.failf "key %s served two different payloads" key)
    results;
  Alcotest.(check int) "one entry per distinct request" (List.length pop)
    (Hashtbl.length tbl);
  let s = Cache.stats (Serve.Server.cache t) in
  Alcotest.(check int) "every request counted once" (4 * per_domain)
    (s.Cache.hits + s.Cache.misses);
  (* coalescing: concurrent first touches must not solve a key twice *)
  Alcotest.(check int) "misses = distinct keys" (List.length pop)
    s.Cache.misses

(* --- engine selection over the wire ---------------------------------------- *)

let engine_line ~id ~engine kernel =
  Obs.Json.to_string
    (Obs.Json.Obj
       [ ("id", Obs.Json.Int id); ("kernel", Obs.Json.Str kernel);
         ("size", Obs.Json.Int test_size); ("engine", Obs.Json.Str engine) ])

let test_engine_requests () =
  let t = Serve.Server.create () in
  let _, ilp = respond t (engine_line ~id:1 ~engine:"ilp" "gemver") in
  let _, dfp = respond t (engine_line ~id:2 ~engine:"lp-dfp" "gemver") in
  Alcotest.(check string) "ilp request ok" "ok" (str_field ilp "status");
  Alcotest.(check string) "lp-dfp request ok" "ok" (str_field dfp "status");
  if str_field ilp "key" = str_field dfp "key" then
    Alcotest.fail "ilp and lp-dfp must have distinct cache keys";
  let result j = field j "result" in
  Alcotest.(check string) "payload echoes the requested engine" "lp-dfp"
    (str_field (result dfp) "engine");
  (* gemver is far below the auto threshold, so a fixed lp-dfp request
     is the only way this kernel runs the dfp engine *)
  Alcotest.(check string) "lp-dfp actually ran" "lp-dfp"
    (str_field (result dfp) "engine_used");
  Alcotest.(check string) "ilp actually ran" "ilp"
    (str_field (result ilp) "engine_used");
  (* per-engine warm hits are byte-identical to their own cold solve *)
  let _, warm = respond t (engine_line ~id:3 ~engine:"lp-dfp" "gemver") in
  Alcotest.(check string) "warm lp-dfp is a hit" "hit" (str_field warm "cache");
  Alcotest.(check string) "warm lp-dfp byte-identical"
    (Obs.Json.to_string (result dfp))
    (Obs.Json.to_string (result warm));
  (* an explicit auto engine shares the default entry *)
  let _, auto0 = respond t (request_line ~id:4 "gemver") in
  let _, auto1 = respond t (engine_line ~id:5 ~engine:"auto" "gemver") in
  Alcotest.(check string) "explicit auto = default key"
    (str_field auto0 "key") (str_field auto1 "key");
  Alcotest.(check string) "explicit auto hits" "hit" (str_field auto1 "cache");
  (* icc accepts (and ignores) the engine *)
  let _, icc =
    respond t
      {|{"id": 6, "kernel": "gemver", "size": 8, "model": "icc", "engine": "lp-dfp"}|}
  in
  Alcotest.(check string) "icc + engine ok" "ok" (str_field icc "status");
  Alcotest.(check string) "icc used no per-level engine" "none"
    (str_field (result icc) "engine_used");
  (* unknown engines are usage errors *)
  let _, bad = respond t (engine_line ~id:7 ~engine:"simplex" "gemver") in
  Alcotest.(check string) "unknown engine errors" "error"
    (str_field bad "status");
  Alcotest.(check string) "usage code" "usage"
    (str_field (field bad "error") "code")

(* --- protocol corners ------------------------------------------------------ *)

let test_protocol_envelopes () =
  let t = Serve.Server.create () in
  Alcotest.(check bool) "blank line ignored" true
    (Serve.Server.handle_line t "   " = None);
  let _, j = respond t {|{"id": 1, "op": "ping"}|} in
  Alcotest.(check string) "pong ok" "ok" (str_field j "status");
  let _, j = respond t {|{"id": 2, "kernel": "no-such-kernel"}|} in
  Alcotest.(check string) "unknown kernel errors" "error" (str_field j "status");
  Alcotest.(check string) "usage code" "usage"
    (str_field (field j "error") "code");
  let _, j = respond t {|{"id": 3, "op": "frobnicate"}|} in
  Alcotest.(check string) "unknown op errors" "error" (str_field j "status");
  let _, j = respond t {|this is not json|} in
  Alcotest.(check string) "parse error envelope" "error" (str_field j "status");
  Alcotest.(check string) "parse code" "parse"
    (str_field (field j "error") "code");
  let _, j = respond t {|{"id": 4, "op": "stats"}|} in
  let stats = field j "stats" in
  Alcotest.(check bool) "stats has capacity" true
    (Obs.Json.to_int_opt (field stats "cache_capacity") = Some 512);
  Alcotest.(check bool) "not stopping yet" false (Serve.Server.stopping t);
  let _, j = respond t {|{"id": 5, "op": "shutdown"}|} in
  Alcotest.(check string) "shutdown ok" "ok" (str_field j "status");
  Alcotest.(check bool) "stopping after shutdown" true (Serve.Server.stopping t)

(* --- hardening: firewall, breaker, deadlines, admission, drain ------------ *)

let sched_line ?(size = test_size) ?deadline ~id kernel =
  Obs.Json.to_string
    (Obs.Json.Obj
       (List.concat
          [ [ ("id", Obs.Json.Int id); ("kernel", Obs.Json.Str kernel);
              ("size", Obs.Json.Int size) ];
            (match deadline with
            | Some d -> [ ("deadline_ms", Obs.Json.Int d) ]
            | None -> []) ]))

let error_code j = str_field (field j "error") "code"

let with_chaos f = Fun.protect ~finally:Serve.Chaos.reset f

(* (a) a raising request leaves the solver lock released and the
   counters/Farkas memo scrubbed; (b) the next cold solve is
   byte-identical to an unfaulted run *)
let test_firewall_recovery () =
  with_chaos (fun () ->
      (* unfaulted reference: a fresh server, same config *)
      let reference =
        let t = Serve.Server.create () in
        let _, cold = respond t (sched_line ~id:1 "gemver") in
        Obs.Json.to_string (field cold "result")
      in
      let t = Serve.Server.create () in
      Serve.Chaos.arm_queue [ Serve.Chaos.Raise ];
      let _, faulted = respond t (sched_line ~id:2 "gemver") in
      Alcotest.(check string) "faulted request errors" "error"
        (str_field faulted "status");
      Alcotest.(check string) "typed internal error" "internal"
        (error_code faulted);
      Alcotest.(check int) "one injected raise" 1 !Serve.Chaos.injected_raises;
      (* the poison the fault planted in the counters must be gone *)
      List.iter
        (fun (n, v) ->
          if
            (not (String.length n >= 6 && String.sub n 0 6 = "serve_"))
            && v <> 0
          then Alcotest.failf "counter %s = %d after recovery" n v)
        (Linalg.Counters.all_counters ());
      Alcotest.(check int) "firewall counted the recovery" 1
        !Linalg.Counters.serve_recovered;
      (* solver lock released + clean state: the next cold solve (same
         key, no fault armed) succeeds and is byte-identical to the
         unfaulted reference *)
      let _, cold = respond t (sched_line ~id:3 "gemver") in
      Alcotest.(check string) "next solve is a clean miss" "miss"
        (str_field cold "cache");
      Alcotest.(check string) "post-fault cold solve byte-identical"
        reference
        (Obs.Json.to_string (field cold "result"));
      let _, warm = respond t (sched_line ~id:4 "gemver") in
      Alcotest.(check string) "and caches normally" "hit"
        (str_field warm "cache"))

(* (c) the breaker opens after N failures and closes after the TTL *)
let test_breaker_opens_and_closes () =
  with_chaos (fun () ->
      let config =
        { Serve.Server.default_config with
          breaker_threshold = 2;
          breaker_ttl_s = 0.2;
        }
      in
      let t = Serve.Server.create ~config () in
      Serve.Chaos.arm_queue [ Serve.Chaos.Raise; Serve.Chaos.Raise ];
      let _, f1 = respond t (sched_line ~id:1 "gemver") in
      Alcotest.(check string) "first failure internal" "internal"
        (error_code f1);
      Alcotest.(check int) "breaker still closed" 0
        (Serve.Breaker.open_count (Serve.Server.breaker t));
      let _, f2 = respond t (sched_line ~id:2 "gemver") in
      Alcotest.(check string) "second failure internal" "internal"
        (error_code f2);
      Alcotest.(check int) "breaker open after threshold" 1
        (Serve.Breaker.open_count (Serve.Server.breaker t));
      (* while open: typed rejection, no solve attempted (the chaos
         queue is empty — a solve would succeed and betray itself) *)
      let _, rej = respond t (sched_line ~id:3 "gemver") in
      Alcotest.(check string) "open breaker rejects typed" "breaker"
        (error_code rej);
      Alcotest.(check int) "reject counted" 1
        (Serve.Breaker.rejects (Serve.Server.breaker t));
      Alcotest.(check bool) "trips synced to counters" true
        (!Linalg.Counters.serve_breaker_trips >= 1);
      (* a different fingerprint is unaffected *)
      let _, other = respond t (sched_line ~id:4 "tce") in
      Alcotest.(check string) "other keys still served" "ok"
        (str_field other "status");
      (* after the TTL the half-open probe goes through and closes it *)
      Unix.sleepf 0.25;
      let _, probe = respond t (sched_line ~id:5 "gemver") in
      Alcotest.(check string) "half-open probe solves" "ok"
        (str_field probe "status");
      Alcotest.(check string) "probe was a real miss" "miss"
        (str_field probe "cache");
      Alcotest.(check int) "breaker closed by success" 0
        (Serve.Breaker.open_count (Serve.Server.breaker t)))

(* a slow solve under a tight deadline degrades down the ladder and is
   served but never cached *)
let test_deadline_degrades_uncached () =
  with_chaos (fun () ->
      let t = Serve.Server.create () in
      Serve.Chaos.arm_queue [ Serve.Chaos.Slow 60 ];
      let _, slow = respond t (sched_line ~id:1 ~deadline:10 "gemver") in
      Alcotest.(check string) "slow request still ok" "ok"
        (str_field slow "status");
      let result = field slow "result" in
      Alcotest.(check bool) "degraded result" true
        (Obs.Json.to_bool_opt (field result "degraded") = Some true);
      Alcotest.(check bool) "not the primary rung" true
        (str_field result "rung" <> "primary");
      Alcotest.(check string) "degraded results are not cached" "uncached"
        (str_field slow "cache");
      let serve = field slow "serve" in
      Alcotest.(check bool) "deadline echoed" true
        (Obs.Json.to_int_opt (field serve "deadline_ms") = Some 10);
      (match Obs.Json.to_float_opt (field serve "overrun_ms") with
      | Some o when o > 0.0 -> ()
      | v ->
        Alcotest.failf "expected positive overrun, got %s"
          (match v with Some f -> string_of_float f | None -> "?"));
      (* the key was never poisoned: the next request solves clean at
         full quality and only THAT result is cached *)
      let _, clean = respond t (sched_line ~id:2 ~deadline:10_000 "gemver") in
      Alcotest.(check string) "clean re-solve is a miss" "miss"
        (str_field clean "cache");
      Alcotest.(check bool) "clean result undegraded" true
        (Obs.Json.to_bool_opt (field (field clean "result") "degraded")
        = Some false);
      let _, warm = respond t (sched_line ~id:3 "gemver") in
      Alcotest.(check string) "then hits" "hit" (str_field warm "cache");
      Alcotest.(check string) "warm bytes = clean cold bytes"
        (Obs.Json.to_string (field clean "result"))
        (Obs.Json.to_string (field warm "result")))

(* forced exhaustion degrades to the identity rung, typed, not cached *)
let test_exhaustion_degrades () =
  with_chaos (fun () ->
      let t = Serve.Server.create () in
      Serve.Chaos.arm_queue [ Serve.Chaos.Exhaust ];
      let _, j = respond t (sched_line ~id:1 "tce") in
      Alcotest.(check string) "exhausted request ok" "ok" (str_field j "status");
      Alcotest.(check string) "identity rung" "identity"
        (str_field (field j "result") "rung");
      Alcotest.(check string) "uncached" "uncached" (str_field j "cache");
      Alcotest.(check int) "one injected exhaust" 1
        !Serve.Chaos.injected_exhausts)

let test_oversized_line () =
  let t = Serve.Server.create () in
  (* satellite contract: a 10 MiB line answers a typed error without
     being processed *)
  let huge = String.make (10 * 1024 * 1024) 'x' in
  (match Serve.Server.handle_line t huge with
  | None -> Alcotest.fail "oversized line must be answered"
  | Some r -> (
    match Obs.Json.parse r with
    | Ok j ->
      Alcotest.(check string) "typed oversized error" "oversized" (error_code j)
    | Error m -> Alcotest.failf "unparseable oversized envelope: %s" m));
  (* the bounded reader: refuses the long line without buffering it,
     then keeps the stream framed for the next request *)
  let file = Filename.temp_file "wiseserve" ".in" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc (String.make 4096 'y');
      output_string oc "\n{\"id\":1,\"op\":\"ping\"}\n";
      close_out oc;
      let ic = open_in file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let max = 256 in
          (match Serve.Server.read_line_bounded ic ~max with
          | `Oversized -> ()
          | `Line _ | `Eof -> Alcotest.fail "long line must read Oversized");
          (match Serve.Server.read_line_bounded ic ~max with
          | `Line l ->
            Alcotest.(check string) "stream stays framed"
              {|{"id":1,"op":"ping"}|} l
          | `Oversized | `Eof -> Alcotest.fail "next line lost");
          match Serve.Server.read_line_bounded ic ~max with
          | `Eof -> ()
          | `Line _ | `Oversized -> Alcotest.fail "expected EOF"))

let test_admission_shedding () =
  (* max_pending 0: every schedule request finds the gauge (which
     includes itself) over the mark — deterministic shedding *)
  let config = { Serve.Server.default_config with max_pending = 0 } in
  let t = Serve.Server.create ~config () in
  let _, shed = respond t (sched_line ~id:1 "gemver") in
  Alcotest.(check string) "typed overloaded" "overloaded" (error_code shed);
  Alcotest.(check int) "shed counted" 1 !Linalg.Counters.serve_shed;
  (* protocol ops are never shed *)
  let _, ping = respond t {|{"id": 2, "op": "ping"}|} in
  Alcotest.(check string) "ping served under overload" "ok"
    (str_field ping "status");
  let _, health = respond t {|{"id": 3, "op": "health"}|} in
  let h = field health "health" in
  Alcotest.(check bool) "not ready while overloaded" true
    (Obs.Json.to_bool_opt (field h "ready") = Some false);
  Alcotest.(check bool) "but not draining" true
    (Obs.Json.to_bool_opt (field h "draining") = Some false)

let test_health_and_idempotent_shutdown () =
  let t = Serve.Server.create () in
  let _, health = respond t {|{"id": 1, "op": "health"}|} in
  Alcotest.(check string) "health ok" "ok" (str_field health "status");
  let h = field health "health" in
  Alcotest.(check bool) "ready" true
    (Obs.Json.to_bool_opt (field h "ready") = Some true);
  Alcotest.(check bool) "no open breakers" true
    (Obs.Json.to_int_opt (field h "breaker_open") = Some 0);
  Alcotest.(check bool) "uptime is non-negative" true
    (match Obs.Json.to_float_opt (field h "uptime_s") with
    | Some u -> u >= 0.0
    | None -> false);
  let _, bye1 = respond t {|{"id": 2, "op": "shutdown"}|} in
  Alcotest.(check string) "shutdown ok" "ok" (str_field bye1 "status");
  (* a second shutdown during the drain is answered, not raised *)
  let _, bye2 = respond t {|{"id": 3, "op": "shutdown"}|} in
  Alcotest.(check string) "second shutdown tolerated" "ok"
    (str_field bye2 "status");
  (* new schedule work is rejected while draining, typed *)
  let _, rej = respond t (sched_line ~id:4 "gemver") in
  Alcotest.(check string) "draining rejection" "draining" (error_code rej);
  (* health keeps answering and reports the drain *)
  let _, health = respond t {|{"id": 5, "op": "health"}|} in
  let h = field health "health" in
  Alcotest.(check bool) "draining reported" true
    (Obs.Json.to_bool_opt (field h "draining") = Some true);
  Alcotest.(check bool) "not ready while draining" true
    (Obs.Json.to_bool_opt (field h "ready") = Some false)

let test_deadline_validation () =
  let t = Serve.Server.create () in
  let _, bad = respond t {|{"id": 1, "kernel": "gemver", "deadline_ms": -5}|} in
  Alcotest.(check string) "negative deadline is a usage error" "usage"
    (error_code bad);
  let _, bad = respond t {|{"id": 2, "kernel": "gemver", "deadline_ms": "x"}|} in
  Alcotest.(check string) "non-integer deadline is a usage error" "usage"
    (error_code bad)

(* --- telemetry: metrics op, snapshot, sampling, access log ---------------- *)

let test_metrics_op () =
  let t = Serve.Server.create () in
  let tel = Serve.Server.telemetry t in
  ignore (respond t {|{"id": 1, "op": "ping"}|});
  ignore (respond t (sched_line ~id:2 "gemver")); (* cold *)
  ignore (respond t (sched_line ~id:3 "gemver")); (* hit *)
  ignore (respond t {|garbage|}); (* parse error *)
  Alcotest.(check int) "requests counted" 4
    (Serve.Telemetry.requests_total tel);
  Alcotest.(check int) "one hit" 1 (Serve.Telemetry.outcome_total tel "hit");
  Alcotest.(check int) "one cold" 1 (Serve.Telemetry.outcome_total tel "cold");
  Alcotest.(check int) "one parse" 1
    (Serve.Telemetry.outcome_total tel "parse");
  Alcotest.(check int) "one ping" 1 (Serve.Telemetry.op_total tel "ping");
  (* the scrape op: a valid envelope carrying the exposition text,
     rendered before the scrape itself is recorded *)
  let _, j = respond t {|{"id": 5, "op": "metrics"}|} in
  Alcotest.(check string) "metrics ok" "ok" (str_field j "status");
  let m = field j "metrics" in
  Alcotest.(check string) "format" "prometheus-text-0.0.4"
    (str_field m "format");
  let text = str_field m "text" in
  let contains needle =
    let n = String.length needle and l = String.length text in
    let rec go i =
      i + n <= l && (String.sub text i n = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "requests_total sample" true
    (contains "wisefuse_serve_requests_total 4");
  Alcotest.(check bool) "hit outcome sample" true
    (contains {|wisefuse_serve_outcomes_total{outcome="hit"} 1|});
  Alcotest.(check bool) "hit duration histogram" true
    (contains {|wisefuse_request_duration_us_count{class="hit"} 1|});
  Alcotest.(check bool) "cache counters ride along" true
    (contains "wisefuse_cache_hits_total 1");
  Alcotest.(check int) "scrape recorded as an op" 1
    (Serve.Telemetry.op_total tel "metrics");
  (* requests_total == sum outcomes + sum ops, the wire invariant *)
  let sum l = List.fold_left (fun a (_, v) -> a + v) 0 l in
  Alcotest.(check int) "totals reconcile"
    (Serve.Telemetry.requests_total tel)
    (sum (Serve.Telemetry.outcome_totals tel)
    + sum (Serve.Telemetry.op_totals tel));
  (* health carries the compact snapshot *)
  let _, health = respond t {|{"id": 6, "op": "health"}|} in
  let snap = field (field health "health") "snapshot" in
  Alcotest.(check bool) "snapshot.requests" true
    (Obs.Json.to_int_opt (field snap "requests") = Some 5);
  Alcotest.(check bool) "snapshot.hit" true
    (Obs.Json.to_int_opt (field snap "hit") = Some 1);
  (* a metrics-disabled server answers the op with a comment line and
     counts nothing *)
  let off =
    Serve.Server.create
      ~config:{ Serve.Server.default_config with metrics = false }
      ()
  in
  ignore (respond off (sched_line ~id:1 "gemver"));
  let _, j = respond off {|{"id": 2, "op": "metrics"}|} in
  let text = str_field (field j "metrics") "text" in
  Alcotest.(check bool) "disabled exposition is a comment" true
    (String.length text > 0 && text.[0] = '#');
  Alcotest.(check int) "disabled records nothing" 0
    (Serve.Telemetry.requests_total (Serve.Server.telemetry off))

let is_hex s =
  s <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       s

let test_trace_sampling () =
  (* every 2nd request samples a span trace; the result payload stays
     byte-identical to an unsampled server's *)
  let reference =
    let t = Serve.Server.create () in
    let _, cold = respond t (sched_line ~id:1 "gemver") in
    Obs.Json.to_string (field cold "result")
  in
  let t =
    Serve.Server.create
      ~config:{ Serve.Server.default_config with trace_sample = 2 }
      ()
  in
  let _, first = respond t (sched_line ~id:1 "gemver") in
  Alcotest.(check string) "sampled result byte-identical" reference
    (Obs.Json.to_string (field first "result"));
  let tid = str_field first "trace_id" in
  Alcotest.(check bool) "trace_id is 16 hex chars" true
    (String.length tid = 16 && is_hex tid);
  let trace = field first "trace" in
  (match Obs.Json.to_int_opt (field trace "events") with
  | Some n when n > 0 -> ()
  | _ -> Alcotest.fail "sampled trace has no events");
  (match Obs.Json.to_list_opt (field trace "spans") with
  | Some (_ :: _ as spans) ->
    List.iter
      (fun s ->
        ignore (field s "name");
        ignore (field s "cat");
        ignore (field s "us"))
      spans
  | _ -> Alcotest.fail "sampled trace has no spans");
  (* the sampler must not leave the domain's tracer running *)
  Alcotest.(check bool) "tracer off after sampled request" false
    (Obs.Trace.on ());
  (* second request (n = 1) is unsampled: no trace fields, same bytes *)
  let _, second = respond t (sched_line ~id:2 "gemver") in
  Alcotest.(check bool) "unsampled has no trace_id" true
    (Obs.Json.member "trace_id" second = None);
  Alcotest.(check string) "warm hit result identical" reference
    (Obs.Json.to_string (field second "result"));
  (* third (n = 2) samples again — now a cache hit with its own id *)
  let _, third = respond t (sched_line ~id:3 "gemver") in
  let tid3 = str_field third "trace_id" in
  Alcotest.(check bool) "distinct trace ids" true (tid <> tid3)

let test_access_log () =
  let path = Filename.temp_file "wisefuse_access" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let t =
        Serve.Server.create
          ~config:
            { Serve.Server.default_config with access_log = Some path }
          ()
      in
      ignore (respond t (sched_line ~id:1 "gemver")); (* cold *)
      ignore (respond t (sched_line ~id:2 "gemver")); (* hit *)
      ignore (respond t {|{"id": 3, "op": "ping"}|});
      ignore (respond t {|garbage|});
      Serve.Server.close t;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      let lines = List.rev !lines in
      Alcotest.(check int) "one line per answered request" 4
        (List.length lines);
      let outcomes =
        List.map
          (fun line ->
            match Obs.Json.parse line with
            | Error m -> Alcotest.failf "access line unparseable: %s" m
            | Ok j ->
              (* every line carries the core fields *)
              ignore (field j "ts");
              ignore (field j "id");
              ignore (field j "wall_us");
              ignore (str_field j "status");
              str_field j "outcome")
          lines
      in
      Alcotest.(check (list string))
        "outcomes in order" [ "cold"; "hit"; "ping"; "parse" ] outcomes;
      (* the hit line carries the cache verdict and the key *)
      (match Obs.Json.parse (List.nth lines 1) with
      | Ok j ->
        Alcotest.(check string) "hit cache field" "hit" (str_field j "cache");
        Alcotest.(check bool) "hit carries key" true
          (String.length (str_field j "key") = 32)
      | Error _ -> assert false);
      (* close is idempotent, and a new server appends *)
      Serve.Server.close t;
      let t2 =
        Serve.Server.create
          ~config:
            { Serve.Server.default_config with access_log = Some path }
          ()
      in
      ignore (respond t2 {|{"id": 5, "op": "ping"}|});
      Serve.Server.close t2;
      let ic = open_in path in
      let n = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr n
         done
       with End_of_file -> ());
      close_in ic;
      Alcotest.(check int) "restart appends" 5 !n)

let test_metrics_monotone_across_recovery () =
  (* fault recovery scrubs Linalg.Counters (per-request deltas), but
     the cumulative telemetry must keep counting through it *)
  with_chaos (fun () ->
      let t = Serve.Server.create () in
      let tel = Serve.Server.telemetry t in
      ignore (respond t (sched_line ~id:1 "gemver"))(* cold *);
      let before = Serve.Telemetry.requests_total tel in
      Alcotest.(check int) "one request before the fault" 1 before;
      Serve.Chaos.arm_queue [ Serve.Chaos.Raise ];
      let _, faulted = respond t (sched_line ~id:2 "tce") in
      Alcotest.(check string) "typed internal error" "internal"
        (error_code faulted);
      (* the scrub zeroed the per-request counters — the telemetry
         kept going *)
      Alcotest.(check int) "requests grew through recovery" 2
        (Serve.Telemetry.requests_total tel);
      Alcotest.(check int) "internal outcome counted" 1
        (Serve.Telemetry.outcome_total tel "internal");
      ignore (respond t (sched_line ~id:3 "tce"));
      Alcotest.(check int) "still monotone after the clean retry" 3
        (Serve.Telemetry.requests_total tel);
      Alcotest.(check int) "cold solves accumulate" 2
        (Serve.Telemetry.outcome_total tel "cold"))

let () =
  Alcotest.run "serve"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "stable" `Quick test_fingerprint_stable;
          Alcotest.test_case "sensitivity" `Quick test_fingerprint_sensitivity;
          Alcotest.test_case "alpha-invariant" `Quick
            test_fingerprint_alpha_invariant;
          Alcotest.test_case "deps key" `Quick test_deps_key_deterministic;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "counting + sync" `Quick
            test_cache_counting_and_sync;
        ] );
      ( "server",
        [
          Alcotest.test_case "warm = cold bytes (all kernels x models)" `Slow
            test_warm_cold_identical;
          Alcotest.test_case "concurrent domains" `Quick
            test_concurrent_domains;
          Alcotest.test_case "engine selection" `Quick test_engine_requests;
          Alcotest.test_case "protocol envelopes" `Quick
            test_protocol_envelopes;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "firewall recovery" `Quick test_firewall_recovery;
          Alcotest.test_case "breaker opens and closes" `Quick
            test_breaker_opens_and_closes;
          Alcotest.test_case "deadline degrades, uncached" `Quick
            test_deadline_degrades_uncached;
          Alcotest.test_case "exhaustion degrades" `Quick
            test_exhaustion_degrades;
          Alcotest.test_case "oversized line" `Quick test_oversized_line;
          Alcotest.test_case "admission shedding" `Quick
            test_admission_shedding;
          Alcotest.test_case "health + idempotent shutdown" `Quick
            test_health_and_idempotent_shutdown;
          Alcotest.test_case "metrics op + snapshot" `Quick test_metrics_op;
          Alcotest.test_case "trace sampling" `Quick test_trace_sampling;
          Alcotest.test_case "access log" `Quick test_access_log;
          Alcotest.test_case "metrics monotone across recovery" `Quick
            test_metrics_monotone_across_recovery;
          Alcotest.test_case "deadline validation" `Quick
            test_deadline_validation;
        ] );
    ]
