(* Standalone envelope validator for the CI serve job.

   Two modes:

     serve_check                 - validate daemon response lines on stdin
                                   (CI pipes the stdio daemon's output here)
     serve_check --connect PATH --requests FILE
                                 - connect to the daemon's Unix socket, send
                                   every request line from FILE, validate the
                                   responses

   Checks per line: well-formed JSON; "id" present; "status" ok|error;
   error envelopes carry {"error": {"code", "message"}}; ok schedule
   envelopes carry a 32-hex "key", "cache" hit|miss|uncached (uncached
   = a degraded solve the daemon refused to store), a "serve" section
   with wall_us, the five solver counters and — when the request ran
   under a deadline — deadline_ms/overrun_ms, and a complete "result"
   (schedule, partition, wisecheck, explain, counters) whose wisecheck
   verdict is certified. Cache hits must report zero solver work — the
   proof that cached schedules bypass the LP/B&B machinery. Health
   envelopes must carry the full readiness/backlog/breaker gauge set
   plus the telemetry "snapshot"; metrics envelopes must carry a
   Prometheus text exposition (deep syntax checks live in
   metrics_check). Exits 1 on any violation, with a per-class summary
   on stdout either way. *)

let violations = ref 0
let seen = ref 0
let hits = ref 0
let misses = ref 0
let uncached = ref 0
let errors = ref 0
let others = ref 0

let fail line fmt =
  Printf.ksprintf
    (fun msg ->
      incr violations;
      Printf.printf "BAD %s\n  in: %s\n" msg line)
    fmt

let solver_counters =
  [ "lp_solves"; "lp_pivots"; "dual_pivots"; "ilp_solves"; "bb_nodes" ]

let is_hex32 s =
  String.length s = 32
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       s

let check_schedule line j =
  let member = Obs.Json.member in
  (match Option.bind (member "key" j) Obs.Json.to_string_opt with
  | Some k when is_hex32 k -> ()
  | Some k -> fail line "key %S is not 32 hex chars" k
  | None -> fail line "schedule response lacks a key");
  let cache = Option.bind (member "cache" j) Obs.Json.to_string_opt in
  (match cache with
  | Some "hit" -> incr hits
  | Some "miss" -> incr misses
  | Some "uncached" -> incr uncached
  | _ -> fail line {|"cache" must be "hit", "miss" or "uncached"|});
  (match member "serve" j with
  | None -> fail line {|schedule response lacks a "serve" section|}
  | Some serve ->
    (match Option.bind (member "wall_us" serve) Obs.Json.to_float_opt with
    | Some w when Float.is_finite w && w >= 0.0 -> ()
    | _ -> fail line "serve.wall_us missing or not a non-negative number");
    (* deadline accounting is optional but must be well-formed as a pair *)
    (match
       ( Option.bind (member "deadline_ms" serve) Obs.Json.to_int_opt,
         Option.bind (member "overrun_ms" serve) Obs.Json.to_float_opt )
     with
    | None, None -> ()
    | Some d, Some o when d > 0 && Float.is_finite o && o >= 0.0 -> ()
    | _ -> fail line "serve deadline_ms/overrun_ms malformed or unpaired");
    List.iter
      (fun c ->
        match Option.bind (member c serve) Obs.Json.to_int_opt with
        | Some n ->
          if cache = Some "hit" && n <> 0 then
            fail line "cache hit performed solver work: %s = %d" c n
        | None -> fail line "serve section lacks counter %s" c)
      solver_counters);
  match member "result" j with
  | None -> fail line {|schedule response lacks a "result"|}
  | Some result ->
    List.iter
      (fun f ->
        if member f result = None then fail line "result lacks %S" f)
      [ "kernel"; "model"; "size"; "engine"; "engine_used"; "rung";
        "schedule"; "partition"; "wisecheck"; "explain"; "counters" ];
    (match member "wisecheck" result with
    | None -> ()
    | Some wc -> (
      match Option.bind (member "certified" wc) Obs.Json.to_bool_opt with
      | Some true -> ()
      | Some false -> fail line "served schedule is not wisecheck-certified"
      | None -> fail line "wisecheck verdict lacks \"certified\""))

let check_line line =
  let line = String.trim line in
  if line <> "" then begin
    incr seen;
    match Obs.Json.parse line with
    | Error msg -> fail line "unparseable response: %s" msg
    | Ok j -> (
      let member = Obs.Json.member in
      if member "id" j = None then fail line {|response lacks an "id"|};
      match Option.bind (member "status" j) Obs.Json.to_string_opt with
      | Some "ok" ->
        if member "key" j <> None || member "result" j <> None then
          check_schedule line j
        else begin
          (match member "health" j with
          | None -> ()
          | Some h ->
            List.iter
              (fun f ->
                if member f h = None then fail line "health lacks %S" f)
              [ "ready"; "draining"; "backlog"; "max_pending"; "breaker_open";
                "uptime_s"; "cache_entries"; "snapshot" ];
            match member "snapshot" h with
            | None -> ()
            | Some snap ->
              List.iter
                (fun f ->
                  match Option.bind (member f snap) Obs.Json.to_int_opt with
                  | Some n when n >= 0 -> ()
                  | _ -> fail line "health snapshot lacks counter %S" f)
                [ "requests"; "hit"; "coalesced"; "cold"; "degraded";
                  "errors"; "ops" ]);
          (match member "metrics" j with
          | None -> ()
          | Some m ->
            (match Option.bind (member "format" m) Obs.Json.to_string_opt with
            | Some "prometheus-text-0.0.4" -> ()
            | _ -> fail line {|metrics lacks format "prometheus-text-0.0.4"|});
            match Option.bind (member "text" m) Obs.Json.to_string_opt with
            | Some t when String.length t > 0 && t.[0] = '#' -> ()
            | _ -> fail line "metrics.text missing or not an exposition");
          incr others (* pong / stats / health / metrics / bye *)
        end
      | Some "error" -> (
        incr errors;
        match member "error" j with
        | None -> fail line "error response lacks an \"error\" object"
        | Some e ->
          List.iter
            (fun f ->
              match Option.bind (member f e) Obs.Json.to_string_opt with
              | Some _ -> ()
              | None -> fail line "error object lacks %S" f)
            [ "code"; "message" ])
      | _ -> fail line {|"status" must be "ok" or "error"|})
  end

let validate_channel ic =
  try
    while true do
      check_line (input_line ic)
    done
  with End_of_file -> ()

(* socket-client mode: replay a request file against a live daemon *)
let connect_and_check path requests_file =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  let reqs = open_in requests_file in
  let sent = ref 0 in
  (try
     while true do
       let line = String.trim (input_line reqs) in
       (* '#' comments let the request script document itself *)
       if line <> "" && line.[0] <> '#' then begin
         output_string oc line;
         output_char oc '\n';
         flush oc;
         incr sent;
         check_line (input_line ic)
       end
     done
   with End_of_file -> ());
  close_in reqs;
  close_out_noerr oc;
  if !seen < !sent then begin
    incr violations;
    Printf.printf "BAD daemon answered %d of %d requests\n" !seen !sent
  end

let () =
  (match Array.to_list Sys.argv with
  | [ _ ] -> validate_channel stdin
  | [ _; "--connect"; path; "--requests"; file ] -> connect_and_check path file
  | _ ->
    prerr_endline
      "usage: serve_check [--connect SOCKET --requests FILE]  (or pipe \
       responses to stdin)";
    exit 2);
  Printf.printf
    "serve_check: %d responses (%d hits, %d misses, %d uncached, %d errors, \
     %d other), %d violations\n"
    !seen !hits !misses !uncached !errors !others !violations;
  if !seen = 0 then begin
    Printf.printf "serve_check: no responses seen\n";
    exit 1
  end;
  exit (if !violations = 0 then 0 else 1)
