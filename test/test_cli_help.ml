(* Guard against --help drift: the top-level help must mention every
   subcommand, every documented exit code and the engine knob. We
   assert on substrings rather than a byte-exact golden file so the
   test survives cmdliner's formatting changes across versions. *)

let binary =
  (* dune places the test runner in _build/default/test/ and the CLI in
     _build/default/bin/; the stanza's deps clause guarantees it exists *)
  Filename.concat (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "wisefuse_cli.exe")

let run_help args =
  let cmd =
    Printf.sprintf "%s %s 2>/dev/null" (Filename.quote binary)
      (String.concat " " args)
  in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  (match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.failf "%s: non-zero exit" cmd);
  Buffer.contents buf

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_mentions what text needles =
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "%s mentions %S" what needle)
        true (contains text needle))
    needles

let subcommands =
  [
    "list"; "show"; "deps"; "opt"; "emit"; "sim"; "analyze"; "trace";
    "explain"; "serve";
  ]

let test_top_help () =
  let text = run_help [ "--help=plain" ] in
  check_mentions "top help" text subcommands;
  (* the exit-code table documents the pipeline-phase codes *)
  check_mentions "top help" text
    [
      "usage error"; "budget exhausted"; "scheduling failed";
      "verification failed"; "code generation failed"; "wisecheck findings";
    ]

let test_opt_help () =
  let text = run_help [ "opt"; "--help=plain" ] in
  check_mentions "opt help" text [ "--engine"; "lp-dfp"; "auto"; "--tile" ]

let test_serve_help () =
  (* the hardening knobs must stay documented *)
  let text = run_help [ "serve"; "--help=plain" ] in
  check_mentions "serve help" text
    [
      "--max-pending"; "--deadline-ms"; "--max-deadline-ms";
      "--max-line-bytes"; "--breaker-threshold"; "--breaker-ttl";
    ]

let test_engine_everywhere () =
  (* every pipeline subcommand that runs the optimizer takes --engine *)
  List.iter
    (fun sub ->
      let text = run_help [ sub; "--help=plain" ] in
      check_mentions (sub ^ " help") text [ "--engine" ])
    [ "opt"; "emit"; "sim"; "analyze"; "trace"; "explain" ]

let () =
  Alcotest.run "cli_help"
    [
      ( "help",
        [
          Alcotest.test_case "top-level" `Quick test_top_help;
          Alcotest.test_case "opt flags" `Quick test_opt_help;
          Alcotest.test_case "serve flags" `Quick test_serve_help;
          Alcotest.test_case "--engine everywhere" `Quick
            test_engine_everywhere;
        ] );
    ]
