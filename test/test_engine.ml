(* Differential tests of the pluggable scheduling engines: the lp-dfp
   path (LP relaxation + clustering) against the branch-and-bound ILP
   reference, over the whole kernel registry and the generated
   large-SCoP shapes. *)

let polyhedral_models =
  List.filter (fun m -> m <> Fusion.Model.Icc) Fusion.Model.all

(* --- engine selection ----------------------------------------------------- *)

let test_engine_names () =
  List.iter
    (fun (s, c) ->
      Alcotest.(check bool) (s ^ " parses") true (Pluto.Engine.of_string s = Some c);
      Alcotest.(check string) (s ^ " round-trips") s (Pluto.Engine.choice_name c))
    [
      ("ilp", Pluto.Engine.Fixed Pluto.Engine.Ilp);
      ("lp-dfp", Pluto.Engine.Fixed Pluto.Engine.Lp_dfp);
      ("auto", Pluto.Engine.Auto);
    ];
  Alcotest.(check bool) "unknown rejected" true
    (Pluto.Engine.of_string "simplex" = None)

let test_engine_resolve () =
  let t = Pluto.Engine.auto_threshold in
  Alcotest.(check bool) "auto below threshold -> ilp" true
    (Pluto.Engine.resolve Pluto.Engine.Auto ~nstmts:(t - 1) = Pluto.Engine.Ilp);
  Alcotest.(check bool) "auto at threshold -> lp-dfp" true
    (Pluto.Engine.resolve Pluto.Engine.Auto ~nstmts:t = Pluto.Engine.Lp_dfp);
  Alcotest.(check bool) "fixed wins regardless of size" true
    (Pluto.Engine.resolve (Pluto.Engine.Fixed Pluto.Engine.Ilp) ~nstmts:1000
    = Pluto.Engine.Ilp);
  (* every registry kernel stays on the exact engine under Auto, so the
     10-kernel suite is unchanged by this PR *)
  List.iter
    (fun (e : Kernels.Registry.entry) ->
      let prog = Kernels.Registry.build e in
      Alcotest.(check bool)
        (e.name ^ " resolves to ilp under auto")
        true
        (Pluto.Engine.resolve Pluto.Engine.Auto
           ~nstmts:(Array.length prog.Scop.Program.stmts)
        = Pluto.Engine.Ilp))
    Kernels.Registry.all

(* --- one engine run ------------------------------------------------------- *)

(* Run one (kernel, config) pair on a fixed engine. The scheduler's
   always-on exit verification already enforces check_complete +
   check_legal on every result; we re-assert both here so a future
   change to that invariant fails loudly, and additionally require
   wisecheck's independent race certification of the generated AST. *)
let run_engine name cfg prog deps kind =
  let r =
    Pluto.Scheduler.run_with_deps ~engine:(Pluto.Engine.Fixed kind) cfg prog
      deps
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s/%s: engine recorded" name (Pluto.Engine.kind_name kind))
    true
    (r.Pluto.Scheduler.engine = kind);
  (match Pluto.Satisfy.check_complete prog r.Pluto.Scheduler.sched with
  | Ok () -> ()
  | Error d -> Alcotest.failf "%s: incomplete: %s" name d.Pluto.Diagnostics.code);
  (match
     Pluto.Satisfy.check_legal prog r.Pluto.Scheduler.true_deps
       r.Pluto.Scheduler.sched
   with
  | Ok () -> ()
  | Error (d : Deps.Dep.t) ->
    Alcotest.failf "%s: illegal dep S%d->S%d" name d.src d.dst);
  let ast = Codegen.Scan.of_result r in
  let findings =
    Analysis.Race.check prog r.Pluto.Scheduler.all_deps r.Pluto.Scheduler.sched
      ast
  in
  (match
     List.find_opt
       (fun (f : Analysis.Finding.t) ->
         f.Analysis.Finding.kind = Analysis.Finding.Racy_parallel)
       findings
   with
  | Some f -> Alcotest.failf "%s: racy parallel mark: %s" name f.message
  | None -> ());
  r

(* --- kernels x models differential ---------------------------------------- *)

(* Kernels on which the clustering recovery is exact for every model:
   the lp-dfp schedule lands in the same fusion partition as the ILP
   one. Kernels whose LP vertices round differently may fuse
   differently (still legal + certified); they are listed in [inexact]
   so a change in either direction is caught. *)
let exact_kernels =
  [ "advect"; "applu"; "bt"; "gemsfdtd"; "gemver"; "lu"; "sp"; "swim"; "tce"; "wupwise" ]

let test_differential () =
  List.iter
    (fun (e : Kernels.Registry.entry) ->
      let prog = Kernels.Registry.build e in
      let deps = Deps.Dep.analyze prog in
      List.iter
        (fun m ->
          let cfg = Fusion.Model.scheduler_config m in
          let name = Printf.sprintf "%s/%s" e.name (Fusion.Model.name m) in
          let ilp = run_engine name cfg prog deps Pluto.Engine.Ilp in
          let dfp = run_engine name cfg prog deps Pluto.Engine.Lp_dfp in
          let agree =
            Pluto.Scheduler.partitions ilp = Pluto.Scheduler.partitions dfp
          in
          if List.mem e.name exact_kernels then
            Alcotest.(check bool)
              (name ^ ": fusion partitions agree")
              true agree)
        polyhedral_models)
    Kernels.Registry.all

(* icc has no scheduler, but the engine knob must still be accepted
   end-to-end (the daemon passes it for every model) *)
let test_icc_engine_ignored () =
  let prog = Kernels.Registry.build (Kernels.Registry.find "gemver") in
  let o =
    Fusion.Model.optimize
      ~engine:(Pluto.Engine.Fixed Pluto.Engine.Lp_dfp)
      Fusion.Model.Icc prog
  in
  Alcotest.(check bool) "icc ran" true (o.Fusion.Model.icc <> None)

(* --- generated large SCoPs ------------------------------------------------ *)

(* On the generated shapes the lp-dfp happy path must hold: a legal,
   certified schedule with not a single branch-and-bound node. *)
let test_large_scops () =
  List.iter
    (fun shape ->
      let prog = Kernels.Scopgen.generate shape ~stmts:60 in
      let deps = Deps.Dep.analyze prog in
      let cfg = Fusion.Model.scheduler_config Fusion.Model.Wisefuse in
      Linalg.Counters.reset ();
      let name = "scopgen-" ^ Kernels.Scopgen.shape_name shape in
      let r = run_engine name cfg prog deps Pluto.Engine.Lp_dfp in
      Alcotest.(check int)
        (name ^ ": zero B&B nodes on the lp-dfp path")
        0 !Linalg.Counters.bb_nodes;
      Alcotest.(check bool)
        (name ^ ": LP relaxations ran")
        true
        (!Linalg.Counters.lp_relax_solves > 0);
      Alcotest.(check bool)
        (name ^ ": clustering ran")
        true
        (!Linalg.Counters.cluster_rounds > 0);
      (* auto selects lp-dfp for programs this large *)
      let auto =
        Pluto.Scheduler.run_with_deps ~engine:Pluto.Engine.Auto cfg prog deps
      in
      Alcotest.(check bool)
        (name ^ ": auto resolves to lp-dfp at 60 stmts")
        true
        (auto.Pluto.Scheduler.engine = Pluto.Engine.Lp_dfp);
      ignore r)
    Kernels.Scopgen.all_shapes

(* --- the Lp_relaxed resilience rung --------------------------------------- *)

(* A node budget of zero kills every branch-and-bound solve but charges
   pure LP nothing: the primary (ILP) attempt must fail, and the ladder
   must settle on the lp-relaxed rung without touching distribution. *)
let test_lp_relaxed_rung () =
  let prog = Kernels.Scopgen.generate Kernels.Scopgen.Chain ~stmts:12 in
  let budget = Linalg.Budget.make ~nodes:0 () in
  let o =
    Fusion.Resilient.optimize ~budget
      ~config:(Fusion.Model.scheduler_config Fusion.Model.Wisefuse)
      prog
  in
  Alcotest.(check string) "settled on lp-relaxed" "lp-relaxed"
    (Fusion.Resilient.rung_name o.Fusion.Resilient.rung);
  Alcotest.(check bool) "degraded" true (Fusion.Resilient.degraded o);
  Alcotest.(check int) "one note (the primary failure)" 1
    (List.length o.Fusion.Resilient.notes)

let () =
  Alcotest.run "engine"
    [
      ( "selection",
        [
          Alcotest.test_case "names" `Quick test_engine_names;
          Alcotest.test_case "resolve" `Quick test_engine_resolve;
        ] );
      ( "differential",
        [
          Alcotest.test_case "kernels x models" `Slow test_differential;
          Alcotest.test_case "icc ignores engine" `Quick test_icc_engine_ignored;
        ] );
      ( "scale",
        [
          Alcotest.test_case "generated large SCoPs" `Slow test_large_scops;
          Alcotest.test_case "lp-relaxed rung" `Quick test_lp_relaxed_rung;
        ] );
    ]
