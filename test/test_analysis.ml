(* Tests for lib/analysis (wisecheck).

   Three kinds of evidence:
   - the parallelism vocabulary round-trips with its source of truth,
     Pluto.Satisfy.loop_class;
   - legitimate pipelines certify with zero error-severity findings;
   - seeded bugs — a flipped parallel mark, a widened / narrowed loop
     bound, a dropped guard row — are each reported with the exact
     finding kind, severity and location. *)

open Codegen

(* --- tiny programs --------------------------------------------------------- *)

(* a[i] = a[i-1] + b[i]: the outer loop carries a flow dependence *)
let recurrence () =
  let open Scop.Build in
  let ctx = create ~name:"rec" ~params:[ ("N", 12) ] in
  let n = param ctx "N" in
  let a = array ctx "A" [ n ] in
  let b = array ctx "B" [ n ] in
  loop ctx "i" ~lb:(ci 1)
    ~ub:(n -~ ci 1)
    (fun i -> assign ctx "S0" a [ i ] (a.%([ i -~ ci 1 ]) +: b.%([ i ])));
  finish ctx

(* c[i] = b[i]: fully parallel *)
let copy () =
  let open Scop.Build in
  let ctx = create ~name:"copy" ~params:[ ("N", 12) ] in
  let n = param ctx "N" in
  let b = array ctx "B" [ n ] in
  let c = array ctx "C" [ n ] in
  loop ctx "i" ~lb:(ci 0)
    ~ub:(n -~ ci 1)
    (fun i -> assign ctx "S0" c [ i ] (b.%([ i ])));
  finish ctx

(* an imperfect nest: S1 sits one level shallower than S0, so its
   instance carries a constant-row guard at loop level 1 *)
let imperfect () =
  let open Scop.Build in
  let ctx = create ~name:"imp" ~params:[ ("N", 10) ] in
  let n = param ctx "N" in
  let a = array ctx "A" [ n; n ] in
  let c = array ctx "C" [ n ] in
  loop ctx "i" ~lb:(ci 0)
    ~ub:(n -~ ci 1)
    (fun i ->
      loop ctx "j" ~lb:(ci 0)
        ~ub:(n -~ ci 1)
        (fun j -> assign ctx "S0" a [ i; j ] (a.%([ i; j ]) +: f 1.0)));
  loop ctx "i" ~lb:(ci 0)
    ~ub:(n -~ ci 1)
    (fun i -> assign ctx "S1" c [ i ] (f 2.0));
  finish ctx

(* t overwritten before any read: S0 is a dead write; S0 -> S2 is
   transitively implied via S1 *)
let chain () =
  let open Scop.Build in
  let ctx = create ~name:"chain" ~params:[ ("N", 10) ] in
  let n = param ctx "N" in
  let b = array ctx "B" [ n ] in
  let t = array ctx "T" [ n ] in
  let u = array ctx "U" [ n ] in
  let v = array ctx "V" [ n ] in
  let full body = loop ctx "i" ~lb:(ci 0) ~ub:(n -~ ci 1) body in
  full (fun i -> assign ctx "S0" t [ i ] (b.%([ i ])));
  full (fun i -> assign ctx "S1" u [ i ] (t.%([ i ])));
  full (fun i -> assign ctx "S2" v [ i ] (t.%([ i ]) +: u.%([ i ])));
  finish ctx

let dead_write () =
  let open Scop.Build in
  let ctx = create ~name:"dead" ~params:[ ("N", 10) ] in
  let n = param ctx "N" in
  let b = array ctx "B" [ n ] in
  let c = array ctx "C" [ n ] in
  let t = array ctx "T" [ n ] in
  let full body = loop ctx "i" ~lb:(ci 0) ~ub:(n -~ ci 1) body in
  full (fun i -> assign ctx "S0" t [ i ] (b.%([ i ])));
  full (fun i -> assign ctx "S1" t [ i ] (c.%([ i ])));
  finish ctx

(* --- helpers --------------------------------------------------------------- *)

let identity_pipeline prog =
  let deps = Deps.Dep.analyze prog in
  let sched = Scan.identity_schedule prog in
  let ast = Scan.generate ~prog ~sched ~deps in
  (deps, sched, ast)

let certify prog (deps, sched, ast) =
  Analysis.Wisecheck.certify prog deps sched ast

let find_kind kind (r : Analysis.Wisecheck.report) =
  List.filter
    (fun (f : Analysis.Finding.t) -> f.Analysis.Finding.kind = kind)
    r.Analysis.Wisecheck.findings

let check_no_errors what (r : Analysis.Wisecheck.report) =
  Alcotest.(check int) (what ^ ": no error findings") 0 r.Analysis.Wisecheck.errors

(* --- vocabulary round-trips ------------------------------------------------- *)

let test_round_trip () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        "loop_class -> parallelism -> loop_class" true
        (Ast.to_loop_class (Ast.of_loop_class c) = c))
    [ Pluto.Satisfy.Parallel; Pluto.Satisfy.Parallel_reduction;
      Pluto.Satisfy.Forward; Pluto.Satisfy.Sequential ];
  List.iter
    (fun p ->
      Alcotest.(check bool)
        "parallelism -> loop_class -> parallelism" true
        (Ast.of_loop_class (Ast.to_loop_class p) = p);
      Alcotest.(check string)
        "one naming"
        (Pluto.Satisfy.loop_class_name (Ast.to_loop_class p))
        (Ast.parallelism_name p))
    [ Ast.Parallel; Ast.Parallel_reduction; Ast.Forward; Ast.Sequential ]

(* --- clean pipelines certify ------------------------------------------------ *)

let test_clean_identity () =
  List.iter
    (fun prog ->
      let r = certify prog (identity_pipeline prog) in
      check_no_errors prog.Scop.Program.name r)
    [ recurrence (); copy (); imperfect (); chain (); dead_write () ]

let test_clean_scheduled () =
  let prog = Kernels.Gemver.program ~n:10 () in
  let res = Pluto.Scheduler.run Fusion.Wisefuse.config prog in
  let ast = Scan.of_result res in
  let r =
    certify prog
      (res.Pluto.Scheduler.all_deps, res.Pluto.Scheduler.sched, ast)
  in
  check_no_errors "gemver/wisefuse" r

(* --- seeded bugs ------------------------------------------------------------ *)

(* flip the carried outer loop of the recurrence to Parallel *)
let test_seeded_parallel_flip () =
  let prog = recurrence () in
  let deps, sched, ast = identity_pipeline prog in
  (* baseline: not parallel, and no racy finding *)
  let base = certify prog (deps, sched, ast) in
  Alcotest.(check int)
    "baseline has no racy finding" 0
    (List.length (find_kind Analysis.Finding.Racy_parallel base));
  let flipped =
    Ast.map_loops
      (fun l -> if l.Ast.level = 0 then { l with Ast.par = Ast.Parallel } else l)
      ast
  in
  let r = certify prog (deps, sched, flipped) in
  match find_kind Analysis.Finding.Racy_parallel r with
  | [ f ] ->
    Alcotest.(check bool)
      "error severity" true
      (f.Analysis.Finding.severity = Analysis.Finding.Error);
    Alcotest.(check (option int)) "at loop level 0" (Some 0) f.Analysis.Finding.level;
    Alcotest.(check (list int)) "on S0" [ 0 ] f.Analysis.Finding.stmts;
    Alcotest.(check bool)
      "carries the offending dependence" true
      (f.Analysis.Finding.dep <> None)
  | fs ->
    Alcotest.failf "expected exactly one racy-parallel finding, got %d"
      (List.length fs)

(* shift every upper bound of the outermost loop by +1 iteration *)
let widen_ub delta ast =
  Ast.map_loops
    (fun l ->
      if l.Ast.level <> 0 then l
      else
        {
          l with
          Ast.ub_groups =
            List.map
              (List.map (fun (b : Ast.bound) ->
                   let num = Array.copy b.num in
                   let k = Array.length num - 1 in
                   num.(k) <- num.(k) + (delta * b.den);
                   { b with Ast.num }))
              l.Ast.ub_groups;
        })
    ast

let test_seeded_widened_bound () =
  let prog = copy () in
  let deps, sched, ast = identity_pipeline prog in
  let base = certify prog (deps, sched, ast) in
  Alcotest.(check int)
    "baseline scans tightly" 0
    (List.length (find_kind Analysis.Finding.Loose_bounds base));
  let r = certify prog (deps, sched, widen_ub 1 ast) in
  match find_kind Analysis.Finding.Loose_bounds r with
  | f :: _ ->
    Alcotest.(check bool)
      "warning severity" true
      (f.Analysis.Finding.severity = Analysis.Finding.Warning);
    Alcotest.(check (list int)) "on S0" [ 0 ] f.Analysis.Finding.stmts
  | [] -> Alcotest.fail "widened bound not reported as loose-bounds"

let test_seeded_narrowed_bound () =
  let prog = copy () in
  let deps, sched, ast = identity_pipeline prog in
  let r = certify prog (deps, sched, widen_ub (-1) ast) in
  match find_kind Analysis.Finding.Dropped_point r with
  | f :: _ ->
    Alcotest.(check bool)
      "error severity" true
      (f.Analysis.Finding.severity = Analysis.Finding.Error);
    Alcotest.(check (option int)) "at loop level 0" (Some 0) f.Analysis.Finding.level;
    Alcotest.(check (list int)) "on S0" [ 0 ] f.Analysis.Finding.stmts
  | [] -> Alcotest.fail "narrowed bound not reported as dropped-point"

(* drop S1's constant-row guard in the imperfect nest *)
let test_seeded_dropped_guard () =
  let prog = imperfect () in
  let deps, sched, ast = identity_pipeline prog in
  let base = certify prog (deps, sched, ast) in
  Alcotest.(check int)
    "baseline guards consistent" 0
    (List.length (find_kind Analysis.Finding.Guard_mismatch base));
  (* sanity: the seeded mutation actually removes something *)
  let dropped = ref false in
  let mutated =
    Ast.map_instances
      (fun inst ->
        if inst.Ast.stmt_id = 1 && Array.length inst.Ast.const_rows > 0 then begin
          dropped := true;
          { inst with Ast.const_rows = [||] }
        end
        else inst)
      ast
  in
  Alcotest.(check bool) "S1 had a guard row to drop" true !dropped;
  let r = certify prog (deps, sched, mutated) in
  match find_kind Analysis.Finding.Guard_mismatch r with
  | f :: _ ->
    Alcotest.(check bool)
      "error severity" true
      (f.Analysis.Finding.severity = Analysis.Finding.Error);
    Alcotest.(check (list int)) "on S1" [ 1 ] f.Analysis.Finding.stmts
  | [] -> Alcotest.fail "dropped guard row not reported as guard-mismatch"

(* --- DDG lints -------------------------------------------------------------- *)

let test_lints () =
  let prog = chain () in
  let r = certify prog (identity_pipeline prog) in
  (match find_kind Analysis.Finding.Redundant_dependence r with
  | f :: _ ->
    Alcotest.(check (list int)) "S0 -> S2 redundant" [ 0; 2 ]
      f.Analysis.Finding.stmts
  | [] -> Alcotest.fail "transitive edge not reported");
  let prog = dead_write () in
  let r = certify prog (identity_pipeline prog) in
  match find_kind Analysis.Finding.Dead_write r with
  | f :: _ ->
    Alcotest.(check (list int)) "S0 is dead" [ 0 ] f.Analysis.Finding.stmts
  | [] -> Alcotest.fail "overwritten unread write not reported"

(* --- reductions (wisereduce) ------------------------------------------------ *)

(* s[0] = s[0] + b[i]: the canonical scalar reduction *)
let scalar_sum () =
  let open Scop.Build in
  let ctx = create ~name:"sum" ~params:[ ("N", 12) ] in
  let n = param ctx "N" in
  let s = array ctx "S" [ ci 1 ] in
  let b = array ctx "B" [ n ] in
  loop ctx "i" ~lb:(ci 0)
    ~ub:(n -~ ci 1)
    (fun i -> assign ctx "S0" s [ ci 0 ] (s.%([ ci 0 ]) +: b.%([ i ])));
  finish ctx

(* one statement of the given rhs shape, accumulating into s[0] *)
let shape name rhs_of =
  let open Scop.Build in
  let ctx = create ~name ~params:[ ("N", 12) ] in
  let n = param ctx "N" in
  let s = array ctx "S" [ ci 1 ] in
  let b = array ctx "B" [ n ] in
  loop ctx "i" ~lb:(ci 0)
    ~ub:(n -~ ci 1)
    (fun i -> assign ctx "S0" s [ ci 0 ] (rhs_of s b i));
  finish ctx

let detect prog =
  let deps = Deps.Dep.analyze prog in
  Analysis.Reduction.detect prog deps

let reject_reason (findings : Analysis.Finding.t list) =
  match
    List.filter
      (fun (f : Analysis.Finding.t) ->
        f.Analysis.Finding.kind = Analysis.Finding.Reduction_rejected)
      findings
  with
  | [ f ] -> List.assoc_opt "reason" f.Analysis.Finding.context
  | fs ->
    Alcotest.failf "expected exactly one reduction.rejected, got %d"
      (List.length fs)

let test_reduction_detected () =
  let prog = scalar_sum () in
  let facts, findings = detect prog in
  (match facts with
  | [ fact ] ->
    Alcotest.(check int) "on S0" 0 fact.Analysis.Reduction_info.stmt;
    Alcotest.(check string) "operator +" "+"
      (Analysis.Reduction_info.op_name fact);
    Alcotest.(check bool) "covers its self-dependences" true
      (fact.Analysis.Reduction_info.covered <> []);
    Alcotest.(check (list int)) "chain carried by loop 0" [ 0 ]
      fact.Analysis.Reduction_info.chain_levels
  | fs -> Alcotest.failf "expected exactly one fact, got %d" (List.length fs));
  Alcotest.(check int) "one detected finding" 1
    (List.length
       (List.filter
          (fun (f : Analysis.Finding.t) ->
            f.Analysis.Finding.kind = Analysis.Finding.Reduction_detected)
          findings));
  (* min/max chains prove too (gemver-style nested chains flatten) *)
  let open Scop.Build in
  List.iter
    (fun (nm, rhs) ->
      let facts, _ = detect (shape nm rhs) in
      Alcotest.(check int) (nm ^ " proves") 1 (List.length facts))
    [ ("minred", fun s b i -> min_ (s.%([ ci 0 ])) (b.%([ i ])));
      ("mulred", fun s b i -> s.%([ ci 0 ]) *: b.%([ i ]));
      ( "nested",
        fun s b i -> s.%([ ci 0 ]) +: b.%([ i ]) +: b.%([ i ]) ) ]

(* the four seeded near-misses, each with its exact rejection reason *)
let test_reduction_rejections () =
  let open Scop.Build in
  (* a) non-associative operator on the accumulator *)
  let _, fs = detect (shape "sub" (fun s b i -> s.%([ ci 0 ]) -: b.%([ i ]))) in
  Alcotest.(check (option string)) "a - x rejected"
    (Some Analysis.Reduction.reason_non_assoc) (reject_reason fs);
  (* b) mismatched accumulator subscripts (a recurrence, not a reduction) *)
  let recur =
    let ctx = create ~name:"recur" ~params:[ ("N", 12) ] in
    let n = param ctx "N" in
    let a = array ctx "A" [ n ] in
    let b = array ctx "B" [ n ] in
    loop ctx "i" ~lb:(ci 1)
      ~ub:(n -~ ci 1)
      (fun i -> assign ctx "S0" a [ i ] (a.%([ i -~ ci 1 ]) +: b.%([ i ])));
    finish ctx
  in
  let _, fs = detect recur in
  Alcotest.(check (option string)) "a[i-1] read rejected"
    (Some Analysis.Reduction.reason_subscript) (reject_reason fs);
  (* c) accumulator read inside the combined expression *)
  let _, fs =
    detect
      (shape "accread" (fun s b i ->
           s.%([ ci 0 ]) +: (s.%([ ci 0 ]) *: b.%([ i ]))))
  in
  Alcotest.(check (option string)) "acc inside e rejected"
    (Some Analysis.Reduction.reason_acc_read) (reject_reason fs);
  (* d) an interleaved writer mid-chain *)
  let interleaved =
    let ctx = create ~name:"inter" ~params:[ ("N", 12) ] in
    let n = param ctx "N" in
    let s = array ctx "S" [ ci 1 ] in
    let b = array ctx "B" [ n ] in
    let c = array ctx "C" [ n ] in
    loop ctx "i" ~lb:(ci 0)
      ~ub:(n -~ ci 1)
      (fun i ->
        assign ctx "S0" s [ ci 0 ] (s.%([ ci 0 ]) +: b.%([ i ]));
        assign ctx "S1" s [ ci 0 ] (c.%([ i ])));
    finish ctx
  in
  let facts, fs = detect interleaved in
  Alcotest.(check int) "no fact for the broken chain" 0 (List.length facts);
  Alcotest.(check (option string)) "mid-chain writer rejected"
    (Some Analysis.Reduction.reason_interleaved) (reject_reason fs)

(* dot through the reduction-aware scheduler: the fused loop comes out
   Parallel_reduction, and wisecheck certifies it "up to reduction" *)
let test_scheduled_reduction () =
  let prog = Kernels.Dot.program ~n:12 () in
  let o = Fusion.Resilient.optimize ~reductions:true prog in
  let res = o.Fusion.Resilient.result in
  let has_reduction_loop = ref false in
  Ast.iter_loops
    (fun l -> if l.Ast.par = Ast.Parallel_reduction then has_reduction_loop := true)
    o.Fusion.Resilient.ast;
  Alcotest.(check bool) "a loop is marked parallel-reduction" true
    !has_reduction_loop;
  let r =
    certify prog
      (res.Pluto.Scheduler.all_deps, res.Pluto.Scheduler.sched,
       o.Fusion.Resilient.ast)
  in
  check_no_errors "dot/reductions" r;
  Alcotest.(check bool) "certified up to reduction" true
    (find_kind Analysis.Finding.Reduction_certified r <> []);
  (* and with the flag off: no tagging, no reduction loops, still clean *)
  let off = Fusion.Resilient.optimize prog in
  let any_reduction = ref false in
  Ast.iter_loops
    (fun l -> if l.Ast.par = Ast.Parallel_reduction then any_reduction := true)
    off.Fusion.Resilient.ast;
  Alcotest.(check bool) "off: no reduction loops" false !any_reduction

(* a Parallel_reduction mark the detector cannot justify must still be
   a race.parallel error — a flipped mark earns no leniency *)
let test_seeded_reduction_flip () =
  let prog = recurrence () in
  let deps, sched, ast = identity_pipeline prog in
  let flipped =
    Ast.map_loops
      (fun l ->
        if l.Ast.level = 0 then { l with Ast.par = Ast.Parallel_reduction }
        else l)
      ast
  in
  let r = certify prog (deps, sched, flipped) in
  (match find_kind Analysis.Finding.Racy_parallel r with
  | [ f ] ->
    Alcotest.(check bool) "error severity" true
      (f.Analysis.Finding.severity = Analysis.Finding.Error)
  | fs ->
    Alcotest.failf "expected exactly one racy-parallel finding, got %d"
      (List.length fs));
  Alcotest.(check int) "and no certification" 0
    (List.length (find_kind Analysis.Finding.Reduction_certified r))

(* dead-write suppression: a reduction accumulator overwritten later is
   not a dead write — the proof exempts it *)
let test_reduction_dead_write_suppressed () =
  let open Scop.Build in
  let prog =
    let ctx = create ~name:"accdead" ~params:[ ("N", 12) ] in
    let n = param ctx "N" in
    let s = array ctx "S" [ ci 1 ] in
    let b = array ctx "B" [ n ] in
    let c = array ctx "C" [ n ] in
    loop ctx "i" ~lb:(ci 0)
      ~ub:(n -~ ci 1)
      (fun i -> assign ctx "S0" s [ ci 0 ] (s.%([ ci 0 ]) +: b.%([ i ])));
    loop ctx "i" ~lb:(ci 0) ~ub:(ci 0)
      (fun i -> assign ctx "S1" s [ i ] (c.%([ i ])));
    finish ctx
  in
  let deps = Deps.Dep.analyze prog in
  let is_dead (f : Analysis.Finding.t) =
    f.Analysis.Finding.kind = Analysis.Finding.Dead_write
  in
  (* without facts the accumulator looks dead (self-flow only, then
     fully overwritten): the regression the reduction facts fix *)
  let bare = Analysis.Lints.check prog deps in
  Alcotest.(check bool) "flagged without facts" true
    (List.exists
       (fun f -> is_dead f && f.Analysis.Finding.stmts = [ 0 ])
       bare);
  let facts, _ = Analysis.Reduction.detect prog deps in
  Alcotest.(check bool) "the accumulator proves" true (facts <> []);
  let informed = Analysis.Lints.check ~facts prog deps in
  Alcotest.(check bool) "suppressed with facts" false
    (List.exists
       (fun f -> is_dead f && f.Analysis.Finding.stmts = [ 0 ])
       informed);
  (* wisecheck derives the facts itself: end to end, no dead write *)
  let r = certify prog (identity_pipeline prog) in
  Alcotest.(check bool) "wisecheck suppresses end to end" false
    (List.exists
       (fun (f : Analysis.Finding.t) ->
         is_dead f && f.Analysis.Finding.stmts = [ 0 ])
       r.Analysis.Wisecheck.findings)

(* --- JSON round-trip --------------------------------------------------------- *)

(* every finding's JSON parses back, and warning-severity findings carry
   their witness context just like errors do *)
let test_json_round_trip () =
  let prog = copy () in
  let deps, sched, ast = identity_pipeline prog in
  let r = certify prog (deps, sched, widen_ub 1 ast) in
  (match find_kind Analysis.Finding.Loose_bounds r with
  | f :: _ ->
    Alcotest.(check bool) "warning carries a witness" true
      (List.mem_assoc "witness" f.Analysis.Finding.context)
  | [] -> Alcotest.fail "widened bound not reported as loose-bounds");
  List.iter
    (fun (f : Analysis.Finding.t) ->
      let line = Analysis.Finding.to_json prog f in
      match Obs.Json.parse line with
      | Error msg -> Alcotest.failf "finding JSON does not parse: %s" msg
      | Ok j ->
        Alcotest.(check (option string))
          "code survives"
          (Some (Analysis.Finding.code f.Analysis.Finding.kind))
          (Option.bind (Obs.Json.member "code" j) Obs.Json.to_string_opt);
        (match f.Analysis.Finding.context with
        | [] -> ()
        | (k, _) :: _ ->
          Alcotest.(check bool)
            ("context key ctx_" ^ k ^ " survives")
            true
            (Obs.Json.member ("ctx_" ^ k) j <> None)))
    r.Analysis.Wisecheck.findings

(* lost parallelism: a parallel loop demoted to sequential is flagged *)
let test_lost_parallelism () =
  let prog = copy () in
  let deps, sched, ast = identity_pipeline prog in
  let demoted =
    Ast.map_loops (fun l -> { l with Ast.par = Ast.Sequential }) ast
  in
  let r = certify prog (deps, sched, demoted) in
  match find_kind Analysis.Finding.Lost_parallelism r with
  | f :: _ ->
    Alcotest.(check bool)
      "warning severity" true
      (f.Analysis.Finding.severity = Analysis.Finding.Warning)
  | [] -> Alcotest.fail "sequential race-free loop not reported"

let () =
  Alcotest.run "analysis"
    [
      ( "vocabulary",
        [ Alcotest.test_case "round trips" `Quick test_round_trip ] );
      ( "certification",
        [
          Alcotest.test_case "identity pipelines" `Quick test_clean_identity;
          Alcotest.test_case "scheduled gemver" `Quick test_clean_scheduled;
        ] );
      ( "seeded bugs",
        [
          Alcotest.test_case "parallel flip" `Quick test_seeded_parallel_flip;
          Alcotest.test_case "widened bound" `Quick test_seeded_widened_bound;
          Alcotest.test_case "narrowed bound" `Quick test_seeded_narrowed_bound;
          Alcotest.test_case "dropped guard" `Quick test_seeded_dropped_guard;
        ] );
      ( "lints",
        [
          Alcotest.test_case "redundant + dead write" `Quick test_lints;
          Alcotest.test_case "lost parallelism" `Quick test_lost_parallelism;
        ] );
      ( "reductions",
        [
          Alcotest.test_case "detected" `Quick test_reduction_detected;
          Alcotest.test_case "seeded rejections" `Quick
            test_reduction_rejections;
          Alcotest.test_case "scheduled dot" `Quick test_scheduled_reduction;
          Alcotest.test_case "flipped mark is racy" `Quick
            test_seeded_reduction_flip;
          Alcotest.test_case "dead-write suppression" `Quick
            test_reduction_dead_write_suppressed;
        ] );
      ( "json",
        [ Alcotest.test_case "round trip + witness" `Quick test_json_round_trip ] );
    ]
