(* Obs.Metrics tests: exact log-linear bucket boundaries (edges,
   underflow, overflow), the shard-merge algebra (associative,
   commutative, loss-free — property-tested), loss-free concurrent
   observation from real domains, quantile error bounds, the zero-cost
   disabled path, and Prometheus exposition well-formedness. *)

module M = Obs.Metrics
module B = Obs.Metrics.Buckets

(* --- bucket boundaries ---------------------------------------------------- *)

let test_bucket_edges () =
  (* the first [sub] values get one bucket each *)
  for v = 0 to B.sub - 1 do
    Alcotest.(check int) (Printf.sprintf "index %d" v) (1 + v) (B.index v)
  done;
  (* negatives underflow, nothing is dropped *)
  Alcotest.(check int) "index (-1)" B.underflow (B.index (-1));
  Alcotest.(check int) "index min_int" B.underflow (B.index min_int);
  (* overflow threshold is exactly 2^30 *)
  Alcotest.(check bool) "2^30 - 1 below overflow" true
    (B.index ((1 lsl 30) - 1) < B.overflow);
  Alcotest.(check int) "2^30 overflows" B.overflow (B.index (1 lsl 30));
  Alcotest.(check int) "max_int overflows" B.overflow (B.index max_int);
  (* octave starts: each power of two opens a fresh sub-bucket run *)
  Alcotest.(check int) "index 8" (1 + B.sub) (B.index 8);
  Alcotest.(check int) "index 16" (1 + (2 * B.sub)) (B.index 16);
  (* upper edges are exact and inclusive: upper i is in bucket i, and
     upper i + 1 is in bucket i+1 — for EVERY finite bucket *)
  Alcotest.(check int) "upper underflow" (-1) (B.upper B.underflow);
  for i = 1 to B.overflow - 1 do
    let u = B.upper i in
    Alcotest.(check int) (Printf.sprintf "upper %d is inside %d" u i) i
      (B.index u);
    Alcotest.(check int)
      (Printf.sprintf "upper %d + 1 is inside %d" u (i + 1))
      (i + 1)
      (B.index (u + 1))
  done;
  Alcotest.(check int) "last finite edge" ((1 lsl 30) - 1)
    (B.upper (B.overflow - 1))

let test_index_total_and_monotone () =
  (* every int lands in exactly one bucket, and the mapping is
     monotone: no value can be binned below a smaller value *)
  let vals =
    [ min_int; -7; -1; 0; 1; 7; 8; 9; 100; 1023; 1024; 65537;
      (1 lsl 30) - 1; 1 lsl 30; max_int ]
  in
  List.iter
    (fun v ->
      let i = B.index v in
      Alcotest.(check bool)
        (Printf.sprintf "index %d in range" v)
        true
        (i >= 0 && i < B.count))
    vals;
  let rec pairs = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool)
        (Printf.sprintf "monotone %d <= %d" a b)
        true
        (B.index a <= B.index b);
      pairs rest
    | _ -> ()
  in
  pairs vals

(* --- merge algebra (the scrape-time shard fold) --------------------------- *)

let arb_cells =
  QCheck.make
    ~print:(fun a ->
      String.concat ";" (Array.to_list (Array.map string_of_int a)))
    QCheck.Gen.(array_size (return B.count) (int_bound 1000))

let sum = Array.fold_left ( + ) 0

let merge_associative =
  QCheck.Test.make ~name:"merge associative" ~count:100
    (QCheck.triple arb_cells arb_cells arb_cells) (fun (a, b, c) ->
      B.merge a (B.merge b c) = B.merge (B.merge a b) c)

let merge_commutative =
  QCheck.Test.make ~name:"merge commutative" ~count:100
    (QCheck.pair arb_cells arb_cells) (fun (a, b) ->
      B.merge a b = B.merge b a)

let merge_lossfree =
  QCheck.Test.make ~name:"merge loss-free (sum preserved)" ~count:100
    (QCheck.pair arb_cells arb_cells) (fun (a, b) ->
      sum (B.merge a b) = sum a + sum b)

let merge_identity =
  QCheck.Test.make ~name:"merge identity (zeros)" ~count:50 arb_cells
    (fun a -> B.merge a (Array.make B.count 0) = a)

(* --- concurrent observation: shards merged without loss ------------------- *)

let test_multi_domain_lossfree () =
  let r = M.create () in
  let c = M.counter r ~name:"t_total" ~help:"h" () in
  let h = M.histogram r ~name:"t_lat" ~help:"h" () in
  let per_domain = 10_000 and domains = 4 in
  let worker d () =
    for i = 1 to per_domain do
      M.inc c;
      (* mixed magnitudes so several octaves fill, plus both sinks *)
      M.observe h ((i * (d + 1)) land 0xFFFF);
      if i mod 1000 = 0 then M.observe h (-1);
      if i mod 2000 = 0 then M.observe h (1 lsl 30)
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  let expected =
    domains * (per_domain + (per_domain / 1000) + (per_domain / 2000))
  in
  Alcotest.(check int) "counter exact" (domains * per_domain)
    (M.counter_value c);
  Alcotest.(check int) "histogram count exact" expected (M.hist_count h);
  Alcotest.(check int) "bucket sum == count" expected
    (sum (M.hist_buckets h))

let test_quantile_bound () =
  let r = M.create () in
  let h = M.histogram r ~name:"t_q" ~help:"h" () in
  for v = 1 to 1000 do
    M.observe h v
  done;
  let q50 = M.hist_quantile h 0.5 in
  let q99 = M.hist_quantile h 0.99 in
  (* upper-edge estimate: true quantile <= estimate <= 1.125x + edge *)
  Alcotest.(check bool) "p50 in [500, 575]" true (q50 >= 500. && q50 <= 575.);
  Alcotest.(check bool) "p99 in [990, 1120]" true
    (q99 >= 990. && q99 <= 1120.);
  Alcotest.(check bool) "p50 <= p99" true (q50 <= q99);
  (* empty histogram answers 0, never raises *)
  let e = M.histogram r ~name:"t_empty" ~help:"h" () in
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (M.hist_quantile e 0.5)

(* --- disabled path -------------------------------------------------------- *)

let test_disabled_noop () =
  let r = M.create ~enabled:false () in
  Alcotest.(check bool) "registry disabled" false (M.enabled r);
  let c = M.counter r ~name:"d_total" ~help:"h" () in
  let g = M.gauge r ~name:"d_gauge" ~help:"h" () in
  let h = M.histogram r ~name:"d_lat" ~help:"h" () in
  M.inc c;
  M.inc ~n:41 c;
  M.gauge_set g 7;
  M.gauge_add g 3;
  M.observe h 123;
  Alcotest.(check int) "counter stays 0" 0 (M.counter_value c);
  Alcotest.(check int) "gauge stays 0" 0 (M.gauge_value g);
  Alcotest.(check int) "histogram stays empty" 0 (M.hist_count h)

(* --- exposition ----------------------------------------------------------- *)

let test_exposition () =
  let r = M.create () in
  let c =
    M.counter r ~name:"e_total" ~help:"requests"
      ~labels:[ ("outcome", {|we"ird\lab
el|}) ]
      ()
  in
  let g = M.gauge r ~name:"e_gauge" ~help:"depth" () in
  let h = M.histogram r ~name:"e_lat" ~help:"latency" () in
  M.inc ~n:3 c;
  M.gauge_set g 42;
  List.iter (M.observe h) [ 1; 1; 9; 700; 1 lsl 30 ];
  M.counter_fn r ~name:"e_fn" ~help:"sampled" (fun () -> 17);
  let text = M.exposition r in
  let contains needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "HELP line" true (contains "# HELP e_total requests");
  Alcotest.(check bool) "TYPE counter" true (contains "# TYPE e_total counter");
  Alcotest.(check bool) "TYPE gauge" true (contains "# TYPE e_gauge gauge");
  Alcotest.(check bool) "TYPE histogram" true
    (contains "# TYPE e_lat histogram");
  Alcotest.(check bool) "label escaping" true
    (contains {|e_total{outcome="we\"ird\\lab\nel"} 3|});
  Alcotest.(check bool) "gauge sample" true (contains "e_gauge 42");
  Alcotest.(check bool) "callback sample" true (contains "e_fn 17");
  Alcotest.(check bool) "+Inf equals count" true
    (contains {|e_lat_bucket{le="+Inf"} 5|} && contains "e_lat_count 5");
  Alcotest.(check bool) "sum series" true
    (contains ("e_lat_sum " ^ string_of_int (1 + 1 + 9 + 700 + (1 lsl 30))));
  (* cumulative le values never decrease across the bucket lines *)
  let les =
    String.split_on_char '\n' text
    |> List.filter_map (fun l ->
           if
             String.length l > 13
             && String.sub l 0 13 = "e_lat_bucket{"
           then
             match String.index_opt l ' ' with
             | Some sp ->
               int_of_string_opt
                 (String.sub l (sp + 1) (String.length l - sp - 1))
             | None -> None
           else None)
  in
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "several le buckets rendered" true
    (List.length les >= 4);
  Alcotest.(check bool) "cumulative buckets monotone" true (mono les)

let () =
  Alcotest.run "metrics"
    [
      ( "buckets",
        [
          Alcotest.test_case "edges" `Quick test_bucket_edges;
          Alcotest.test_case "total and monotone" `Quick
            test_index_total_and_monotone;
        ] );
      ( "merge",
        List.map QCheck_alcotest.to_alcotest
          [ merge_associative; merge_commutative; merge_lossfree;
            merge_identity ] );
      ( "sharding",
        [
          Alcotest.test_case "multi-domain loss-free" `Quick
            test_multi_domain_lossfree;
          Alcotest.test_case "quantile bound" `Quick test_quantile_bound;
          Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
        ] );
      ("exposition", [ Alcotest.test_case "syntax" `Quick test_exposition ]);
    ]
