(* Tests for the exact-arithmetic substrate: Bigint, Q, Vec, Mat. *)

open Linalg

let bi = Bigint.of_int
let q = Q.of_int
let qq n d = Q.of_ints n d

(* --- Bigint unit tests ------------------------------------------------ *)

let test_bigint_basics () =
  Alcotest.(check string) "zero" "0" (Bigint.to_string Bigint.zero);
  Alcotest.(check string) "neg" "-42" (Bigint.to_string (bi (-42)));
  Alcotest.(check int) "to_int roundtrip" 123456789 (Bigint.to_int (bi 123456789));
  Alcotest.(check int) "sign pos" 1 (Bigint.sign (bi 5));
  Alcotest.(check int) "sign neg" (-1) (Bigint.sign (bi (-5)));
  Alcotest.(check int) "sign zero" 0 (Bigint.sign Bigint.zero);
  Alcotest.(check bool) "min_int of_int" true
    (Bigint.equal (bi min_int) (Bigint.neg (Bigint.sub (bi max_int) (bi (-1)))))

let test_bigint_string () =
  let s = "123456789012345678901234567890" in
  Alcotest.(check string) "roundtrip big" s Bigint.(to_string (of_string s));
  let s2 = "-999999999999999999999999" in
  Alcotest.(check string) "roundtrip neg big" s2 Bigint.(to_string (of_string s2));
  Alcotest.(check string) "leading plus" "17" Bigint.(to_string (of_string "+17"));
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty")
    (fun () -> ignore (Bigint.of_string ""))

let test_bigint_arith_large () =
  let a = Bigint.of_string "123456789012345678901234567890" in
  let b = Bigint.of_string "987654321098765432109876543210" in
  Alcotest.(check string) "add"
    "1111111110111111111011111111100"
    Bigint.(to_string (add a b));
  Alcotest.(check string) "mul"
    "121932631137021795226185032733622923332237463801111263526900"
    Bigint.(to_string (mul a b));
  let p = Bigint.mul a b in
  Alcotest.(check bool) "div undoes mul" true Bigint.(equal (div p b) a);
  Alcotest.(check bool) "rem zero" true Bigint.(is_zero (rem p a))

let test_bigint_divmod_signs () =
  (* truncated semantics must match OCaml's / and mod *)
  List.iter
    (fun (a, b) ->
      let bq, br = Bigint.divmod (bi a) (bi b) in
      Alcotest.(check int) (Printf.sprintf "q %d/%d" a b) (a / b) (Bigint.to_int bq);
      Alcotest.(check int) (Printf.sprintf "r %d/%d" a b) (a mod b) (Bigint.to_int br))
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (0, 5); (12, 4); (-12, 4); (1, 7) ]

let test_bigint_fdiv_cdiv () =
  let check name expect a b f =
    Alcotest.(check int) name expect (Bigint.to_int (f (bi a) (bi b)))
  in
  check "fdiv 7 2" 3 7 2 Bigint.fdiv;
  check "fdiv -7 2" (-4) (-7) 2 Bigint.fdiv;
  check "fdiv 7 -2" (-4) 7 (-2) Bigint.fdiv;
  check "cdiv 7 2" 4 7 2 Bigint.cdiv;
  check "cdiv -7 2" (-3) (-7) 2 Bigint.cdiv;
  check "cdiv 6 3" 2 6 3 Bigint.cdiv;
  check "fdiv 6 3" 2 6 3 Bigint.fdiv

let test_bigint_gcd () =
  Alcotest.(check int) "gcd 12 18" 6 Bigint.(to_int (gcd (bi 12) (bi 18)));
  Alcotest.(check int) "gcd -12 18" 6 Bigint.(to_int (gcd (bi (-12)) (bi 18)));
  Alcotest.(check int) "gcd 0 0" 0 Bigint.(to_int (gcd Bigint.zero Bigint.zero));
  Alcotest.(check int) "gcd 0 7" 7 Bigint.(to_int (gcd Bigint.zero (bi 7)));
  Alcotest.(check int) "lcm 4 6" 12 Bigint.(to_int (lcm (bi 4) (bi 6)))

let test_bigint_pow () =
  Alcotest.(check string) "2^100"
    "1267650600228229401496703205376"
    Bigint.(to_string (pow two 100));
  Alcotest.(check int) "x^0" 1 Bigint.(to_int (pow (bi 7) 0));
  Alcotest.check_raises "neg exponent"
    (Invalid_argument "Bigint.pow: negative exponent")
    (fun () -> ignore (Bigint.pow Bigint.two (-1)))

let test_bigint_div_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bigint.div Bigint.one Bigint.zero))

(* Knuth division stress: exercise the add-back branch neighborhood with
   divisors just below digit boundaries. *)
let test_bigint_knuth_stress () =
  let b30 = Bigint.pow Bigint.two 30 in
  let cases =
    [ (Bigint.pred (Bigint.pow Bigint.two 90), Bigint.pred b30);
      (Bigint.pow Bigint.two 120, Bigint.succ b30);
      (Bigint.pred (Bigint.pow Bigint.two 150), Bigint.pred (Bigint.pow Bigint.two 60));
      (Bigint.of_string "340282366920938463463374607431768211455",
       Bigint.of_string "18446744073709551615") ]
  in
  List.iter
    (fun (a, b) ->
      let qt, r = Bigint.divmod a b in
      Alcotest.(check bool) "a = q*b + r" true
        Bigint.(equal a (add (mul qt b) r));
      Alcotest.(check bool) "0 <= r < b" true
        Bigint.(Stdlib.( >= ) (sign r) 0 && r < b))
    cases

(* --- representation boundary: of_int/to_int round-trips ----------------- *)

let test_bigint_boundary_roundtrip () =
  (* every native int must round-trip unboxed, including the extremes
     and the base-2^30 digit boundaries *)
  List.iter
    (fun n ->
      let x = bi n in
      Alcotest.(check int) (Printf.sprintf "roundtrip %d" n) n (Bigint.to_int x);
      Alcotest.(check bool) (Printf.sprintf "small %d" n) true (Bigint.is_small x);
      Alcotest.(check bool) (Printf.sprintf "fits %d" n) true (Bigint.fits_int x);
      Alcotest.(check string) (Printf.sprintf "string %d" n) (string_of_int n)
        (Bigint.to_string x))
    [ 0; 1; -1; max_int; min_int; max_int - 1; min_int + 1;
      1 lsl 30; -(1 lsl 30); (1 lsl 30) - 1; (1 lsl 30) + 1;
      1 lsl 60; -(1 lsl 60) ]

let test_bigint_boundary_promotion () =
  (* 2^62 = |min_int| + 1 values: first magnitudes that need Big *)
  let p62 = Bigint.pow Bigint.two 62 in
  Alcotest.(check bool) "2^62 is big" false (Bigint.is_small p62);
  Alcotest.(check bool) "2^62 does not fit" false (Bigint.fits_int p62);
  Alcotest.(check bool) "to_int_opt 2^62" true (Bigint.to_int_opt p62 = None);
  Alcotest.check_raises "to_int 2^62" (Failure "Bigint.to_int: does not fit")
    (fun () -> ignore (Bigint.to_int p62));
  (* -2^62 = min_int demotes back to Small *)
  let m62 = Bigint.neg p62 in
  Alcotest.(check bool) "-2^62 is small" true (Bigint.is_small m62);
  Alcotest.(check int) "-2^62 = min_int" min_int (Bigint.to_int m62);
  (* crossing the boundary by one in both directions *)
  Alcotest.(check bool) "max_int + 1 is big" false
    (Bigint.is_small (Bigint.succ (bi max_int)));
  Alcotest.(check bool) "min_int - 1 is big" false
    (Bigint.is_small (Bigint.pred (bi min_int)));
  Alcotest.(check int) "(max_int + 1) - 1 demotes" max_int
    (Bigint.to_int (Bigint.pred (Bigint.succ (bi max_int))));
  Alcotest.(check int) "(min_int - 1) + 1 demotes" min_int
    (Bigint.to_int (Bigint.succ (Bigint.pred (bi min_int))));
  (* |min_int| overflows native negation: must promote *)
  Alcotest.(check string) "neg min_int" "4611686018427387904"
    (Bigint.to_string (Bigint.neg (bi min_int)));
  Alcotest.(check string) "abs min_int" "4611686018427387904"
    (Bigint.to_string (Bigint.abs (bi min_int)))

(* --- Small/Big differential suite ----------------------------------------
   The two representations must be observationally identical. Operands are
   generated to straddle the promotion boundary (native products of large
   ints), and each operation is evaluated with canonical operands and with
   operands forced into the boxed Big representation; results must agree
   and be canonical (Small iff the value fits a native int). *)

let canonical x =
  (* a value is canonical iff it is Small exactly when it parses as int *)
  match int_of_string_opt (Bigint.to_string x) with
  | Some _ -> Bigint.is_small x
  | None -> not (Bigint.is_small x)

(* ints biased toward the 2^30 digit and 2^62 promotion boundaries *)
let boundary_int =
  QCheck.Gen.(
    oneof
      [ int_range (-1000) 1000;
        oneofl
          [ min_int; max_int; min_int + 1; max_int - 1;
            1 lsl 30; -(1 lsl 30); (1 lsl 30) - 1; (1 lsl 30) + 1;
            1 lsl 31; -(1 lsl 31); 1 lsl 60; -(1 lsl 60); 0; 1; -1 ];
        int_range (-(1 lsl 40)) (1 lsl 40);
        int ])

(* an operand is a * b + c: products of boundary ints straddle Small/Big *)
let arb_operand =
  QCheck.make
    ~print:(fun (a, b, c) ->
      Printf.sprintf "%d * %d + %d" a b c)
    QCheck.Gen.(triple boundary_int boundary_int boundary_int)

let operand (a, b, c) = Bigint.add (Bigint.mul (bi a) (bi b)) (bi c)

let differential_binop name f =
  QCheck.Test.make ~name:(Printf.sprintf "differential %s" name) ~count:2000
    (QCheck.pair arb_operand arb_operand)
    (fun (ta, tb) ->
      let x = operand ta and y = operand tb in
      let r = f x y in
      let variants =
        [ f (Bigint.force_big x) (Bigint.force_big y);
          f (Bigint.force_big x) y;
          f x (Bigint.force_big y) ]
      in
      canonical r
      && List.for_all
           (fun v -> String.equal (Bigint.to_string r) (Bigint.to_string v))
           variants)

let diff_add = differential_binop "add" Bigint.add
let diff_sub = differential_binop "sub" Bigint.sub
let diff_mul = differential_binop "mul" Bigint.mul

let diff_divmod =
  QCheck.Test.make ~name:"differential divmod" ~count:2000
    (QCheck.pair arb_operand arb_operand)
    (fun (ta, tb) ->
      let x = operand ta and y = operand tb in
      QCheck.assume (not (Bigint.is_zero y));
      let q1, r1 = Bigint.divmod x y in
      let q2, r2 = Bigint.divmod (Bigint.force_big x) (Bigint.force_big y) in
      canonical q1 && canonical r1
      && Bigint.equal q1 q2 && Bigint.equal r1 r2
      (* truncated division invariants *)
      && Bigint.equal x (Bigint.add (Bigint.mul q1 y) r1)
      && Stdlib.( < )
           (Bigint.compare (Bigint.abs r1) (Bigint.abs y)) 0)

let diff_gcd =
  QCheck.Test.make ~name:"differential gcd" ~count:2000
    (QCheck.pair arb_operand arb_operand)
    (fun (ta, tb) ->
      let x = operand ta and y = operand tb in
      let g1 = Bigint.gcd x y in
      let g2 = Bigint.gcd (Bigint.force_big x) (Bigint.force_big y) in
      canonical g1
      && Bigint.equal g1 g2
      && Stdlib.( >= ) (Bigint.sign g1) 0
      && (Bigint.is_zero g1
          || (Bigint.is_zero (Bigint.rem x g1) && Bigint.is_zero (Bigint.rem y g1))))

let diff_compare =
  (* mixed canonical/forced comparison is unspecified (see the mli), so
     compare forced against forced and canonical against canonical *)
  QCheck.Test.make ~name:"differential compare" ~count:2000
    (QCheck.pair arb_operand arb_operand)
    (fun (ta, tb) ->
      let x = operand ta and y = operand tb in
      Bigint.compare x y
      = Bigint.compare (Bigint.force_big x) (Bigint.force_big y)
      && Bigint.equal x y
         = Bigint.equal (Bigint.force_big x) (Bigint.force_big y))

(* --- Bigint properties -------------------------------------------------- *)

let med_int = QCheck.int_range (-100000) 100000

let prop_roundtrip =
  QCheck.Test.make ~name:"bigint of_int/to_int roundtrip" ~count:500
    QCheck.int
    (fun n -> Bigint.to_int (bi n) = n)

let prop_add_matches =
  QCheck.Test.make ~name:"bigint add matches native" ~count:500
    QCheck.(pair med_int med_int)
    (fun (a, b) -> Bigint.to_int (Bigint.add (bi a) (bi b)) = a + b)

let prop_mul_matches =
  QCheck.Test.make ~name:"bigint mul matches native" ~count:500
    QCheck.(pair med_int med_int)
    (fun (a, b) -> Bigint.to_int (Bigint.mul (bi a) (bi b)) = a * b)

let prop_divmod_invariant =
  QCheck.Test.make ~name:"bigint divmod invariant (large operands)" ~count:300
    QCheck.(triple med_int med_int med_int)
    (fun (a, b, c) ->
      QCheck.assume (c <> 0);
      (* build operands with several digits *)
      let big = Bigint.of_string "123456789123456789123456789" in
      let x = Bigint.(add (mul big (bi a)) (bi b)) in
      let y = Bigint.(add (mul (bi c) (bi 1000003)) Bigint.one) in
      let qt, r = Bigint.divmod x y in
      Bigint.(equal x (add (mul qt y) r))
      && Bigint.(Stdlib.( < ) (compare (abs r) (abs y)) 0))

let prop_gcd_divides =
  QCheck.Test.make ~name:"gcd divides both" ~count:300
    QCheck.(pair med_int med_int)
    (fun (a, b) ->
      QCheck.assume (a <> 0 || b <> 0);
      let g = Bigint.gcd (bi a) (bi b) in
      Bigint.(is_zero (rem (bi a) g)) && Bigint.(is_zero (rem (bi b) g)))

let prop_compare_total_order =
  QCheck.Test.make ~name:"bigint compare matches native" ~count:500
    QCheck.(pair med_int med_int)
    (fun (a, b) -> Bigint.compare (bi a) (bi b) = compare a b)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"bigint string roundtrip" ~count:300
    QCheck.(pair med_int med_int)
    (fun (a, b) ->
      let x = Bigint.(mul (mul (bi a) (bi b)) (of_string "1000000000000000000000")) in
      Bigint.equal x (Bigint.of_string (Bigint.to_string x)))

(* --- Q tests ------------------------------------------------------------ *)

let test_q_normalization () =
  Alcotest.(check string) "6/4 -> 3/2" "3/2" (Q.to_string (qq 6 4));
  Alcotest.(check string) "neg den" "-3/2" (Q.to_string (qq 3 (-2)));
  Alcotest.(check string) "zero" "0" (Q.to_string (qq 0 17));
  Alcotest.(check bool) "int detect" true (Q.is_integer (qq 8 4))

let test_q_arith () =
  Alcotest.(check bool) "1/2 + 1/3 = 5/6" true Q.(equal (add (qq 1 2) (qq 1 3)) (qq 5 6));
  Alcotest.(check bool) "mul" true Q.(equal (mul (qq 2 3) (qq 3 4)) (qq 1 2));
  Alcotest.(check bool) "div" true Q.(equal (div (qq 1 2) (qq 1 4)) (q 2));
  Alcotest.(check bool) "inv" true Q.(equal (inv (qq 3 7)) (qq 7 3));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Q.inv Q.zero))

let test_q_floor_ceil () =
  let check name expect v =
    Alcotest.(check int) name expect (Bigint.to_int v)
  in
  check "floor 7/2" 3 (Q.floor (qq 7 2));
  check "floor -7/2" (-4) (Q.floor (qq (-7) 2));
  check "ceil 7/2" 4 (Q.ceil (qq 7 2));
  check "ceil -7/2" (-3) (Q.ceil (qq (-7) 2));
  check "floor int" 5 (Q.floor (q 5));
  check "ceil int" 5 (Q.ceil (q 5))

let nonzero_small = QCheck.int_range 1 1000

let arb_q =
  QCheck.map
    (fun (n, d) -> qq n d)
    QCheck.(pair (int_range (-1000) 1000) nonzero_small)

let prop_q_field =
  QCheck.Test.make ~name:"q field laws" ~count:300
    QCheck.(triple arb_q arb_q arb_q)
    (fun (a, b, c) ->
      Q.(equal (add a b) (add b a))
      && Q.(equal (add (add a b) c) (add a (add b c)))
      && Q.(equal (mul a (add b c)) (add (mul a b) (mul a c)))
      && Q.(equal (sub a a) zero)
      && (Q.is_zero a || Q.(equal (mul a (inv a)) one)))

let prop_q_compare_antisym =
  QCheck.Test.make ~name:"q compare antisymmetric" ~count:300
    QCheck.(pair arb_q arb_q)
    (fun (a, b) -> Q.compare a b = -Q.compare b a)

let prop_q_floor_le =
  QCheck.Test.make ~name:"floor q <= q < floor q + 1" ~count:300 arb_q
    (fun a ->
      let f = Q.of_bigint (Q.floor a) in
      Q.(f <= a) && Q.(a < add f one))

(* --- Vec tests ----------------------------------------------------------- *)

let test_vec_dot () =
  let a = Vec.of_ints [| 1; 2; 3 |] and b = Vec.of_ints [| 4; 5; 6 |] in
  Alcotest.(check bool) "dot" true Q.(equal (Vec.dot a b) (q 32));
  Alcotest.check_raises "dim mismatch" (Invalid_argument "Vec.dot: dimension mismatch")
    (fun () -> ignore (Vec.dot a (Vec.of_ints [| 1 |])))

let test_vec_normalize () =
  let v = [| qq 1 2; qq 1 3; Q.zero |] in
  let n = Vec.normalize_int v in
  Alcotest.(check bool) "primitive" true
    (Vec.equal n (Vec.of_ints [| 3; 2; 0 |]));
  let w = Vec.of_ints [| 4; 6; 8 |] in
  Alcotest.(check bool) "gcd divide" true
    (Vec.equal (Vec.normalize_int w) (Vec.of_ints [| 2; 3; 4 |]));
  Alcotest.(check bool) "zero stays" true
    (Vec.is_zero (Vec.normalize_int (Vec.zero 3)))

let test_vec_unit () =
  let u = Vec.unit 3 1 in
  Alcotest.(check bool) "unit" true (Vec.equal u (Vec.of_ints [| 0; 1; 0 |]))

(* --- Mat tests ----------------------------------------------------------- *)

let test_mat_mul () =
  let a = Mat.of_ints [| [| 1; 2 |]; [| 3; 4 |] |] in
  let b = Mat.of_ints [| [| 5; 6 |]; [| 7; 8 |] |] in
  Alcotest.(check bool) "mul" true
    (Mat.equal (Mat.mul a b) (Mat.of_ints [| [| 19; 22 |]; [| 43; 50 |] |]))

let test_mat_inverse () =
  let a = Mat.of_ints [| [| 2; 1 |]; [| 1; 1 |] |] in
  (match Mat.inverse a with
  | None -> Alcotest.fail "invertible matrix reported singular"
  | Some inv ->
    Alcotest.(check bool) "a * a^-1 = I" true
      (Mat.equal (Mat.mul a inv) (Mat.identity 2)));
  let sing = Mat.of_ints [| [| 1; 2 |]; [| 2; 4 |] |] in
  Alcotest.(check bool) "singular" true (Mat.inverse sing = None)

let test_mat_rank_nullspace () =
  let m = Mat.of_ints [| [| 1; 2; 3 |]; [| 2; 4; 6 |]; [| 1; 0; 1 |] |] in
  Alcotest.(check int) "rank" 2 (Mat.rank m);
  let ns = Mat.nullspace m in
  Alcotest.(check int) "nullity" 1 (List.length ns);
  List.iter
    (fun v ->
      Alcotest.(check bool) "m v = 0" true (Vec.is_zero (Mat.mul_vec m v)))
    ns

let test_mat_solve () =
  let a = Mat.of_ints [| [| 1; 1 |]; [| 1; -1 |] |] in
  let b = Vec.of_ints [| 3; 1 |] in
  (match Mat.solve a b with
  | None -> Alcotest.fail "solvable system reported unsolvable"
  | Some x ->
    Alcotest.(check bool) "solution" true (Vec.equal (Mat.mul_vec a x) b));
  (* inconsistent system *)
  let a2 = Mat.of_ints [| [| 1; 1 |]; [| 1; 1 |] |] in
  let b2 = Vec.of_ints [| 1; 2 |] in
  Alcotest.(check bool) "inconsistent" true (Mat.solve a2 b2 = None)

let test_mat_rowspace () =
  let m = Mat.of_ints [| [| 1; 0; 0 |]; [| 0; 1; 0 |] |] in
  Alcotest.(check bool) "in" true
    (Mat.row_space_contains m (Vec.of_ints [| 3; -2; 0 |]));
  Alcotest.(check bool) "out" false
    (Mat.row_space_contains m (Vec.of_ints [| 0; 0; 1 |]));
  Alcotest.(check bool) "empty contains zero" true
    (Mat.row_space_contains [||] (Vec.zero 3));
  Alcotest.(check bool) "empty excludes nonzero" false
    (Mat.row_space_contains [||] (Vec.of_ints [| 1; 0 |]))

let test_mat_orth_complement () =
  let m = Mat.of_ints [| [| 1; 0; 0 |] |] in
  let comp = Mat.orthogonal_complement m in
  Alcotest.(check int) "complement dim" 2 (List.length comp);
  List.iter
    (fun v ->
      Alcotest.(check bool) "orthogonal" true (Q.is_zero (Vec.dot (Mat.row m 0) v)))
    comp

let arb_small_mat n =
  QCheck.map
    (fun cells ->
      Array.init n (fun i -> Array.init n (fun j -> q cells.((i * n) + j))))
    QCheck.(array_of_size (QCheck.Gen.return (n * n)) (int_range (-5) 5))

let prop_inverse_correct =
  QCheck.Test.make ~name:"mat inverse correct when it exists" ~count:200
    (arb_small_mat 3)
    (fun m ->
      match Mat.inverse m with
      | None -> Mat.rank m < 3
      | Some i -> Mat.equal (Mat.mul m i) (Mat.identity 3))

let prop_nullspace_in_kernel =
  QCheck.Test.make ~name:"nullspace vectors are in the kernel" ~count:200
    (arb_small_mat 3)
    (fun m ->
      List.for_all (fun v -> Vec.is_zero (Mat.mul_vec m v)) (Mat.nullspace m))

let prop_rank_nullity =
  QCheck.Test.make ~name:"rank + nullity = cols" ~count:200 (arb_small_mat 3)
    (fun m -> Mat.rank m + List.length (Mat.nullspace m) = 3)

let prop_solve_solves =
  QCheck.Test.make ~name:"solve finds solutions of constructed systems" ~count:200
    (QCheck.pair (arb_small_mat 3)
       (QCheck.triple (QCheck.int_range (-5) 5) (QCheck.int_range (-5) 5)
          (QCheck.int_range (-5) 5)))
    (fun (m, (x0, x1, x2)) ->
      (* build b = m x so the system is solvable by construction *)
      let x = Vec.of_ints [| x0; x1; x2 |] in
      let b = Mat.mul_vec m x in
      match Mat.solve m b with
      | Some sol -> Vec.equal (Mat.mul_vec m sol) b
      | None -> false)

let prop_rref_idempotent =
  QCheck.Test.make ~name:"rref idempotent" ~count:200 (arb_small_mat 3)
    (fun m ->
      let r1, _ = Mat.rref m in
      let r2, _ = Mat.rref r1 in
      Mat.equal r1 r2)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "linalg"
    [ ( "bigint",
        [ Alcotest.test_case "basics" `Quick test_bigint_basics;
          Alcotest.test_case "strings" `Quick test_bigint_string;
          Alcotest.test_case "large arithmetic" `Quick test_bigint_arith_large;
          Alcotest.test_case "divmod signs" `Quick test_bigint_divmod_signs;
          Alcotest.test_case "fdiv/cdiv" `Quick test_bigint_fdiv_cdiv;
          Alcotest.test_case "gcd/lcm" `Quick test_bigint_gcd;
          Alcotest.test_case "pow" `Quick test_bigint_pow;
          Alcotest.test_case "div by zero" `Quick test_bigint_div_by_zero;
          Alcotest.test_case "knuth stress" `Quick test_bigint_knuth_stress;
          Alcotest.test_case "boundary roundtrip" `Quick
            test_bigint_boundary_roundtrip;
          Alcotest.test_case "boundary promotion" `Quick
            test_bigint_boundary_promotion ] );
      ( "bigint-props",
        qt
          [ prop_roundtrip; prop_add_matches; prop_mul_matches;
            prop_divmod_invariant; prop_gcd_divides; prop_compare_total_order;
            prop_string_roundtrip ] );
      ( "bigint-differential",
        qt
          [ diff_add; diff_sub; diff_mul; diff_divmod; diff_gcd; diff_compare ] );
      ( "q",
        [ Alcotest.test_case "normalization" `Quick test_q_normalization;
          Alcotest.test_case "arithmetic" `Quick test_q_arith;
          Alcotest.test_case "floor/ceil" `Quick test_q_floor_ceil ] );
      ("q-props", qt [ prop_q_field; prop_q_compare_antisym; prop_q_floor_le ]);
      ( "vec",
        [ Alcotest.test_case "dot" `Quick test_vec_dot;
          Alcotest.test_case "normalize_int" `Quick test_vec_normalize;
          Alcotest.test_case "unit" `Quick test_vec_unit ] );
      ( "mat",
        [ Alcotest.test_case "mul" `Quick test_mat_mul;
          Alcotest.test_case "inverse" `Quick test_mat_inverse;
          Alcotest.test_case "rank/nullspace" `Quick test_mat_rank_nullspace;
          Alcotest.test_case "solve" `Quick test_mat_solve;
          Alcotest.test_case "row space" `Quick test_mat_rowspace;
          Alcotest.test_case "orth complement" `Quick test_mat_orth_complement ] );
      ( "mat-props",
        qt
          [ prop_inverse_correct; prop_nullspace_in_kernel; prop_rank_nullity;
            prop_rref_idempotent; prop_solve_solves ] ) ]
