(* CI checker for exported Chrome trace-event files.

   Usage: trace_check FILE.json...

   Each file must parse as JSON and pass Obs.Export.validate:
   a {"traceEvents": [...]} object whose events have string names,
   known phases (B/E/i/I/M), numeric non-decreasing timestamps, and
   whose B/E span events nest like parentheses with matching names.
   Exit 0 if every file passes, 1 otherwise. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check path =
  match Obs.Json.parse (read_file path) with
  | Error msg ->
    Printf.eprintf "%s: %s\n" path msg;
    false
  | Ok json -> (
    match Obs.Export.validate json with
    | Ok n ->
      Printf.printf "%s: ok (%d events)\n" path n;
      true
    | Error msg ->
      Printf.eprintf "%s: invalid trace: %s\n" path msg;
      false)

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: trace_check FILE.json...";
    exit 2
  end;
  let ok = List.fold_left (fun acc f -> check f && acc) true files in
  exit (if ok then 0 else 1)
