(* Tests for the benchmark kernels: structural properties that the
   paper's arguments rest on. *)

open Deps

let analyze prog = Dep.analyze prog

let scc_count prog =
  let deps = analyze prog in
  let ddg = Ddg.build prog deps in
  Ddg.scc_count (Ddg.scc_kosaraju ddg)

let test_registry_complete () =
  (* Table 2's ten benchmarks plus the four reduction kernels *)
  Alcotest.(check int) "fourteen benchmarks" 14
    (List.length Kernels.Registry.all);
  let names = List.map (fun e -> e.Kernels.Registry.name) Kernels.Registry.all in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " present") true (List.mem n names))
    [ "gemsfdtd"; "swim"; "applu"; "bt"; "sp"; "advect"; "lu"; "tce"; "gemver";
      "wupwise"; "dot"; "gemmacc"; "histogram"; "covariance" ];
  (* five large programs, as in Table 2 *)
  Alcotest.(check int) "five large" 5
    (List.length (List.filter (fun e -> e.Kernels.Registry.large) Kernels.Registry.all))

let test_registry_builds () =
  List.iter
    (fun (e : Kernels.Registry.entry) ->
      let prog = e.program ~n:6 () in
      Alcotest.(check bool)
        (e.name ^ " has statements")
        true
        (Array.length prog.Scop.Program.stmts > 0))
    Kernels.Registry.all

let test_swim_structure () =
  let prog = Kernels.Swim.program ~n:8 () in
  Alcotest.(check int) "18 statements" 18 (Array.length prog.stmts);
  (* dimensionality profile: 3 + 9 + 6 *)
  let dims = Array.map Scop.Statement.depth prog.stmts in
  Alcotest.(check int) "nine 1-D statements" 9
    (Array.fold_left (fun acc d -> if d = 1 then acc + 1 else acc) 0 dims);
  Alcotest.(check int) "nine 2-D statements" 9
    (Array.fold_left (fun acc d -> if d = 2 then acc + 1 else acc) 0 dims);
  (* S13 depends on intermediates; S15 does not (the Figure 5 argument) *)
  let deps = analyze prog in
  let id name =
    let r = ref (-1) in
    Array.iteri (fun i (s : Scop.Statement.t) -> if s.name = name then r := i) prog.stmts;
    !r
  in
  let depends_on_intermediate dst =
    List.exists
      (fun (d : Dep.t) ->
        Dep.is_true d && d.dst = id dst && d.src >= id "S4" && d.src <= id "S12")
      deps
  in
  Alcotest.(check bool) "S13 blocked by intermediates" true
    (depends_on_intermediate "S13");
  Alcotest.(check bool) "S16 blocked by intermediates" true
    (depends_on_intermediate "S16");
  Alcotest.(check bool) "S15 free of intermediates" false
    (depends_on_intermediate "S15");
  Alcotest.(check bool) "S18 free of intermediates" false
    (depends_on_intermediate "S18")

let test_swim_input_reuse () =
  (* S1, S2, S3 share reads (cu, cv, z, h): the input dependences
     Algorithm 1 needs *)
  let prog = Kernels.Swim.program ~n:8 () in
  let deps = analyze prog in
  let rar a b =
    List.exists
      (fun (d : Dep.t) ->
        d.kind = Dep.Input
        && ((d.src = a && d.dst = b) || (d.src = b && d.dst = a)))
      deps
  in
  Alcotest.(check bool) "S1~S2" true (rar 0 1);
  Alcotest.(check bool) "S1~S3" true (rar 0 2);
  Alcotest.(check bool) "S2~S3" true (rar 1 2)

let test_lu_single_scc () =
  let prog = Kernels.Lu.program ~n:8 () in
  Alcotest.(check int) "S1 and S2 form one SCC" 1 (scc_count prog)

let test_advect_sccs () =
  let prog = Kernels.Advect.program ~n:8 () in
  Alcotest.(check int) "four singleton SCCs" 4 (scc_count prog)

let test_tce_chain () =
  let prog = Kernels.Tce.program ~n:5 () in
  let deps = analyze prog in
  (* producer-consumer chain S1 -> S2 -> S3 -> S4 *)
  let flow a b =
    List.exists
      (fun (d : Dep.t) -> d.kind = Dep.Flow && d.src = a && d.dst = b)
      deps
  in
  Alcotest.(check bool) "S1->S2" true (flow 0 1);
  Alcotest.(check bool) "S2->S3" true (flow 1 2);
  Alcotest.(check bool) "S3->S4" true (flow 2 3);
  (* permuted loop orders *)
  let iters i = prog.stmts.(i).Scop.Statement.iters in
  Alcotest.(check bool) "loop orders differ" true (iters 0 <> iters 1)

let test_gemsfdtd_dim_mix () =
  let prog = Kernels.Gemsfdtd.program ~n:5 () in
  let dims = Array.map Scop.Statement.depth prog.stmts in
  Alcotest.(check int) "six 3-D" 6
    (Array.fold_left (fun a d -> if d = 3 then a + 1 else a) 0 dims);
  Alcotest.(check int) "six 2-D" 6
    (Array.fold_left (fun a d -> if d = 2 then a + 1 else a) 0 dims);
  (* the dimensionality alternates in program order: the structure that
     defeats dimension-based cutting under a DFS order *)
  Alcotest.(check bool) "mix alternates" true
    (dims.(1) = 3 && dims.(2) = 2 && dims.(3) = 3)

let test_passes_cross_pass_deps () =
  (* applu: a flow dependence from each pass into the next *)
  let prog = Kernels.Applu.program ~n:6 () in
  let deps = analyze prog in
  let id name =
    let r = ref (-1) in
    Array.iteri (fun i (s : Scop.Statement.t) -> if s.name = name then r := i) prog.stmts;
    !r
  in
  let flow a b =
    List.exists
      (fun (d : Dep.t) -> d.kind = Dep.Flow && d.src = id a && d.dst = id b)
      deps
  in
  Alcotest.(check bool) "x-pass feeds y-pass" true (flow "Sxa" "Syb");
  Alcotest.(check bool) "y-pass feeds z-pass" true (flow "Sya" "Szb")

let test_wupwise_imperfect () =
  let prog = Kernels.Wupwise.program ~n:6 () in
  let dims = Array.map Scop.Statement.depth prog.stmts in
  Alcotest.(check (array int)) "imperfect nest" [| 2; 2; 3; 3 |] dims;
  (* the 3-D statements are reductions over k (self flow carried at
     level 2) *)
  let deps = analyze prog in
  Alcotest.(check bool) "S3 reduction" true
    (List.exists
       (fun (d : Dep.t) ->
         d.kind = Dep.Flow && d.src = 2 && d.dst = 2 && d.level = Dep.Carried 2)
       deps)

(* --- Polybench extras ----------------------------------------------------- *)

let test_extras_build () =
  List.iter
    (fun (name, mk) ->
      let prog = mk () in
      Alcotest.(check bool) (name ^ " builds") true
        (Array.length prog.Scop.Program.stmts > 0))
    Kernels.Extras.all

let test_extras_wisefuse_matches_smartfuse () =
  (* Section 5.3: identical partitionings on small kernels *)
  List.iter
    (fun (name, mk) ->
      let prog = mk () in
      let wf = Fusion.Wisefuse.run prog in
      let sf = Pluto.Scheduler.run Pluto.Scheduler.smartfuse prog in
      Alcotest.(check int)
        (name ^ " same partition count")
        (Fusion.Report.partition_count sf)
        (Fusion.Report.partition_count wf))
    Kernels.Extras.all

let test_extras_semantics () =
  List.iter
    (fun (name, mk) ->
      let prog = mk () in
      let params = prog.Scop.Program.default_params in
      let reference = Machine.Interp.init_memory prog ~params in
      Machine.Interp.run_original prog reference ~params;
      let res = Fusion.Wisefuse.run prog in
      let m = Machine.Interp.init_memory prog ~params in
      Machine.Interp.run prog (Codegen.Scan.of_result res) m ~params;
      match Machine.Interp.first_diff reference m with
      | None -> ()
      | Some d -> Alcotest.failf "%s: %s" name d)
    [ ("jacobi2d", fun () -> Kernels.Extras.jacobi2d ~n:8 ~steps:4 ());
      ("mvt", fun () -> Kernels.Extras.mvt ~n:10 ());
      ("doitgen", fun () -> Kernels.Extras.doitgen ~n:6 ());
      ("sweep2d", fun () -> Kernels.Extras.sweep2d ~n:10 ()) ]

let test_jacobi_time_loop_serial () =
  (* the t loop must come out Forward (serial), the space loops parallel *)
  let prog = Kernels.Extras.jacobi2d ~n:8 ~steps:4 () in
  let res = Fusion.Wisefuse.run prog in
  let members = [ 0; 1 ] in
  let first_hyp =
    let rec find l =
      if Pluto.Sched.is_beta_level res.sched l then find (l + 1) else l
    in
    find 0
  in
  Alcotest.(check bool) "t loop is pipelined" true
    (Pluto.Satisfy.row_class res.prog res.true_deps res.sched ~level:first_hyp
       ~members
    = Pluto.Satisfy.Forward)

let () =
  Alcotest.run "kernels"
    [ ( "registry",
        [ Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "builds" `Quick test_registry_builds ] );
      ( "extras",
        [ Alcotest.test_case "build" `Quick test_extras_build;
          Alcotest.test_case "wisefuse = smartfuse" `Quick
            test_extras_wisefuse_matches_smartfuse;
          Alcotest.test_case "semantics" `Quick test_extras_semantics;
          Alcotest.test_case "jacobi t-loop serial" `Quick
            test_jacobi_time_loop_serial ] );
      ( "structure",
        [ Alcotest.test_case "swim layout" `Quick test_swim_structure;
          Alcotest.test_case "swim input reuse" `Quick test_swim_input_reuse;
          Alcotest.test_case "lu single SCC" `Quick test_lu_single_scc;
          Alcotest.test_case "advect SCCs" `Quick test_advect_sccs;
          Alcotest.test_case "tce chain" `Quick test_tce_chain;
          Alcotest.test_case "gemsfdtd dim mix" `Quick test_gemsfdtd_dim_mix;
          Alcotest.test_case "applu cross-pass deps" `Quick
            test_passes_cross_pass_deps;
          Alcotest.test_case "wupwise imperfect" `Quick test_wupwise_imperfect ] ) ]
