(* Observability tests: the shared JSON writer/parser, the span tracer
   and its self-time reconstruction, Chrome trace-event export and
   validation, trace determinism, and the zero-effect guarantee of the
   disabled (null) sink. *)

let swim () = Kernels.Swim.program ~n:12 ()
let advect () = Kernels.Advect.program ~n:12 ()

(* a fresh, fully reset pipeline run; returns the optimized outcome *)
let run_pipeline prog =
  Linalg.Counters.reset ();
  Pluto.Farkas.reset_cache ();
  Fusion.Model.optimize Fusion.Model.Wisefuse prog

let sched_string (opt : Fusion.Model.optimized) =
  match opt.Fusion.Model.scheduler with
  | Some res ->
    Format.asprintf "%a" (Pluto.Sched.pp res.Pluto.Scheduler.prog)
      res.Pluto.Scheduler.sched
  | None -> "none"

(* --- Json ---------------------------------------------------------------- *)

let test_json_escaping () =
  let open Obs.Json in
  Alcotest.(check string)
    "quotes and backslashes" {|"a\"b\\c"|}
    (to_string (Str {|a"b\c|}));
  Alcotest.(check string)
    "control characters" {|"tab\there\nand\u0001"|}
    (to_string (Str "tab\there\nand\001"));
  Alcotest.(check string) "integral float" "3.0" (to_string (Float 3.0));
  Alcotest.(check string) "non-finite degrades to null" "null"
    (to_string (Float Float.infinity));
  Alcotest.(check string)
    "object" {|{"a": 1, "b": [true, null]}|}
    (to_string (Obj [ ("a", Int 1); ("b", List [ Bool true; Null ]) ]))

let test_json_roundtrip () =
  let open Obs.Json in
  let values =
    [
      Null;
      Bool false;
      Int (-42);
      Float 0.1;
      Float 1e20;
      Str "plain";
      Str {|quo"te back\slash new
line tab	end|};
      List [ Int 1; Str "x"; Obj [] ];
      Obj
        [
          ("nested", Obj [ ("deep", List [ Float 2.5; Bool true ]) ]);
          ("empty", List []);
        ];
    ]
  in
  List.iter
    (fun v ->
      match parse (to_string v) with
      | Ok v' -> Alcotest.(check bool) (to_string v) true (v = v')
      | Error e -> Alcotest.fail e)
    values;
  (* pretty printer parses back too *)
  let v = Obj [ ("k", List [ Int 1; Int 2 ]); ("s", Str "x") ] in
  (match parse (to_string_pretty v) with
  | Ok v' -> Alcotest.(check bool) "pretty roundtrip" true (v = v')
  | Error e -> Alcotest.fail e);
  (* unicode escape decodes to UTF-8 *)
  (match parse {|"é"|} with
  | Ok (Str s) -> Alcotest.(check string) "utf8" "\xc3\xa9" s
  | _ -> Alcotest.fail "unicode escape");
  List.iter
    (fun bad ->
      match parse bad with
      | Ok _ -> Alcotest.fail ("accepted garbage: " ^ bad)
      | Error _ -> ())
    [ "{"; "[1,]"; {|{"a" 1}|}; "tru"; {|"unterminated|}; "1 2" ]

(* --- trace spans and self-times ------------------------------------------ *)

let test_span_tree () =
  let _, events =
    Obs.Trace.with_recording (fun () ->
        Obs.Trace.span ~cat:"stage" "outer" (fun () ->
            Obs.Trace.span ~cat:"stage" "inner" (fun () -> ());
            Obs.Trace.instant ~cat:"x" "mark"))
  in
  Obs.Trace.disable ();
  Alcotest.(check int) "4 span events + 1 instant" 5 (List.length events);
  (* validate the export too *)
  (match Obs.Export.validate (Obs.Export.chrome_trace events) with
  | Ok n -> Alcotest.(check int) "validated count" 6 n (* + metadata *)
  | Error e -> Alcotest.fail e);
  (* exception still closes the span *)
  let _, events =
    Obs.Trace.with_recording (fun () ->
        try Obs.Trace.span ~cat:"stage" "boom" (fun () -> failwith "x")
        with Failure _ -> ())
  in
  Obs.Trace.disable ();
  match Obs.Export.validate (Obs.Export.chrome_trace events) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_validate_rejects () =
  let open Obs.Json in
  let ev ?(ph = "B") ?(ts = 0.0) name =
    Obj [ ("name", Str name); ("ph", Str ph); ("ts", Float ts) ]
  in
  let trace evs = Obj [ ("traceEvents", List evs) ] in
  let expect_error what t =
    match Obs.Export.validate t with
    | Ok _ -> Alcotest.fail ("accepted " ^ what)
    | Error _ -> ()
  in
  expect_error "non-object" (List []);
  expect_error "unbalanced B" (trace [ ev "a" ]);
  expect_error "unbalanced E" (trace [ ev ~ph:"E" "a" ]);
  expect_error "mismatched names"
    (trace [ ev "a"; ev ~ph:"E" "b" ]);
  expect_error "non-monotone ts"
    (trace [ ev ~ts:2.0 "a"; ev ~ph:"E" ~ts:1.0 "a" ]);
  expect_error "unknown phase" (trace [ ev ~ph:"Q" "a" ]);
  match Obs.Export.validate (trace [ ev "a"; ev ~ph:"E" ~ts:1.0 "a" ]) with
  | Ok 2 -> ()
  | Ok n -> Alcotest.failf "expected 2 events, got %d" n
  | Error e -> Alcotest.fail e

(* --- determinism and the null sink --------------------------------------- *)

let structure events =
  List.map
    (fun (e : Obs.Trace.event) ->
      ( e.Obs.Trace.ph,
        e.Obs.Trace.name,
        e.Obs.Trace.cat,
        List.map (fun (k, v) -> (k, Obs.Json.to_string v)) e.Obs.Trace.args ))
    events

let traced_pipeline prog =
  Linalg.Counters.reset ();
  Pluto.Farkas.reset_cache ();
  let opt, events = Obs.Trace.with_recording (fun () -> run_pipeline prog) in
  Obs.Trace.disable ();
  (opt, events)

let test_determinism () =
  List.iter
    (fun prog ->
      let o1, e1 = traced_pipeline (prog ()) in
      let o2, e2 = traced_pipeline (prog ()) in
      Alcotest.(check int) "same event count" (List.length e1)
        (List.length e2);
      Alcotest.(check bool)
        "same span/decision structure modulo timestamps" true
        (structure e1 = structure e2);
      Alcotest.(check string) "same schedule" (sched_string o1)
        (sched_string o2))
    [ swim; advect ]

let test_null_sink_no_effect () =
  (* tracing off: no events appear, no counters change, and the
     schedule is byte-identical to a traced run's *)
  Obs.Trace.disable ();
  Obs.Trace.reset ();
  let opt_off = run_pipeline (swim ()) in
  let counters_off = Linalg.Counters.all_counters () in
  Alcotest.(check int) "null sink records nothing" 0 (Obs.Trace.event_count ());
  let opt_on, events = traced_pipeline (swim ()) in
  let counters_on = Linalg.Counters.all_counters () in
  Alcotest.(check bool) "traced run recorded events" true (events <> []);
  Alcotest.(check string) "schedules byte-identical" (sched_string opt_off)
    (sched_string opt_on);
  Alcotest.(check bool) "tracing adds no counters" true
    (counters_off = counters_on)

let test_multi_domain_capture () =
  (* Concurrent captures on separate domains must each harvest exactly
     their own events — none lost, none leaked from a sibling.  Under
     the old design (one global sink behind plain refs) concurrent
     emitters raced the shared list head and dropped events; the
     per-domain sinks make this deterministic. *)
  let domains = 4 and per = 200 in
  let worker d () =
    let (), events =
      Obs.Trace.capture (fun () ->
          for i = 1 to per do
            Obs.Trace.instant ~cat:"md" (Printf.sprintf "d%d-%d" d i)
          done)
    in
    events
  in
  (* an outer recording on the test's own domain must survive the
     concurrent captures untouched *)
  Obs.Trace.enable ();
  Obs.Trace.instant ~cat:"md" "outer";
  let results =
    List.init domains (fun d -> Domain.spawn (worker d))
    |> List.map Domain.join
  in
  List.iteri
    (fun d events ->
      Alcotest.(check int)
        (Printf.sprintf "domain %d: no event lost" d)
        per (List.length events);
      let prefix = Printf.sprintf "d%d-" d in
      let own (e : Obs.Trace.event) =
        String.length e.Obs.Trace.name >= String.length prefix
        && String.sub e.Obs.Trace.name 0 (String.length prefix) = prefix
      in
      Alcotest.(check bool)
        (Printf.sprintf "domain %d: only its own events" d)
        true (List.for_all own events))
    results;
  Alcotest.(check int) "outer sink untouched" 1 (Obs.Trace.event_count ());
  Obs.Trace.disable ();
  Alcotest.(check bool) "all sinks off again" false (Obs.Trace.on ())

let test_self_times_reconcile () =
  (* the span tree's exclusive self-times must agree with the
     Counters.stage_times accumulators: same stages, and each within
     5% (they bracket the same code with adjacent clock reads) *)
  let _, events = traced_pipeline (swim ()) in
  ignore events;
  let stages = Linalg.Counters.stage_times () in
  let spans = Obs.Trace.self_times ~cat:"stage" () in
  Alcotest.(check (list string))
    "same stages in same order" (List.map fst stages) (List.map fst spans);
  List.iter
    (fun (name, t) ->
      let t' = List.assoc name spans in
      let tol = 0.05 *. Float.max t t' +. 5e-4 in
      if Float.abs (t -. t') > tol then
        Alcotest.failf "stage %s: counters %.6fs vs spans %.6fs" name t t')
    stages

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span tree" `Quick test_span_tree;
          Alcotest.test_case "validate rejects" `Quick test_validate_rejects;
          Alcotest.test_case "multi-domain capture" `Quick
            test_multi_domain_capture;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "null sink no effect" `Quick
            test_null_sink_no_effect;
          Alcotest.test_case "self-times reconcile" `Quick
            test_self_times_reconcile;
        ] );
    ]
