(* Robustness tests: solver budgets, the graceful-degradation ladder,
   typed diagnostics, always-on schedule verification, the chaos hooks,
   and the bench regression comparator. *)

open Linalg
open Poly
open Ilp

let vec = Vec.of_int_list

(* --- fixtures ------------------------------------------------------------ *)

let swim () = Kernels.Swim.program ~n:12 ()
let advect () = Kernels.Advect.program ~n:12 ()
let gemsfdtd () = Kernels.Gemsfdtd.program ~n:6 ()

(* a 1-d producer/consumer pair with exactly one true (flow)
   dependence, S0 -> S1 on A[i] *)
let producer_consumer () =
  let open Scop.Build in
  let ctx = create ~name:"pc" ~params:[ ("N", 16) ] in
  let n = param ctx "N" in
  let a = array ctx "A" [ n ] in
  let b = array ctx "B" [ n ] in
  loop ctx "i" ~lb:(ci 0) ~ub:(n -~ ci 1) (fun i ->
      assign ctx "S0" a [ i ] (f 1.0));
  loop ctx "i" ~lb:(ci 0) ~ub:(n -~ ci 1) (fun i ->
      assign ctx "S1" b [ i ] (a.%([ i ]) +: f 1.0));
  finish ctx

(* a depth-2 stencil, for rank/singularity corruption *)
let stencil2d () =
  let open Scop.Build in
  let ctx = create ~name:"st2" ~params:[ ("N", 12) ] in
  let n = param ctx "N" in
  let a = array ctx "A" [ n; n ] in
  let b = array ctx "B" [ n; n ] in
  loop ctx "i" ~lb:(ci 1) ~ub:(n -~ ci 2) (fun i ->
      loop ctx "j" ~lb:(ci 1) ~ub:(n -~ ci 2) (fun j ->
          assign ctx "S0" b [ i; j ]
            (a.%([ i -~ ci 1; j ]) +: a.%([ i; j -~ ci 1 ]))));
  finish ctx

let schedule_of prog =
  Pluto.Scheduler.run Fusion.Wisefuse.config prog

let unlimited () = Budget.make ()

(* --- budgets ------------------------------------------------------------- *)

let test_budget_latch () =
  let b = Budget.make ~pivots:2 () in
  Alcotest.(check bool) "1st pivot" true (Budget.spend_pivot b);
  Alcotest.(check bool) "2nd pivot" true (Budget.spend_pivot b);
  Alcotest.(check bool) "3rd pivot trips" false (Budget.spend_pivot b);
  Alcotest.(check bool) "tripped" true (Budget.exhausted b);
  (* latched across dimensions: nodes are unlimited but the budget is
     already dead *)
  Alcotest.(check bool) "node after trip" false (Budget.spend_node b);
  let b' = Budget.refresh b in
  Alcotest.(check bool) "refresh clears" false (Budget.exhausted b');
  Alcotest.(check bool) "refresh spends again" true (Budget.spend_pivot b')

let test_budget_trip () =
  let b = Budget.make () in
  Alcotest.(check bool) "fresh" false (Budget.exhausted b);
  Budget.trip b;
  Alcotest.(check bool) "tripped" true (Budget.exhausted b);
  Alcotest.(check bool) "spend after trip" false (Budget.spend_pivot b)

(* whatever the environment says, every pipeline entry point must come
   back with a verified schedule (this is what the tiny-budget CI job
   leans on: it reruns this binary under WISEFUSE_BUDGET_MS=1) *)
let test_model_optimize_env_budget_legal () =
  let prog = swim () in
  let opt = Fusion.Model.optimize Fusion.Model.Wisefuse prog in
  match opt.Fusion.Model.resilience with
  | None -> Alcotest.fail "polyhedral model must report resilience"
  | Some o ->
    let r = o.Fusion.Resilient.result in
    (match
       Pluto.Satisfy.check_legal r.Pluto.Scheduler.prog
         r.Pluto.Scheduler.true_deps r.Pluto.Scheduler.sched
     with
    | Ok () -> ()
    | Error d ->
      Alcotest.failf "illegal schedule under env budget (dep %d->%d)"
        d.Deps.Dep.src d.Deps.Dep.dst)

(* note: mutates the WISEFUSE_BUDGET_* environment; runs after the
   env-integration test above and every other test passes its budget
   explicitly, so the order in the suite list matters only for that
   one *)
let test_budget_of_env () =
  let clear () =
    List.iter
      (fun v -> Unix.putenv v "")
      [ "WISEFUSE_BUDGET_MS"; "WISEFUSE_BUDGET_PIVOTS"; "WISEFUSE_BUDGET_NODES" ]
  in
  clear ();
  Alcotest.(check bool) "unset -> None" true (Budget.of_env () = None);
  Unix.putenv "WISEFUSE_BUDGET_PIVOTS" "100";
  (match Budget.of_env () with
  | Some _ -> ()
  | None -> Alcotest.fail "pivots=100 must produce a budget");
  Unix.putenv "WISEFUSE_BUDGET_PIVOTS" "abc";
  Alcotest.(check bool) "malformed ignored" true (Budget.of_env () = None);
  Unix.putenv "WISEFUSE_BUDGET_PIVOTS" "-5";
  Alcotest.(check bool) "non-positive ignored" true (Budget.of_env () = None);
  clear ()

(* --- budget threading through the solvers -------------------------------- *)

let test_lp_budget_exhausted () =
  let p =
    Polyhedron.make 2 [ Constr.ge [ 1; 0; -1 ]; Constr.ge [ 0; 1; -2 ] ]
  in
  let b = Budget.make ~pivots:0 () in
  Alcotest.(check bool) "0-pivot budget" true
    (Lp.minimize ~budget:b p (vec [ 1; 1; 0 ]) = Lp.Exhausted);
  (* and without a budget the same problem still solves *)
  match Lp.minimize p (vec [ 1; 1; 0 ]) with
  | Lp.Optimal _ -> ()
  | _ -> Alcotest.fail "unbudgeted solve must stay optimal"

(* --- graceful degradation ------------------------------------------------- *)

(* acceptance bar from the issue: with a 1-pivot budget every registry
   kernel still yields a schedule that passes check_legal *)
let test_one_pivot_all_kernels_legal () =
  List.iter
    (fun (e : Kernels.Registry.entry) ->
      let prog = e.Kernels.Registry.program () in
      let budget = Budget.make ~pivots:1 () in
      let o = Fusion.Resilient.optimize ~budget prog in
      let r = o.Fusion.Resilient.result in
      (match Pluto.Satisfy.check_complete r.Pluto.Scheduler.prog r.Pluto.Scheduler.sched with
      | Ok () -> ()
      | Error d ->
        Alcotest.failf "%s: incomplete degraded schedule (%s)"
          e.Kernels.Registry.name d.Pluto.Diagnostics.code);
      match
        Pluto.Satisfy.check_legal r.Pluto.Scheduler.prog
          r.Pluto.Scheduler.true_deps r.Pluto.Scheduler.sched
      with
      | Ok () -> ()
      | Error d ->
        Alcotest.failf "%s: illegal degraded schedule (dep %d->%d)"
          e.Kernels.Registry.name d.Deps.Dep.src d.Deps.Dep.dst)
    Kernels.Registry.all

let test_one_pivot_degrades_with_notes () =
  let prog = swim () in
  let o = Fusion.Resilient.optimize ~budget:(Budget.make ~pivots:1 ()) prog in
  Alcotest.(check bool) "degraded" true (Fusion.Resilient.degraded o);
  Alcotest.(check bool) "notes recorded" true
    (o.Fusion.Resilient.notes <> [])

(* the happy path must be byte-identical to the raw scheduler: the
   ladder may not perturb PR 2 results *)
let test_happy_path_identical () =
  List.iter
    (fun prog ->
      let base = schedule_of prog in
      let o = Fusion.Resilient.optimize ~budget:(unlimited ()) prog in
      Alcotest.(check bool) "primary rung" true
        (o.Fusion.Resilient.rung = Fusion.Resilient.Primary);
      Alcotest.(check bool) "identical schedule" true
        (o.Fusion.Resilient.result.Pluto.Scheduler.sched
        = base.Pluto.Scheduler.sched);
      Alcotest.(check bool) "identical partitions" true
        (o.Fusion.Resilient.result.Pluto.Scheduler.outer_partition
        = base.Pluto.Scheduler.outer_partition))
    [ swim (); advect (); gemsfdtd () ]

let test_schedule_result_matches_run () =
  let prog = advect () in
  let base = schedule_of prog in
  match Pluto.Scheduler.schedule Fusion.Wisefuse.config prog with
  | Ok r ->
    Alcotest.(check bool) "schedule = run" true
      (r.Pluto.Scheduler.sched = base.Pluto.Scheduler.sched)
  | Error d -> Alcotest.failf "unexpected diagnostic %s" d.Pluto.Diagnostics.code

(* --- typed diagnostics ---------------------------------------------------- *)

let test_exit_codes () =
  let open Pluto.Diagnostics in
  let code phase = exit_code (make ~phase ~code:"t" "t") in
  Alcotest.(check int) "usage" 2 (code Usage);
  Alcotest.(check int) "budget" 3 (code Budget);
  Alcotest.(check int) "scheduling" 4 (code Scheduling);
  Alcotest.(check int) "verification" 5 (code Verification);
  Alcotest.(check int) "codegen" 6 (code Codegen)

let test_protect () =
  let open Pluto.Diagnostics in
  (match protect (fun () -> 42) with
  | Ok v -> Alcotest.(check int) "pass-through" 42 v
  | Error _ -> Alcotest.fail "no error expected");
  match protect (fun () -> fail ~phase:Scheduling ~code:"t.boom" "boom") with
  | Ok _ -> Alcotest.fail "must surface the diagnostic"
  | Error d -> Alcotest.(check string) "code" "t.boom" d.code

(* the satellite regression: a cyclic condensation (an scc_of map
   inconsistent with the DDG) must produce a typed diagnostic naming
   the stuck SCCs, not a bare failwith *)
let test_prefusion_cyclic_condensation () =
  let prog = producer_consumer () in
  let ddg =
    { Deps.Ddg.n = 2; succ = [| [ 1 ]; [ 0 ] |]; pred = [| [ 1 ]; [ 0 ] |];
      deps = [] }
  in
  let scc_of = [| 0; 1 |] in
  match Fusion.Prefusion.order prog ddg scc_of with
  | _ -> Alcotest.fail "cyclic condensation must not produce an order"
  | exception Pluto.Diagnostics.Error d ->
    Alcotest.(check string) "code" "prefuse.no-ready-scc"
      d.Pluto.Diagnostics.code;
    Alcotest.(check bool) "phase" true
      (d.Pluto.Diagnostics.phase = Pluto.Diagnostics.Scheduling);
    (match List.assoc_opt "stuck-sccs" d.Pluto.Diagnostics.context with
    | Some stuck -> Alcotest.(check string) "stuck sccs" "0,1" stuck
    | None -> Alcotest.fail "diagnostic must carry the stuck SCC ids")

(* --- always-on verification on corrupted schedules ------------------------ *)

let test_corrupt_negated_row () =
  let prog = producer_consumer () in
  let res = schedule_of prog in
  let corrupt = Array.copy res.Pluto.Scheduler.sched in
  corrupt.(1) <-
    List.map
      (function
        | Pluto.Sched.Hyp h -> Pluto.Sched.Hyp (Array.map (fun c -> -c) h)
        | r -> r)
      corrupt.(1);
  match
    Pluto.Satisfy.check_legal prog res.Pluto.Scheduler.true_deps corrupt
  with
  | Ok () -> Alcotest.fail "negated row must be caught"
  | Error d ->
    (* exactly the S0 -> S1 flow dependence must be reported *)
    Alcotest.(check (pair int int)) "offending dependence" (0, 1)
      (d.Deps.Dep.src, d.Deps.Dep.dst)

let test_corrupt_dropped_level () =
  let prog = producer_consumer () in
  let res = schedule_of prog in
  (* drop the last schedule row of every statement: the level that
     separated S1 from S0 disappears, so the flow dependence is never
     satisfied *)
  let drop_last l = List.filteri (fun i _ -> i < List.length l - 1) l in
  let corrupt = Array.map drop_last res.Pluto.Scheduler.sched in
  match
    Pluto.Satisfy.check_legal prog res.Pluto.Scheduler.true_deps corrupt
  with
  | Ok () -> Alcotest.fail "dropped satisfaction level must be caught"
  | Error d ->
    Alcotest.(check (pair int int)) "offending dependence" (0, 1)
      (d.Deps.Dep.src, d.Deps.Dep.dst)

let test_corrupt_rank_deficient () =
  let prog = stencil2d () in
  let res = schedule_of prog in
  (* duplicate the first iterator row into every hyperplane row: the
     statement's transform collapses to rank 1 *)
  let first_hyp =
    List.find_map
      (function Pluto.Sched.Hyp h -> Some h | _ -> None)
      res.Pluto.Scheduler.sched.(0)
  in
  let h0 = Option.get first_hyp in
  let corrupt = Array.copy res.Pluto.Scheduler.sched in
  corrupt.(0) <-
    List.map
      (function
        | Pluto.Sched.Hyp _ -> Pluto.Sched.Hyp (Array.copy h0)
        | r -> r)
      corrupt.(0);
  match Pluto.Satisfy.check_complete prog corrupt with
  | Ok () -> Alcotest.fail "rank-deficient statement must be caught"
  | Error d ->
    Alcotest.(check string) "code" "verify.singular" d.Pluto.Diagnostics.code;
    (match List.assoc_opt "statement" d.Pluto.Diagnostics.context with
    | Some s -> Alcotest.(check string) "statement named" "S0" s
    | None -> Alcotest.fail "diagnostic must name the statement")

let test_corrupt_zero_row () =
  let prog = producer_consumer () in
  let res = schedule_of prog in
  let corrupt = Array.copy res.Pluto.Scheduler.sched in
  corrupt.(0) <-
    List.map
      (function
        | Pluto.Sched.Hyp h -> Pluto.Sched.Hyp (Array.map (fun _ -> 0) h)
        | r -> r)
      corrupt.(0);
  match Pluto.Satisfy.check_complete prog corrupt with
  | Ok () -> Alcotest.fail "zeroed iterator rows must be caught"
  | Error d ->
    Alcotest.(check string) "code" "verify.rank" d.Pluto.Diagnostics.code

(* --- chaos hooks ---------------------------------------------------------- *)

let test_chaos_exhaust_lp () =
  Lp.Chaos.exhaust := true;
  Fun.protect ~finally:Lp.Chaos.reset (fun () ->
      let p = Polyhedron.make 1 [ Constr.ge [ 1; -1 ] ] in
      Alcotest.(check bool) "forced exhaustion" true
        (Lp.minimize p (vec [ 1; 0 ]) = Lp.Exhausted))

let test_chaos_exhaust_scheduler_typed () =
  Lp.Chaos.exhaust := true;
  Fun.protect ~finally:Lp.Chaos.reset (fun () ->
      match Pluto.Scheduler.schedule Fusion.Wisefuse.config (producer_consumer ()) with
      | Ok _ -> Alcotest.fail "all-exhausted solves cannot schedule"
      | Error d ->
        Alcotest.(check bool) "phase is scheduling" true
          (d.Pluto.Diagnostics.phase = Pluto.Diagnostics.Scheduling))

let test_chaos_warm_fallback_equiv () =
  let prog = swim () in
  let base = (schedule_of prog).Pluto.Scheduler.sched in
  Lp.Chaos.warm_fallback := true;
  Fun.protect ~finally:Lp.Chaos.reset (fun () ->
      let got = (schedule_of prog).Pluto.Scheduler.sched in
      Alcotest.(check bool) "cold-only resolve, same schedule" true
        (got = base))

let test_chaos_big_path_equiv () =
  let prog = advect () in
  let base = (schedule_of prog).Pluto.Scheduler.sched in
  Bigint.chaos_big_path := true;
  Fun.protect
    ~finally:(fun () -> Bigint.chaos_big_path := false)
    (fun () ->
      (* arithmetic stays canonical on the forced Big path *)
      let i x = Bigint.of_int x in
      Alcotest.(check int) "add" 7 (Bigint.to_int (Bigint.add (i 3) (i 4)));
      Alcotest.(check int) "mul" (-12) (Bigint.to_int (Bigint.mul (i 3) (i (-4))));
      Alcotest.(check int) "gcd" 6 (Bigint.to_int (Bigint.gcd (i 12) (i 18)));
      let q, r = Bigint.divmod (i 17) (i 5) in
      Alcotest.(check int) "div" 3 (Bigint.to_int q);
      Alcotest.(check int) "mod" 2 (Bigint.to_int r);
      (* and the whole pipeline is unchanged *)
      let got = (schedule_of prog).Pluto.Scheduler.sched in
      Alcotest.(check bool) "forced Big promotion, same schedule" true
        (got = base))

(* --- bench regression comparator ------------------------------------------ *)

let test_bench_comparator () =
  let open Bench_check in
  let cmp b c = compare_wall ~threshold:1.25 ~baseline_ms:b ~current_ms:c in
  Alcotest.(check bool) "missing" true (cmp None 10.0 = Missing);
  Alcotest.(check bool) "zero baseline guarded" true
    (cmp (Some 0.0) 10.0 = Bad_baseline);
  Alcotest.(check bool) "negative baseline guarded" true
    (cmp (Some (-3.0)) 10.0 = Bad_baseline);
  Alcotest.(check bool) "nan baseline guarded" true
    (cmp (Some Float.nan) 10.0 = Bad_baseline);
  Alcotest.(check bool) "nan current guarded" true
    (cmp (Some 10.0) Float.nan = Bad_baseline);
  (match cmp (Some 10.0) 12.0 with
  | Within r -> Alcotest.(check (float 1e-9)) "ratio" 1.2 r
  | _ -> Alcotest.fail "1.2x is within a 1.25 threshold");
  (match cmp (Some 10.0) 13.0 with
  | Regression r -> Alcotest.(check (float 1e-9)) "ratio" 1.3 r
  | _ -> Alcotest.fail "1.3x must regress a 1.25 threshold");
  Alcotest.(check bool) "only regressions fail" true
    (is_failure (cmp (Some 10.0) 13.0)
    && (not (is_failure (cmp (Some 10.0) 12.0)))
    && (not (is_failure (cmp (Some 0.0) 10.0)))
    && not (is_failure (cmp None 10.0)))

(* one-sided bounds used by the serve and scale gates *)
let test_bench_bounds () =
  let open Bench_check in
  (match check_min ~floor:0.5 ~value:0.7 with
  | Met v -> Alcotest.(check (float 1e-9)) "min met carries value" 0.7 v
  | _ -> Alcotest.fail "0.7 meets a 0.5 floor");
  (match check_min ~floor:0.5 ~value:0.3 with
  | Violation v -> Alcotest.(check (float 1e-9)) "min violation value" 0.3 v
  | _ -> Alcotest.fail "0.3 violates a 0.5 floor");
  Alcotest.(check bool) "floor is inclusive" true
    (check_min ~floor:0.5 ~value:0.5 = Met 0.5);
  (match check_max ~ceiling:10.0 ~value:8.0 with
  | Met v -> Alcotest.(check (float 1e-9)) "max met carries value" 8.0 v
  | _ -> Alcotest.fail "8 meets a 10 ceiling");
  (match check_max ~ceiling:10.0 ~value:11.0 with
  | Violation v -> Alcotest.(check (float 1e-9)) "max violation value" 11.0 v
  | _ -> Alcotest.fail "11 violates a 10 ceiling");
  Alcotest.(check bool) "ceiling is inclusive" true
    (check_max ~ceiling:10.0 ~value:10.0 = Met 10.0);
  (* the zero-ceiling form gates lp-dfp's bb_nodes = 0 invariant *)
  Alcotest.(check bool) "zero ceiling, zero value" true
    (check_max ~ceiling:0.0 ~value:0.0 = Met 0.0);
  Alcotest.(check bool) "zero ceiling, one violates" true
    (check_max ~ceiling:0.0 ~value:1.0 = Violation 1.0);
  (* non-finite inputs never produce a verdict, in either direction *)
  List.iter
    (fun v ->
      Alcotest.(check bool) "nan/inf value guarded" true
        (check_min ~floor:1.0 ~value:v = Bad_value
        && check_max ~ceiling:1.0 ~value:v = Bad_value);
      Alcotest.(check bool) "nan/inf bound guarded" true
        (check_min ~floor:v ~value:1.0 = Bad_value
        && check_max ~ceiling:v ~value:1.0 = Bad_value))
    [ Float.nan; Float.infinity; Float.neg_infinity ];
  Alcotest.(check bool) "only violations fail" true
    (bound_failure (Violation 2.0)
    && (not (bound_failure (Met 2.0)))
    && not (bound_failure Bad_value))

(* --- counters on an empty run ---------------------------------------------- *)

let test_counters_pp_empty () =
  Counters.reset ();
  let s = Format.asprintf "%a" Counters.pp () in
  ignore s

(* -------------------------------------------------------------------------- *)

let () =
  Alcotest.run "resilience"
    [
      ( "budget",
        [
          Alcotest.test_case "latch" `Quick test_budget_latch;
          Alcotest.test_case "trip" `Quick test_budget_trip;
          Alcotest.test_case "env budget stays legal" `Quick
            test_model_optimize_env_budget_legal;
          Alcotest.test_case "of_env parsing" `Quick test_budget_of_env;
          Alcotest.test_case "lp threading" `Quick test_lp_budget_exhausted;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "1-pivot budget: all kernels legal" `Slow
            test_one_pivot_all_kernels_legal;
          Alcotest.test_case "1-pivot budget: degrades with notes" `Quick
            test_one_pivot_degrades_with_notes;
          Alcotest.test_case "happy path byte-identical" `Quick
            test_happy_path_identical;
          Alcotest.test_case "schedule matches run" `Quick
            test_schedule_result_matches_run;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "protect" `Quick test_protect;
          Alcotest.test_case "cyclic condensation" `Quick
            test_prefusion_cyclic_condensation;
        ] );
      ( "verification",
        [
          Alcotest.test_case "negated row" `Quick test_corrupt_negated_row;
          Alcotest.test_case "dropped satisfaction level" `Quick
            test_corrupt_dropped_level;
          Alcotest.test_case "rank-deficient statement" `Quick
            test_corrupt_rank_deficient;
          Alcotest.test_case "zeroed iterator rows" `Quick
            test_corrupt_zero_row;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "forced LP exhaustion" `Quick
            test_chaos_exhaust_lp;
          Alcotest.test_case "exhaustion is typed at the scheduler" `Quick
            test_chaos_exhaust_scheduler_typed;
          Alcotest.test_case "warm-start fallback equivalence" `Quick
            test_chaos_warm_fallback_equiv;
          Alcotest.test_case "forced Big promotion equivalence" `Quick
            test_chaos_big_path_equiv;
        ] );
      ( "bench",
        [
          Alcotest.test_case "regression comparator" `Quick
            test_bench_comparator;
          Alcotest.test_case "bound comparators" `Quick test_bench_bounds;
          Alcotest.test_case "counters pp on empty run" `Quick
            test_counters_pp_empty;
        ] );
    ]
