(* Standalone telemetry validator for the CI serve job.

   Two modes:

     metrics_check [--file FILE] [--require NAME]...
         - validate a Prometheus text exposition (stdin or FILE):
           every sample line is "name[{labels}] value" with a numeric
           value; every family has # TYPE before its first sample;
           histogram series render cumulative le buckets that never
           decrease, with le="+Inf" present and equal to _count; each
           --require NAME must appear with at least one sample.

     metrics_check --jsonl FILE --lines N
         - validate a JSONL access log: every line is a JSON object
           carrying ts/id/outcome/status/wall_us, and there are
           exactly N lines.

   Exits 1 on any violation, with one "BAD ..." line per violation. *)

let violations = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr violations;
      Printf.printf "BAD %s\n" msg)
    fmt

(* --- Prometheus text mode ------------------------------------------------- *)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let valid_name s = s <> "" && String.for_all is_name_char s

(* family name of a sample: strip the histogram series suffixes *)
let family_of base =
  let strip suf =
    let n = String.length suf and m = String.length base in
    if m > n && String.sub base (m - n) n = suf then
      Some (String.sub base 0 (m - n))
    else None
  in
  match strip "_bucket" with
  | Some f -> (f, `Bucket)
  | None -> (
    match strip "_sum" with
    | Some f -> (f, `Sum)
    | None -> (
      match strip "_count" with
      | Some f -> (f, `Count)
      | None -> (base, `Plain)))

(* remove the le="..." label from a label block, returning the series
   key without it plus the le value *)
let split_le head =
  match
    let rec find i =
      if i + 4 > String.length head then None
      else if String.sub head i 4 = {|le="|} then Some i
      else find (i + 1)
    in
    find 0
  with
  | None -> (head, None)
  | Some start -> (
    match String.index_from_opt head (start + 4) '"' with
    | None -> (head, None)
    | Some stop ->
      let le = String.sub head (start + 4) (stop - start - 4) in
      let before =
        (* swallow the separating comma (le is never alone in our
           exposition only when the series itself has labels) *)
        if start > 0 && head.[start - 1] = ',' then start - 1 else start
      in
      let rest =
        String.sub head 0 before
        ^ String.sub head (stop + 1) (String.length head - stop - 1)
      in
      (* an le-only label block collapses to no block at all, matching
         the key rebuilt from an unlabelled _count line *)
      let rest =
        let m = String.length rest in
        if m >= 2 && String.sub rest (m - 2) 2 = "{}" then
          String.sub rest 0 (m - 2)
        else rest
      in
      (rest, Some le))

let le_value = function
  | "+Inf" -> infinity
  | s -> ( match float_of_string_opt s with Some f -> f | None -> nan)

let check_exposition ic required =
  let types = Hashtbl.create 64 in (* family -> TYPE *)
  let sampled = Hashtbl.create 64 in (* family -> sample count *)
  (* series key -> (last cumulative, last le) for bucket monotonicity *)
  let cum = Hashtbl.create 64 in
  let inf_total = Hashtbl.create 64 in (* series key -> +Inf value *)
  let counts = Hashtbl.create 64 in (* series key -> _count value *)
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       if line = "" then ()
       else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
         match String.split_on_char ' ' line with
         | [ "#"; "TYPE"; name; ty ] ->
           if not (valid_name name) then fail "TYPE for invalid name %S" name;
           if not (List.mem ty [ "counter"; "gauge"; "histogram" ]) then
             fail "unknown TYPE %S for %s" ty name;
           if Hashtbl.mem types name then fail "duplicate TYPE for %s" name;
           Hashtbl.replace types name ty
         | _ -> fail "malformed TYPE line: %s" line
       end
       else if line.[0] = '#' then () (* HELP or comment *)
       else begin
         match String.rindex_opt line ' ' with
         | None -> fail "sample line without a value: %s" line
         | Some sp ->
           let head = String.sub line 0 sp in
           let value =
             String.sub line (sp + 1) (String.length line - sp - 1)
           in
           let v =
             match float_of_string_opt value with
             | Some f when Float.is_finite f -> f
             | _ ->
               fail "non-numeric value %S in: %s" value line;
               nan
           in
           let base, labels_ok =
             match String.index_opt head '{' with
             | None -> (head, true)
             | Some b ->
               (String.sub head 0 b, head.[String.length head - 1] = '}')
           in
           if not labels_ok then fail "unclosed label block: %s" line;
           if not (valid_name base) then fail "invalid metric name %S" base;
           let fam, kind = family_of base in
           let fam, kind =
             (* _sum/_count/_bucket only belong to histogram families;
                a plain counter named *_total stays itself *)
             if kind <> `Plain && Hashtbl.find_opt types fam = Some "histogram"
             then (fam, kind)
             else (base, `Plain)
           in
           (match Hashtbl.find_opt types fam with
           | None -> fail "sample before any TYPE for %s: %s" fam line
           | Some _ -> ());
           Hashtbl.replace sampled fam
             (1 + Option.value (Hashtbl.find_opt sampled fam) ~default:0);
           (match kind with
           | `Bucket -> (
             let key, le = split_le head in
             match le with
             | None -> fail "bucket sample without le: %s" line
             | Some le ->
               let lev = le_value le in
               if Float.is_nan lev then fail "bad le %S: %s" le line;
               (match Hashtbl.find_opt cum key with
               | Some (last_v, last_le) ->
                 if v < last_v then
                   fail "cumulative le buckets decrease at: %s" line;
                 if lev <= last_le then
                   fail "le edges not increasing at: %s" line
               | None -> ());
               Hashtbl.replace cum key (v, lev);
               if lev = infinity then Hashtbl.replace inf_total key v)
           | `Count ->
             let key =
               (* rebuild the bucket series key: family{labels} *)
               let labels =
                 match String.index_opt head '{' with
                 | None -> ""
                 | Some b ->
                   String.sub head b (String.length head - b)
               in
               fam ^ "_bucket" ^ labels
             in
             Hashtbl.replace counts key v
           | `Sum | `Plain -> ())
       end
     done
   with End_of_file -> ());
  if !lines = 0 then fail "empty exposition";
  (* +Inf must exist and equal _count for every histogram series *)
  Hashtbl.iter
    (fun key count ->
      match Hashtbl.find_opt inf_total key with
      | None -> fail "histogram series %s has _count but no +Inf bucket" key
      | Some inf ->
        if inf <> count then
          fail "series %s: +Inf bucket %.0f <> _count %.0f" key inf count)
    counts;
  Hashtbl.iter
    (fun key (_, last_le) ->
      if last_le <> infinity then
        fail "histogram series %s never reached le=\"+Inf\"" key)
    cum;
  List.iter
    (fun name ->
      if not (Hashtbl.mem types name) then
        fail "required metric %s has no TYPE" name
      else if Option.value (Hashtbl.find_opt sampled name) ~default:0 = 0
      then fail "required metric %s has no samples" name)
    required;
  Printf.printf
    "metrics_check: %d lines, %d families, %d histogram series, %d \
     violations\n"
    !lines (Hashtbl.length types) (Hashtbl.length counts) !violations

(* --- JSONL access-log mode ------------------------------------------------ *)

let check_jsonl path expected_lines =
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         incr n;
         match Obs.Json.parse line with
         | Error msg -> fail "access log line %d unparseable: %s" !n msg
         | Ok (Obs.Json.Obj _ as j) ->
           let member = Obs.Json.member in
           if
             Option.bind (member "ts" j) Obs.Json.to_float_opt = None
           then fail "access log line %d lacks numeric ts" !n;
           if member "id" j = None then fail "access log line %d lacks id" !n;
           (match Option.bind (member "outcome" j) Obs.Json.to_string_opt with
           | Some o when o <> "" -> ()
           | _ -> fail "access log line %d lacks outcome" !n);
           (match Option.bind (member "status" j) Obs.Json.to_string_opt with
           | Some ("ok" | "error") -> ()
           | _ -> fail "access log line %d lacks ok|error status" !n);
           (match Option.bind (member "wall_us" j) Obs.Json.to_float_opt with
           | Some w when w >= 0.0 -> ()
           | _ -> fail "access log line %d lacks non-negative wall_us" !n)
         | Ok _ -> fail "access log line %d is not an object" !n
       end
     done
   with End_of_file -> ());
  close_in ic;
  (match expected_lines with
  | Some e when e <> !n -> fail "access log has %d lines, expected %d" !n e
  | _ -> ());
  Printf.printf "metrics_check: %d access-log lines, %d violations\n" !n
    !violations

(* --- driver --------------------------------------------------------------- *)

let () =
  let rec parse args (file, required, jsonl, lines) =
    match args with
    | [] -> (file, required, jsonl, lines)
    | "--file" :: f :: rest -> parse rest (Some f, required, jsonl, lines)
    | "--require" :: n :: rest ->
      parse rest (file, n :: required, jsonl, lines)
    | "--jsonl" :: f :: rest -> parse rest (file, required, Some f, lines)
    | "--lines" :: n :: rest ->
      parse rest (file, required, jsonl, int_of_string_opt n)
    | a :: _ ->
      prerr_endline ("metrics_check: unknown argument " ^ a);
      prerr_endline
        "usage: metrics_check [--file FILE] [--require NAME]... | \
         metrics_check --jsonl FILE [--lines N]";
      exit 2
  in
  let file, required, jsonl, lines =
    parse (List.tl (Array.to_list Sys.argv)) (None, [], None, None)
  in
  (match jsonl with
  | Some path -> check_jsonl path lines
  | None -> (
    match file with
    | None -> check_exposition stdin required
    | Some path ->
      let ic = open_in path in
      check_exposition ic required;
      close_in ic));
  exit (if !violations = 0 then 0 else 1)
