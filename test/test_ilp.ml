(* Tests for the exact simplex (Lp) and branch-and-bound (Ilp). *)

open Linalg
open Poly
open Ilp

let vec = Vec.of_int_list

let check_q name expect got =
  Alcotest.(check string) name (Q.to_string expect) (Q.to_string got)

(* --- Lp ------------------------------------------------------------------ *)

let test_lp_basic () =
  (* min x + y  s.t. x >= 1, y >= 2  ->  3 at (1,2) *)
  let p = Polyhedron.make 2 [ Constr.ge [ 1; 0; -1 ]; Constr.ge [ 0; 1; -2 ] ] in
  match Lp.minimize p (vec [ 1; 1; 0 ]) with
  | Lp.Optimal (v, x) ->
    check_q "value" (Q.of_int 3) v;
    Alcotest.(check bool) "point" true (Vec.equal x (vec [ 1; 2 ]))
  | _ -> Alcotest.fail "expected optimal"

let test_lp_max () =
  (* max x + 2y s.t. x + y <= 4, x <= 2, x,y >= 0 -> 8 at (0,4) *)
  let p =
    Polyhedron.make 2
      [ Constr.ge [ -1; -1; 4 ]; Constr.ge [ -1; 0; 2 ]; Constr.ge [ 1; 0; 0 ];
        Constr.ge [ 0; 1; 0 ] ]
  in
  match Lp.maximize p (vec [ 1; 2; 0 ]) with
  | Lp.Optimal (v, _) -> check_q "value" (Q.of_int 8) v
  | _ -> Alcotest.fail "expected optimal"

let test_lp_fractional_optimum () =
  (* min x s.t. 2x >= 1 -> 1/2 *)
  let p = Polyhedron.make 1 [ Constr.unsafe_make Constr.Ge (vec [ 2; -1 ]) ] in
  match Lp.minimize p (vec [ 1; 0 ]) with
  | Lp.Optimal (v, _) -> check_q "value" (Q.of_ints 1 2) v
  | _ -> Alcotest.fail "expected optimal"

let test_lp_infeasible () =
  let p = Polyhedron.make 1 [ Constr.ge [ 1; -3 ]; Constr.ge [ -1; 1 ] ] in
  (* x >= 3 and x <= 1 *)
  Alcotest.(check bool) "infeasible" true (Lp.minimize p (vec [ 1; 0 ]) = Lp.Infeasible)

let test_lp_unbounded () =
  (* min x with x <= 0: unbounded below (x free) *)
  let p = Polyhedron.make 1 [ Constr.ge [ -1; 0 ] ] in
  Alcotest.(check bool) "unbounded" true (Lp.minimize p (vec [ 1; 0 ]) = Lp.Unbounded)

let test_lp_equalities () =
  (* min x + y s.t. x + y = 5, x - y = 1 -> unique point (3,2), value 5 *)
  let p = Polyhedron.make 2 [ Constr.eq [ 1; 1; -5 ]; Constr.eq [ 1; -1; -1 ] ] in
  match Lp.minimize p (vec [ 1; 1; 0 ]) with
  | Lp.Optimal (v, x) ->
    check_q "value" (Q.of_int 5) v;
    Alcotest.(check bool) "point" true (Vec.equal x (vec [ 3; 2 ]))
  | _ -> Alcotest.fail "expected optimal"

let test_lp_negative_vars () =
  (* variables are free: min x s.t. x >= -7 -> -7 *)
  let p = Polyhedron.make 1 [ Constr.ge [ 1; 7 ] ] in
  match Lp.minimize p (vec [ 1; 0 ]) with
  | Lp.Optimal (v, _) -> check_q "value" (Q.of_int (-7)) v
  | _ -> Alcotest.fail "expected optimal"

let test_lp_affine_constant () =
  (* objective has a constant term: min (x + 10) s.t. x >= 1 -> 11 *)
  let p = Polyhedron.make 1 [ Constr.ge [ 1; -1 ] ] in
  match Lp.minimize p (vec [ 1; 10 ]) with
  | Lp.Optimal (v, _) -> check_q "value" (Q.of_int 11) v
  | _ -> Alcotest.fail "expected optimal"

let test_lp_degenerate () =
  (* degenerate vertex: several constraints through the same point;
     Bland's rule must still terminate *)
  let p =
    Polyhedron.make 2
      [ Constr.ge [ 1; 0; 0 ]; Constr.ge [ 0; 1; 0 ]; Constr.ge [ 1; 1; 0 ];
        Constr.ge [ 1; 2; 0 ]; Constr.ge [ 2; 1; 0 ]; Constr.ge [ -1; -1; 2 ] ]
  in
  match Lp.minimize p (vec [ 1; 1; 0 ]) with
  | Lp.Optimal (v, _) -> check_q "value" Q.zero v
  | _ -> Alcotest.fail "expected optimal"

let test_lp_feasible_point () =
  let p = Polyhedron.make 2 [ Constr.ge [ 1; 0; -2 ]; Constr.ge [ 0; 1; -3 ] ] in
  (match Lp.feasible_point p with
  | Some x -> Alcotest.(check bool) "in p" true (Polyhedron.contains p x)
  | None -> Alcotest.fail "expected a point");
  let e = Polyhedron.make 1 [ Constr.ge [ 1; 0 ]; Constr.ge [ -1; -1 ] ] in
  Alcotest.(check bool) "none" true (Lp.feasible_point e = None)

(* Dantzig (default) and Bland pivoting must agree on the optimum value
   and on feasibility/boundedness status for every seed LP above.
   Optimal points may legitimately differ, so only values are compared. *)
let test_lp_pivot_rules_agree () =
  let seed_lps =
    [ ("basic", Polyhedron.make 2 [ Constr.ge [ 1; 0; -1 ]; Constr.ge [ 0; 1; -2 ] ],
       vec [ 1; 1; 0 ]);
      ("max-as-min",
       Polyhedron.make 2
         [ Constr.ge [ -1; -1; 4 ]; Constr.ge [ -1; 0; 2 ]; Constr.ge [ 1; 0; 0 ];
           Constr.ge [ 0; 1; 0 ] ],
       vec [ -1; -2; 0 ]);
      ("fractional",
       Polyhedron.make 1 [ Constr.unsafe_make Constr.Ge (vec [ 2; -1 ]) ],
       vec [ 1; 0 ]);
      ("infeasible", Polyhedron.make 1 [ Constr.ge [ 1; -3 ]; Constr.ge [ -1; 1 ] ],
       vec [ 1; 0 ]);
      ("unbounded", Polyhedron.make 1 [ Constr.ge [ -1; 0 ] ], vec [ 1; 0 ]);
      ("equalities",
       Polyhedron.make 2 [ Constr.eq [ 1; 1; -5 ]; Constr.eq [ 1; -1; -1 ] ],
       vec [ 1; 1; 0 ]);
      ("negative vars", Polyhedron.make 1 [ Constr.ge [ 1; 7 ] ], vec [ 1; 0 ]);
      ("affine constant", Polyhedron.make 1 [ Constr.ge [ 1; -1 ] ], vec [ 1; 10 ]);
      ("degenerate",
       Polyhedron.make 2
         [ Constr.ge [ 1; 0; 0 ]; Constr.ge [ 0; 1; 0 ]; Constr.ge [ 1; 1; 0 ];
           Constr.ge [ 1; 2; 0 ]; Constr.ge [ 2; 1; 0 ]; Constr.ge [ -1; -1; 2 ] ],
       vec [ 1; 1; 0 ]) ]
  in
  List.iter
    (fun (name, p, obj) ->
      match
        (Lp.minimize ~rule:Lp.Dantzig p obj, Lp.minimize ~rule:Lp.Bland p obj)
      with
      | Lp.Optimal (vd, _), Lp.Optimal (vb, _) -> check_q name vd vb
      | Lp.Infeasible, Lp.Infeasible | Lp.Unbounded, Lp.Unbounded -> ()
      | _ -> Alcotest.fail (name ^ ": pivot rules disagree on status"))
    seed_lps

(* --- Ilp ----------------------------------------------------------------- *)

let test_ilp_rounds_up () =
  (* min x s.t. 2x >= 1, integer -> 1 (LP gives 1/2) *)
  let p = Polyhedron.make 1 [ Constr.unsafe_make Constr.Ge (vec [ 2; -1 ]) ] in
  match Bb.minimize p (vec [ 1; 0 ]) with
  | Bb.Optimal (v, x) ->
    check_q "value" Q.one v;
    Alcotest.(check int) "point" 1 x.(0)
  | _ -> Alcotest.fail "expected optimal"

let test_ilp_knapsack_like () =
  (* max 3x + 4y s.t. 2x + 3y <= 7, x,y >= 0 integer.
     LP optimum fractional; ILP optimum: x=2,y=1 -> 10 *)
  let p =
    Polyhedron.make 2
      [ Constr.ge [ -2; -3; 7 ]; Constr.ge [ 1; 0; 0 ]; Constr.ge [ 0; 1; 0 ] ]
  in
  match Bb.minimize p (vec [ -3; -4; 0 ]) with
  | Bb.Optimal (v, x) ->
    check_q "value" (Q.of_int (-10)) v;
    Alcotest.(check bool) "feasible" true (Polyhedron.contains_int p x)
  | _ -> Alcotest.fail "expected optimal"

let test_ilp_infeasible_gap () =
  (* 1/2 < x < 1: rational point exists, no integer *)
  let p =
    Polyhedron.make 1
      [ Constr.unsafe_make Constr.Ge (vec [ 2; -1 ]);
        Constr.unsafe_make Constr.Ge (vec [ -2; 1 ]) ]
  in
  Alcotest.(check bool) "int infeasible" true (not (Bb.feasible p))

let test_ilp_feasible () =
  let p = Polyhedron.make 2 [ Constr.ge [ 1; 1; -3 ]; Constr.ge [ -1; -1; 3 ] ] in
  (* x + y = 3 *)
  Alcotest.(check bool) "feasible" true (Bb.feasible p);
  match Bb.integer_point p with
  | Some x -> Alcotest.(check bool) "point in p" true (Polyhedron.contains_int p x)
  | None -> Alcotest.fail "expected a point"

let test_ilp_lexmin () =
  (* lexmin (x, y) over x + y >= 3, 0 <= x,y <= 5: x first -> x=0, then y=3 *)
  let p =
    Polyhedron.make 2
      [ Constr.ge [ 1; 1; -3 ]; Constr.ge [ 1; 0; 0 ]; Constr.ge [ 0; 1; 0 ];
        Constr.ge [ -1; 0; 5 ]; Constr.ge [ 0; -1; 5 ] ]
  in
  match Bb.lexmin p [ vec [ 1; 0; 0 ]; vec [ 0; 1; 0 ] ] with
  | Some ([ vx; vy ], pt) ->
    check_q "x" Q.zero vx;
    check_q "y" (Q.of_int 3) vy;
    Alcotest.(check bool) "point" true (pt = [| 0; 3 |])
  | _ -> Alcotest.fail "expected lexmin"

let test_ilp_empty_polyhedron () =
  Alcotest.(check bool) "canonical empty infeasible" false
    (Bb.feasible (Polyhedron.empty 2))

(* --- properties: ILP vs brute force ------------------------------------- *)

let arb_bounded_poly2 =
  (* random constraints plus a bounding box 0 <= x,y <= 6 *)
  let gen_constr =
    QCheck.Gen.(
      map
        (fun (a, b, k) -> Constr.ge [ a; b; k ])
        (triple (int_range (-3) 3) (int_range (-3) 3) (int_range (-2) 8)))
  in
  QCheck.make
    QCheck.Gen.(
      map
        (fun cs ->
          Polyhedron.make 2
            (Constr.ge [ 1; 0; 0 ] :: Constr.ge [ 0; 1; 0 ]
            :: Constr.ge [ -1; 0; 6 ] :: Constr.ge [ 0; -1; 6 ] :: cs))
        (list_size (int_range 0 4) gen_constr))

let brute_force_min p obj =
  let pts = Polyhedron.integer_points ~lo:[| 0; 0 |] ~hi:[| 6; 6 |] p in
  List.fold_left
    (fun acc pt ->
      let v = Q.add (Q.of_int ((obj.(0) * pt.(0)) + (obj.(1) * pt.(1)))) Q.zero in
      match acc with
      | None -> Some v
      | Some b -> Some (if Q.compare v b < 0 then v else b))
    None pts

let prop_ilp_matches_brute_force =
  QCheck.Test.make ~name:"ILP minimum matches brute force" ~count:100
    (QCheck.pair arb_bounded_poly2
       (QCheck.pair (QCheck.int_range (-3) 3) (QCheck.int_range (-3) 3)))
    (fun (p, (c0, c1)) ->
      let obj = vec [ c0; c1; 0 ] in
      match (Bb.minimize p obj, brute_force_min p [| c0; c1 |]) with
      | Bb.Optimal (v, _), Some bf -> Q.equal v bf
      | Bb.Infeasible, None -> true
      | _ -> false)

let prop_feasible_matches_brute_force =
  QCheck.Test.make ~name:"ILP feasibility matches brute force" ~count:100
    arb_bounded_poly2
    (fun p ->
      Bb.feasible p
      = (Polyhedron.integer_points ~lo:[| 0; 0 |] ~hi:[| 6; 6 |] p <> []))

let prop_pivot_rules_same_optimum =
  QCheck.Test.make ~name:"Dantzig and Bland reach the same optimum" ~count:100
    (QCheck.pair arb_bounded_poly2
       (QCheck.pair (QCheck.int_range (-3) 3) (QCheck.int_range (-3) 3)))
    (fun (p, (c0, c1)) ->
      let obj = vec [ c0; c1; 0 ] in
      match (Lp.minimize ~rule:Lp.Dantzig p obj, Lp.minimize ~rule:Lp.Bland p obj) with
      | Lp.Optimal (vd, _), Lp.Optimal (vb, _) -> Q.equal vd vb
      | Lp.Infeasible, Lp.Infeasible | Lp.Unbounded, Lp.Unbounded -> true
      | _ -> false)

let prop_lp_lower_bounds_ilp =
  QCheck.Test.make ~name:"LP relaxation lower-bounds ILP" ~count:100
    (QCheck.pair arb_bounded_poly2
       (QCheck.pair (QCheck.int_range (-3) 3) (QCheck.int_range (-3) 3)))
    (fun (p, (c0, c1)) ->
      let obj = vec [ c0; c1; 0 ] in
      match (Lp.minimize p obj, Bb.minimize p obj) with
      | Lp.Optimal (lv, _), Bb.Optimal (iv, _) -> Q.compare lv iv <= 0
      | Lp.Infeasible, Bb.Infeasible -> true
      | _, Bb.Infeasible -> true (* rational-feasible, integer-empty *)
      | _ -> false)

(* Fourier-Motzkin without tightening is exact over the rationals:
   every rational point of the projection lifts to a rational point of
   the original polyhedron. Checked by sampling the projection's
   integer points and asking the LP for a lifting. *)
let prop_fm_projection_rationally_exact =
  QCheck.Test.make ~name:"FM projection is exact over Q" ~count:60
    QCheck.(
      make
        Gen.(
          map
            (fun cs ->
              Polyhedron.make 3
                (List.map (fun (a, b, c, k) -> Constr.ge [ a; b; c; k ]) cs))
            (list_size (int_range 1 4)
               (quad (int_range (-2) 2) (int_range (-2) 2) (int_range (-2) 2)
                  (int_range 0 5)))))
    (fun p ->
      let proj = Polyhedron.eliminate ~integer:false p [ 2 ] in
      let shadow =
        Polyhedron.integer_points ~lo:[| -3; -3 |] ~hi:[| 3; 3 |] proj
      in
      List.for_all
        (fun pt ->
          (* fiber: p with x0, x1 fixed *)
          let fiber =
            Polyhedron.add_list p
              [ Constr.eq [ 1; 0; 0; -pt.(0) ]; Constr.eq [ 0; 1; 0; -pt.(1) ] ]
          in
          Lp.feasible_point fiber <> None)
        shadow)

let prop_remove_redundant_preserves_set =
  QCheck.Test.make ~name:"remove_redundant preserves the integer set" ~count:100
    arb_bounded_poly2
    (fun p ->
      let q = Bb.remove_redundant p in
      List.length (Polyhedron.constraints q)
      <= List.length (Polyhedron.constraints p)
      && Polyhedron.integer_points ~lo:[| 0; 0 |] ~hi:[| 6; 6 |] p
         = Polyhedron.integer_points ~lo:[| 0; 0 |] ~hi:[| 6; 6 |] q)

let test_remove_redundant_drops_rows () =
  (* x <= 10 is implied by x <= 5 *)
  let p =
    Polyhedron.make 1
      [ Constr.ge [ 1; 0 ]; Constr.ge [ -1; 5 ]; Constr.ge [ -1; 10 ] ]
  in
  let q = Bb.remove_redundant p in
  Alcotest.(check int) "two rows left" 2 (List.length (Polyhedron.constraints q))

(* --- properties: warm-started re-solves vs cold solves ------------------- *)

let arb_constr2 =
  QCheck.make
    QCheck.Gen.(
      map
        (fun (a, b, k) -> Constr.ge [ a; b; k ])
        (triple (int_range (-3) 3) (int_range (-3) 3) (int_range (-2) 8)))

(* warm and cold solves must agree on status and value; the optimal
   point may legitimately differ (alternative optima), so it is not
   compared *)
let same_value a b =
  match (a, b) with
  | Lp.Optimal (va, _), Lp.Optimal (vb, _) -> Q.equal va vb
  | Lp.Infeasible, Lp.Infeasible | Lp.Unbounded, Lp.Unbounded -> true
  | _ -> false

let prop_warm_add_matches_cold =
  QCheck.Test.make ~name:"warm re-solve with extra row matches cold" ~count:100
    (QCheck.pair arb_bounded_poly2
       (QCheck.pair arb_constr2
          (QCheck.pair (QCheck.int_range (-3) 3) (QCheck.int_range (-3) 3))))
    (fun (p, (c, (c0, c1))) ->
      let obj = vec [ c0; c1; 0 ] in
      match Lp.minimize_warm p obj with
      | Lp.Optimal _, Some w ->
        same_value
          (fst (Lp.reoptimize w ~add:[ c ] ~obj))
          (Lp.minimize (Polyhedron.add_list p [ c ]) obj)
      | _, None -> true (* no optimal basis to warm-start from *)
      | _, Some _ -> false)

let prop_warm_newobj_matches_cold =
  QCheck.Test.make ~name:"warm re-solve with new objective matches cold"
    ~count:100
    (QCheck.pair arb_bounded_poly2
       (QCheck.pair (QCheck.int_range (-3) 3) (QCheck.int_range (-3) 3)))
    (fun (p, (c0, c1)) ->
      let obj = vec [ c0; c1; 0 ] in
      match Lp.minimize_warm p obj with
      | Lp.Optimal _, Some w ->
        let obj' = Vec.neg obj in
        same_value (fst (Lp.reoptimize w ~add:[] ~obj:obj')) (Lp.minimize p obj')
      | _, None -> true
      | _, Some _ -> false)

let prop_warm_chain_matches_cold =
  QCheck.Test.make ~name:"chained warm re-solves match cold" ~count:60
    (QCheck.pair arb_bounded_poly2
       (QCheck.pair (QCheck.pair arb_constr2 arb_constr2)
          (QCheck.pair (QCheck.int_range (-3) 3) (QCheck.int_range (-3) 3))))
    (fun (p, ((ca, cb), (c0, c1))) ->
      let obj = vec [ c0; c1; 0 ] in
      match Lp.minimize_warm p obj with
      | Lp.Optimal _, Some w -> (
        let r1, w1 = Lp.reoptimize w ~add:[ ca ] ~obj in
        same_value r1 (Lp.minimize (Polyhedron.add_list p [ ca ]) obj)
        &&
        match w1 with
        | None -> true
        | Some w1 ->
          let obj' = Vec.neg obj in
          same_value
            (fst (Lp.reoptimize w1 ~add:[ cb ] ~obj:obj'))
            (Lp.minimize (Polyhedron.add_list p [ ca; cb ]) obj'))
      | _, None -> true
      | _, Some _ -> false)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "ilp"
    [ ( "lp",
        [ Alcotest.test_case "basic min" `Quick test_lp_basic;
          Alcotest.test_case "max" `Quick test_lp_max;
          Alcotest.test_case "fractional optimum" `Quick test_lp_fractional_optimum;
          Alcotest.test_case "infeasible" `Quick test_lp_infeasible;
          Alcotest.test_case "unbounded" `Quick test_lp_unbounded;
          Alcotest.test_case "equalities" `Quick test_lp_equalities;
          Alcotest.test_case "negative vars" `Quick test_lp_negative_vars;
          Alcotest.test_case "affine constant" `Quick test_lp_affine_constant;
          Alcotest.test_case "degenerate vertex" `Quick test_lp_degenerate;
          Alcotest.test_case "feasible point" `Quick test_lp_feasible_point;
          Alcotest.test_case "pivot rules agree" `Quick
            test_lp_pivot_rules_agree ] );
      ( "ilp",
        [ Alcotest.test_case "rounding up" `Quick test_ilp_rounds_up;
          Alcotest.test_case "knapsack-like" `Quick test_ilp_knapsack_like;
          Alcotest.test_case "integer gap" `Quick test_ilp_infeasible_gap;
          Alcotest.test_case "feasible" `Quick test_ilp_feasible;
          Alcotest.test_case "lexmin" `Quick test_ilp_lexmin;
          Alcotest.test_case "empty polyhedron" `Quick test_ilp_empty_polyhedron;
          Alcotest.test_case "remove_redundant" `Quick
            test_remove_redundant_drops_rows ] );
      ( "ilp-props",
        qt
          [ prop_ilp_matches_brute_force; prop_feasible_matches_brute_force;
            prop_pivot_rules_same_optimum; prop_lp_lower_bounds_ilp;
            prop_remove_redundant_preserves_set;
            prop_fm_projection_rationally_exact ] );
      ( "warm-props",
        qt
          [ prop_warm_add_matches_cold; prop_warm_newobj_matches_cold;
            prop_warm_chain_matches_cold ] ) ]
