(* Tests for the Pluto-style scheduler: Farkas spaces, hyperplanes,
   fusion models, satisfaction analysis. Uses the paper's two running
   examples (gemver, advect). *)

open Scop
open Scop.Build
open Deps
open Pluto

let gemver () =
  let ctx = create ~name:"gemver" ~params:[ ("N", 20) ] in
  let n = param ctx "N" in
  let a = array ctx "A" [ n; n ] in
  let u1 = array ctx "u1" [ n ] and v1 = array ctx "v1" [ n ] in
  let x = array ctx "x" [ n ] and y = array ctx "y" [ n ] in
  let z = array ctx "z" [ n ] and w = array ctx "w" [ n ] in
  let lb = ci 0 and ub = n -~ ci 1 in
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S1" a [ i; j ] (a.%([ i; j ]) +: (u1.%([ i ]) *: v1.%([ j ])))));
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S2" x [ i ] (x.%([ i ]) +: (a.%([ j; i ]) *: y.%([ j ])))));
  loop ctx "i" ~lb ~ub (fun i ->
      assign ctx "S3" x [ i ] (x.%([ i ]) +: z.%([ i ])));
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S4" w [ i ] (w.%([ i ]) +: (a.%([ i; j ]) *: x.%([ j ])))));
  finish ctx

(* advect (Section 3 / Figure 4): three producers and a consumer whose
   stencil reads force either shifting (maxfuse) or distribution
   (Algorithm 2) *)
let advect () =
  let ctx = create ~name:"advect" ~params:[ ("N", 12) ] in
  let n = param ctx "N" in
  let u = array ctx "u" [ n +~ ci 2; n +~ ci 2 ] in
  let v = array ctx "v" [ n +~ ci 2; n +~ ci 2 ] in
  let w0 = array ctx "w0" [ n +~ ci 2; n +~ ci 2 ] in
  let cx = array ctx "cx" [ n +~ ci 2; n +~ ci 2 ] in
  let cy = array ctx "cy" [ n +~ ci 2; n +~ ci 2 ] in
  let cz = array ctx "cz" [ n +~ ci 2; n +~ ci 2 ] in
  let adv = array ctx "adv" [ n +~ ci 2; n +~ ci 2 ] in
  let lb = ci 1 and ub = n in
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S1" cx [ i; j ] (u.%([ i; j ]) +: u.%([ i; j +~ ci 1 ]))));
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S2" cy [ i; j ] (v.%([ i; j ]) +: v.%([ i +~ ci 1; j ]))));
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S3" cz [ i; j ] (w0.%([ i; j ]) *: f 2.0)));
  loop ctx "i" ~lb ~ub (fun i ->
      loop ctx "j" ~lb ~ub (fun j ->
          assign ctx "S4" adv [ i; j ]
            (cx.%([ i; j ]) -: cx.%([ i; j +~ ci 1 ])
            +: (cy.%([ i; j ]) -: cy.%([ i +~ ci 1; j ]))
            +: cz.%([ i; j ]))));
  finish ctx

(* --- Farkas spaces ------------------------------------------------------ *)

(* For gemver's S1 -> S2 flow on A, legal hyperplane pairs must satisfy
   the legality space; the interchange pair (S1 = j, S2 = i) does, the
   identity pair (S1 = i, S2 = i) does not. *)
let test_farkas_legality () =
  let p = gemver () in
  let deps = Dep.analyze p in
  let d =
    List.find
      (fun (d : Dep.t) ->
        d.src = 0 && d.dst = 1 && d.kind = Dep.Flow && d.src_access.Access.array = "A")
      deps
  in
  let space = Farkas.legality_space ~d1:2 ~d2:2 ~np:1 d.poly in
  (* local layout: [cS1_i; cS1_j; cS1_0; cS2_i; cS2_j; cS2_0; u; w] *)
  let point l = Array.map Linalg.Q.of_int (Array.of_list l) in
  Alcotest.(check bool) "interchange legal" true
    (Poly.Polyhedron.contains space (point [ 0; 1; 0; 1; 0; 0; 0; 0 ]));
  Alcotest.(check bool) "identity illegal" false
    (Poly.Polyhedron.contains space (point [ 1; 0; 0; 1; 0; 0; 0; 0 ]));
  Alcotest.(check bool) "inner pair legal" true
    (Poly.Polyhedron.contains space (point [ 1; 0; 0; 0; 1; 0; 0; 0 ]))

let test_farkas_bounding () =
  let p = gemver () in
  let deps = Dep.analyze p in
  let d =
    List.find
      (fun (d : Dep.t) ->
        d.src = 0 && d.dst = 1 && d.kind = Dep.Flow && d.src_access.Access.array = "A")
      deps
  in
  let space = Farkas.bounding_space ~d1:2 ~d2:2 ~np:1 d.poly in
  let point l = Array.map Linalg.Q.of_int (Array.of_list l) in
  (* interchange pair has delta = 0 everywhere: u = w = 0 suffices *)
  Alcotest.(check bool) "zero communication bound" true
    (Poly.Polyhedron.contains space (point [ 0; 1; 0; 1; 0; 0; 0; 0 ]));
  (* the pair (S1 = j, S2 = j) has delta = i - j, up to N-1: u=0,w=0 fails *)
  Alcotest.(check bool) "distance needs u" false
    (Poly.Polyhedron.contains space (point [ 0; 1; 0; 0; 1; 0; 0; 0 ]));
  Alcotest.(check bool) "u = 1 suffices" true
    (Poly.Polyhedron.contains space (point [ 0; 1; 0; 0; 1; 0; 1; 0 ]))

(* --- scheduler on gemver ------------------------------------------------ *)

let iter_part_of_first_hyp (res : Scheduler.result) id =
  let depth = Statement.depth res.prog.stmts.(id) in
  let rec find = function
    | [] -> Alcotest.fail "no hyperplane row"
    | Sched.Hyp h :: _ -> Array.sub h 0 depth
    | Sched.Beta _ :: rest -> find rest
  in
  find res.sched.(id)

let test_gemver_smartfuse () =
  let res = Scheduler.run Scheduler.smartfuse (gemver ()) in
  (* legal *)
  (match Satisfy.check_legal res.prog res.true_deps res.sched with
  | Ok () -> ()
  | Error d -> Alcotest.fail (Format.asprintf "illegal: %a" Dep.pp d));
  (* S1 and S2 fused; S3 and S4 in separate partitions (paper Fig. 3) *)
  Alcotest.(check int) "S1,S2 fused" res.outer_partition.(0) res.outer_partition.(1);
  Alcotest.(check bool) "S3 apart" true
    (res.outer_partition.(2) <> res.outer_partition.(0));
  Alcotest.(check bool) "S4 apart" true
    (res.outer_partition.(3) <> res.outer_partition.(2)
    && res.outer_partition.(3) <> res.outer_partition.(0));
  (* the fusion is enabled by interchanging S1 (Figure 1(c)) *)
  Alcotest.(check (array int)) "S1 interchanged" [| 0; 1 |]
    (iter_part_of_first_hyp res 0);
  Alcotest.(check (array int)) "S2 keeps i outer" [| 1; 0 |]
    (iter_part_of_first_hyp res 1)

let test_gemver_nofuse () =
  let res = Scheduler.run Scheduler.nofuse (gemver ()) in
  (match Satisfy.check_legal res.prog res.true_deps res.sched with
  | Ok () -> ()
  | Error d -> Alcotest.fail (Format.asprintf "illegal: %a" Dep.pp d));
  let parts = Scheduler.partitions res in
  Alcotest.(check int) "four partitions" 4 (List.length parts)

let test_gemver_maxfuse () =
  let res = Scheduler.run Scheduler.maxfuse (gemver ()) in
  (match Satisfy.check_legal res.prog res.true_deps res.sched with
  | Ok () -> ()
  | Error d -> Alcotest.fail (Format.asprintf "illegal: %a" Dep.pp d));
  let parts = Scheduler.partitions res in
  Alcotest.(check bool) "at most as many partitions as smartfuse" true
    (List.length parts
    <= List.length (Scheduler.partitions (Scheduler.run Scheduler.smartfuse (gemver ()))))

(* --- scheduler on advect ------------------------------------------------- *)

let test_advect_maxfuse_shifts () =
  let res = Scheduler.run Scheduler.maxfuse (advect ()) in
  (match Satisfy.check_legal res.prog res.true_deps res.sched with
  | Ok () -> ()
  | Error d -> Alcotest.fail (Format.asprintf "illegal: %a" Dep.pp d));
  (* everything fused into one nest (Figure 4(c)) *)
  Alcotest.(check int) "one partition" 1
    (List.length (Scheduler.partitions res));
  (* ... at the price of outer-loop parallelism: the outermost loop has
     a forward dependence *)
  let members = [ 0; 1; 2; 3 ] in
  let first_hyp_level =
    let rec find l =
      if Sched.is_beta_level res.sched l then find (l + 1) else l
    in
    find 0
  in
  Alcotest.(check bool) "outer loop is pipelined, not parallel" true
    (Satisfy.row_class res.prog res.true_deps res.sched ~level:first_hyp_level
       ~members
    = Satisfy.Forward)

let test_advect_smartfuse_same_as_maxfuse () =
  (* all SCCs have dimensionality 2 here, so smartfuse = maxfuse
     (the paper: "Both smartfuse and maxfuse apply maximal fusion in
     these cases") *)
  let res = Scheduler.run Scheduler.smartfuse (advect ()) in
  Alcotest.(check int) "one partition" 1 (List.length (Scheduler.partitions res))

let test_advect_nofuse_parallel () =
  let res = Scheduler.run Scheduler.nofuse (advect ()) in
  (match Satisfy.check_legal res.prog res.true_deps res.sched with
  | Ok () -> ()
  | Error d -> Alcotest.fail (Format.asprintf "illegal: %a" Dep.pp d));
  Alcotest.(check int) "four partitions" 4
    (List.length (Scheduler.partitions res));
  (* each distributed nest is outer-parallel *)
  List.iter
    (fun members ->
      Alcotest.(check bool) "outer parallel" true
        (Satisfy.row_class res.prog res.true_deps res.sched ~level:1 ~members
        = Satisfy.Parallel))
    (Scheduler.partitions res)

(* --- schedule structure invariants --------------------------------------- *)

let test_schedule_shape () =
  List.iter
    (fun cfg ->
      let res = Scheduler.run cfg (gemver ()) in
      let lens = Array.map List.length res.sched in
      Array.iter
        (fun l -> Alcotest.(check int) "same row count" lens.(0) l)
        lens;
      (* row kinds agree across statements *)
      for level = 0 to lens.(0) - 1 do
        let kind id =
          match List.nth res.sched.(id) level with
          | Sched.Beta _ -> true
          | Sched.Hyp _ -> false
        in
        Array.iteri
          (fun id _ ->
            Alcotest.(check bool) "kind agrees" (kind 0) (kind id))
          res.sched
      done)
    [ Scheduler.nofuse; Scheduler.smartfuse; Scheduler.maxfuse ]

let test_satisfaction_levels () =
  let res = Scheduler.run Scheduler.smartfuse (gemver ()) in
  (* every true dependence is satisfied somewhere *)
  List.iter
    (fun (d : Dep.t) ->
      match Satisfy.satisfaction_level res.prog d res.sched with
      | Some _ -> ()
      | None -> Alcotest.fail (Format.asprintf "unsatisfied: %a" Dep.pp d))
    res.true_deps

(* --- incremental engine --------------------------------------------------- *)

let check_legal_or_fail (res : Scheduler.result) =
  match Satisfy.check_legal res.prog res.true_deps res.sched with
  | Ok () -> ()
  | Error d -> Alcotest.fail (Format.asprintf "illegal: %a" Dep.pp d)

(* With [Ilp.Bb.self_check] on, every warm-started LP relaxation in the
   branch-and-bound search is re-solved cold and compared (status and
   value); a disagreement raises. Exercises the full scheduler on both
   running examples. *)
let test_warm_selfcheck () =
  Ilp.Bb.self_check := true;
  Fun.protect
    ~finally:(fun () -> Ilp.Bb.self_check := false)
    (fun () ->
      List.iter
        (fun prog ->
          List.iter
            (fun cfg -> check_legal_or_fail (Scheduler.run cfg prog))
            [ Scheduler.nofuse; Scheduler.smartfuse; Scheduler.maxfuse ])
        [ gemver (); advect () ])

(* Memoized Farkas systems must be indistinguishable from fresh ones:
   a second pass served from the cache and a third pass recomputed
   after [reset_cache] both yield equal polyhedra. *)
let test_farkas_cache_identity () =
  let prog = gemver () in
  let deps = Dep.analyze prog in
  let spaces () =
    List.concat_map
      (fun (d : Dep.t) ->
        let d1 = Statement.depth prog.stmts.(d.src)
        and d2 = Statement.depth prog.stmts.(d.dst) in
        let np = Poly.Polyhedron.dim d.poly - d1 - d2 in
        [ Farkas.legality_space ~d1 ~d2 ~np d.poly;
          Farkas.bounding_space ~d1 ~d2 ~np d.poly ])
      deps
  in
  Farkas.reset_cache ();
  let cold = spaces () in
  let hits0 = !Linalg.Counters.farkas_cache_hits in
  let cached = spaces () in
  Alcotest.(check bool) "second pass hits the cache" true
    (!Linalg.Counters.farkas_cache_hits > hits0);
  Farkas.reset_cache ();
  let fresh = spaces () in
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "cached = cold" true (Poly.Polyhedron.equal a b))
    cold cached;
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "recomputed = cold" true (Poly.Polyhedron.equal a b))
    cold fresh

(* dfs_order must produce a permutation of the SCC ids that still
   yields a legal schedule *)
let test_dfs_order_schedules () =
  let cfg =
    { Scheduler.smartfuse with
      Scheduler.name = "smartfuse-dfs";
      order_sccs = Scheduler.dfs_order }
  in
  List.iter
    (fun prog ->
      let res = Scheduler.run cfg prog in
      check_legal_or_fail res;
      let n = List.length res.scc_order in
      Alcotest.(check (list int)) "permutation of SCC ids"
        (List.init n Fun.id)
        (List.sort compare res.scc_order))
    [ gemver (); advect () ]

let () =
  Alcotest.run "pluto"
    [ ( "farkas",
        [ Alcotest.test_case "legality space" `Quick test_farkas_legality;
          Alcotest.test_case "bounding space" `Quick test_farkas_bounding ] );
      ( "gemver",
        [ Alcotest.test_case "smartfuse" `Quick test_gemver_smartfuse;
          Alcotest.test_case "nofuse" `Quick test_gemver_nofuse;
          Alcotest.test_case "maxfuse" `Quick test_gemver_maxfuse ] );
      ( "advect",
        [ Alcotest.test_case "maxfuse shifts" `Quick test_advect_maxfuse_shifts;
          Alcotest.test_case "smartfuse = maxfuse" `Quick test_advect_smartfuse_same_as_maxfuse;
          Alcotest.test_case "nofuse parallel" `Quick test_advect_nofuse_parallel ] );
      ( "structure",
        [ Alcotest.test_case "shape invariants" `Quick test_schedule_shape;
          Alcotest.test_case "all satisfied" `Quick test_satisfaction_levels ] );
      ( "incremental",
        [ Alcotest.test_case "warm B&B nodes match cold" `Quick
            test_warm_selfcheck;
          Alcotest.test_case "farkas cache identity" `Quick
            test_farkas_cache_identity;
          Alcotest.test_case "dfs_order schedules" `Quick
            test_dfs_order_schedules ] ) ]
