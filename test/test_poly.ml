(* Tests for constraints and polyhedra (Fourier-Motzkin core). *)

open Linalg
open Poly

let vec = Vec.of_int_list

(* --- Constr ----------------------------------------------------------- *)

let test_constr_normalization () =
  (* 2x + 4y + 6 >= 0 normalizes to x + 2y + 3 >= 0 *)
  let c = Constr.ge [ 2; 4; 6 ] in
  Alcotest.(check bool) "normalized" true
    (Vec.equal (Constr.coeffs c) (vec [ 1; 2; 3 ]));
  (* orientation preserved *)
  let c2 = Constr.ge [ -2; -4; -6 ] in
  Alcotest.(check bool) "orientation" true
    (Vec.equal (Constr.coeffs c2) (vec [ -1; -2; -3 ]))

let test_constr_eval_holds () =
  let c = Constr.ge [ 1; -1; 0 ] in
  (* x - y >= 0 *)
  Alcotest.(check bool) "holds" true (Constr.holds c (vec [ 3; 2 ]));
  Alcotest.(check bool) "boundary" true (Constr.holds c (vec [ 2; 2 ]));
  Alcotest.(check bool) "fails" false (Constr.holds c (vec [ 1; 2 ]));
  let e = Constr.eq [ 1; 1; -4 ] in
  Alcotest.(check bool) "eq holds" true (Constr.holds e (vec [ 1; 3 ]));
  Alcotest.(check bool) "eq fails" false (Constr.holds e (vec [ 1; 2 ]))

let test_constr_trivial () =
  Alcotest.(check (option bool)) "true" (Some true)
    (Constr.is_trivial (Constr.ge [ 0; 0; 5 ]));
  Alcotest.(check (option bool)) "false" (Some false)
    (Constr.is_trivial (Constr.ge [ 0; 0; -1 ]));
  Alcotest.(check (option bool)) "eq false" (Some false)
    (Constr.is_trivial (Constr.eq [ 0; 3 ]));
  Alcotest.(check (option bool)) "nontrivial" None
    (Constr.is_trivial (Constr.ge [ 1; 0; 0 ]))

let test_constr_negate () =
  (* not (x - 3 >= 0) over Z is -x + 2 >= 0 i.e. x <= 2 *)
  let c = Constr.negate_int (Constr.ge [ 1; -3 ]) in
  Alcotest.(check bool) "x=2 sat" true (Constr.holds c (vec [ 2 ]));
  Alcotest.(check bool) "x=3 unsat" false (Constr.holds c (vec [ 3 ]))

let test_constr_rename () =
  (* x0 + 2 x1 >= 0 over 2 vars -> x1 + 2 x3 over 4 vars *)
  let c = Constr.ge [ 1; 2; 0 ] in
  let r = Constr.rename ~dim_to:4 (fun i -> (2 * i) + 1) c in
  Alcotest.(check bool) "renamed" true
    (Vec.equal (Constr.coeffs r) (vec [ 0; 1; 0; 2; 0 ]))

let test_constr_tighten () =
  (* 2x - 3 >= 0 tightens to x - 2 >= 0 (x >= 3/2 means x >= 2 over Z) *)
  let c = Constr.unsafe_make Constr.Ge (vec [ 2; -3 ]) in
  let tight = Constr.tighten_int c in
  Alcotest.(check bool) "tightened" true
    (Vec.equal (Constr.coeffs tight) (vec [ 1; -2 ]))

(* --- Polyhedron -------------------------------------------------------- *)

(* the triangle 0 <= y <= x <= 5 *)
let triangle =
  Polyhedron.make 2
    [ Constr.ge [ 0; 1; 0 ] (* y >= 0 *);
      Constr.ge [ 1; -1; 0 ] (* x - y >= 0 *);
      Constr.ge [ -1; 0; 5 ] (* 5 - x >= 0 *) ]

let test_poly_contains () =
  Alcotest.(check bool) "inside" true (Polyhedron.contains_int triangle [| 3; 2 |]);
  Alcotest.(check bool) "vertex" true (Polyhedron.contains_int triangle [| 5; 5 |]);
  Alcotest.(check bool) "outside" false (Polyhedron.contains_int triangle [| 2; 3 |])

let test_poly_empty () =
  let p =
    Polyhedron.make 1 [ Constr.ge [ 1; 0 ] (* x >= 0 *); Constr.ge [ -1; -1 ] (* x <= -1 *) ]
  in
  Alcotest.(check bool) "empty" true (Polyhedron.is_empty p);
  Alcotest.(check bool) "nonempty" false (Polyhedron.is_empty triangle);
  Alcotest.(check bool) "universe nonempty" false
    (Polyhedron.is_empty (Polyhedron.universe 3));
  Alcotest.(check bool) "canonical empty" true
    (Polyhedron.is_empty (Polyhedron.empty 2))

let test_poly_empty_gap () =
  (* 1 <= 2x <= 1 within integers: x = 1/2, rational point but the
     equality normalization keeps it rationally non-empty; with strict
     integer gap 2x = 1 we rely on FM + tightening of inequalities *)
  let p =
    Polyhedron.make 1
      [ Constr.unsafe_make Constr.Ge (vec [ 2; -1 ]) (* 2x - 1 >= 0 *);
        Constr.unsafe_make Constr.Ge (vec [ -2; 1 ]) (* -2x + 1 >= 0 *) ]
  in
  (* tightening: x >= 1 and x <= 0 -> integer empty *)
  Alcotest.(check bool) "integer gap detected" true (Polyhedron.is_empty p)

let test_poly_eliminate () =
  (* project triangle onto x: expect 0 <= x <= 5 *)
  let proj = Polyhedron.eliminate triangle [ 1 ] in
  Alcotest.(check int) "dim" 1 (Polyhedron.dim proj);
  Alcotest.(check bool) "x=0" true (Polyhedron.contains_int proj [| 0 |]);
  Alcotest.(check bool) "x=5" true (Polyhedron.contains_int proj [| 5 |]);
  Alcotest.(check bool) "x=-1" false (Polyhedron.contains_int proj [| -1 |]);
  Alcotest.(check bool) "x=6" false (Polyhedron.contains_int proj [| 6 |])

let test_poly_eliminate_eq () =
  (* x = y, 0 <= x <= 3; eliminate x -> 0 <= y <= 3 *)
  let p =
    Polyhedron.make 2
      [ Constr.eq [ 1; -1; 0 ]; Constr.ge [ 1; 0; 0 ]; Constr.ge [ -1; 0; 3 ] ]
  in
  let proj = Polyhedron.eliminate p [ 0 ] in
  Alcotest.(check bool) "y=0" true (Polyhedron.contains_int proj [| 0 |]);
  Alcotest.(check bool) "y=3" true (Polyhedron.contains_int proj [| 3 |]);
  Alcotest.(check bool) "y=4" false (Polyhedron.contains_int proj [| 4 |])

let test_poly_integer_points () =
  let pts = Polyhedron.integer_points ~lo:[| 0; 0 |] ~hi:[| 5; 5 |] triangle in
  (* triangle 0 <= y <= x <= 5 has 6+5+4+3+2+1 = 21 integer points *)
  Alcotest.(check int) "count" 21 (List.length pts);
  List.iter
    (fun p ->
      Alcotest.(check bool) "all inside" true (Polyhedron.contains_int triangle p))
    pts

let test_poly_insert_dims () =
  let p = Polyhedron.insert_dims triangle ~at:1 ~count:2 in
  Alcotest.(check int) "dim" 4 (Polyhedron.dim p);
  (* old y is now var 3; new vars 1, 2 unconstrained *)
  Alcotest.(check bool) "inside" true
    (Polyhedron.contains_int p [| 3; 100; -100; 2 |]);
  Alcotest.(check bool) "outside" false
    (Polyhedron.contains_int p [| 2; 0; 0; 3 |])

let test_poly_bounds () =
  let lower, upper, rest = Polyhedron.lower_upper_bounds triangle 0 in
  (* x appears with +1 in (x - y >= 0) -> lower for x;
     with -1 in (5 - x >= 0) -> upper; y >= 0 has no x *)
  Alcotest.(check int) "lower count" 1 (List.length lower);
  Alcotest.(check int) "upper count" 1 (List.length upper);
  Alcotest.(check int) "rest count" 1 (List.length rest)

let test_poly_dedup_keeps_tightest () =
  let p =
    Polyhedron.make 1
      [ Constr.ge [ -1; 10 ] (* x <= 10 *); Constr.ge [ -1; 5 ] (* x <= 5 *) ]
  in
  Alcotest.(check int) "one constraint survives" 1
    (List.length (Polyhedron.constraints p));
  Alcotest.(check bool) "tightest kept" false (Polyhedron.contains_int p [| 7 |]);
  Alcotest.(check bool) "5 ok" true (Polyhedron.contains_int p [| 5 |])

(* --- projection soundness property ------------------------------------- *)

(* Random small polyhedra in 3 vars; FM projection must (a) contain the
   shadow of every integer point and (b) over the box, contain no point
   whose fibre is integer-empty... (b) is not guaranteed over Z by FM
   (it is exact over Q), so we only check (a) plus rational exactness:
   every integer point of the projection lifts to a *rational* point. *)

let arb_poly3 =
  let gen_constr =
    QCheck.Gen.(
      map
        (fun (a, b, c, k) -> Constr.ge [ a; b; c; k ])
        (quad (int_range (-3) 3) (int_range (-3) 3) (int_range (-3) 3)
           (int_range 0 6)))
  in
  QCheck.make
    QCheck.Gen.(map (fun cs -> Polyhedron.make 3 cs) (list_size (int_range 1 5) gen_constr))

let prop_projection_sound =
  QCheck.Test.make ~name:"FM projection contains all shadows" ~count:100 arb_poly3
    (fun p ->
      let proj = Polyhedron.eliminate p [ 2 ] in
      let pts = Polyhedron.integer_points ~lo:[| -4; -4; -4 |] ~hi:[| 4; 4; 4 |] p in
      List.for_all (fun pt -> Polyhedron.contains_int proj [| pt.(0); pt.(1) |]) pts)

let prop_empty_implies_no_points =
  QCheck.Test.make ~name:"is_empty implies no integer points in box" ~count:100
    arb_poly3
    (fun p ->
      (not (Polyhedron.is_empty p))
      || Polyhedron.integer_points ~lo:[| -4; -4; -4 |] ~hi:[| 4; 4; 4 |] p = [])

let prop_intersect_conjunction =
  QCheck.Test.make ~name:"intersection is conjunction on points" ~count:100
    (QCheck.pair arb_poly3 arb_poly3)
    (fun (a, b) ->
      let inter = Polyhedron.intersect a b in
      let box = ([| -2; -2; -2 |], [| 2; 2; 2 |]) in
      let lo, hi = box in
      Polyhedron.integer_points ~lo ~hi inter
      = List.filter (Polyhedron.contains_int b) (Polyhedron.integer_points ~lo ~hi a))

(* Golden pin of the frozen structural_key v1 format (see the contract
   in polyhedron.mli). The serving layer content-addresses requests
   with these keys, so a rendering change silently invalidates every
   persisted cache key: this test forces such a change to be a
   conscious, versioned one. *)
let test_structural_key_golden () =
  (* constraint keys: kind char + " <coeff>" per normalized coefficient *)
  Alcotest.(check string) "ge" "g 1 0" (Constr.structural_key (Constr.ge [ 1; 0 ]));
  Alcotest.(check string) "eq normalized" "e 1 2 3"
    (Constr.structural_key (Constr.eq [ 2; 4; 6 ]));
  Alcotest.(check string) "negative coeffs" "g -1 -2 -3"
    (Constr.structural_key (Constr.ge [ -2; -4; -6 ]));
  (* system key: dim, optional "!empty", then ";"-joined sorted constraints *)
  let p = Polyhedron.make 1 [ Constr.ge [ 1; 0 ]; Constr.eq [ 1; -3 ] ] in
  Alcotest.(check string) "1-d system" "1;e 1 -3;g 1 0"
    (Polyhedron.structural_key p);
  (* constraint order in the input must not matter *)
  let p' = Polyhedron.make 1 [ Constr.eq [ 1; -3 ]; Constr.ge [ 1; 0 ] ] in
  Alcotest.(check string) "input order irrelevant"
    (Polyhedron.structural_key p) (Polyhedron.structural_key p');
  (* construction-time falsity is part of the key (a trivially-false
     constraint sets the marker; the trivial constraint itself is
     dropped from the system) *)
  let e = Polyhedron.make 1 [ Constr.ge [ 1; 0 ]; Constr.ge [ 0; -1 ] ] in
  Alcotest.(check bool) "system is empty" true (Polyhedron.is_empty e);
  Alcotest.(check string) "empty marker" "1!empty;g 1 0"
    (Polyhedron.structural_key e);
  (* 2-d box, rational-free rendering *)
  let box =
    Polyhedron.make 2
      [ Constr.ge [ 1; 0; 0 ]; Constr.ge [ 0; 1; 0 ];
        Constr.ge [ -1; 0; 4 ]; Constr.ge [ 0; -1; 4 ] ]
  in
  Alcotest.(check string) "2-d box" "2;g -1 0 4;g 0 -1 4;g 0 1 0;g 1 0 0"
    (Polyhedron.structural_key box)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "poly"
    [ ( "constr",
        [ Alcotest.test_case "normalization" `Quick test_constr_normalization;
          Alcotest.test_case "eval/holds" `Quick test_constr_eval_holds;
          Alcotest.test_case "trivial" `Quick test_constr_trivial;
          Alcotest.test_case "negate_int" `Quick test_constr_negate;
          Alcotest.test_case "rename" `Quick test_constr_rename;
          Alcotest.test_case "tighten_int" `Quick test_constr_tighten ] );
      ( "polyhedron",
        [ Alcotest.test_case "contains" `Quick test_poly_contains;
          Alcotest.test_case "emptiness" `Quick test_poly_empty;
          Alcotest.test_case "integer gap" `Quick test_poly_empty_gap;
          Alcotest.test_case "eliminate (FM)" `Quick test_poly_eliminate;
          Alcotest.test_case "eliminate via equality" `Quick test_poly_eliminate_eq;
          Alcotest.test_case "integer points" `Quick test_poly_integer_points;
          Alcotest.test_case "insert dims" `Quick test_poly_insert_dims;
          Alcotest.test_case "lower/upper bounds" `Quick test_poly_bounds;
          Alcotest.test_case "dedup tightest" `Quick test_poly_dedup_keeps_tightest;
          Alcotest.test_case "structural_key golden (frozen v1)" `Quick
            test_structural_key_golden ] );
      ( "poly-props",
        qt
          [ prop_projection_sound; prop_empty_implies_no_points;
            prop_intersect_conjunction ] ) ]
