(* Random-SCoP fuzzing of the whole pipeline:
   build -> dependence analysis -> schedule (through the degradation
   ladder) -> verification -> codegen. Two properties, checked on every
   generated program:

   - crash-freedom: no uncaught exception anywhere in the pipeline;
   - legality: the schedule that comes out — degraded or not — passes
     check_complete and check_legal;
   - race freedom: wisecheck's independent conflict-system analysis
     certifies every Parallel mark of the generated AST.

   The generator also flips the chaos hooks (forced warm-start
   fallback, forced bignum promotion) and varies the solver budget
   (unlimited / 1 pivot / 50 pivots), so solver-stress paths get the
   same coverage as the happy path.

   Case count defaults to 50; the CI fuzz smoke job raises it with
   FUZZ_SCOPS=200. *)

let count =
  match Sys.getenv_opt "FUZZ_SCOPS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 50)
  | None -> 50

(* --- program specs -------------------------------------------------------- *)

(* All arrays are N x N; loops run over [1, N-2] and every access
   offsets an iterator by -1/0/+1, so accesses are in bounds by
   construction. A depth-1 nest indexes arrays as [i+o1][i+o2]. *)

type stmt_spec = {
  target : int;  (* array id, 0..2 *)
  write_off : int * int;
  reads : (int * (int * int)) list;  (* (array id, offsets) *)
}

type nest_spec = { depth : int (* 1 or 2 *); stmts : stmt_spec list }

type case_spec = {
  nests : nest_spec list;
  model : int;  (* 0..3 -> Nofuse/Smartfuse/Maxfuse/Wisefuse *)
  budget_kind : int;  (* 0 unlimited, 1 one pivot, 2 fifty pivots *)
  chaos_warm : bool;
  chaos_big : bool;
}

let model_of = function
  | 0 -> Fusion.Model.Nofuse
  | 1 -> Fusion.Model.Smartfuse
  | 2 -> Fusion.Model.Maxfuse
  | _ -> Fusion.Model.Wisefuse

let budget_of = function
  | 1 -> Linalg.Budget.make ~pivots:1 ()
  | 2 -> Linalg.Budget.make ~pivots:50 ()
  | _ -> Linalg.Budget.make ()

(* An injected reduction shape: accumulates into its own dedicated
   array (so no interleaved writer can spoil the proof) with one of the
   four associative-commutative operators. *)
type red_spec = {
  rop : int;  (* 0 +, 1 *, 2 min, 3 max *)
  rdepth : int;  (* 1 or 2 *)
  racc_col : bool;  (* depth 2 only: accumulator indexed by the inner j *)
  rreads : (int * (int * int)) list;  (* data arrays read, as in stmt_spec *)
}

let build_program ?(reds = []) spec =
  let open Scop.Build in
  let ctx = create ~name:"fuzz" ~params:[ ("N", 10) ] in
  let n = param ctx "N" in
  let arrs =
    [| array ctx "A" [ n; n ]; array ctx "B" [ n; n ]; array ctx "C" [ n; n ] |]
  in
  let sid = ref 0 in
  let index i j (o1, o2) = [ i +~ ci o1; j +~ ci o2 ] in
  let emit st i j =
    let rhs =
      List.fold_left
        (fun acc (a, off) -> acc +: arrs.(a).%(index i j off))
        (f 1.0) st.reads
    in
    let name = Printf.sprintf "S%d" !sid in
    incr sid;
    assign ctx name arrs.(st.target) (index i j st.write_off) rhs
  in
  let lb = ci 1 and ub = n -~ ci 2 in
  List.iter
    (fun nest ->
      if nest.depth = 1 then
        loop ctx "i" ~lb ~ub (fun i ->
            List.iter (fun st -> emit st i i) nest.stmts)
      else
        loop ctx "i" ~lb ~ub (fun i ->
            loop ctx "j" ~lb ~ub (fun j ->
                List.iter (fun st -> emit st i j) nest.stmts)))
    spec.nests;
  List.iteri
    (fun k (r : red_spec) ->
      let acc = array ctx (Printf.sprintf "acc%d" k) [ n ] in
      let rhs_data i j =
        List.fold_left
          (fun e (a, off) -> e +: arrs.(a).%(index i j off))
          (f 1.0) r.rreads
      in
      let combine acc_ld e =
        match r.rop with
        | 0 -> acc_ld +: e
        | 1 -> acc_ld *: e
        | 2 -> min_ acc_ld e
        | _ -> max_ acc_ld e
      in
      let name = Printf.sprintf "R%d" k in
      if r.rdepth = 1 then
        loop ctx "i" ~lb ~ub (fun i ->
            assign ctx name acc [ ci 0 ]
              (combine (acc.%([ ci 0 ])) (rhs_data i i)))
      else
        loop ctx "i" ~lb ~ub (fun i ->
            loop ctx "j" ~lb ~ub (fun j ->
                let ix = if r.racc_col then [ j ] else [ ci 0 ] in
                assign ctx name acc ix (combine (acc.%(ix)) (rhs_data i j)))))
    reds;
  finish ctx

(* --- generator ------------------------------------------------------------ *)

let gen_spec =
  QCheck.Gen.(
    let off = int_range (-1) 1 in
    let offs = pair off off in
    let stmt =
      map3
        (fun target write_off reads -> { target; write_off; reads })
        (int_range 0 2) offs
        (list_size (int_range 0 3) (pair (int_range 0 2) offs))
    in
    let nest =
      map2
        (fun depth stmts -> { depth; stmts })
        (int_range 1 2)
        (list_size (int_range 1 2) stmt)
    in
    map
      (fun ((nests, model), (budget_kind, (chaos_warm, chaos_big))) ->
        { nests; model; budget_kind; chaos_warm; chaos_big })
      (pair
         (pair (list_size (int_range 1 3) nest) (int_range 0 3))
         (pair (int_range 0 2) (pair bool bool))))

let print_spec spec =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "model=%s budget=%d warm=%b big=%b\n"
       (Fusion.Model.name (model_of spec.model))
       spec.budget_kind spec.chaos_warm spec.chaos_big);
  List.iter
    (fun nest ->
      Buffer.add_string b (Printf.sprintf "  nest depth=%d\n" nest.depth);
      List.iter
        (fun st ->
          Buffer.add_string b
            (Printf.sprintf "    arr%d[%d,%d] = 1.0%s\n" st.target
               (fst st.write_off) (snd st.write_off)
               (String.concat ""
                  (List.map
                     (fun (a, (o1, o2)) ->
                       Printf.sprintf " + arr%d[%d,%d]" a o1 o2)
                     st.reads))))
        nest.stmts)
    spec.nests;
  Buffer.contents b

let arb_spec = QCheck.make ~print:print_spec gen_spec

(* --- the property --------------------------------------------------------- *)

let run_case spec =
  Ilp.Lp.Chaos.warm_fallback := spec.chaos_warm;
  Linalg.Bigint.chaos_big_path := spec.chaos_big;
  Fun.protect
    ~finally:(fun () ->
      Ilp.Lp.Chaos.reset ();
      Linalg.Bigint.chaos_big_path := false)
    (fun () ->
      let prog = build_program spec in
      let config = Fusion.Model.scheduler_config (model_of spec.model) in
      let budget = budget_of spec.budget_kind in
      let o = Fusion.Resilient.optimize ~budget ~config prog in
      let r = o.Fusion.Resilient.result in
      (match
         Pluto.Satisfy.check_complete r.Pluto.Scheduler.prog
           r.Pluto.Scheduler.sched
       with
      | Ok () -> ()
      | Error d ->
        QCheck.Test.fail_reportf "incomplete schedule: %s (%s rung)"
          d.Pluto.Diagnostics.code
          (Fusion.Resilient.rung_name o.Fusion.Resilient.rung));
      (match
         Pluto.Satisfy.check_legal r.Pluto.Scheduler.prog
           r.Pluto.Scheduler.true_deps r.Pluto.Scheduler.sched
       with
      | Ok () -> ()
      | Error d ->
        QCheck.Test.fail_reportf "illegal schedule: dep %d->%d (%s rung)"
          d.Deps.Dep.src d.Deps.Dep.dst
          (Fusion.Resilient.rung_name o.Fusion.Resilient.rung));
      (* codegen crash-freedom: emit a complete C program and drop it *)
      ignore
        (Codegen.Cprint.program ~name:"fuzz" prog o.Fusion.Resilient.ast);
      (* wisecheck race certification: every Parallel mark of the
         generated AST must be conflict-free under the final schedule *)
      let races =
        Analysis.Race.check r.Pluto.Scheduler.prog r.Pluto.Scheduler.all_deps
          r.Pluto.Scheduler.sched o.Fusion.Resilient.ast
      in
      (match
         List.find_opt
           (fun (f : Analysis.Finding.t) ->
             f.Analysis.Finding.kind = Analysis.Finding.Racy_parallel)
           races
       with
      | Some f ->
        QCheck.Test.fail_reportf "racy parallel mark: %s (%s rung)"
          f.Analysis.Finding.message
          (Fusion.Resilient.rung_name o.Fusion.Resilient.rung)
      | None -> ());
      true)

let fuzz_pipeline =
  QCheck.Test.make ~name:"random SCoPs: pipeline crash-free and legal" ~count
    arb_spec run_case

(* --- injected reduction shapes -------------------------------------------- *)

(* Random SCoPs with reduction statements injected alongside the
   ordinary ones, round-tripped through the reduction-aware pipeline.
   Properties, on every generated program:

   - the detector proves every injected shape (each accumulates into
     its own array, so nothing can spoil the proof);
   - reduction-aware scheduling stays complete and legal — legality
     checked against the tagged dependences, exactly as the pipeline's
     own rungs check it;
   - wisecheck certifies the result with zero errors: every
     Parallel_reduction mark must re-prove from program text. *)

type red_case = { rbase : case_spec; reds : red_spec list }

let gen_red =
  QCheck.Gen.(
    let off = int_range (-1) 1 in
    let offs = pair off off in
    let red =
      map3
        (fun rop (rdepth, racc_col) rreads -> { rop; rdepth; racc_col; rreads })
        (int_range 0 3)
        (pair (int_range 1 2) bool)
        (list_size (int_range 0 2) (pair (int_range 0 2) offs))
    in
    map2
      (fun rbase reds -> { rbase; reds })
      gen_spec
      (list_size (int_range 1 3) red))

let op_sym = function 0 -> "+" | 1 -> "*" | 2 -> "min" | _ -> "max"

let print_red rc =
  print_spec rc.rbase
  ^ String.concat ""
      (List.mapi
         (fun k r ->
           Printf.sprintf "  R%d: acc%d[%s] %s= data (depth %d, %d reads)\n" k
             k
             (if r.rdepth = 2 && r.racc_col then "j" else "0")
             (op_sym r.rop) r.rdepth (List.length r.rreads))
         rc.reds)

let run_red rc =
  let prog = build_program ~reds:rc.reds rc.rbase in
  let deps = Deps.Dep.analyze prog in
  let facts, _ = Analysis.Reduction.detect prog deps in
  Array.iteri
    (fun idx (s : Scop.Statement.t) ->
      if String.length s.name > 0 && s.name.[0] = 'R' then
        match Analysis.Reduction_info.for_stmt facts idx with
        | Some _ -> ()
        | None ->
          QCheck.Test.fail_reportf "injected reduction %s not detected" s.name)
    prog.Scop.Program.stmts;
  let config = Fusion.Model.scheduler_config (model_of rc.rbase.model) in
  let o = Fusion.Resilient.optimize ~reductions:true ~config prog in
  let r = o.Fusion.Resilient.result in
  (match
     Pluto.Satisfy.check_complete r.Pluto.Scheduler.prog r.Pluto.Scheduler.sched
   with
  | Ok () -> ()
  | Error d ->
    QCheck.Test.fail_reportf "incomplete schedule: %s" d.Pluto.Diagnostics.code);
  (match
     Pluto.Satisfy.check_legal r.Pluto.Scheduler.prog
       r.Pluto.Scheduler.true_deps r.Pluto.Scheduler.sched
   with
  | Ok () -> ()
  | Error d ->
    QCheck.Test.fail_reportf "illegal schedule: dep %d->%d" d.Deps.Dep.src
      d.Deps.Dep.dst);
  let rep =
    Analysis.Wisecheck.certify r.Pluto.Scheduler.prog r.Pluto.Scheduler.all_deps
      r.Pluto.Scheduler.sched o.Fusion.Resilient.ast
  in
  if rep.Analysis.Wisecheck.errors > 0 then
    QCheck.Test.fail_reportf "wisecheck errors on reduction-injected SCoP: %s"
      (String.concat "; "
         (List.filter_map
            (fun (fi : Analysis.Finding.t) ->
              if fi.Analysis.Finding.severity = Analysis.Finding.Error then
                Some fi.Analysis.Finding.message
              else None)
            rep.Analysis.Wisecheck.findings));
  true

let fuzz_reductions =
  QCheck.Test.make
    ~name:"injected reductions: detect, schedule and certify"
    ~count:(max 5 (count / 2))
    (QCheck.make ~print:print_red gen_red)
    run_red

(* --- large generated SCoPs ------------------------------------------------ *)

(* The same properties over Kernels.Scopgen's many-statement shapes,
   with the engine itself fuzzed (ilp / lp-dfp / auto). Statement
   counts go up to FUZZ_STMTS (default 80); the CI scale smoke job
   raises it. Far fewer cases than the random-SCoP property: each one
   is a whole hundred-ish-statement pipeline run. *)

let fuzz_stmts =
  match Sys.getenv_opt "FUZZ_STMTS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 9 -> n | _ -> 80)
  | None -> 80

let large_count = max 3 (count / 10)

type large_spec = { shape : int; lstmts : int; engine : int; lmodel : int }

let gen_large =
  QCheck.Gen.(
    map
      (fun ((shape, lstmts), (engine, lmodel)) ->
        { shape; lstmts; engine; lmodel })
      (pair
         (pair (int_range 0 2) (int_range 10 fuzz_stmts))
         (pair (int_range 0 2) (int_range 0 3))))

let print_large spec =
  Printf.sprintf "shape=%s stmts=%d engine=%s model=%s"
    (Kernels.Scopgen.shape_name
       (List.nth Kernels.Scopgen.all_shapes spec.shape))
    spec.lstmts
    (Pluto.Engine.choice_name
       (match spec.engine with
       | 0 -> Pluto.Engine.Fixed Pluto.Engine.Ilp
       | 1 -> Pluto.Engine.Fixed Pluto.Engine.Lp_dfp
       | _ -> Pluto.Engine.Auto))
    (Fusion.Model.name (model_of spec.lmodel))

let run_large spec =
  let shape = List.nth Kernels.Scopgen.all_shapes spec.shape in
  let engine =
    match spec.engine with
    | 0 -> Pluto.Engine.Fixed Pluto.Engine.Ilp
    | 1 -> Pluto.Engine.Fixed Pluto.Engine.Lp_dfp
    | _ -> Pluto.Engine.Auto
  in
  let prog = Kernels.Scopgen.generate shape ~stmts:spec.lstmts in
  let config = Fusion.Model.scheduler_config (model_of spec.lmodel) in
  let o = Fusion.Resilient.optimize ~engine ~config prog in
  let r = o.Fusion.Resilient.result in
  (match
     Pluto.Satisfy.check_complete r.Pluto.Scheduler.prog r.Pluto.Scheduler.sched
   with
  | Ok () -> ()
  | Error d ->
    QCheck.Test.fail_reportf "incomplete schedule: %s" d.Pluto.Diagnostics.code);
  (match
     Pluto.Satisfy.check_legal r.Pluto.Scheduler.prog
       r.Pluto.Scheduler.true_deps r.Pluto.Scheduler.sched
   with
  | Ok () -> ()
  | Error d ->
    QCheck.Test.fail_reportf "illegal schedule: dep %d->%d" d.Deps.Dep.src
      d.Deps.Dep.dst);
  let races =
    Analysis.Race.check r.Pluto.Scheduler.prog r.Pluto.Scheduler.all_deps
      r.Pluto.Scheduler.sched o.Fusion.Resilient.ast
  in
  (match
     List.find_opt
       (fun (f : Analysis.Finding.t) ->
         f.Analysis.Finding.kind = Analysis.Finding.Racy_parallel)
       races
   with
  | Some f ->
    QCheck.Test.fail_reportf "racy parallel mark: %s" f.Analysis.Finding.message
  | None -> ());
  true

let fuzz_large =
  QCheck.Test.make ~name:"generated large SCoPs: engines crash-free and legal"
    ~count:large_count
    (QCheck.make ~print:print_large gen_large)
    run_large

let () =
  Alcotest.run "fuzz"
    [
      ("pipeline", [ QCheck_alcotest.to_alcotest fuzz_pipeline ]);
      ("reductions", [ QCheck_alcotest.to_alcotest fuzz_reductions ]);
      ("large", [ QCheck_alcotest.to_alcotest fuzz_large ]);
    ]
