open Linalg

type t = {
  dim : int;
  cons : Constr.t list; (* normalized, deduplicated, no trivially-true *)
  known_empty : bool; (* a trivially-false constraint was added *)
}

let dim p = p.dim
let constraints p = if p.known_empty then [ Constr.ge [ -1 ] |> Constr.rename ~dim_to:p.dim (fun _ -> 0) ] else p.cons

(* Keep, for two inequalities with identical variable parts, only the
   tighter one (smaller constant); drop duplicates and trivial truths. *)
let dedup cons =
  let cmp_varpart a b =
    (* compare kind + all coefficients except the constant *)
    let ka = Constr.kind a and kb = Constr.kind b in
    if ka <> kb then compare ka kb
    else begin
      let ca = Constr.coeffs a and cb = Constr.coeffs b in
      let n = Vec.dim ca - 1 in
      let rec go i =
        if i >= n then 0
        else begin
          match Q.compare ca.(i) cb.(i) with 0 -> go (i + 1) | c -> c
        end
      in
      go 0
    end
  in
  let sorted =
    List.sort
      (fun a b ->
        match cmp_varpart a b with
        | 0 -> Q.compare (Constr.const a) (Constr.const b)
        | c -> c)
      cons
  in
  (* after sorting, the first of each variable-part group of
     inequalities is the tightest (smallest constant); equalities with
     equal var part but different constants are contradictory - keep
     both so the emptiness check notices *)
  let rec keep = function
    | [] -> []
    | a :: rest ->
      let rest =
        if Constr.kind a = Constr.Ge then
          drop_same_group a rest
        else
          drop_exact_dups a rest
      in
      a :: keep rest
  and drop_same_group a = function
    | b :: rest when Constr.kind b = Constr.Ge && cmp_varpart a b = 0 ->
      drop_same_group a rest
    | rest -> rest
  and drop_exact_dups a = function
    | b :: rest when Constr.equal a b -> drop_exact_dups a rest
    | rest -> rest
  in
  keep sorted

let classify cons =
  (* split into (empty?, useful constraints) *)
  let useful = ref [] in
  let falsity = ref false in
  List.iter
    (fun c ->
      match Constr.is_trivial c with
      | Some true -> ()
      | Some false -> falsity := true
      | None -> useful := c :: !useful)
    cons;
  (!falsity, dedup !useful)

let make dim cons =
  List.iter
    (fun c ->
      if Constr.dim c <> dim then invalid_arg "Polyhedron.make: dimension mismatch")
    cons;
  let falsity, cons = classify cons in
  { dim; cons; known_empty = falsity }

let universe dim = { dim; cons = []; known_empty = false }
let empty dim = { dim; cons = []; known_empty = true }

let add p c =
  if Constr.dim c <> p.dim then invalid_arg "Polyhedron.add: dimension mismatch";
  match Constr.is_trivial c with
  | Some true -> p
  | Some false -> { p with known_empty = true }
  | None -> { p with cons = dedup (c :: p.cons) }

let add_list p cs = List.fold_left add p cs

let intersect a b =
  if a.dim <> b.dim then invalid_arg "Polyhedron.intersect: dimension mismatch";
  {
    dim = a.dim;
    cons = dedup (a.cons @ b.cons);
    known_empty = a.known_empty || b.known_empty;
  }

let contains p x =
  (not p.known_empty) && List.for_all (fun c -> Constr.holds c x) p.cons

let contains_int p x = contains p (Array.map Q.of_int x)

(* --- Fourier-Motzkin ------------------------------------------------- *)

(* Eliminate variable [k] from a constraint list over [n] variables.
   The variable keeps its slot (coefficient forced to zero); callers
   compact the space afterwards. *)
let fm_step ~integer n cons k =
  let coeff c = Constr.coeff c k in
  let with_k, without_k = List.partition (fun c -> not (Q.is_zero (coeff c))) cons in
  (* gcd-tighten the inequalities about to be combined - only sound when
     the eliminated variable ranges over integers *)
  let with_k = if integer then List.map Constr.tighten_int with_k else with_k in
  match List.find_opt (fun c -> Constr.kind c = Constr.Eq) with_k with
  | Some e ->
    (* substitute using the equality: c' = c - (b/a) e *)
    let a = coeff e in
    let reduced =
      List.filter_map
        (fun c ->
          if c == e then None
          else begin
            let b = coeff c in
            let f = Q.neg (Q.div b a) in
            let v = Vec.add (Constr.coeffs c) (Vec.scale f (Constr.coeffs e)) in
            Some (Constr.make (Constr.kind c) v)
          end)
        with_k
    in
    (reduced @ without_k, n)
  | None ->
    (* all occurrences are inequalities: combine pos/neg pairs *)
    let pos, neg = List.partition (fun c -> Q.sign (coeff c) > 0) with_k in
    let combos =
      List.concat_map
        (fun p ->
          List.map
            (fun m ->
              let a = coeff p and b = coeff m in
              (* |b| * p + a * m has zero coefficient on k *)
              let v =
                Vec.add
                  (Vec.scale (Q.abs b) (Constr.coeffs p))
                  (Vec.scale a (Constr.coeffs m))
              in
              let c = Constr.make Constr.Ge v in
              if integer then Constr.tighten_int c else c)
            neg)
        pos
    in
    (combos @ without_k, n)

let eliminate ?(integer = true) p vars =
  let vars = List.sort_uniq compare vars in
  List.iter
    (fun v ->
      if v < 0 || v >= p.dim then invalid_arg "Polyhedron.eliminate: bad index")
    vars;
  if p.known_empty then empty (p.dim - List.length vars)
  else begin
    let cons = ref p.cons in
    let empty_found = ref false in
    List.iter
      (fun k ->
        if not !empty_found then begin
          let next, _ = fm_step ~integer p.dim !cons k in
          let falsity, cleaned = classify next in
          if falsity then empty_found := true else cons := cleaned
        end)
      vars;
    if !empty_found then empty (p.dim - List.length vars)
    else begin
      (* compact the variable space *)
      let keep = List.filter (fun i -> not (List.mem i vars)) (List.init p.dim Fun.id) in
      let new_dim = List.length keep in
      let index_of = Hashtbl.create 16 in
      List.iteri (fun new_i old_i -> Hashtbl.add index_of old_i new_i) keep;
      let remap c =
        Constr.rename ~dim_to:new_dim
          (fun old_i ->
            match Hashtbl.find_opt index_of old_i with
            | Some i -> i
            | None -> assert false (* eliminated vars have zero coeffs *))
          c
      in
      make new_dim (List.map remap !cons)
    end
  end

let project_onto_first ?integer p k =
  if k < 0 || k > p.dim then invalid_arg "Polyhedron.project_onto_first";
  eliminate ?integer p (List.init (p.dim - k) (fun i -> k + i))

let is_empty p =
  if p.known_empty then true
  else begin
    let q = eliminate p (List.init p.dim Fun.id) in
    q.known_empty
  end

let insert_dims p ~at ~count =
  if at < 0 || at > p.dim then invalid_arg "Polyhedron.insert_dims";
  let new_dim = p.dim + count in
  let f i = if i < at then i else i + count in
  {
    dim = new_dim;
    cons = List.map (Constr.rename ~dim_to:new_dim f) p.cons;
    known_empty = p.known_empty;
  }

let rename p ~dim_to f =
  {
    dim = dim_to;
    cons = dedup (List.map (Constr.rename ~dim_to f) p.cons);
    known_empty = p.known_empty;
  }

let integer_points ~lo ~hi p =
  if Array.length lo <> p.dim || Array.length hi <> p.dim then
    invalid_arg "Polyhedron.integer_points: box dimension mismatch";
  if p.known_empty then []
  else begin
    let acc = ref [] in
    let point = Array.make p.dim 0 in
    let rec go i =
      if i = p.dim then begin
        if contains_int p point then acc := Array.copy point :: !acc
      end
      else
        for v = lo.(i) to hi.(i) do
          point.(i) <- v;
          go (i + 1)
        done
    in
    go 0;
    List.rev !acc
  end

let lower_upper_bounds p k =
  let lower = ref [] and upper = ref [] and rest = ref [] in
  List.iter
    (fun c ->
      let a = Constr.coeff c k in
      match (Constr.kind c, Q.sign a) with
      | _, 0 -> rest := c :: !rest
      | Constr.Ge, s -> if s > 0 then lower := c :: !lower else upper := c :: !upper
      | Constr.Eq, s ->
        (* an equality bounds from both sides; orient so the lower-side
           copy has a positive coefficient on k *)
        let v = Constr.coeffs c in
        let pos = if s > 0 then v else Vec.neg v in
        lower := Constr.make Constr.Ge pos :: !lower;
        upper := Constr.make Constr.Ge (Vec.neg pos) :: !upper)
    p.cons;
  (List.rev !lower, List.rev !upper, List.rev !rest)

let structural_key p =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (string_of_int p.dim);
  if p.known_empty then Buffer.add_string buf "!empty";
  List.iter
    (fun c ->
      Buffer.add_char buf ';';
      Buffer.add_string buf (Constr.structural_key c))
    (List.sort Constr.compare p.cons);
  Buffer.contents buf

let equal a b =
  a.dim = b.dim && a.known_empty = b.known_empty
  && List.equal Constr.equal
       (List.sort Constr.compare a.cons)
       (List.sort Constr.compare b.cons)

let pp ?names fmt p =
  if p.known_empty then Format.pp_print_string fmt "{ false }"
  else if p.cons = [] then Format.fprintf fmt "{ true (dim %d) }" p.dim
  else begin
    Format.fprintf fmt "@[<v 2>{";
    List.iter (fun c -> Format.fprintf fmt "@,%a" (Constr.pp ?names) c) p.cons;
    Format.fprintf fmt "@]@,}"
  end
