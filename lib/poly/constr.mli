(** Affine constraints over an indexed variable space.

    A constraint over [n] variables is stored as [n + 1] rational
    coefficients [a0 .. a(n-1), c] and a kind, and denotes

    - [Ge]: [a . x + c >= 0]
    - [Eq]: [a . x + c  = 0]

    Constraints are kept normalized: coefficients are scaled to a
    primitive integer vector (orientation preserved). *)

type kind = Eq | Ge

type t = private { kind : kind; coeffs : Linalg.Vec.t }
(** [coeffs] has length [n + 1]; the last entry is the constant. *)

(** [make kind coeffs] normalizes and builds a constraint.
    [coeffs] includes the trailing constant. *)
val make : kind -> Linalg.Vec.t -> t

(** [ge coeffs] / [eq coeffs] from integer coefficient lists
    (constant last). *)
val ge : int list -> t

val eq : int list -> t

(** Number of variables (i.e. [length coeffs - 1]). *)
val dim : t -> int

val kind : t -> kind
val coeffs : t -> Linalg.Vec.t

(** Coefficient of variable [i]. *)
val coeff : t -> int -> Linalg.Q.t

(** The trailing constant. *)
val const : t -> Linalg.Q.t

(** [eval c x] is [a . x + const] for a point [x] of size [dim c]. *)
val eval : t -> Linalg.Vec.t -> Linalg.Q.t

(** [holds c x]: does point [x] satisfy the constraint? *)
val holds : t -> Linalg.Vec.t -> bool

(** [is_trivial c] is [Some true] if the constraint is always true
    (e.g. [0 >= -3]), [Some false] if never ([0 >= 1] or [0 = 5]),
    [None] if it involves variables. *)
val is_trivial : t -> bool option

(** Negate an inequality: [not (a.x + c >= 0)] over the integers is
    [-a.x - c - 1 >= 0]. Requires integer coefficients (guaranteed by
    normalization) and [kind = Ge].
    @raise Invalid_argument on equalities. *)
val negate_int : t -> t

(** Map variable indices: [rename ~dim_to f c] produces a constraint
    over [dim_to] variables where old variable [i] becomes variable
    [f i]. The constant is carried over. *)
val rename : dim_to:int -> (int -> int) -> t -> t

(** Integer tightening: if all variable coefficients are integers with
    gcd [g > 1], an inequality can be tightened to
    [(a/g) . x + floor(c/g) >= 0]. Equalities are unchanged (but an
    equality with [g] not dividing [c] is unsatisfiable over ℤ —
    detected by {!Polyhedron.is_empty}). *)
val tighten_int : t -> t

(** Canonical textual form of the constraint (kind + normalized
    coefficients): two constraints have equal keys iff they are
    {!equal}. Used to build structural hashes of whole systems for
    memoization (see {!Polyhedron.structural_key}). *)
val structural_key : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : ?names:string array -> Format.formatter -> t -> unit

(** Internal, for {!Polyhedron}: build without copying. *)
val unsafe_make : kind -> Linalg.Vec.t -> t
