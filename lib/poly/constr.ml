open Linalg

type kind = Eq | Ge

type t = { kind : kind; coeffs : Vec.t }

let normalize coeffs =
  (* scale to primitive integer coefficients, orientation preserved *)
  if Vec.is_zero coeffs then Vec.copy coeffs else Vec.normalize_int coeffs

let make kind coeffs =
  if Vec.dim coeffs < 1 then invalid_arg "Constr.make: needs a constant";
  { kind; coeffs = normalize coeffs }

let unsafe_make kind coeffs = { kind; coeffs }

let ge l = make Ge (Vec.of_int_list l)
let eq l = make Eq (Vec.of_int_list l)

let dim c = Vec.dim c.coeffs - 1
let kind c = c.kind
let coeffs c = c.coeffs
let coeff c i = c.coeffs.(i)
let const c = c.coeffs.(Vec.dim c.coeffs - 1)

let eval c x =
  let n = dim c in
  if Vec.dim x <> n then invalid_arg "Constr.eval: dimension mismatch";
  let acc = ref (const c) in
  for i = 0 to n - 1 do
    acc := Q.add !acc (Q.mul c.coeffs.(i) x.(i))
  done;
  !acc

let holds c x =
  let v = eval c x in
  match c.kind with
  | Eq -> Q.is_zero v
  | Ge -> Q.sign v >= 0

let is_trivial c =
  let n = dim c in
  let all_zero =
    let rec go i = i >= n || (Q.is_zero c.coeffs.(i) && go (i + 1)) in
    go 0
  in
  if not all_zero then None
  else begin
    let k = const c in
    match c.kind with
    | Eq -> Some (Q.is_zero k)
    | Ge -> Some (Q.sign k >= 0)
  end

let negate_int c =
  match c.kind with
  | Eq -> invalid_arg "Constr.negate_int: equality"
  | Ge ->
    let v = Vec.neg c.coeffs in
    let n = Vec.dim v in
    v.(n - 1) <- Q.sub v.(n - 1) Q.one;
    make Ge v

let rename ~dim_to f c =
  let n = dim c in
  let v = Vec.zero (dim_to + 1) in
  for i = 0 to n - 1 do
    if not (Q.is_zero c.coeffs.(i)) then begin
      let j = f i in
      if j < 0 || j >= dim_to then invalid_arg "Constr.rename: target out of range";
      v.(j) <- Q.add v.(j) c.coeffs.(i)
    end
  done;
  v.(dim_to) <- const c;
  make c.kind v

let tighten_int c =
  match c.kind with
  | Eq -> c
  | Ge ->
    let n = dim c in
    (* after normalization coefficients are integers with overall gcd 1
       (including the constant); compute the gcd of the variable
       coefficients alone *)
    let g =
      let acc = ref Bigint.zero in
      for i = 0 to n - 1 do
        acc := Bigint.gcd !acc (Q.num c.coeffs.(i))
      done;
      !acc
    in
    if Bigint.is_zero g || Bigint.is_one g then c
    else begin
      let v = Vec.zero (n + 1) in
      for i = 0 to n - 1 do
        v.(i) <- Q.of_bigint (Bigint.div (Q.num c.coeffs.(i)) g)
      done;
      v.(n) <- Q.of_bigint (Bigint.fdiv (Q.num (const c)) g);
      unsafe_make Ge v
    end

let structural_key c =
  let buf = Buffer.create 32 in
  Buffer.add_char buf (match c.kind with Eq -> 'e' | Ge -> 'g');
  Array.iter
    (fun q ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (Q.to_string q))
    c.coeffs;
  Buffer.contents buf

let equal a b = a.kind = b.kind && Vec.equal a.coeffs b.coeffs

let compare a b =
  match compare a.kind b.kind with
  | 0 ->
    let ca = a.coeffs and cb = b.coeffs in
    let la = Vec.dim ca and lb = Vec.dim cb in
    if la <> lb then Stdlib.compare la lb
    else begin
      let rec go i =
        if i >= la then 0
        else begin
          match Q.compare ca.(i) cb.(i) with 0 -> go (i + 1) | c -> c
        end
      in
      go 0
    end
  | c -> c

let pp ?names fmt c =
  let n = dim c in
  let name i =
    match names with
    | Some a when i < Array.length a -> a.(i)
    | _ -> Printf.sprintf "x%d" i
  in
  let first = ref true in
  let buf = Buffer.create 32 in
  for i = 0 to n - 1 do
    let a = c.coeffs.(i) in
    if not (Q.is_zero a) then begin
      if Q.sign a > 0 && not !first then Buffer.add_string buf " + "
      else if Q.sign a < 0 then Buffer.add_string buf (if !first then "-" else " - ");
      let mag = Q.abs a in
      if not (Q.equal mag Q.one) then Buffer.add_string buf (Q.to_string mag ^ "*");
      Buffer.add_string buf (name i);
      first := false
    end
  done;
  let k = const c in
  if !first then Buffer.add_string buf (Q.to_string k)
  else if Q.sign k > 0 then Buffer.add_string buf (" + " ^ Q.to_string k)
  else if Q.sign k < 0 then Buffer.add_string buf (" - " ^ Q.to_string (Q.abs k));
  Buffer.add_string buf (match c.kind with Eq -> " = 0" | Ge -> " >= 0");
  Format.pp_print_string fmt (Buffer.contents buf)
