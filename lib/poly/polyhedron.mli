(** Convex polyhedra described by conjunctions of affine constraints,
    with exact Fourier-Motzkin projection.

    This module is the ISL-set replacement used for iteration domains,
    dependence polyhedra, and Farkas-multiplier elimination. All
    arithmetic is exact. Integer tightening (gcd normalization of
    inequalities) is applied during projection, so {!is_empty} is sound
    for integer sets: [true] guarantees no integer point. Exact integer
    emptiness (branch-and-bound) lives in the [ilp] library. *)

type t

(** [make dim constraints].
    @raise Invalid_argument if a constraint has the wrong dimension. *)
val make : int -> Constr.t list -> t

(** The unconstrained polyhedron of the given dimension. *)
val universe : int -> t

(** A canonically empty polyhedron. *)
val empty : int -> t

val dim : t -> int

(** Constraints, normalized and deduplicated. *)
val constraints : t -> Constr.t list

val add : t -> Constr.t -> t
val add_list : t -> Constr.t list -> t

(** @raise Invalid_argument on dimension mismatch. *)
val intersect : t -> t -> t

(** [contains p x] for a rational point [x]. *)
val contains : t -> Linalg.Vec.t -> bool

(** [contains_int p x] for an integer point. *)
val contains_int : t -> int array -> bool

(** [eliminate ?integer p vars] projects away the variables whose
    indices are in [vars] (Fourier-Motzkin). The remaining variables
    are renumbered in increasing order of their old index. With
    [integer:true] (default) gcd tightening is applied — sound only
    when the eliminated variables range over integers; pass
    [integer:false] for rational variables (e.g. Farkas multipliers).
    The result over-approximates the integer projection (standard FM
    property) and is exact over the rationals. *)
val eliminate : ?integer:bool -> t -> int list -> t

(** [project_onto_first p k] keeps variables [0 .. k-1]. *)
val project_onto_first : ?integer:bool -> t -> int -> t

(** Rational (FM-based) emptiness with integer tightening.
    [true] implies the set has no integer point (indeed no rational
    point except via tightening, which only removes non-integer ones).
    [false] means a rational point exists; an integer point is likely
    but not guaranteed. *)
val is_empty : t -> bool

(** [insert_dims p ~at ~count] adds [count] fresh unconstrained
    variables at index [at]; existing variables at [>= at] shift up. *)
val insert_dims : t -> at:int -> count:int -> t

(** [rename p ~dim_to f] applies {!Constr.rename} to all constraints. *)
val rename : t -> dim_to:int -> (int -> int) -> t

(** Enumerate all integer points of [p] within the box
    [lo.(i) <= x_i <= hi.(i)] (for tests and the advisory sampler;
    exponential in [dim]). Points are returned in lexicographic
    order. *)
val integer_points : lo:int array -> hi:int array -> t -> int array list

(** [lower_upper_bounds p k] classifies the constraints of [p] by their
    sign on variable [k]: [(lower, upper, rest)] where constraints in
    [lower] have positive coefficient on [k] (they bound it from below)
    and [upper] negative. Equalities with a non-zero coefficient appear
    in both lists (as the pair of induced inequalities). *)
val lower_upper_bounds : t -> int -> Constr.t list * Constr.t list * Constr.t list

(** Canonical structural hash key of the constraint system: dimension
    plus the sorted, normalized constraints. Two polyhedra have equal
    keys iff they are {!equal} — in particular, dependence polyhedra
    that are identical up to statement renaming (same dimensions, same
    constraint systems) collide, which is what the Farkas memoization
    in [lib/pluto] keys on.

    {b Frozen format} (v1 — do not change without versioning every
    consumer): the key is

    {[ <dim> ["!empty"] (";" <constr>)* ]}

    where [<dim>] is [string_of_int (dim p)], ["!empty"] appears iff a
    trivially-false constraint was seen at construction (the trivial
    constraint itself is dropped from the system), and each
    [<constr>] is {!Constr.structural_key} — the kind character ['e']
    (equality) or ['g'] (inequality [>= 0]) followed by one
    [" " ^ Q.to_string c] per normalized coefficient, constant last —
    with the constraints sorted by {!Constr.compare}. Example: the 1-d
    system [x >= 0, x = 3] renders ["1;e 1 -3;g 1 0"].

    The serving layer's content-addressed cache builds request
    fingerprints from these keys ([Serve.Fingerprint], versioned
    ["wisefuse-fp-v2"]), and persisted cache keys outlive any single
    process — a silent format change would turn every stored key stale
    and corrupt cross-version hit accounting. The golden regression
    test in [test/test_poly.ml] pins this rendering; update the version
    tag in [Serve.Fingerprint.version] if it ever has to move. *)
val structural_key : t -> string

val equal : t -> t -> bool
val pp : ?names:string array -> Format.formatter -> t -> unit
