(** An embedded DSL for writing SCoP kernels.

    Example — the first gemver loop nest:
    {[
      let ctx = Build.create ~name:"gemver" ~params:[ ("N", 1500) ] in
      let n = Build.param ctx "N" in
      let a = Build.array ctx "A" [ n; n ] in
      let u1 = Build.array ctx "u1" [ n ] in
      let v1 = Build.array ctx "v1" [ n ] in
      Build.loop ctx "i" ~lb:(Build.ci 0) ~ub:(n -~ ci 1) (fun i ->
          Build.loop ctx "j" ~lb:(Build.ci 0) ~ub:(n -~ ci 1) (fun j ->
              Build.assign ctx "S1" a [ i; j ]
                (a.%([ i; j ]) +: (u1.%([ i ]) *: v1.%([ j ])))));
      let program = Build.finish ctx
    ]} *)

type ctx
type aff
type arr
type rexpr

(** {1 Program skeleton} *)

(** [create ~name ~params] starts a program; each parameter comes with
    its default concrete value (used by the machine substrate). *)
val create : name:string -> params:(string * int) list -> ctx

(** Parameter as an affine value. @raise Not_found for unknown names. *)
val param : ctx -> string -> aff

(** Declare an array with the given extents (affine in parameters
    only). Returns a handle used in accesses.
    @raise Invalid_argument if an extent mentions an iterator. *)
val array : ctx -> string -> aff list -> arr

(** [loop ctx name ~lb ~ub body] runs [body] with the new iterator in
    scope; bounds are inclusive and may reference outer iterators. *)
val loop : ctx -> string -> lb:aff -> ub:aff -> (aff -> unit) -> unit

(** [assign ctx name target idx rhs] records statement
    [name: target[idx] = rhs] at the current loop position. *)
val assign : ctx -> string -> arr -> aff list -> rexpr -> unit

(** Finalize. @raise Invalid_argument if the program is malformed. *)
val finish : ctx -> Program.t

(** {1 Affine expressions} *)

(** Integer constant. *)
val ci : int -> aff

val ( +~ ) : aff -> aff -> aff
val ( -~ ) : aff -> aff -> aff

(** Scale by an integer. *)
val ( *~ ) : int -> aff -> aff

(** {1 Right-hand sides} *)

(** Float constant. *)
val f : float -> rexpr

(** Array load, e.g. [a.%([ i; j ])]. *)
val ( .%() ) : arr -> aff list -> rexpr

val ( +: ) : rexpr -> rexpr -> rexpr
val ( -: ) : rexpr -> rexpr -> rexpr
val ( *: ) : rexpr -> rexpr -> rexpr
val ( /: ) : rexpr -> rexpr -> rexpr
val neg : rexpr -> rexpr
val sqrt_ : rexpr -> rexpr

(** Pointwise minimum / maximum — the associative-commutative operators
    the reduction detector recognizes besides [+] and [*]. *)
val min_ : rexpr -> rexpr -> rexpr
val max_ : rexpr -> rexpr -> rexpr
