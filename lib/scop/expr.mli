(** Right-hand-side expressions of SCoP statements.

    Only the array references matter to the polyhedral analyses; the
    arithmetic structure is kept so the machine substrate can actually
    execute programs and so transformed programs can be checked
    semantically equivalent to their sources. *)

type binop = Add | Sub | Mul | Div | Min | Max

type t =
  | Const of float
  | Load of Access.t
  | Neg of t
  | Sqrt of t
  | Bin of binop * t * t

(** All [Load] accesses, left to right. *)
val loads : t -> Access.t list

(** Number of arithmetic operations (for the machine cost model). *)
val op_count : t -> int

(** [eval e ~read] computes the value, resolving each [Load] through
    [read]. *)
val eval : t -> read:(Access.t -> float) -> float

(** Operator spelling: symbols for the infix operators, ["min"]/["max"]
    for the function-call ones. *)
val op_str : binop -> string

val pp : ?iter_names:string array -> ?param_names:string array ->
  Format.formatter -> t -> unit
