(* Mutable builder turning nested OCaml closures into a Program.t. *)

type vkey = VIter of int (* loop id *) | VParam of int

type aff = { terms : (vkey * int) list; k : int }

type arr = { arr_name : string; arr_dims : int }

type rexpr =
  | RConst of float
  | RLoad of arr * aff list
  | RNeg of rexpr
  | RSqrt of rexpr
  | RBin of Expr.binop * rexpr * rexpr

type frame = { loop_id : int; iter_name : string; lb : aff; ub : aff }

type ctx = {
  prog_name : string;
  params : string array;
  defaults : int array;
  mutable arrays : Program.array_decl list; (* reversed *)
  mutable stmts : Statement.t list; (* reversed *)
  mutable stack : frame list; (* innermost first *)
  mutable beta_stack : int ref list; (* position counters, innermost first *)
  mutable next_loop_id : int;
}

(* --- affine expressions ------------------------------------------------ *)

let ci k = { terms = []; k }

let add_term terms key c =
  if c = 0 then terms
  else begin
    let rec go = function
      | [] -> [ (key, c) ]
      | (k', c') :: rest when k' = key ->
        let s = c + c' in
        if s = 0 then rest else (key, s) :: rest
      | t :: rest -> t :: go rest
    in
    go terms
  end

let aff_add a b =
  {
    terms = List.fold_left (fun acc (k, c) -> add_term acc k c) a.terms b.terms;
    k = a.k + b.k;
  }

let aff_neg a = { terms = List.map (fun (k, c) -> (k, -c)) a.terms; k = -a.k }
let ( +~ ) = aff_add
let ( -~ ) a b = aff_add a (aff_neg b)
let ( *~ ) s a = { terms = List.map (fun (k, c) -> (k, s * c)) a.terms; k = s * a.k }

(* --- rexpr -------------------------------------------------------------- *)

let f x = RConst x
let ( .%() ) arr idx = RLoad (arr, idx)
let ( +: ) a b = RBin (Expr.Add, a, b)
let ( -: ) a b = RBin (Expr.Sub, a, b)
let ( *: ) a b = RBin (Expr.Mul, a, b)
let ( /: ) a b = RBin (Expr.Div, a, b)
let neg a = RNeg a
let sqrt_ a = RSqrt a
let min_ a b = RBin (Expr.Min, a, b)
let max_ a b = RBin (Expr.Max, a, b)

(* --- ctx ----------------------------------------------------------------- *)

let create ~name ~params =
  {
    prog_name = name;
    params = Array.of_list (List.map fst params);
    defaults = Array.of_list (List.map snd params);
    arrays = [];
    stmts = [];
    stack = [];
    beta_stack = [ ref 0 ];
    next_loop_id = 0;
  }

let param_index ctx name =
  let rec go i =
    if i >= Array.length ctx.params then raise Not_found
    else if ctx.params.(i) = name then i
    else go (i + 1)
  in
  go 0

let param ctx name = { terms = [ (VParam (param_index ctx name), 1) ]; k = 0 }

let aff_to_param_row ctx a =
  let np = Array.length ctx.params in
  let row = Array.make (np + 1) 0 in
  List.iter
    (fun (key, c) ->
      match key with
      | VParam p -> row.(p) <- row.(p) + c
      | VIter _ -> invalid_arg "Build.array: extent mentions an iterator")
    a.terms;
  row.(np) <- a.k;
  row

let array ctx name extents =
  let decl =
    {
      Program.array_name = name;
      extents = Array.of_list (List.map (aff_to_param_row ctx) extents);
    }
  in
  ctx.arrays <- decl :: ctx.arrays;
  { arr_name = name; arr_dims = List.length extents }

(* Resolve an aff to a row over [iters(d); params(np); 1] given the
   iterator environment (loop_id -> index, outermost first). *)
let aff_to_row ctx ~iter_ids a =
  let d = Array.length iter_ids in
  let np = Array.length ctx.params in
  let row = Array.make (d + np + 1) 0 in
  List.iter
    (fun (key, c) ->
      match key with
      | VParam p -> row.(d + p) <- row.(d + p) + c
      | VIter id ->
        let idx = ref (-1) in
        Array.iteri (fun i x -> if x = id then idx := i) iter_ids;
        if !idx < 0 then
          invalid_arg "Build: iterator used outside its loop";
        row.(!idx) <- row.(!idx) + c)
    a.terms;
  row.(d + np) <- a.k;
  row

let bump ctx =
  match ctx.beta_stack with
  | top :: _ ->
    let v = !top in
    incr top;
    v
  | [] -> assert false

let loop ctx iter_name ~lb ~ub body =
  let loop_id = ctx.next_loop_id in
  ctx.next_loop_id <- loop_id + 1;
  let _pos = bump ctx in
  ctx.stack <- { loop_id; iter_name; lb; ub } :: ctx.stack;
  ctx.beta_stack <- ref 0 :: ctx.beta_stack;
  body { terms = [ (VIter loop_id, 1) ]; k = 0 };
  ctx.stack <- List.tl ctx.stack;
  ctx.beta_stack <- List.tl ctx.beta_stack

let rec resolve_rexpr ctx ~iter_ids = function
  | RConst x -> Expr.Const x
  | RNeg e -> Expr.Neg (resolve_rexpr ctx ~iter_ids e)
  | RSqrt e -> Expr.Sqrt (resolve_rexpr ctx ~iter_ids e)
  | RBin (op, a, b) ->
    Expr.Bin (op, resolve_rexpr ctx ~iter_ids a, resolve_rexpr ctx ~iter_ids b)
  | RLoad (arr, idx) ->
    if List.length idx <> arr.arr_dims then
      invalid_arg (Printf.sprintf "Build: arity mismatch on %s" arr.arr_name);
    Expr.Load
      (Access.make arr.arr_name
         (Array.of_list (List.map (aff_to_row ctx ~iter_ids) idx)))

let assign ctx name target idx rhs =
  let frames = List.rev ctx.stack (* outermost first *) in
  let iter_ids = Array.of_list (List.map (fun fr -> fr.loop_id) frames) in
  let iter_names = Array.of_list (List.map (fun fr -> fr.iter_name) frames) in
  let d = Array.length iter_ids in
  let np = Array.length ctx.params in
  (* domain: for each loop, iter - lb >= 0 and ub - iter >= 0 *)
  let cons =
    List.concat_map
      (fun fr ->
        let iv = { terms = [ (VIter fr.loop_id, 1) ]; k = 0 } in
        let low = aff_to_row ctx ~iter_ids (iv -~ fr.lb) in
        let up = aff_to_row ctx ~iter_ids (fr.ub -~ iv) in
        [ Poly.Constr.ge (Array.to_list low); Poly.Constr.ge (Array.to_list up) ])
      frames
  in
  let domain = Poly.Polyhedron.make (d + np) cons in
  if List.length idx <> target.arr_dims then
    invalid_arg (Printf.sprintf "Build: arity mismatch writing %s" target.arr_name);
  let write =
    Access.make target.arr_name
      (Array.of_list (List.map (aff_to_row ctx ~iter_ids) idx))
  in
  let rhs = resolve_rexpr ctx ~iter_ids rhs in
  let pos = bump ctx in
  (* beta = enclosing loop positions + own position; reconstruct the
     loop positions from the counters *)
  let outer_positions =
    (* counters: beta_stack is innermost-first and one longer than the
       stack; position of each loop was recorded when it was entered,
       which is (counter value at its level) - 1 ... we instead store it
       directly below *)
    List.rev_map (fun r -> !r - 1) (List.tl ctx.beta_stack)
  in
  let beta = Array.of_list (outer_positions @ [ pos ]) in
  let stmt =
    {
      Statement.id = List.length ctx.stmts;
      name;
      iters = iter_names;
      loop_ids = iter_ids;
      domain;
      write;
      rhs;
      beta;
    }
  in
  ctx.stmts <- stmt :: ctx.stmts

let finish ctx =
  Program.make ~name:ctx.prog_name ~params:ctx.params
    ~default_params:ctx.defaults
    ~arrays:(List.rev ctx.arrays)
    ~stmts:(Array.of_list (List.rev ctx.stmts))
