type binop = Add | Sub | Mul | Div | Min | Max

type t =
  | Const of float
  | Load of Access.t
  | Neg of t
  | Sqrt of t
  | Bin of binop * t * t

let loads e =
  let rec go acc = function
    | Const _ -> acc
    | Load a -> a :: acc
    | Neg e | Sqrt e -> go acc e
    | Bin (_, l, r) -> go (go acc l) r
  in
  List.rev (go [] e)

let rec op_count = function
  | Const _ | Load _ -> 0
  | Neg e | Sqrt e -> 1 + op_count e
  | Bin (_, l, r) -> 1 + op_count l + op_count r

let rec eval e ~read =
  match e with
  | Const f -> f
  | Load a -> read a
  | Neg e -> -.eval e ~read
  | Sqrt e -> sqrt (eval e ~read)
  | Bin (op, l, r) ->
    let a = eval l ~read and b = eval r ~read in
    (match op with
     | Add -> a +. b
     | Sub -> a -. b
     | Mul -> a *. b
     | Div -> a /. b
     | Min -> Float.min a b
     | Max -> Float.max a b)

let op_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
  | Min -> "min" | Max -> "max"

let rec pp ?iter_names ?param_names fmt = function
  | Const f -> Format.fprintf fmt "%g" f
  | Load a -> Access.pp ?iter_names ?param_names fmt a
  | Neg e -> Format.fprintf fmt "-(%a)" (pp ?iter_names ?param_names) e
  | Sqrt e -> Format.fprintf fmt "sqrt(%a)" (pp ?iter_names ?param_names) e
  | Bin ((Min | Max) as op, l, r) ->
    (* function-call form: compiles as C through the cprint min/max macros *)
    Format.fprintf fmt "%s(%a, %a)" (op_str op)
      (pp ?iter_names ?param_names) l
      (pp ?iter_names ?param_names) r
  | Bin (op, l, r) ->
    Format.fprintf fmt "(%a %s %a)"
      (pp ?iter_names ?param_names) l (op_str op)
      (pp ?iter_names ?param_names) r
