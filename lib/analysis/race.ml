open Deps

(* δ(z) = ϕ_dst(t) − ϕ_src(s) of one schedule row, as an affine form
   over the dependence space [s (d1); t (d2); params; 1]. Beta rows
   become constant forms, so the conflict system pins scalar dimensions
   exactly like loop dimensions — a dependence "live" at the loop's row
   must agree on every outer row of either kind. *)
let delta_vec (prog : Scop.Program.t) (sched : Pluto.Sched.t) (dep : Dep.t)
    row_idx =
  let np = Scop.Program.nparams prog in
  let d1 = Scop.Statement.depth prog.stmts.(dep.src) in
  let d2 = Scop.Statement.depth prog.stmts.(dep.dst) in
  let hs =
    Pluto.Sched.row_as_hyp ~depth:d1 ~np (List.nth sched.(dep.src) row_idx)
  in
  let ht =
    Pluto.Sched.row_as_hyp ~depth:d2 ~np (List.nth sched.(dep.dst) row_idx)
  in
  Pluto.Sched.phi_diff ~d1 ~d2 ~np hs ht

(* dep.poly ∧ params ≥ floor ∧ δ_k = 0 for every row k above [row_idx] *)
let conflict_base ~param_floor prog (sched : Pluto.Sched.t) (dep : Dep.t)
    row_idx =
  let np = Scop.Program.nparams prog in
  let d1 = Scop.Statement.depth prog.Scop.Program.stmts.(dep.src) in
  let d2 = Scop.Statement.depth prog.Scop.Program.stmts.(dep.dst) in
  let dim = d1 + d2 + np in
  let floor_cs =
    List.init np (fun p ->
        let c = Array.make (dim + 1) 0 in
        c.(d1 + d2 + p) <- 1;
        c.(dim) <- -param_floor;
        Poly.Constr.ge (Array.to_list c))
  in
  let pinned =
    List.init row_idx (fun k ->
        Poly.Constr.make Poly.Constr.Eq (delta_vec prog sched dep k))
  in
  Poly.Polyhedron.add_list dep.poly (floor_cs @ pinned)

(* δ_r ≥ 1 (resp. ≤ −1): shift the constant of the affine form *)
let at_least_one v =
  let v = Linalg.Vec.copy v in
  let n = Array.length v in
  v.(n - 1) <- Linalg.Q.sub v.(n - 1) Linalg.Q.one;
  Poly.Constr.make Poly.Constr.Ge v

let carried_witness ?(param_floor = 2) prog sched dep ~row_idx =
  let base = conflict_base ~param_floor prog sched dep row_idx in
  let v = delta_vec prog sched dep row_idx in
  let probe sys =
    if Ilp.Bb.feasible sys then
      Some (Option.value (Ilp.Bb.integer_point sys) ~default:[||])
    else None
  in
  match probe (Poly.Polyhedron.add base (at_least_one v)) with
  | Some _ as w -> w
  | None -> probe (Poly.Polyhedron.add base (at_least_one (Linalg.Vec.neg v)))

(* row index of each loop level: positions of Hyp rows *)
let loop_rows (sched : Pluto.Sched.t) =
  let rec go i = function
    | [] -> []
    | Pluto.Sched.Hyp _ :: rest -> i :: go (i + 1) rest
    | Pluto.Sched.Beta _ :: rest -> go (i + 1) rest
  in
  go 0 sched.(0)

let pp_witness prog (dep : Dep.t) (w : int array) =
  if Array.length w = 0 then "(within budget, no witness extracted)"
  else begin
    let d1 = Scop.Statement.depth prog.Scop.Program.stmts.(dep.src) in
    let d2 = Scop.Statement.depth prog.Scop.Program.stmts.(dep.dst) in
    let slice off len =
      String.concat ","
        (List.init len (fun i -> string_of_int w.(off + i)))
    in
    Printf.sprintf "src=(%s) dst=(%s) params=(%s)" (slice 0 d1) (slice d1 d2)
      (slice (d1 + d2) (Array.length w - d1 - d2))
  end

let check ?(param_floor = 2) ?(facts = []) (prog : Scop.Program.t) deps sched
    ast =
  if Array.length sched = 0 then []
  else begin
    let rows_of_level = loop_rows sched in
    let true_deps = List.filter Dep.is_true deps in
    let findings = ref [] in
    let emit f = findings := f :: !findings in
    Codegen.Ast.iter_loops
      (fun (l : Codegen.Ast.loop) ->
        match List.nth_opt rows_of_level l.level with
        | None -> ()
        | Some row_idx ->
          let mem = Codegen.Ast.members l.body in
          let live =
            List.filter
              (fun (d : Dep.t) -> List.mem d.src mem && List.mem d.dst mem)
              true_deps
          in
          let conflicts =
            List.filter_map
              (fun d ->
                match
                  carried_witness ~param_floor prog sched d ~row_idx
                with
                | Some w -> Some (d, w)
                | None -> None)
              live
          in
          let emit_racy ((d : Dep.t), w) =
            emit
              (Finding.make
                 ~stmts:(List.sort_uniq compare [ d.src; d.dst ])
                 ~level:l.level ~dep:d
                 ~context:
                   [
                     ("row", string_of_int row_idx);
                     ("witness", pp_witness prog d w);
                   ]
                 Finding.Racy_parallel
                 (Printf.sprintf
                    "loop t%d is marked %s but carries a %s \
                     dependence %s -> %s"
                    l.level
                    (Codegen.Ast.parallelism_name l.par)
                    (Dep.kind_to_string d.kind)
                    prog.stmts.(d.src).Scop.Statement.name
                    prog.stmts.(d.dst).Scop.Statement.name))
          in
          (match (l.par, conflicts) with
          | Codegen.Ast.Parallel, _ :: _ -> List.iter emit_racy conflicts
          | Codegen.Ast.Parallel, [] -> ()
          | Codegen.Ast.Parallel_reduction, conflicts ->
            (* every carried conflict must be licensed by an
               independently re-derived reduction proof; anything else
               behind the mark is a race, proof or no mark *)
            let covered, uncovered =
              List.partition
                (fun ((d : Dep.t), _) ->
                  List.exists (fun f -> Reduction.covers f d) facts)
                conflicts
            in
            List.iter emit_racy uncovered;
            if uncovered = [] then begin
              incr Linalg.Counters.reductions_certified;
              let ops =
                List.sort_uniq compare
                  (List.concat_map
                     (fun ((d : Dep.t), _) ->
                       List.filter_map
                         (fun (f : Reduction_info.t) ->
                           if Reduction.covers f d then
                             Some (Reduction_info.op_name f)
                           else None)
                         facts)
                     covered)
              in
              emit
                (Finding.make
                   ~stmts:(List.sort_uniq compare mem)
                   ~level:l.level
                   ~context:
                     [
                       ("row", string_of_int row_idx);
                       ( "covered-conflicts",
                         string_of_int (List.length covered) );
                       ("operators", String.concat "," ops);
                     ]
                   Finding.Reduction_certified
                   (Printf.sprintf
                      "loop t%d is race-free up to reduction reassociation \
                       (every carried dependence is a proven reduction \
                       self-dependence)"
                      l.level))
            end
          | (Codegen.Ast.Forward | Codegen.Ast.Sequential), [] ->
            emit
              (Finding.make
                 ~stmts:(List.sort_uniq compare mem)
                 ~level:l.level
                 ~context:
                   [
                     ("row", string_of_int row_idx);
                     ("mark", Codegen.Ast.parallelism_name l.par);
                     ("live dependences", string_of_int (List.length live));
                   ]
                 Finding.Lost_parallelism
                 (Printf.sprintf
                    "loop t%d is marked %s but is provably race-free"
                    l.level
                    (Codegen.Ast.parallelism_name l.par)))
          | (Codegen.Ast.Forward | Codegen.Ast.Sequential), _ :: _ -> ()))
      ast;
    List.rev !findings
  end
