(** The wisecheck driver: independent certification of a scheduling
    pipeline's output.

    [certify prog deps sched ast] runs the analysis passes —
    {!Race} (parallel-mark certification), {!Scan_check} (guard
    consistency, bound coverage, loose bounds, dead scanning) and
    {!Lints} (DDG hygiene) — over the {e final} artifacts of a pipeline
    run, deliberately not reusing the pipeline's own satisfaction
    classification, and returns the findings sorted errors-first.

    Reduction proofs are re-derived here via {!Reduction.detect}
    (structural, independent of the scheduler's tags) and handed to
    {!Race} and {!Lints}: a [Parallel_reduction] mark is certified
    "race-free up to reduction reassociation" only when the proof
    reconstructs from the program text; a flipped mark with no proof is
    still a [race.parallel] error. The detector's own
    [reduction.detected] / [reduction.rejected] findings ride along in
    the report.

    The whole pass is timed under the ["analysis"] stage of
    [Linalg.Counters] and bumps the per-severity finding counters. *)

type report = {
  findings : Finding.t list;  (** errors first *)
  errors : int;
  warnings : int;
  infos : int;
}

val certify :
  ?param_floor:int ->
  Scop.Program.t ->
  Deps.Dep.t list ->
  Pluto.Sched.t ->
  Codegen.Ast.node ->
  report

(** [true] when the AST carries no error-severity finding. *)
val certified : report -> bool

(** Render every finding one per line, plus a summary line. *)
val pp_report : Scop.Program.t -> Format.formatter -> report -> unit
