(* Typed facts produced by the reduction detector. *)

type t = {
  stmt : int;
  op : Scop.Expr.binop;
  acc : Scop.Access.t;
  covered : int list;
  chain_levels : int list;
}

let op_name (i : t) = Scop.Expr.op_str i.op

let for_stmt facts id = List.find_opt (fun i -> i.stmt = id) facts

let pp fmt i =
  Format.fprintf fmt "S%d: %s-reduction into %s (%d covered self-deps)" i.stmt
    (op_name i) i.acc.Scop.Access.array
    (List.length i.covered)
