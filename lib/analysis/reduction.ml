(* Reduction detection: prove statements have the shape
   A[f(i)] = A[f(i)] ⊕ e with ⊕ associative and commutative, the
   accumulator read-modify-write under identical subscripts, e free of
   the accumulator, and no other statement writing the cell mid-chain.

   The proof is purely structural over the expression AST plus the
   already-computed dependence set — no LP/ILP solves — so wisecheck
   can re-derive it independently of whatever the scheduler claimed. *)

open Deps

let is_assoc = function
  | Scop.Expr.Add | Scop.Expr.Mul | Scop.Expr.Min | Scop.Expr.Max -> true
  | Scop.Expr.Sub | Scop.Expr.Div -> false

(* leaves of the maximal same-operator chain: for ⊕ associative,
   ((a ⊕ x) ⊕ y) is as much a reduction as (a ⊕ (x ⊕ y)) *)
let rec chain_leaves op e acc =
  match e with
  | Scop.Expr.Bin (op', l, r) when op' = op ->
    chain_leaves op l (chain_leaves op r acc)
  | leaf -> leaf :: acc

let reads_array arr e =
  List.exists (fun (a : Scop.Access.t) -> a.array = arr) (Scop.Expr.loads e)

(* rejection reason codes — stable, tested by the seeded-bug suite *)
let reason_non_assoc = "non-associative-op"
let reason_subscript = "subscript-mismatch"
let reason_acc_read = "accumulator-read"
let reason_interleaved = "interleaved-writer"

let access_str (prog : Scop.Program.t) (st : Scop.Statement.t) a =
  Format.asprintf "%a"
    (Scop.Access.pp ~iter_names:st.iters ~param_names:prog.params)
    a

(* the original loop depths carrying this statement's true
   self-dependences on [arr] — the accumulation chain *)
let self_dep_info (st : Scop.Statement.t) arr deps =
  let covered = ref [] and levels = ref [] in
  List.iteri
    (fun i (d : Dep.t) ->
      if
        Dep.is_true d && d.src = st.id && d.dst = st.id
        && d.src_access.Scop.Access.array = arr
      then begin
        covered := i :: !covered;
        match d.level with
        | Dep.Carried l -> if not (List.mem l !levels) then levels := l :: !levels
        | Dep.Independent -> ()
      end)
    deps;
  (List.rev !covered, List.sort compare !levels)

(* is there another statement whose write to the accumulator array
   interleaves with the chain? An output dependence between [st] and a
   different statement, carried by one of the chain loops, means the
   foreign write alternates with the accumulation — the chain cannot be
   reassociated across it. *)
let interleaved_writer (st : Scop.Statement.t) arr chain_levels deps =
  List.find_opt
    (fun (d : Dep.t) ->
      d.kind = Dep.Output
      && d.src_access.Scop.Access.array = arr
      && (d.src = st.id) <> (d.dst = st.id)
      && (match d.level with
         | Dep.Carried l -> List.mem l chain_levels
         | Dep.Independent -> false))
    deps

let detect (prog : Scop.Program.t) deps =
  let facts = ref [] and findings = ref [] in
  let reject ?dep (st : Scop.Statement.t) reason msg ctx =
    findings :=
      Finding.make ~stmts:[ st.id ] ?dep
        ~context:(("reason", reason) :: ctx)
        Finding.Reduction_rejected
        (Printf.sprintf "%s is not a provable reduction: %s" st.name msg)
      :: !findings
  in
  Array.iter
    (fun (st : Scop.Statement.t) ->
      match st.rhs with
      | Scop.Expr.Bin (op, l, r) when not (is_assoc op) ->
        (* near-miss only if an immediate operand loads the written
           array: [a - x] shapes; anything else is a plain statement *)
        let direct = function
          | Scop.Expr.Load (a : Scop.Access.t) ->
            a.array = st.write.Scop.Access.array
          | _ -> false
        in
        if direct l || direct r then
          reject st reason_non_assoc
            (Printf.sprintf "operator %s is not associative/commutative"
               (Scop.Expr.op_str op))
            [ ("operator", Scop.Expr.op_str op) ]
      | Scop.Expr.Bin (op, _, _) -> begin
        let arr = st.write.Scop.Access.array in
        let leaves = chain_leaves op st.rhs [] in
        let acc_leaves, rest =
          List.partition
            (function
              | Scop.Expr.Load (a : Scop.Access.t) -> a.array = arr
              | _ -> false)
            leaves
        in
        match acc_leaves with
        | [] ->
          (* the accumulator array may still hide inside a compound
             leaf, e.g. sqrt(A[i]) — a near-miss, not a plain statement *)
          if List.exists (reads_array arr) rest then
            reject st reason_acc_read
              "the accumulator is read inside the combined expression, \
               not as a direct operand"
              []
        | [ Scop.Expr.Load a ] when not (Scop.Access.equal a st.write) ->
          reject st reason_subscript
            (Printf.sprintf "accumulator subscripts differ: writes %s, reads %s"
               (access_str prog st st.write)
               (access_str prog st a))
            [
              ("write", access_str prog st st.write);
              ("read", access_str prog st a);
            ]
        | [ Scop.Expr.Load _ ] when List.exists (reads_array arr) rest ->
          reject st reason_acc_read
            "the combined expression reads the accumulator array" []
        | [ Scop.Expr.Load _ ] -> begin
          let covered, chain_levels = self_dep_info st arr deps in
          match interleaved_writer st arr chain_levels deps with
          | Some d ->
            let other = if d.src = st.id then d.dst else d.src in
            reject st reason_interleaved
              (Printf.sprintf
                 "%s writes the accumulator cell mid-chain (loop %s)"
                 prog.stmts.(other).Scop.Statement.name
                 (match d.level with
                 | Dep.Carried lv -> string_of_int lv
                 | Dep.Independent -> "-"))
              ~dep:d
              [ ("writer", prog.stmts.(other).Scop.Statement.name) ]
          | None ->
            let info =
              {
                Reduction_info.stmt = st.id;
                op;
                acc = st.write;
                covered;
                chain_levels;
              }
            in
            facts := info :: !facts;
            incr Linalg.Counters.reductions_detected;
            findings :=
              Finding.make ~stmts:[ st.id ]
                ~context:
                  [
                    ("operator", Scop.Expr.op_str op);
                    ("accumulator", access_str prog st st.write);
                    ("covered-self-deps", string_of_int (List.length covered));
                    ( "chain-loops",
                      String.concat ","
                        (List.map string_of_int chain_levels) );
                  ]
                Finding.Reduction_detected
                (Printf.sprintf "%s is a %s-reduction into %s" st.name
                   (Scop.Expr.op_str op)
                   (access_str prog st st.write))
              :: !findings
        end
        | _ ->
          (* ≥ 2 accumulator leaves (the partition admits only [Load]s,
             so the non-Load singleton shapes are unreachable) *)
          reject st reason_acc_read
            "the accumulator appears more than once on the right-hand side" []
      end
      | _ -> ())
    prog.stmts;
  (List.rev !facts, List.rev !findings)

let tag_deps facts deps =
  let covered = Hashtbl.create 16 in
  List.iter
    (fun (i : Reduction_info.t) ->
      List.iter (fun idx -> Hashtbl.replace covered idx ()) i.covered)
    facts;
  List.mapi
    (fun i (d : Dep.t) ->
      if Hashtbl.mem covered i then { d with tag = Dep.Reduction } else d)
    deps

(* does [fact] cover dependence [d]? Used by the race checker: a
   carried conflict under a [Parallel_reduction] mark is tolerable only
   if it is a self-dependence of a proven reduction statement on its
   accumulator array. *)
let covers (fact : Reduction_info.t) (d : Dep.t) =
  d.src = fact.stmt && d.dst = fact.stmt
  && d.src_access.Scop.Access.array = fact.acc.Scop.Access.array
