open Deps

(* does [dst] stay reachable from [src] when the direct edge is
   removed? (paths of length >= 2 through the true-dependence DDG) *)
let reachable_without_direct (ddg : Ddg.t) src dst =
  let visited = Array.make ddg.n false in
  let rec go v =
    if v = dst then true
    else if visited.(v) then false
    else begin
      visited.(v) <- true;
      List.exists go ddg.succ.(v)
    end
  in
  List.exists (fun s -> s <> dst && go s) ddg.succ.(src)

(* [domain(src) ⊆ projection of dep.poly onto (src iters, params)]:
   every source instance of [dep] exists. FM projection may
   over-approximate the integer projection, so a [true] answer is
   "covered up to FM" — callers must keep severities soft. *)
let covers ~param_floor (prog : Scop.Program.t) (dep : Dep.t) =
  let np = Scop.Program.nparams prog in
  let st = prog.stmts.(dep.src) in
  let d1 = Scop.Statement.depth st in
  let d2 = Scop.Statement.depth prog.stmts.(dep.dst) in
  let proj =
    Poly.Polyhedron.eliminate dep.poly (List.init d2 (fun i -> d1 + i))
  in
  let dim = d1 + np in
  let floor_cs =
    List.init np (fun p ->
        let c = Array.make (dim + 1) 0 in
        c.(d1 + p) <- 1;
        c.(dim) <- -param_floor;
        Poly.Constr.ge (Array.to_list c))
  in
  let base = Poly.Polyhedron.add_list st.domain floor_cs in
  let escapes c =
    (* a domain point violating constraint [c] of the projection *)
    match Poly.Constr.kind c with
    | Poly.Constr.Ge ->
      Ilp.Bb.feasible (Poly.Polyhedron.add base (Poly.Constr.negate_int c))
    | Poly.Constr.Eq ->
      let v = Poly.Constr.coeffs c in
      let plus = Linalg.Vec.copy v in
      plus.(dim) <- Linalg.Q.sub plus.(dim) Linalg.Q.one;
      let minus = Linalg.Vec.neg v in
      minus.(dim) <- Linalg.Q.sub minus.(dim) Linalg.Q.one;
      Ilp.Bb.feasible
        (Poly.Polyhedron.add base (Poly.Constr.make Poly.Constr.Ge plus))
      || Ilp.Bb.feasible
           (Poly.Polyhedron.add base (Poly.Constr.make Poly.Constr.Ge minus))
  in
  not (List.exists escapes (Poly.Polyhedron.constraints proj))

let check ?(param_floor = 2) ?(facts = []) (prog : Scop.Program.t) deps =
  let ddg = Ddg.build prog deps in
  let true_deps = Ddg.true_deps ddg in
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  (* --- transitively redundant edges ----------------------------------- *)
  let pairs =
    List.sort_uniq compare
      (List.filter_map
         (fun (d : Dep.t) -> if d.src <> d.dst then Some (d.src, d.dst) else None)
         true_deps)
  in
  List.iter
    (fun (src, dst) ->
      if reachable_without_direct ddg src dst then begin
        let kinds =
          List.sort_uniq compare
            (List.filter_map
               (fun (d : Dep.t) ->
                 if d.src = src && d.dst = dst then
                   Some (Dep.kind_to_string d.kind)
                 else None)
               true_deps)
        in
        emit
          (Finding.make ~stmts:[ src; dst ]
             ~context:[ ("kinds", String.concat ", " kinds) ]
             Finding.Redundant_dependence
             (Printf.sprintf
                "dependence %s -> %s is implied by a longer path of true \
                 dependences"
                prog.stmts.(src).Scop.Statement.name
                prog.stmts.(dst).Scop.Statement.name))
      end)
    pairs;
  (* --- dead writes and live-out reachability --------------------------- *)
  let n = Array.length prog.stmts in
  (* covered.(s): some output dependence overwrites every instance of s *)
  let covered = Array.make n false in
  Array.iteri
    (fun s _ ->
      covered.(s) <-
        List.exists
          (fun (d : Dep.t) ->
            d.kind = Dep.Output && d.src = s && d.dst <> s
            && covers ~param_floor prog d)
          true_deps)
    prog.stmts;
  (* only flow into *another* statement counts as consumption: the
     self-flow of an accumulation chain feeds nothing outside itself *)
  let has_out_flow = Array.make n false in
  List.iter
    (fun (d : Dep.t) ->
      if d.kind = Dep.Flow && d.src <> d.dst then has_out_flow.(d.src) <- true)
    true_deps;
  (* a proven reduction accumulator is written every iteration by
     design; its value is the whole chain, not the per-instance write —
     never a dead write *)
  let is_reduction s = Reduction_info.for_stmt facts s <> None in
  let dead = Array.make n false in
  for s = 0 to n - 1 do
    if (not has_out_flow.(s)) && covered.(s) && not (is_reduction s) then begin
      dead.(s) <- true;
      emit
        (Finding.make ~stmts:[ s ] Finding.Dead_write
           (Printf.sprintf
              "statement %s: no read sees its value and a later write \
               overwrites every instance"
              prog.stmts.(s).Scop.Statement.name))
    end
  done;
  (* flow-edge adjacency for reachability to live-out writes *)
  let flow_succ = Array.make n [] in
  List.iter
    (fun (d : Dep.t) ->
      if d.kind = Dep.Flow && not (List.mem d.dst flow_succ.(d.src)) then
        flow_succ.(d.src) <- d.dst :: flow_succ.(d.src))
    true_deps;
  let reaches_live_out = Array.make n false in
  (* n is small: forward DFS per vertex *)
  let mark v =
    let visited = Array.make n false in
    let rec go u =
      if visited.(u) then false
      else begin
        visited.(u) <- true;
        (not covered.(u)) || List.exists go flow_succ.(u)
      end
    in
    reaches_live_out.(v) <- go v
  in
  for v = 0 to n - 1 do
    mark v
  done;
  for v = 0 to n - 1 do
    if (not reaches_live_out.(v)) && not dead.(v) then
      emit
        (Finding.make ~stmts:[ v ] Finding.Unreachable_statement
           (Printf.sprintf
              "statement %s: no chain of flow dependences reaches a live-out \
               write"
              prog.stmts.(v).Scop.Statement.name))
  done;
  List.rev !findings
