(** Dependence-graph lints: facts about the program's DDG that do not
    make generated code wrong but point at wasted work or slack in the
    dependence structure.

    - {b redundant dependence} (info): a true-dependence edge whose
      endpoints are also connected by a longer path of true edges — the
      direct edge adds no scheduling constraint beyond transitivity.
    - {b dead write} (warning): a statement whose value no read ever
      sees (no flow dependence into {e another} statement — self-flow
      of an accumulation chain does not count as consumption) and whose
      every instance is later overwritten (an output dependence whose
      source projection covers the whole domain). Statements covered by
      a reduction proof in [facts] are exempt: a proven accumulator is
      written every iteration by design. The coverage test uses
      Fourier–Motzkin projection, which over-approximates — hence
      warning, not error.
    - {b unreachable statement} (info): a statement from which no chain
      of flow dependences reaches any live-out write (a write not fully
      overwritten). Its results cannot influence the program's
      observable output. *)

val check :
  ?param_floor:int -> ?facts:Reduction_info.t list -> Scop.Program.t ->
  Deps.Dep.t list -> Finding.t list
