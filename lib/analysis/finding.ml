type severity = Error | Warning | Info

type kind =
  | Racy_parallel
  | Lost_parallelism
  | Dropped_point
  | Loose_bounds
  | Guard_mismatch
  | Dead_scan
  | Redundant_dependence
  | Dead_write
  | Unreachable_statement

type t = {
  kind : kind;
  severity : severity;
  stmts : int list;
  level : int option;
  dep : Deps.Dep.t option;
  message : string;
  context : (string * string) list;
}

let code = function
  | Racy_parallel -> "race.parallel"
  | Lost_parallelism -> "race.lost-parallelism"
  | Dropped_point -> "scan.dropped-point"
  | Loose_bounds -> "scan.loose-bounds"
  | Guard_mismatch -> "scan.guard-mismatch"
  | Dead_scan -> "scan.dead"
  | Redundant_dependence -> "ddg.redundant-dependence"
  | Dead_write -> "ddg.dead-write"
  | Unreachable_statement -> "ddg.unreachable"

let severity_of_kind = function
  | Racy_parallel | Dropped_point | Guard_mismatch -> Error
  | Lost_parallelism | Loose_bounds | Dead_scan | Dead_write -> Warning
  | Redundant_dependence | Unreachable_statement -> Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let make ?(stmts = []) ?level ?dep ?(context = []) kind message =
  { kind; severity = severity_of_kind kind; stmts; level; dep; message; context }

let count fs =
  List.fold_left
    (fun (e, w, i) f ->
      match f.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) fs

let has_errors fs = List.exists (fun f -> f.severity = Error) fs

let rank = function Error -> 0 | Warning -> 1 | Info -> 2

let by_severity fs =
  List.stable_sort
    (fun a b ->
      match compare (rank a.severity) (rank b.severity) with
      | 0 -> compare a.stmts b.stmts
      | c -> c)
    fs

let stmt_names (prog : Scop.Program.t) ids =
  String.concat ", "
    (List.map (fun id -> prog.stmts.(id).Scop.Statement.name) ids)

let shared_context prog f =
  (("severity", severity_name f.severity)
  ::
  (match f.stmts with
  | [] -> []
  | ids -> [ ("statements", stmt_names prog ids) ]))
  @ (match f.level with
    | Some l -> [ ("loop", Printf.sprintf "t%d" l) ]
    | None -> [])
  @ (match f.dep with
    | Some d -> [ ("dependence", Format.asprintf "%a" Deps.Dep.pp d) ]
    | None -> [])
  @ f.context

let to_diagnostic prog f =
  Pluto.Diagnostics.make
    ~context:(shared_context prog f)
    ~phase:Pluto.Diagnostics.Verification ~code:(code f.kind) f.message

let pp prog fmt f =
  Format.fprintf fmt "%-7s [%s] %s" (severity_name f.severity) (code f.kind)
    f.message;
  let extras =
    (match f.stmts with [] -> [] | ids -> [ stmt_names prog ids ])
    @ match f.level with Some l -> [ Printf.sprintf "t%d" l ] | None -> []
  in
  if extras <> [] then
    Format.fprintf fmt "  (%s)" (String.concat "; " extras)

(* --- JSON ----------------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json prog f =
  let fields =
    [
      Printf.sprintf "\"code\": \"%s\"" (code f.kind);
      Printf.sprintf "\"severity\": \"%s\"" (severity_name f.severity);
      Printf.sprintf "\"stmts\": [%s]"
        (String.concat ", " (List.map string_of_int f.stmts));
      Printf.sprintf "\"stmt_names\": [%s]"
        (String.concat ", "
           (List.map
              (fun id ->
                Printf.sprintf "\"%s\""
                  (escape prog.Scop.Program.stmts.(id).Scop.Statement.name))
              f.stmts));
    ]
    @ (match f.level with
      | Some l -> [ Printf.sprintf "\"level\": %d" l ]
      | None -> [])
    @ (match f.dep with
      | Some d ->
        [
          Printf.sprintf "\"dep\": \"%s\""
            (escape (Format.asprintf "%a" Deps.Dep.pp d));
        ]
      | None -> [])
    @ [ Printf.sprintf "\"message\": \"%s\"" (escape f.message) ]
    @ List.map
        (fun (k, v) ->
          Printf.sprintf "\"%s\": \"%s\"" (escape ("ctx_" ^ k)) (escape v))
        f.context
  in
  "{" ^ String.concat ", " fields ^ "}"
