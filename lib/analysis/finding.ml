type severity = Error | Warning | Info

type kind =
  | Racy_parallel
  | Lost_parallelism
  | Dropped_point
  | Loose_bounds
  | Guard_mismatch
  | Dead_scan
  | Redundant_dependence
  | Dead_write
  | Unreachable_statement
  | Reduction_detected
  | Reduction_rejected
  | Reduction_certified

type t = {
  kind : kind;
  severity : severity;
  stmts : int list;
  level : int option;
  dep : Deps.Dep.t option;
  message : string;
  context : (string * string) list;
}

let code = function
  | Racy_parallel -> "race.parallel"
  | Lost_parallelism -> "race.lost-parallelism"
  | Dropped_point -> "scan.dropped-point"
  | Loose_bounds -> "scan.loose-bounds"
  | Guard_mismatch -> "scan.guard-mismatch"
  | Dead_scan -> "scan.dead"
  | Redundant_dependence -> "ddg.redundant-dependence"
  | Dead_write -> "ddg.dead-write"
  | Unreachable_statement -> "ddg.unreachable"
  | Reduction_detected -> "reduction.detected"
  | Reduction_rejected -> "reduction.rejected"
  | Reduction_certified -> "race.up-to-reduction"

let severity_of_kind = function
  | Racy_parallel | Dropped_point | Guard_mismatch -> Error
  | Lost_parallelism | Loose_bounds | Dead_scan | Dead_write -> Warning
  | Redundant_dependence | Unreachable_statement | Reduction_detected
  | Reduction_rejected | Reduction_certified ->
    Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let make ?(stmts = []) ?level ?dep ?(context = []) kind message =
  { kind; severity = severity_of_kind kind; stmts; level; dep; message; context }

let count fs =
  List.fold_left
    (fun (e, w, i) f ->
      match f.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) fs

let has_errors fs = List.exists (fun f -> f.severity = Error) fs

let rank = function Error -> 0 | Warning -> 1 | Info -> 2

let by_severity fs =
  List.stable_sort
    (fun a b ->
      match compare (rank a.severity) (rank b.severity) with
      | 0 -> compare a.stmts b.stmts
      | c -> c)
    fs

let stmt_names (prog : Scop.Program.t) ids =
  String.concat ", "
    (List.map (fun id -> prog.stmts.(id).Scop.Statement.name) ids)

let shared_context prog f =
  (("severity", severity_name f.severity)
  ::
  (match f.stmts with
  | [] -> []
  | ids -> [ ("statements", stmt_names prog ids) ]))
  @ (match f.level with
    | Some l -> [ ("loop", Printf.sprintf "t%d" l) ]
    | None -> [])
  @ (match f.dep with
    | Some d -> [ ("dependence", Format.asprintf "%a" Deps.Dep.pp d) ]
    | None -> [])
  @ f.context

let to_diagnostic prog f =
  Pluto.Diagnostics.make
    ~context:(shared_context prog f)
    ~phase:Pluto.Diagnostics.Verification ~code:(code f.kind) f.message

let pp prog fmt f =
  Format.fprintf fmt "%-7s [%s] %s" (severity_name f.severity) (code f.kind)
    f.message;
  let extras =
    (match f.stmts with [] -> [] | ids -> [ stmt_names prog ids ])
    @ match f.level with Some l -> [ Printf.sprintf "t%d" l ] | None -> []
  in
  if extras <> [] then
    Format.fprintf fmt "  (%s)" (String.concat "; " extras)

(* --- JSON ----------------------------------------------------------------- *)

let json prog f =
  Obs.Json.Obj
    ([
       ("code", Obs.Json.Str (code f.kind));
       ("severity", Obs.Json.Str (severity_name f.severity));
       ("stmts", Obs.Json.List (List.map (fun id -> Obs.Json.Int id) f.stmts));
       ( "stmt_names",
         Obs.Json.List
           (List.map
              (fun id ->
                Obs.Json.Str prog.Scop.Program.stmts.(id).Scop.Statement.name)
              f.stmts) );
     ]
    @ (match f.level with
      | Some l -> [ ("level", Obs.Json.Int l) ]
      | None -> [])
    @ (match f.dep with
      | Some d ->
        [ ("dep", Obs.Json.Str (Format.asprintf "%a" Deps.Dep.pp d)) ]
      | None -> [])
    @ [ ("message", Obs.Json.Str f.message) ]
    @ List.map (fun (k, v) -> ("ctx_" ^ k, Obs.Json.Str v)) f.context)

let to_json prog f = Obs.Json.to_string (json prog f)
