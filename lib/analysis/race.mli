(** Independent race certification of generated loop ASTs.

    For every [Loop] node, the checker rebuilds — from the dependence
    polyhedra and the schedule rows alone, without consulting
    [Pluto.Satisfy.row_class] — the cross-iteration conflict system of
    each true dependence between the loop's statements: the dependence
    polyhedron intersected with [δ_k = 0] for every schedule row [k]
    outside (above) the loop's row, then asked whether two {e distinct}
    iterations of the loop can be dependent ([δ_r ≥ 1] or [δ_r ≤ −1],
    exact integer emptiness via branch-and-bound).

    A loop marked [Parallel] with a feasible conflict system is racy
    generated code (error). A loop marked [Parallel_reduction] is held
    to the same standard {e unless} every feasible conflict is a
    self-dependence covered by one of the caller's independently
    derived reduction proofs ([facts]) — then the loop is certified
    "race-free up to reduction reassociation" (info); any uncovered
    conflict behind the mark is still a [race.parallel] error. A loop
    marked [Forward] or [Sequential] whose every live dependence has an
    {e infeasible} conflict system is provably race-free — parallelism
    the pipeline left on the table (warning). *)

(** [carried_witness ?param_floor prog sched dep ~row_idx] decides
    whether the dependence can connect two distinct iterations of the
    loop at schedule row [row_idx], with all outer schedule rows (Hyp
    and Beta alike) forced equal. Returns a witness point of the
    dependence polyhedron ([src iters; dst iters; params]) when one was
    recovered, [Some [||]] when the system is feasible but no witness
    was extracted within budget, [None] when provably conflict-free. *)
val carried_witness :
  ?param_floor:int ->
  Scop.Program.t ->
  Pluto.Sched.t ->
  Deps.Dep.t ->
  row_idx:int ->
  int array option

(** Check every loop of the AST; findings in AST pre-order. [facts]
    (default none) are the reduction proofs used to judge
    [Parallel_reduction] marks — pass proofs re-derived via
    {!Reduction.detect}, never the scheduler's own tags. *)
val check :
  ?param_floor:int ->
  ?facts:Reduction_info.t list ->
  Scop.Program.t ->
  Deps.Dep.t list ->
  Pluto.Sched.t ->
  Codegen.Ast.node ->
  Finding.t list
