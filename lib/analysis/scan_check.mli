(** Scan soundness: does the generated AST execute exactly the integer
    points of every statement's iteration domain?

    Three certified checks per statement instance:

    - {b guard consistency} (error): the instance's inversion data —
      selected levels, integer inverse, parametric shifts,
      constant-row guards — is re-derived from the schedule and
      compared field by field, and the inverse is verified by the
      matrix identity [hinv · H_sel = det · I]. A dropped or altered
      guard row makes the runtime guard accept wrong time points.
    - {b coverage} (error): no domain point falls outside the emitted
      loop bounds. For each enclosing loop the emitted range is the
      min/max over per-statement bound groups, so a point is dropped
      only when it violates {e some} bound of {e every} group — the
      checker enumerates one violated bound per group (pruned DFS,
      exact integer emptiness at the leaves).
    - {b loose bounds} (warning): the statement's own bound slice
      admits time points that invert to integer iterators {e outside}
      the domain — wasted guard evaluations. Legitimate under partial
      fusion and Fourier–Motzkin integer over-approximation, hence a
      warning.

    Plus a per-statement {b dead scan} check (warning): a domain that
    is integer-empty for all parameter values above the floor. *)

val check :
  ?param_floor:int ->
  Scop.Program.t ->
  Pluto.Sched.t ->
  Codegen.Ast.node ->
  Finding.t list
