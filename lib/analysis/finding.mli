(** Typed findings of the wisecheck static-analysis pass.

    A finding is a certified fact about a generated loop AST (or the
    dependence graph behind it): a race behind a [Parallel] mark, a
    dropped iteration-domain point, an inconsistent instance guard,
    provably lost parallelism, dead scanning, or a DDG lint. Findings
    carry the statements, loop level and dependence they are about, and
    render through [Pluto.Diagnostics]-style context so the CLI shows
    them uniformly with pipeline errors. *)

type severity = Error | Warning | Info

type kind =
  | Racy_parallel
      (** a loop marked [Parallel] carries a cross-iteration dependence
          — racy generated code (error) *)
  | Lost_parallelism
      (** a loop marked [Forward]/[Sequential] is provably race-free:
          parallelism the pipeline left on the table (warning) *)
  | Dropped_point
      (** a statement's iteration-domain point falls outside the
          emitted loop bounds: the generated code skips work (error) *)
  | Loose_bounds
      (** the emitted bounds scan guard-passing points that invert
          outside the statement's domain: wasted iterations (warning) *)
  | Guard_mismatch
      (** a statement instance's inversion/guard data (selected levels,
          inverse matrix, constant-row guards) is inconsistent with the
          schedule (error) *)
  | Dead_scan
      (** a statement's guarded body is provably empty for all
          parameter values above the floor (warning) *)
  | Redundant_dependence
      (** a DDG edge implied by transitive composition of other edges
          (info) *)
  | Dead_write
      (** a statement's written values are never read and are
          overwritten by a later statement (warning) *)
  | Unreachable_statement
      (** a statement that no surviving (live-out) value depends on
          (info) *)
  | Reduction_detected
      (** a statement is a proven reduction: associative-commutative
          read-modify-write of one accumulator cell, combined expression
          accumulator-free, no interleaved writer (info) *)
  | Reduction_rejected
      (** a near-miss reduction shape with the exact reason it failed
          the proof — context key ["reason"] (info) *)
  | Reduction_certified
      (** a [Parallel_reduction] loop whose every carried conflict is
          covered by an independently re-derived reduction proof:
          race-free up to reduction reassociation (info) *)

type t = {
  kind : kind;
  severity : severity;
  stmts : int list;  (** statement ids involved, ascending *)
  level : int option;  (** loop level (loop-variable index), if any *)
  dep : Deps.Dep.t option;  (** offending dependence, if any *)
  message : string;
  context : (string * string) list;
}

(** Stable machine-readable code, e.g. ["race.parallel"]. *)
val code : kind -> string

(** The severity a kind certifies at (fixed, not configurable). *)
val severity_of_kind : kind -> severity

val severity_name : severity -> string

(** [make kind ...] with the kind's canonical severity. *)
val make :
  ?stmts:int list ->
  ?level:int ->
  ?dep:Deps.Dep.t ->
  ?context:(string * string) list ->
  kind ->
  string ->
  t

(** [(errors, warnings, infos)]. *)
val count : t list -> int * int * int

val has_errors : t list -> bool

(** Sort by severity (errors first), then by statement ids. *)
val by_severity : t list -> t list

(** Render as a [Pluto.Diagnostics.t] (phase [Verification]) so the
    CLI's verbose renderer applies; statements, level and dependence
    join the context pairs. *)
val to_diagnostic : Scop.Program.t -> t -> Pluto.Diagnostics.t

(** One-line rendering: [severity [code] message (S0, S1; level 2)]. *)
val pp : Scop.Program.t -> Format.formatter -> t -> unit

(** Structured JSON object for a finding (shared {!Obs.Json} writer). *)
val json : Scop.Program.t -> t -> Obs.Json.t

(** JSON object (one line, no trailing newline): [to_string] of {!json}. *)
val to_json : Scop.Program.t -> t -> string
