open Codegen

let hyp_rows (sched : Pluto.Sched.t) id =
  List.filter_map
    (function Pluto.Sched.Hyp h -> Some h | Pluto.Sched.Beta _ -> None)
    sched.(id)

let param_floor_constrs ~dim ~first_param ~np floor =
  List.init np (fun p ->
      let c = Array.make (dim + 1) 0 in
      c.(first_param + p) <- 1;
      c.(dim) <- -floor;
      Poly.Constr.ge (Array.to_list c))

(* --- guard consistency ----------------------------------------------------- *)

(* Re-derive the inversion data of one instance from the schedule and
   diff it against what the AST carries. The inverse itself is checked
   by the identity hinv · H_sel = det · I rather than re-inverted, so a
   mutated hinv, det, or guard row is caught even when the re-derivation
   would make the same mistake. *)
let instance_problems (prog : Scop.Program.t) sched (inst : Ast.instance) =
  let np = Scop.Program.nparams prog in
  let st = prog.stmts.(inst.stmt_id) in
  let d = Scop.Statement.depth st in
  let rows = hyp_rows sched inst.stmt_id in
  let iter_part (h : int array) = Array.sub h 0 d in
  let param_part (h : int array) = Array.sub h d (np + 1) in
  let indexed = List.mapi (fun k h -> (k, h)) rows in
  let nonzero, zero =
    List.partition
      (fun (_, h) -> Array.exists (fun c -> c <> 0) (iter_part h))
      indexed
  in
  let problems = ref [] in
  let bad what = problems := what :: !problems in
  let expect_sel = Array.of_list (List.map fst nonzero) in
  if inst.sel_levels <> expect_sel then bad "selected loop levels";
  let expect_const =
    Array.of_list (List.map (fun (k, h) -> (k, param_part h)) zero)
  in
  if inst.const_rows <> expect_const then bad "constant-row guards";
  let expect_g = Array.of_list (List.map (fun (_, h) -> param_part h) nonzero) in
  if inst.g <> expect_g then bad "parametric shifts";
  if inst.det = 0 then bad "zero determinant"
  else if
    Array.length inst.hinv_num <> d
    || Array.exists (fun r -> Array.length r <> d) inst.hinv_num
    || List.length nonzero <> d
  then bad "inversion shape"
  else begin
    (* hinv · H_sel = det · I over the schedule's iterator parts *)
    let hs = Array.of_list (List.map (fun (_, h) -> iter_part h) nonzero) in
    let ok = ref true in
    for i = 0 to d - 1 do
      for j = 0 to d - 1 do
        let acc = ref 0 in
        for k = 0 to d - 1 do
          acc := !acc + (inst.hinv_num.(i).(k) * hs.(k).(j))
        done;
        if !acc <> if i = j then inst.det else 0 then ok := false
      done
    done;
    if not !ok then bad "integer inverse (hinv . H != det . I)"
  end;
  List.rev !problems

(* --- coverage -------------------------------------------------------------- *)

(* den·y_level − num(y_<level, p, 1) composed through statement [rows]
   into an affine form over [x (d); p (np); 1] *)
let compose_bound rows ~d ~np ~level ~den (num : int array) =
  let acc = Array.make (d + np + 1) 0 in
  let add scale (h : int array) =
    Array.iteri (fun i c -> acc.(i) <- acc.(i) + (scale * c)) h
  in
  add den (List.nth rows level);
  List.iteri (fun k h -> if k < level then add (-num.(k)) h) rows;
  for p = 0 to np - 1 do
    acc.(d + p) <- acc.(d + p) - num.(level + p)
  done;
  acc.(d + np) <- acc.(d + np) - num.(level + np);
  acc

(* one violated bound per group suffices to push y_level outside the
   loop's effective range on that side; DFS over the choices with
   rational pruning, exact emptiness at the leaves *)
let dropped_witness ~budget base violations_per_group =
  let rec dfs poly = function
    | [] ->
      if !budget <= 0 then None
      else begin
        decr budget;
        if Ilp.Bb.feasible poly then
          Some (Option.value (Ilp.Bb.integer_point poly) ~default:[||])
        else None
      end
    | g :: rest ->
      if Poly.Polyhedron.is_empty poly then None
      else
        List.fold_left
          (fun found c ->
            match found with
            | Some _ -> found
            | None -> dfs (Poly.Polyhedron.add poly c) rest)
          None g
  in
  dfs base violations_per_group

let pp_point (prog : Scop.Program.t) st (w : int array) =
  if Array.length w = 0 then "(within budget, no witness extracted)"
  else begin
    let d = Scop.Statement.depth st in
    let iters =
      String.concat ", "
        (List.init d (fun i ->
             Printf.sprintf "%s=%d" st.Scop.Statement.iters.(i) w.(i)))
    in
    let params =
      String.concat ", "
        (List.init (Scop.Program.nparams prog) (fun p ->
             Printf.sprintf "%s=%d" prog.params.(p) w.(d + p)))
    in
    iters ^ " | " ^ params
  end

(* --- the walk -------------------------------------------------------------- *)

let check ?(param_floor = 2) (prog : Scop.Program.t) sched ast =
  let np = Scop.Program.nparams prog in
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  (* structural checks: every loop's bound groups line up with its
     statements, every instance's guard data matches the schedule *)
  Ast.iter_loops
    (fun (l : Ast.loop) ->
      let mem = List.sort_uniq compare (Ast.members l.body) in
      let owners = List.sort_uniq compare l.group_stmts in
      if
        owners <> mem
        || List.length l.lb_groups <> List.length l.group_stmts
        || List.length l.ub_groups <> List.length l.group_stmts
      then
        emit
          (Finding.make ~stmts:mem ~level:l.level
             ~context:
               [
                 ( "groups",
                   Printf.sprintf "%d lb / %d ub for %d statements"
                     (List.length l.lb_groups) (List.length l.ub_groups)
                     (List.length l.group_stmts) );
               ]
             Finding.Guard_mismatch
             (Printf.sprintf
                "loop t%d: bound groups do not line up with its statements"
                l.level)))
    ast;
  if Array.length sched > 0 then begin
    List.iter
      (fun (inst : Ast.instance) ->
        match instance_problems prog sched inst with
        | [] -> ()
        | ps ->
          emit
            (Finding.make ~stmts:[ inst.stmt_id ]
               ~context:[ ("fields", String.concat "; " ps) ]
               Finding.Guard_mismatch
               (Printf.sprintf
                  "statement %s: instance guard data inconsistent with the \
                   schedule (%s)"
                  prog.stmts.(inst.stmt_id).Scop.Statement.name
                  (String.concat "; " ps))))
      (Ast.instances ast)
  end;
  (* dead scanning: a statement whose domain is integer-empty under the
     parameter floor never executes *)
  Array.iter
    (fun (st : Scop.Statement.t) ->
      let d = Scop.Statement.depth st in
      let dim = d + np in
      let sys =
        Poly.Polyhedron.add_list st.domain
          (param_floor_constrs ~dim ~first_param:d ~np param_floor)
      in
      if not (Ilp.Bb.feasible sys) then
        emit
          (Finding.make ~stmts:[ st.id ] Finding.Dead_scan
             (Printf.sprintf
                "statement %s has an empty iteration domain (params >= %d): \
                 its guard never passes"
                st.Scop.Statement.name param_floor)))
    prog.stmts;
  (* semantic per-instance checks along the loop nest *)
  let coverage_budget = ref 256 in
  let rec walk enclosing node =
    match node with
    | Ast.Seq nodes -> List.iter (walk enclosing) nodes
    | Ast.Loop l -> walk (l :: enclosing) l.body
    | Ast.Exec inst ->
      let st = prog.stmts.(inst.stmt_id) in
      let d = Scop.Statement.depth st in
      let rows = hyp_rows sched inst.stmt_id in
      let loops = List.rev enclosing in
      (* coverage: for each enclosing loop and side, is some domain
         point outside the loop's scanned range? *)
      let base =
        Poly.Polyhedron.add_list st.domain
          (param_floor_constrs ~dim:(d + np) ~first_param:d ~np param_floor)
      in
      List.iter
        (fun (l : Ast.loop) ->
          let own_idx =
            let rec idx i = function
              | [] -> None
              | s :: _ when s = inst.stmt_id -> Some i
              | _ :: rest -> idx (i + 1) rest
            in
            idx 0 l.group_stmts
          in
          match own_idx with
          | None -> () (* flagged as Guard_mismatch above *)
          | Some own when List.nth_opt rows l.level <> None ->
            let own_first groups =
              let own_g = List.nth groups own in
              own_g :: List.filteri (fun i _ -> i <> own) groups
            in
            let side ~lower groups kindname =
              (* every group needs at least one bound on this side,
                 otherwise the scanned range is unbounded there and
                 nothing can be dropped *)
              if List.for_all (fun g -> g <> []) groups then begin
                let violations =
                  List.map
                    (List.map (fun (b : Ast.bound) ->
                         let acc =
                           compose_bound rows ~d ~np ~level:l.level ~den:b.den
                             b.num
                         in
                         (* lower violated: num − den·y − 1 >= 0;
                            upper violated: den·y − num − 1 >= 0 *)
                         let a = if lower then Array.map (fun c -> -c) acc else Array.copy acc in
                         a.(d + np) <- a.(d + np) - 1;
                         Poly.Constr.ge (Array.to_list a)))
                    groups
                in
                match
                  dropped_witness ~budget:coverage_budget base violations
                with
                | Some w ->
                  emit
                    (Finding.make ~stmts:[ inst.stmt_id ] ~level:l.level
                       ~context:
                         [
                           ("side", kindname);
                           ("point", pp_point prog st w);
                         ]
                       Finding.Dropped_point
                       (Printf.sprintf
                          "statement %s: domain point falls %s the emitted \
                           bounds of loop t%d"
                          st.Scop.Statement.name
                          (if lower then "below" else "above")
                          l.level))
                | None -> ()
              end
            in
            side ~lower:true (own_first l.lb_groups) "lower";
            side ~lower:false (own_first l.ub_groups) "upper"
          | Some _ -> ())
        loops;
      (* loose bounds: scanned, integrally inverting, constant rows
         satisfied — yet outside the domain *)
      loose_check prog ~param_floor inst st loops emit
  and loose_check prog ~param_floor (inst : Ast.instance)
      (st : Scop.Statement.t) loops emit =
    let np = Scop.Program.nparams prog in
    let d = Scop.Statement.depth st in
    let ylen =
      List.fold_left
        (fun m (l : Ast.loop) -> max m (l.level + 1))
        (Array.fold_left
           (fun m (lvl, _) -> max m (lvl + 1))
           (Array.fold_left (fun m lvl -> max m (lvl + 1)) 0 inst.sel_levels)
           inst.const_rows)
        loops
    in
    let dim = ylen + np + d in
    let cs = ref [] in
    let addc c = cs := c :: !cs in
    (* own bound groups of every enclosing loop *)
    List.iter
      (fun (l : Ast.loop) ->
        let rec idx i = function
          | [] -> None
          | s :: _ when s = inst.stmt_id -> Some i
          | _ :: rest -> idx (i + 1) rest
        in
        match idx 0 l.group_stmts with
        | None -> ()
        | Some own ->
          let bound_constr ~lower (b : Ast.bound) =
            (* num over [y_0..y_(level-1); p; 1] *)
            let a = Array.make (dim + 1) 0 in
            let s = if lower then -1 else 1 in
            for k = 0 to l.level - 1 do
              a.(k) <- s * b.num.(k)
            done;
            for p = 0 to np - 1 do
              a.(ylen + p) <- s * b.num.(l.level + p)
            done;
            a.(dim) <- s * b.num.(l.level + np);
            a.(l.level) <- -s * b.den;
            Poly.Constr.ge (Array.to_list a)
          in
          List.iter (fun b -> addc (bound_constr ~lower:true b))
            (List.nth l.lb_groups own);
          List.iter (fun b -> addc (bound_constr ~lower:false b))
            (List.nth l.ub_groups own))
      loops;
    (* constant-row guards: y_level = row · (p, 1) *)
    Array.iter
      (fun (level, (row : int array)) ->
        let a = Array.make (dim + 1) 0 in
        a.(level) <- 1;
        for p = 0 to np - 1 do
          a.(ylen + p) <- -row.(p)
        done;
        a.(dim) <- -row.(np);
        addc (Poly.Constr.eq (Array.to_list a)))
      inst.const_rows;
    (* inversion: det·x_i = Σ_k hinv[i][k]·(y_sel_k − g_k·(p,1)) *)
    if inst.det <> 0 && Array.length inst.hinv_num = d then
      for i = 0 to d - 1 do
        if Array.length inst.hinv_num.(i) = d && Array.length inst.sel_levels = d
        then begin
          let a = Array.make (dim + 1) 0 in
          a.(ylen + np + i) <- inst.det;
          Array.iteri
            (fun k level ->
              let c = inst.hinv_num.(i).(k) in
              a.(level) <- a.(level) - c;
              for p = 0 to np - 1 do
                a.(ylen + p) <- a.(ylen + p) + (c * inst.g.(k).(p))
              done;
              a.(dim) <- a.(dim) + (c * inst.g.(k).(np)))
            inst.sel_levels;
          addc (Poly.Constr.eq (Array.to_list a))
        end
      done;
    let base =
      Poly.Polyhedron.add_list
        (Poly.Polyhedron.make dim (List.rev !cs))
        (param_floor_constrs ~dim ~first_param:ylen ~np param_floor)
    in
    (* negate the domain one constraint at a time *)
    let renamed =
      Poly.Polyhedron.rename st.domain ~dim_to:dim (fun i ->
          if i < d then ylen + np + i else ylen + (i - d))
    in
    let branches =
      List.concat_map
        (fun c ->
          match Poly.Constr.kind c with
          | Poly.Constr.Ge -> [ Poly.Constr.negate_int c ]
          | Poly.Constr.Eq ->
            let v = Poly.Constr.coeffs c in
            let plus = Linalg.Vec.copy v in
            plus.(dim) <- Linalg.Q.sub plus.(dim) Linalg.Q.one;
            let minus = Linalg.Vec.neg v in
            minus.(dim) <- Linalg.Q.sub minus.(dim) Linalg.Q.one;
            [ Poly.Constr.make Poly.Constr.Ge plus;
              Poly.Constr.make Poly.Constr.Ge minus ])
        (Poly.Polyhedron.constraints renamed)
    in
    let rec first = function
      | [] -> ()
      | b :: rest ->
        let sys = Poly.Polyhedron.add base b in
        if Ilp.Bb.feasible sys then begin
          (* witness: an integer point of the feasible system, rendered
             in original-iterator space ([y(ylen); p(np); x(d)] layout)
             — warnings carry their witness just like errors do *)
          let witness =
            match Ilp.Bb.integer_point sys with
            | None -> pp_point prog st [||]
            | Some w when Array.length w < dim -> pp_point prog st [||]
            | Some w ->
              pp_point prog st
                (Array.init (d + np) (fun i ->
                     if i < d then w.(ylen + np + i) else w.(ylen + i - d)))
          in
          emit
            (Finding.make ~stmts:[ inst.stmt_id ]
               ~context:
                 [
                   ( "violated",
                     Format.asprintf "%a" (Poly.Constr.pp ?names:None) b );
                   ("witness", witness);
                 ]
               Finding.Loose_bounds
               (Printf.sprintf
                  "statement %s: emitted bounds scan time points that invert \
                   outside its domain"
                  st.Scop.Statement.name))
        end
        else first rest
    in
    first branches
  in
  if Array.length sched > 0 then walk [] ast;
  List.rev !findings
