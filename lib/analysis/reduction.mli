(** Reduction-detection static analysis (the wisereduce pass).

    Proves statements have the reduction shape
    [A[f(i)] = A[f(i)] ⊕ e] where:
    - [⊕] is associative and commutative ([+], [*], [min], [max]);
    - the accumulator is read-modify-write with {e identical}
      subscripts (one direct operand of the maximal [⊕]-chain);
    - the combined expression [e] never reads the accumulator array;
    - no other statement writes the accumulator cell mid-chain
      (no foreign output dependence carried by a chain loop).

    The proof is purely structural over the expression AST and the
    dependence set — no LP solves — so wisecheck re-derives it
    independently of the scheduler when certifying
    [Parallel_reduction] marks. *)

(** [detect prog deps] returns the proven facts plus one
    [reduction.detected] finding per fact and one [reduction.rejected]
    finding per near-miss (a statement that combines its own written
    array but fails the proof), with the exact reason under context key
    ["reason"]: {!reason_non_assoc}, {!reason_subscript},
    {!reason_acc_read} or {!reason_interleaved}. Statements that never
    touch their written array on the right-hand side produce no
    finding. *)
val detect :
  Scop.Program.t -> Deps.Dep.t list -> Reduction_info.t list * Finding.t list

(** Retag the dependences covered by the facts as
    {!Deps.Dep.Reduction} (list order preserved — indices in
    [Reduction_info.covered] refer to positions in this list). *)
val tag_deps : Reduction_info.t list -> Deps.Dep.t list -> Deps.Dep.t list

(** [covers fact d]: is [d] a self-dependence of the proven statement
    on its accumulator array — i.e. an edge the proof licenses
    relaxing? *)
val covers : Reduction_info.t -> Deps.Dep.t -> bool

(** Stable rejection reason codes (context key ["reason"]). *)

val reason_non_assoc : string
val reason_subscript : string
val reason_acc_read : string
val reason_interleaved : string
