(** Typed evidence that a statement is a reduction.

    Produced by {!Reduction.detect}; consumed by the scheduling
    pipeline (to tag the covered self-dependences
    {!Deps.Dep.Reduction}) and independently re-derived by wisecheck
    when certifying [Parallel_reduction] marks. *)

type t = {
  stmt : int;  (** statement id *)
  op : Scop.Expr.binop;  (** the combining operator: Add, Mul, Min or Max *)
  acc : Scop.Access.t;  (** the accumulator access (write = read) *)
  covered : int list;
      (** indices (into the dependence list handed to the detector) of
          the true self-dependences the proof covers — exactly the
          edges legality may relax *)
  chain_levels : int list;
      (** original loop depths (0-based) carrying the accumulation
          chain — the loops that become [Parallel_reduction] *)
}

(** Spelling of the combining operator (["+"], ["*"], ["min"], ["max"]). *)
val op_name : t -> string

(** The fact about statement [id], if the detector proved one. *)
val for_stmt : t list -> int -> t option

val pp : Format.formatter -> t -> unit
