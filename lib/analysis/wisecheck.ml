type report = {
  findings : Finding.t list;
  errors : int;
  warnings : int;
  infos : int;
}

let certify ?param_floor (prog : Scop.Program.t) deps sched ast =
  Linalg.Counters.time "analysis" (fun () ->
      (* re-derive reduction proofs from the program text and raw
         dependences — never trust the scheduler's own tags. A
         [Parallel_reduction] mark is only honoured when the proof
         reconstructs here. *)
      let facts, reduction_findings = Reduction.detect prog deps in
      let findings =
        Race.check ?param_floor ~facts prog deps sched ast
        @ Scan_check.check ?param_floor prog sched ast
        @ Lints.check ?param_floor ~facts prog deps
        @ reduction_findings
      in
      let findings = Finding.by_severity findings in
      List.iter
        (fun (f : Finding.t) ->
          incr
            (match f.Finding.severity with
            | Finding.Error -> Linalg.Counters.findings_error
            | Finding.Warning -> Linalg.Counters.findings_warning
            | Finding.Info -> Linalg.Counters.findings_info))
        findings;
      let errors, warnings, infos = Finding.count findings in
      if Obs.Trace.on () then
        Obs.Trace.instant ~cat:"verify" "analysis.report"
          ~args:
            [
              ("errors", Obs.Json.Int errors);
              ("warnings", Obs.Json.Int warnings);
              ("infos", Obs.Json.Int infos);
              ("certified", Obs.Json.Bool (errors = 0));
            ];
      { findings; errors; warnings; infos })

let certified r = r.errors = 0

let pp_report prog fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter (fun f -> Format.fprintf fmt "%a@," (Finding.pp prog) f) r.findings;
  Format.fprintf fmt "%d error%s, %d warning%s, %d info@]" r.errors
    (if r.errors = 1 then "" else "s")
    r.warnings
    (if r.warnings = 1 then "" else "s")
    r.infos
