(** Exact rational linear programming (two-phase dense simplex,
    arbitrary-precision arithmetic).

    Variables are unrestricted in sign; non-negativity must appear as
    explicit constraints in the polyhedron when wanted. The default
    pivot rule is Dantzig's largest-coefficient rule with an automatic,
    permanent fallback to Bland's least-index rule when the objective
    stalls on a degenerate vertex — so termination is still guaranteed.
    Exactness comes from {!Linalg.Q}: there is no tolerance anywhere. *)

(** Entering-variable selection. [Dantzig] (the default) picks the most
    negative reduced cost and is much faster in practice; [Bland] picks
    the least column index and never cycles. Both reach the same
    optimal value on any bounded feasible program. *)
type pivot_rule = Bland | Dantzig

type result =
  | Infeasible
  | Unbounded
  | Optimal of Linalg.Q.t * Linalg.Vec.t
      (** optimal objective value and one optimal point *)
  | Exhausted
      (** the solve hit its {!Linalg.Budget} (or a chaos fault) before
          reaching a verdict — neither feasibility nor optimality is
          known. Never produced on an unbudgeted call. *)

(** [minimize ?rule ?nonneg ?budget p obj] minimizes the affine
    objective [obj] (length [dim p + 1], trailing constant) over
    polyhedron [p]. With [nonneg:true] every variable is additionally
    constrained to be [>= 0] (and the free-variable split is skipped —
    cheaper; callers must not also add explicit [x >= 0] rows). With
    [budget], every simplex pivot is charged to it and exhaustion
    yields [Exhausted] rather than an exception.
    @raise Invalid_argument on objective length mismatch. *)
val minimize :
  ?rule:pivot_rule ->
  ?nonneg:bool ->
  ?budget:Linalg.Budget.t ->
  Poly.Polyhedron.t ->
  Linalg.Vec.t ->
  result

(** [maximize p obj] likewise (implemented by negation). *)
val maximize :
  ?rule:pivot_rule ->
  ?nonneg:bool ->
  ?budget:Linalg.Budget.t ->
  Poly.Polyhedron.t ->
  Linalg.Vec.t ->
  result

(** {1 Incremental re-solving}

    An optimal solve can capture a [warm] snapshot of its final simplex
    tableau. Because that basis is both primal- and dual-feasible,
    closely related programs can be re-solved without the phase-1
    feasibility search:

    - adding constraints keeps the basis dual-feasible, so
      {!reoptimize} prices the new rows into the basis and runs {e dual
      simplex} back to primal feasibility (the classic branch-and-bound
      warm start);
    - changing the objective keeps the basis primal-feasible, so the
      new reduced costs are priced out and primal phase 2 resumes.

    Warm re-solves reach the same {e optimal value} as a cold solve but
    may return a {e different optimal point} when the optimum is
    degenerate; callers that consume the point (rather than the value)
    and need reproducibility should solve cold. On basis
    incompatibility or when the dual iteration guard trips, [reoptimize]
    transparently falls back to a cold solve
    ({!Linalg.Counters.warm_fallbacks}). Warm solves that complete on
    the warm path bump {!Linalg.Counters.warm_starts}; their pivots are
    counted in {!Linalg.Counters.dual_pivots} (dual phase) and
    {!Linalg.Counters.lp_pivots} (primal phase), so total simplex
    effort is the sum of the two pivot counters. *)

(** A resumable snapshot of an optimal solve. Immutable from the
    caller's point of view: [reoptimize] copies before pivoting, so one
    snapshot can seed many re-solves (e.g. both children of a
    branch-and-bound node). *)
type warm

(** Like {!minimize}, additionally returning a warm snapshot when the
    program is bounded and feasible. *)
val minimize_warm :
  ?rule:pivot_rule ->
  ?nonneg:bool ->
  ?budget:Linalg.Budget.t ->
  Poly.Polyhedron.t ->
  Linalg.Vec.t ->
  result * warm option

(** [reoptimize w ~add ~obj] solves [w]'s program with the constraints
    [add] appended and (affine) objective [obj] — either or both may
    differ from the snapshot — starting from [w]'s final basis. *)
val reoptimize :
  ?budget:Linalg.Budget.t ->
  warm ->
  add:Poly.Constr.t list ->
  obj:Linalg.Vec.t ->
  result * warm option

(** The polyhedron a snapshot solves (with all constraints added so
    far); for differential testing against cold solves. *)
val warm_poly : warm -> Poly.Polyhedron.t

(** [feasible_point p] returns a rational point of [p] if one exists
    (phase-1 only). [None] on budget exhaustion. *)
val feasible_point :
  ?rule:pivot_rule ->
  ?nonneg:bool ->
  ?budget:Linalg.Budget.t ->
  Poly.Polyhedron.t ->
  Linalg.Vec.t option

(** Number of LP solves since process start (alias of
    {!Linalg.Counters.lp_solves}). *)
val solve_count : unit -> int

(** Number of simplex pivots since process start (alias of
    {!Linalg.Counters.lp_pivots}). *)
val pivot_count : unit -> int

(** {1 Fault injection}

    Test-suite hooks for the chaos harness. Production code never sets
    them; both default to [false]. *)
module Chaos : sig
  (** Every solve returns [Exhausted] without pivoting (forced pivot
      exhaustion). *)
  val exhaust : bool ref

  (** {!reoptimize} skips the warm path and re-solves cold every time
      (forced warm-start fallback). Results must be observably
      identical — this hook exercises the fallback's equivalence. *)
  val warm_fallback : bool ref

  (** Clear both flags. *)
  val reset : unit -> unit
end
