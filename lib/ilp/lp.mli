(** Exact rational linear programming (two-phase dense simplex,
    arbitrary-precision arithmetic).

    Variables are unrestricted in sign; non-negativity must appear as
    explicit constraints in the polyhedron when wanted. The default
    pivot rule is Dantzig's largest-coefficient rule with an automatic,
    permanent fallback to Bland's least-index rule when the objective
    stalls on a degenerate vertex — so termination is still guaranteed.
    Exactness comes from {!Linalg.Q}: there is no tolerance anywhere. *)

(** Entering-variable selection. [Dantzig] (the default) picks the most
    negative reduced cost and is much faster in practice; [Bland] picks
    the least column index and never cycles. Both reach the same
    optimal value on any bounded feasible program. *)
type pivot_rule = Bland | Dantzig

type result =
  | Infeasible
  | Unbounded
  | Optimal of Linalg.Q.t * Linalg.Vec.t
      (** optimal objective value and one optimal point *)

(** [minimize ?rule ?nonneg p obj] minimizes the affine objective [obj]
    (length [dim p + 1], trailing constant) over polyhedron [p].
    With [nonneg:true] every variable is additionally constrained to be
    [>= 0] (and the free-variable split is skipped — cheaper; callers
    must not also add explicit [x >= 0] rows).
    @raise Invalid_argument on objective length mismatch. *)
val minimize :
  ?rule:pivot_rule -> ?nonneg:bool -> Poly.Polyhedron.t -> Linalg.Vec.t -> result

(** [maximize p obj] likewise (implemented by negation). *)
val maximize :
  ?rule:pivot_rule -> ?nonneg:bool -> Poly.Polyhedron.t -> Linalg.Vec.t -> result

(** [feasible_point p] returns a rational point of [p] if one exists
    (phase-1 only). *)
val feasible_point :
  ?rule:pivot_rule -> ?nonneg:bool -> Poly.Polyhedron.t -> Linalg.Vec.t option

(** Number of LP solves since process start (alias of
    {!Linalg.Counters.lp_solves}). *)
val solve_count : unit -> int

(** Number of simplex pivots since process start (alias of
    {!Linalg.Counters.lp_pivots}). *)
val pivot_count : unit -> int
