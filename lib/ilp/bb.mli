(** Exact integer linear programming by branch-and-bound over the
    rational simplex ({!Lp}).

    Used for: the per-level hyperplane ILP of the Pluto-style scheduler
    (bounded coefficient boxes, so termination is structural) and exact
    integer emptiness of dependence polyhedra.

    The search is incremental: each node's LP re-solves its parent's
    final basis with one added bound constraint ({!Lp.reoptimize}, dual
    simplex), and {!lexmin} chains each stage's root relaxation from
    the previous stage's. Only optimal {e values} — which warm and cold
    solves always agree on — feed decisions that affect results;
    witness {e points} ({!integer_point}) are searched cold so they do
    not depend on the warm-start machinery. *)

type answer =
  | Optimal of Linalg.Q.t * int array
      (** objective value (an integer when the objective has integer
          coefficients) and an optimal integer point *)
  | Infeasible
  | Unbounded  (** the LP relaxation is unbounded in the objective *)
  | Gave_up
      (** node budget / {!Linalg.Budget} exhausted without a
          conclusion — the typed "ran out of resources" outcome *)

(** [minimize ?max_nodes ?budget p obj] minimizes the affine objective
    [obj] (length [dim p + 1]) over the integer points of [p]. When
    [budget] is given, every node charges {!Linalg.Budget.spend_node}
    and the underlying LPs charge pivots; exhaustion yields [Gave_up],
    never an exception. *)
val minimize :
  ?max_nodes:int ->
  ?nonneg:bool ->
  ?budget:Linalg.Budget.t ->
  Poly.Polyhedron.t ->
  Linalg.Vec.t ->
  answer

(** [integer_point ?max_nodes p] finds any integer point, if one
    exists. [None] means "none exists" when the search completed,
    and "unknown" when the node budget ran out (see {!feasible} for a
    sound wrapper). *)
val integer_point :
  ?max_nodes:int ->
  ?nonneg:bool ->
  ?budget:Linalg.Budget.t ->
  Poly.Polyhedron.t ->
  int array option

(** [feasible p]: does [p] contain an integer point?

    Exact when the branch-and-bound concludes within budget. If the
    budget (node cap or {!Linalg.Budget}) runs out, the answer falls
    back to rational feasibility, which errs on the side of reporting a
    dependence — conservative (never unsound) for the legality analyses
    built on top. *)
val feasible : ?budget:Linalg.Budget.t -> Poly.Polyhedron.t -> bool

(** [lexmin ?max_nodes p objs] sequentially minimizes the affine
    objectives in [objs], fixing each to its optimum before the next
    (lexicographic minimization). Returns the objective values and a
    final optimal point, or [None] if infeasible / unbounded /
    inconclusive (including budget exhaustion). *)
val lexmin :
  ?max_nodes:int ->
  ?nonneg:bool ->
  ?budget:Linalg.Budget.t ->
  Poly.Polyhedron.t ->
  Linalg.Vec.t list ->
  (Linalg.Q.t list * int array) option

(** Differential-testing hook: when set, every warm-started
    branch-and-bound node re-solves its LP cold and fails
    ([Failure _]) unless both solves agree on status and optimal value
    and the warm point is feasible. Expensive — meant for the test
    suite, not production runs. *)
val self_check : bool ref

(** [remove_redundant p] drops every inequality that is implied by the
    remaining constraints (exact rational LP test per row; equalities
    are kept). The result describes the same set with (often far) fewer
    rows - used to shrink Fourier-Motzkin output before it enters a
    larger ILP. *)
val remove_redundant : Poly.Polyhedron.t -> Poly.Polyhedron.t
