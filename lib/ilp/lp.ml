(* Two-phase dense simplex over exact rationals.

   Conversion to standard form (min c.y, A y = rhs, y >= 0, rhs >= 0):
     - every free variable x_i becomes x_i^+ - x_i^- (skipped in
       [nonneg] mode where x >= 0 is implied);
     - every inequality a.x + k >= 0 gains a slack;
     - rows are oriented so rhs >= 0. An inequality with k >= 0 can
       then use its slack as the initial basic variable; only rows with
       k < 0 and equalities get an artificial column, which keeps
       phase 1 small;
     - phase 1 minimizes the sum of artificials.

   Pivoting: Dantzig's largest-coefficient rule by default — far fewer
   pivots in practice — with a degeneracy detector that switches
   permanently to Bland's least-index rule once the objective stalls,
   which restores the termination guarantee. The ratio test compares
   rhs_i/a_i ratios by cross-multiplication instead of exact division
   (no gcd normalization per candidate row), and pivot updates skip
   zero entries of the pivot row. Everything is exact, so no tolerance
   anywhere. *)

open Linalg
open Poly

type pivot_rule = Bland | Dantzig

type result =
  | Infeasible
  | Unbounded
  | Optimal of Q.t * Vec.t

type tableau = {
  a : Q.t array array; (* m rows, each of length ncols + 1 (rhs last) *)
  basis : int array; (* basic variable of each row *)
  ncols : int; (* structural + slack + artificial columns, excluding rhs *)
  nstruct : int; (* structural (split) + slack columns *)
}

let rhs_col t = t.ncols

let pivots_internal = Linalg.Counters.lp_pivots

(* Pivot on (row, col): make column [col] the basis column of [row]. *)
let pivot t row col =
  incr pivots_internal;
  let arow = t.a.(row) in
  let p = arow.(col) in
  assert (not (Q.is_zero p));
  if not (Q.equal p Q.one) then begin
    let inv = Q.inv p in
    for j = 0 to t.ncols do
      if not (Q.is_zero arow.(j)) then arow.(j) <- Q.mul arow.(j) inv
    done
  end;
  for i = 0 to Array.length t.a - 1 do
    if i <> row then begin
      let f = t.a.(i).(col) in
      if not (Q.is_zero f) then begin
        let irow = t.a.(i) in
        for j = 0 to t.ncols do
          (* the pivot row is sparse: skip zero columns *)
          if not (Q.is_zero arow.(j)) then
            irow.(j) <- Q.sub irow.(j) (Q.mul f arow.(j))
        done
      end
    end
  done;
  t.basis.(row) <- col

(* One simplex phase: minimize obj (a row of reduced costs, length
   ncols + 1 with the objective value negated in the rhs slot).
   [allowed col] filters columns that may enter. Mutates [t], [obj]. *)
let run_phase ~rule t obj allowed =
  let m = Array.length t.a in
  let continue_ = ref true in
  let status = ref `Optimal in
  (* Dantzig's rule (most negative reduced cost) is much faster in
     practice; fall back to Bland's rule permanently once the objective
     stagnates for too long (degenerate-cycling guard), which restores
     the termination guarantee. *)
  let use_bland = ref (rule = Bland) in
  let stall = ref 0 in
  let last_value = ref obj.(Array.length obj - 1) in
  while !continue_ do
    if not !use_bland then begin
      if Q.equal obj.(Array.length obj - 1) !last_value then begin
        incr stall;
        if !stall > 40 + m then use_bland := true
      end
      else begin
        stall := 0;
        last_value := obj.(Array.length obj - 1)
      end
    end;
    let entering = ref (-1) in
    if !use_bland then (
      try
        for j = 0 to t.ncols - 1 do
          if allowed j && Q.sign obj.(j) < 0 then begin
            entering := j;
            raise Exit
          end
        done
      with Exit -> ())
    else begin
      let best = ref Q.zero in
      for j = 0 to t.ncols - 1 do
        if allowed j && Q.sign obj.(j) < 0 && Q.compare obj.(j) !best < 0 then begin
          best := obj.(j);
          entering := j
        end
      done
    end;
    if !entering < 0 then continue_ := false
    else begin
      let col = !entering in
      (* leaving: min ratio rhs/a over rows with a > 0; ties by least
         basis index (Bland). Ratios are compared by cross
         multiplication — rhs_i/a_i < rhs_b/a_b iff rhs_i*a_b <
         rhs_b*a_i for positive coefficients — avoiding one exact
         division (and its gcd normalization) per candidate row. *)
      let best = ref (-1) in
      let best_rhs = ref Q.zero and best_coeff = ref Q.one in
      for i = 0 to m - 1 do
        let aij = t.a.(i).(col) in
        if Q.sign aij > 0 then begin
          let rhs = t.a.(i).(rhs_col t) in
          if !best < 0 then begin
            best := i;
            best_rhs := rhs;
            best_coeff := aij
          end
          else begin
            let c = Q.compare (Q.mul rhs !best_coeff) (Q.mul !best_rhs aij) in
            if c < 0 || (c = 0 && t.basis.(i) < t.basis.(!best)) then begin
              best := i;
              best_rhs := rhs;
              best_coeff := aij
            end
          end
        end
      done;
      if !best < 0 then begin
        status := `Unbounded;
        continue_ := false
      end
      else begin
        let row = !best in
        pivot t row col;
        let f = obj.(col) in
        if not (Q.is_zero f) then begin
          let arow = t.a.(row) in
          for j = 0 to t.ncols do
            if not (Q.is_zero arow.(j)) then
              obj.(j) <- Q.sub obj.(j) (Q.mul f arow.(j))
          done
        end
      end
    end
  done;
  !status

exception Found_infeasible

let minimize_exn ~rule ~nonneg p obj_aff =
  let n = Polyhedron.dim p in
  if Vec.dim obj_aff <> n + 1 then invalid_arg "Lp.minimize: objective length";
  let cons = Polyhedron.constraints p in
  let m = List.length cons in
  let n_split = if nonneg then n else 2 * n in
  let n_slack = List.length (List.filter (fun c -> Constr.kind c = Constr.Ge) cons) in
  (* artificials: equalities and inequalities with negative constant *)
  let needs_artificial c =
    match Constr.kind c with
    | Constr.Eq -> true
    | Constr.Ge -> Q.sign (Constr.const c) < 0
  in
  let n_art = List.length (List.filter needs_artificial cons) in
  let nstruct = n_split + n_slack in
  let ncols = nstruct + n_art in
  let a = Array.init m (fun _ -> Array.make (ncols + 1) Q.zero) in
  let basis = Array.make m (-1) in
  let slack_idx = ref 0 and art_idx = ref 0 in
  List.iteri
    (fun i c ->
      let row = a.(i) in
      let k = Constr.const c in
      (* encode a.x + k >= 0 (or = 0) as a.x (- s) = -k *)
      for v = 0 to n - 1 do
        let cv = Constr.coeff c v in
        if nonneg then row.(v) <- cv
        else begin
          row.(2 * v) <- cv;
          row.((2 * v) + 1) <- Q.neg cv
        end
      done;
      let slack_col =
        match Constr.kind c with
        | Constr.Ge ->
          let col = n_split + !slack_idx in
          incr slack_idx;
          row.(col) <- Q.minus_one;
          Some col
        | Constr.Eq -> None
      in
      row.(ncols) <- Q.neg k;
      if Q.sign row.(ncols) < 0 then
        for j = 0 to ncols do
          row.(j) <- Q.neg row.(j)
        done;
      if needs_artificial c then begin
        let col = nstruct + !art_idx in
        incr art_idx;
        row.(col) <- Q.one;
        basis.(i) <- col
      end
      else begin
        (* rhs >= 0; orient the row so the slack has coefficient +1 and
           make it basic (for k = 0 the rhs is 0 either way) *)
        match slack_col with
        | Some col ->
          if Q.sign row.(col) < 0 then
            for j = 0 to ncols do
              row.(j) <- Q.neg row.(j)
            done;
          assert (Q.equal row.(col) Q.one && Q.sign row.(ncols) >= 0);
          basis.(i) <- col
        | None -> assert false
      end)
    cons;
  let t = { a; basis; ncols; nstruct } in
  let is_artificial col = col >= t.nstruct in
  (* phase 1: minimize the sum of artificials *)
  if n_art > 0 then begin
    let obj1 = Array.make (ncols + 1) Q.zero in
    for j = t.nstruct to ncols - 1 do
      obj1.(j) <- Q.one
    done;
    for i = 0 to m - 1 do
      if is_artificial t.basis.(i) then
        for j = 0 to ncols do
          obj1.(j) <- Q.sub obj1.(j) t.a.(i).(j)
        done
    done;
    (match run_phase ~rule t obj1 (fun _ -> true) with
    | `Unbounded -> assert false (* bounded below by 0 *)
    | `Optimal -> ());
    if Q.sign obj1.(ncols) <> 0 then raise Found_infeasible;
    (* drive remaining artificials out of the basis where possible *)
    for i = 0 to m - 1 do
      if is_artificial t.basis.(i) then begin
        let found = ref (-1) in
        (try
           for j = 0 to t.nstruct - 1 do
             if not (Q.is_zero t.a.(i).(j)) then begin
               found := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !found >= 0 then pivot t i !found
        (* else: redundant row; the artificial stays basic at value 0 *)
      end
    done
  end;
  (* phase 2 *)
  let obj2 = Array.make (ncols + 1) Q.zero in
  for v = 0 to n - 1 do
    if nonneg then obj2.(v) <- obj_aff.(v)
    else begin
      obj2.(2 * v) <- obj_aff.(v);
      obj2.((2 * v) + 1) <- Q.neg obj_aff.(v)
    end
  done;
  for i = 0 to m - 1 do
    let b = t.basis.(i) in
    let f = obj2.(b) in
    if not (Q.is_zero f) then
      for j = 0 to ncols do
        obj2.(j) <- Q.sub obj2.(j) (Q.mul f t.a.(i).(j))
      done
  done;
  let allowed j = j < t.nstruct in
  match run_phase ~rule t obj2 allowed with
  | `Unbounded -> Unbounded
  | `Optimal ->
    let y = Array.make (ncols + 1) Q.zero in
    for i = 0 to m - 1 do
      y.(t.basis.(i)) <- t.a.(i).(ncols)
    done;
    let x =
      if nonneg then Array.init n (fun v -> y.(v))
      else Array.init n (fun v -> Q.sub y.(2 * v) y.((2 * v) + 1))
    in
    let value = Q.add (Q.neg obj2.(ncols)) obj_aff.(n) in
    Optimal (value, x)

let solves = Linalg.Counters.lp_solves
let solve_count () = !solves
let pivot_count () = !pivots_internal

let minimize ?(rule = Dantzig) ?(nonneg = false) p obj_aff =
  incr solves;
  try minimize_exn ~rule ~nonneg p obj_aff with Found_infeasible -> Infeasible

let maximize ?rule ?nonneg p obj_aff =
  match minimize ?rule ?nonneg p (Vec.neg obj_aff) with
  | Infeasible -> Infeasible
  | Unbounded -> Unbounded
  | Optimal (v, x) -> Optimal (Q.neg v, x)

let feasible_point ?rule ?nonneg p =
  let n = Polyhedron.dim p in
  match minimize ?rule ?nonneg p (Vec.zero (n + 1)) with
  | Infeasible -> None
  | Unbounded -> None (* cannot happen with zero objective *)
  | Optimal (_, x) -> Some x
