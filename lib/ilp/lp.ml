(* Two-phase dense simplex over exact rationals, with an incremental
   re-solve layer.

   Conversion to standard form (min c.y, A y = rhs, y >= 0, rhs >= 0):
     - every free variable x_i becomes x_i^+ - x_i^- (skipped in
       [nonneg] mode where x >= 0 is implied);
     - every inequality a.x + k >= 0 gains a slack;
     - rows are oriented so rhs >= 0. An inequality with k >= 0 can
       then use its slack as the initial basic variable; only rows with
       k < 0 and equalities get an artificial column, which keeps
       phase 1 small;
     - phase 1 minimizes the sum of artificials.

   Pivoting: Dantzig's largest-coefficient rule by default — far fewer
   pivots in practice — with a degeneracy detector that switches
   permanently to Bland's least-index rule once the objective stalls,
   which restores the termination guarantee. The ratio test compares
   rhs_i/a_i ratios by cross-multiplication instead of exact division
   (no gcd normalization per candidate row), and pivot updates skip
   zero entries of the pivot row. Everything is exact, so no tolerance
   anywhere.

   Incremental layer: an optimal solve can return a [warm] snapshot of
   its final tableau. [reoptimize] re-solves after (a) adding
   constraints — the snapshot basis is dual-feasible, so the added rows
   are priced into the basis and dual simplex runs back to primal
   feasibility — and/or (b) swapping the objective — the basis is
   primal-feasible, so the new reduced costs are priced out and primal
   phase 2 resumes. Both skip phase 1 entirely; a cold two-phase solve
   is the fallback on basis incompatibility or a dual cycling guard. *)

open Linalg
open Poly

type pivot_rule = Bland | Dantzig

type result =
  | Infeasible
  | Unbounded
  | Optimal of Q.t * Vec.t
  | Exhausted

(* Chaos hooks (fault injection for the test suite): [exhaust] makes
   every solve report [Exhausted] without pivoting — the
   forced-pivot-exhaustion fault; [warm_fallback] makes [reoptimize]
   skip the warm path and re-solve cold every time — the
   forced-warm-start-fallback fault. Production code never sets them. *)
module Chaos = struct
  let exhaust = ref false
  let warm_fallback = ref false

  let reset () =
    exhaust := false;
    warm_fallback := false
end

(* Internal only: budget exhaustion unwinds the solve in progress and
   is converted to the typed [Exhausted] result at every public entry
   point — it never escapes this module. *)
exception Out_of_budget

let charge budget =
  match budget with
  | None -> ()
  | Some b -> if not (Linalg.Budget.spend_pivot b) then raise Out_of_budget

type tableau = {
  a : Q.t array array; (* m rows, each of length ncols + 1 (rhs last) *)
  basis : int array; (* basic variable of each row *)
  ncols : int; (* structural + slack + artificial columns, excluding rhs *)
  nstruct : int; (* structural (split) + slack columns *)
}

(* A resumable snapshot of an optimal solve: the final tableau and
   reduced-cost row, plus enough of the problem statement to rebuild a
   cold solve on fallback. *)
type warm = {
  w_t : tableau;
  w_obj_row : Q.t array; (* reduced costs, length ncols + 1 *)
  w_allowed : bool array; (* length ncols: may the column enter phase 2 *)
  w_nonneg : bool;
  w_n : int; (* original variable count *)
  w_obj_aff : Vec.t; (* the affine objective [w_obj_row] prices *)
  w_poly : Polyhedron.t; (* the solved polyhedron (for cold fallback) *)
  w_rule : pivot_rule;
}

let rhs_col t = t.ncols

let pivots_internal = Linalg.Counters.lp_pivots

(* Pivot on (row, col): make column [col] the basis column of [row].
   Counter-free so the warm path can charge its pivots to
   [Counters.dual_pivots] instead. *)
let pivot_raw t row col =
  let arow = t.a.(row) in
  let p = arow.(col) in
  assert (not (Q.is_zero p));
  if not (Q.equal p Q.one) then begin
    let inv = Q.inv p in
    for j = 0 to t.ncols do
      if not (Q.is_zero arow.(j)) then arow.(j) <- Q.mul arow.(j) inv
    done
  end;
  for i = 0 to Array.length t.a - 1 do
    if i <> row then begin
      let f = t.a.(i).(col) in
      if not (Q.is_zero f) then begin
        let irow = t.a.(i) in
        for j = 0 to t.ncols do
          (* the pivot row is sparse: skip zero columns *)
          if not (Q.is_zero arow.(j)) then
            irow.(j) <- Q.sub irow.(j) (Q.mul f arow.(j))
        done
      end
    end
  done;
  t.basis.(row) <- col

let pivot t row col =
  incr pivots_internal;
  pivot_raw t row col

(* Subtract [f * a.(row)] from the objective row (prices the entering
   column out of the reduced costs). *)
let price_out t obj row =
  let f = obj.(t.basis.(row)) in
  if not (Q.is_zero f) then begin
    let arow = t.a.(row) in
    for j = 0 to t.ncols do
      if not (Q.is_zero arow.(j)) then obj.(j) <- Q.sub obj.(j) (Q.mul f arow.(j))
    done
  end

(* One simplex phase: minimize obj (a row of reduced costs, length
   ncols + 1 with the objective value negated in the rhs slot).
   [allowed col] filters columns that may enter. Mutates [t], [obj]. *)
let run_phase ~rule ~budget t obj allowed =
  let m = Array.length t.a in
  let continue_ = ref true in
  let status = ref `Optimal in
  (* Dantzig's rule (most negative reduced cost) is much faster in
     practice; fall back to Bland's rule permanently once the objective
     stagnates for too long (degenerate-cycling guard), which restores
     the termination guarantee. *)
  let use_bland = ref (rule = Bland) in
  let stall = ref 0 in
  let last_value = ref obj.(Array.length obj - 1) in
  while !continue_ do
    if not !use_bland then begin
      if Q.equal obj.(Array.length obj - 1) !last_value then begin
        incr stall;
        if !stall > 40 + m then use_bland := true
      end
      else begin
        stall := 0;
        last_value := obj.(Array.length obj - 1)
      end
    end;
    let entering = ref (-1) in
    if !use_bland then (
      try
        for j = 0 to t.ncols - 1 do
          if allowed j && Q.sign obj.(j) < 0 then begin
            entering := j;
            raise Exit
          end
        done
      with Exit -> ())
    else begin
      let best = ref Q.zero in
      for j = 0 to t.ncols - 1 do
        if allowed j && Q.sign obj.(j) < 0 && Q.compare obj.(j) !best < 0 then begin
          best := obj.(j);
          entering := j
        end
      done
    end;
    if !entering < 0 then continue_ := false
    else begin
      let col = !entering in
      (* leaving: min ratio rhs/a over rows with a > 0; ties by least
         basis index (Bland). Ratios are compared by cross
         multiplication — rhs_i/a_i < rhs_b/a_b iff rhs_i*a_b <
         rhs_b*a_i for positive coefficients — avoiding one exact
         division (and its gcd normalization) per candidate row. *)
      let best = ref (-1) in
      let best_rhs = ref Q.zero and best_coeff = ref Q.one in
      for i = 0 to m - 1 do
        let aij = t.a.(i).(col) in
        if Q.sign aij > 0 then begin
          let rhs = t.a.(i).(rhs_col t) in
          if !best < 0 then begin
            best := i;
            best_rhs := rhs;
            best_coeff := aij
          end
          else begin
            let c = Q.compare (Q.mul rhs !best_coeff) (Q.mul !best_rhs aij) in
            if c < 0 || (c = 0 && t.basis.(i) < t.basis.(!best)) then begin
              best := i;
              best_rhs := rhs;
              best_coeff := aij
            end
          end
        end
      done;
      if !best < 0 then begin
        status := `Unbounded;
        continue_ := false
      end
      else begin
        let row = !best in
        let f = obj.(col) in
        charge budget;
        pivot t row col;
        if not (Q.is_zero f) then begin
          let arow = t.a.(row) in
          for j = 0 to t.ncols do
            if not (Q.is_zero arow.(j)) then
              obj.(j) <- Q.sub obj.(j) (Q.mul f arow.(j))
          done
        end
      end
    end
  done;
  !status

exception Found_infeasible

(* Read the optimal point and value out of a final tableau. *)
let extract ~nonneg ~n t obj_row obj_aff =
  let y = Array.make (t.ncols + 1) Q.zero in
  for i = 0 to Array.length t.a - 1 do
    y.(t.basis.(i)) <- t.a.(i).(t.ncols)
  done;
  let x =
    if nonneg then Array.init n (fun v -> y.(v))
    else Array.init n (fun v -> Q.sub y.(2 * v) y.((2 * v) + 1))
  in
  let value = Q.add (Q.neg obj_row.(t.ncols)) obj_aff.(n) in
  Optimal (value, x)

(* Build the phase-2 reduced-cost row for [obj_aff] against the current
   basis of [t]: map the affine objective onto the structural columns,
   then price out every basic column. *)
let priced_obj_row ~nonneg ~n t obj_aff =
  let obj = Array.make (t.ncols + 1) Q.zero in
  for v = 0 to n - 1 do
    if nonneg then obj.(v) <- obj_aff.(v)
    else begin
      obj.(2 * v) <- obj_aff.(v);
      obj.((2 * v) + 1) <- Q.neg obj_aff.(v)
    end
  done;
  for i = 0 to Array.length t.a - 1 do
    price_out t obj i
  done;
  obj

let solve_cold_exn ~rule ~nonneg ~budget p obj_aff =
  let n = Polyhedron.dim p in
  if Vec.dim obj_aff <> n + 1 then invalid_arg "Lp.minimize: objective length";
  let cons = Polyhedron.constraints p in
  let m = List.length cons in
  let n_split = if nonneg then n else 2 * n in
  let n_slack = List.length (List.filter (fun c -> Constr.kind c = Constr.Ge) cons) in
  (* artificials: equalities and inequalities with negative constant *)
  let needs_artificial c =
    match Constr.kind c with
    | Constr.Eq -> true
    | Constr.Ge -> Q.sign (Constr.const c) < 0
  in
  let n_art = List.length (List.filter needs_artificial cons) in
  let nstruct = n_split + n_slack in
  let ncols = nstruct + n_art in
  let a = Array.init m (fun _ -> Array.make (ncols + 1) Q.zero) in
  let basis = Array.make m (-1) in
  let slack_idx = ref 0 and art_idx = ref 0 in
  List.iteri
    (fun i c ->
      let row = a.(i) in
      let k = Constr.const c in
      (* encode a.x + k >= 0 (or = 0) as a.x (- s) = -k *)
      for v = 0 to n - 1 do
        let cv = Constr.coeff c v in
        if nonneg then row.(v) <- cv
        else begin
          row.(2 * v) <- cv;
          row.((2 * v) + 1) <- Q.neg cv
        end
      done;
      let slack_col =
        match Constr.kind c with
        | Constr.Ge ->
          let col = n_split + !slack_idx in
          incr slack_idx;
          row.(col) <- Q.minus_one;
          Some col
        | Constr.Eq -> None
      in
      row.(ncols) <- Q.neg k;
      if Q.sign row.(ncols) < 0 then
        for j = 0 to ncols do
          row.(j) <- Q.neg row.(j)
        done;
      if needs_artificial c then begin
        let col = nstruct + !art_idx in
        incr art_idx;
        row.(col) <- Q.one;
        basis.(i) <- col
      end
      else begin
        (* rhs >= 0; orient the row so the slack has coefficient +1 and
           make it basic (for k = 0 the rhs is 0 either way) *)
        match slack_col with
        | Some col ->
          if Q.sign row.(col) < 0 then
            for j = 0 to ncols do
              row.(j) <- Q.neg row.(j)
            done;
          assert (Q.equal row.(col) Q.one && Q.sign row.(ncols) >= 0);
          basis.(i) <- col
        | None -> assert false
      end)
    cons;
  let t = { a; basis; ncols; nstruct } in
  let is_artificial col = col >= t.nstruct in
  (* phase 1: minimize the sum of artificials *)
  if n_art > 0 then begin
    let obj1 = Array.make (ncols + 1) Q.zero in
    for j = t.nstruct to ncols - 1 do
      obj1.(j) <- Q.one
    done;
    for i = 0 to m - 1 do
      if is_artificial t.basis.(i) then
        for j = 0 to ncols do
          obj1.(j) <- Q.sub obj1.(j) t.a.(i).(j)
        done
    done;
    (match run_phase ~rule ~budget t obj1 (fun _ -> true) with
    | `Unbounded -> assert false (* bounded below by 0 *)
    | `Optimal -> ());
    if Q.sign obj1.(ncols) <> 0 then raise Found_infeasible;
    (* drive remaining artificials out of the basis where possible *)
    for i = 0 to m - 1 do
      if is_artificial t.basis.(i) then begin
        let found = ref (-1) in
        (try
           for j = 0 to t.nstruct - 1 do
             if not (Q.is_zero t.a.(i).(j)) then begin
               found := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !found >= 0 then pivot t i !found
        (* else: redundant row; the artificial stays basic at value 0 *)
      end
    done
  end;
  (* phase 2 *)
  let obj2 = priced_obj_row ~nonneg ~n t obj_aff in
  let allowed j = j < t.nstruct in
  match run_phase ~rule ~budget t obj2 allowed with
  | `Unbounded -> (Unbounded, None)
  | `Optimal ->
    let res = extract ~nonneg ~n t obj2 obj_aff in
    let w =
      {
        w_t = t;
        w_obj_row = obj2;
        w_allowed = Array.init ncols (fun j -> j < t.nstruct);
        w_nonneg = nonneg;
        w_n = n;
        w_obj_aff = obj_aff;
        w_poly = p;
        w_rule = rule;
      }
    in
    (res, Some w)

let solve_cold ~rule ~nonneg ~budget p obj_aff =
  try solve_cold_exn ~rule ~nonneg ~budget p obj_aff
  with Found_infeasible -> (Infeasible, None)

(* --- warm re-solve ----------------------------------------------------- *)

(* Restore primal feasibility by dual simplex: the reduced costs in
   [obj] are non-negative on allowed columns (dual feasible); repeatedly
   drive the most negative rhs out of the basis. The entering column is
   chosen by the dual ratio test (min obj_j / -a_rj over a_rj < 0, by
   cross multiplication). Bounded by [cap] pivots as a cycling guard. *)
let dual_simplex ~budget t obj allowed cap =
  let m = Array.length t.a in
  let iters = ref 0 in
  let status = ref `Optimal in
  let continue_ = ref true in
  while !continue_ do
    if !iters > cap then begin
      status := `Fallback;
      continue_ := false
    end
    else begin
      let r = ref (-1) in
      let worst = ref Q.zero in
      for i = 0 to m - 1 do
        let rhs = t.a.(i).(t.ncols) in
        if Q.sign rhs < 0 then begin
          let c = if !r < 0 then -1 else Q.compare rhs !worst in
          if c < 0 || (c = 0 && t.basis.(i) < t.basis.(!r)) then begin
            r := i;
            worst := rhs
          end
        end
      done;
      if !r < 0 then continue_ := false (* primal feasible: optimal *)
      else begin
        let row = t.a.(!r) in
        let e = ref (-1) in
        let e_obj = ref Q.zero and e_coeff = ref Q.one in
        for j = 0 to t.ncols - 1 do
          if allowed.(j) && Q.sign row.(j) < 0 then begin
            let oj = obj.(j) and cj = Q.neg row.(j) in
            if !e < 0 then begin
              e := j;
              e_obj := oj;
              e_coeff := cj
            end
            else begin
              (* oj/cj < e_obj/e_coeff iff oj*e_coeff < e_obj*cj *)
              let c = Q.compare (Q.mul oj !e_coeff) (Q.mul !e_obj cj) in
              if c < 0 then begin
                e := j;
                e_obj := oj;
                e_coeff := cj
              end
            end
          end
        done;
        if !e < 0 then begin
          (* the row reads: basic = rhs < 0 with only non-negative
             contributions available — infeasible *)
          status := `Infeasible;
          continue_ := false
        end
        else begin
          charge budget;
          incr Counters.dual_pivots;
          incr iters;
          let f = obj.(!e) in
          pivot_raw t !r !e;
          if not (Q.is_zero f) then begin
            let arow = t.a.(!r) in
            for j = 0 to t.ncols do
              if not (Q.is_zero arow.(j)) then
                obj.(j) <- Q.sub obj.(j) (Q.mul f arow.(j))
            done
          end
        end
      end
    end
  done;
  !status

(* [reoptimize w ~add ~obj] re-solves [w]'s program with the
   constraints [add] appended and objective [obj], starting from [w]'s
   final basis. Two stages: dual simplex absorbs the added rows under
   the old objective (skipping phase 1), then — if the objective
   changed — the new reduced costs are priced out and primal phase 2
   resumes from the feasible basis. Falls back to a cold solve when
   the snapshot is incompatible or the dual iteration cap trips. *)
let reoptimize_exn ?budget w ~add ~obj:obj_aff =
  incr Counters.lp_solves;
  let n = w.w_n in
  let cold () =
    incr Counters.warm_fallbacks;
    (* cold fallbacks are rare and worth seeing individually in a trace;
       warm successes are only counted (they would dominate the event
       stream) *)
    if Obs.Trace.on () then
      Obs.Trace.instant ~cat:"ilp" "lp.warm-fallback"
        ~args:[ ("vars", Obs.Json.Int n) ];
    solve_cold ~rule:w.w_rule ~nonneg:w.w_nonneg ~budget
      (Polyhedron.add_list w.w_poly add)
      obj_aff
  in
  if !Chaos.warm_fallback then cold ()
  else if
    Vec.dim obj_aff <> n + 1 || List.exists (fun c -> Constr.dim c <> n) add
  then cold ()
  else begin
    (* every added constraint becomes one or two Ge rows
       (an equality is its two opposite inequalities) *)
    let rows_to_add =
      List.concat_map
        (fun c ->
          match Constr.kind c with
          | Constr.Ge -> [ Constr.coeffs c ]
          | Constr.Eq -> [ Constr.coeffs c; Vec.neg (Constr.coeffs c) ])
        add
    in
    let old = w.w_t in
    let m = Array.length old.a in
    let extra = List.length rows_to_add in
    let ncols = old.ncols + extra in
    (* widen a row: columns 0..old.ncols-1 keep their place, the new
       slack columns are zero, the rhs moves to the end *)
    let grow row =
      let r = Array.make (ncols + 1) Q.zero in
      Array.blit row 0 r 0 old.ncols;
      r.(ncols) <- row.(old.ncols);
      r
    in
    let a = Array.make (m + extra) [||] in
    for i = 0 to m - 1 do
      a.(i) <- grow old.a.(i)
    done;
    let obj_row = grow w.w_obj_row in
    let basis = Array.make (m + extra) (-1) in
    Array.blit old.basis 0 basis 0 m;
    let allowed = Array.make ncols false in
    Array.blit w.w_allowed 0 allowed 0 old.ncols;
    for j = old.ncols to ncols - 1 do
      allowed.(j) <- true
    done;
    (* append each constraint a.x + k >= 0 as  -a.x + s = k  with its
       slack basic, then substitute the current basis out of the row so
       the tableau stays in canonical form; a negative resulting rhs is
       exactly what dual simplex repairs *)
    List.iteri
      (fun idx cv ->
        let r = Array.make (ncols + 1) Q.zero in
        for v = 0 to n - 1 do
          let av = cv.(v) in
          if not (Q.is_zero av) then
            if w.w_nonneg then r.(v) <- Q.neg av
            else begin
              r.(2 * v) <- Q.neg av;
              r.((2 * v) + 1) <- av
            end
        done;
        let scol = old.ncols + idx in
        r.(scol) <- Q.one;
        r.(ncols) <- cv.(n);
        for i = 0 to m - 1 do
          let f = r.(basis.(i)) in
          if not (Q.is_zero f) then begin
            let arow = a.(i) in
            for j = 0 to ncols do
              if not (Q.is_zero arow.(j)) then
                r.(j) <- Q.sub r.(j) (Q.mul f arow.(j))
            done
          end
        done;
        a.(m + idx) <- r;
        basis.(m + idx) <- scol)
      rows_to_add;
    let t = { a; basis; ncols; nstruct = ncols } in
    let cap = 200 + (10 * (m + extra)) in
    match dual_simplex ~budget t obj_row allowed cap with
    | `Fallback -> cold ()
    | `Infeasible ->
      incr Counters.warm_starts;
      (Infeasible, None)
    | `Optimal -> (
      let same_obj = Vec.equal obj_aff w.w_obj_aff in
      let obj_row =
        if same_obj then obj_row
        else priced_obj_row ~nonneg:w.w_nonneg ~n t obj_aff
      in
      let status =
        if same_obj then `Optimal
        else run_phase ~rule:w.w_rule ~budget t obj_row (fun j -> allowed.(j))
      in
      match status with
      | `Unbounded ->
        incr Counters.warm_starts;
        (Unbounded, None)
      | `Optimal ->
        incr Counters.warm_starts;
        let res = extract ~nonneg:w.w_nonneg ~n t obj_row obj_aff in
        let w' =
          {
            w with
            w_t = t;
            w_obj_row = obj_row;
            w_allowed = allowed;
            w_obj_aff = obj_aff;
            w_poly = Polyhedron.add_list w.w_poly add;
          }
        in
        (res, Some w'))
  end

let reoptimize ?budget w ~add ~obj =
  if !Chaos.exhaust then (Exhausted, None)
  else
    try reoptimize_exn ?budget w ~add ~obj
    with Out_of_budget -> (Exhausted, None)

let warm_poly w = w.w_poly

(* --- public entry points ------------------------------------------------ *)

let solves = Linalg.Counters.lp_solves
let solve_count () = !solves
let pivot_count () = !pivots_internal

let minimize_warm ?(rule = Dantzig) ?(nonneg = false) ?budget p obj_aff =
  incr solves;
  if !Chaos.exhaust then (Exhausted, None)
  else
    try solve_cold ~rule ~nonneg ~budget p obj_aff
    with Out_of_budget -> (Exhausted, None)

let minimize ?rule ?nonneg ?budget p obj_aff =
  fst (minimize_warm ?rule ?nonneg ?budget p obj_aff)

let maximize ?rule ?nonneg ?budget p obj_aff =
  match minimize ?rule ?nonneg ?budget p (Vec.neg obj_aff) with
  | Infeasible -> Infeasible
  | Unbounded -> Unbounded
  | Optimal (v, x) -> Optimal (Q.neg v, x)
  | Exhausted -> Exhausted

let feasible_point ?rule ?nonneg ?budget p =
  let n = Polyhedron.dim p in
  match minimize ?rule ?nonneg ?budget p (Vec.zero (n + 1)) with
  | Infeasible -> None
  | Unbounded -> None (* cannot happen with zero objective *)
  | Exhausted -> None (* caller opted into a budget: treat as unknown *)
  | Optimal (_, x) -> Some x
