open Linalg
open Poly

type answer =
  | Optimal of Q.t * int array
  | Infeasible
  | Unbounded
  | Gave_up



let to_int_point (x : Vec.t) = Array.map (fun q -> Bigint.to_int (Q.to_bigint q)) x

let first_fractional (x : Vec.t) =
  let n = Array.length x in
  let rec go i = if i >= n then None else if Q.is_integer x.(i) then go (i + 1) else Some i in
  go 0

(* x_i <= floor(v):  -x_i + floor(v) >= 0 *)
let le_branch dim i v =
  let c = Vec.zero (dim + 1) in
  c.(i) <- Q.minus_one;
  c.(dim) <- Q.of_bigint (Q.floor v);
  Constr.make Constr.Ge c

(* x_i >= ceil(v):  x_i - ceil(v) >= 0 *)
let ge_branch dim i v =
  let c = Vec.zero (dim + 1) in
  c.(i) <- Q.one;
  c.(dim) <- Q.neg (Q.of_bigint (Q.ceil v));
  Constr.make Constr.Ge c

type search_state = {
  nonneg : bool;
  mutable incumbent : (Q.t * int array) option;
  mutable nodes : int;
  mutable saw_unbounded : bool;
  mutable gave_up : bool;
  max_nodes : int;
  stop_at_first : bool; (* feasibility search: stop on the first point *)
}

exception Found_first

let rec branch st p obj =
  if st.nodes >= st.max_nodes then st.gave_up <- true
  else begin
    st.nodes <- st.nodes + 1;
    incr Counters.bb_nodes;
    match Lp.minimize ~nonneg:st.nonneg p obj with
    | Lp.Infeasible -> ()
    | Lp.Unbounded -> st.saw_unbounded <- true
    | Lp.Optimal (v, x) ->
      let dominated =
        match st.incumbent with
        | Some (best, _) -> Q.compare v best >= 0
        | None -> false
      in
      if not dominated then begin
        match first_fractional x with
        | None ->
          st.incumbent <- Some (v, to_int_point x);
          if st.stop_at_first then raise Found_first
        | Some i ->
          let dim = Polyhedron.dim p in
          branch st (Polyhedron.add p (le_branch dim i x.(i))) obj;
          branch st (Polyhedron.add p (ge_branch dim i x.(i))) obj
      end
  end

let run ?(max_nodes = 20000) ?(stop_at_first = false) ?(nonneg = false) p obj =
  incr Counters.ilp_solves;
  let st =
    {
      nonneg;
      incumbent = None;
      nodes = 0;
      saw_unbounded = false;
      gave_up = false;
      max_nodes;
      stop_at_first;
    }
  in
  (try branch st p obj with Found_first -> ());
  st

let minimize ?max_nodes ?nonneg p obj =
  if Vec.dim obj <> Polyhedron.dim p + 1 then
    invalid_arg "Ilp.minimize: objective length";
  let st = run ?max_nodes ?nonneg p obj in
  match st.incumbent with
  | Some (v, x) -> if st.saw_unbounded then Unbounded else Optimal (v, x)
  | None ->
    if st.saw_unbounded then Unbounded
    else if st.gave_up then Gave_up
    else Infeasible

let integer_point ?max_nodes ?nonneg p =
  let obj = Vec.zero (Polyhedron.dim p + 1) in
  let st = run ?max_nodes ~stop_at_first:true ?nonneg p obj in
  Option.map snd st.incumbent

let feasible p =
  if Polyhedron.is_empty p then false
  else begin
    let obj = Vec.zero (Polyhedron.dim p + 1) in
    let st = run ~stop_at_first:true p obj in
    match st.incumbent with
    | Some _ -> true
    | None ->
      (* no integer point found: exact "no" if the search completed,
         conservative "yes" (rational-feasible) if it gave up *)
      st.gave_up
  end

let lexmin ?max_nodes ?nonneg p objs =
  let dim = Polyhedron.dim p in
  let rec go p acc = function
    | [] ->
      (* recover a point optimal for all fixed objectives *)
      (match integer_point ?max_nodes ?nonneg p with
      | Some x -> Some (List.rev acc, x)
      | None -> None)
    | obj :: rest -> (
      match minimize ?max_nodes ?nonneg p obj with
      | Optimal (v, _) ->
        (* fix this objective: obj . x + c = v *)
        let fix = Vec.copy obj in
        fix.(dim) <- Q.sub fix.(dim) v;
        go (Polyhedron.add p (Constr.make Constr.Eq fix)) (v :: acc) rest
      | Infeasible | Unbounded | Gave_up -> None)
  in
  go p [] objs

let remove_redundant p =
  let dim = Polyhedron.dim p in
  let eqs, ineqs =
    List.partition
      (fun c -> Constr.kind c = Constr.Eq)
      (Polyhedron.constraints p)
  in
  (* test each inequality against everything else kept so far *)
  let rec filter kept = function
    | [] -> kept
    | c :: rest ->
      let others = eqs @ kept @ rest in
      let q = Polyhedron.make dim others in
      let obj =
        let v = Vec.copy (Constr.coeffs c) in
        v
      in
      let redundant =
        match Lp.minimize q obj with
        | Lp.Optimal (v, _) -> Q.sign v >= 0
        | Lp.Infeasible -> true (* empty set: anything is implied *)
        | Lp.Unbounded -> false
      in
      if redundant then filter kept rest else filter (c :: kept) rest
  in
  Polyhedron.make dim (eqs @ filter [] ineqs)
