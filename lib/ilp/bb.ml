open Linalg
open Poly

type answer =
  | Optimal of Q.t * int array
  | Infeasible
  | Unbounded
  | Gave_up

let to_int_point (x : Vec.t) = Array.map (fun q -> Bigint.to_int (Q.to_bigint q)) x

let first_fractional (x : Vec.t) =
  let n = Array.length x in
  let rec go i = if i >= n then None else if Q.is_integer x.(i) then go (i + 1) else Some i in
  go 0

(* x_i <= floor(v):  -x_i + floor(v) >= 0 *)
let le_branch dim i v =
  let c = Vec.zero (dim + 1) in
  c.(i) <- Q.minus_one;
  c.(dim) <- Q.of_bigint (Q.floor v);
  Constr.make Constr.Ge c

(* x_i >= ceil(v):  x_i - ceil(v) >= 0 *)
let ge_branch dim i v =
  let c = Vec.zero (dim + 1) in
  c.(i) <- Q.one;
  c.(dim) <- Q.neg (Q.of_bigint (Q.ceil v));
  Constr.make Constr.Ge c

(* How a node obtains its LP solution: a cold two-phase solve, or a
   dual-simplex re-solve of a snapshot basis (the parent node's, or the
   previous lexmin stage's root) with some constraints appended. *)
type src = Cold | Warm of Lp.warm * Constr.t list

type search_state = {
  nonneg : bool;
  use_warm : bool; (* thread warm snapshots into child nodes *)
  mutable incumbent : (Q.t * int array) option;
  mutable nodes : int;
  mutable saw_unbounded : bool;
  mutable gave_up : bool;
  mutable root_warm : Lp.warm option; (* snapshot of the root relaxation *)
  max_nodes : int;
  stop_at_first : bool; (* feasibility search: stop on the first point *)
  budget : Budget.t option; (* shared resource budget, None = unlimited *)
}

exception Found_first

let self_check = ref false

(* Differential check (tests): a warm re-solve must agree with a cold
   solve of the same node — same status, same optimal value, and a
   feasible point. *)
let check_against_cold st p obj result =
  (* an Exhausted warm solve is budget-dependent, not a disagreement *)
  if result = Lp.Exhausted then ()
  else
  let ok =
    match (result, Lp.minimize ~nonneg:st.nonneg p obj) with
    | Lp.Optimal (v, x), Lp.Optimal (v', _) ->
      Q.equal v v'
      && Polyhedron.contains p x
      && ((not st.nonneg) || Array.for_all (fun q -> Q.sign q >= 0) x)
    | Lp.Infeasible, Lp.Infeasible | Lp.Unbounded, Lp.Unbounded -> true
    | _ -> false
  in
  if not ok then failwith "Ilp.Bb.self_check: warm and cold solves disagree"

(* Charge one branch-and-bound node; [false] latches [gave_up] so the
   whole tree unwinds without raising. *)
let charge_node st =
  match st.budget with
  | None -> true
  | Some b ->
    let ok = Budget.spend_node b in
    if not ok then st.gave_up <- true;
    ok

let rec branch st p obj ~src =
  if st.gave_up then ()
  else if st.nodes >= st.max_nodes then st.gave_up <- true
  else if not (charge_node st) then ()
  else begin
    st.nodes <- st.nodes + 1;
    incr Counters.bb_nodes;
    let result, warm =
      match src with
      | Cold -> Lp.minimize_warm ~nonneg:st.nonneg ?budget:st.budget p obj
      | Warm (w, cs) ->
        let r, w' = Lp.reoptimize ?budget:st.budget w ~add:cs ~obj in
        if !self_check then check_against_cold st p obj r;
        (r, w')
    in
    if st.nodes = 1 then st.root_warm <- warm;
    match result with
    | Lp.Infeasible -> ()
    | Lp.Unbounded -> st.saw_unbounded <- true
    | Lp.Exhausted -> st.gave_up <- true
    | Lp.Optimal (v, x) ->
      let dominated =
        match st.incumbent with
        | Some (best, _) -> Q.compare v best >= 0
        | None -> false
      in
      if not dominated then begin
        match first_fractional x with
        | None ->
          st.incumbent <- Some (v, to_int_point x);
          if st.stop_at_first then raise Found_first
        | Some i ->
          let dim = Polyhedron.dim p in
          let child c =
            match warm with
            | Some w when st.use_warm -> Warm (w, [ c ])
            | _ -> Cold
          in
          let le = le_branch dim i x.(i) and ge = ge_branch dim i x.(i) in
          branch st (Polyhedron.add p le) obj ~src:(child le);
          branch st (Polyhedron.add p ge) obj ~src:(child ge)
      end
  end

let run ?(max_nodes = 20000) ?(stop_at_first = false) ?(nonneg = false)
    ?(use_warm = true) ?budget ?root_src p obj =
  incr Counters.ilp_solves;
  let st =
    {
      nonneg;
      use_warm;
      incumbent = None;
      nodes = 0;
      saw_unbounded = false;
      gave_up = false;
      root_warm = None;
      max_nodes;
      stop_at_first;
      budget;
    }
  in
  let src =
    match root_src with
    | Some (w, cs) when use_warm -> Warm (w, cs)
    | _ -> Cold
  in
  (try branch st p obj ~src with Found_first -> ());
  if Obs.Trace.on () then
    Obs.Trace.instant ~cat:"ilp" "ilp.bb"
      ~args:
        [
          ("nodes", Obs.Json.Int st.nodes);
          ("warm-rooted", Obs.Json.Bool (match src with Warm _ -> true | Cold -> false));
          ( "outcome",
            Obs.Json.Str
              (match st.incumbent with
              | Some _ -> if st.saw_unbounded then "unbounded" else "optimal"
              | None ->
                if st.saw_unbounded then "unbounded"
                else if st.gave_up then "gave-up"
                else "infeasible") );
        ];
  st

let answer_of st =
  match st.incumbent with
  | Some (v, x) -> if st.saw_unbounded then Unbounded else Optimal (v, x)
  | None ->
    if st.saw_unbounded then Unbounded
    else if st.gave_up then Gave_up
    else Infeasible

let minimize ?max_nodes ?nonneg ?budget p obj =
  if Vec.dim obj <> Polyhedron.dim p + 1 then
    invalid_arg "Ilp.minimize: objective length";
  answer_of (run ?max_nodes ?nonneg ?budget p obj)

(* [integer_point] deliberately searches cold: warm re-solves can land
   on a different optimal vertex of a degenerate LP, which would change
   the branching path and therefore *which* integer point is found
   first. Keeping this search cold makes the returned point — the one
   the scheduler embeds into schedules — independent of the warm-start
   machinery. *)
let integer_point ?max_nodes ?nonneg ?budget p =
  let obj = Vec.zero (Polyhedron.dim p + 1) in
  let st =
    run ?max_nodes ~stop_at_first:true ?nonneg ~use_warm:false ?budget p obj
  in
  Option.map snd st.incumbent

let feasible ?budget p =
  if Polyhedron.is_empty p then false
  else begin
    let obj = Vec.zero (Polyhedron.dim p + 1) in
    let st = run ~stop_at_first:true ?budget p obj in
    match st.incumbent with
    | Some _ -> true
    | None ->
      (* no integer point found: exact "no" if the search completed,
         conservative "yes" (rational-feasible) if it gave up *)
      st.gave_up
  end

let lexmin ?max_nodes ?nonneg ?budget p objs =
  let dim = Polyhedron.dim p in
  (* [from] carries the previous stage's root-relaxation snapshot plus
     the pending objective-fixing equality, so each stage's root LP is a
     dual-simplex re-solve instead of a fresh two-phase solve. Only the
     stage *values* flow into the fixing constraints (warm-safe: optimal
     values are unique); the final witness point is found cold. *)
  let rec go p from acc = function
    | [] -> (
      (* recover a point optimal for all fixed objectives *)
      match integer_point ?max_nodes ?nonneg ?budget p with
      | Some x -> Some (List.rev acc, x)
      | None -> None)
    | obj :: rest -> (
      let st = run ?max_nodes ?nonneg ?budget ?root_src:from p obj in
      match answer_of st with
      | Optimal (v, _) ->
        (* fix this objective: obj . x + c = v *)
        let fix = Vec.copy obj in
        fix.(dim) <- Q.sub fix.(dim) v;
        let fixc = Constr.make Constr.Eq fix in
        let from' = Option.map (fun w -> (w, [ fixc ])) st.root_warm in
        go (Polyhedron.add p fixc) from' (v :: acc) rest
      | Infeasible | Unbounded | Gave_up -> None)
  in
  go p None [] objs

let remove_redundant p =
  let dim = Polyhedron.dim p in
  let eqs, ineqs =
    List.partition
      (fun c -> Constr.kind c = Constr.Eq)
      (Polyhedron.constraints p)
  in
  (* test each inequality against everything else kept so far *)
  let rec filter kept = function
    | [] -> kept
    | c :: rest ->
      let others = eqs @ kept @ rest in
      let q = Polyhedron.make dim others in
      let obj =
        let v = Vec.copy (Constr.coeffs c) in
        v
      in
      let redundant =
        match Lp.minimize q obj with
        | Lp.Optimal (v, _) -> Q.sign v >= 0
        | Lp.Infeasible -> true (* empty set: anything is implied *)
        | Lp.Unbounded -> false
        | Lp.Exhausted -> false (* unknown: conservatively keep the row *)
      in
      if redundant then filter kept rest else filter (c :: kept) rest
  in
  Polyhedron.make dim (eqs @ filter [] ineqs)
