(** Trace-driven multicore performance model.

    Stands in for the paper's testbed (8-core Sandy Bridge Xeon
    E5-2650): private L1/L2 per model core, a shared L3, fixed access
    latencies, a per-operation compute cost, and barrier costs for
    parallel-loop synchronization.

    Loop handling (coarse-grained parallelism only, as in the paper):
    - the {e outermost} loop of each nest is parallelized when its mark
      allows it: [Parallel] loops split their iterations block-wise
      over the cores and pay one barrier; [Forward] (pipelined) loops
      also split the work but pay one synchronization {e per outer
      iteration} — the paper's "constant communication costs involved
      after the parallel execution of each wavefront";
    - inner loops run sequentially on their core.

    Elapsed time for a parallel region is the maximum over cores of the
    cycles they accumulated, plus synchronization. Caches are scaled
    down with the scaled-down problem sizes (see DESIGN.md). *)

type config = {
  cores : int;
  l1_bytes : int;
  l1_assoc : int;
  l2_bytes : int;
  l2_assoc : int;
  l3_bytes : int;
  l3_assoc : int;
  line_bytes : int;
  lat_l1 : int;
  lat_l2 : int;
  lat_l3 : int;
  lat_mem : int;
  op_cost : int;
  barrier_cost : int;
  combine_cost : int;
      (** per-core cost of merging privatized partial accumulators
          after a [Parallel_reduction] loop: the loop pays
          [barrier_cost + cores * combine_cost] at its single barrier *)
  sequential : bool;  (** force everything onto one core (icc -O3 without -parallel, or a serial baseline) *)
  simd_width : int;
      (** arithmetic throughput multiplier applied inside {e innermost}
          loops that are communication-free ([Parallel] mark) and
          guard-free (single shared bound group, unit-determinant
          instances) - a first-order model of auto-vectorization; 1
          disables it (the default: the paper's evaluation argues
          through caches and synchronization, vectorization is an
          opt-in refinement) *)
}

(** 8 cores; 4KB/16KB private, 128KB shared caches (scaled); latencies
    4/12/40/220 cycles; 64B lines; barrier 3000 cycles; combine 400
    cycles per core. *)
val default : config

val with_cores : int -> config -> config

type stats = {
  cycles : int;
  instances : int;  (** executed statement instances *)
  flops : int;
  accesses : int;
  l1_misses : int;
  l2_misses : int;
  l3_misses : int;
  barriers : int;  (** synchronization events charged *)
}

(** [simulate ?config prog ast ~params] executes the AST once (with real
    array semantics) while modeling time. Fresh memory, fresh caches. *)
val simulate :
  ?config:config -> Scop.Program.t -> Codegen.Ast.node -> params:int array -> stats

(** Convenience: seconds at the modeled 2 GHz clock. *)
val seconds : stats -> float

val pp_stats : Format.formatter -> stats -> unit
