type config = {
  cores : int;
  l1_bytes : int;
  l1_assoc : int;
  l2_bytes : int;
  l2_assoc : int;
  l3_bytes : int;
  l3_assoc : int;
  line_bytes : int;
  lat_l1 : int;
  lat_l2 : int;
  lat_l3 : int;
  lat_mem : int;
  op_cost : int;
  barrier_cost : int;
  combine_cost : int;
  sequential : bool;
  simd_width : int;
}

let default =
  {
    cores = 8;
    l1_bytes = 4 * 1024;
    l1_assoc = 4;
    l2_bytes = 16 * 1024;
    l2_assoc = 8;
    l3_bytes = 128 * 1024;
    l3_assoc = 16;
    line_bytes = 64;
    lat_l1 = 4;
    lat_l2 = 12;
    lat_l3 = 40;
    lat_mem = 220;
    op_cost = 2;
    barrier_cost = 3000;
    combine_cost = 400;
    sequential = false;
    simd_width = 1;
  }

let with_cores cores cfg = { cfg with cores }

type stats = {
  cycles : int;
  instances : int;
  flops : int;
  accesses : int;
  l1_misses : int;
  l2_misses : int;
  l3_misses : int;
  barriers : int;
}

type core = { l1 : Cache.t; l2 : Cache.t; mutable busy : int }

let simulate ?(config = default) (prog : Scop.Program.t) ast ~params =
  let ncores = if config.sequential then 1 else config.cores in
  let cores =
    Array.init ncores (fun _ ->
        {
          l1 =
            Cache.create ~size_bytes:config.l1_bytes
              ~line_bytes:config.line_bytes ~assoc:config.l1_assoc ();
          l2 =
            Cache.create ~size_bytes:config.l2_bytes
              ~line_bytes:config.line_bytes ~assoc:config.l2_assoc ();
          busy = 0;
        })
  in
  let l3 =
    Cache.create ~size_bytes:config.l3_bytes ~line_bytes:config.line_bytes
      ~assoc:config.l3_assoc ()
  in
  let current = ref 0 in
  let accesses = ref 0 in
  let instances = ref 0 in
  let flops = ref 0 in
  let barriers = ref 0 in
  let op_counts =
    Array.map (fun (s : Scop.Statement.t) -> Scop.Expr.op_count s.rhs) prog.stmts
  in
  let on_access _kind addr =
    incr accesses;
    let core = cores.(!current) in
    let lat =
      if Cache.access core.l1 ~addr then config.lat_l1
      else if Cache.access core.l2 ~addr then config.lat_l2
      else if Cache.access l3 ~addr then config.lat_l3
      else config.lat_mem
    in
    core.busy <- core.busy + lat
  in
  let simd = ref 1 in
  let on_stmt id =
    incr instances;
    let ops = op_counts.(id) in
    flops := !flops + ops;
    let core = cores.(!current) in
    (* vectorized iterations amortize the arithmetic over simd lanes *)
    core.busy <- core.busy + (max 1 (ops * config.op_cost / !simd))
  in
  let mem = Interp.init_memory prog ~params in
  let exec = Interp.instance_runner ~on_access ~on_stmt prog mem ~params in
  let y = Array.make 64 0 in
  let time = ref 0 in
  (* vectorizable: an innermost loop, communication-free, whose
     statements share one bound group and invert without guards *)
  let rec guard_free = function
    | Codegen.Ast.Seq nodes -> List.for_all guard_free nodes
    | Codegen.Ast.Exec inst ->
      inst.Codegen.Ast.det = 1 && Array.length inst.Codegen.Ast.const_rows = 0
    | Codegen.Ast.Loop _ -> false (* not innermost *)
  in
  let vectorizable (l : Codegen.Ast.loop) =
    config.simd_width > 1
    && Codegen.Ast.to_loop_class l.Codegen.Ast.par = Pluto.Satisfy.Parallel
    && List.length (List.sort_uniq compare l.Codegen.Ast.lb_groups) = 1
    && List.length (List.sort_uniq compare l.Codegen.Ast.ub_groups) = 1
    && guard_free l.Codegen.Ast.body
  in
  (* sequential walk, charging the current core *)
  let rec walk_seq node =
    match node with
    | Codegen.Ast.Seq nodes -> List.iter walk_seq nodes
    | Codegen.Ast.Exec inst -> exec inst ~y
    | Codegen.Ast.Loop l ->
      let outer = Array.sub y 0 l.level in
      let lb, ub = Codegen.Ast.loop_range l ~outer ~params in
      let saved = !simd in
      if vectorizable l then simd := config.simd_width;
      for v = lb to ub do
        y.(l.level) <- v;
        walk_seq l.body
      done;
      simd := saved
  in
  (* top level: sequence of nests; parallelize outermost loops *)
  let rec walk_top node =
    match node with
    | Codegen.Ast.Seq nodes -> List.iter walk_top nodes
    | Codegen.Ast.Exec inst ->
      current := 0;
      let before = cores.(0).busy in
      exec inst ~y;
      time := !time + (cores.(0).busy - before)
    | Codegen.Ast.Loop l ->
      let outer = Array.sub y 0 l.level in
      let lb, ub = Codegen.Ast.loop_range l ~outer ~params in
      let total = ub - lb + 1 in
      if total <= 0 then ()
      else if
        config.sequential || ncores = 1
        || Codegen.Ast.to_loop_class l.par = Pluto.Satisfy.Sequential
      then begin
        current := 0;
        let before = cores.(0).busy in
        for v = lb to ub do
          y.(l.level) <- v;
          walk_seq l.body
        done;
        time := !time + (cores.(0).busy - before)
      end
      else begin
        (* block partitioning over the model cores; chunk c covers
           [lb + c*total/ncores, lb + (c+1)*total/ncores) *)
        let before = Array.map (fun c -> c.busy) cores in
        for c = 0 to ncores - 1 do
          let from = lb + (c * total / ncores) in
          let upto = lb + ((c + 1) * total / ncores) - 1 in
          current := c;
          for v = from to upto do
            y.(l.level) <- v;
            walk_seq l.body
          done
        done;
        let elapsed = ref 0 in
        Array.iteri
          (fun i c -> elapsed := max !elapsed (c.busy - before.(i)))
          cores;
        let sync =
          match Codegen.Ast.to_loop_class l.par with
          | Pluto.Satisfy.Parallel -> config.barrier_cost
          | Pluto.Satisfy.Parallel_reduction ->
            (* privatize-and-combine epilogue: each worker's partial
               accumulator is merged after the barrier *)
            config.barrier_cost + (ncores * config.combine_cost)
          | Pluto.Satisfy.Forward | Pluto.Satisfy.Sequential ->
            (* pipelined wavefronts: one synchronization per outer
               iteration *)
            total * config.barrier_cost
        in
        barriers := !barriers + (sync / config.barrier_cost);
        time := !time + !elapsed + sync
      end
  in
  walk_top ast;
  let l1_misses = Array.fold_left (fun acc c -> acc + Cache.misses c.l1) 0 cores in
  let l2_misses = Array.fold_left (fun acc c -> acc + Cache.misses c.l2) 0 cores in
  {
    cycles = !time;
    instances = !instances;
    flops = !flops;
    accesses = !accesses;
    l1_misses;
    l2_misses;
    l3_misses = Cache.misses l3;
    barriers = !barriers;
  }

let seconds st = float_of_int st.cycles /. 2.0e9

let pp_stats fmt st =
  Format.fprintf fmt
    "cycles=%d instances=%d flops=%d accesses=%d l1m=%d l2m=%d l3m=%d barriers=%d"
    st.cycles st.instances st.flops st.accesses st.l1_misses st.l2_misses
    st.l3_misses st.barriers
