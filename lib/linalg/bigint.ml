(* Arbitrary-precision signed integers with an immediate fast path.

   Values that fit a native OCaml int (63 bits) are carried unboxed as
   [Small of int]; everything else falls back to [Big], a sign +
   magnitude bignum in base 2^30 (little-endian int array, no zero
   digit at the top, division by Knuth's Algorithm D, TAOCP 4.3.1).

   Canonicality invariant: a [Big] never represents a value that fits a
   native int. Every operation that could shrink a value re-checks and
   demotes, so [Small]/[Small] fast paths (native +, *, /, gcd with an
   overflow check) cover the overwhelming share of polyhedral-pipeline
   arithmetic, and structural forms of [compare]/[equal]/[hash] stay
   cheap and correct.

   All digit-level products fit a native int: 2^30 * 2^30 = 2^60 < 2^62. *)

let base_bits = 30
let base = 1 lsl base_bits (* 2^30 *)
let digit_mask = base - 1

type big = { sign : int; mag : int array }
(* invariants: sign = 0 iff mag = [||]; otherwise sign is 1 or -1 and the
   highest digit of mag is non-zero; every digit is in [0, base). *)

type t = Small of int | Big of big

let zero = Small 0
let one = Small 1
let two = Small 2
let minus_one = Small (-1)

(* Chaos hook (fault injection for the test suite): when set, the
   Small/Small fast paths of add/sub/mul/divmod/gcd are disabled and
   every operation runs the Big (promotion) route. Results are still
   canonical — [of_big] demotes them — so values, comparisons and
   hashes are unchanged; only the computation path differs. *)
let chaos_big_path = ref false

let of_int n = Small n

let mag_norm (m : int array) : int array =
  let n = ref (Array.length m) in
  while !n > 0 && m.(!n - 1) = 0 do decr n done;
  if !n = Array.length m then m else Array.sub m 0 !n

(* value of a magnitude as a non-negative native int, if < 2^62 *)
let mag_to_int_opt (m : int array) =
  match Array.length m with
  | 0 -> Some 0
  | 1 -> Some m.(0)
  | 2 -> Some ((m.(1) lsl base_bits) lor m.(0))
  | 3 when m.(2) < 4 ->
    Some ((m.(2) lsl (2 * base_bits)) lor (m.(1) lsl base_bits) lor m.(0))
  | _ -> None

(* magnitude of min_int (2^62) — the one value whose magnitude does not
   fit a non-negative native int yet whose negation is a Small *)
let is_min_int_mag (m : int array) =
  Array.length m = 3 && m.(2) = 4 && m.(1) = 0 && m.(0) = 0

(* canonicalizing constructor: normalize the magnitude and demote to
   [Small] whenever the value fits a native int *)
let of_big sign (mag : int array) =
  let mag = mag_norm mag in
  if Array.length mag = 0 then Small 0
  else begin
    match mag_to_int_opt mag with
    | Some v ->
      incr Counters.demotions;
      Small (if sign < 0 then -v else v)
    | None ->
      if sign < 0 && is_min_int_mag mag then begin
        incr Counters.demotions;
        Small Stdlib.min_int
      end
      else Big { sign; mag }
  end

(* promote a native int to the big representation (records a promotion:
   callers reach this only when a fast path overflowed or an operand was
   already Big) *)
let big_of_small n : big =
  if n = 0 then { sign = 0; mag = [||] }
  else begin
    let sign = if n > 0 then 1 else -1 in
    (* min_int's absolute value overflows; peel digits off using mod that
       works on negative numbers instead. *)
    let rec digits n acc =
      if n = 0 then List.rev acc
      else digits (n / base) (abs (n mod base) :: acc)
    in
    { sign; mag = Array.of_list (digits n []) }
  end

let to_big = function
  | Small n ->
    incr Counters.promotions;
    big_of_small n
  | Big b -> b

let sign = function
  | Small n -> Stdlib.compare n 0
  | Big b -> b.sign

let is_zero = function Small 0 -> true | _ -> false
let is_one = function Small 1 -> true | _ -> false

let mag_cmp a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

(* canonicality makes the mixed cases trivial: a Big is always outside
   the native range, so its sign decides *)
let compare x y =
  match (x, y) with
  | Small a, Small b -> Stdlib.compare a b
  | Big a, Big b ->
    if a.sign <> b.sign then Stdlib.compare a.sign b.sign
    else a.sign * mag_cmp a.mag b.mag
  | Small _, Big b -> -b.sign
  | Big a, Small _ -> a.sign

let equal x y =
  match (x, y) with
  | Small a, Small b -> a = b
  | Big a, Big b -> a.sign = b.sign && mag_cmp a.mag b.mag = 0
  | Small _, Big _ | Big _, Small _ -> false

let hash = function
  | Small n -> n
  | Big b -> Array.fold_left (fun h d -> (h * 131) + d) b.sign b.mag

(* --- magnitude arithmetic ------------------------------------------- *)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      !carry
      + (if i < la then a.(i) else 0)
      + (if i < lb then b.(i) else 0)
    in
    r.(i) <- s land digit_mask;
    carry := s lsr base_bits
  done;
  mag_norm r

(* requires a >= b *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  assert (!borrow = 0);
  mag_norm r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      if ai <> 0 then begin
        for j = 0 to lb - 1 do
          let t = (ai * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- t land digit_mask;
          carry := t lsr base_bits
        done;
        (* propagate the final carry *)
        let k = ref (i + lb) in
        while !carry <> 0 do
          let t = r.(!k) + !carry in
          r.(!k) <- t land digit_mask;
          carry := t lsr base_bits;
          incr k
        done
      end
    done;
    mag_norm r
  end

(* shift a magnitude left by [bits] (< base_bits) bits *)
let mag_shl a bits =
  if bits = 0 then Array.copy a
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let t = (a.(i) lsl bits) lor !carry in
      r.(i) <- t land digit_mask;
      carry := t lsr base_bits
    done;
    r.(la) <- !carry;
    mag_norm r
  end

(* shift right by [bits] (< base_bits) bits *)
let mag_shr a bits =
  if bits = 0 then Array.copy a
  else begin
    let la = Array.length a in
    let r = Array.make la 0 in
    for i = 0 to la - 1 do
      let lo = a.(i) lsr bits in
      let hi = if i + 1 < la then (a.(i + 1) lsl (base_bits - bits)) land digit_mask else 0 in
      r.(i) <- lo lor hi
    done;
    mag_norm r
  end

(* divide magnitude by a single digit; returns (quotient, remainder digit) *)
let mag_divmod_digit a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (mag_norm q, !r)

(* Knuth Algorithm D. Requires |b| >= 2 digits and a >= b. *)
let mag_divmod_knuth a b =
  let n = Array.length b in
  (* normalize so the top digit of v is >= base/2 *)
  let shift =
    let top = b.(n - 1) in
    let s = ref 0 in
    let t = ref top in
    while !t < base / 2 do t := !t lsl 1; incr s done;
    !s
  in
  let u0 = mag_shl a shift in
  let v = mag_shl b shift in
  assert (Array.length v = n);
  (* u gets one extra (possibly zero) top digit *)
  let m = Array.length u0 - n in
  let u = Array.make (Array.length u0 + 1) 0 in
  Array.blit u0 0 u 0 (Array.length u0);
  let q = Array.make (m + 1) 0 in
  let vn1 = v.(n - 1) and vn2 = v.(n - 2) in
  for j = m downto 0 do
    (* estimate q-hat from the top two digits of the running remainder *)
    let top2 = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
    let qhat = ref (top2 / vn1) and rhat = ref (top2 mod vn1) in
    let adjust = ref true in
    while !adjust do
      if !qhat >= base || !qhat * vn2 > ((!rhat lsl base_bits) lor u.(j + n - 2))
      then begin
        decr qhat;
        rhat := !rhat + vn1;
        if !rhat >= base then adjust := false
      end
      else adjust := false
    done;
    (* multiply and subtract: u[j .. j+n] -= qhat * v *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr base_bits;
      let d = u.(i + j) - (p land digit_mask) - !borrow in
      if d < 0 then begin u.(i + j) <- d + base; borrow := 1 end
      else begin u.(i + j) <- d; borrow := 0 end
    done;
    let d = u.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* q-hat was one too large: add v back *)
      u.(j + n) <- d + base;
      decr qhat;
      let c = ref 0 in
      for i = 0 to n - 1 do
        let s = u.(i + j) + v.(i) + !c in
        u.(i + j) <- s land digit_mask;
        c := s lsr base_bits
      done;
      u.(j + n) <- (u.(j + n) + !c) land digit_mask
    end
    else u.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = mag_shr (mag_norm (Array.sub u 0 n)) shift in
  (mag_norm q, r)

let mag_divmod a b =
  match Array.length b with
  | 0 -> raise Division_by_zero
  | _ when mag_cmp a b < 0 -> ([||], Array.copy a)
  | 1 ->
    let q, r = mag_divmod_digit a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  | _ -> mag_divmod_knuth a b

(* --- signed operations ---------------------------------------------- *)

let neg = function
  | Small n ->
    if n = Stdlib.min_int then begin
      (* |min_int| = 2^62 does not fit a native int: promote *)
      incr Counters.promotions;
      Big { sign = 1; mag = (big_of_small n).mag }
    end
    else Small (-n)
  | Big b -> of_big (-b.sign) b.mag (* -2^62 demotes back to min_int *)

let abs x = if sign x < 0 then neg x else x

(* big-path add; both operands in big form, result canonicalized *)
let big_add (x : big) (y : big) =
  if x.sign = 0 then of_big y.sign y.mag
  else if y.sign = 0 then of_big x.sign x.mag
  else if x.sign = y.sign then of_big x.sign (mag_add x.mag y.mag)
  else begin
    let c = mag_cmp x.mag y.mag in
    if c = 0 then Small 0
    else if c > 0 then of_big x.sign (mag_sub x.mag y.mag)
    else of_big y.sign (mag_sub y.mag x.mag)
  end

let add x y =
  match (x, y) with
  | Small 0, _ -> y
  | _, Small 0 -> x
  | Small a, Small b when not !chaos_big_path ->
    let s = a + b in
    (* two's-complement overflow: operands agree in sign, sum does not *)
    if (a lxor s) land (b lxor s) < 0 then big_add (to_big x) (to_big y)
    else Small s
  | _ -> big_add (to_big x) (to_big y)

let sub x y =
  match (x, y) with
  | Small a, Small b when not !chaos_big_path ->
    let s = a - b in
    (* overflow: operands differ in sign and the result left a's sign *)
    if (a lxor b) land (a lxor s) < 0 then big_add (to_big x) (to_big (neg y))
    else Small s
  | _ -> add x (neg y)

let succ x = add x one
let pred x = sub x one

(* |a|, |b| <= 2^31 - 1 guarantees the native product fits (< 2^62) *)
let small_mul_fits a = -0x8000_0000 < a && a < 0x8000_0000

let big_mul (x : big) (y : big) =
  if x.sign = 0 || y.sign = 0 then Small 0
  else of_big (x.sign * y.sign) (mag_mul x.mag y.mag)

let mul x y =
  match (x, y) with
  | Small 0, _ | _, Small 0 -> Small 0
  | Small 1, _ -> y
  | _, Small 1 -> x
  | Small (-1), _ -> neg y
  | _, Small (-1) -> neg x
  | Small a, Small b when not !chaos_big_path ->
    if small_mul_fits a && small_mul_fits b then Small (a * b)
    else begin
      (* checked multiply: with |b| >= 2 the division below cannot trap
         and detects wrap-around exactly *)
      let p = a * b in
      if p / b = a then Small p else big_mul (to_big x) (to_big y)
    end
  | _ -> big_mul (to_big x) (to_big y)

let big_divmod (a : big) (b : big) =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (Small 0, Small 0)
  else begin
    let qm, rm = mag_divmod a.mag b.mag in
    (of_big (a.sign * b.sign) qm, of_big a.sign rm)
  end

let divmod a b =
  match (a, b) with
  | _, Small 0 -> raise Division_by_zero
  | Small x, Small y when not !chaos_big_path ->
    if y = -1 then (neg a, Small 0) (* min_int / -1 would trap *)
    else (Small (x / y), Small (x mod y))
  | Big _, Small y when y = -1 -> (neg a, Small 0)
  | _ -> big_divmod (to_big a) (to_big b)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let fdiv a b =
  let q, r = divmod a b in
  if (not (is_zero r)) && sign r <> sign b then sub q one else q

let cdiv a b =
  let q, r = divmod a b in
  if (not (is_zero r)) && sign r = sign b then add q one else q

(* native Euclid on non-negative ints *)
let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)

(* gcd over magnitudes; finishes with native Euclid once the remainder
   fits an int *)
let rec big_gcd (a : big) (b : big) =
  if b.sign = 0 then of_big 1 a.mag
  else begin
    let _, r = mag_divmod a.mag b.mag in
    match mag_to_int_opt b.mag with
    | Some bv ->
      (match mag_to_int_opt r with
      | Some rv -> Small (gcd_int bv rv)
      | None -> assert false (* |r| < |b| fits a native int *))
    | None ->
      big_gcd { sign = 1; mag = b.mag }
        { sign = (if Array.length r = 0 then 0 else 1); mag = r }
  end

let gcd a b =
  match (a, b) with
  | Small x, Small y when not !chaos_big_path ->
    if x = Stdlib.min_int || y = Stdlib.min_int then
      big_gcd (to_big (abs a)) (to_big (abs b))
    else Small (gcd_int (Stdlib.abs x) (Stdlib.abs y))
  | _ -> big_gcd (to_big (abs a)) (to_big (abs b))

let lcm a b =
  if is_zero a || is_zero b then Small 0
  else abs (div (mul a b) (gcd a b))

let mul_int x n = mul x (Small n)

let pow x n =
  if Stdlib.(n < 0) then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b n =
    if n = 0 then acc
    else go (if n land 1 = 1 then mul acc b else acc) (mul b b) (n lsr 1)
  in
  go one x n

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* --- conversions ----------------------------------------------------- *)

(* canonicality: a Big never fits a native int *)
let fits_int = function Small _ -> true | Big _ -> false

let to_int_opt = function Small n -> Some n | Big _ -> None

let to_int = function
  | Small n -> n
  | Big _ -> failwith "Bigint.to_int: does not fit"

let to_float = function
  | Small n -> float_of_int n
  | Big b ->
    let m =
      Array.fold_right
        (fun d acc -> (acc *. 1073741824.0) +. float_of_int d)
        b.mag 0.0
    in
    float_of_int b.sign *. m

let to_string = function
  | Small n -> string_of_int n
  | Big b ->
    let buf = Buffer.create 16 in
    let rec chunks m acc =
      if Array.length m = 0 then acc
      else begin
        let q, r = mag_divmod_digit m 1000000000 in
        chunks q (r :: acc)
      end
    in
    (match chunks b.mag [] with
    | [] -> "0"
    | first :: rest ->
      if Stdlib.(b.sign < 0) then Buffer.add_char buf '-';
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest;
      Buffer.contents buf)

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty";
  let sign, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let ten = Small 10 in
  for i = start to n - 1 do
    let c = s.[i] in
    if Stdlib.(c < '0' || c > '9') then invalid_arg "Bigint.of_string: bad digit";
    acc := add (mul !acc ten) (Small (Char.code c - Char.code '0'))
  done;
  if sign = -1 then neg !acc else !acc

(* --- representation introspection (tests and diagnostics) ------------ *)

let is_small = function Small _ -> true | Big _ -> false

let force_big x =
  match x with
  | Small _ -> Big (to_big x)
  | Big _ -> x

(* --- operators & printing ------------------------------------------- *)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( = ) = equal
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0

let pp fmt x = Format.pp_print_string fmt (to_string x)
