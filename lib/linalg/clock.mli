(** Monotonic interval clock (CLOCK_MONOTONIC, nanosecond resolution).

    The origin is arbitrary — readings are meaningful only as
    differences. Unlike [Unix.gettimeofday], NTP steps never move this
    clock, so latencies, uptimes and deadlines derived from it cannot
    go negative. Used by {!Budget} deadlines, the serving daemon's
    per-request timing, and the bench harness. *)

val now : unit -> float
(** Seconds since an arbitrary fixed origin. *)

val elapsed_ms : since:float -> float
(** [elapsed_ms ~since] is [(now () -. since) *. 1e3]. *)

val elapsed_us : since:float -> float
