(* Canonical rationals: den > 0, gcd (num, den) = 1, zero = 0/1.

   The arithmetic below leans on canonicality to keep intermediates
   small (Knuth 4.5.1): multiplication cross-reduces before
   multiplying, addition folds out gcd (den1, den2), and the inverse
   needs no gcd at all. Combined with Bigint's immediate small-int
   representation this keeps the simplex hot path on native ints. *)

type t = { num : Bigint.t; den : Bigint.t }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero
  else if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den =
      if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den)
      else (num, den)
    in
    let g = Bigint.gcd num den in
    if Bigint.is_one g then { num; den }
    else { num = Bigint.div num g; den = Bigint.div den g }
  end

let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints n d = make (Bigint.of_int n) (Bigint.of_int d)

let zero = of_int 0
let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let num q = q.num
let den q = q.den

let sign q = Bigint.sign q.num
let is_zero q = Bigint.is_zero q.num
let is_integer q = Bigint.is_one q.den

let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den

let compare a b =
  (* cheap discriminations first: sign, then shared denominators *)
  let sa = Bigint.sign a.num and sb = Bigint.sign b.num in
  if sa <> sb then Stdlib.compare sa sb
  else if Bigint.equal a.den b.den then Bigint.compare a.num b.num
  else
    (* a.num/a.den ? b.num/b.den <=> a.num*b.den ? b.num*a.den (dens > 0) *)
    Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let neg q = if is_zero q then q else { q with num = Bigint.neg q.num }
let abs q = if Bigint.sign q.num < 0 then { q with num = Bigint.neg q.num } else q

(* shared addition core; [bnum] is the (possibly negated) numerator of b *)
let add_core a bnum bden =
  if Bigint.is_one a.den && Bigint.is_one bden then
    { num = Bigint.add a.num bnum; den = Bigint.one }
  else begin
    (* Knuth 4.5.1: with g = gcd (d1, d2), the candidate numerator
       t = n1*(d2/g) + n2*(d1/g) over d1*(d2/g) only needs reducing by
       gcd (t, g) — much smaller gcds than reducing the naive cross
       product, and no reduction at all in the common coprime case. *)
    let g = Bigint.gcd a.den bden in
    if Bigint.is_one g then
      { num = Bigint.add (Bigint.mul a.num bden) (Bigint.mul bnum a.den);
        den = Bigint.mul a.den bden }
    else begin
      let d2' = Bigint.div bden g in
      let t =
        Bigint.add (Bigint.mul a.num d2') (Bigint.mul bnum (Bigint.div a.den g))
      in
      if Bigint.is_zero t then { num = Bigint.zero; den = Bigint.one }
      else begin
        let g2 = Bigint.gcd t g in
        if Bigint.is_one g2 then { num = t; den = Bigint.mul a.den d2' }
        else
          { num = Bigint.div t g2;
            den = Bigint.mul (Bigint.div a.den g2) d2' }
      end
    end
  end

let add a b =
  if Bigint.is_zero a.num then b
  else if Bigint.is_zero b.num then a
  else add_core a b.num b.den

let sub a b =
  if Bigint.is_zero b.num then a
  else if Bigint.is_zero a.num then neg b
  else add_core a (Bigint.neg b.num) b.den

let mul a b =
  if Bigint.is_zero a.num || Bigint.is_zero b.num then zero
  else if Bigint.is_one a.den && Bigint.is_one b.den then
    { num = Bigint.mul a.num b.num; den = Bigint.one }
  else begin
    (* cross-reduce: gcd (n1, d2) and gcd (n2, d1) strip all common
       factors up front, so the products below are already canonical *)
    let g1 = Bigint.gcd a.num b.den and g2 = Bigint.gcd b.num a.den in
    let n1 = if Bigint.is_one g1 then a.num else Bigint.div a.num g1 in
    let d2 = if Bigint.is_one g1 then b.den else Bigint.div b.den g1 in
    let n2 = if Bigint.is_one g2 then b.num else Bigint.div b.num g2 in
    let d1 = if Bigint.is_one g2 then a.den else Bigint.div a.den g2 in
    { num = Bigint.mul n1 n2; den = Bigint.mul d1 d2 }
  end

(* canonical input means no gcd is needed: just swap and fix the sign *)
let inv q =
  let s = Bigint.sign q.num in
  if s = 0 then raise Division_by_zero
  else if s > 0 then { num = q.den; den = q.num }
  else { num = Bigint.neg q.den; den = Bigint.neg q.num }

let div a b =
  if Bigint.is_zero b.num then raise Division_by_zero
  else if Bigint.is_zero a.num then zero
  else mul a (inv b)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let floor q = Bigint.fdiv q.num q.den
let ceil q = Bigint.cdiv q.num q.den

let to_bigint q =
  if is_integer q then q.num else failwith "Q.to_bigint: not an integer"

let to_float q = Bigint.to_float q.num /. Bigint.to_float q.den

let to_string q =
  if is_integer q then Bigint.to_string q.num
  else Bigint.to_string q.num ^ "/" ^ Bigint.to_string q.den

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( = ) = equal
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0

let pp fmt q = Format.pp_print_string fmt (to_string q)
