(** Arbitrary-precision signed integers with an immediate fast path.

    This module replaces GMP for the exact arithmetic needed by the
    polyhedral substrate (Fourier-Motzkin elimination and exact simplex
    pivoting produce coefficients that overflow native integers).

    The representation is two-variant: values that fit a native OCaml
    [int] are carried unboxed ([Small]), with overflow-checked add, sub
    and mul that promote lazily to the [Big] fallback — sign +
    magnitude, where the magnitude is a little-endian array of
    base-2{^30} digits with no leading zeros. A [Big] never holds a
    value that fits a native [int] (operations demote on the way out),
    so almost all pipeline arithmetic runs on unboxed integers. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val minus_one : t
val two : t

(** {1 Conversions} *)

(** [of_int n] converts a native integer. Total. *)
val of_int : int -> t

(** [to_int x] converts back to a native integer.
    @raise Failure if [x] does not fit in a native [int]. *)
val to_int : t -> int

(** [to_int_opt x] is [Some n] if [x] fits in a native [int]. *)
val to_int_opt : t -> int option

(** [of_string s] parses an optionally-signed decimal literal.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val to_string : t -> string

(** [to_float x] is a best-effort float approximation. *)
val to_float : t -> float

(** {1 Queries} *)

(** [sign x] is [-1], [0] or [1]. *)
val sign : t -> int

val is_zero : t -> bool
val is_one : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** [fits_int x] is [true] iff [to_int x] would succeed. *)
val fits_int : t -> bool

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

(** [divmod a b] is [(q, r)] with [a = q*b + r], [0 <= |r| < |b|] and
    [r] carrying the sign of [a] (truncated division, like OCaml [/]).
    @raise Division_by_zero if [b] is zero. *)
val divmod : t -> t -> t * t

(** Truncated quotient. @raise Division_by_zero if divisor is zero. *)
val div : t -> t -> t

(** Truncated remainder. @raise Division_by_zero if divisor is zero. *)
val rem : t -> t -> t

(** [fdiv a b] is the floor division: largest [q] with [q*b <= a]
    (assuming [b > 0]); more generally floor of the rational quotient.
    @raise Division_by_zero if [b] is zero. *)
val fdiv : t -> t -> t

(** [cdiv a b] is the ceiling of the rational quotient.
    @raise Division_by_zero if [b] is zero. *)
val cdiv : t -> t -> t

(** [gcd a b] is the non-negative greatest common divisor;
    [gcd 0 0 = 0]. *)
val gcd : t -> t -> t

(** [lcm a b] is the non-negative least common multiple. *)
val lcm : t -> t -> t

val mul_int : t -> int -> t

(** [pow x n] for [n >= 0]. @raise Invalid_argument if [n < 0]. *)
val pow : t -> int -> t

val min : t -> t -> t
val max : t -> t -> t

(** {1 Representation introspection}

    For tests and diagnostics. {!Counters.promotions} and
    {!Counters.demotions} track how often values cross the
    [Small]/[Big] boundary. *)

(** [is_small x] is [true] iff [x] is carried in the immediate
    (native-int) representation. Canonically equal to [fits_int]. *)
val is_small : t -> bool

(** [force_big x] is [x] re-encoded in the [Big] (boxed) representation
    even when it fits a native int. The result is {e non-canonical}:
    arithmetic on it is exact and re-canonicalizes, but order
    comparisons between a non-canonical value and a [Small] are
    unspecified. Only for differential testing of the two code paths. *)
val force_big : t -> t

(** Chaos hook (fault injection, test suite only): when set, the
    Small/Small fast paths of [add]/[sub]/[mul]/[divmod]/[gcd] are
    disabled and every operation runs the Big (promotion) route.
    Values stay canonical — results demote — so outputs are identical;
    only the computation path (and {!Counters.promotions}) changes. *)
val chaos_big_path : bool ref

(** {1 Infix operators and printing} *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
