(* Monotonic interval clock.

   Serving and budgeting need interval timing that cannot go backwards:
   [Unix.gettimeofday] follows the system wall clock, so an NTP step
   can produce negative request latencies in response envelopes and
   bench records, or a deadline budget that trips instantly (or
   never). CLOCK_MONOTONIC never steps. The nanosecond reading comes
   from the bechamel monotonic-clock C stub, which the opam switch
   already links for the bench harness; its origin is arbitrary (boot
   time on Linux), so values are meaningful only as differences. *)

let now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

(* Give the tracer monotone timestamps too. [Obs] sits below this
   library and defaults to the wall clock; installing the monotonic
   source at link time (any binary linking linalg initializes the
   whole archive) means trace spans can never run backwards under an
   NTP step either. *)
let () = Obs.Trace.set_clock now

let elapsed_ms ~since = (now () -. since) *. 1e3
let elapsed_us ~since = (now () -. since) *. 1e6
