(** Solver resource budgets: wall-clock time, simplex pivots,
    branch-and-bound nodes.

    A budget is charged by the exact solvers from their hot loops
    ({!Ilp.Lp}, {!Ilp.Bb}) and threaded through the scheduler.
    Exhaustion is {e latched}: once any limit trips, every further
    charge fails immediately, so nested solves unwind quickly. Across
    the public solver APIs exhaustion never raises — it surfaces as a
    typed outcome ([Lp.Exhausted], [Bb.Gave_up]) on which callers run
    their graceful-degradation ladder. *)

type t

(** [make ?ms ?pivots ?nodes ()] — any subset of limits; omitted
    dimensions are unlimited. [ms] is wall-clock from now. *)
val make : ?ms:int -> ?pivots:int -> ?nodes:int -> unit -> t

(** A fresh budget with the same limits, zero consumption and a
    restarted wall clock — one allowance per degradation rung. *)
val refresh : t -> t

(** Latched exhaustion state. *)
val exhausted : t -> bool

(** Force exhaustion (used by the degradation ladder to abandon a
    stage, and by the chaos harness). *)
val trip : t -> unit

(** Charge one simplex pivot / one branch-and-bound node. [false]
    means the budget is exhausted and the caller must stop. *)
val spend_pivot : t -> bool

val spend_node : t -> bool

val pivots_spent : t -> int
val nodes_spent : t -> int

(** Read [WISEFUSE_BUDGET_MS] / [WISEFUSE_BUDGET_PIVOTS] /
    [WISEFUSE_BUDGET_NODES]; [None] when none is set (the unbudgeted
    fast path). Non-positive or malformed values are ignored. *)
val of_env : unit -> t option

(** Short human-readable limit summary, e.g. ["pivots<=100"]. *)
val describe : t -> string

val pp : Format.formatter -> t -> unit
