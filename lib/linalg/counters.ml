(* Process-wide performance counters for the exact-arithmetic pipeline.

   Everything here is deliberately cheap: the hot paths (simplex pivots,
   bignum promotions) bump a plain int ref; the stage timers accumulate
   wall-clock seconds into a small hashtable keyed by stage name. *)

let promotions = ref 0
let demotions = ref 0
let lp_pivots = ref 0
let lp_solves = ref 0
let ilp_solves = ref 0
let bb_nodes = ref 0

(* incremental-engine counters (warm-started dual simplex + Farkas
   memoization) *)
let warm_starts = ref 0
let warm_fallbacks = ref 0
let dual_pivots = ref 0
let farkas_cache_hits = ref 0
let farkas_cache_misses = ref 0

(* wisecheck (lib/analysis) finding counters, bumped once per emitted
   finding so the bench harness can report analysis verdict volumes
   alongside the timing of the "analysis" stage *)
let findings_error = ref 0
let findings_warning = ref 0
let findings_info = ref 0

(* wisereduce counters: reduction facts proven by the detector and
   Parallel_reduction loops certified "race-free up to reduction
   reassociation" by wisecheck *)
let reductions_detected = ref 0
let reductions_certified = ref 0

(* lp-dfp engine counters (per-level LP relaxation + clustering instead
   of branch-and-bound): pure-LP lexmin stages, cluster recovery rounds,
   and levels the clustering could not certify (handed back to the ILP
   engine) *)
let lp_relax_solves = ref 0
let cluster_rounds = ref 0
let dfp_fallbacks = ref 0

(* wiseserve (lib/serve) counters: requests handled by the daemon and
   the hit/miss/eviction traffic of its content-addressed cross-request
   cache. The cache keeps its own authoritative tallies under its lock
   and re-syncs these refs (plain [:=]) after every request, so they
   survive the per-solve [reset] the daemon performs for deterministic
   per-request solver counters. *)
let serve_requests = ref 0
let serve_cache_hits = ref 0
let serve_cache_misses = ref 0
let serve_cache_evictions = ref 0

(* wiseharden counters: requests shed by admission control, requests
   whose escaped exception was firewalled (solver state scrubbed), and
   circuit-breaker traffic (trips = times a fingerprint's breaker
   opened; rejects = requests turned away while one was open). Synced
   from the server's authoritative atomics like the cache tallies. *)
let serve_shed = ref 0
let serve_recovered = ref 0
let serve_breaker_trips = ref 0
let serve_breaker_rejects = ref 0

let all_counters () =
  [ ("lp_solves", !lp_solves);
    ("lp_pivots", !lp_pivots);
    ("ilp_solves", !ilp_solves);
    ("bb_nodes", !bb_nodes);
    ("warm_starts", !warm_starts);
    ("warm_fallbacks", !warm_fallbacks);
    ("dual_pivots", !dual_pivots);
    ("farkas_cache_hits", !farkas_cache_hits);
    ("farkas_cache_misses", !farkas_cache_misses);
    ("findings_error", !findings_error);
    ("findings_warning", !findings_warning);
    ("findings_info", !findings_info);
    ("reductions_detected", !reductions_detected);
    ("reductions_certified", !reductions_certified);
    ("lp_relax_solves", !lp_relax_solves);
    ("cluster_rounds", !cluster_rounds);
    ("dfp_fallbacks", !dfp_fallbacks);
    ("serve_requests", !serve_requests);
    ("serve_cache_hits", !serve_cache_hits);
    ("serve_cache_misses", !serve_cache_misses);
    ("serve_cache_evictions", !serve_cache_evictions);
    ("serve_shed", !serve_shed);
    ("serve_recovered", !serve_recovered);
    ("serve_breaker_trips", !serve_breaker_trips);
    ("serve_breaker_rejects", !serve_breaker_rejects);
    ("big_promotions", !promotions);
    ("big_demotions", !demotions) ]

(* --- stage wall-clock timers ----------------------------------------- *)

(* Timers are exclusive (self-time): when stages nest, the inner stage's
   elapsed time is subtracted from the enclosing stage, so the per-stage
   accumulators are disjoint and sum to at most the outermost wall
   time. *)

let stages : (string, float) Hashtbl.t = Hashtbl.create 8
let stage_order : string list ref = ref []

(* child-time accumulators of the currently active (nested) timers,
   innermost first *)
let active : float ref list ref = ref []

let add_stage name dt =
  match Hashtbl.find_opt stages name with
  | Some acc -> Hashtbl.replace stages name (acc +. dt)
  | None ->
    stage_order := name :: !stage_order;
    Hashtbl.add stages name dt

(* Stage observer: a hook the serving daemon installs to feed each
   completed stage's exclusive duration into its latency histograms
   ([wisefuse_stage_duration_us]). Kept as an [Atomic] function cell so
   installation is race-free against concurrent solves; the default is
   a no-op, so non-serving binaries pay one atomic load per stage. *)
let stage_observer : (string -> float -> unit) Atomic.t =
  Atomic.make (fun _ _ -> ())

let set_stage_observer f = Atomic.set stage_observer f

let time name f =
  (* every stage is also a trace span (category "stage"), so a recorded
     trace can re-derive these accumulators: the span tree's exclusive
     self-times reconcile with [stage_times] *)
  if Obs.Trace.on () then Obs.Trace.begin_span ~cat:"stage" name;
  let t0 = Clock.now () in
  let children = ref 0.0 in
  active := children :: !active;
  Fun.protect
    ~finally:(fun () ->
      let dt = Clock.now () -. t0 in
      (match !active with
      | c :: rest when c == children ->
        active := rest;
        (* charge the whole span to the parent, keep only self time *)
        (match rest with parent :: _ -> parent := !parent +. dt | [] -> ())
      | _ -> () (* unbalanced via an exotic exception path; be lenient *));
      let self = dt -. !children in
      add_stage name self;
      (Atomic.get stage_observer) name self;
      Obs.Trace.end_span name)
    f

let stage_times () =
  List.rev_map (fun n -> (n, Hashtbl.find stages n)) !stage_order

let reset () =
  promotions := 0;
  demotions := 0;
  lp_pivots := 0;
  lp_solves := 0;
  ilp_solves := 0;
  bb_nodes := 0;
  warm_starts := 0;
  warm_fallbacks := 0;
  dual_pivots := 0;
  farkas_cache_hits := 0;
  farkas_cache_misses := 0;
  findings_error := 0;
  findings_warning := 0;
  findings_info := 0;
  reductions_detected := 0;
  reductions_certified := 0;
  lp_relax_solves := 0;
  cluster_rounds := 0;
  dfp_fallbacks := 0;
  serve_requests := 0;
  serve_cache_hits := 0;
  serve_cache_misses := 0;
  serve_cache_evictions := 0;
  serve_shed := 0;
  serve_recovered := 0;
  serve_breaker_trips := 0;
  serve_breaker_rejects := 0;
  Hashtbl.reset stages;
  stage_order := []

let pp fmt () =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (n, v) -> if v <> 0 then Format.fprintf fmt "%-20s %d@," n v)
    (all_counters ());
  List.iter
    (fun (n, s) -> Format.fprintf fmt "%-20s %.3f ms@," n (s *. 1e3))
    (stage_times ());
  Format.fprintf fmt "@]"
