(* Process-wide performance counters for the exact-arithmetic pipeline.

   Everything here is deliberately cheap: the hot paths (simplex pivots,
   bignum promotions) bump a plain int ref; the stage timers accumulate
   wall-clock seconds into a small hashtable keyed by stage name. *)

let promotions = ref 0
let demotions = ref 0
let lp_pivots = ref 0
let lp_solves = ref 0
let ilp_solves = ref 0
let bb_nodes = ref 0

let all_counters () =
  [ ("lp_solves", !lp_solves);
    ("lp_pivots", !lp_pivots);
    ("ilp_solves", !ilp_solves);
    ("bb_nodes", !bb_nodes);
    ("big_promotions", !promotions);
    ("big_demotions", !demotions) ]

(* --- stage wall-clock timers ----------------------------------------- *)

let stages : (string, float) Hashtbl.t = Hashtbl.create 8
let stage_order : string list ref = ref []

let add_stage name dt =
  match Hashtbl.find_opt stages name with
  | Some acc -> Hashtbl.replace stages name (acc +. dt)
  | None ->
    stage_order := name :: !stage_order;
    Hashtbl.add stages name dt

let time name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> add_stage name (Unix.gettimeofday () -. t0)) f

let stage_times () =
  List.rev_map (fun n -> (n, Hashtbl.find stages n)) !stage_order

let reset () =
  promotions := 0;
  demotions := 0;
  lp_pivots := 0;
  lp_solves := 0;
  ilp_solves := 0;
  bb_nodes := 0;
  Hashtbl.reset stages;
  stage_order := []

let pp fmt () =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (n, v) -> if v <> 0 then Format.fprintf fmt "%-16s %d@," n v)
    (all_counters ());
  List.iter
    (fun (n, s) -> Format.fprintf fmt "%-16s %.3f ms@," n (s *. 1e3))
    (stage_times ());
  Format.fprintf fmt "@]"
