(** Process-wide performance counters for the exact-arithmetic pipeline.

    The refs are bumped directly on the hot paths (a single [incr]); the
    stage timers accumulate wall-clock time per named pipeline stage.
    The bench harness and the CLI read these to report where the
    optimization time goes, and the CI benchmark job serializes them
    into [BENCH_pipeline.json]. *)

(** Count of {!Bigint} results that did not fit the immediate [Small]
    representation and had to allocate a [Big] magnitude. *)
val promotions : int ref

(** Count of [Big] results that folded back into [Small]. *)
val demotions : int ref

val lp_pivots : int ref
val lp_solves : int ref

(** Branch-and-bound entries (one per ILP problem). *)
val ilp_solves : int ref

(** Branch-and-bound tree nodes (one LP relaxation each). *)
val bb_nodes : int ref

(** [time stage f] runs [f ()] and adds its wall-clock duration to the
    accumulator for [stage] (even if [f] raises). *)
val time : string -> (unit -> 'a) -> 'a

(** Accumulated (stage, seconds) pairs, in first-use order. *)
val stage_times : unit -> (string * float) list

(** All counters as (name, value) pairs, including zeros. *)
val all_counters : unit -> (string * int) list

(** Reset every counter and timer to zero. *)
val reset : unit -> unit

val pp : Format.formatter -> unit -> unit
