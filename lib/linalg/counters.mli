(** Process-wide performance counters for the exact-arithmetic pipeline.

    The refs are bumped directly on the hot paths (a single [incr]); the
    stage timers accumulate wall-clock time per named pipeline stage.
    The bench harness and the CLI read these to report where the
    optimization time goes, and the CI benchmark job serializes them
    into [BENCH_pipeline.json]. *)

(** Count of {!Bigint} results that did not fit the immediate [Small]
    representation and had to allocate a [Big] magnitude. *)
val promotions : int ref

(** Count of [Big] results that folded back into [Small]. *)
val demotions : int ref

val lp_pivots : int ref
val lp_solves : int ref

(** Branch-and-bound entries (one per ILP problem). *)
val ilp_solves : int ref

(** Branch-and-bound tree nodes (one LP relaxation each). *)
val bb_nodes : int ref

(** {2 Incremental-engine counters} *)

(** LP re-solves that started from a saved basis (dual-simplex
    constraint additions and primal objective swaps) and completed
    without falling back to a cold solve. *)
val warm_starts : int ref

(** Warm re-solves that had to fall back to a cold two-phase solve
    (basis incompatibility or a dual-simplex iteration cap). *)
val warm_fallbacks : int ref

(** Dual-simplex pivots performed by warm re-solves. The total simplex
    effort of a run is [lp_pivots + dual_pivots]. *)
val dual_pivots : int ref

(** Farkas-system memoization: structurally identical dependence
    polyhedra share one multiplier elimination ({!Pluto.Farkas}). *)
val farkas_cache_hits : int ref

val farkas_cache_misses : int ref

(** {2 Static-analysis (wisecheck) counters}

    One bump per finding emitted by [Analysis.Wisecheck.certify],
    keyed by severity. *)

val findings_error : int ref
val findings_warning : int ref
val findings_info : int ref

(** {2 Reduction (wisereduce) counters}

    Facts proven by the reduction detector
    ([Analysis.Reduction.detect]) and [Parallel_reduction] loops
    certified "race-free up to reduction reassociation" by wisecheck. *)

val reductions_detected : int ref
val reductions_certified : int ref

(** {2 LP-dfp engine counters}

    The decoupled scheduling engine (per-level LP relaxation +
    dimension-matching clustering, after pluto-lp-dfp) solves no
    integer programs on its happy path; these separate its work from
    the branch-and-bound counters above. *)

(** Pure-LP lexicographic stages solved by the lp-dfp engine (one per
    objective vector per hyperplane level; no branching). *)
val lp_relax_solves : int ref

(** Cluster recovery rounds: one per dependence-connected statement
    cluster whose rational solution was scaled to an integral
    hyperplane. *)
val cluster_rounds : int ref

(** Levels the clustering could not certify (rational optimum
    unscalable or scaled row not provably legal) and that were handed
    back to the ILP engine. *)
val dfp_fallbacks : int ref

(** {2 Serving (wiseserve) counters}

    Requests handled by the scheduling daemon and the traffic of its
    content-addressed cross-request cache. The cache keeps its own
    authoritative tallies under its lock and re-syncs these refs after
    every request (the daemon resets the solver counters per cold solve
    to keep per-request counter deltas deterministic). *)

val serve_requests : int ref
val serve_cache_hits : int ref
val serve_cache_misses : int ref
val serve_cache_evictions : int ref

(** Requests shed by admission control (typed ["overloaded"]). *)
val serve_shed : int ref

(** Requests whose escaped exception was caught by the serve firewall
    (the global solver state was scrubbed before the lock released). *)
val serve_recovered : int ref

(** Circuit-breaker trips (a fingerprint's failure run crossed the
    threshold and opened) and rejects (requests answered ["breaker"]
    while open). *)
val serve_breaker_trips : int ref

val serve_breaker_rejects : int ref

(** [time stage f] runs [f ()] and adds its wall-clock duration to the
    accumulator for [stage] (even if [f] raises). Timers are
    {e exclusive}: when stages nest, the inner stage's time is
    subtracted from the enclosing stage, so stage times are disjoint
    and sum to at most the outermost wall time. When the {!Obs.Trace}
    sink is on, each stage additionally records a span (category
    ["stage"]), so traces can re-derive these accumulators. *)
val time : string -> (unit -> 'a) -> 'a

(** Install a callback invoked with each completed stage's name and
    {e exclusive} duration in seconds (same accounting as
    {!stage_times}). The serving daemon uses this to feed per-stage
    latency histograms without [linalg] depending on the metrics
    registry. The default is a no-op; installation is atomic, so it is
    safe against concurrent solves. *)
val set_stage_observer : (string -> float -> unit) -> unit

(** Accumulated (stage, seconds) pairs, in first-use order. *)
val stage_times : unit -> (string * float) list

(** All counters as (name, value) pairs, including zeros. *)
val all_counters : unit -> (string * int) list

(** Reset every counter and timer to zero. *)
val reset : unit -> unit

val pp : Format.formatter -> unit -> unit
