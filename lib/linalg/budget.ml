(* Solver resource budgets.

   A budget caps the resources one logical "solve" (an LP, a
   branch-and-bound tree, or a whole scheduling run) may consume:
   wall-clock time, simplex pivots, and branch-and-bound nodes. The
   consumers ([Ilp.Lp], [Ilp.Bb], [Pluto.Scheduler]) charge the budget
   from their hot loops; exhaustion is *latched* — once a budget trips,
   every further charge fails immediately, so a multi-stage computation
   unwinds quickly instead of grinding each stage to its own limit.

   Budgets never raise across a public API: exhaustion surfaces as a
   typed outcome ([Lp.Exhausted], [Bb.Gave_up]) that callers walk their
   degradation ladder on. *)

type t = {
  deadline : float option; (* absolute monotonic time ({!Clock.now}), seconds *)
  max_pivots : int option;
  max_nodes : int option;
  mutable pivots : int;
  mutable nodes : int;
  mutable tripped : bool;
}

(* Deadlines live on the monotonic clock: a wall-clock (NTP) step must
   not trip a budget instantly or extend it indefinitely. *)
let make ?ms ?pivots ?nodes () =
  {
    deadline =
      Option.map (fun m -> Clock.now () +. (float_of_int m /. 1e3)) ms;
    max_pivots = pivots;
    max_nodes = nodes;
    pivots = 0;
    nodes = 0;
    tripped = false;
  }

(* A fresh budget with the same *limits* but zero consumption and a
   restarted clock: each rung of a degradation ladder gets its own
   allowance rather than inheriting an already-tripped budget. *)
let refresh b =
  let remaining_ms =
    Option.map
      (fun d -> max 1 (int_of_float ((d -. Clock.now ()) *. 1e3)))
      b.deadline
  in
  (* keep at least the original per-stage pivot/node caps *)
  {
    deadline =
      Option.map
        (fun ms -> Clock.now () +. (float_of_int ms /. 1e3))
        remaining_ms;
    max_pivots = b.max_pivots;
    max_nodes = b.max_nodes;
    pivots = 0;
    nodes = 0;
    tripped = false;
  }

let exhausted b = b.tripped

let trip b = b.tripped <- true

let over_deadline b =
  match b.deadline with
  | None -> false
  | Some d -> Clock.now () > d

(* [spend_pivot b] charges one simplex pivot; [false] means the budget
   is exhausted and the caller must stop. Cheap: two int compares and
   (only when a wall limit is set) one clock read. *)
let spend_pivot b =
  if b.tripped then false
  else begin
    b.pivots <- b.pivots + 1;
    (match b.max_pivots with
    | Some m when b.pivots > m -> b.tripped <- true
    | _ -> if over_deadline b then b.tripped <- true);
    not b.tripped
  end

let spend_node b =
  if b.tripped then false
  else begin
    b.nodes <- b.nodes + 1;
    (match b.max_nodes with
    | Some m when b.nodes > m -> b.tripped <- true
    | _ -> if over_deadline b then b.tripped <- true);
    not b.tripped
  end

let pivots_spent b = b.pivots
let nodes_spent b = b.nodes

let env_int name =
  match Sys.getenv_opt name with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some v when v > 0 -> Some v
    | _ -> None)

(* WISEFUSE_BUDGET_MS / WISEFUSE_BUDGET_PIVOTS / WISEFUSE_BUDGET_NODES;
   [None] when none of the three is set, so the unbudgeted fast path
   stays the default. *)
let of_env () =
  let ms = env_int "WISEFUSE_BUDGET_MS" in
  let pivots = env_int "WISEFUSE_BUDGET_PIVOTS" in
  let nodes = env_int "WISEFUSE_BUDGET_NODES" in
  match (ms, pivots, nodes) with
  | None, None, None -> None
  | _ -> Some (make ?ms ?pivots ?nodes ())

let describe b =
  let lim name = function
    | Some v -> Printf.sprintf "%s<=%d" name v
    | None -> ""
  in
  let parts =
    List.filter
      (fun s -> s <> "")
      [
        (match b.deadline with Some _ -> "wall-clock" | None -> "");
        lim "pivots" b.max_pivots;
        lim "nodes" b.max_nodes;
      ]
  in
  if parts = [] then "unlimited" else String.concat "," parts

let pp fmt b =
  Format.fprintf fmt "%s (spent: %d pivots, %d nodes%s)" (describe b) b.pivots
    b.nodes
    (if b.tripped then ", EXHAUSTED" else "")
