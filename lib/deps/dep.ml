open Scop

type kind = Flow | Anti | Output | Input

type level = Carried of int | Independent

type tag = Normal | Reduction

type t = {
  src : int;
  dst : int;
  kind : kind;
  src_access : Access.t;
  dst_access : Access.t;
  level : level;
  poly : Poly.Polyhedron.t;
  tag : tag;
}

let is_true d = d.kind <> Input

let src_iter_col i = i
let dst_iter_col ~d1 i = d1 + i
let param_col ~d1 ~d2 p = d1 + d2 + p

(* Build a constraint row over the dependence space from an access row
   of the source (or destination) statement. An access row is laid out
   [iters(d); params(np); 1]. *)
let lift_row ~d1 ~d2 ~np ~side (row : int array) =
  let d = match side with `Src -> d1 | `Dst -> d2 in
  let out = Array.make (d1 + d2 + np + 1) 0 in
  for i = 0 to d - 1 do
    let col = match side with `Src -> src_iter_col i | `Dst -> dst_iter_col ~d1 i in
    out.(col) <- row.(i)
  done;
  for p = 0 to np - 1 do
    out.(param_col ~d1 ~d2 p) <- row.(d + p)
  done;
  out.(d1 + d2 + np) <- row.(d + np);
  out

(* subtract two lifted rows: src access row minus dst access row *)
let equality_row ~d1 ~d2 ~np src_row dst_row =
  let a = lift_row ~d1 ~d2 ~np ~side:`Src src_row in
  let b = lift_row ~d1 ~d2 ~np ~side:`Dst dst_row in
  Array.mapi (fun i v -> v - b.(i)) a

(* The base polyhedron for a (src, dst) statement pair: both domains and
   subscript equality, without any ordering constraint. Returns None on
   arity mismatch (ill-typed program, not our concern here). *)
let base_poly ~np (src : Statement.t) (dst : Statement.t) src_acc dst_acc =
  if Access.arity src_acc <> Access.arity dst_acc then None
  else begin
    let d1 = Statement.depth src and d2 = Statement.depth dst in
    let dim = d1 + d2 + np in
    let src_dom =
      Poly.Polyhedron.rename src.domain ~dim_to:dim (fun i ->
          if i < d1 then src_iter_col i else param_col ~d1 ~d2 (i - d1))
    in
    let dst_dom =
      Poly.Polyhedron.rename dst.domain ~dim_to:dim (fun i ->
          if i < d2 then dst_iter_col ~d1 i else param_col ~d1 ~d2 (i - d2))
    in
    let eqs =
      Array.to_list
        (Array.mapi
           (fun r src_row ->
             Poly.Constr.eq
               (Array.to_list (equality_row ~d1 ~d2 ~np src_row dst_acc.Access.idx.(r))))
           src_acc.Access.idx)
    in
    Some (Poly.Polyhedron.add_list (Poly.Polyhedron.intersect src_dom dst_dom) eqs)
  end

(* ordering constraints for level [l] (carried): s_k = t_k for k < l,
   and t_l - s_l - 1 >= 0 *)
let carried_constraints ~d1 ~d2 ~np l =
  let dim = d1 + d2 + np in
  let eq_at k =
    let row = Array.make (dim + 1) 0 in
    row.(src_iter_col k) <- 1;
    row.(dst_iter_col ~d1 k) <- -1;
    Poly.Constr.eq (Array.to_list row)
  in
  let strict =
    let row = Array.make (dim + 1) 0 in
    row.(dst_iter_col ~d1 l) <- 1;
    row.(src_iter_col l) <- -1;
    row.(dim) <- -1;
    Poly.Constr.ge (Array.to_list row)
  in
  strict :: List.init l eq_at

(* loop-independent: equality on all common loops *)
let independent_constraints ~d1 ~d2 ~np common =
  let dim = d1 + d2 + np in
  List.init common (fun k ->
      let row = Array.make (dim + 1) 0 in
      row.(src_iter_col k) <- 1;
      row.(dst_iter_col ~d1 k) <- -1;
      Poly.Constr.eq (Array.to_list row))

let param_floor_constraints ~d1 ~d2 ~np floor =
  List.init np (fun p ->
      let row = Array.make (d1 + d2 + np + 1) 0 in
      row.(param_col ~d1 ~d2 p) <- 1;
      row.(d1 + d2 + np) <- -floor;
      Poly.Constr.ge (Array.to_list row))

let classify_kind src_is_write dst_is_write =
  match (src_is_write, dst_is_write) with
  | true, false -> Flow
  | false, true -> Anti
  | true, true -> Output
  | false, false -> Input

let analyze ?(param_floor = 2) ?(with_input = true) (prog : Program.t) =
  let np = Program.nparams prog in
  let deps = ref [] in
  let stmts = prog.stmts in
  let consider (src : Statement.t) (dst : Statement.t) src_acc src_w dst_acc dst_w =
    if Access.same_array src_acc dst_acc then begin
      let kind = classify_kind src_w dst_w in
      if kind <> Input || with_input then begin
        match base_poly ~np src dst src_acc dst_acc with
        | None -> ()
        | Some base ->
          let d1 = Statement.depth src and d2 = Statement.depth dst in
          let base =
            Poly.Polyhedron.add_list base
              (param_floor_constraints ~d1 ~d2 ~np param_floor)
          in
          let common = Statement.common_loops src dst in
          let try_level level cons =
            let p = Poly.Polyhedron.add_list base cons in
            if Ilp.Bb.feasible p then
              deps :=
                {
                  src = src.id;
                  dst = dst.id;
                  kind;
                  src_access = src_acc;
                  dst_access = dst_acc;
                  level;
                  poly = p;
                  tag = Normal;
                }
                :: !deps
          in
          for l = 0 to common - 1 do
            try_level (Carried l) (carried_constraints ~d1 ~d2 ~np l)
          done;
          (* loop-independent: only if src textually precedes dst *)
          if Statement.textual_before src dst then
            try_level Independent (independent_constraints ~d1 ~d2 ~np common)
      end
    end
  in
  Array.iter
    (fun (src : Statement.t) ->
      Array.iter
        (fun (dst : Statement.t) ->
          (* all ordered pairs, including src = dst (self loop-carried) *)
          List.iter
            (fun (sa, sw) ->
              List.iter
                (fun (da, dw) ->
                  (* skip pure read-read of the same textual access in
                     the same statement: it is trivially the same value *)
                  if not (src.id = dst.id && (not sw) && not dw && Access.equal sa da)
                  then consider src dst sa sw da dw)
                ((dst.write, true) :: List.map (fun a -> (a, false)) (Statement.reads dst)))
            ((src.write, true) :: List.map (fun a -> (a, false)) (Statement.reads src)))
        stmts)
    stmts;
  let deps = List.rev !deps in
  if Obs.Trace.on () then begin
    let count k = List.length (List.filter (fun d -> d.kind = k) deps) in
    Obs.Trace.instant ~cat:"deps" "deps.analyzed"
      ~args:
        [
          ("total", Obs.Json.Int (List.length deps));
          ("flow", Obs.Json.Int (count Flow));
          ("anti", Obs.Json.Int (count Anti));
          ("output", Obs.Json.Int (count Output));
          ("input", Obs.Json.Int (count Input));
          ("param-floor", Obs.Json.Int param_floor);
        ]
  end;
  deps

let kind_to_string = function
  | Flow -> "flow"
  | Anti -> "anti"
  | Output -> "output"
  | Input -> "input"

let pp fmt d =
  let lvl =
    match d.level with
    | Carried l -> Printf.sprintf "carried@%d" l
    | Independent -> "indep"
  in
  let tag = match d.tag with Normal -> "" | Reduction -> ", reduction" in
  Format.fprintf fmt "S%d -> S%d [%s, %s, %s%s]" d.src d.dst (kind_to_string d.kind)
    d.src_access.Access.array lvl tag
