(** Exact data-dependence analysis.

    For every ordered pair of accesses to the same array, a dependence
    polyhedron is built over [src iterators ++ dst iterators ++ params]
    and split by satisfaction level in the original program: carried by
    the ℓ-th common loop, or loop-independent. Each non-empty piece
    (integer emptiness checked by branch-and-bound) becomes one
    dependence edge.

    Flow (RAW), anti (WAR) and output (WAW) dependences are the "true"
    edges of the DDG used for legality; input (RAR) dependences are
    computed separately because the paper's pre-fusion heuristic uses
    them for reuse (Section 2.3, drawback 2). *)

type kind = Flow | Anti | Output | Input

type level =
  | Carried of int  (** 0-based index of the carrying common loop *)
  | Independent  (** same common iteration, textual order *)

type tag =
  | Normal
  | Reduction
      (** A self-dependence covered by a proven reduction
          ([Analysis.Reduction]): legality may reorder the chain because
          the combining operator is associative and commutative, so the
          scheduler treats the edge as pre-satisfied and codegen marks
          the carrying loop [Parallel_reduction]. *)

type t = {
  src : int;  (** source statement id *)
  dst : int;  (** destination statement id *)
  kind : kind;
  src_access : Scop.Access.t;
  dst_access : Scop.Access.t;
  level : level;
  poly : Poly.Polyhedron.t;
      (** over [src iters (d1); dst iters (d2); params (np)] *)
  tag : tag;  (** always [Normal] out of [analyze]; retagged by callers *)
}

(** Is this a real DDG edge (not an input dependence)? *)
val is_true : t -> bool

(** [analyze ?param_floor ?with_input program] computes all
    dependences. [param_floor] (default 2) adds [p >= param_floor] for
    every program parameter when testing emptiness, standing for the
    "sufficiently large problem size" assumption. [with_input]
    (default true) also computes read-after-read dependences. *)
val analyze : ?param_floor:int -> ?with_input:bool -> Scop.Program.t -> t list

(** Dependence-polyhedron layout helpers. *)

(** [src_iter d i], [dst_iter dep i], [param_col dep ~np p]: column
    indices into [poly]. *)
val src_iter_col : int -> int

val dst_iter_col : d1:int -> int -> int
val param_col : d1:int -> d2:int -> int -> int

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
