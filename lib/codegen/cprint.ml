open Scop

let buf_add = Buffer.add_string

(* --- small C expression helpers ---------------------------------------- *)

(* affine numerator over [t0..t(l-1); params; 1] *)
let num_to_c (prog : Program.t) (num : int array) =
  let np = Program.nparams prog in
  let no = Array.length num - np - 1 in
  let b = Buffer.create 16 in
  let first = ref true in
  let term c name =
    if c <> 0 then begin
      if c > 0 && not !first then buf_add b "+";
      if c = -1 then buf_add b "-"
      else if c <> 1 then buf_add b (string_of_int c ^ "*");
      buf_add b name;
      first := false
    end
  in
  for i = 0 to no - 1 do
    term num.(i) (Printf.sprintf "t%d" i)
  done;
  for p = 0 to np - 1 do
    term num.(no + p) prog.params.(p)
  done;
  let k = num.(no + np) in
  if !first then buf_add b (string_of_int k)
  else if k > 0 then buf_add b (Printf.sprintf "+%d" k)
  else if k < 0 then buf_add b (string_of_int k);
  Buffer.contents b

let bound_to_c prog ~lower (bd : Ast.bound) =
  if bd.den = 1 then num_to_c prog bd.num
  else
    Printf.sprintf "%s(%s, %d)"
      (if lower then "ceild" else "floord")
      (num_to_c prog bd.num) bd.den

(* nested binary min/max over a non-empty list *)
let rec fold_minmax op = function
  | [] -> invalid_arg "Cprint: empty bound list"
  | [ x ] -> x
  | x :: rest -> Printf.sprintf "%s(%s, %s)" op x (fold_minmax op rest)

let bounds_to_c prog ~lower groups =
  let dedup l = List.sort_uniq compare l in
  let groups =
    dedup
      (List.map (fun g -> dedup (List.map (bound_to_c prog ~lower) g)) groups)
  in
  let inner_op = if lower then "maxd" else "mind" in
  let outer_op = if lower then "mind" else "maxd" in
  fold_minmax outer_op (List.map (fold_minmax inner_op) groups)

(* original-iterator recovery code for one instance; returns
   (declarations, guard condition) *)
let instance_to_c (prog : Program.t) (inst : Ast.instance) =
  let st = prog.stmts.(inst.stmt_id) in
  let np = Program.nparams prog in
  let d = Array.length st.Statement.iters in
  let decls = Buffer.create 64 in
  let guards = ref [] in
  (* constant rows: t_level == param expr *)
  Array.iter
    (fun (level, row) ->
      let b = Buffer.create 8 in
      let first = ref true in
      for p = 0 to np - 1 do
        if row.(p) <> 0 then begin
          if not !first then buf_add b "+";
          if row.(p) <> 1 then buf_add b (string_of_int row.(p) ^ "*");
          buf_add b prog.params.(p);
          first := false
        end
      done;
      if !first then buf_add b (string_of_int row.(np))
      else if row.(np) > 0 then buf_add b (Printf.sprintf "+%d" row.(np))
      else if row.(np) < 0 then buf_add b (string_of_int row.(np));
      guards := Printf.sprintf "t%d == (%s)" level (Buffer.contents b) :: !guards)
    inst.const_rows;
  (* numerators nom_i = sum_k hinv[i][k] * (t_selk - g_k) *)
  for i = 0 to d - 1 do
    let b = Buffer.create 32 in
    let first = ref true in
    Array.iteri
      (fun k level ->
        let c = inst.hinv_num.(i).(k) in
        if c <> 0 then begin
          if not !first then buf_add b " + ";
          buf_add b (Printf.sprintf "%d*(t%d" c level);
          for p = 0 to np - 1 do
            if inst.g.(k).(p) <> 0 then
              buf_add b (Printf.sprintf " - %d*%s" inst.g.(k).(p) prog.params.(p))
          done;
          if inst.g.(k).(np) <> 0 then
            buf_add b (Printf.sprintf " - %d" inst.g.(k).(np));
          buf_add b ")";
          first := false
        end)
      inst.sel_levels;
    if !first then buf_add b "0";
    Buffer.add_string decls
      (Printf.sprintf "int nom_%s = %s; " st.Statement.iters.(i)
         (Buffer.contents b));
    if inst.det <> 1 then
      guards :=
        Printf.sprintf "nom_%s %% %d == 0" st.Statement.iters.(i) inst.det
        :: !guards
  done;
  for i = 0 to d - 1 do
    let it = st.Statement.iters.(i) in
    if inst.det = 1 then
      Buffer.add_string decls (Printf.sprintf "int %s = nom_%s; " it it)
    else
      Buffer.add_string decls
        (Printf.sprintf "int %s = nom_%s / %d; " it it inst.det)
  done;
  (* domain constraints *)
  List.iter
    (fun c ->
      let b = Buffer.create 16 in
      let first = ref true in
      let coeffs = Poly.Constr.coeffs c in
      let w = Array.length coeffs in
      let name k =
        if k < d then st.Statement.iters.(k) else prog.params.(k - d)
      in
      for k = 0 to w - 2 do
        let v = Linalg.Bigint.to_int (Linalg.Q.num coeffs.(k)) in
        if v <> 0 then begin
          if v > 0 && not !first then buf_add b "+";
          if v = -1 then buf_add b "-"
          else if v <> 1 then buf_add b (string_of_int v ^ "*");
          buf_add b (name k);
          first := false
        end
      done;
      let kst = Linalg.Bigint.to_int (Linalg.Q.num coeffs.(w - 1)) in
      if !first then buf_add b (string_of_int kst)
      else if kst > 0 then buf_add b (Printf.sprintf "+%d" kst)
      else if kst < 0 then buf_add b (string_of_int kst);
      let rel = match Poly.Constr.kind c with Poly.Constr.Eq -> "==" | Poly.Constr.Ge -> ">=" in
      guards := Printf.sprintf "%s %s 0" (Buffer.contents b) rel :: !guards)
    (Poly.Polyhedron.constraints st.Statement.domain);
  let guard =
    match !guards with [] -> "1" | gs -> String.concat " && " (List.rev gs)
  in
  (Buffer.contents decls, guard)

let stmt_to_c (prog : Program.t) (st : Statement.t) =
  Format.asprintf "%a = %a;"
    (Access.pp ~iter_names:st.Statement.iters ~param_names:prog.params)
    st.Statement.write
    (Expr.pp ~iter_names:st.Statement.iters ~param_names:prog.params)
    st.Statement.rhs

let body (prog : Program.t) ast =
  let b = Buffer.create 1024 in
  let rec go indent node =
    let pad = String.make indent ' ' in
    match node with
    | Ast.Seq nodes -> List.iter (go indent) nodes
    | Ast.Exec inst ->
      let st = prog.stmts.(inst.Ast.stmt_id) in
      let decls, guard = instance_to_c prog inst in
      buf_add b (Printf.sprintf "%s{ %s\n" pad decls);
      buf_add b (Printf.sprintf "%s  if (%s) { %s } }\n" pad guard
           (stmt_to_c prog st))
    | Ast.Loop l ->
      (match l.Ast.par with
      | Ast.Parallel -> buf_add b (pad ^ "#pragma omp parallel for\n")
      | Ast.Parallel_reduction ->
        buf_add b
          (pad
         ^ "/* reduction loop: privatize accumulators per thread, \
            combine after the barrier */\n");
        buf_add b (pad ^ "#pragma omp parallel for /* reduction */\n")
      | Ast.Forward -> buf_add b (pad ^ "/* pipelined: forward dependence */\n")
      | Ast.Sequential -> ());
      buf_add b
        (Printf.sprintf "%sfor (int t%d = %s; t%d <= %s; t%d++) {\n" pad
           l.Ast.level
           (bounds_to_c prog ~lower:true l.Ast.lb_groups)
           l.Ast.level
           (bounds_to_c prog ~lower:false l.Ast.ub_groups)
           l.Ast.level);
      go (indent + 2) l.Ast.body;
      buf_add b (pad ^ "}\n")
  in
  go 0 ast;
  Buffer.contents b

let program ~name (prog : Program.t) ast =
  let b = Buffer.create 4096 in
  let params = prog.default_params in
  buf_add b (Printf.sprintf "/* %s - generated by wisefuse */\n" name);
  buf_add b "#include <stdio.h>\n#include <math.h>\n\n";
  buf_add b "#define ceild(n, d) (((n) > 0) ? ((n) + (d) - 1) / (d) : -((-(n)) / (d)))\n";
  buf_add b "#define floord(n, d) (((n) >= 0) ? (n) / (d) : -((-(n) + (d) - 1) / (d)))\n";
  buf_add b "#define mind(a, b) ((a) < (b) ? (a) : (b))\n";
  buf_add b "#define maxd(a, b) ((a) > (b) ? (a) : (b))\n";
  (* statement expressions print min/max in function-call form *)
  buf_add b "#define min(a, b) fmin(a, b)\n";
  buf_add b "#define max(a, b) fmax(a, b)\n\n";
  Array.iteri
    (fun p pname ->
      buf_add b (Printf.sprintf "#define %s %d\n" pname params.(p)))
    prog.params;
  buf_add b "\n";
  (* array declarations at concrete extents *)
  List.iter
    (fun (decl : Program.array_decl) ->
      let ext = Program.array_extent decl ~params in
      buf_add b (Printf.sprintf "static double %s" decl.array_name);
      Array.iter (fun e -> buf_add b (Printf.sprintf "[%d]" e)) ext;
      buf_add b ";\n")
    prog.arrays;
  (* deterministic initialization *)
  buf_add b "\nstatic void init(void) {\n";
  List.iteri
    (fun ai (decl : Program.array_decl) ->
      let ext = Program.array_extent decl ~params in
      let idx = Array.mapi (fun d _ -> Printf.sprintf "q%d" d) ext in
      Array.iteri
        (fun d e ->
          buf_add b
            (Printf.sprintf "%sfor (int q%d = 0; q%d < %d; q%d++)\n"
               (String.make (2 + (2 * d)) ' ')
               d d e d))
        ext;
      (* simple LCG-style pattern over the flat offset and array id *)
      let offset =
        snd
          (Array.fold_left
             (fun (d, acc) _ ->
               if d = 0 then (1, "q0")
               else (d + 1, Printf.sprintf "(%s)*%d+q%d" acc ext.(d) d))
             (0, "") ext)
      in
      buf_add b
        (Printf.sprintf
           "%s%s%s = 0.25 + (double)((((%s) + %d) * 2654435761u) & 0xffff) / 131072.0;\n"
           (String.make (2 + (2 * Array.length ext)) ' ')
           decl.array_name
           (String.concat ""
              (Array.to_list (Array.map (fun q -> "[" ^ q ^ "]") idx)))
           offset (1000 * ai)))
    prog.arrays;
  buf_add b "}\n\n";
  buf_add b "static void kernel(void) {\n";
  buf_add b (body prog ast);
  buf_add b "}\n\n";
  buf_add b "int main(void) {\n  init();\n  kernel();\n  double sum = 0.0;\n";
  List.iter
    (fun (decl : Program.array_decl) ->
      let ext = Program.array_extent decl ~params in
      let total = Array.fold_left ( * ) 1 ext in
      buf_add b
        (Printf.sprintf
           "  for (int q = 0; q < %d; q++) sum += ((double*)%s)[q];\n" total
           decl.array_name))
    prog.arrays;
  buf_add b "  printf(\"checksum: %.10e\\n\", sum);\n  return 0;\n}\n";
  Buffer.contents b
