type bound = { num : int array; den : int }

type parallelism = Parallel | Parallel_reduction | Forward | Sequential

type instance = {
  stmt_id : int;
  sel_levels : int array;
  hinv_num : int array array;
  det : int;
  g : int array array;
  const_rows : (int * int array) array;
}

type node =
  | Exec of instance
  | Seq of node list
  | Loop of loop

and loop = {
  level : int;
  lb_groups : bound list list;
  ub_groups : bound list list;
  group_stmts : int list;
      (* statement id owning each bound group, positionally *)
  par : parallelism;
  body : node;
}

(* --- parallelism vocabulary ---------------------------------------------- *)

(* [Pluto.Satisfy.loop_class] is the source of truth; [parallelism] is
   its mirror on generated loops. The two conversions are total inverse
   bijections (round-trip tested in test_analysis.ml). *)

let of_loop_class = function
  | Pluto.Satisfy.Parallel -> Parallel
  | Pluto.Satisfy.Parallel_reduction -> Parallel_reduction
  | Pluto.Satisfy.Forward -> Forward
  | Pluto.Satisfy.Sequential -> Sequential

let to_loop_class = function
  | Parallel -> Pluto.Satisfy.Parallel
  | Parallel_reduction -> Pluto.Satisfy.Parallel_reduction
  | Forward -> Pluto.Satisfy.Forward
  | Sequential -> Pluto.Satisfy.Sequential

let parallelism_name p = Pluto.Satisfy.loop_class_name (to_loop_class p)

(* --- walks ---------------------------------------------------------------- *)

let rec iter_loops f = function
  | Exec _ -> ()
  | Seq nodes -> List.iter (iter_loops f) nodes
  | Loop l ->
    f l;
    iter_loops f l.body

let rec map_loops f = function
  | Exec _ as n -> n
  | Seq nodes -> Seq (List.map (map_loops f) nodes)
  | Loop l -> Loop (f { l with body = map_loops f l.body })

let rec map_instances f = function
  | Exec inst -> Exec (f inst)
  | Seq nodes -> Seq (List.map (map_instances f) nodes)
  | Loop l -> Loop { l with body = map_instances f l.body }

let instances node =
  let acc = ref [] in
  let rec go = function
    | Exec inst -> acc := inst :: !acc
    | Seq nodes -> List.iter go nodes
    | Loop l -> go l.body
  in
  go node;
  List.rev !acc

let members node = List.map (fun i -> i.stmt_id) (instances node)

(* floor/ceil division for possibly-negative numerators *)
let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)
let cdiv a b = if a >= 0 then (a + b - 1) / b else -((-a) / b)

let eval_num (num : int array) ~outer ~params =
  let no = Array.length outer and np = Array.length params in
  if Array.length num <> no + np + 1 then
    invalid_arg "Ast.eval_bound: width mismatch";
  let acc = ref num.(no + np) in
  for i = 0 to no - 1 do
    acc := !acc + (num.(i) * outer.(i))
  done;
  for p = 0 to np - 1 do
    acc := !acc + (num.(no + p) * params.(p))
  done;
  !acc

let eval_bound b ~outer ~params ~lower =
  let v = eval_num b.num ~outer ~params in
  if b.den = 1 then v
  else if lower then cdiv v b.den
  else fdiv v b.den

let loop_range l ~outer ~params =
  let group_lb g =
    List.fold_left
      (fun acc b -> max acc (eval_bound b ~outer ~params ~lower:true))
      min_int g
  in
  let group_ub g =
    List.fold_left
      (fun acc b -> min acc (eval_bound b ~outer ~params ~lower:false))
      max_int g
  in
  let lb =
    List.fold_left (fun acc g -> min acc (group_lb g)) max_int l.lb_groups
  in
  let ub =
    List.fold_left (fun acc g -> max acc (group_ub g)) min_int l.ub_groups
  in
  (lb, ub)

let param_part_eval (row : int array) ~params =
  let np = Array.length params in
  let acc = ref row.(np) in
  for p = 0 to np - 1 do
    acc := !acc + (row.(p) * params.(p))
  done;
  !acc

let instance_iters inst ~y ~params =
  (* constant-row guard *)
  let ok = ref true in
  Array.iter
    (fun (level, row) ->
      if y.(level) <> param_part_eval row ~params then ok := false)
    inst.const_rows;
  if not !ok then None
  else begin
    let d = Array.length inst.sel_levels in
    let x = Array.make d 0 in
    let rhs =
      Array.mapi
        (fun k level -> y.(level) - param_part_eval inst.g.(k) ~params)
        inst.sel_levels
    in
    let integral = ref true in
    for i = 0 to d - 1 do
      let acc = ref 0 in
      for j = 0 to d - 1 do
        acc := !acc + (inst.hinv_num.(i).(j) * rhs.(j))
      done;
      if !acc mod inst.det <> 0 then integral := false
      else x.(i) <- !acc / inst.det
    done;
    if !integral then Some x else None
  end

(* --- pretty printing ----------------------------------------------------- *)

let pp_num (prog : Scop.Program.t) fmt (num : int array) =
  let np = Scop.Program.nparams prog in
  let no = Array.length num - np - 1 in
  let buf = Buffer.create 16 in
  let first = ref true in
  let term c name =
    if c <> 0 then begin
      if c > 0 && not !first then Buffer.add_string buf "+";
      if c = -1 then Buffer.add_string buf "-"
      else if c <> 1 then Buffer.add_string buf (string_of_int c ^ "*");
      Buffer.add_string buf name;
      first := false
    end
  in
  for i = 0 to no - 1 do
    term num.(i) (Printf.sprintf "t%d" i)
  done;
  for p = 0 to np - 1 do
    term num.(no + p) prog.params.(p)
  done;
  let k = num.(no + np) in
  if !first then Buffer.add_string buf (string_of_int k)
  else if k > 0 then Buffer.add_string buf ("+" ^ string_of_int k)
  else if k < 0 then Buffer.add_string buf (string_of_int k);
  Format.pp_print_string fmt (Buffer.contents buf)

let pp_bound prog ~lower fmt (b : bound) =
  if b.den = 1 then pp_num prog fmt b.num
  else
    Format.fprintf fmt "%s(%a, %d)"
      (if lower then "ceild" else "floord")
      (pp_num prog) b.num b.den

let pp_bound_groups prog ~lower fmt groups =
  (* drop duplicate bounds and duplicate groups for readability *)
  let dedup l = List.sort_uniq compare l in
  let groups = dedup (List.map dedup groups) in
  let pp_group fmt g =
    match g with
    | [ b ] -> pp_bound prog ~lower fmt b
    | _ ->
      Format.fprintf fmt "%s(" (if lower then "max" else "min");
      List.iteri
        (fun i b ->
          if i > 0 then Format.fprintf fmt ", ";
          pp_bound prog ~lower fmt b)
        g;
      Format.fprintf fmt ")"
  in
  match groups with
  | [ g ] -> pp_group fmt g
  | _ ->
    Format.fprintf fmt "%s(" (if lower then "min" else "max");
    List.iteri
      (fun i g ->
        if i > 0 then Format.fprintf fmt ", ";
        pp_group fmt g)
      groups;
    Format.fprintf fmt ")"

(* the inverse mapping of one statement instance, e.g. "i=t1, j=t0-1" *)
let pp_mapping prog fmt inst =
  let st = prog.Scop.Program.stmts.(inst.stmt_id) in
  let np = Scop.Program.nparams prog in
  let d = Array.length st.Scop.Statement.iters in
  let parts = ref [] in
  for i = d - 1 downto 0 do
    let buf = Buffer.create 16 in
    let first = ref true in
    let term c name =
      if c <> 0 then begin
        if c > 0 && not !first then Buffer.add_string buf "+";
        if c = -1 then Buffer.add_string buf "-"
        else if c <> 1 then Buffer.add_string buf (string_of_int c ^ "*");
        Buffer.add_string buf name;
        first := false
      end
    in
    let konst = ref 0 in
    Array.iteri
      (fun k level ->
        let c = inst.hinv_num.(i).(k) in
        term c (Printf.sprintf "t%d" level);
        (* subtract the parametric shift g_k *)
        for p = 0 to np - 1 do
          term (-c * inst.g.(k).(p)) prog.Scop.Program.params.(p)
        done;
        konst := !konst - (c * inst.g.(k).(np)))
      inst.sel_levels;
    if !konst > 0 then Buffer.add_string buf (Printf.sprintf "+%d" !konst)
    else if !konst < 0 then Buffer.add_string buf (string_of_int !konst)
    else if !first then Buffer.add_string buf "0";
    let rhs =
      if inst.det = 1 then Buffer.contents buf
      else Printf.sprintf "(%s)/%d" (Buffer.contents buf) inst.det
    in
    parts := Printf.sprintf "%s=%s" st.Scop.Statement.iters.(i) rhs :: !parts
  done;
  Format.pp_print_string fmt (String.concat ", " !parts)

let rec pp_node prog indent fmt node =
  let pad = String.make indent ' ' in
  match node with
  | Seq nodes -> List.iter (pp_node prog indent fmt) nodes
  | Exec inst ->
    let st = prog.Scop.Program.stmts.(inst.stmt_id) in
    Format.fprintf fmt "%s%a;  /* %a */@," pad
      (Scop.Statement.pp ~params:prog.Scop.Program.params)
      st (pp_mapping prog) inst
  | Loop l ->
    let pragma =
      match l.par with
      | Parallel -> Printf.sprintf "%s#pragma omp parallel for\n" pad
      | Parallel_reduction ->
        Printf.sprintf
          "%s#pragma omp parallel for reduction  /* privatize + combine */\n"
          pad
      | Forward -> Printf.sprintf "%s/* pipelined (forward dep) */\n" pad
      | Sequential -> ""
    in
    Format.fprintf fmt "%sfor (t%d = %a; t%d <= %a; t%d++) {@,"
      (pragma ^ pad) l.level
      (pp_bound_groups prog ~lower:true)
      l.lb_groups l.level
      (pp_bound_groups prog ~lower:false)
      l.ub_groups l.level;
    pp_node prog (indent + 2) fmt l.body;
    Format.fprintf fmt "%s}@," pad

let pp prog fmt node =
  Format.fprintf fmt "@[<v>";
  pp_node prog 0 fmt node;
  Format.fprintf fmt "@]"
