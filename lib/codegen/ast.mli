(** Loop ASTs generated from multidimensional affine schedules.

    The AST scans the transformed time space: one loop per hyperplane
    row, sequencing per scalar (beta) row. Loop variables are numbered
    by nesting depth ([y_0] outermost); bounds are affine in outer loop
    variables and parameters, with integer division (ceil for lower,
    floor for upper bounds).

    A statement instance recovers its original iterators from the loop
    variables by inverting the statement's hyperplane rows; a guard
    (divisibility + constant-row equality + domain membership) makes
    partial fusion of statements with different domains correct. *)

type bound = {
  num : int array;
      (** affine in [y_0 .. y_(level-1); params; 1] — width level+np+1 *)
  den : int;  (** positive divisor: lower bounds take ceil, upper floor *)
}

type parallelism = Parallel | Parallel_reduction | Forward | Sequential

type instance = {
  stmt_id : int;
  (* x = (hinv_num * (y_sel - g_sel)) / det, where y_sel are the values
     of the selected loop variables *)
  sel_levels : int array;  (** the d loop levels used for inversion *)
  hinv_num : int array array;  (** d x d integer adjugate-like matrix *)
  det : int;  (** non-zero *)
  g : int array array;
      (** per selected level: parameter part of the row, width np+1 *)
  const_rows : (int * int array) array;
      (** (level, param part): zero-iterator rows; the guard requires
          y_level = param_part(p) *)
}

type node =
  | Exec of instance
  | Seq of node list
  | Loop of loop

and loop = {
  level : int;  (** index of this loop's variable *)
  (* per-statement bound groups: the loop ranges over
     [min over groups (max of group) .. max over groups (min of group)];
     each statement additionally guards itself *)
  lb_groups : bound list list;
  ub_groups : bound list list;
  group_stmts : int list;
      (** statement id owning each bound group, positionally: group [i]
          of [lb_groups]/[ub_groups] is the projection of statement
          [List.nth group_stmts i]'s transformed domain. The analysis
          passes use this to tell a statement's own bounds apart from
          its fusion partners'. *)
  par : parallelism;
  body : node;
}

(** {1 Parallelism vocabulary}

    [parallelism] mirrors {!Pluto.Satisfy.loop_class} (the single
    source of truth); the conversions are total inverse bijections. *)

val of_loop_class : Pluto.Satisfy.loop_class -> parallelism
val to_loop_class : parallelism -> Pluto.Satisfy.loop_class
val parallelism_name : parallelism -> string

(** {1 Walks}

    Traversal hooks shared by the analysis passes ([lib/analysis]), the
    machine model and the test suite's AST mutators. *)

(** Pre-order over every loop (outermost first). *)
val iter_loops : (loop -> unit) -> node -> unit

(** Rebuild the tree, transforming every loop bottom-up (the function
    sees the loop with its body already mapped). *)
val map_loops : (loop -> loop) -> node -> node

(** Rebuild the tree, transforming every statement instance. *)
val map_instances : (instance -> instance) -> node -> node

(** All statement instances, in textual (execution) order. *)
val instances : node -> instance list

(** Statement ids of {!instances}, in textual order. Each statement
    occurs exactly once in a generated AST. *)
val members : node -> int list

(** [eval_bound b ~outer ~params ~lower] computes the concrete value
    (ceil division when [lower], floor otherwise). *)
val eval_bound : bound -> outer:int array -> params:int array -> lower:bool -> int

(** [loop_range loop ~outer ~params] is the concrete [(lb, ub)]
    (inclusive; empty when [lb > ub]). *)
val loop_range : loop -> outer:int array -> params:int array -> int * int

(** [instance_iters inst ~y ~params] recovers the original iterator
    vector, or [None] when the guard fails (not an integer point, a
    constant row mismatches, or out of the domain — the caller checks
    domain membership separately via {!guard}). *)
val instance_iters :
  instance -> y:int array -> params:int array -> int array option

val pp : Scop.Program.t -> Format.formatter -> node -> unit
