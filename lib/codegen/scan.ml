open Linalg
open Poly

(* --- transformed domains ------------------------------------------------- *)

(* indices of Hyp rows within the schedule row list *)
let loop_row_indices sched =
  let rec go i = function
    | [] -> []
    | Pluto.Sched.Hyp _ :: rest -> i :: go (i + 1) rest
    | Pluto.Sched.Beta _ :: rest -> go (i + 1) rest
  in
  go 0 sched.(0)

(* The transformed domain of statement [s]: polyhedron over
   [y_0 .. y_(nloops-1); params]. *)
let transformed_domain (prog : Scop.Program.t) (sched : Pluto.Sched.t) id =
  let np = Scop.Program.nparams prog in
  let st = prog.stmts.(id) in
  let d = Scop.Statement.depth st in
  let rows =
    List.filter_map
      (function Pluto.Sched.Hyp h -> Some h | Pluto.Sched.Beta _ -> None)
      sched.(id)
  in
  let nl = List.length rows in
  (* combined space: [y (nl); p (np); x (d)] *)
  let dim = nl + np + d in
  let eqs =
    List.mapi
      (fun k (h : int array) ->
        (* y_k - (h_iter . x + h_param . p + h_const) = 0 *)
        let row = Array.make (dim + 1) 0 in
        row.(k) <- 1;
        for i = 0 to d - 1 do
          row.(nl + np + i) <- -h.(i)
        done;
        for p = 0 to np - 1 do
          row.(nl + p) <- -h.(d + p)
        done;
        row.(dim) <- -h.(d + np);
        Constr.eq (Array.to_list row))
      rows
  in
  let dom =
    Polyhedron.rename st.domain ~dim_to:dim (fun i ->
        if i < d then nl + np + i else nl + (i - d))
  in
  let combined = Polyhedron.add_list dom eqs in
  (* eliminate the original iterators *)
  Polyhedron.eliminate combined (List.init d (fun i -> nl + np + i))

(* bounds of loop variable [l] of statement [id], given its transformed
   domain: project onto [y_0 .. y_l; params], then split constraints on
   y_l into lower/upper bound records *)
let bounds_at td ~np ~nloops l =
  (* keep y_0..y_l and params; eliminate y_(l+1)..y_(nloops-1) *)
  let proj =
    Polyhedron.eliminate td (List.init (nloops - l - 1) (fun i -> l + 1 + i))
  in
  let lower, upper, _rest = Polyhedron.lower_upper_bounds proj l in
  let to_int q = Bigint.to_int (Q.num q) in
  let width = l + np + 1 in
  let make_bound ~lower:_ c =
    (* c: a*y_l + rest >= 0 over [y_0..y_l; p]; a <> 0 *)
    let a = to_int (Constr.coeff c l) in
    let rest i = to_int (Constr.coeff c i) in
    if a > 0 then begin
      (* y_l >= ceil(-rest / a) *)
      let num = Array.init width (fun i ->
          if i < l then -rest i
          else if i < l + np then -rest (i + 1)
          else -to_int (Constr.const c))
      in
      { Ast.num; den = a }
    end
    else begin
      (* a < 0: y_l <= floor(rest / -a) *)
      let num = Array.init width (fun i ->
          if i < l then rest i
          else if i < l + np then rest (i + 1)
          else to_int (Constr.const c))
      in
      { Ast.num; den = -a }
    end
  in
  let lbs = List.map (make_bound ~lower:true) lower in
  let ubs = List.map (make_bound ~lower:false) upper in
  (lbs, ubs)

(* --- instances ------------------------------------------------------------ *)

let make_instance (prog : Scop.Program.t) (sched : Pluto.Sched.t) id =
  let np = Scop.Program.nparams prog in
  let st = prog.stmts.(id) in
  let d = Scop.Statement.depth st in
  let rows =
    List.filter_map
      (function Pluto.Sched.Hyp h -> Some h | Pluto.Sched.Beta _ -> None)
      sched.(id)
  in
  let iter_part (h : int array) = Array.sub h 0 d in
  let param_part (h : int array) = Array.sub h d (np + 1) in
  let indexed = List.mapi (fun k h -> (k, h)) rows in
  let nonzero, zero =
    List.partition (fun (_, h) -> Array.exists (fun c -> c <> 0) (iter_part h)) indexed
  in
  if List.length nonzero <> d then
    Pluto.Diagnostics.fail ~phase:Codegen ~code:"codegen.rank"
      ~context:
        [
          ("statement", st.name);
          ("depth", string_of_int d);
          ("non-constant-rows", string_of_int (List.length nonzero));
        ]
      (Printf.sprintf "Scan: statement %s has %d non-constant rows for depth %d"
         st.name (List.length nonzero) d);
  let sel_levels = Array.of_list (List.map fst nonzero) in
  let hsel = Mat.of_ints (Array.of_list (List.map (fun (_, h) -> iter_part h) nonzero)) in
  let hinv =
    match Mat.inverse hsel with
    | Some m -> m
    | None ->
      Pluto.Diagnostics.fail ~phase:Codegen ~code:"codegen.singular"
        ~context:[ ("statement", st.name) ]
        (Printf.sprintf "Scan: singular transform for %s" st.name)
  in
  (* write hinv as integer matrix / det *)
  let det =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun acc q -> Bigint.lcm acc (Q.den q)) acc row)
      Bigint.one hinv
  in
  let hinv_num =
    Array.map
      (Array.map (fun q -> Bigint.to_int (Q.to_bigint (Q.mul q (Q.of_bigint det)))))
      hinv
  in
  {
    Ast.stmt_id = id;
    sel_levels;
    hinv_num;
    det = Bigint.to_int det;
    g = Array.of_list (List.map (fun (_, h) -> param_part h) nonzero);
    const_rows =
      Array.of_list (List.map (fun (k, h) -> (k, param_part h)) zero);
  }

(* --- tree construction ----------------------------------------------------- *)

let generate ~(prog : Scop.Program.t) ~(sched : Pluto.Sched.t) ~deps =
  Counters.time "codegen" @@ fun () ->
  let np = Scop.Program.nparams prog in
  let n = Array.length prog.stmts in
  if n = 0 then Ast.Seq []
  else begin
    let nrows = Pluto.Sched.num_rows sched in
    let loop_rows = loop_row_indices sched in
    let nloops = List.length loop_rows in
    let td = Array.init n (fun id -> transformed_domain prog sched id) in
    let inst = Array.init n (fun id -> make_instance prog sched id) in
    let true_deps = List.filter Deps.Dep.is_true deps in
    (* map row index -> loop level *)
    let level_of_row = Hashtbl.create 8 in
    List.iteri (fun lvl row -> Hashtbl.add level_of_row row lvl) loop_rows;
    let rec build stmts row_idx =
      if row_idx >= nrows then
        Ast.Seq (List.map (fun id -> Ast.Exec inst.(id)) stmts)
      else begin
        match List.nth sched.(List.hd stmts) row_idx with
        | Pluto.Sched.Beta _ ->
          (* group by beta value, keep ascending order *)
          let value id =
            match List.nth sched.(id) row_idx with
            | Pluto.Sched.Beta b -> b
            | Pluto.Sched.Hyp _ -> assert false
          in
          let groups = Hashtbl.create 8 in
          List.iter
            (fun id ->
              let b = value id in
              Hashtbl.replace groups b
                (id :: Option.value (Hashtbl.find_opt groups b) ~default:[]))
            stmts;
          let keys = List.sort_uniq compare (List.map value stmts) in
          let children =
            List.map
              (fun b -> build (List.rev (Hashtbl.find groups b)) (row_idx + 1))
              keys
          in
          (match children with [ one ] -> one | many -> Ast.Seq many)
        | Pluto.Sched.Hyp _ ->
          let level = Hashtbl.find level_of_row row_idx in
          let lb_groups, ub_groups =
            List.split
              (List.map (fun id -> bounds_at td.(id) ~np ~nloops level) stmts)
          in
          let par =
            Ast.of_loop_class
              (Pluto.Satisfy.row_class prog true_deps sched ~level:row_idx
                 ~members:stmts)
          in
          if Obs.Trace.on () then
            Obs.Trace.instant ~cat:"codegen" "codegen.loop"
              ~args:
                [
                  ("level", Obs.Json.Int level);
                  ("class", Obs.Json.Str (Ast.parallelism_name par));
                  ("stmts", Obs.Json.Int (List.length stmts));
                ];
          Ast.Loop
            {
              level;
              lb_groups;
              ub_groups;
              group_stmts = stmts;
              par;
              body = build stmts (row_idx + 1);
            }
      end
    in
    build (List.init n Fun.id) 0
  end

let of_result (res : Pluto.Scheduler.result) =
  generate ~prog:res.prog ~sched:res.sched ~deps:res.true_deps

let identity_schedule (prog : Scop.Program.t) =
  let np = Scop.Program.nparams prog in
  let dmax = Scop.Program.max_depth prog in
  Array.map
    (fun (st : Scop.Statement.t) ->
      let d = Scop.Statement.depth st in
      let rows = ref [] in
      for level = 0 to dmax do
        (* beta row *)
        let b = if level <= d then st.beta.(level) else 0 in
        rows := Pluto.Sched.Beta b :: !rows;
        (* hyperplane row (except after the last beta) *)
        if level < dmax then begin
          let h = Array.make (d + np + 1) 0 in
          if level < d then h.(level) <- 1;
          rows := Pluto.Sched.Hyp h :: !rows
        end
      done;
      List.rev !rows)
    prog.stmts

let original prog ~deps = generate ~prog ~sched:(identity_schedule prog) ~deps
