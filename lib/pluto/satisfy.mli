(** Dependence satisfaction and per-level classification, given a
    concrete schedule.

    For a dependence e and a schedule row r, the quantity of interest
    is δ(z) = ϕ_dst(t) − ϕ_src(s) over the dependence polyhedron. Its
    exact rational range [dmin, dmax] (computed by LP) classifies the
    row:

    - dmin ≥ 1: the row {e carries} (strongly satisfies) e;
    - dmin = dmax = 0: e is level-independent at this row;
    - dmin ≥ 0 < dmax: legal, but the loop has a {e forward}
      dependence — a pipelined (non-communication-free) loop;
    - dmin < 0: the row violates e (illegal unless e was satisfied at
      an earlier row). *)

type range = {
  dmin : Linalg.Q.t option;  (** [None] = unbounded below *)
  dmax : Linalg.Q.t option;  (** [None] = unbounded above *)
}

(** δ range of a dependence at one row. *)
val diff_range : Scop.Program.t -> Deps.Dep.t -> Sched.t -> level:int -> range

(** Only the minimum (one LP instead of two) — enough for legality and
    satisfaction scans. *)
val diff_min : Scop.Program.t -> Deps.Dep.t -> Sched.t -> level:int -> Linalg.Q.t option

(** First row index that strongly satisfies the dependence, scanning
    rows outermost-first; rows after the first satisfying one are
    unconstrained (lexicographic positivity). *)
val satisfaction_level : Scop.Program.t -> Deps.Dep.t -> Sched.t -> int option

(** [legal prog deps sched]: every true dependence is strongly
    satisfied at some row, and no row before its satisfaction level has
    a negative δ. Dependences tagged {!Deps.Dep.Reduction} are exempt —
    a proven reduction chain may be reordered, so its self-dependences
    are pre-satisfied by definition. Returns the offending dependence
    if any. *)
val check_legal : Scop.Program.t -> Deps.Dep.t list -> Sched.t -> (unit, Deps.Dep.t) result

(** [check_complete prog sched]: structural completeness — every
    statement is covered, all statements have the same number of rows,
    each statement has exactly [depth] rows with a nonzero iterator
    part, and those rows form a non-singular transform. Exactly the
    preconditions code generation relies on; violations surface as
    typed diagnostics instead of failures inside codegen. *)
val check_complete : Scop.Program.t -> Sched.t -> (unit, Diagnostics.t) result

(** The single source of truth for loop parallelism vocabulary.
    [Codegen.Ast.parallelism] mirrors this type on generated loops;
    total conversions in both directions live in [Codegen.Ast]
    ({!Codegen.Ast.of_loop_class} / {!Codegen.Ast.to_loop_class}). *)
type loop_class =
  | Parallel  (** communication-free: every live dependence has δ = 0 *)
  | Parallel_reduction
      (** every dependence the loop carries is a reduction-tagged
          self-dependence: parallel after privatizing the accumulator
          per worker and combining partial results at the barrier *)
  | Forward  (** carries or may carry a dependence forward: pipelined *)
  | Sequential
      (** demoted to serial execution (e.g. by the icc model's
          parallelization heuristics); never produced by
          {!row_class}, which only classifies the dependence
          structure *)

val loop_class_name : loop_class -> string

(** [row_class prog deps sched ~level ~members] classifies the loop at
    row [level] for the set of statements [members] (a fusion
    partition), considering only dependences with both endpoints in
    [members] that are not satisfied before [level]. Returns
    [Parallel] if the loop carries nothing, [Parallel_reduction] if
    everything it carries is tagged {!Deps.Dep.Reduction}, [Forward]
    otherwise — never [Sequential]. *)
val row_class :
  Scop.Program.t -> Deps.Dep.t list -> Sched.t -> level:int -> members:int list ->
  loop_class
