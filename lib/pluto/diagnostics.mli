(** Typed diagnostics for the scheduling pipeline.

    Replaces library-level [failwith]: a diagnostic carries a stable
    machine-readable [code], the pipeline [phase] it arose in, a
    one-line message, and key/value [context] rendered in verbose mode.

    The idiom is exception-at-the-point, result-at-the-boundary: deep
    pipeline code raises {!Error}, public entry points catch it and
    return [('a, t) result]. {!exit_code} gives the CLI a distinct exit
    status per phase (usage 2, budget 3, scheduling 4, verification 5,
    codegen 6). *)

type phase = Usage | Budget | Scheduling | Verification | Codegen

type t = {
  code : string;  (** stable machine-readable code, e.g. ["sched.no-hyperplane"] *)
  phase : phase;
  message : string;  (** one-line human-readable description *)
  context : (string * string) list;  (** extra detail for verbose output *)
}

exception Error of t

val make :
  ?context:(string * string) list -> phase:phase -> code:string -> string -> t

(** Raise {!Error} with a fresh diagnostic. *)
val fail :
  ?context:(string * string) list -> phase:phase -> code:string -> string -> 'a

(** [failf ... fmt] — like {!fail} with a format string. *)
val failf :
  ?context:(string * string) list ->
  phase:phase ->
  code:string ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a

(** [protect f] runs [f ()], converting a raised {!Error} into
    [Error d]. Other exceptions propagate. *)
val protect : (unit -> 'a) -> ('a, t) result

val phase_name : phase -> string

(** CLI exit status for a diagnostic (2–6, by phase). *)
val exit_code : t -> int

val pp : Format.formatter -> t -> unit

(** Like {!pp} plus one indented [key: value] line per context entry. *)
val pp_verbose : Format.formatter -> t -> unit

val to_string : t -> string
