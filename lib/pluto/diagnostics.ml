(* Typed diagnostics for the scheduling pipeline.

   Library code used to [failwith] free-form strings on internal
   errors, which callers could neither dispatch on nor render usefully.
   A diagnostic carries a stable machine-readable code, the pipeline
   phase it arose in, a one-line human message and a list of key/value
   context pairs (rendered only in verbose mode).

   Within the libraries the idiom is exception-at-the-point,
   result-at-the-boundary: deep pipeline code raises [Error d] (so it
   does not have to thread [result] through every recursion), and the
   public entry points ([Scheduler.schedule], [Fusion.Resilient],
   [Icc_model.run_checked]) catch it and surface [('a, t) result]. The
   CLI maps phases to distinct exit codes. *)

type phase = Usage | Budget | Scheduling | Verification | Codegen

type t = {
  code : string;
  phase : phase;
  message : string;
  context : (string * string) list;
}

exception Error of t

let make ?(context = []) ~phase ~code message =
  { code; phase; message; context }

let fail ?context ~phase ~code message =
  raise (Error (make ?context ~phase ~code message))

let failf ?context ~phase ~code fmt =
  Format.kasprintf (fun message -> fail ?context ~phase ~code message) fmt

(* Run [f ()], converting a raised diagnostic into [Error d]. Other
   exceptions propagate untouched. *)
let protect f = match f () with v -> Ok v | exception Error d -> Stdlib.Error d

let phase_name = function
  | Usage -> "usage"
  | Budget -> "budget"
  | Scheduling -> "scheduling"
  | Verification -> "verification"
  | Codegen -> "codegen"

(* Distinct, stable exit codes per phase; 0 is success, 1 is reserved
   for uncategorized crashes. *)
let exit_code d =
  match d.phase with
  | Usage -> 2
  | Budget -> 3
  | Scheduling -> 4
  | Verification -> 5
  | Codegen -> 6

let pp fmt d =
  Format.fprintf fmt "[%s:%s] %s" (phase_name d.phase) d.code d.message

let pp_verbose fmt d =
  pp fmt d;
  List.iter
    (fun (k, v) -> Format.fprintf fmt "@\n  %s: %s" k v)
    d.context

let to_string d = Format.asprintf "%a" pp d

(* Make stray escapes readable in backtraces and test failures. *)
let () =
  Printexc.register_printer (function
    | Error d -> Some (Format.asprintf "Diagnostics.Error %a" pp_verbose d)
    | _ -> None)
