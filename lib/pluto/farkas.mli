(** Affine form of the Farkas lemma, applied to dependence polyhedra.

    A dependence edge e: S_src -> S_dst with polyhedron P_e over
    z = [s (d1); t (d2); params (np)] induces two requirements on the
    unknown hyperplane coefficients (Bondhugula et al., CC'08):

    - legality:  ϕ_dst(t) − ϕ_src(s) ≥ 0            ∀ z ∈ P_e
    - bounding:  u.p + w − (ϕ_dst(t) − ϕ_src(s)) ≥ 0 ∀ z ∈ P_e

    Each is turned into linear constraints on the coefficients by
    writing the form as a non-negative combination λ0 + λ.P_e of the
    polyhedron's constraints, equating coefficients dimension by
    dimension, and eliminating the multipliers λ by (rational)
    Fourier-Motzkin.

    The resulting constraint sets live in a {e local} coefficient
    space; the scheduler renames them into its global ILP space:

    {v
    0 .. d1-1          iterator coefficients of ϕ_src
    d1                 constant of ϕ_src
    d1+1 .. d1+d2      iterator coefficients of ϕ_dst
    d1+1+d2            constant of ϕ_dst
    d1+d2+2 .. +np-1   u (one per parameter)
    d1+d2+2+np         w
    v} *)

(** Size of the local space: [d1 + d2 + np + 3]. *)
val local_dim : d1:int -> d2:int -> np:int -> int

(** Column indices in the local space. *)
val src_coeff : int -> int

val src_const : d1:int -> int
val dst_coeff : d1:int -> int -> int
val dst_const : d1:int -> d2:int -> int
val u_col : d1:int -> d2:int -> int -> int
val w_col : d1:int -> d2:int -> np:int -> int

(** [legality_space ~d1 ~d2 ~np poly]: all local coefficient vectors
    whose hyperplanes weakly preserve the dependence.

    Both this and {!bounding_space} are memoized on
    [(d1, d2, np, {!Poly.Polyhedron.structural_key} poly)]: dependence
    edges whose polyhedra are structurally identical (common for
    uniform stencil accesses) share one multiplier elimination. Cache
    traffic is counted in {!Linalg.Counters.farkas_cache_hits} /
    [farkas_cache_misses]. *)
val legality_space :
  d1:int -> d2:int -> np:int -> Poly.Polyhedron.t -> Poly.Polyhedron.t

(** [bounding_space ~d1 ~d2 ~np poly]: the cost-model constraint tying
    the dependence distance to [u.p + w]. *)
val bounding_space :
  d1:int -> d2:int -> np:int -> Poly.Polyhedron.t -> Poly.Polyhedron.t

(** General entry point: [space_for ~form ~nloc poly] constrains the
    [nloc] local unknowns so that the affine form (given per
    z-column as a sparse list of [(local_var, coefficient)] pairs;
    column [dim poly] is the constant) is non-negative everywhere on
    [poly]. *)
val space_for :
  form:(int -> (int * int) list) -> nloc:int -> Poly.Polyhedron.t -> Poly.Polyhedron.t

(** Drop all memoized Farkas systems (process-wide cache). Benchmarks
    call this between repetitions so each measured run pays its own
    eliminations. *)
val reset_cache : unit -> unit
