(** The Pluto-style affine scheduler with pluggable fusion strategies.

    The algorithm follows Bondhugula et al. (CC'08) as described in
    Section 2.2 of the paper:

    + compute SCCs of the DDG;
    + fix a pre-fusion schedule (an order on the SCCs) — this is the
      knob the paper's wisefuse turns;
    + find statement-wise hyperplanes one level at a time with an ILP
      (Farkas legality + communication bounding, lexicographic
      objective (u, w, Σc)), issuing scalar "cuts" between SCCs when no
      hyperplane exists.

    The fusion models of Table 1 are configurations of this engine:
    [nofuse] cuts all SCCs apart up front, [maxfuse] never cuts until
    forced, [smartfuse] (the PLuTo default) cuts between SCCs of
    different dimensionality, and wisefuse (see the [fusion] library)
    additionally reorders the SCCs (Algorithm 1) and restores outer
    parallelism by minimal cuts (Algorithm 2). *)

type cut_strategy =
  | Cut_all_sccs  (** one partition per SCC *)
  | Cut_between_dims
      (** split where adjacent SCCs (in pre-fusion order) have
          different dimensionality *)
  | Cut_minimal
      (** split only between the two SCCs carrying an unsatisfied
          dependence *)
  | Cut_groups of int list
      (** explicit partitioning: one group id per SCC {e position} in
          the pre-fusion order (used by {!Fusion.Search} to evaluate
          enumerated fusion partitionings); ids must be non-decreasing
          along the order *)

type config = {
  name : string;
  order_sccs : Scop.Program.t -> Deps.Ddg.t -> int array -> int list;
      (** pre-fusion schedule: permutation of SCC ids; must respect
          precedence (every true dependence goes forward) *)
  initial_cut : cut_strategy option;
  fallback_cut : cut_strategy;
  outer_parallel : bool;  (** the paper's Algorithm 2 *)
}

type result = {
  prog : Scop.Program.t;
  config_name : string;
  engine : Engine.kind;
      (** the per-level solver that actually ran (after [Auto]
          resolution) *)
  all_deps : Deps.Dep.t list;  (** including input dependences *)
  true_deps : Deps.Dep.t list;
  ddg : Deps.Ddg.t;
  scc_of : int array;  (** statement id -> SCC id *)
  scc_order : int list;  (** the pre-fusion schedule used *)
  sched : Sched.t;
  outer_partition : int array;
      (** statement id -> outermost fusion partition (statements with
          equal values share the outermost loop nest) *)
}

(** Default orderings / strategies. *)

(** PLuTo's pre-fusion schedule (Section 2.3): plain topological order
    of the condensation, realized as the identity permutation because
    SCC ids are already topologically numbered by Kosaraju's DFS. This
    is what the stock configurations use. *)
val topological_order : Scop.Program.t -> Deps.Ddg.t -> int array -> int list

(** A genuine depth-first traversal of the SCC condensation (roots and
    successors in increasing SCC id, reverse postorder out). Also a
    valid topological order, but keeps each DFS subtree contiguous:
    independent chains are emitted one after the other instead of
    interleaved by id. *)
val dfs_order : Scop.Program.t -> Deps.Ddg.t -> int array -> int list

val nofuse : config
val maxfuse : config
val smartfuse : config

(** Run the scheduler. Dependences are computed internally (with input
    dependences, so downstream reuse analyses can use them). Every
    returned result has passed {!Satisfy.check_complete} and
    {!Satisfy.check_legal} (always-on exit verification). With
    [budget], the hyperplane search (per-level ILP and δ-range LPs) is
    capped; dependence analysis and verification stay unbudgeted. With
    [engine], the per-level solver is selected explicitly (default
    [Engine.Auto]: ILP below {!Engine.auto_threshold} statements,
    lp-dfp at or above — see {!Engine}).
    @raise Diagnostics.Error if no legal schedule can be found within
    budget — use {!schedule} for the non-raising variant. *)
val run :
  ?param_floor:int ->
  ?budget:Linalg.Budget.t ->
  ?engine:Engine.choice ->
  config ->
  Scop.Program.t ->
  result

(** Run with dependences already computed (they must include input
    dependences if downstream wants them).
    @raise Diagnostics.Error like {!run}. *)
val run_with_deps :
  ?engine:Engine.choice -> config -> Scop.Program.t -> Deps.Dep.t list -> result

(** {!run} with the failure path reified: a schedule that failed
    verification or a search that died (budget exhaustion included)
    comes back as [Error d] instead of raising. This is the entry point
    the degradation ladder ({!Fusion.Resilient}) builds on. *)
val schedule :
  ?param_floor:int ->
  ?budget:Linalg.Budget.t ->
  ?engine:Engine.choice ->
  config ->
  Scop.Program.t ->
  (result, Diagnostics.t) Stdlib.result

(** {!schedule} with dependences already computed. *)
val schedule_with_deps :
  ?budget:Linalg.Budget.t ->
  ?engine:Engine.choice ->
  config ->
  Scop.Program.t ->
  Deps.Dep.t list ->
  (result, Diagnostics.t) Stdlib.result

(** Fusion partitions as lists of statement ids, in execution order. *)
val partitions : result -> int list list

(** The dimensionality (maximum statement depth) of an SCC. *)
val scc_dim : Scop.Program.t -> int list -> int
