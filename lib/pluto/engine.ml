(* Pluggable scheduling engines: which per-level hyperplane solver the
   scheduler runs, and how "auto" picks one per program. *)

type kind = Ilp | Lp_dfp
type choice = Fixed of kind | Auto

let kind_name = function Ilp -> "ilp" | Lp_dfp -> "lp-dfp"
let choice_name = function Fixed k -> kind_name k | Auto -> "auto"

let of_string = function
  | "ilp" -> Some (Fixed Ilp)
  | "lp-dfp" -> Some (Fixed Lp_dfp)
  | "auto" -> Some Auto
  | _ -> None

(* The registry kernels top out around 20 statements and must keep
   their byte-identical ILP schedules under Auto; the generated-SCoP
   scale sweep shows lp-dfp winning well before 100 statements. 40
   splits the two regimes with margin on both sides. *)
let auto_threshold = 40

let resolve c ~nstmts =
  match c with Fixed k -> k | Auto -> if nstmts >= auto_threshold then Lp_dfp else Ilp
