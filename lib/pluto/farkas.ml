open Linalg
open Poly

let local_dim ~d1 ~d2 ~np = d1 + d2 + np + 3

let src_coeff i = i
let src_const ~d1 = d1
let dst_coeff ~d1 j = d1 + 1 + j
let dst_const ~d1 ~d2 = d1 + 1 + d2
let u_col ~d1 ~d2 p = d1 + d2 + 2 + p
let w_col ~d1 ~d2 ~np = d1 + d2 + 2 + np

let space_for ~form ~nloc poly =
  let dz = Polyhedron.dim poly in
  let cons = Polyhedron.constraints poly in
  let ncons = List.length cons in
  let nmul = 1 + ncons in
  (* variables: [locals (nloc); lambda0; lambda_1 .. lambda_ncons] *)
  let dim = nloc + nmul in
  let lam0 = nloc in
  let lam j = nloc + 1 + j in
  let eqs = ref [] in
  (* one equality per z-dimension: form_k(c) - sum_j lambda_j a_jk = 0 *)
  for k = 0 to dz - 1 do
    let row = Array.make (dim + 1) 0 in
    List.iter (fun (v, c) -> row.(v) <- row.(v) + c) (form k);
    List.iteri
      (fun j con ->
        let a = Constr.coeff con k in
        (* constraints are normalized to integer coefficients *)
        row.(lam j) <- -Bigint.to_int (Q.num a))
      cons;
    eqs := Constr.eq (Array.to_list row) :: !eqs
  done;
  (* the constant: form_const(c) - lambda0 - sum_j lambda_j b_j = 0 *)
  let crow = Array.make (dim + 1) 0 in
  List.iter (fun (v, c) -> crow.(v) <- crow.(v) + c) (form dz);
  crow.(lam0) <- -1;
  List.iteri
    (fun j con -> crow.(lam j) <- -Bigint.to_int (Q.num (Constr.const con)))
    cons;
  eqs := Constr.eq (Array.to_list crow) :: !eqs;
  (* lambda0 >= 0 and lambda_j >= 0 for inequalities (free for equalities) *)
  let nonneg v =
    let row = Array.make (dim + 1) 0 in
    row.(v) <- 1;
    Constr.ge (Array.to_list row)
  in
  let ineqs =
    nonneg lam0
    :: List.concat
         (List.mapi
            (fun j con ->
              match Constr.kind con with
              | Constr.Ge -> [ nonneg (lam j) ]
              | Constr.Eq -> [])
            cons)
  in
  let sys = Polyhedron.make dim (!eqs @ ineqs) in
  (* eliminate the multipliers one at a time (they are rational: no gcd
     tightening). Plain Fourier-Motzkin can blow up doubly
     exponentially on wider stencils (sp's +-2 offsets), so (a) pick a
     greedy elimination order - equality substitutions first, then the
     variable with the fewest positive*negative pairings - and (b)
     prune redundant rows with small LPs whenever a step grew the
     system *)
  let p = ref sys in
  while Polyhedron.dim !p > nloc do
    let cons = Polyhedron.constraints !p in
    let d = Polyhedron.dim !p in
    let best = ref (-1) and best_score = ref max_int in
    for v = nloc to d - 1 do
      let pos = ref 0 and neg = ref 0 and in_eq = ref false in
      List.iter
        (fun c ->
          let s = Linalg.Q.sign (Constr.coeff c v) in
          if s <> 0 && Constr.kind c = Constr.Eq then in_eq := true
          else if s > 0 then incr pos
          else if s < 0 then incr neg)
        cons;
      let score = if !in_eq then -1 else !pos * !neg in
      if score < !best_score then begin
        best_score := score;
        best := v
      end
    done;
    let before = List.length cons in
    p := Polyhedron.eliminate ~integer:false !p [ !best ];
    if List.length (Polyhedron.constraints !p) > max 24 before then
      p := Ilp.Bb.remove_redundant !p
  done;
  Ilp.Bb.remove_redundant !p

(* --- structural memoization -------------------------------------------

   [legality_space] and [bounding_space] are pure functions of
   (d1, d2, np) and the dependence polyhedron's constraint system.
   Kernels routinely carry many dependence edges with structurally
   identical polyhedra — uniform stencil accesses over the same domain
   differ only in which array they touch — so the (expensive)
   multiplier elimination is keyed on {!Polyhedron.structural_key} and
   run once per equivalence class. *)

let cache : (string, Polyhedron.t) Hashtbl.t = Hashtbl.create 64
let reset_cache () = Hashtbl.reset cache

let cache_event ~tag ~d1 ~d2 ~np ~hit =
  if Obs.Trace.on () then
    Obs.Trace.instant ~cat:"ilp" "farkas.cache"
      ~args:
        [
          ("tag", Obs.Json.Str tag);
          ("d1", Obs.Json.Int d1);
          ("d2", Obs.Json.Int d2);
          ("np", Obs.Json.Int np);
          ("hit", Obs.Json.Bool hit);
        ]

let memo ~tag ~d1 ~d2 ~np poly compute =
  let key =
    Printf.sprintf "%s:%d:%d:%d:%s" tag d1 d2 np
      (Polyhedron.structural_key poly)
  in
  match Hashtbl.find_opt cache key with
  | Some r ->
    incr Counters.farkas_cache_hits;
    cache_event ~tag ~d1 ~d2 ~np ~hit:true;
    r
  | None ->
    incr Counters.farkas_cache_misses;
    cache_event ~tag ~d1 ~d2 ~np ~hit:false;
    let r = compute () in
    Hashtbl.add cache key r;
    r

(* legality: phi_dst(t) - phi_src(s) >= 0
   coefficient of s_i: -c_src_i; of t_j: +c_dst_j; of p: 0;
   constant: c_dst0 - c_src0 *)
let legality_space ~d1 ~d2 ~np poly =
  let nloc = local_dim ~d1 ~d2 ~np in
  let dz = d1 + d2 + np in
  if Polyhedron.dim poly <> dz then invalid_arg "Farkas.legality_space: dims";
  memo ~tag:"L" ~d1 ~d2 ~np poly (fun () ->
      let form k =
        if k < d1 then [ (src_coeff k, -1) ]
        else if k < d1 + d2 then [ (dst_coeff ~d1 (k - d1), 1) ]
        else if k < dz then [] (* parameters do not appear in phi *)
        else [ (dst_const ~d1 ~d2, 1); (src_const ~d1, -1) ]
      in
      space_for ~form ~nloc poly)

(* bounding: u.p + w - (phi_dst(t) - phi_src(s)) >= 0 *)
let bounding_space ~d1 ~d2 ~np poly =
  let nloc = local_dim ~d1 ~d2 ~np in
  let dz = d1 + d2 + np in
  if Polyhedron.dim poly <> dz then invalid_arg "Farkas.bounding_space: dims";
  memo ~tag:"B" ~d1 ~d2 ~np poly (fun () ->
      let form k =
        if k < d1 then [ (src_coeff k, 1) ]
        else if k < d1 + d2 then [ (dst_coeff ~d1 (k - d1), -1) ]
        else if k < dz then [ (u_col ~d1 ~d2 (k - d1 - d2), 1) ]
        else
          [ (w_col ~d1 ~d2 ~np, 1); (src_const ~d1, 1); (dst_const ~d1 ~d2, -1) ]
      in
      space_for ~form ~nloc poly)
