open Linalg
open Deps

type cut_strategy =
  | Cut_all_sccs
  | Cut_between_dims
  | Cut_minimal
  | Cut_groups of int list

type config = {
  name : string;
  order_sccs : Scop.Program.t -> Ddg.t -> int array -> int list;
  initial_cut : cut_strategy option;
  fallback_cut : cut_strategy;
  outer_parallel : bool;
}

type result = {
  prog : Scop.Program.t;
  config_name : string;
  engine : Engine.kind; (* the per-level solver that actually ran *)
  all_deps : Dep.t list;
  true_deps : Dep.t list;
  ddg : Ddg.t;
  scc_of : int array;
  scc_order : int list;
  sched : Sched.t;
  outer_partition : int array;
}

(* SCC ids are already a topological numbering of the condensation
   (Kosaraju's DFS); the identity permutation is therefore a valid
   pre-fusion order and is what the stock configurations use. *)
let topological_order _prog _ddg scc_of =
  List.init (Ddg.scc_count scc_of) Fun.id

(* A genuine depth-first traversal of the SCC condensation: roots and
   successors are taken in increasing SCC id and SCCs are emitted in
   reverse postorder. Also a topological order, but it keeps each DFS
   subtree contiguous — unlike {!topological_order}, two independent
   chains come out one after the other rather than interleaved. *)
let dfs_order _prog (ddg : Ddg.t) scc_of =
  let nscc = Ddg.scc_count scc_of in
  let succ = Array.make nscc [] in
  Array.iteri
    (fun src dsts ->
      List.iter
        (fun dst ->
          let a = scc_of.(src) and b = scc_of.(dst) in
          if a <> b && not (List.mem b succ.(a)) then succ.(a) <- b :: succ.(a))
        dsts)
    ddg.Ddg.succ;
  Array.iteri (fun i l -> succ.(i) <- List.sort compare l) succ;
  let visited = Array.make nscc false in
  let post = ref [] in
  let rec dfs v =
    if not visited.(v) then begin
      visited.(v) <- true;
      List.iter dfs succ.(v);
      post := v :: !post
    end
  in
  for v = 0 to nscc - 1 do
    dfs v
  done;
  !post

let scc_dim (prog : Scop.Program.t) members =
  List.fold_left
    (fun m id -> max m (Scop.Statement.depth prog.stmts.(id)))
    0 members

(* --- ILP coefficient bounds (Pluto-style) ------------------------------ *)

let c_iter_max = 4
let c_const_max = 6
let u_max = 30
let w_max = 30

(* --- mutable scheduling state ------------------------------------------ *)

type state = {
  prog : Scop.Program.t;
  np : int;
  cfg : config;
  engine : Engine.kind; (* resolved per-level solver (see Engine.resolve) *)
  budget : Budget.t option;
      (* caps the hyperplane search (per-level ILP + δ-range LPs); dep
         analysis and verification run unbudgeted so a degraded run can
         still be checked *)
  true_deps : Dep.t array;
  scc_of : int array;
  scc_pos : int array; (* scc id -> position in pre-fusion order *)
  stmt_order : int array; (* position in execution order -> stmt id *)
  (* per-dep cached Farkas constraint systems in the global ILP space *)
  legality : Poly.Constr.t list array;
  bounding : Poly.Constr.t list array;
  var_offset : int array; (* stmt id -> first column of its coeff block *)
  nv : int; (* total ILP variables *)
  rows_rev : Sched.row list array; (* per stmt, innermost first *)
  satisfied : bool array; (* per true dep *)
  mutable part : int array; (* current (outer) partition per stmt *)
  hyp_rows : int array list array; (* found iterator parts per stmt, for rank *)
  rank : int array; (* per stmt *)
  mutable accepted_hyp_rows : int;
  (* incremental constraint store: the per-level ILP is assembled from
     cached segments instead of being rebuilt from scratch on every
     level and cut retry *)
  bounds : Poly.Constr.t list; (* coefficient box: level-invariant *)
  stmt_seg : Poly.Constr.t list array; (* per-stmt rows, valid at [stmt_seg_rank] *)
  stmt_seg_rank : int array; (* rank when [stmt_seg] was built; -1 = never *)
  mutable dep_seg : (int * Poly.Constr.t list) option;
      (* active legality+bounding rows, keyed by #satisfied deps *)
}

let stmt_depth (prog : Scop.Program.t) id = Scop.Statement.depth prog.stmts.(id)

(* --- decision provenance (lib/obs) -------------------------------------

   Every fusion-relevant decision the engine takes — per-level ILP
   solves, cuts and their justifications, Algorithm 2 triggers,
   verification outcomes — is emitted as a typed instant event when the
   trace sink is on. All emission sites are guarded by [Obs.Trace.on]
   so the argument lists are never even allocated on the default null
   sink. *)

let strategy_name = function
  | Cut_all_sccs -> "all-sccs"
  | Cut_between_dims -> "between-dims"
  | Cut_minimal -> "minimal"
  | Cut_groups _ -> "groups"

let partition_string part =
  String.concat "," (List.map string_of_int (Array.to_list part))

let ranks_string st =
  String.concat "," (List.map string_of_int (Array.to_list st.rank))

let dep_args st (d : Dep.t) =
  [
    ("src", Obs.Json.Str st.prog.stmts.(d.src).Scop.Statement.name);
    ("dst", Obs.Json.Str st.prog.stmts.(d.dst).Scop.Statement.name);
    ("src-stmt", Obs.Json.Int d.src);
    ("dst-stmt", Obs.Json.Int d.dst);
    ("src-scc", Obs.Json.Int st.scc_of.(d.src));
    ("dst-scc", Obs.Json.Int st.scc_of.(d.dst));
    ("kind", Obs.Json.Str (Dep.kind_to_string d.kind));
  ]

let cut_event st ~name ~strategy ?requested ?violating () =
  if Obs.Trace.on () then
    Obs.Trace.instant ~cat:"fuse" name
      ~args:
        ([
           ("config", Obs.Json.Str st.cfg.name);
           ("level", Obs.Json.Int st.accepted_hyp_rows);
           ("strategy", Obs.Json.Str strategy);
         ]
        @ (match requested with
          | Some r when r <> strategy -> [ ("requested", Obs.Json.Str r) ]
          | _ -> [])
        @ (match violating with
          | Some d -> dep_args st d
          | None -> [])
        @ [ ("partition", Obs.Json.Str (partition_string st.part)) ])

(* Rename a Farkas-local constraint system into the global ILP space.
   Global layout: [u(np); w; per stmt: c_1..c_d, c0]. *)
let rename_local_to_global ~np ~var_offset ~nv (dep : Dep.t) ~d1 ~d2 cons_poly =
  let f i =
    if i < d1 then var_offset.(dep.src) + i
    else if i = d1 then var_offset.(dep.src) + d1 (* src const; block size d1+1 *)
    else if i < d1 + 1 + d2 then var_offset.(dep.dst) + (i - d1 - 1)
    else if i = d1 + 1 + d2 then var_offset.(dep.dst) + d2
    else if i < d1 + d2 + 2 + np then i - (d1 + d2 + 2) (* u_p -> column p *)
    else np (* w *)
  in
  Poly.Polyhedron.constraints (Poly.Polyhedron.rename cons_poly ~dim_to:nv f)

(* Coefficient box: 0 <= u_p <= u_max, 0 <= w <= w_max, iterator
   coefficients <= c_iter_max, constants <= c_const_max (lower bounds
   come from the scheduler's nonneg ILP mode). Independent of the
   scheduling level, so built once per state. *)
let upper_bound_cons ~np ~nv ~var_offset (prog : Scop.Program.t) =
  let bound v ub =
    let row = Array.make (nv + 1) 0 in
    row.(v) <- -1;
    row.(nv) <- ub;
    Poly.Constr.ge (Array.to_list row)
  in
  let cons = ref [] in
  for p = 0 to np - 1 do
    cons := bound p u_max :: !cons
  done;
  cons := bound np w_max :: !cons;
  Array.iteri
    (fun id _ ->
      let d = stmt_depth prog id in
      for i = 0 to d - 1 do
        cons := bound (var_offset.(id) + i) c_iter_max :: !cons
      done;
      cons := bound (var_offset.(id) + d) c_const_max :: !cons)
    prog.stmts;
  !cons

let make_state ?budget ~engine cfg (prog : Scop.Program.t) all_deps =
  let np = Scop.Program.nparams prog in
  let n = Array.length prog.stmts in
  let ddg = Ddg.build prog all_deps in
  let scc_of = Ddg.scc_kosaraju ddg in
  let scc_order = cfg.order_sccs prog ddg scc_of in
  let nscc = Ddg.scc_count scc_of in
  if List.sort compare scc_order <> List.init nscc Fun.id then
    invalid_arg "Scheduler: order_sccs must be a permutation of SCC ids";
  let scc_pos = Array.make nscc 0 in
  List.iteri (fun pos id -> scc_pos.(id) <- pos) scc_order;
  (* execution order: by (scc position, statement id) *)
  let stmt_order =
    Array.of_list
      (List.sort
         (fun a b ->
           compare (scc_pos.(scc_of.(a)), a) (scc_pos.(scc_of.(b)), b))
         (List.init n Fun.id))
  in
  let var_offset = Array.make n 0 in
  let off = ref (np + 1) in
  Array.iteri
    (fun id _ ->
      var_offset.(id) <- !off;
      off := !off + stmt_depth prog id + 1)
    prog.stmts;
  let nv = !off in
  let true_deps = Array.of_list (List.filter Dep.is_true all_deps) in
  let legality =
    Array.map
      (fun (d : Dep.t) ->
        let d1 = stmt_depth prog d.src and d2 = stmt_depth prog d.dst in
        rename_local_to_global ~np ~var_offset ~nv d ~d1 ~d2
          (Farkas.legality_space ~d1 ~d2 ~np d.poly))
      true_deps
  in
  let bounding =
    Array.map
      (fun (d : Dep.t) ->
        let d1 = stmt_depth prog d.src and d2 = stmt_depth prog d.dst in
        rename_local_to_global ~np ~var_offset ~nv d ~d1 ~d2
          (Farkas.bounding_space ~d1 ~d2 ~np d.poly))
      true_deps
  in
  ( {
      prog;
      np;
      cfg;
      engine;
      budget;
      true_deps;
      scc_of;
      scc_pos;
      stmt_order;
      legality;
      bounding;
      var_offset;
      nv;
      rows_rev = Array.make n [];
      (* reduction-tagged self-dependences are pre-satisfied: reduction
         legality lets the chain reassociate, so they never contribute
         legality or bounding rows *)
      satisfied = Array.map (fun (d : Dep.t) -> d.tag = Dep.Reduction) true_deps;
      part = Array.make n 0;
      hyp_rows = Array.make n [];
      rank = Array.make n 0;
      accepted_hyp_rows = 0;
      bounds = upper_bound_cons ~np ~nv ~var_offset prog;
      stmt_seg = Array.make n [];
      stmt_seg_rank = Array.make n (-1);
      dep_seg = None;
    },
    ddg,
    scc_order )

(* --- cuts ---------------------------------------------------------------- *)

(* Assign dense partition ids from per-statement keys, scanning in
   execution order so ids are execution-ordered. *)
let densify st (key : int -> int * int) =
  let n = Array.length st.prog.stmts in
  let out = Array.make n 0 in
  let next = ref (-1) in
  let last = ref None in
  Array.iter
    (fun id ->
      let k = key id in
      (match !last with
      | Some k' when k' = k -> ()
      | _ -> incr next);
      last := Some (key id);
      out.(id) <- !next)
    st.stmt_order;
  out

let beta_of_cut st strategy ~violating =
  match strategy with
  | Cut_all_sccs -> densify st (fun id -> (st.part.(id), st.scc_pos.(st.scc_of.(id))))
  | Cut_between_dims ->
    (* walk SCCs in order; a new group starts when the current partition
       changes or the dimensionality changes *)
    let dim_of_scc = Hashtbl.create 16 in
    Array.iteri
      (fun id scc ->
        let d = stmt_depth st.prog id in
        let cur = Option.value (Hashtbl.find_opt dim_of_scc scc) ~default:0 in
        Hashtbl.replace dim_of_scc scc (max cur d))
      st.scc_of;
    let group_of_scc = Hashtbl.create 16 in
    let group = ref (-1) in
    let last = ref None in
    Array.iter
      (fun id ->
        let scc = st.scc_of.(id) in
        if not (Hashtbl.mem group_of_scc scc) then begin
          let k = (st.part.(id), Hashtbl.find dim_of_scc scc) in
          (match !last with Some k' when k' = k -> () | _ -> incr group);
          last := Some k;
          Hashtbl.add group_of_scc scc !group
        end)
      st.stmt_order;
    densify st (fun id -> (0, Hashtbl.find group_of_scc st.scc_of.(id)))
  | Cut_minimal -> (
    match violating with
    | None -> invalid_arg "Scheduler: minimal cut needs a violating dependence"
    | Some (d : Dep.t) ->
      let boundary = st.scc_pos.(st.scc_of.(d.dst)) in
      densify st (fun id ->
          (st.part.(id), if st.scc_pos.(st.scc_of.(id)) < boundary then 0 else 1)))
  | Cut_groups groups ->
    let arr = Array.of_list groups in
    densify st (fun id -> (st.part.(id), arr.(st.scc_pos.(st.scc_of.(id)))))

(* mark dependences satisfied by a beta row; error on a backward cut *)
let mark_beta_satisfaction st beta =
  Array.iteri
    (fun i (d : Dep.t) ->
      if not st.satisfied.(i) then begin
        let bs = beta.(d.src) and bd = beta.(d.dst) in
        if bd > bs then st.satisfied.(i) <- true
        else if bd < bs then
          Diagnostics.fail ~phase:Scheduling ~code:"sched.backward-cut"
            ~context:
              [
                ("config", st.cfg.name);
                ("src", Printf.sprintf "S%d" d.src);
                ("dst", Printf.sprintf "S%d" d.dst);
              ]
            (Printf.sprintf
               "Scheduler(%s): backward cut over dependence S%d->S%d"
               st.cfg.name d.src d.dst)
      end)
    st.true_deps

let apply_beta st beta =
  Array.iteri
    (fun id rows -> st.rows_rev.(id) <- Sched.Beta beta.(id) :: rows)
    st.rows_rev;
  mark_beta_satisfaction st beta;
  st.part <- Array.copy beta

(* has the cut refined anything? *)
let is_refinement st beta = beta <> st.part

(* --- the per-level ILP --------------------------------------------------- *)

(* Rows constraining one statement's coefficient block at its current
   rank. Recomputed only when the rank changes (see [stmt_cons]). *)
let stmt_seg_for st id =
  let d = stmt_depth st.prog id in
  let o = st.var_offset.(id) in
  let cons = ref [] in
  if st.rank.(id) >= d then begin
    (* finished: force the whole block to zero *)
    for i = 0 to d do
      let row = Array.make (st.nv + 1) 0 in
      row.(o + i) <- 1;
      cons := Poly.Constr.eq (Array.to_list row) :: !cons
    done
  end
  else begin
    (* non-trivial: sum of iterator coefficients >= 1 *)
    let row = Array.make (st.nv + 1) 0 in
    for i = 0 to d - 1 do
      row.(o + i) <- 1
    done;
    row.(st.nv) <- -1;
    cons := Poly.Constr.ge (Array.to_list row) :: !cons;
    (* linear independence from the rows already found: every basis
       vector of the orthogonal complement must have a non-negative
       projection, and their sum a positive one (Pluto heuristic) *)
    if st.hyp_rows.(id) <> [] then begin
      let h = Mat.of_ints (Array.of_list (List.rev st.hyp_rows.(id))) in
      let comp = Mat.orthogonal_complement h in
      (* orient each basis vector so its entry sum is >= 0 *)
      let comp =
        List.map
          (fun v ->
            let s = Array.fold_left Q.add Q.zero v in
            if Q.sign s < 0 then Vec.neg v else v)
          comp
      in
      let sum_row = Array.make (st.nv + 1) 0 in
      List.iter
        (fun v ->
          let row = Array.make (st.nv + 1) 0 in
          Array.iteri
            (fun i q ->
              let c = Bigint.to_int (Q.num q) in
              row.(o + i) <- c;
              sum_row.(o + i) <- sum_row.(o + i) + c)
            v;
          cons := Poly.Constr.ge (Array.to_list row) :: !cons)
        comp;
      sum_row.(st.nv) <- -1;
      cons := Poly.Constr.ge (Array.to_list sum_row) :: !cons
    end
  end;
  !cons

(* Per-statement rows depend only on the statement's rank (the
   orthogonal-complement rows are a function of [hyp_rows], which grows
   exactly when the rank does), so each segment — including its
   orthogonal-complement computation — is reused across cut retries at
   the same level, and the "block forced to zero" segment of finished
   statements is reused for the rest of the run. *)
let stmt_cons st =
  let cons = ref [] in
  Array.iteri
    (fun id _ ->
      if st.stmt_seg_rank.(id) <> st.rank.(id) then begin
        st.stmt_seg.(id) <- stmt_seg_for st id;
        st.stmt_seg_rank.(id) <- st.rank.(id)
      end;
      cons := st.stmt_seg.(id) @ !cons)
    st.prog.stmts;
  !cons

(* Legality + bounding rows of the still-active dependences. Satisfied
   flags only ever flip to [true], so the concatenation is keyed by how
   many dependences are satisfied: levels and cut retries that satisfy
   nothing new reuse the previous row list unchanged. *)
let dep_cons st =
  let nsat = Array.fold_left (fun n s -> if s then n + 1 else n) 0 st.satisfied in
  match st.dep_seg with
  | Some (k, cached) when k = nsat -> cached
  | _ ->
    let cons = ref [] in
    Array.iteri
      (fun i _ ->
        if not st.satisfied.(i) then
          cons := st.legality.(i) @ st.bounding.(i) @ !cons)
      st.true_deps;
    st.dep_seg <- Some (nsat, !cons);
    !cons

(* The per-level problem both engines share: the polyhedron over the
   global coefficient space and the lexicographic objective tower. *)
let level_problem st =
  let cons = st.bounds @ stmt_cons st @ dep_cons st in
  let p = Poly.Polyhedron.make st.nv cons in
  let obj mask =
    let v = Vec.zero (st.nv + 1) in
    List.iter (fun i -> v.(i) <- Q.one) mask;
    v
  in
  let sum_u = obj (List.init st.np Fun.id) in
  let just_w = obj [ st.np ] in
  let sum_c_iter =
    obj
      (List.concat
         (List.mapi
            (fun id _ ->
              List.init (stmt_depth st.prog id) (fun i -> st.var_offset.(id) + i))
            (Array.to_list st.prog.stmts)))
  in
  let sum_c0 =
    obj
      (List.mapi
         (fun id _ -> st.var_offset.(id) + stmt_depth st.prog id)
         (Array.to_list st.prog.stmts))
  in
  (* first tie-break: spatial locality - penalize hyperplanes built
     from iterators that index the last (stride-1, row-major) subscript
     of some access, so those iterators sink to the innermost levels *)
  let stride =
    let v = Vec.zero (st.nv + 1) in
    Array.iteri
      (fun id (s : Scop.Statement.t) ->
        let d = stmt_depth st.prog id in
        List.iter
          (fun (a : Scop.Access.t) ->
            let last = a.Scop.Access.idx.(Scop.Access.arity a - 1) in
            for i = 0 to d - 1 do
              if last.(i) <> 0 then v.(st.var_offset.(id) + i) <- Q.one
            done)
          (Scop.Statement.accesses s))
      st.prog.stmts;
    v
  in
  (* second tie-break: prefer earlier original iterators at outer
     levels, so untied permutations follow program order *)
  let iter_order =
    let v = Vec.zero (st.nv + 1) in
    Array.iteri
      (fun id _ ->
        for i = 0 to stmt_depth st.prog id - 1 do
          v.(st.var_offset.(id) + i) <- Q.of_int i
        done)
      st.prog.stmts;
    v
  in
  (p, [ sum_u; just_w; sum_c_iter; stride; iter_order; sum_c0 ])

(* The original engine: branch-and-bound integer lexmin. *)
let solve_level_ilp st p objs =
  match Ilp.Bb.lexmin ~nonneg:true ?budget:st.budget p objs with
  | None -> None
  | Some (_, x) -> Some x

let row_of_solution st x id =
  let d = stmt_depth st.prog id in
  let o = st.var_offset.(id) in
  let row = Array.make (d + st.np + 1) 0 in
  for i = 0 to d - 1 do
    row.(i) <- x.(o + i)
  done;
  row.(d + st.np) <- x.(o + d);
  row

(* delta range of dependence [d] for candidate rows. The max re-solves
   the min's final basis with the negated objective (primal-feasible
   warm restart): only the optimal values are consumed, so a warm
   re-solve is safe here. *)
let dep_range st (d : Dep.t) src_row dst_row =
  let d1 = stmt_depth st.prog d.src and d2 = stmt_depth st.prog d.dst in
  let objv = Sched.phi_diff ~d1 ~d2 ~np:st.np src_row dst_row in
  let min_res, warm = Ilp.Lp.minimize_warm ?budget:st.budget d.poly objv in
  (* [Exhausted] (budget ran out mid-range) maps to [None] = unknown:
     satisfaction marking and outer-violation detection both treat
     unknown conservatively (dep stays unsatisfied / counts as a
     violation), so exhaustion can only delay fusion, never unsoundly
     enable it. *)
  let dmin =
    match min_res with
    | Ilp.Lp.Optimal (v, _) -> Some v
    | Ilp.Lp.Unbounded | Ilp.Lp.Exhausted -> None
    | Ilp.Lp.Infeasible -> Some Q.zero (* empty dependence: vacuous *)
  in
  let max_res =
    match warm with
    | Some w -> fst (Ilp.Lp.reoptimize ?budget:st.budget w ~add:[] ~obj:(Vec.neg objv))
    | None -> (
      (* min was infeasible or unbounded; only the infeasible case can
         still answer, mirroring [Lp.maximize] *)
      match Ilp.Lp.maximize ?budget:st.budget d.poly objv with
      | Ilp.Lp.Optimal (v, _) -> Ilp.Lp.Optimal (Q.neg v, [||])
      | r -> r)
  in
  let dmax =
    match max_res with
    | Ilp.Lp.Optimal (v, _) -> Some (Q.neg v) (* min of -objv *)
    | Ilp.Lp.Unbounded | Ilp.Lp.Exhausted -> None
    | Ilp.Lp.Infeasible -> Some Q.zero
  in
  (dmin, dmax)

(* --- the lp-dfp engine (LP relaxation + clustering) ---------------------

   The decoupled path of Acharya & Bondhugula's pluto-lp-dfp: solve the
   per-level problem as a pure LP (no branching), then recover an
   integral hyperplane by scaling each dependence-connected statement
   cluster of the rational vertex uniformly. Legality survives the
   scaling because (a) no active dependence links two clusters, so each
   dependence's difference form phi_dst - phi_src is scaled by one
   positive factor, and (b) the recovered rows are re-certified against
   the dependence polyhedra before acceptance — any level that fails
   certification falls back to the ILP engine. *)

(* Pure-LP lexicographic minimum over the same objective tower as the
   ILP engine: each stage minimizes one objective, fixes its optimal
   value with an equality row, and warm-restarts the next stage from
   the previous basis (mirroring [Bb.lexmin], minus the trees and the
   final cold integer search). Returns the last stage's vertex. *)
let lp_lexmin st p objs =
  let dim = Poly.Polyhedron.dim p in
  let rec go p from last = function
    | [] -> last
    | obj :: rest -> (
      incr Counters.lp_relax_solves;
      let result, warm =
        match from with
        | Some (w, cs) -> Ilp.Lp.reoptimize ?budget:st.budget w ~add:cs ~obj
        | None -> Ilp.Lp.minimize_warm ~nonneg:true ?budget:st.budget p obj
      in
      match result with
      | Ilp.Lp.Optimal (v, x) ->
        (* fix this objective: obj . x + c = v *)
        let fix = Vec.copy obj in
        fix.(dim) <- Q.sub fix.(dim) v;
        let fixc = Poly.Constr.make Poly.Constr.Eq fix in
        go
          (Poly.Polyhedron.add p fixc)
          (Option.map (fun w -> (w, [ fixc ])) warm)
          (Some x) rest
      | Ilp.Lp.Infeasible | Ilp.Lp.Unbounded | Ilp.Lp.Exhausted -> None)
  in
  go p None None objs

(* Dependence-connected statement clusters: union-find over the
   endpoints of the still-active true dependences, members in
   increasing statement id, clusters by smallest member. *)
let active_clusters st =
  let n = Array.length st.prog.stmts in
  let parent = Array.init n Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      parent.(i) <- find parent.(i);
      parent.(i)
    end
  in
  Array.iteri
    (fun i (d : Dep.t) ->
      if not st.satisfied.(i) then begin
        let a = find d.src and b = find d.dst in
        if a <> b then parent.(max a b) <- min a b
      end)
    st.true_deps;
  let members = Array.make n [] in
  for id = n - 1 downto 0 do
    let r = find id in
    members.(r) <- id :: members.(r)
  done;
  List.filter (fun l -> l <> []) (Array.to_list members)

(* Recovered rows with entries beyond this are treated as a clustering
   failure (ILP fallback) rather than embedded into schedules. *)
let max_scaled_coeff = 1024

(* Scale one cluster of the rational vertex [xq] into [xi]: multiply
   the members' coefficient blocks by the lcm of their denominators,
   then divide by the gcd of the scaled entries — the smallest uniform
   integral multiple of the cluster (the per-statement rows stay valid:
   entries are nonnegative, so a nonzero block keeps sum >= 1, and
   positive scaling preserves the orthogonal-complement projections).
   Returns the scaling factor, or [None] past [max_scaled_coeff]. *)
let scale_cluster st xq xi members =
  let slots =
    List.concat_map
      (fun id ->
        let d = stmt_depth st.prog id in
        List.init (d + 1) (fun i -> st.var_offset.(id) + i))
      members
  in
  let lcm_den =
    List.fold_left (fun l s -> Bigint.lcm l (Q.den xq.(s))) Bigint.one slots
  in
  let scaled =
    List.map
      (fun s -> (s, Q.to_bigint (Q.mul xq.(s) (Q.of_bigint lcm_den))))
      slots
  in
  let g = List.fold_left (fun g (_, b) -> Bigint.gcd g b) Bigint.zero scaled in
  let g = if Bigint.sign g = 0 then Bigint.one else g in
  let ok =
    List.for_all
      (fun (s, b) ->
        match Bigint.to_int_opt (Bigint.div b g) with
        | Some c when abs c <= max_scaled_coeff ->
          xi.(s) <- c;
          true
        | _ -> false)
      scaled
  in
  if ok then Some (lcm_den, g) else None

(* Certify a recovered candidate: evaluate every still-active true
   dependence's cached Farkas legality rows at the integral point.
   Fourier-Motzkin elimination is exact over the rationals, so those
   rows are precisely the weak-legality face (delta >= 0 over the
   dependence polyhedron) the per-level problem encodes — a point
   satisfying them is legal for that dependence. Evaluation keeps the
   re-validation ground-truth at dot-product cost, instead of the
   LP-per-dependence delta-range probe. *)
let certify_candidate st x =
  let v = Array.map Q.of_int x in
  let ok = ref true in
  Array.iteri
    (fun i _ ->
      if !ok && not st.satisfied.(i) then
        ok := List.for_all (fun c -> Poly.Constr.holds c v) st.legality.(i))
    st.true_deps;
  !ok

let cluster_event st ~members ~scale ~ok =
  if Obs.Trace.on () then
    Obs.Trace.instant ~cat:"sched" "cluster.match"
      ~args:
        [
          ("config", Obs.Json.Str st.cfg.name);
          ("level", Obs.Json.Int st.accepted_hyp_rows);
          ( "stmts",
            Obs.Json.Str (String.concat "," (List.map string_of_int members))
          );
          ("size", Obs.Json.Int (List.length members));
          ( "scale",
            Obs.Json.Str
              (match scale with
              | Some (l, g) ->
                Printf.sprintf "%s/%s" (Bigint.to_string l) (Bigint.to_string g)
              | None -> "overflow") );
          ("ok", Obs.Json.Bool ok);
        ]

let solve_level_dfp st p objs =
  let p0 = !Counters.lp_pivots and dp0 = !Counters.dual_pivots in
  let relax = lp_lexmin st p objs in
  if Obs.Trace.on () then
    Obs.Trace.instant ~cat:"sched" "lp.relax"
      ~args:
        [
          ("config", Obs.Json.Str st.cfg.name);
          ("level", Obs.Json.Int st.accepted_hyp_rows);
          ( "outcome",
            Obs.Json.Str (match relax with Some _ -> "vertex" | None -> "infeasible")
          );
          ("pivots", Obs.Json.Int (!Counters.lp_pivots - p0));
          ("dual-pivots", Obs.Json.Int (!Counters.dual_pivots - dp0));
        ];
  match relax with
  | None ->
    (* the relaxation found nothing, so the integer program is no
       better: let the cut machinery (or the budget diagnostics) take
       over, same as an ILP dead end *)
    None
  | Some xq ->
    let xi = Array.make st.nv 0 in
    let scaled =
      List.for_all
        (fun members ->
          incr Counters.cluster_rounds;
          let scale = scale_cluster st xq xi members in
          cluster_event st ~members ~scale ~ok:(scale <> None);
          scale <> None)
        (active_clusters st)
    in
    if scaled && certify_candidate st xi then Some xi
    else begin
      (* clustering could not certify this level: hand it to the exact
         engine *)
      incr Counters.dfp_fallbacks;
      solve_level_ilp st p objs
    end

(* --- per-level dispatch ------------------------------------------------- *)

let solve_level_raw st =
  let p, objs = level_problem st in
  match st.engine with
  | Engine.Ilp -> solve_level_ilp st p objs
  | Engine.Lp_dfp -> solve_level_dfp st p objs

(* Per-level solve, wrapped in a [sched.level] span carrying the solver
   effort deltas (pivots, branch-and-bound nodes, warm vs cold
   re-solves) and the outcome. The dfp path additionally emits its own
   [lp.relax] / [cluster.match] instants from inside the span. *)
let solve_level st =
  if not (Obs.Trace.on ()) then solve_level_raw st
  else begin
    let active =
      Array.fold_left (fun n s -> if s then n else n + 1) 0 st.satisfied
    in
    Obs.Trace.begin_span ~cat:"sched" "sched.level"
      ~args:
        [
          ("config", Obs.Json.Str st.cfg.name);
          ("engine", Obs.Json.Str (Engine.kind_name st.engine));
          ("level", Obs.Json.Int st.accepted_hyp_rows);
          ("ranks", Obs.Json.Str (ranks_string st));
          ("active-deps", Obs.Json.Int active);
        ];
    let p0 = !Counters.lp_pivots and dp0 = !Counters.dual_pivots in
    let n0 = !Counters.bb_nodes in
    let w0 = !Counters.warm_starts and f0 = !Counters.warm_fallbacks in
    Fun.protect
      ~finally:(fun () -> Obs.Trace.end_span "sched.level")
      (fun () ->
        let res = solve_level_raw st in
        if st.engine = Engine.Ilp then
          Obs.Trace.instant ~cat:"sched" "ilp.level-solve"
            ~args:
              [
                ("config", Obs.Json.Str st.cfg.name);
                ("level", Obs.Json.Int st.accepted_hyp_rows);
                ( "outcome",
                  Obs.Json.Str
                    (match res with
                    | Some _ -> "hyperplane"
                    | None -> "infeasible") );
                ("pivots", Obs.Json.Int (!Counters.lp_pivots - p0));
                ("dual-pivots", Obs.Json.Int (!Counters.dual_pivots - dp0));
                ("bb-nodes", Obs.Json.Int (!Counters.bb_nodes - n0));
                ("warm-solves", Obs.Json.Int (!Counters.warm_starts - w0));
                ("cold-fallbacks", Obs.Json.Int (!Counters.warm_fallbacks - f0));
              ];
        res)
  end

let count_satisfied st =
  Array.fold_left (fun n s -> if s then n + 1 else n) 0 st.satisfied

let accept_row st x =
  let nsat0 = if Obs.Trace.on () then count_satisfied st else 0 in
  Array.iteri
    (fun id _ ->
      let row = row_of_solution st x id in
      st.rows_rev.(id) <- Sched.Hyp row :: st.rows_rev.(id);
      if st.rank.(id) < stmt_depth st.prog id then begin
        st.hyp_rows.(id) <- Array.sub row 0 (stmt_depth st.prog id) :: st.hyp_rows.(id);
        st.rank.(id) <- st.rank.(id) + 1
      end)
    st.prog.stmts;
  st.accepted_hyp_rows <- st.accepted_hyp_rows + 1;
  (* mark strong satisfaction *)
  Array.iteri
    (fun i (d : Dep.t) ->
      if not st.satisfied.(i) then begin
        let src_row = row_of_solution st x d.src in
        let dst_row = row_of_solution st x d.dst in
        match fst (dep_range st d src_row dst_row) with
        | Some v when Q.compare v Q.one >= 0 -> st.satisfied.(i) <- true
        | _ -> ()
      end)
    st.true_deps;
  if Obs.Trace.on () then
    let nsat = count_satisfied st in
    Obs.Trace.instant ~cat:"sched" "sched.row-accepted"
      ~args:
        [
          ("config", Obs.Json.Str st.cfg.name);
          ("level", Obs.Json.Int (st.accepted_hyp_rows - 1));
          ("newly-satisfied", Obs.Json.Int (nsat - nsat0));
          ("satisfied", Obs.Json.Int nsat);
          ("total-deps", Obs.Json.Int (Array.length st.true_deps));
        ]

(* Algorithm 2 helper: dependences that would make the (first) outer
   loop a forward-dependence loop, and that a cut can fix. *)
let outer_violations st x =
  let viol = ref [] in
  Array.iteri
    (fun i (d : Dep.t) ->
      if
        (not st.satisfied.(i))
        && st.part.(d.src) = st.part.(d.dst)
        && st.scc_of.(d.src) <> st.scc_of.(d.dst)
      then begin
        let src_row = row_of_solution st x d.src in
        let dst_row = row_of_solution st x d.dst in
        match snd (dep_range st d src_row dst_row) with
        | Some v when Q.sign v <= 0 -> ()
        | _ -> viol := d :: !viol
      end)
    st.true_deps;
  List.rev !viol

(* pick a dependence justifying a minimal fallback cut: an unsatisfied
   inter-SCC dependence inside one partition, with the earliest
   destination SCC *)
let pick_violating st =
  let best = ref None in
  Array.iteri
    (fun i (d : Dep.t) ->
      if
        (not st.satisfied.(i))
        && st.part.(d.src) = st.part.(d.dst)
        && st.scc_of.(d.src) <> st.scc_of.(d.dst)
      then begin
        match !best with
        | Some (b : Dep.t) when st.scc_pos.(st.scc_of.(b.dst)) <= st.scc_pos.(st.scc_of.(d.dst)) -> ()
        | _ -> best := Some d
      end)
    st.true_deps;
  !best

let try_cut st strategy =
  let violating = pick_violating st in
  let attempt strat =
    match strat with
    | Cut_minimal when violating = None -> None
    | _ ->
      let beta = beta_of_cut st strat ~violating in
      if is_refinement st beta then Some beta else None
  in
  (* ensure progress: escalate through strategies if the preferred one
     does not refine the current partitioning *)
  let chain =
    match strategy with
    | Cut_minimal -> [ Cut_minimal; Cut_between_dims; Cut_all_sccs ]
    | Cut_between_dims -> [ Cut_between_dims; Cut_all_sccs ]
    | Cut_all_sccs -> [ Cut_all_sccs ]
    | Cut_groups _ as g -> [ g; Cut_minimal; Cut_between_dims; Cut_all_sccs ]
  in
  let rec go = function
    | [] -> false
    | s :: rest -> (
      match attempt s with
      | Some beta ->
        apply_beta st beta;
        cut_event st ~name:"cut.fallback" ~strategy:(strategy_name s)
          ~requested:(strategy_name strategy)
          ?violating:(if s = Cut_minimal then violating else None)
          ();
        true
      | None -> go rest)
  in
  go chain

(* final textual ordering inside each partition *)
let final_beta st =
  let n = Array.length st.prog.stmts in
  let beta = Array.make n 0 in
  let counters = Hashtbl.create 16 in
  Array.iter
    (fun id ->
      let p = st.part.(id) in
      let c = Option.value (Hashtbl.find_opt counters p) ~default:0 in
      beta.(id) <- c;
      Hashtbl.replace counters p (c + 1))
    st.stmt_order;
  beta

(* Did the caller's budget trip? Decides whether a failed search is a
   [Budget] diagnostic (degradable: retry with a cheaper strategy) or a
   genuine [Scheduling] one. *)
let budget_tripped st =
  match st.budget with None -> false | Some b -> Budget.exhausted b

let fail_search st code msg =
  if Obs.Trace.on () then
    Obs.Trace.instant ~cat:"sched" "sched.dead-end"
      ~args:
        [
          ("config", Obs.Json.Str st.cfg.name);
          ( "code",
            Obs.Json.Str
              (if budget_tripped st then "sched.budget-exhausted" else code) );
          ("level", Obs.Json.Int st.accepted_hyp_rows);
        ];
  if budget_tripped st then
    Diagnostics.fail ~phase:Budget ~code:"sched.budget-exhausted"
      ~context:
        [
          ("config", st.cfg.name);
          ( "budget",
            match st.budget with
            | Some b -> Format.asprintf "%a" Budget.pp b
            | None -> "none" );
        ]
      (Printf.sprintf "Scheduler(%s): solver budget exhausted" st.cfg.name)
  else
    Diagnostics.fail ~phase:Scheduling ~code
      ~context:[ ("config", st.cfg.name) ]
      msg

(* Always-on exit verification: structural completeness plus exact
   legality of every schedule leaving the scheduler, on any path.
   Unbudgeted on purpose — a schedule found under a 1-pivot budget must
   still be checkable. *)
let verify_result (res : result) =
  let verify_event name args =
    if Obs.Trace.on () then
      Obs.Trace.instant ~cat:"verify" name
        ~args:(("config", Obs.Json.Str res.config_name) :: args)
  in
  Counters.time "verification" (fun () ->
      (match Satisfy.check_complete res.prog res.sched with
      | Ok () -> ()
      | Error d ->
        verify_event "verify.fail" [ ("code", Obs.Json.Str d.Diagnostics.code) ];
        raise (Diagnostics.Error d));
      match Satisfy.check_legal res.prog res.true_deps res.sched with
      | Ok () ->
        verify_event "verify.ok"
          [ ("deps-checked", Obs.Json.Int (List.length res.true_deps)) ]
      | Error (d : Dep.t) ->
        verify_event "verify.fail"
          [
            ("code", Obs.Json.Str "verify.illegal");
            ("src", Obs.Json.Str res.prog.stmts.(d.src).Scop.Statement.name);
            ("dst", Obs.Json.Str res.prog.stmts.(d.dst).Scop.Statement.name);
            ("kind", Obs.Json.Str (Dep.kind_to_string d.kind));
          ];
        Diagnostics.fail ~phase:Verification ~code:"verify.illegal"
          ~context:
            [
              ("config", res.config_name);
              ("src", Printf.sprintf "S%d" d.src);
              ("dst", Printf.sprintf "S%d" d.dst);
              ("kind", Dep.kind_to_string d.kind);
            ]
          (Printf.sprintf
             "Scheduler(%s): schedule violates dependence S%d->S%d"
             res.config_name d.src d.dst));
  res

let run_with_deps_budgeted ?budget ?(engine = Engine.Auto) cfg
    (prog : Scop.Program.t) all_deps =
  let nstmts = Array.length prog.stmts in
  let resolved = Engine.resolve engine ~nstmts in
  if Obs.Trace.on () then
    Obs.Trace.instant ~cat:"sched" "engine.select"
      ~args:
        [
          ("config", Obs.Json.Str cfg.name);
          ("requested", Obs.Json.Str (Engine.choice_name engine));
          ("engine", Obs.Json.Str (Engine.kind_name resolved));
          ("stmts", Obs.Json.Int nstmts);
          ( "reason",
            Obs.Json.Str
              (match engine with
              | Engine.Fixed _ -> "fixed"
              | Engine.Auto ->
                Printf.sprintf "auto: %d stmts %s threshold %d" nstmts
                  (if resolved = Engine.Lp_dfp then ">=" else "<")
                  Engine.auto_threshold) );
        ];
  let st, ddg, scc_order = make_state ?budget ~engine:resolved cfg prog all_deps in
  (* initial cut *)
  (match cfg.initial_cut with
  | None -> ()
  | Some strategy ->
    let beta = beta_of_cut st strategy ~violating:None in
    (* apply even when trivial (single partition): the row is harmless *)
    apply_beta st beta;
    cut_event st ~name:"cut.initial" ~strategy:(strategy_name strategy) ());
  let max_depth = Scop.Program.max_depth prog in
  let guard = ref 0 in
  while Array.exists (fun id -> st.rank.(id) < stmt_depth prog id)
          (Array.init (Array.length prog.stmts) Fun.id)
        && !guard < 10 * (max_depth + Array.length prog.stmts)
  do
    incr guard;
    match solve_level st with
    | Some x ->
      let is_first = st.accepted_hyp_rows = 0 in
      let cut_done =
        if cfg.outer_parallel && is_first then begin
          match outer_violations st x with
          | [] -> false
          | d :: _ ->
            (* discard the candidate row; distribute the offending SCCs *)
            let beta = beta_of_cut st Cut_minimal ~violating:(Some d) in
            if is_refinement st beta then begin
              apply_beta st beta;
              (* Algorithm 2 of the paper: the first hyperplane would
                 carry a forward dependence across SCCs, so the outer
                 loop could not be parallel — distribute instead *)
              cut_event st ~name:"cut.alg2" ~strategy:"minimal" ~violating:d
                ();
              true
            end
            else false
        end
        else false
      in
      if not cut_done then accept_row st x
    | None ->
      if not (try_cut st cfg.fallback_cut) then
        fail_search st "sched.no-hyperplane"
          (Printf.sprintf
             "Scheduler(%s): no hyperplane and no further cut possible" cfg.name)
  done;
  if Array.exists (fun id -> st.rank.(id) < stmt_depth prog id)
       (Array.init (Array.length prog.stmts) Fun.id)
  then
    fail_search st "sched.no-convergence"
      (Printf.sprintf "Scheduler(%s): did not converge" cfg.name);
  (* final textual order *)
  let fb = final_beta st in
  Array.iteri (fun id rows -> st.rows_rev.(id) <- Sched.Beta fb.(id) :: rows) st.rows_rev;
  mark_beta_satisfaction st fb;
  let sched = Array.map List.rev st.rows_rev in
  (* outermost fusion partitions: statements sharing every scalar
     dimension before the first loop row share the outermost nest *)
  let outer_partition =
    let prefix id =
      let rec go acc = function
        | Sched.Beta b :: rest -> go (b :: acc) rest
        | Sched.Hyp _ :: _ | [] -> List.rev acc
      in
      go [] sched.(id)
    in
    let n = Array.length prog.stmts in
    let keys = Array.init n prefix in
    let tbl = Hashtbl.create 8 in
    let next = ref 0 in
    Array.map
      (fun k ->
        match Hashtbl.find_opt tbl k with
        | Some id -> id
        | None ->
          let id = !next in
          incr next;
          Hashtbl.add tbl k id;
          id)
      keys
  in
  if Obs.Trace.on () then
    Obs.Trace.instant ~cat:"fuse" "fuse.partition"
      ~args:
        [
          ("config", Obs.Json.Str cfg.name);
          ("partition", Obs.Json.Str (partition_string outer_partition));
          ("groups", Obs.Json.Int (1 + Array.fold_left max 0 outer_partition));
        ];
  verify_result
    {
      prog;
      config_name = cfg.name;
      engine = resolved;
      all_deps;
      true_deps = Array.to_list st.true_deps;
      ddg;
      scc_of = st.scc_of;
      scc_order;
      sched;
      outer_partition;
    }

let run_with_deps ?engine cfg prog all_deps =
  run_with_deps_budgeted ?engine cfg prog all_deps

let run ?param_floor ?budget ?engine cfg prog =
  let all_deps =
    Counters.time "dep-analysis" (fun () -> Dep.analyze ?param_floor prog)
  in
  Counters.time "scheduling" (fun () ->
      run_with_deps_budgeted ?budget ?engine cfg prog all_deps)

let schedule_with_deps ?budget ?engine cfg prog all_deps =
  Diagnostics.protect (fun () ->
      Counters.time "scheduling" (fun () ->
          run_with_deps_budgeted ?budget ?engine cfg prog all_deps))

let schedule ?param_floor ?budget ?engine cfg prog =
  let all_deps =
    Counters.time "dep-analysis" (fun () -> Dep.analyze ?param_floor prog)
  in
  schedule_with_deps ?budget ?engine cfg prog all_deps

let partitions (result : result) =
  let n = Array.length result.prog.stmts in
  let by_part = Hashtbl.create 16 in
  for id = 0 to n - 1 do
    let p = result.outer_partition.(id) in
    let cur = Option.value (Hashtbl.find_opt by_part p) ~default:[] in
    Hashtbl.replace by_part p (id :: cur)
  done;
  let parts = Hashtbl.fold (fun p members acc -> (p, List.rev members) :: acc) by_part [] in
  List.map snd (List.sort compare parts)

(* --- stock configurations --------------------------------------------- *)

let nofuse =
  {
    name = "nofuse";
    order_sccs = topological_order;
    initial_cut = Some Cut_all_sccs;
    fallback_cut = Cut_all_sccs;
    outer_parallel = false;
  }

let maxfuse =
  {
    name = "maxfuse";
    order_sccs = topological_order;
    initial_cut = None;
    fallback_cut = Cut_minimal;
    outer_parallel = false;
  }

let smartfuse =
  {
    name = "smartfuse";
    order_sccs = topological_order;
    initial_cut = Some Cut_between_dims;
    fallback_cut = Cut_minimal;
    outer_parallel = false;
  }
