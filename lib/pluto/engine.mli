(** Pluggable scheduling engines.

    The scheduler's per-level hyperplane search can run on two engines:

    - {b ilp} — the original branch-and-bound integer lexmin
      ({!Ilp.Bb.lexmin}): exact, deterministic, and the quality
      reference, but its cost grows quickly with statements ×
      dependences.
    - {b lp-dfp} — the decoupled path after Acharya & Bondhugula's
      pluto-lp-dfp: solve the pure LP relaxation with the warm-started
      simplex (no branching), then recover integral hyperplanes by
      scaling each dependence-connected statement cluster of the
      rational optimum. Every recovered row is re-certified against
      the dependence polyhedra; any level the clustering cannot
      certify falls back to the ILP engine
      ({!Linalg.Counters.dfp_fallbacks}).

    Callers normally pass a {!choice}; [Auto] picks per program by
    statement count, so small SCoPs keep the byte-identical ILP
    schedules while large generated SCoPs get the asymptotically
    cheaper path. *)

type kind = Ilp | Lp_dfp

(** An engine request: a fixed engine, or size-based selection. *)
type choice = Fixed of kind | Auto

(** Wire/CLI names: ["ilp"], ["lp-dfp"]. *)
val kind_name : kind -> string

(** ["ilp"], ["lp-dfp"], or ["auto"]. *)
val choice_name : choice -> string

(** Inverse of {!choice_name}; [None] on unknown names. *)
val of_string : string -> choice option

(** Statement count at and above which [Auto] selects [Lp_dfp]. *)
val auto_threshold : int

(** [resolve c ~nstmts] is the engine that actually runs: [Fixed k] is
    [k]; [Auto] is [Lp_dfp] iff [nstmts >= auto_threshold]. *)
val resolve : choice -> nstmts:int -> kind
