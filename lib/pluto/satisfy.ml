open Linalg
open Deps

type range = { dmin : Q.t option; dmax : Q.t option }

let diff_vec (prog : Scop.Program.t) (dep : Dep.t) (sched : Sched.t) ~level =
  let src = prog.stmts.(dep.src) and dst = prog.stmts.(dep.dst) in
  let d1 = Scop.Statement.depth src and d2 = Scop.Statement.depth dst in
  let np = Scop.Program.nparams prog in
  let src_row = Sched.row_as_hyp ~depth:d1 ~np (List.nth sched.(dep.src) level) in
  let dst_row = Sched.row_as_hyp ~depth:d2 ~np (List.nth sched.(dep.dst) level) in
  Sched.phi_diff ~d1 ~d2 ~np src_row dst_row

(* Verification LPs run unbudgeted — a degraded schedule must still be
   checkable — so [Exhausted] only arises under the chaos harness's
   forced-exhaustion fault. Treat it like "unbounded" (unknown): for
   legality that errs toward reporting a violation, never toward
   accepting an illegal schedule. *)
let diff_min prog dep sched ~level =
  let obj = diff_vec prog dep sched ~level in
  match Ilp.Lp.minimize dep.poly obj with
  | Ilp.Lp.Optimal (v, _) -> Some v
  | Ilp.Lp.Unbounded | Ilp.Lp.Exhausted -> None
  | Ilp.Lp.Infeasible -> invalid_arg "Satisfy.diff_min: empty dependence"

let diff_range prog dep sched ~level =
  let obj = diff_vec prog dep sched ~level in
  let dmin =
    match Ilp.Lp.minimize dep.poly obj with
    | Ilp.Lp.Optimal (v, _) -> Some v
    | Ilp.Lp.Unbounded | Ilp.Lp.Exhausted -> None
    | Ilp.Lp.Infeasible -> invalid_arg "Satisfy.diff_range: empty dependence"
  in
  let dmax =
    match Ilp.Lp.maximize dep.poly obj with
    | Ilp.Lp.Optimal (v, _) -> Some v
    | Ilp.Lp.Unbounded | Ilp.Lp.Exhausted -> None
    | Ilp.Lp.Infeasible -> invalid_arg "Satisfy.diff_range: empty dependence"
  in
  { dmin; dmax }

let satisfaction_level prog dep sched =
  let n = Sched.num_rows sched in
  let rec go level =
    if level >= n then None
    else begin
      match diff_min prog dep sched ~level with
      | Some v when Q.compare v Q.one >= 0 -> Some level
      | _ -> go (level + 1)
    end
  in
  go 0

let check_legal prog deps sched =
  let n = Sched.num_rows sched in
  let check_dep (d : Dep.t) =
    if (not (Dep.is_true d)) || d.tag = Dep.Reduction then true
    else begin
      (* scan rows: all deltas >= 0 until the first >= 1 *)
      let rec go level =
        if level >= n then false (* never satisfied *)
        else begin
          match diff_min prog d sched ~level with
          | Some v when Q.compare v Q.one >= 0 -> true
          | Some v when Q.sign v >= 0 -> go (level + 1)
          | _ -> false (* negative or unbounded below: violated *)
        end
      in
      go 0
    end
  in
  let rec first_bad = function
    | [] -> Ok ()
    | d :: rest -> if check_dep d then first_bad rest else Error d
  in
  first_bad deps

(* Structural completeness: does the schedule actually define a full
   transform for every statement? Exactly the preconditions code
   generation ([Codegen.Scan.make_instance]) needs — checked here so a
   bad schedule surfaces as a typed diagnostic at the pipeline boundary
   instead of a [failwith] deep inside codegen:

   - every statement has the same number of rows;
   - per statement, the rows with a nonzero iterator part number
     exactly the statement's depth;
   - those rows' iterator parts form a non-singular (full-rank)
     transform. *)
let check_complete (prog : Scop.Program.t) (sched : Sched.t) =
  let n = Array.length prog.stmts in
  if n = 0 || Array.length sched <> n then
    if n = 0 then Ok ()
    else
      Error
        (Diagnostics.make ~phase:Verification ~code:"verify.stmt-count"
           ~context:
             [
               ("statements", string_of_int n);
               ("schedule-entries", string_of_int (Array.length sched));
             ]
           "schedule does not cover every statement")
  else begin
    let nrows = List.length sched.(0) in
    let rec go id =
      if id >= n then Ok ()
      else begin
        let st = prog.stmts.(id) in
        let d = Scop.Statement.depth st in
        let ctx extra =
          (("statement", st.name) :: ("depth", string_of_int d) :: extra)
        in
        if List.length sched.(id) <> nrows then
          Error
            (Diagnostics.make ~phase:Verification ~code:"verify.ragged-rows"
               ~context:
                 (ctx
                    [
                      ("rows", string_of_int (List.length sched.(id)));
                      ("expected", string_of_int nrows);
                    ])
               (Printf.sprintf "statement %s has %d schedule rows, expected %d"
                  st.name
                  (List.length sched.(id))
                  nrows))
        else begin
          let iter_parts =
            List.filter_map
              (function
                | Sched.Hyp h ->
                  let ip = Array.sub h 0 d in
                  if Array.exists (fun c -> c <> 0) ip then Some ip else None
                | Sched.Beta _ -> None)
              sched.(id)
          in
          let k = List.length iter_parts in
          if k <> d then
            Error
              (Diagnostics.make ~phase:Verification ~code:"verify.rank"
                 ~context:(ctx [ ("non-constant-rows", string_of_int k) ])
                 (Printf.sprintf
                    "statement %s has %d non-constant schedule rows for depth %d"
                    st.name k d))
          else if
            d > 0 && Mat.rank (Mat.of_ints (Array.of_list iter_parts)) <> d
          then
            Error
              (Diagnostics.make ~phase:Verification ~code:"verify.singular"
                 ~context:(ctx [])
                 (Printf.sprintf "statement %s: singular schedule transform"
                    st.name))
          else go (id + 1)
        end
      end
    in
    go 0
  end

type loop_class = Parallel | Parallel_reduction | Forward | Sequential

let loop_class_name = function
  | Parallel -> "parallel"
  | Parallel_reduction -> "parallel-reduction"
  | Forward -> "forward"
  | Sequential -> "sequential"

let row_class prog deps sched ~level ~members =
  let live (d : Dep.t) =
    Dep.is_true d
    && List.mem d.src members && List.mem d.dst members
    &&
    (* not satisfied before this level *)
    match satisfaction_level prog d sched with
    | Some l -> l >= level
    | None -> true
  in
  let carries_forward (d : Dep.t) =
    let r = diff_range prog d sched ~level in
    match r.dmax with
    | Some v -> Q.sign v > 0
    | None -> true
  in
  let carried = List.filter (fun d -> live d && carries_forward d) deps in
  if carried = [] then Parallel
  else if List.for_all (fun (d : Dep.t) -> d.tag = Dep.Reduction) carried then
    Parallel_reduction
  else Forward
