(* Render a traced pipeline run as a human-readable justification
   chain. All the knowledge lives in the typed decision events emitted
   by the instrumented libraries (see lib/obs); this module only
   interprets their argument lists. *)

type t = {
  kernel : string;
  model : Model.t;
  outcome : Model.optimized;
  events : Obs.Trace.event list;
}

let capture ?budget ?engine ?reductions ~model ~kernel prog =
  Linalg.Counters.reset ();
  Pluto.Farkas.reset_cache ();
  let outcome, events =
    Obs.Trace.with_recording (fun () ->
        Model.optimize ?budget ?engine ?reductions model prog)
  in
  Obs.Trace.disable ();
  { kernel; model; outcome; events }

(* --- event argument accessors ------------------------------------------ *)

let astr (e : Obs.Trace.event) k =
  match List.assoc_opt k e.args with Some (Obs.Json.Str s) -> Some s | _ -> None

let aint (e : Obs.Trace.event) k =
  match List.assoc_opt k e.args with Some (Obs.Json.Int i) -> Some i | _ -> None

let abool (e : Obs.Trace.event) k =
  match List.assoc_opt k e.args with
  | Some (Obs.Json.Bool b) -> Some b
  | _ -> None

let str e k = Option.value (astr e k) ~default:"?"
let int_ e k = Option.value (aint e k) ~default:(-1)

(* "flow dependence S2 -> S4 (SCC 1 -> 3)" — present only when the
   event carries dependence arguments *)
let dep_phrase e =
  match astr e "src" with
  | None -> None
  | Some src ->
    Some
      (Printf.sprintf "%s dependence %s -> %s (SCC %d -> %d)" (str e "kind")
         src (str e "dst") (int_ e "src-scc") (int_ e "dst-scc"))

(* --- sections ----------------------------------------------------------- *)

let pp_deps fmt events =
  List.iter
    (fun (e : Obs.Trace.event) ->
      if e.name = "deps.analyzed" then begin
        Format.fprintf fmt "dependences: %d (flow %d, anti %d, output %d"
          (int_ e "total") (int_ e "flow") (int_ e "anti") (int_ e "output");
        let inp = int_ e "input" in
        if inp > 0 then Format.fprintf fmt ", input %d" inp;
        Format.fprintf fmt ")@,"
      end)
    events

let pp_prefusion fmt events =
  let any = ref false in
  List.iter
    (fun (e : Obs.Trace.event) ->
      match e.name with
      | "prefuse.seed" ->
        if not !any then Format.fprintf fmt "pre-fusion clustering:@,";
        any := true;
        Format.fprintf fmt "  cluster %d: seed SCC %d (%s, dim %d) - %s@,"
          (int_ e "cluster") (int_ e "scc") (str e "name") (int_ e "dim")
          (str e "reason")
      | "prefuse.join" ->
        Format.fprintf fmt "    + SCC %d (%s) - %s@," (int_ e "scc")
          (str e "name") (str e "reason")
      | _ -> ())
    events;
  if !any then Format.fprintf fmt "@,"

let pp_search fmt events =
  Format.fprintf fmt "schedule search:@,";
  let config = ref "" in
  let heading e =
    let c = str e "config" in
    if c <> "?" && c <> !config then begin
      config := c;
      Format.fprintf fmt "  [config %s]@," c
    end
  in
  List.iter
    (fun (e : Obs.Trace.event) ->
      match e.name with
      | "cut.initial" ->
        heading e;
        Format.fprintf fmt "  cut @@ level %d: initial %s -> partitions [%s]@,"
          (int_ e "level") (str e "strategy") (str e "partition")
      | "cut.fallback" ->
        heading e;
        Format.fprintf fmt "  cut @@ level %d: %s" (int_ e "level")
          (str e "strategy");
        (match astr e "requested" with
        | Some r -> Format.fprintf fmt " (requested %s)" r
        | None -> ());
        (match dep_phrase e with
        | Some p -> Format.fprintf fmt ", justified by %s" p
        | None -> ());
        Format.fprintf fmt " -> partitions [%s]@," (str e "partition")
      | "cut.alg2" ->
        heading e;
        Format.fprintf fmt
          "  cut @@ level %d: Algorithm 2 - outer loop would carry forward \
           %s; distributing by minimal cut -> partitions [%s]@,"
          (int_ e "level")
          (Option.value (dep_phrase e) ~default:"dependence")
          (str e "partition")
      | "engine.select" ->
        heading e;
        Format.fprintf fmt "  engine: %s (%s, %d statements)@," (str e "engine")
          (str e "reason") (int_ e "stmts")
      | "ilp.level-solve" ->
        heading e;
        Format.fprintf fmt
          "  level %d: %s (pivots %d, bb nodes %d, warm %d, cold %d)@,"
          (int_ e "level") (str e "outcome")
          (int_ e "pivots" + int_ e "dual-pivots")
          (int_ e "bb-nodes") (int_ e "warm-solves") (int_ e "cold-fallbacks")
      | "lp.relax" ->
        heading e;
        Format.fprintf fmt "  level %d: LP relaxation %s (pivots %d)@,"
          (int_ e "level") (str e "outcome")
          (int_ e "pivots" + int_ e "dual-pivots")
      | "cluster.match" ->
        Format.fprintf fmt
          "  level %d: cluster {%s} scaled by %s -> %s@," (int_ e "level")
          (str e "stmts") (str e "scale")
          (if abool e "ok" = Some true then "integral hyperplane"
           else "no integral scaling (ILP fallback)")
      | "sched.row-accepted" ->
        Format.fprintf fmt
          "  level %d: row accepted - newly satisfies %d deps (%d/%d total)@,"
          (int_ e "level") (int_ e "newly-satisfied") (int_ e "satisfied")
          (int_ e "total-deps")
      | "sched.dead-end" ->
        heading e;
        Format.fprintf fmt "  dead end @@ level %d: %s@," (int_ e "level")
          (str e "code")
      | "fuse.partition" ->
        Format.fprintf fmt "  final outer partitions [%s] (%d nests)@,"
          (str e "partition") (int_ e "groups")
      | "resilience.degrade" ->
        Format.fprintf fmt "  degraded past %s rung: %s (%s)@," (str e "rung")
          (str e "code") (str e "message")
      | "resilience.settled" ->
        Format.fprintf fmt "  settled on %s rung%s@," (str e "rung")
          (if abool e "degraded" = Some true then " (degraded)" else "")
      | "verify.ok" ->
        Format.fprintf fmt "  verification: ok (%d deps checked)@,"
          (int_ e "deps-checked")
      | "verify.fail" ->
        Format.fprintf fmt "  verification FAILED: %s@," (str e "code")
      | _ -> ())
    events;
  Format.fprintf fmt "@,"

let pp_effort fmt events =
  let hits = ref 0 and misses = ref 0 and bb = ref 0 and gave_up = ref 0 in
  List.iter
    (fun (e : Obs.Trace.event) ->
      match e.name with
      | "farkas.cache" ->
        if abool e "hit" = Some true then incr hits else incr misses
      | "ilp.bb" ->
        incr bb;
        if astr e "outcome" = Some "gave-up" then incr gave_up
      | _ -> ())
    events;
  if !bb > 0 || !hits + !misses > 0 then begin
    Format.fprintf fmt "solver effort: %d ILP solves" !bb;
    if !gave_up > 0 then Format.fprintf fmt " (%d gave up)" !gave_up;
    Format.fprintf fmt ", farkas cache %d hits / %d misses@,@," !hits !misses
  end

let pp fmt t =
  Format.fprintf fmt "@[<v>=== explain %s (model %s) ===@," t.kernel
    (Model.name t.model);
  pp_deps fmt t.events;
  Format.fprintf fmt "@,";
  pp_prefusion fmt t.events;
  pp_search fmt t.events;
  pp_effort fmt t.events;
  (match t.outcome.Model.resilience with
  | Some o -> Format.fprintf fmt "%a@,@," Report.pp_resilience o
  | None -> ());
  (match t.outcome.Model.scheduler with
  | Some res ->
    Format.fprintf fmt "%a@," Report.pp_table res;
    Format.fprintf fmt
      "reuse: %d dependence pairs co-located (%d RAR) across %d partitions@,"
      (Report.reuse_score res)
      (Report.rar_reuse_score res)
      (Report.partition_count res)
  | None ->
    Format.fprintf fmt
      "no polyhedral schedule (structural model): nothing to partition@,");
  Format.fprintf fmt "@]"
