type t = Icc | Nofuse | Smartfuse | Maxfuse | Wisefuse

let all = [ Icc; Nofuse; Smartfuse; Maxfuse; Wisefuse ]

let name = function
  | Icc -> "icc"
  | Nofuse -> "nofuse"
  | Smartfuse -> "smartfuse"
  | Maxfuse -> "maxfuse"
  | Wisefuse -> "wisefuse"

let description = function
  | Icc -> "pairwise nest fusion + conservative parallelization (baseline)"
  | Wisefuse ->
    "the paper's model: Algorithm 1 pre-fusion schedule + Algorithm 2 parallelism cuts"
  | Smartfuse ->
    "PLuTo default: DFS pre-fusion order, cuts between SCCs of different dimensionality"
  | Nofuse -> "every SCC in its own loop nest"
  | Maxfuse -> "fuse maximally; cut only when the ILP has no hyperplane"

let of_name s =
  match List.find_opt (fun m -> name m = s) all with
  | Some m -> m
  | None -> raise Not_found

let scheduler_config = function
  | Nofuse -> Pluto.Scheduler.nofuse
  | Smartfuse -> Pluto.Scheduler.smartfuse
  | Maxfuse -> Pluto.Scheduler.maxfuse
  | Wisefuse -> Wisefuse.config
  | Icc -> invalid_arg "Fusion.Model: icc has no scheduler config"

type optimized = {
  ast : Codegen.Ast.node;
  scheduler : Pluto.Scheduler.result option;
  icc : Icc.Icc_model.result option;
  resilience : Resilient.outcome option;
      (* which degradation rung produced the schedule (polyhedral
         models only; [None] for icc) *)
}

let optimize ?budget ?engine ?reductions m prog =
  match m with
  | Icc ->
    let r = Icc.Icc_model.run prog in
    { ast = r.Icc.Icc_model.ast; scheduler = None; icc = Some r; resilience = None }
  | _ ->
    (* through the degradation ladder: on the happy path (rung 1) the
       result is identical to running the scheduler directly; on solver
       budget exhaustion or a scheduling dead end the pipeline falls
       back instead of raising *)
    let o =
      Resilient.optimize ?budget ?engine ?reductions
        ~config:(scheduler_config m) prog
    in
    {
      ast = o.Resilient.ast;
      scheduler = Some o.Resilient.result;
      icc = None;
      resilience = Some o;
    }

let simulate ?config ?reductions m (prog : Scop.Program.t) =
  let { ast; _ } = optimize ?reductions m prog in
  Machine.Perf.simulate ?config prog ast ~params:prog.default_params

let verify ?reductions m (prog : Scop.Program.t) =
  let params = prog.default_params in
  let { ast; _ } = optimize ?reductions m prog in
  let reference = Machine.Interp.init_memory prog ~params in
  Machine.Interp.run_original prog reference ~params;
  let transformed = Machine.Interp.init_memory prog ~params in
  Machine.Interp.run prog ast transformed ~params;
  Machine.Interp.first_diff reference transformed
