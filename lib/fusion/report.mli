(** Fusion-partitioning reports: the data behind Figure 8 and the
    reuse discussion of Section 5. *)

type row = {
  scc : int;  (** SCC id *)
  members : int list;  (** statement ids *)
  dim : int;  (** dimensionality (Figure 8, column 2) *)
  partition : int;  (** partition number in the transformed code *)
}

(** One row per SCC, in pre-fusion order. *)
val partition_table : Pluto.Scheduler.result -> row list

(** Number of distinct outermost fusion partitions. *)
val partition_count : Pluto.Scheduler.result -> int

(** Number of dependence pairs (including input/RAR — the reuse the
    paper's heuristics chase) whose endpoints share a fusion
    partition. Higher is better locality, all else being equal. *)
val reuse_score : Pluto.Scheduler.result -> int

(** Same, but only input (RAR) dependences. *)
val rar_reuse_score : Pluto.Scheduler.result -> int

val pp_table : Format.formatter -> Pluto.Scheduler.result -> unit

(** Which degradation rung produced a schedule and why earlier rungs
    failed; a single line on the happy path. *)
val pp_resilience : Format.formatter -> Resilient.outcome -> unit
