open Deps

(* all topological orderings of the SCC condensation, by backtracking
   over ready SCCs *)
let orderings (ddg : Ddg.t) scc_of =
  let nscc = Ddg.scc_count scc_of in
  (* SCC-level predecessor counts *)
  let preds = Array.make nscc [] in
  Array.iteri
    (fun v succs ->
      List.iter
        (fun w ->
          let a = scc_of.(v) and b = scc_of.(w) in
          if a <> b && not (List.mem a preds.(b)) then preds.(b) <- a :: preds.(b))
        succs)
    ddg.succ;
  let visited = Array.make nscc false in
  let acc = ref [] in
  let rec go chosen count =
    if count = nscc then acc := List.rev chosen :: !acc
    else
      for scc = 0 to nscc - 1 do
        if
          (not visited.(scc))
          && List.for_all (fun p -> visited.(p)) preds.(scc)
        then begin
          visited.(scc) <- true;
          go (scc :: chosen) (count + 1);
          visited.(scc) <- false
        end
      done
  in
  go [] 0;
  List.rev !acc

let partitionings_per_ordering k = if k <= 1 then 1 else 1 lsl (k - 1)

let space_size ddg scc_of =
  let os = orderings ddg scc_of in
  List.fold_left
    (fun acc o -> acc + partitionings_per_ordering (List.length o))
    0 os

(* group-id vectors: every cut mask over k-1 boundaries, rendered as
   non-decreasing group ids starting at 0 *)
let cut_masks k =
  if k <= 0 then []
  else begin
    let masks = ref [] in
    for m = 0 to (1 lsl (k - 1)) - 1 do
      let groups = Array.make k 0 in
      for pos = 1 to k - 1 do
        groups.(pos) <-
          (groups.(pos - 1) + if m land (1 lsl (pos - 1)) <> 0 then 1 else 0)
      done;
      masks := Array.to_list groups :: !masks
    done;
    List.rev !masks
  end

type candidate = {
  order : int list;
  groups : int list;
  result : Pluto.Scheduler.result;
  cycles : int;
}

let best ?(config = Machine.Perf.default) ?(limit = 512) (prog : Scop.Program.t) =
  let deps = Dep.analyze prog in
  let ddg = Ddg.build prog deps in
  let scc_of = Ddg.scc_kosaraju ddg in
  let params = prog.default_params in
  let candidates = ref [] in
  let tried = ref 0 in
  (try
     List.iter
       (fun order ->
         List.iter
           (fun groups ->
             if !tried >= limit then raise Exit;
             incr tried;
             let cfg =
               {
                 Pluto.Scheduler.name =
                   Printf.sprintf "search-%d" !tried;
                 order_sccs = (fun _ _ _ -> order);
                 initial_cut = Some (Pluto.Scheduler.Cut_groups groups);
                 fallback_cut = Pluto.Scheduler.Cut_minimal;
                 outer_parallel = false;
               }
             in
             match Pluto.Scheduler.schedule_with_deps cfg prog deps with
             | Ok result ->
               let stats =
                 match
                   Pluto.Diagnostics.protect (fun () ->
                       let ast = Codegen.Scan.of_result result in
                       Machine.Perf.simulate ~config prog ast ~params)
                 with
                 | Ok s -> Some s
                 | Error _ -> None (* codegen rejected the transform *)
               in
               Option.iter
                 (fun (stats : Machine.Perf.stats) ->
                   candidates :=
                     { order; groups; result; cycles = stats.Machine.Perf.cycles }
                     :: !candidates)
                 stats
             | Error _ ->
               (* the scheduler may reject an enumerated candidate (no
                  further cut possible); skip it *)
               ())
           (cut_masks (List.length order)))
       (orderings ddg scc_of)
   with Exit -> ());
  List.sort (fun a b -> compare a.cycles b.cycles) !candidates
