open Deps

(* statement-pair reuse: any dependence (true or input) between the two
   statements means they touch common data *)
let reuse_matrix (prog : Scop.Program.t) (ddg : Ddg.t) =
  let n = Array.length prog.stmts in
  let m = Array.make_matrix n n false in
  List.iter
    (fun (d : Dep.t) ->
      m.(d.src).(d.dst) <- true;
      m.(d.dst).(d.src) <- true)
    ddg.deps;
  m

let run (prog : Scop.Program.t) (ddg : Ddg.t) scc_of =
  let n = Array.length prog.stmts in
  let nscc = Ddg.scc_count scc_of in
  let comps = Ddg.components scc_of in
  let reuse = reuse_matrix prog ddg in
  (* external predecessor SCCs of each SCC *)
  let scc_preds = Array.make nscc [] in
  Array.iteri
    (fun v succs ->
      List.iter
        (fun w ->
          let a = scc_of.(v) and b = scc_of.(w) in
          if a <> b && not (List.mem a scc_preds.(b)) then
            scc_preds.(b) <- a :: scc_preds.(b))
        succs)
    ddg.succ;
  let visited = Array.make nscc false in
  let ready scc = List.for_all (fun p -> visited.(p)) scc_preds.(scc) in
  let depth id = Scop.Statement.depth prog.stmts.(id) in
  let clusters = ref [] in
  let remaining = ref nscc in
  while !remaining > 0 do
    (* seed: first statement in program order whose SCC is unvisited and
       ready (see the mli note on the precedence check) *)
    let seed = ref (-1) in
    (try
       for s = 0 to n - 1 do
         let scc = scc_of.(s) in
         if (not visited.(scc)) && ready scc then begin
           seed := s;
           raise Exit
         end
       done
     with Exit -> ());
    if !seed < 0 then begin
      (* Precedence can never unblock: the condensation must be cyclic
         (or scc_of is inconsistent with the DDG). Report exactly which
         SCCs are stuck so the caller can see the cycle. *)
      let stuck =
        List.filter (fun scc -> not visited.(scc)) (List.init nscc Fun.id)
      in
      Pluto.Diagnostics.fail ~phase:Scheduling ~code:"prefuse.no-ready-scc"
        ~context:
          [
            ( "stuck-sccs",
              String.concat "," (List.map string_of_int stuck) );
            ("total-sccs", string_of_int nscc);
          ]
        (Printf.sprintf
           "Prefusion: no ready SCC among %d remaining (cyclic condensation?)"
           (List.length stuck))
    end;
    let s = !seed in
    let seed_scc = scc_of.(s) in
    visited.(seed_scc) <- true;
    decr remaining;
    let cluster = ref [ seed_scc ] in
    let fusable = ref comps.(seed_scc) in
    let cluster_dim = depth s in
    let cluster_no = List.length !clusters in
    if Obs.Trace.on () then
      Obs.Trace.instant ~cat:"fuse" "prefuse.seed"
        ~args:
          [
            ("cluster", Obs.Json.Int cluster_no);
            ("scc", Obs.Json.Int seed_scc);
            ("stmt", Obs.Json.Int s);
            ("name", Obs.Json.Str prog.stmts.(s).Scop.Statement.name);
            ("dim", Obs.Json.Int cluster_dim);
            ( "reason",
              Obs.Json.Str "first unvisited SCC in program order with all predecessors scheduled" );
          ];
    (* single pass over the remaining statements in program order
       (Heuristic 2), pulling in same-dimensionality SCCs with reuse
       (Heuristic 1) whose precedence constraint is met *)
    for t = 0 to n - 1 do
      let t_scc = scc_of.(t) in
      if (not visited.(t_scc)) && depth t = cluster_dim then begin
        let members = comps.(t_scc) in
        let has_reuse =
          List.exists
            (fun i -> List.exists (fun j -> reuse.(i).(j)) members)
            !fusable
        in
        if has_reuse && ready t_scc then begin
          visited.(t_scc) <- true;
          decr remaining;
          cluster := t_scc :: !cluster;
          fusable := !fusable @ members;
          if Obs.Trace.on () then
            Obs.Trace.instant ~cat:"fuse" "prefuse.join"
              ~args:
                [
                  ("cluster", Obs.Json.Int cluster_no);
                  ("scc", Obs.Json.Int t_scc);
                  ("stmt", Obs.Json.Int t);
                  ("name", Obs.Json.Str prog.stmts.(t).Scop.Statement.name);
                  ("dim", Obs.Json.Int cluster_dim);
                  ( "reason",
                    Obs.Json.Str "same dimensionality, reuse with cluster, precedence satisfied" );
                ]
        end
      end
    done;
    clusters := List.rev !cluster :: !clusters
  done;
  List.rev !clusters

let clusters = run

let order prog ddg scc_of = List.concat (run prog ddg scc_of)
