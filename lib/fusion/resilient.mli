(** Graceful degradation: always leave with a legal schedule.

    The optimizing search can fail — budget exhaustion, a fusion
    configuration with no legal hyperplane and no further cut, a
    transform codegen rejects. This module walks a fallback ladder
    until something succeeds:

    + {e Primary} — the requested configuration on the requested
      engine;
    + {e Lp_relaxed} — the same configuration on the lp-dfp engine
      (LP relaxation + clustering; see {!Pluto.Engine}), tried only
      when the primary attempt ran the ILP engine;
    + {e Distributed} — maximal distribution (every SCC its own nest);
    + {e Identity} — the original program order, solver-free and legal
      by construction.

    Each rung gets a fresh copy of the budget ({!Linalg.Budget.refresh}).
    Every outcome, degraded or not, has passed
    {!Pluto.Satisfy.check_complete} and {!Pluto.Satisfy.check_legal}. *)

type rung = Primary | Lp_relaxed | Distributed | Identity

val rung_name : rung -> string

(** All rung names in ladder order — the telemetry label set. *)
val rung_names : string list

type outcome = {
  result : Pluto.Scheduler.result;
  ast : Codegen.Ast.node;
  rung : rung;  (** which ladder rung produced the schedule *)
  notes : Pluto.Diagnostics.t list;
      (** why earlier rungs failed (empty on the happy path) *)
}

(** [degraded o] — did the pipeline fall past the primary rung? *)
val degraded : outcome -> bool

(** The distributed-fallback configuration derived from a primary one
    (exposed for tests). *)
val distributed_config : Pluto.Scheduler.config -> Pluto.Scheduler.config

(** [optimize ?param_floor ?budget ?engine ?config ?reductions prog] —
    run the ladder. [config] defaults to the wisefuse model; [engine]
    to {!Pluto.Engine.Auto}; [budget] defaults to
    {!Linalg.Budget.of_env} (so [WISEFUSE_BUDGET_MS] and friends apply
    to every pipeline entry point), and [None] there means unlimited.
    With [reductions] (default [false]) the dependence set is run
    through {!Analysis.Reduction.detect} and the covered
    self-dependences retagged [Deps.Dep.Reduction] before scheduling,
    relaxing legality for proven accumulation chains; when [false] no
    dependence is ever tagged and schedules are byte-identical to the
    untagged pipeline. On the happy path this is byte-identical to
    [Pluto.Scheduler.run config prog] followed by
    [Codegen.Scan.of_result].
    @raise Pluto.Diagnostics.Error only if even the identity rung fails
    verification, which indicates an internally inconsistent dependence
    analysis. *)
val optimize :
  ?param_floor:int ->
  ?budget:Linalg.Budget.t ->
  ?engine:Pluto.Engine.choice ->
  ?config:Pluto.Scheduler.config ->
  ?reductions:bool ->
  Scop.Program.t ->
  outcome

(** {!optimize} with dependences already computed (must include input
    dependences if downstream wants them). No [Budget.of_env] default
    here — the caller decides. *)
val with_deps :
  ?budget:Linalg.Budget.t ->
  ?engine:Pluto.Engine.choice ->
  config:Pluto.Scheduler.config ->
  Scop.Program.t ->
  Deps.Dep.t list ->
  outcome
