open Deps

type row = { scc : int; members : int list; dim : int; partition : int }

let partition_table (res : Pluto.Scheduler.result) =
  let comps = Ddg.components res.scc_of in
  List.map
    (fun scc ->
      let members = comps.(scc) in
      let dim = Pluto.Scheduler.scc_dim res.prog members in
      let partition =
        match members with
        | m :: _ -> res.outer_partition.(m)
        | [] -> 0
      in
      { scc; members; dim; partition })
    res.scc_order

let partition_count (res : Pluto.Scheduler.result) =
  List.length (Pluto.Scheduler.partitions res)

let score_deps pred (res : Pluto.Scheduler.result) =
  List.length
    (List.filter
       (fun (d : Dep.t) ->
         pred d
         && d.src <> d.dst
         && res.outer_partition.(d.src) = res.outer_partition.(d.dst))
       res.all_deps)

let reuse_score res = score_deps (fun _ -> true) res
let rar_reuse_score res = score_deps (fun (d : Dep.t) -> d.kind = Dep.Input) res

(* Which degradation rung produced the schedule, and why any earlier
   rung failed. One line on the happy path. *)
let pp_resilience fmt (o : Resilient.outcome) =
  Format.fprintf fmt "@[<v>schedule source: %s rung (config %s)"
    (Resilient.rung_name o.Resilient.rung)
    o.Resilient.result.Pluto.Scheduler.config_name;
  List.iter
    (fun d -> Format.fprintf fmt "@,degraded past: %a" Pluto.Diagnostics.pp d)
    o.Resilient.notes;
  Format.fprintf fmt "@]"

let pp_table fmt (res : Pluto.Scheduler.result) =
  Format.fprintf fmt "@[<v>SCC | dim | partition (%s)@," res.config_name;
  List.iter
    (fun r ->
      Format.fprintf fmt "%3d |  %d  | %d   (stmts:" r.scc r.dim r.partition;
      List.iter
        (fun id -> Format.fprintf fmt " %s" res.prog.stmts.(id).Scop.Statement.name)
        r.members;
      Format.fprintf fmt ")@,")
    (partition_table res);
  Format.fprintf fmt "@]"
