(* Graceful degradation for the scheduling pipeline.

   The optimizing schedule search can fail: the solver budget may run
   out, a fusion configuration may paint itself into a corner (no
   hyperplane and no further cut), or code generation may reject the
   transform. None of those should take the pipeline down — a legal
   schedule always exists (the original program order is one). This
   module walks a fallback ladder:

     1. Primary      — the requested configuration (wisefuse by default)
                       on the requested engine;
     2. Lp_relaxed   — the same configuration on the lp-dfp engine (LP
                       relaxation + clustering, no branch-and-bound) —
                       tried only when the primary attempt ran the ILP
                       engine, since a cheaper solver can survive a
                       budget the exact one tripped;
     3. Distributed  — maximal distribution: every SCC in its own nest,
                       the cheapest search the full scheduler can run;
     4. Identity     — the original program order, built directly (no
                       solver at all) and always legal by construction.

   Each rung gets a fresh copy of the budget ([Budget.refresh]) rather
   than inheriting an already-tripped one. Every outcome — including a
   degraded one — has passed the scheduler's always-on verification
   ([Satisfy.check_complete] + [Satisfy.check_legal]); the identity
   rung is verified here explicitly. The diagnostics of the rungs that
   failed ride along in [notes] so reports can say *why* the pipeline
   degraded. *)

open Deps

type rung = Primary | Lp_relaxed | Distributed | Identity

let rung_name = function
  | Primary -> "primary"
  | Lp_relaxed -> "lp-relaxed"
  | Distributed -> "distributed"
  | Identity -> "identity"

(* ladder order; telemetry pre-creates one labeled series per rung so
   scrape output is stable from the first request *)
let rung_names =
  List.map rung_name [ Primary; Lp_relaxed; Distributed; Identity ]

type outcome = {
  result : Pluto.Scheduler.result;
  ast : Codegen.Ast.node;
  rung : rung;
  notes : Pluto.Diagnostics.t list; (* failures of earlier rungs, in order *)
}

let degraded o = o.rung <> Primary

(* Maximal distribution under the same engine: one partition per SCC up
   front, so the per-level ILPs decompose into single-SCC problems. *)
let distributed_config (cfg : Pluto.Scheduler.config) =
  {
    Pluto.Scheduler.name = cfg.name ^ "+distribute";
    order_sccs = Pluto.Scheduler.topological_order;
    initial_cut = Some Pluto.Scheduler.Cut_all_sccs;
    fallback_cut = Pluto.Scheduler.Cut_all_sccs;
    outer_parallel = false;
  }

(* A Scheduler.result for the identity (original program order)
   schedule, assembled without any solving. *)
let identity_result (prog : Scop.Program.t) all_deps =
  let ddg = Ddg.build prog all_deps in
  let scc_of = Ddg.scc_kosaraju ddg in
  let scc_order = List.init (Ddg.scc_count scc_of) Fun.id in
  let sched = Codegen.Scan.identity_schedule prog in
  let outer_partition =
    (* statements sharing the leading scalar row share the outermost
       nest, exactly as the scheduler computes it *)
    let prefix id =
      let rec go acc = function
        | Pluto.Sched.Beta b :: rest -> go (b :: acc) rest
        | Pluto.Sched.Hyp _ :: _ | [] -> List.rev acc
      in
      go [] sched.(id)
    in
    let tbl = Hashtbl.create 8 in
    let next = ref 0 in
    Array.map
      (fun k ->
        match Hashtbl.find_opt tbl k with
        | Some id -> id
        | None ->
          let id = !next in
          incr next;
          Hashtbl.add tbl k id;
          id)
      (Array.init (Array.length prog.stmts) prefix)
  in
  {
    Pluto.Scheduler.prog;
    config_name = "identity";
    engine = Pluto.Engine.Ilp (* no solver ran; the kind is vacuous *);
    all_deps;
    true_deps = List.filter Dep.is_true all_deps;
    ddg;
    scc_of;
    scc_order;
    sched;
    outer_partition;
  }

let verify_identity (res : Pluto.Scheduler.result) =
  (match Pluto.Satisfy.check_complete res.prog res.sched with
  | Ok () -> ()
  | Error d -> raise (Pluto.Diagnostics.Error d));
  match Pluto.Satisfy.check_legal res.prog res.true_deps res.sched with
  | Ok () -> ()
  | Error (d : Dep.t) ->
    (* The identity schedule is the original execution order; the
       dependences were derived from that very order, so this can only
       fire on an internally inconsistent dependence analysis. *)
    Pluto.Diagnostics.fail ~phase:Verification ~code:"verify.identity-illegal"
      ~context:
        [
          ("src", Printf.sprintf "S%d" d.src);
          ("dst", Printf.sprintf "S%d" d.dst);
        ]
      (Printf.sprintf
         "identity schedule violates dependence S%d->S%d (dependence \
          analysis is inconsistent)"
         d.src d.dst)

(* Ladder transitions as trace events: one [resilience.attempt] per
   rung tried, one [resilience.degrade] per failure (carrying the
   diagnostic that forced the step down), one [resilience.settled] for
   the rung that produced the result. *)
let rung_event name rung args =
  if Obs.Trace.on () then
    Obs.Trace.instant ~cat:"resilience" name
      ~args:(("rung", Obs.Json.Str (rung_name rung)) :: args)

let degrade_event rung (d : Pluto.Diagnostics.t) =
  rung_event "resilience.degrade" rung
    [
      ("code", Obs.Json.Str d.code);
      ("phase", Obs.Json.Str (Pluto.Diagnostics.phase_name d.phase));
      ("message", Obs.Json.Str d.message);
    ]

let with_deps ?budget ?(engine = Pluto.Engine.Auto) ~config
    (prog : Scop.Program.t) all_deps =
  (* One attempt = schedule search + code generation; a failure
     anywhere in the pair degrades to the next rung. *)
  let attempt rung cfg eng b =
    rung_event "resilience.attempt" rung
      [
        ("config", Obs.Json.Str cfg.Pluto.Scheduler.name);
        ("engine", Obs.Json.Str (Pluto.Engine.choice_name eng));
      ];
    match
      Pluto.Scheduler.schedule_with_deps ?budget:b ~engine:eng cfg prog
        all_deps
    with
    | Error d -> Error d
    | Ok result -> (
      match
        Pluto.Diagnostics.protect (fun () -> Codegen.Scan.of_result result)
      with
      | Ok ast -> Ok (result, ast)
      | Error d -> Error d)
  in
  let settled rung notes (result, ast) =
    rung_event "resilience.settled" rung
      [ ("degraded", Obs.Json.Bool (rung <> Primary)) ];
    { result; ast; rung; notes }
  in
  (* every rung gets a fresh copy of the budget, never an already
     tripped one *)
  let refresh () = Option.map Linalg.Budget.refresh budget in
  let identity notes =
    (* Last rung: no solver involved, so no budget applies. Verified
       like every other schedule; a failure here raises — there is
       nothing further to degrade to. *)
    rung_event "resilience.attempt" Identity
      [ ("config", Obs.Json.Str "identity") ];
    let result = identity_result prog all_deps in
    verify_identity result;
    let ast = Codegen.Scan.of_result result in
    settled Identity notes (result, ast)
  in
  let distributed notes =
    match attempt Distributed (distributed_config config) engine (refresh ()) with
    | Ok ok -> settled Distributed notes ok
    | Error d ->
      degrade_event Distributed d;
      identity (notes @ [ d ])
  in
  match attempt Primary config engine budget with
  | Ok ok -> settled Primary [] ok
  | Error d1 ->
    degrade_event Primary d1;
    (* Engine step-down: retry the same configuration on the lp-dfp
       engine before giving up on it — but only when the primary
       attempt actually ran the ILP engine (a fixed or auto-selected
       lp-dfp primary has nothing cheaper to step down to). *)
    let primary_engine =
      Pluto.Engine.resolve engine ~nstmts:(Array.length prog.stmts)
    in
    if primary_engine = Pluto.Engine.Ilp then begin
      match
        attempt Lp_relaxed config
          (Pluto.Engine.Fixed Pluto.Engine.Lp_dfp)
          (refresh ())
      with
      | Ok ok -> settled Lp_relaxed [ d1 ] ok
      | Error d2 ->
        degrade_event Lp_relaxed d2;
        distributed [ d1; d2 ]
    end
    else distributed [ d1 ]

let optimize ?param_floor ?budget ?engine ?(config = Wisefuse.config)
    ?(reductions = false) prog =
  let budget =
    match budget with Some _ -> budget | None -> Linalg.Budget.of_env ()
  in
  let all_deps =
    Linalg.Counters.time "dep-analysis" (fun () ->
        Dep.analyze ?param_floor prog)
  in
  (* reduction-aware scheduling: prove reduction shapes, retag their
     covered self-dependences, and let the scheduler treat those edges
     as pre-satisfied. Off by default — with the flag off no dependence
     is ever tagged, so schedules are byte-identical to the untagged
     pipeline. *)
  let all_deps =
    if not reductions then all_deps
    else begin
      let facts, _ = Analysis.Reduction.detect prog all_deps in
      Analysis.Reduction.tag_deps facts all_deps
    end
  in
  with_deps ?budget ?engine ~config prog all_deps
