(** The five fusion models of Table 1 behind one type — the single
    entry point the CLI, benchmarks and tests dispatch on. *)

type t = Icc | Nofuse | Smartfuse | Maxfuse | Wisefuse

(** In Table 1 order (baseline first). *)
val all : t list

val name : t -> string

(** Table 1's description column. *)
val description : t -> string

(** @raise Not_found for unknown names. *)
val of_name : string -> t

(** The scheduler configuration, for the four polyhedral models.
    @raise Invalid_argument for [Icc]. *)
val scheduler_config : t -> Pluto.Scheduler.config

type optimized = {
  ast : Codegen.Ast.node;
  scheduler : Pluto.Scheduler.result option;  (** [None] for [Icc] *)
  icc : Icc.Icc_model.result option;  (** [Some] for [Icc] *)
  resilience : Resilient.outcome option;
      (** which degradation rung produced the schedule ([None] for
          [Icc], which does not go through the ladder) *)
}

(** Run the model's whole pipeline on a program. Polyhedral models run
    through the {!Resilient} degradation ladder, so a solver budget
    ([budget], defaulting to {!Linalg.Budget.of_env}) degrades the
    schedule instead of failing the run. [engine] selects the
    scheduling engine (default {!Pluto.Engine.Auto}; ignored by
    [Icc], which has no solver). [reductions] (default [false])
    enables reduction-aware legality — see {!Resilient.optimize};
    ignored by [Icc]. *)
val optimize :
  ?budget:Linalg.Budget.t ->
  ?engine:Pluto.Engine.choice ->
  ?reductions:bool ->
  t ->
  Scop.Program.t ->
  optimized

(** [simulate ?config m prog] optimizes and runs the machine model (at
    the program's default parameters). *)
val simulate :
  ?config:Machine.Perf.config ->
  ?reductions:bool ->
  t ->
  Scop.Program.t ->
  Machine.Perf.stats

(** [verify m prog] interprets the transformed program against the
    original; [None] means semantically equivalent, [Some msg] is the
    first difference. *)
val verify : ?reductions:bool -> t -> Scop.Program.t -> string option
