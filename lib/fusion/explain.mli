(** Human-readable fusion-decision reports.

    [capture] runs a model's whole pipeline under a fresh {!Obs.Trace}
    recording and keeps the decision events; [pp] renders them as a
    justification chain in the house diagnostics style: the pre-fusion
    clustering (which SCC seeded each cluster and why each joiner was
    pulled in), every cut with the strategy chosen and — for minimal /
    Algorithm 2 cuts — the offending dependence, the per-level ILP
    effort, the degradation-ladder path, verification and the final
    partition table. *)

type t = {
  kernel : string;
  model : Model.t;
  outcome : Model.optimized;
  events : Obs.Trace.event list;
}

(** Run [Model.optimize] on [prog] under a fresh trace recording.
    Resets {!Linalg.Counters} and the Farkas cache first so the report
    is a function of the program alone. The tracer is left disabled. *)
val capture :
  ?budget:Linalg.Budget.t -> ?engine:Pluto.Engine.choice ->
  ?reductions:bool -> model:Model.t -> kernel:string -> Scop.Program.t -> t

val pp : Format.formatter -> t -> unit
