(** A model of the baseline "traditional compiler" (the paper's Intel
    compiler v13 with -O3 -parallel), as characterized in Sections 1
    and 5.3:

    - loop-nest granularity, no statement reordering;
    - {e pairwise} fusion of adjacent loop nests ([15]-style), only
      when the nests have the same dimensionality, conformable
      (identical) bounds, the fusion is legal {e without} any enabling
      transformation (no interchange, no shifting), and outer-loop
      parallelism is not lost — so nests of different dimensionality
      (gemsfdtd) or with non-conformable loop orders (tce) are never
      fused;
    - outer loops are parallelized conservatively: only rectangular
      nests (lu's triangular loops stay serial), without an
      outer-carried dependence, and not containing an inner-loop
      reduction (the gemver S2 nest stays serial, as observed in the
      paper). *)

type nest = {
  stmts : int list;  (** statement ids, program order *)
  depth : int;
  parallel : bool;  (** outer loop parallelized? *)
}

type result = {
  prog : Scop.Program.t;
  deps : Deps.Dep.t list;
  nests : nest list;  (** after pairwise fusion, in execution order *)
  sched : Pluto.Sched.t;
  ast : Codegen.Ast.node;  (** with icc's parallelization decisions *)
}

(** Run the model. The resulting schedule is validated with
    {!Pluto.Satisfy.check_legal}.
    @raise Pluto.Diagnostics.Error if the model produced an illegal
    schedule (a bug); use {!run_checked} for the non-raising variant. *)
val run : ?param_floor:int -> Scop.Program.t -> result

(** {!run} with the failure path reified as a typed diagnostic. *)
val run_checked :
  ?param_floor:int -> Scop.Program.t -> (result, Pluto.Diagnostics.t) Stdlib.result

(** Number of fused nests (original nest count when no fusion). *)
val nest_count : result -> int
