open Deps

type nest = { stmts : int list; depth : int; parallel : bool }

type result = {
  prog : Scop.Program.t;
  deps : Dep.t list;
  nests : nest list;
  sched : Pluto.Sched.t;
  ast : Codegen.Ast.node;
}

let stmt (prog : Scop.Program.t) id = prog.stmts.(id)

(* statements grouped by outermost loop, in program order *)
let original_nests (prog : Scop.Program.t) =
  let nests = ref [] and current = ref [] and current_loop = ref None in
  Array.iter
    (fun (s : Scop.Statement.t) ->
      let outer = if Array.length s.loop_ids > 0 then Some s.loop_ids.(0) else None in
      match (!current_loop, outer) with
      | Some a, Some b when a = b -> current := s.id :: !current
      | _ ->
        if !current <> [] then nests := List.rev !current :: !nests;
        current := [ s.id ];
        current_loop := outer)
    prog.stmts;
  if !current <> [] then nests := List.rev !current :: !nests;
  List.rev !nests

(* a (possibly already-merged) nest has a fusable shape when all its
   statements sit at the same depth with the same iterator names and
   identical iteration domains; imperfect nests (statements at
   different depths, e.g. wupwise) are excluded *)
let fusable_shape prog ids =
  match ids with
  | [] -> false
  | first :: rest ->
    let sf = stmt prog first in
    List.for_all
      (fun id ->
        let s = stmt prog id in
        s.Scop.Statement.iters = sf.Scop.Statement.iters
        && Poly.Polyhedron.equal s.Scop.Statement.domain sf.Scop.Statement.domain)
      rest

let nest_depth prog ids =
  List.fold_left (fun m id -> max m (Scop.Statement.depth (stmt prog id))) 0 ids

(* syntactic conformability: same depth, same iterator names in the
   same positions, identical iteration domains (a traditional compiler
   fuses only loops it can line up textually; tce's permuted loop
   orders fail here) *)
let conformable prog a b =
  fusable_shape prog a && fusable_shape prog b
  &&
  match (a, b) with
  | ia :: _, ib :: _ ->
    let sa = stmt prog ia and sb = stmt prog ib in
    sa.Scop.Statement.iters = sb.Scop.Statement.iters
    && Poly.Polyhedron.equal sa.Scop.Statement.domain sb.Scop.Statement.domain
  | _ -> false

(* profitability: pairwise fusion in the Ding-Kennedy tradition is
   reuse-driven - a traditional compiler does not fuse nests that share
   no data (fusion without reuse only adds register pressure) *)
let arrays_of prog ids =
  List.concat_map
    (fun id ->
      List.map
        (fun (a : Scop.Access.t) -> a.Scop.Access.array)
        (Scop.Statement.accesses (stmt prog id)))
    ids
  |> List.sort_uniq compare

let profitable prog a b =
  let aa = arrays_of prog a and ab = arrays_of prog b in
  List.exists (fun x -> List.mem x ab) aa

(* the 2D+1-style schedule for a given nest assignment:
   [nest_of id] gives the fused-nest index, [inner_pos id] the
   statement's textual position at the innermost level of its nest
   (None = keep the original beta values: unfused, possibly imperfect
   nest) *)
let build_sched (prog : Scop.Program.t) ~nest_of ~inner_pos =
  let np = Scop.Program.nparams prog in
  let dmax = Scop.Program.max_depth prog in
  Array.map
    (fun (s : Scop.Statement.t) ->
      let d = Scop.Statement.depth s in
      let rows = ref [ Pluto.Sched.Beta (nest_of s.id) ] in
      for level = 1 to dmax do
        let h = Array.make (d + np + 1) 0 in
        if level - 1 < d then h.(level - 1) <- 1;
        rows := Pluto.Sched.Hyp h :: !rows;
        let b =
          match inner_pos s.id with
          | Some pos -> if level = dmax then pos else 0
          | None -> if level <= d then s.beta.(level) else 0
        in
        rows := Pluto.Sched.Beta b :: !rows
      done;
      List.rev !rows)
    prog.stmts

let sched_for_nests prog nests ~fused =
  let n = Array.length prog.Scop.Program.stmts in
  let nest_of = Array.make n 0 in
  let inner = Array.make n None in
  List.iteri
    (fun idx ids ->
      List.iteri
        (fun pos id ->
          nest_of.(id) <- idx;
          if List.mem idx fused then inner.(id) <- Some pos)
        ids)
    nests;
  build_sched prog ~nest_of:(fun id -> nest_of.(id))
    ~inner_pos:(fun id -> inner.(id))

let outer_hyp_level (prog : Scop.Program.t) = ignore prog; 1
(* rows are [Beta; Hyp; Beta; Hyp; ...]: the outer hyperplane is row 1 *)

let nest_outer_parallel prog deps sched ids =
  let true_deps = List.filter Dep.is_true deps in
  match
    Pluto.Satisfy.row_class prog true_deps sched ~level:(outer_hyp_level prog)
      ~members:ids
  with
  | Pluto.Satisfy.Parallel -> true
  | Pluto.Satisfy.Parallel_reduction
  | Pluto.Satisfy.Forward | Pluto.Satisfy.Sequential ->
    (* icc's heuristics do not do reduction privatization here *)
    false

(* legality restricted to the dependences a candidate fusion could
   affect: only statements of the two merged nests change schedule *)
let legal ?touching prog deps sched =
  let relevant (d : Dep.t) =
    Dep.is_true d
    &&
    match touching with
    | None -> true
    | Some ids -> List.mem d.src ids || List.mem d.dst ids
  in
  match Pluto.Satisfy.check_legal prog (List.filter relevant deps) sched with
  | Ok () -> true
  | Error _ -> false

let rectangular prog ids =
  List.for_all
    (fun id ->
      let s = stmt prog id in
      let d = Scop.Statement.depth s in
      List.for_all
        (fun c ->
          let nonzero = ref 0 in
          for i = 0 to d - 1 do
            if not (Linalg.Q.is_zero (Poly.Constr.coeff c i)) then incr nonzero
          done;
          !nonzero <= 1)
        (Poly.Polyhedron.constraints s.Scop.Statement.domain))
    ids

(* inner-loop reduction: a self flow dependence carried by a non-outer
   loop (x[i] += ... over j) - the model's stand-in for icc preferring
   to vectorize such nests rather than parallelize them *)
let has_inner_reduction deps ids =
  List.exists
    (fun (d : Dep.t) ->
      d.kind = Dep.Flow && d.src = d.dst && List.mem d.src ids
      && match d.level with Dep.Carried l -> l >= 1 | Dep.Independent -> false)
    deps

let run ?param_floor (prog : Scop.Program.t) =
  let deps = Dep.analyze ?param_floor prog in
  let nests0 = original_nests prog in
  (* pairwise fusion scan *)
  let rec scan acc fused_idx nests =
    match nests with
    | a :: b :: rest ->
      let try_fuse =
        conformable prog a b
        && profitable prog a b
        &&
        (* candidate: a and b merged, everything else unchanged *)
        let cand_nests = List.rev acc @ [ a @ b ] @ rest in
        let merged_idx = List.length acc in
        let sched =
          sched_for_nests prog cand_nests ~fused:(merged_idx :: fused_idx)
        in
        legal ~touching:(a @ b) prog deps sched
        &&
        (* parallelism preservation: if both nests are outer-parallel
           on their own, the merged nest must be too *)
        let solo =
          let solo_sched = sched_for_nests prog (List.rev acc @ [ a; b ] @ rest) ~fused:fused_idx in
          nest_outer_parallel prog deps solo_sched a
          && nest_outer_parallel prog deps solo_sched b
        in
        (not solo) || nest_outer_parallel prog deps sched (a @ b)
      in
      if try_fuse then
        (* keep scanning with the merged nest in front (chain fusion) *)
        scan acc (List.length acc :: fused_idx) ((a @ b) :: rest)
      else scan (a :: acc) fused_idx (b :: rest)
    | [ a ] -> (List.rev (a :: acc), fused_idx)
    | [] -> (List.rev acc, fused_idx)
  in
  let nests, fused_idx = scan [] [] nests0 in
  let sched = sched_for_nests prog nests ~fused:fused_idx in
  (match Pluto.Satisfy.check_legal prog (List.filter Dep.is_true deps) sched with
  | Ok () -> ()
  | Error d ->
    Pluto.Diagnostics.fail ~phase:Verification ~code:"icc.illegal"
      ~context:
        [
          ("src", Printf.sprintf "S%d" d.src);
          ("dst", Printf.sprintf "S%d" d.dst);
          ("kind", Dep.kind_to_string d.kind);
        ]
      (Format.asprintf "Icc_model: illegal schedule over %a" Dep.pp d));
  let nest_infos =
    List.map
      (fun ids ->
        let parallel =
          rectangular prog ids
          && nest_outer_parallel prog deps sched ids
          && not (has_inner_reduction deps ids)
        in
        { stmts = ids; depth = nest_depth prog ids; parallel })
      nests
  in
  (* AST with icc's parallelization decisions *)
  let ast = Codegen.Scan.generate ~prog ~sched ~deps in
  let parallel_of_stmt = Array.make (Array.length prog.stmts) true in
  List.iter
    (fun ni -> List.iter (fun id -> parallel_of_stmt.(id) <- ni.parallel) ni.stmts)
    nest_infos;
  let rec stmts_of = function
    | Codegen.Ast.Exec i -> [ i.Codegen.Ast.stmt_id ]
    | Codegen.Ast.Seq l -> List.concat_map stmts_of l
    | Codegen.Ast.Loop l -> stmts_of l.Codegen.Ast.body
  in
  let rec demote ~inside node =
    match node with
    | Codegen.Ast.Exec _ -> node
    | Codegen.Ast.Seq l -> Codegen.Ast.Seq (List.map (demote ~inside) l)
    | Codegen.Ast.Loop l ->
      let body = demote ~inside:true l.Codegen.Ast.body in
      if inside then Codegen.Ast.Loop { l with body }
      else begin
        let members = stmts_of (Codegen.Ast.Loop l) in
        let par =
          if List.for_all (fun id -> parallel_of_stmt.(id)) members then l.par
          else Codegen.Ast.of_loop_class Pluto.Satisfy.Sequential
        in
        Codegen.Ast.Loop { l with par; body }
      end
  in
  let ast = demote ~inside:false ast in
  { prog; deps; nests = nest_infos; sched; ast }

let run_checked ?param_floor prog =
  Pluto.Diagnostics.protect (fun () -> run ?param_floor prog)

let nest_count r = List.length r.nests
