(** Hierarchical span tracing and decision provenance, with
    {e per-domain} sinks.

    The tracer records two kinds of events into an in-memory sink:

    - {b spans} (begin/end pairs) forming a tree — pipeline stages,
      per-level hyperplane searches — from which exclusive self-times
      can be recomputed and reconciled against
      [Linalg.Counters.stage_times];
    - {b instants} — point-in-time decision events (why an SCC pair was
      cut, whether an ILP solve was warm or cold, which degradation
      rung fired) with structured {!Json.t} arguments.

    Every domain owns an independent sink in domain-local storage:
    {!enable}, {!events}, {!capture} etc. act on the calling domain's
    sink only.  Emission is therefore lock-free — no mutex, no
    cross-domain interleaving — and concurrent {!capture}s on
    different domains (one per in-flight request in the serving
    daemon) cannot lose or mix events.

    The default sink is {e null}: {!on} is a single [Atomic.get] of
    the count of domains with an enabled sink, and every emit function
    returns immediately when it reads zero, so instrumented hot paths
    cost one atomic load when tracing is off.  Call sites that build
    argument lists should guard with [if Trace.on () then ...] so the
    allocation is skipped too.

    Timestamps are microseconds relative to the calling domain's most
    recent {!enable}/{!reset}, clamped to be non-decreasing (Chrome's
    trace viewer requires monotone timestamps).  The timestamp source
    defaults to the wall clock; [Linalg.Clock] installs the monotonic
    clock via {!set_clock} at link time. *)

type phase = B | E | I

type event = {
  ph : phase;
  name : string;
  cat : string;
  ts : float;  (** microseconds since {!enable}/{!reset} *)
  args : (string * Json.t) list;
}

(** Is any domain's sink active? One [Atomic.get] — the only check hot
    paths pay when tracing is off. *)
val on : unit -> bool

(** Replace the timestamp source (seconds, as a float). Installed once
    at link time by [Linalg.Clock]; tests may swap in a fake clock. *)
val set_clock : (unit -> float) -> unit

(** Start recording into a fresh sink {e on the calling domain} (drops
    that domain's prior events, re-zeroes its clock). *)
val enable : unit -> unit

(** Stop the calling domain's recording. Events stay readable until
    the next {!enable}. *)
val disable : unit -> unit

(** Drop the calling domain's recorded events and re-zero its clock,
    keeping the enabled/disabled state. *)
val reset : unit -> unit

(** The calling domain's recorded events, in emission order. *)
val events : unit -> event list

val event_count : unit -> int

(** {2 Emission} — all no-ops when the calling domain's sink is off. *)

val begin_span : ?args:(string * Json.t) list -> cat:string -> string -> unit
val end_span : string -> unit

(** [span ~cat name f] wraps [f ()] in a begin/end pair (ended on
    exceptions too). *)
val span : ?args:(string * Json.t) list -> cat:string -> string -> (unit -> 'a) -> 'a

val instant : ?args:(string * Json.t) list -> cat:string -> string -> unit

(** {2 Reconstruction} — all over the calling domain's sink. *)

(** Per-name {e exclusive} (self) seconds of the recorded spans of
    category [cat], in first-appearance order: each span's duration
    minus the duration of its child spans {e of the same category}.
    With [cat = "stage"] this recomputes [Counters.stage_times] from
    the trace. *)
val self_times : cat:string -> unit -> (string * float) list

(** Per-name [(self, total)] seconds (total = inclusive duration sum)
    for spans of category [cat], in first-appearance order. *)
val summary : cat:string -> unit -> (string * float * float) list

(** [with_recording f] runs [f] under a fresh enabled sink and returns
    its result with the recorded events; the previous sink state
    (on/off and events) is NOT restored — callers own their domain's
    tracer. *)
val with_recording : (unit -> 'a) -> 'a * event list

(** [capture f] runs [f] under a fresh recording like {!with_recording}
    but saves the calling domain's entire sink state first and
    restores it afterwards (also on exceptions — the captured events
    are then lost). Captures therefore nest, and concurrent captures
    on different domains are independent. This is what the serving
    daemon uses to harvest per-request decision events. *)
val capture : (unit -> 'a) -> 'a * event list
