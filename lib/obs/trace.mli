(** Process-wide hierarchical span tracing and decision provenance.

    The tracer records two kinds of events into an in-memory sink:

    - {b spans} (begin/end pairs) forming a tree — pipeline stages,
      per-level hyperplane searches — from which exclusive self-times
      can be recomputed and reconciled against
      [Linalg.Counters.stage_times];
    - {b instants} — point-in-time decision events (why an SCC pair was
      cut, whether an ILP solve was warm or cold, which degradation
      rung fired) with structured {!Json.t} arguments.

    The default sink is {e null}: [on ()] is a single [bool ref] read
    and every emit function returns immediately, so instrumented hot
    paths cost one branch when tracing is off. Call sites that build
    argument lists should guard with [if Trace.on () then ...] so the
    allocation is skipped too.

    Timestamps are wall-clock microseconds relative to the most recent
    {!enable}/{!reset}, clamped to be non-decreasing (Chrome's trace
    viewer requires monotone timestamps).

    When the sink is {e on}, emissions are serialized under a mutex so
    concurrent domains (the serving daemon) can record safely; the
    null-sink fast path never touches the lock. *)

type phase = B | E | I

type event = {
  ph : phase;
  name : string;
  cat : string;
  ts : float;  (** microseconds since {!enable}/{!reset} *)
  args : (string * Json.t) list;
}

(** Is the recording sink active? The only check hot paths pay. *)
val on : unit -> bool

(** Start recording into a fresh in-memory sink (drops prior events,
    re-zeroes the clock). *)
val enable : unit -> unit

(** Stop recording. Events stay readable until the next {!enable}. *)
val disable : unit -> unit

(** Drop recorded events and re-zero the clock, keeping the sink state. *)
val reset : unit -> unit

(** Recorded events, in emission order. *)
val events : unit -> event list

val event_count : unit -> int

(** {2 Emission} — all no-ops when the sink is off. *)

val begin_span : ?args:(string * Json.t) list -> cat:string -> string -> unit
val end_span : string -> unit

(** [span ~cat name f] wraps [f ()] in a begin/end pair (ended on
    exceptions too). *)
val span : ?args:(string * Json.t) list -> cat:string -> string -> (unit -> 'a) -> 'a

val instant : ?args:(string * Json.t) list -> cat:string -> string -> unit

(** {2 Reconstruction} *)

(** Per-name {e exclusive} (self) seconds of the recorded spans of
    category [cat], in first-appearance order: each span's duration
    minus the duration of its child spans {e of the same category}.
    With [cat = "stage"] this recomputes [Counters.stage_times] from
    the trace. *)
val self_times : cat:string -> unit -> (string * float) list

(** Per-name [(self, total)] seconds (total = inclusive duration sum)
    for spans of category [cat], in first-appearance order. *)
val summary : cat:string -> unit -> (string * float * float) list

(** [with_recording f] runs [f] under a fresh enabled sink and returns
    its result with the recorded events; the previous sink state
    (on/off and events) is NOT restored — callers own the tracer. *)
val with_recording : (unit -> 'a) -> 'a * event list

(** [capture f] runs [f] under a fresh recording like {!with_recording}
    but saves the entire sink state first and restores it afterwards
    (also on exceptions — the captured events are then lost). Captures
    therefore nest: an outer recording resumes exactly where it left
    off, clock monotonicity included. This is what the serving daemon
    uses to harvest per-request decision events. *)
val capture : (unit -> 'a) -> 'a * event list
