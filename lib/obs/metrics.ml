(* Domain-safe metrics: sharded counters and log-linear latency
   histograms with a lock-free [Atomic] hot path, merged at scrape
   time into a Prometheus text-format exposition.

   Design notes.

   Sharding: each counter / histogram owns [shards] independent cells
   (arrays of [int Atomic.t]).  A writer picks the shard indexed by its
   domain id modulo [shards], so concurrent domains almost never
   contend on a cache line, and every update is a single
   [Atomic.fetch_and_add] — no mutex anywhere on the hot path.  A
   scrape folds the shards with pointwise addition; addition over
   naturals is associative and commutative and drops nothing, so the
   merge is loss-free regardless of the order shards are visited or of
   concurrent updates racing the scrape (a racing increment lands in
   either this scrape or the next — totals are monotone).

   Disabled path: a registry created with [~enabled:false] stamps every
   instrument it mints, and each operation early-returns after one
   immutable bool load.  This is the PR 5 null-sink discipline: the
   instrumented binary with telemetry off must cost noise.

   Histograms are log-linear (HdrHistogram-style): 8 linear
   sub-buckets per power of two, which bounds the relative error of
   any reconstructed quantile at 12.5% while keeping the bucket count
   small enough to scan at scrape time.  Values are non-negative
   integers (we feed microseconds); negatives land in a dedicated
   underflow bucket and values at or above 2^30 in an overflow bucket,
   so no observation is ever dropped and [_count] always equals the
   bucket sum. *)

let shards = 16 (* power of two; cheap mask instead of mod *)

let shard_index () = (Domain.self () :> int) land (shards - 1)

(* ------------------------------------------------------------------ *)
(* Log-linear bucket arithmetic (pure; exposed for tests)             *)
(* ------------------------------------------------------------------ *)

module Buckets = struct
  let sub_bits = 3
  let sub = 1 lsl sub_bits (* 8 linear sub-buckets per octave *)

  let max_exp = 30 (* values >= 2^30 overflow (~18 min in us) *)

  (* layout: [0] underflow, [1 .. sub] the values 0..sub-1 one per
     bucket, then (max_exp - sub_bits) octaves of [sub] buckets each,
     and a final overflow bucket. *)
  let count = 1 + sub + ((max_exp - sub_bits) * sub) + 1
  let underflow = 0
  let overflow = count - 1

  let msb v =
    (* index of the highest set bit; v > 0 *)
    let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
    go v 0

  let index v =
    if v < 0 then underflow
    else if v < sub then 1 + v
    else
      let e = msb v in
      if e >= max_exp then overflow
      else
        let s = (v lsr (e - sub_bits)) - sub in
        1 + sub + ((e - sub_bits) * sub) + s

  (* inclusive upper edge of bucket [i]; integers, so the Prometheus
     [le] boundary is exact.  Underflow reports -1 ("anything <= -1"),
     overflow reports max_int and renders as +Inf. *)
  let upper i =
    if i = underflow then -1
    else if i <= sub then i - 1
    else if i >= overflow then max_int
    else
      let j = i - 1 - sub in
      let d = j / sub and s = j mod sub in
      let w = 1 lsl d in
      (sub lsl d) + ((s + 1) * w) - 1

  (* pointwise sum — THE merge.  Associative, commutative, loss-free:
     each cell of the result is the natural sum of the operands'
     cells. *)
  let merge a b = Array.init (Array.length a) (fun i -> a.(i) + b.(i))
end

(* ------------------------------------------------------------------ *)
(* Instruments                                                        *)
(* ------------------------------------------------------------------ *)

type counter = { c_on : bool; cells : int Atomic.t array }

type gauge = { g_on : bool; cell : int Atomic.t }

type histogram = {
  h_on : bool;
  (* shards x buckets of observation counts, plus a per-shard running
     sum of raw observed values for the Prometheus [_sum] series. *)
  hcells : int Atomic.t array array;
  hsums : int Atomic.t array;
}

let make_cells n = Array.init n (fun _ -> Atomic.make 0)

let counter_make ~on = { c_on = on; cells = make_cells shards }

let inc ?(n = 1) c =
  if c.c_on then ignore (Atomic.fetch_and_add c.cells.(shard_index ()) n)

let counter_value c =
  Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.cells

let gauge_make ~on = { g_on = on; cell = Atomic.make 0 }
let gauge_set g v = if g.g_on then Atomic.set g.cell v
let gauge_add g n = if g.g_on then ignore (Atomic.fetch_and_add g.cell n)
let gauge_value g = Atomic.get g.cell

let hist_make ~on =
  {
    h_on = on;
    hcells = Array.init shards (fun _ -> make_cells Buckets.count);
    hsums = make_cells shards;
  }

let observe h v =
  if h.h_on then begin
    let s = shard_index () in
    ignore (Atomic.fetch_and_add h.hcells.(s).(Buckets.index v) 1);
    ignore (Atomic.fetch_and_add h.hsums.(s) v)
  end

(* merged per-bucket counts; one [Atomic.get] per cell, no locks *)
let hist_buckets h =
  let out = Array.make Buckets.count 0 in
  Array.iter
    (fun shard ->
      Array.iteri (fun i a -> out.(i) <- out.(i) + Atomic.get a) shard)
    h.hcells;
  out

let hist_count h = Array.fold_left ( + ) 0 (hist_buckets h)
let hist_sum h = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 h.hsums

(* quantile estimate from merged buckets: the inclusive upper edge of
   the first bucket where the cumulative count reaches q * total.
   Relative error is bounded by the bucket width (12.5%). *)
let hist_quantile h q =
  let b = hist_buckets h in
  let total = Array.fold_left ( + ) 0 b in
  if total = 0 then 0.
  else
    let rank = int_of_float (ceil (q *. float_of_int total)) in
    let rank = max 1 (min total rank) in
    let rec go i acc =
      if i >= Buckets.count then float_of_int (Buckets.upper (Buckets.count - 2))
      else
        let acc = acc + b.(i) in
        if acc >= rank then
          if i = Buckets.overflow then
            float_of_int (Buckets.upper (Buckets.overflow - 1))
          else float_of_int (Buckets.upper i)
        else go (i + 1) acc
    in
    go 0 0

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)
(* ------------------------------------------------------------------ *)

type sample = S_counter of counter | S_counter_fn of (unit -> int) | S_gauge of gauge | S_gauge_fn of (unit -> int) | S_hist of histogram

type series = { labels : (string * string) list; inst : sample }

type family = {
  name : string;
  help : string;
  ftype : string; (* "counter" | "gauge" | "histogram" *)
  mutable rows : series list; (* reverse registration order *)
}

type registry = {
  enabled : bool;
  m : Mutex.t; (* guards registration only, never the hot path *)
  mutable families : family list; (* reverse registration order *)
}

let create ?(enabled = true) () =
  { enabled; m = Mutex.create (); families = [] }

let enabled r = r.enabled

let family r ~name ~help ~ftype =
  Mutex.protect r.m (fun () ->
      match List.find_opt (fun f -> f.name = name) r.families with
      | Some f -> f
      | None ->
        let f = { name; help; ftype; rows = [] } in
        r.families <- f :: r.families;
        f)

let register r ~name ~help ~ftype ?(labels = []) inst =
  let f = family r ~name ~help ~ftype in
  Mutex.protect r.m (fun () -> f.rows <- { labels; inst } :: f.rows)

let counter r ~name ~help ?labels () =
  let c = counter_make ~on:r.enabled in
  register r ~name ~help ~ftype:"counter" ?labels (S_counter c);
  c

let counter_fn r ~name ~help ?labels f =
  register r ~name ~help ~ftype:"counter" ?labels (S_counter_fn f)

let gauge r ~name ~help ?labels () =
  let g = gauge_make ~on:r.enabled in
  register r ~name ~help ~ftype:"gauge" ?labels (S_gauge g);
  g

let gauge_fn r ~name ~help ?labels f =
  register r ~name ~help ~ftype:"gauge" ?labels (S_gauge_fn f)

let histogram r ~name ~help ?labels () =
  let h = hist_make ~on:r.enabled in
  register r ~name ~help ~ftype:"histogram" ?labels (S_hist h);
  h

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition (format 0.0.4)                          *)
(* ------------------------------------------------------------------ *)

let escape_label v =
  let b = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | labels ->
    let body =
      String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) labels)
    in
    "{" ^ body ^ "}"

let add_sample buf name labels v =
  Buffer.add_string buf name;
  Buffer.add_string buf (render_labels labels);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (string_of_int v);
  Buffer.add_char buf '\n'

let render_histogram buf name labels h =
  (* cumulative [le] buckets.  Empty buckets are skipped (a sparse
     [le] set is valid Prometheus); [+Inf] always appears and equals
     [_count]. *)
  let b = hist_buckets h in
  let cum = ref 0 in
  Array.iteri
    (fun i n ->
      if n > 0 && i <> Buckets.overflow then begin
        cum := !cum + n;
        let le = string_of_int (Buckets.upper i) in
        add_sample buf (name ^ "_bucket") (labels @ [ ("le", le) ]) !cum
      end)
    b;
  let total = !cum + b.(Buckets.overflow) in
  add_sample buf (name ^ "_bucket") (labels @ [ ("le", "+Inf") ]) total;
  add_sample buf (name ^ "_sum") labels (hist_sum h);
  add_sample buf (name ^ "_count") labels total

let exposition r =
  let buf = Buffer.create 4096 in
  List.iter
    (fun f ->
      Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" f.name f.help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" f.name f.ftype);
      List.iter
        (fun s ->
          match s.inst with
          | S_counter c -> add_sample buf f.name s.labels (counter_value c)
          | S_counter_fn fn | S_gauge_fn fn -> add_sample buf f.name s.labels (fn ())
          | S_gauge g -> add_sample buf f.name s.labels (gauge_value g)
          | S_hist h -> render_histogram buf f.name s.labels h)
        (List.rev f.rows))
    (List.rev r.families);
  Buffer.contents buf
