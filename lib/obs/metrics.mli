(** Domain-safe metrics: sharded counters, gauges and log-linear
    latency histograms with a lock-free [Atomic] hot path, merged at
    scrape time into a Prometheus text-format exposition.

    Writers touch only their own domain's shard (one
    [Atomic.fetch_and_add], no mutex); a scrape folds the shards with
    pointwise addition, which is associative, commutative and
    loss-free — property-tested in [test_metrics].  Instruments minted
    by a registry created with [~enabled:false] early-return after a
    single immutable bool load, keeping the disabled path at null-sink
    cost. *)

val shards : int
(** Number of independent cells per sharded instrument (power of 2). *)

(** Pure log-linear bucket arithmetic (HdrHistogram-style: [sub]
    linear sub-buckets per power of two), exposed for boundary and
    merge property tests. *)
module Buckets : sig
  val sub : int
  (** Linear sub-buckets per octave (8). *)

  val count : int
  (** Total buckets including underflow ([0]) and overflow
      ([count - 1]). *)

  val underflow : int
  val overflow : int

  val index : int -> int
  (** [index v] is the bucket holding value [v].  Negative values go
      to [underflow], values >= 2^30 to [overflow]; nothing is ever
      dropped. *)

  val upper : int -> int
  (** Inclusive upper edge of a bucket: the exact Prometheus [le]
      boundary.  [upper underflow = -1]; [upper overflow = max_int]
      (rendered [+Inf]). *)

  val merge : int array -> int array -> int array
  (** Pointwise sum — the shard merge.  Associative, commutative,
      loss-free. *)
end

type counter
type gauge
type histogram
type registry

val create : ?enabled:bool -> unit -> registry
(** Fresh registry; [~enabled:false] makes every instrument it mints a
    no-op (zero-cost disabled path). *)

val enabled : registry -> bool

val counter :
  registry -> name:string -> help:string ->
  ?labels:(string * string) list -> unit -> counter
(** Register a monotone counter series.  Registering several series
    under the same [name] (with distinct [labels]) forms one family;
    [help] from the first registration wins. *)

val counter_fn :
  registry -> name:string -> help:string ->
  ?labels:(string * string) list -> (unit -> int) -> unit
(** Counter sampled by callback at scrape time — for values already
    tracked elsewhere (cache hits, breaker trips).  The callback must
    be monotone and safe to call from the scraping domain. *)

val gauge :
  registry -> name:string -> help:string ->
  ?labels:(string * string) list -> unit -> gauge

val gauge_fn :
  registry -> name:string -> help:string ->
  ?labels:(string * string) list -> (unit -> int) -> unit

val histogram :
  registry -> name:string -> help:string ->
  ?labels:(string * string) list -> unit -> histogram

val inc : ?n:int -> counter -> unit
(** Lock-free increment on the caller's domain shard. *)

val counter_value : counter -> int
(** Merged total across shards. *)

val gauge_set : gauge -> int -> unit
val gauge_add : gauge -> int -> unit
val gauge_value : gauge -> int

val observe : histogram -> int -> unit
(** Record one observation (we feed microseconds).  Lock-free. *)

val hist_buckets : histogram -> int array
(** Merged per-bucket counts, indexed like {!Buckets}. *)

val hist_count : histogram -> int
val hist_sum : histogram -> int

val hist_quantile : histogram -> float -> float
(** [hist_quantile h q] estimates the [q]-quantile from merged buckets
    (upper edge of the covering bucket; <= 12.5% relative error). *)

val exposition : registry -> string
(** Prometheus text format 0.0.4: [# HELP] / [# TYPE] per family, then
    one sample line per series; histograms render cumulative sparse
    [le] buckets plus [_sum] / [_count]. *)
