let ph_string = function Trace.B -> "B" | Trace.E -> "E" | Trace.I -> "i"

let event_json (e : Trace.event) =
  let base =
    [
      ("name", Json.Str e.name);
      ("ph", Json.Str (ph_string e.ph));
      ("ts", Json.Float e.ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
    ]
  in
  let base = if e.cat = "" then base else base @ [ ("cat", Json.Str e.cat) ] in
  (* instant events need a scope; "t" (thread) keeps them as small
     arrows on the one track we emit *)
  let base =
    match e.ph with Trace.I -> base @ [ ("s", Json.Str "t") ] | _ -> base
  in
  let base =
    match e.args with [] -> base | args -> base @ [ ("args", Json.Obj args) ]
  in
  Json.Obj base

let chrome_trace ?(process = "wisefuse") events =
  let metadata =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("ts", Json.Float 0.0);
        ("pid", Json.Int 1);
        ("tid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.Str process) ]);
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata :: List.map event_json events));
      ("displayTimeUnit", Json.Str "ms");
    ]

(* --- validation --------------------------------------------------------- *)

let validate doc =
  let ( let* ) = Result.bind in
  let* events =
    match Option.bind (Json.member "traceEvents" doc) Json.to_list_opt with
    | Some l -> Ok l
    | None -> Error "no \"traceEvents\" array at top level"
  in
  let check_event i stack last_ts e =
    let field name conv =
      match Option.bind (Json.member name e) conv with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "event %d: missing or ill-typed %S" i name)
    in
    let* name = field "name" Json.to_string_opt in
    let* ph = field "ph" Json.to_string_opt in
    let* ts = field "ts" Json.to_float_opt in
    let* () =
      if ts +. 1e-9 >= last_ts then Ok ()
      else
        Error
          (Printf.sprintf "event %d (%s): timestamp %.3f < previous %.3f" i
             name ts last_ts)
    in
    let* stack =
      match ph with
      | "B" -> Ok (name :: stack)
      | "E" -> (
        match stack with
        | top :: rest when top = name -> Ok rest
        | top :: _ ->
          Error
            (Printf.sprintf "event %d: end of %S while %S is open" i name top)
        | [] -> Error (Printf.sprintf "event %d: end of %S with no open span" i name))
      | "i" | "I" | "M" -> Ok stack
      | other -> Error (Printf.sprintf "event %d: unknown phase %S" i other)
    in
    Ok (stack, ts)
  in
  let rec go i stack last_ts = function
    | [] ->
      if stack = [] then Ok (List.length events)
      else
        Error
          (Printf.sprintf "unbalanced spans at end of trace: %s still open"
             (String.concat ", " stack))
    | e :: rest ->
      let* stack, ts = check_event i stack last_ts e in
      go (i + 1) stack ts rest
  in
  go 0 [] neg_infinity events
