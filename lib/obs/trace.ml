type phase = B | E | I

type event = {
  ph : phase;
  name : string;
  cat : string;
  ts : float;
  args : (string * Json.t) list;
}

(* The sink: a reversed event list behind one enabled flag. A list (not
   a growable array) keeps emission allocation-only; traces of the
   registry kernels are tens of thousands of events, well within reach. *)
let enabled = ref false
let sink : event list ref = ref []
let count = ref 0
let t0 = ref 0.0
let last_ts = ref 0.0

(* Emission from concurrent domains (the serving daemon) mutates the
   sink under this lock. The null-sink fast path stays lock-free: the
   [on ()] check happens before the lock is ever touched. *)
let emit_mutex = Mutex.create ()

let on () = !enabled

(* Microseconds since [t0], clamped non-decreasing: Chrome's viewer
   (and our own checker) requires monotone timestamps, and the wall
   clock is allowed not to be. *)
let now_us () =
  let t = (Unix.gettimeofday () -. !t0) *. 1e6 in
  let t = if t < !last_ts then !last_ts else t in
  last_ts := t;
  t

let reset () =
  sink := [];
  count := 0;
  t0 := Unix.gettimeofday ();
  last_ts := 0.0

let enable () =
  reset ();
  enabled := true

let disable () = enabled := false

let events () = List.rev !sink
let event_count () = !count

let emit ph ?(args = []) ~cat name =
  if !enabled then begin
    Mutex.lock emit_mutex;
    sink := { ph; name; cat; ts = now_us (); args } :: !sink;
    incr count;
    Mutex.unlock emit_mutex
  end

let begin_span ?args ~cat name = emit B ?args ~cat name
let end_span name = emit E ~cat:"" name
let instant ?args ~cat name = emit I ?args ~cat name

let span ?args ~cat name f =
  if not !enabled then f ()
  else begin
    begin_span ?args ~cat name;
    Fun.protect ~finally:(fun () -> end_span name) f
  end

(* --- span-tree reconstruction ------------------------------------------- *)

(* Walk the event list keeping a stack of open spans of category [cat]
   (end events carry no category, so membership is decided by the
   matching begin). Self time = own duration minus the summed durations
   of direct children of the same category. Unbalanced tails (spans
   still open when the sink was read) are ignored. *)
let fold_spans ~cat ~f acc0 =
  let acc = ref acc0 in
  let stack : (string * float * float ref) list ref = ref [] in
  List.iter
    (fun e ->
      match e.ph with
      | B when e.cat = cat -> stack := (e.name, e.ts, ref 0.0) :: !stack
      | E -> (
        match !stack with
        | (name, start, children) :: rest when name = e.name ->
          stack := rest;
          let dt = (e.ts -. start) /. 1e6 in
          (match rest with
          | (_, _, parent_children) :: _ ->
            parent_children := !parent_children +. dt
          | [] -> ());
          acc := f !acc ~name ~total:dt ~self:(dt -. !children)
        | _ -> () (* an end of some other category's span *))
      | B | I -> ())
    (events ());
  !acc

let accumulate ~cat () =
  (* (name, self, total) in first-appearance order *)
  let order = ref [] in
  let tbl : (string, float ref * float ref) Hashtbl.t = Hashtbl.create 8 in
  let _ =
    fold_spans ~cat
      ~f:(fun () ~name ~total ~self ->
        let s, t =
          match Hashtbl.find_opt tbl name with
          | Some cell -> cell
          | None ->
            let cell = (ref 0.0, ref 0.0) in
            Hashtbl.add tbl name cell;
            order := name :: !order;
            cell
        in
        s := !s +. self;
        t := !t +. total)
      ()
  in
  List.rev_map
    (fun name ->
      let s, t = Hashtbl.find tbl name in
      (name, !s, !t))
    !order

let summary ~cat () = accumulate ~cat ()

let self_times ~cat () =
  List.map (fun (name, self, _) -> (name, self)) (accumulate ~cat ())

let with_recording f =
  enable ();
  let v = f () in
  let evs = events () in
  disable ();
  (v, evs)

(* Unlike [with_recording], [capture] saves the whole sink state and
   puts it back, so a capture can run while an outer recording is in
   progress (the serving daemon harvests per-request decision events
   this way without clobbering a session-level trace). The outer
   clock's monotonicity is preserved by restoring [last_ts]. *)
let capture f =
  let s_enabled = !enabled
  and s_sink = !sink
  and s_count = !count
  and s_t0 = !t0
  and s_last = !last_ts in
  let restore () =
    enabled := s_enabled;
    sink := s_sink;
    count := s_count;
    t0 := s_t0;
    last_ts := s_last
  in
  enable ();
  match f () with
  | v ->
    let evs = events () in
    restore ();
    (v, evs)
  | exception e ->
    restore ();
    raise e
