type phase = B | E | I

type event = {
  ph : phase;
  name : string;
  cat : string;
  ts : float;
  args : (string * Json.t) list;
}

(* Per-domain sinks.  Each domain records into its own state (a
   mutable record held in domain-local storage), so emission never
   takes a lock and two domains capturing concurrently cannot clobber
   or interleave each other's events — the failure mode of the old
   single global sink, whose [enabled]/[sink] refs were plain
   cross-domain-mutated cells.

   The one piece of shared state is [live]: an atomic count of domains
   whose sink is currently enabled.  [on ()] — the only check
   instrumented hot paths pay when tracing is off — is a single
   [Atomic.get]; when it reads 0 every emit returns before touching
   domain-local storage. *)

type state = {
  mutable enabled : bool;
  mutable sink : event list; (* reversed; emission is allocation-only *)
  mutable count : int;
  mutable t0 : float;
  mutable last_ts : float;
}

let key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { enabled = false; sink = []; count = 0; t0 = 0.0; last_ts = 0.0 })

let cur () = Domain.DLS.get key

(* number of domains with an enabled sink *)
let live = Atomic.make 0

let on () = Atomic.get live > 0

(* The timestamp source, swappable so [Linalg.Clock] can install the
   monotonic clock without [obs] depending on it. *)
let clock : (unit -> float) Atomic.t = Atomic.make Unix.gettimeofday
let set_clock f = Atomic.set clock f

(* Microseconds since [t0], clamped non-decreasing per domain:
   Chrome's viewer (and our own checker) requires monotone timestamps,
   and the default wall clock is allowed not to be. *)
let now_us st =
  let t = ((Atomic.get clock) () -. st.t0) *. 1e6 in
  let t = if t < st.last_ts then st.last_ts else t in
  st.last_ts <- t;
  t

let reset () =
  let st = cur () in
  st.sink <- [];
  st.count <- 0;
  st.t0 <- (Atomic.get clock) ();
  st.last_ts <- 0.0

let enable () =
  let st = cur () in
  reset ();
  if not st.enabled then begin
    st.enabled <- true;
    Atomic.incr live
  end

let disable () =
  let st = cur () in
  if st.enabled then begin
    st.enabled <- false;
    Atomic.decr live
  end

let events () = List.rev (cur ()).sink
let event_count () = (cur ()).count

let emit ph ?(args = []) ~cat name =
  if on () then begin
    let st = cur () in
    if st.enabled then begin
      st.sink <- { ph; name; cat; ts = now_us st; args } :: st.sink;
      st.count <- st.count + 1
    end
  end

let begin_span ?args ~cat name = emit B ?args ~cat name
let end_span name = emit E ~cat:"" name
let instant ?args ~cat name = emit I ?args ~cat name

let span ?args ~cat name f =
  if not (on () && (cur ()).enabled) then f ()
  else begin
    begin_span ?args ~cat name;
    Fun.protect ~finally:(fun () -> end_span name) f
  end

(* --- span-tree reconstruction ------------------------------------------- *)

(* Walk the event list keeping a stack of open spans of category [cat]
   (end events carry no category, so membership is decided by the
   matching begin). Self time = own duration minus the summed durations
   of direct children of the same category. Unbalanced tails (spans
   still open when the sink was read) are ignored. *)
let fold_spans ~cat ~f acc0 =
  let acc = ref acc0 in
  let stack : (string * float * float ref) list ref = ref [] in
  List.iter
    (fun e ->
      match e.ph with
      | B when e.cat = cat -> stack := (e.name, e.ts, ref 0.0) :: !stack
      | E -> (
        match !stack with
        | (name, start, children) :: rest when name = e.name ->
          stack := rest;
          let dt = (e.ts -. start) /. 1e6 in
          (match rest with
          | (_, _, parent_children) :: _ ->
            parent_children := !parent_children +. dt
          | [] -> ());
          acc := f !acc ~name ~total:dt ~self:(dt -. !children)
        | _ -> () (* an end of some other category's span *))
      | B | I -> ())
    (events ());
  !acc

let accumulate ~cat () =
  (* (name, self, total) in first-appearance order *)
  let order = ref [] in
  let tbl : (string, float ref * float ref) Hashtbl.t = Hashtbl.create 8 in
  let _ =
    fold_spans ~cat
      ~f:(fun () ~name ~total ~self ->
        let s, t =
          match Hashtbl.find_opt tbl name with
          | Some cell -> cell
          | None ->
            let cell = (ref 0.0, ref 0.0) in
            Hashtbl.add tbl name cell;
            order := name :: !order;
            cell
        in
        s := !s +. self;
        t := !t +. total)
      ()
  in
  List.rev_map
    (fun name ->
      let s, t = Hashtbl.find tbl name in
      (name, !s, !t))
    !order

let summary ~cat () = accumulate ~cat ()

let self_times ~cat () =
  List.map (fun (name, self, _) -> (name, self)) (accumulate ~cat ())

let with_recording f =
  enable ();
  let v = f () in
  let evs = events () in
  disable ();
  (v, evs)

(* Unlike [with_recording], [capture] saves this domain's sink state
   and puts it back, so a capture can run while an outer recording is
   in progress (the serving daemon harvests per-request decision
   events this way without clobbering a session-level trace).  The
   saved state is domain-local, so concurrent captures on different
   domains are fully independent.  The outer clock's monotonicity is
   preserved by restoring [last_ts]. *)
let capture f =
  let st = cur () in
  let s_enabled = st.enabled
  and s_sink = st.sink
  and s_count = st.count
  and s_t0 = st.t0
  and s_last = st.last_ts in
  let restore () =
    if st.enabled && not s_enabled then Atomic.decr live
    else if (not st.enabled) && s_enabled then Atomic.incr live;
    st.enabled <- s_enabled;
    st.sink <- s_sink;
    st.count <- s_count;
    st.t0 <- s_t0;
    st.last_ts <- s_last
  in
  enable ();
  match f () with
  | v ->
    let evs = events () in
    restore ();
    (v, evs)
  | exception e ->
    restore ();
    raise e
