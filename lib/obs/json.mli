(** A minimal JSON tree: one writer and one parser for every JSON
    artifact the project emits or reads back (wisecheck findings, the
    bench record file, trace exports). Before this module each site
    hand-rolled its own escaping and quote-aware field scanning; they
    now all share this one implementation.

    The writer is deliberately plain: UTF-8 strings pass through
    byte-for-byte (only quotes, backslashes and control characters are
    escaped),
    floats print with enough digits to round-trip the values the
    pipeline produces, and non-finite floats degrade to [null] rather
    than emitting invalid JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** [escape s] is the JSON string-literal body for [s] (no quotes). *)
val escape : string -> string

(** Compact (single-line) rendering. *)
val to_string : t -> string

(** Indented rendering, 2 spaces per level, trailing newline. *)
val to_string_pretty : t -> string

(** Append the compact rendering to a buffer. *)
val to_buffer : Buffer.t -> t -> unit

(** Parse a complete JSON document. [Error msg] carries a byte offset.
    Numbers without ['.'], ['e'] or overflow parse as [Int], everything
    else as [Float]. *)
val parse : string -> (t, string) result

(** {2 Accessors} *)

(** Field of an object ([None] on absent field or non-object). *)
val member : string -> t -> t option

val to_string_opt : t -> string option
val to_int_opt : t -> int option

(** [Int] values convert too. *)
val to_float_opt : t -> float option

val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option

(** Round to two decimals — keeps emitted timing fields short. *)
val round2 : float -> float
